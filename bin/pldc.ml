(* pldc: the PLD compiler driver (§6's automated tool flow) as a CLI.

     pldc list                         benchmarks available
     pldc floorplan                    device pages (Tab. 1 / Fig. 8)
     pldc source optical               dump an application's C-like source
     pldc compile optical -O1          compile and report
     pldc run optical -O1              compile, deploy, link, run, check
     pldc analyze trace.json           profile + critical path of a saved trace
     pldc baseline save / check        record / enforce a perf baseline *)

open Cmdliner
module B = Pld_core.Build
module R = Pld_core.Runner
module S = Pld_core.Session
module Protocol = Pld_service.Protocol
module T = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json
module Log = Pld_telemetry.Log
module Profile = Pld_insight.Profile
module FP = Pld_core.Fabric_profile
module Bottleneck = Pld_insight.Bottleneck
module Trace = Pld_insight.Trace
module Critical_path = Pld_insight.Critical_path
module Baseline = Pld_insight.Baseline
module Sentinel = Pld_insight.Sentinel
open Pld_rosetta

let fp = Pld_fabric.Floorplan.u50 ()
let hw = Pld_ir.Graph.Hw { page_hint = None }

(* CLI errors go through the structured logger (rendered to stderr, as
   before); machine consumers can tail the same events via the JSON
   sink if an embedder installs one. *)
let logger =
  let l = Log.default in
  Log.set_text_sink l (Some (fun line -> Printf.eprintf "pldc: %s\n%!" line));
  l

let die ?(code = 1) msg =
  Log.error logger ~sub:"cli" msg;
  exit code

let level_conv =
  let parse = function
    | "-O0" | "O0" | "0" -> Ok B.O0
    | "-O1" | "O1" | "1" -> Ok B.O1
    | "-O3" | "O3" | "3" -> Ok B.O3
    | "vitis" -> Ok B.Vitis
    | s -> Error (`Msg (Printf.sprintf "unknown level %S (use O0, O1, O3 or vitis)" s))
  in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (B.level_name l))

(* Rosetta applications by name, plus the service traffic-generator
   namespace ("svc-3x0x7"): chains are rate-1, so a ramp workload is
   always valid and the structural check is vacuous. *)
let chain_bench s =
  match Pld_service.Traffic.chain_of_name s with
  | Error _ -> None
  | Ok chain ->
      Some
        {
          Suite.name = s;
          paper_name = "service traffic chain";
          graph = (fun _ -> Pld_service.Traffic.chain_graph chain);
          workload = (fun () -> Pld_service.Traffic.chain_workload chain);
          check = (fun ~inputs:_ _ -> true);
        }

let bench_conv =
  let parse s =
    match Suite.find s with
    | b -> Ok b
    | exception Not_found -> (
        match chain_bench s with
        | Some b -> Ok b
        | None ->
            Error
              (`Msg
                (Printf.sprintf "unknown benchmark %S (have: %s; or a svc-I[xJ...] traffic chain)"
                   s
                   (String.concat ", " Suite.names))))
  in
  Arg.conv (parse, fun fmt b -> Format.pp_print_string fmt b.Suite.name)

let bench_arg = Arg.(required & pos 0 (some bench_conv) None & info [] ~docv:"BENCH")

let level_arg =
  Arg.(value & opt level_conv B.O1 & info [ "O"; "level" ] ~docv:"LEVEL" ~doc:"Optimization level: O0, O1, O3 or vitis.")

let workers_arg =
  Arg.(
    value & opt int 22
    & info [ "workers" ]
        ~doc:"Modeled compile-cluster width for the reported -O1 cluster (LPT) wall time.")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ]
        ~doc:"Executor worker domains running page compiles in parallel (1 = sequential).")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist compiled artifacts to a content-addressed store in $(docv), so a rerun after \
           a one-operator edit recompiles exactly that operator.")

let trace_arg =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:"Print the cross-layer telemetry timeline (spans and instants) after the run.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Write the telemetry spans as Chrome trace-event JSON to $(docv) — loadable in \
           Perfetto (one process per layer, one per modeled clock).")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the metrics registry (counters, gauges, histograms) as JSON to $(docv).")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ] ~doc:"Print the metrics registry after the run, one line per metric.")

let hot_arg =
  Arg.(
    value & flag
    & info [ "hot" ]
        ~doc:
          "Print the span hot list after the run: the flat self-time profile of the recorded \
           telemetry, per clock domain.")

let critical_path_arg =
  Arg.(
    value & flag
    & info [ "critical-path" ]
        ~doc:
          "Print the build's critical-path report after the run: the measured longest dependency \
           chain of the executor's job graph next to the modeled LPT cluster prediction, with \
           per-kind and per-phase divergence.")

(* Every command records into the process-wide sink; this drains it to
   whatever combination of human and machine views was asked for. *)
let telemetry_report ?(workers = 22) ~trace ~trace_out ~metrics_out ~profile ~hot ~critical_path ()
    =
  let tele = T.default in
  if trace then begin
    print_endline "-- telemetry timeline --";
    List.iter print_endline (Pld_core.Report.trace_lines tele)
  end;
  if profile then begin
    print_endline "-- metrics --";
    List.iter print_endline (T.render_metrics tele)
  end;
  if hot then begin
    print_endline "-- hot spans --";
    print_endline (Profile.render_hot (Profile.flat (T.spans tele)))
  end;
  if critical_path then begin
    print_endline "-- critical path --";
    match Critical_path.analyze ~workers (T.spans tele) with
    | Some r -> print_string (Critical_path.render r)
    | None -> print_endline "no executor run recorded (nothing compiled?)"
  end;
  Option.iter (fun file -> T.write_chrome tele ~file) trace_out;
  Option.iter (fun file -> T.write_metrics tele ~file) metrics_out

let pace_arg =
  Arg.(
    value & opt float 0.0
    & info [ "pace" ]
        ~doc:
          "Throttle each job to this many wall seconds per modeled backend-tool second, making \
           measured wall-clock reflect the modeled tool runs (0 = off).")

(* --inject-faults accepts the Fault.spec mini-language, e.g.
   "page=3,drop=0.01,load=5@2,hang=fft0@100000,job=op:fft0@1". *)
let fault_spec_conv =
  let parse s =
    match Pld_faults.Fault.parse s with Ok spec -> Ok spec | Error m -> Error (`Msg m)
  in
  Arg.conv (parse, fun fmt s -> Format.pp_print_string fmt (Pld_faults.Fault.to_string s))

let faults_arg =
  Arg.(
    value
    & opt (some fault_spec_conv) None
    & info [ "inject-faults" ] ~docv:"SPEC"
        ~doc:
          "Inject faults: comma-separated page=N (defective page), drop=F / corrupt=F (NoC link \
           rates), load=PAGE\\@N (first N loads garble), hang=INST\\@CYCLES, trap=INST\\@CYCLES \
           (softcore control faults), job=ID\\@N (first N runs of a build job fail).")

let fault_seed_arg =
  Arg.(
    value & opt int 1
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:"Seed for the fault injector's RNG; the same seed reproduces the same fault trace.")

let max_retries_arg =
  Arg.(
    value & opt int 3
    & info [ "max-retries" ] ~docv:"K"
        ~doc:"Retry budget per page load (and per build job under --inject-faults).")

let injector_of spec seed = Option.map (fun s -> Pld_faults.Fault.create ~seed s) spec

(* ---------- daemon client mode ---------- *)

let connect_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "connect" ] ~docv:"SOCKET"
        ~doc:
          "Send the request to a running pldd daemon on this Unix-domain socket instead of \
           compiling in-process — the daemon's shared store serves cache hits across clients \
           and tenants.")

let tenant_arg =
  Arg.(
    value & opt string "default"
    & info [ "tenant" ] ~docv:"NAME"
        ~doc:"Tenant to bill the daemon request to (quotas, stats, cache-write budget).")

let priority_arg =
  Arg.(
    value & opt int 0
    & info [ "priority" ] ~docv:"N"
        ~doc:"Daemon queue priority; higher is scheduled first, ties are FIFO.")

let deadline_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-request deadline for daemon mode: the request's time budget starts at admission; \
           an expired job fails with DEADLINE_EXCEEDED instead of occupying a worker.")

let retries_arg =
  Arg.(
    value
    & opt int Pld_service.Client.default_backoff.Pld_service.Client.b_attempts
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Total attempts (including the first) for daemon mode, with seeded jittered exponential \
           backoff; transport failures and transient refusals (SHED, DRAINING, QUEUE_FULL) are \
           retried, honoring the server's retry_after_ms hint. 1 = no retry.")

(* Every remote request carries a trace id (minted here unless the
   caller brought one): the daemon stitches its admission verdict,
   queue wait and build phases to the same id, and the client's
   rpc.attempt spans carry it too — one id, end to end. *)
let with_trace envelope =
  match envelope.Protocol.trace with
  | Some _ -> envelope
  | None -> { envelope with Protocol.trace = Some (Log.mint_trace_id ()) }

let remote_rpc ~socket ~retries envelope =
  let module C = Pld_service.Client in
  let backoff = { C.default_backoff with C.b_attempts = max 1 retries } in
  match C.rpc_retry ~backoff ~socket (with_trace envelope) with
  | Error msg -> die msg
  | Ok reply -> reply

let remote_call ~socket ~retries envelope =
  let reply = remote_rpc ~socket ~retries envelope in
  print_endline (Json.pretty reply.Protocol.body);
  if not reply.Protocol.ok then exit 1

(* Admin verbs: one-shot request, fail loudly on an error reply. *)
let admin_call ~socket ~retries req =
  let reply = remote_rpc ~socket ~retries (Protocol.envelope req) in
  if not reply.Protocol.ok then die (Json.to_string reply.Protocol.body);
  reply.Protocol.body

(* ---------- daemon observability ---------- *)

let require_connect = function
  | Some s -> s
  | None -> die ~code:2 "--connect SOCKET is required for daemon commands"

let json_flag_arg =
  Arg.(
    value & flag
    & info [ "json" ] ~doc:"Print the raw JSON document instead of the rendered summary.")

let status_cmd =
  let doc = "Show a running daemon's live status: queue, counters, tenants, in-flight builds." in
  let run connect retries json =
    let socket = require_connect connect in
    let body = admin_call ~socket ~retries Protocol.Status in
    if json then print_endline (Json.pretty body)
    else List.iter print_endline (Protocol.render_status body)
  in
  Cmd.v (Cmd.info "status" ~doc) Term.(const run $ connect_arg $ retries_arg $ json_flag_arg)

let top_cmd =
  let doc = "Periodically refresh the daemon status summary (a tiny top(1) for pldd)." in
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS" ~doc:"Seconds between refreshes.")
  in
  let count_arg =
    Arg.(
      value & opt int 0
      & info [ "count" ] ~docv:"N" ~doc:"Stop after $(docv) refreshes (0 = until interrupted).")
  in
  let fabric_arg =
    Arg.(
      value
      & opt (some bench_conv) None
      & info [ "fabric" ] ~docv:"BENCH"
          ~doc:
            "Append the per-build fabric view to each frame: the persisted fabric profile's \
             ranked back-pressure attribution for $(docv) at --level, as recorded by the run \
             that produced the cached artifact.")
  in
  let run connect retries interval count fabric level =
    let socket = require_connect connect in
    let fabric_lines () =
      match fabric with
      | None -> []
      | Some b -> (
          let name = b.Suite.name and lvl = Pld_core.Build.level_name level in
          let reply =
            remote_rpc ~socket ~retries
              (Protocol.envelope (Protocol.Profile { bench = name; level = lvl }))
          in
          let header = Printf.sprintf "fabric %s %s:" name lvl in
          if not reply.Protocol.ok then [ header; "  (profile request failed)" ]
          else
            let body = reply.Protocol.body in
            match Json.member "found" body with
            | Some (Json.Bool true) -> (
                match
                  FP.of_json (Option.value ~default:Json.Null (Json.member "profile" body))
                with
                | Ok p ->
                    header :: List.map (fun l -> "  " ^ l) (Bottleneck.render (Bottleneck.attribute p))
                | Error m -> [ header; "  (malformed profile: " ^ m ^ ")" ])
            | _ -> [ header; "  (no profile recorded yet — run the bench through pldd)" ])
    in
    let rec loop n =
      let body = admin_call ~socket ~retries Protocol.Status in
      (* Home-and-clear, so the summary repaints in place. *)
      if n > 0 || count <> 1 then print_string "\027[2J\027[H";
      List.iter print_endline (Protocol.render_status body);
      List.iter print_endline (fabric_lines ());
      flush stdout;
      if count = 0 || n + 1 < count then begin
        Unix.sleepf (Float.max 0.05 interval);
        loop (n + 1)
      end
    in
    loop 0
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const run $ connect_arg $ retries_arg $ interval_arg $ count_arg $ fabric_arg $ level_arg)

let metrics_cmd =
  let doc =
    "Fetch the daemon's metrics registry: Prometheus text exposition by default, the JSON \
     document with --json. Also refreshes the daemon's --metrics-out snapshot."
  in
  let run connect retries json =
    let socket = require_connect connect in
    let body = admin_call ~socket ~retries Protocol.Metrics in
    let field name = match body with Json.Obj fs -> List.assoc_opt name fs | _ -> None in
    if json then
      print_endline (Json.pretty (Option.value ~default:Json.Null (field "metrics")))
    else
      match field "prometheus" with
      | Some (Json.String text) -> print_string text
      | _ -> die "malformed metrics reply (no prometheus exposition)"
  in
  Cmd.v (Cmd.info "metrics" ~doc) Term.(const run $ connect_arg $ retries_arg $ json_flag_arg)

let health_cmd =
  let doc = "Probe daemon liveness; exits 1 when the daemon is draining or stopping." in
  let run connect retries =
    let socket = require_connect connect in
    let body = admin_call ~socket ~retries Protocol.Health in
    print_endline (Json.pretty body);
    let ok =
      match body with
      | Json.Obj fs -> ( match List.assoc_opt "ok" fs with Some (Json.Bool b) -> b | _ -> false)
      | _ -> false
    in
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "health" ~doc) Term.(const run $ connect_arg $ retries_arg)

let list_cmd =
  let doc = "List the bundled Rosetta applications." in
  let run () =
    List.iter
      (fun b ->
        let g = b.Suite.graph hw in
        Printf.printf "%-10s %-20s %d operators, %d channels\n" b.Suite.name b.Suite.paper_name
          (List.length g.Pld_ir.Graph.instances)
          (List.length g.Pld_ir.Graph.channels))
      Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let floorplan_cmd =
  let doc = "Print the device floorplan and page inventory." in
  let run () =
    List.iter
      (fun (ty, (cap : Pld_netlist.Netlist.res), n) ->
        Printf.printf "Type-%d: %d x { %d LUT, %d FF, %d BRAM18, %d DSP }\n" ty n
          cap.Pld_netlist.Netlist.luts cap.Pld_netlist.Netlist.ffs cap.Pld_netlist.Netlist.brams
          cap.Pld_netlist.Netlist.dsps)
      (Pld_fabric.Floorplan.type_summary fp);
    print_newline ();
    print_string (Pld_fabric.Floorplan.render fp)
  in
  Cmd.v (Cmd.info "floorplan" ~doc) Term.(const run $ const ())

let source_cmd =
  let doc = "Dump the application's generated C-like source." in
  let run b =
    let g = b.Suite.graph hw in
    print_endline (Pld_ir.Graph.source g);
    List.iter
      (fun (i : Pld_ir.Graph.instance) ->
        print_newline ();
        print_endline (Pld_ir.Op.source i.op))
      g.Pld_ir.Graph.instances
  in
  Cmd.v (Cmd.info "source" ~doc) Term.(const run $ bench_arg)

(* A bad --cache-dir (e.g. an existing file) is a user error, not an
   internal one. *)
let open_cache dir =
  try B.create_cache ?dir ()
  with Pld_engine.Store.Store_error msg -> die (Printf.sprintf "bad --cache-dir: %s" msg)

(* ---------- incremental compile state ---------- *)

let incremental_from_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "incremental-from" ] ~docv:"DIR"
        ~doc:
          "Persist the compiled app under $(docv) (one state file per benchmark and level) and, \
           when a previous state exists, seed delta P&R from it: unchanged cells keep their \
           placement and only nets touching moved cells are rerouted. Combine with --cache-dir \
           to also reuse unchanged artifacts outright.")

let touch_op_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "touch-op" ] ~docv:"INST"
        ~doc:
          "Apply a behavior-neutral one-operator edit (append a debug printf to instance \
           $(docv)) before compiling — the canonical edit of the incremental loop, used by the \
           CI smoke test to force the delta path.")

let pnr_seeds_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "pnr-seeds" ] ~docv:"SEEDS"
        ~doc:
          "Race these distinct annealing seeds on parallel domains for a cold monolithic \
           (-O3/vitis) compile and keep the best post-STA timing. Ignored on paged levels; \
           a loaded --incremental-from state wins over seeds.")

(* Incremental compile state: the whole app, marshalled (pure data —
   graphs, netlists, placements, routes; no closures anywhere in it).
   A stale or truncated state file degrades to a scratch compile, never
   to an error. *)
let inc_state_file dir (b : Suite.bench) level =
  Filename.concat dir (Printf.sprintf "%s.%s.pnrstate" b.Suite.name (B.level_name level))

let load_previous dir b level : B.app option =
  let file = inc_state_file dir b level in
  if not (Sys.file_exists file) then None
  else
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try Some (Marshal.from_channel ic : B.app)
        with _ ->
          Log.warn logger ~sub:"cli"
            (Printf.sprintf "ignoring unreadable incremental state %s" file);
          None)

let save_previous dir b level (app : B.app) =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let file = inc_state_file dir b level in
  let oc = open_out_bin file in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> Marshal.to_channel oc app [])

(* One parseable line per monolithic compile: what the delta path did
   (or why it could not), and the P&R seconds the CI smoke compares. *)
let incremental_summary (app : B.app) =
  match app.B.monolithic with
  | None -> ()
  | Some m ->
      let p = m.Pld_core.Flow.pnr3 in
      let pnr_seconds =
        p.Pld_pnr.Pnr.place_seconds +. p.Pld_pnr.Pnr.route_seconds +. p.Pld_pnr.Pnr.sta_seconds
      in
      (match p.Pld_pnr.Pnr.delta with
      | None ->
          Printf.printf "incremental: status=cold pnr_seconds=%.4f\n" pnr_seconds
      | Some d ->
          let status =
            match d.Pld_pnr.Pnr.fallback with
            | None -> "delta"
            | Some reason -> "fallback:" ^ reason
          in
          Printf.printf
            "incremental: status=%s cells_kept=%d cells_moved=%d nets_preserved=%d \
             nets_rerouted=%d pnr_seconds=%.4f\n"
            status d.Pld_pnr.Pnr.cells_kept d.Pld_pnr.Pnr.cells_moved
            d.Pld_pnr.Pnr.nets_preserved d.Pld_pnr.Pnr.nets_rerouted pnr_seconds);
      Printf.printf "incremental: pnr.delta_hits=%d pnr.delta_fallbacks=%d\n"
        (T.counter_value T.default "pnr.delta_hits")
        (T.counter_value T.default "pnr.delta_fallbacks")

let compile_cmd =
  let doc = "Compile an application at the given level and report phases/areas." in
  let run b level workers jobs cache_dir trace pace fault_spec fault_seed max_retries trace_out
      metrics_out profile hot critical_path connect tenant priority deadline_ms retries
      incremental_from touch_op pnr_seeds =
    match connect with
    | Some socket ->
        remote_call ~socket ~retries
          (Protocol.envelope ~tenant ~priority ?deadline_ms
             (Protocol.Compile { bench = b.Suite.name; level = B.level_name level }))
    | None ->
    let cache = open_cache cache_dir in
    let session = S.open_session ~name:"pldc" ~fp ~cache ~workers ~jobs ~pace () in
    let faults = injector_of fault_spec fault_seed in
    let graph =
      match touch_op with
      | None -> b.Suite.graph hw
      | Some inst -> (
          match Pld_ir.Graph.touch_op (b.Suite.graph hw) inst with
          | Some g -> g
          | None ->
              die ~code:2
                (Printf.sprintf "--touch-op: no instance %S in %s" inst b.Suite.name))
    in
    let previous = Option.bind incremental_from (fun dir -> load_previous dir b level) in
    let app = S.compile session ~level ?faults ~max_retries ?previous ~pnr_seeds graph in
    S.close session;
    Option.iter (fun dir -> save_previous dir b level app) incremental_from;
    print_endline (Pld_core.Report.compile_summary app);
    Printf.printf "  cache: %s\n" (Pld_core.Report.cache_summary app.B.report);
    List.iter (fun (inst, page) -> Printf.printf "  %-16s -> page %d\n" inst page) app.B.assignment;
    List.iter (fun l -> Printf.printf "  %s\n" l) (Pld_core.Report.build_recovery_lines app.B.report);
    (match app.B.monolithic with
    | Some m -> print_endline (Pld_pnr.Pnr.report m.Pld_core.Flow.pnr3)
    | None -> ());
    incremental_summary app;
    print_endline (Pld_core.Loader.describe_artifacts app);
    telemetry_report ~workers ~trace ~trace_out ~metrics_out ~profile ~hot ~critical_path ()
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(
      const run $ bench_arg $ level_arg $ workers_arg $ jobs_arg $ cache_dir_arg $ trace_arg
      $ pace_arg $ faults_arg $ fault_seed_arg $ max_retries_arg $ trace_out_arg $ metrics_out_arg
      $ profile_arg $ hot_arg $ critical_path_arg $ connect_arg $ tenant_arg $ priority_arg
      $ deadline_arg $ retries_arg $ incremental_from_arg $ touch_op_arg $ pnr_seeds_arg)

let run_cmd =
  let doc = "Compile, deploy to the card, link, execute a frame, and validate." in
  let module L = Pld_core.Loader in
  let run b level workers jobs cache_dir fault_spec fault_seed max_retries trace trace_out
      metrics_out profile hot critical_path connect tenant priority deadline_ms retries =
    match connect with
    | Some socket ->
        remote_call ~socket ~retries
          (Protocol.envelope ~tenant ~priority ?deadline_ms
             (Protocol.Run { bench = b.Suite.name; level = B.level_name level; frames = 8 }))
    | None ->
    let cache = open_cache cache_dir in
    let graph = b.Suite.graph hw in
    let faults = injector_of fault_spec fault_seed in
    let session = S.open_session ~name:"pldc" ~fp ~cache ~workers ~jobs () in
    let app = S.compile session ~level ?faults ~max_retries graph in
    let dr =
      try S.link session ?faults ~max_retries app
      with L.Deploy_failed m -> die (Printf.sprintf "deploy failed: %s" m)
    in
    let inputs = b.Suite.workload () in
    let r =
      try S.run session ?faults dr ~inputs with
      | R.Stalled d -> die (R.describe_stall d)
      | R.Softcore_trap (inst, tr) ->
          die (Printf.sprintf "softcore %s trapped: %s" inst (Pld_riscv.Cpu.describe_trap tr))
    in
    Printf.printf "%s %s: load+link %.4fs, %.0f MHz, %.4f ms/frame (bottleneck %s)\n" b.Suite.name
      (B.level_name level) dr.L.seconds r.R.perf.R.fmax_mhz r.R.perf.R.ms_per_input
      r.R.perf.R.bottleneck;
    List.iteri
      (fun k (inst, line) -> if k < 5 then Printf.printf "  [softcore %s] %s\n" inst line)
      r.R.printed;
    (match faults with
    | None -> ()
    | Some _ ->
        List.iter (fun l -> Printf.printf "  %s\n" l) (Pld_core.Report.build_recovery_lines app.B.report);
        List.iter print_endline (Pld_core.Report.recovery_lines dr);
        (* Honest degraded-mode reporting: rerun the whole flow
           fault-free — in its own session on the same shared cache —
           and put the two perf numbers side by side. *)
        let nsession = S.open_session ~name:"pldc-nominal" ~fp ~cache ~workers ~jobs () in
        let napp = S.compile nsession ~level graph in
        let ndr = S.link nsession napp in
        let nr = S.run nsession ndr ~inputs in
        S.close nsession;
        List.iter print_endline (Pld_core.Report.degraded_perf_lines ~nominal:nr ~actual:r);
        Printf.printf "outputs bit-identical to fault-free run: %b\n" (r.R.outputs = nr.R.outputs));
    S.close session;
    let ok = b.Suite.check ~inputs r.R.outputs in
    Printf.printf "output check vs independent reference: %b\n" ok;
    telemetry_report ~workers ~trace ~trace_out ~metrics_out ~profile ~hot ~critical_path ();
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ bench_arg $ level_arg $ workers_arg $ jobs_arg $ cache_dir_arg $ faults_arg
      $ fault_seed_arg $ max_retries_arg $ trace_arg $ trace_out_arg $ metrics_out_arg
      $ profile_arg $ hot_arg $ critical_path_arg $ connect_arg $ tenant_arg $ priority_arg
      $ deadline_arg $ retries_arg)

(* ---------- fabric profiling ---------- *)

(* The full profile document: the run snapshot plus the back-pressure
   attribution — the same shape pldd persists, so the two export paths
   validate identically. *)
let profile_doc profile bk =
  match FP.to_json profile with
  | Json.Obj fields -> Json.Obj (fields @ [ ("attribution", Bottleneck.to_json bk) ])
  | other -> other

let render_fabric ~fabric profile =
  let bk = Bottleneck.attribute profile in
  if fabric then print_string (FP.render_heatmap profile fp);
  List.iter print_endline (Bottleneck.render bk)

let profile_cmd =
  let doc =
    "Run a benchmark under the fabric PMU and report where the runtime cycles went: firing \
     heatmap, stall splits, link traffic, and the ranked back-pressure attribution naming the \
     rate-limiting operator."
  in
  let module L = Pld_core.Loader in
  let fabric_flag =
    Arg.(
      value & flag
      & info [ "fabric" ]
          ~doc:
            "Also render the fabric heatmap: the floorplan grid shaded by per-page firing \
             activity, a per-page legend with stall fractions, and per-link utilization bars.")
  in
  let run b level workers jobs cache_dir fabric json connect tenant priority deadline_ms retries =
    match connect with
    | Some socket -> (
        (* Remote: read the profile persisted next to the daemon's
           cached artifact — the document the primary run stored,
           whichever tenant's build that was. *)
        let reply =
          remote_rpc ~socket ~retries
            (Protocol.envelope ~tenant ~priority ?deadline_ms
               (Protocol.Profile { bench = b.Suite.name; level = B.level_name level }))
        in
        if not reply.Protocol.ok then die (Json.to_string reply.Protocol.body);
        let body = reply.Protocol.body in
        (match Json.member "found" body with
        | Some (Json.Bool true) -> ()
        | _ ->
            die
              (Printf.sprintf
                 "no fabric profile for %s at %s yet — run it through the daemon first (pldc run \
                  --connect %s %s)"
                 b.Suite.name (B.level_name level) socket b.Suite.name));
        let doc = Option.value ~default:Json.Null (Json.member "profile" body) in
        if json then print_endline (Json.pretty doc)
        else
          match FP.of_json doc with
          | Error m -> die (Printf.sprintf "malformed profile document: %s" m)
          | Ok profile -> render_fabric ~fabric profile)
    | None ->
        let cache = open_cache cache_dir in
        let session = S.open_session ~name:"pldc" ~fp ~cache ~workers ~jobs () in
        let app = S.compile session ~level (b.Suite.graph hw) in
        let dr =
          try S.link session app
          with L.Deploy_failed m -> die (Printf.sprintf "deploy failed: %s" m)
        in
        let pmu = Pld_telemetry.Pmu.create () in
        let r =
          try S.run session ~pmu dr ~inputs:(b.Suite.workload ()) with
          | R.Stalled d -> die (R.describe_stall d)
          | R.Softcore_trap (inst, tr) ->
              die (Printf.sprintf "softcore %s trapped: %s" inst (Pld_riscv.Cpu.describe_trap tr))
        in
        S.close session;
        let profile = FP.of_run ~pmu app r in
        if json then print_endline (Json.pretty (profile_doc profile (Bottleneck.attribute profile)))
        else render_fabric ~fabric profile
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ bench_arg $ level_arg $ workers_arg $ jobs_arg $ cache_dir_arg $ fabric_flag
      $ json_flag_arg $ connect_arg $ tenant_arg $ priority_arg $ deadline_arg $ retries_arg)

(* ---------- store maintenance ---------- *)

let cache_cmd =
  let module Store = Pld_engine.Store in
  let scrub_cmd =
    let doc =
      "Audit a persistent artifact store: verify every entry's header and payload digest, \
       quarantine failures into store.quarantine/, and rewrite the index. Exits 1 if anything \
       was quarantined."
    in
    let dir_arg =
      Arg.(
        required
        & opt (some string) None
        & info [ "cache-dir" ] ~docv:"DIR" ~doc:"The store directory to scrub.")
    in
    let run dir =
      match Store.open_ ~quarantine:true ~dir () with
      | exception Store.Store_error msg -> die ~code:2 (Printf.sprintf "bad --cache-dir: %s" msg)
      | st ->
          let r = Store.scrub st in
          print_endline (Store.render_scrub r);
          if r.Store.sc_quarantined > 0 then exit 1
    in
    Cmd.v (Cmd.info "scrub" ~doc) Term.(const run $ dir_arg)
  in
  let doc = "Operate on a persistent artifact store." in
  Cmd.group (Cmd.info "cache" ~doc) [ scrub_cmd ]

(* ---------- trace analysis ---------- *)

let analyze_cmd =
  let doc = "Profile a Chrome trace exported with --trace-out: hot spans and critical path." in
  let file_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"TRACE") in
  let top_arg =
    Arg.(value & opt int 15 & info [ "top" ] ~docv:"N" ~doc:"Rows in the hot list.")
  in
  let tree_arg =
    Arg.(
      value & flag
      & info [ "tree" ] ~doc:"Also print the top-down (call-tree) profile of the trace.")
  in
  let run file top workers tree =
    let spans =
      try Trace.load file with
      | Sys_error m -> die (Printf.sprintf "cannot read trace: %s" m)
      | Json.Parse_error m -> die (Printf.sprintf "%s is not valid JSON: %s" file m)
      | Trace.Malformed m -> die (Printf.sprintf "%s is not a pldc trace: %s" file m)
    in
    let n_spans = List.length (List.filter (fun (s : T.span) -> s.T.dur_us <> None) spans) in
    Printf.printf "%s: %d spans, %d instants, %d executor run(s)\n" file n_spans
      (List.length spans - n_spans)
      (List.length (Critical_path.runs spans));
    print_endline "\n-- hot spans --";
    print_endline (Profile.render_hot ~top (Profile.flat spans));
    if tree then begin
      print_endline "\n-- top-down profile --";
      print_string (Profile.render_tree spans)
    end;
    match Critical_path.analyze ~workers spans with
    | Some r ->
        print_endline "\n-- critical path (latest run) --";
        print_string (Critical_path.render r)
    | None -> print_endline "\n(no executor run in this trace)"
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const run $ file_arg $ top_arg $ workers_arg $ tree_arg)

(* ---------- baseline save / check ---------- *)

let baseline_file_arg =
  Arg.(
    value
    & opt string "baselines/rosetta.json"
    & info [ "baseline" ] ~docv:"FILE" ~doc:"Baseline snapshot file.")

let sentinel_opts_term =
  let benches_arg =
    Arg.(
      value
      & opt (list string) Sentinel.default_options.Sentinel.benches
      & info [ "benches" ] ~docv:"NAMES" ~doc:"Comma-separated suite benchmarks to measure.")
  in
  let levels_arg =
    Arg.(
      value
      & opt (list level_conv) Sentinel.default_options.Sentinel.levels
      & info [ "levels" ] ~docv:"LEVELS" ~doc:"Comma-separated levels to measure.")
  in
  let repeats_arg =
    Arg.(
      value
      & opt int Sentinel.default_options.Sentinel.repeats
      & info [ "repeats" ] ~docv:"N" ~doc:"Cold-cache compile repeats per (bench, level) cell.")
  in
  let sjobs_arg =
    Arg.(value & opt int 1 & info [ "jobs" ] ~docv:"N" ~doc:"Executor domains per compile.")
  in
  let no_perf_arg =
    Arg.(
      value & flag
      & info [ "no-perf" ] ~doc:"Skip the functional run (Fmax / frame-cycle exact metrics).")
  in
  let no_service_arg =
    Arg.(
      value & flag
      & info [ "no-service" ]
          ~doc:"Skip the compile-service tier (Zipf traffic replay through Pld_service).")
  in
  let no_chaos_arg =
    Arg.(
      value & flag
      & info [ "no-chaos" ]
          ~doc:
            "Skip the chaos tier (deterministic failure-path scenarios: scrub quarantine, \
             connection storm, overload shedding and deadlines).")
  in
  let no_incremental_arg =
    Arg.(
      value & flag
      & info [ "no-incremental" ]
          ~doc:
            "Skip the incremental tier (one-operator edit recompiled through delta P&R per \
             bench).")
  in
  let mk benches levels repeats pace jobs no_perf no_service no_chaos no_incremental =
    {
      Sentinel.benches;
      levels;
      repeats;
      pace;
      jobs;
      run_perf = not no_perf;
      run_service = not no_service;
      run_chaos = not no_chaos;
      run_incremental = not no_incremental;
    }
  in
  Term.(
    const mk $ benches_arg $ levels_arg $ repeats_arg $ pace_arg $ sjobs_arg $ no_perf_arg
    $ no_service_arg $ no_chaos_arg $ no_incremental_arg)

let baseline_save_cmd =
  let doc = "Measure the suite and save the snapshot as the new baseline." in
  let run file opts =
    Printf.printf "measuring %s at %s (%d repeats)...\n%!"
      (String.concat "," opts.Sentinel.benches)
      (String.concat "," (List.map B.level_name opts.Sentinel.levels))
      opts.Sentinel.repeats;
    let snap = Sentinel.measure opts in
    (match Filename.dirname file with
    | "" | "." -> ()
    | dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
    Baseline.save ~file snap;
    Printf.printf "saved baseline %s (%d entries)\n" file (List.length snap.Baseline.entries)
  in
  Cmd.v (Cmd.info "save" ~doc) Term.(const run $ baseline_file_arg $ sentinel_opts_term)

let baseline_check_cmd =
  let doc = "Measure the suite and fail (exit 1) if it regressed against the baseline." in
  let exact_only_arg =
    Arg.(
      value & flag
      & info [ "exact-only" ]
          ~doc:
            "Compare only the deterministic (exact) metric class — for baselines recorded on \
             different hardware, where modeled tool seconds are not comparable.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write machine-readable findings (REGRESSION.json).")
  in
  let run file opts exact_only out =
    if not (Sys.file_exists file) then
      die ~code:2 (Printf.sprintf "no baseline at %s (record one with `pldc baseline save`)" file);
    let current = Sentinel.measure opts in
    let verdict = Sentinel.check ~base_file:file ~exact_only ?out current in
    print_string (Baseline.render_verdict verdict);
    if not verdict.Baseline.ok then exit 1
  in
  Cmd.v (Cmd.info "check" ~doc)
    Term.(const run $ baseline_file_arg $ sentinel_opts_term $ exact_only_arg $ out_arg)

let baseline_cmd =
  let doc = "Record or enforce a performance baseline (the regression sentinel)." in
  Cmd.group (Cmd.info "baseline" ~doc) [ baseline_save_cmd; baseline_check_cmd ]

(* ---------- property-based differential fuzzing ---------- *)

let fuzz_cmd =
  let module F = Pld_proptest.Fuzz in
  let doc =
    "Generate random dataflow graphs and differentially check them across optimization levels."
  in
  let seed_arg =
    Arg.(
      value
      & opt int F.default_options.F.seed
      & info [ "seed" ] ~docv:"N" ~doc:"Root seed; equal seeds generate equal cases.")
  in
  let count_arg =
    Arg.(
      value
      & opt int F.default_options.F.count
      & info [ "count" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let max_ops_arg =
    Arg.(
      value
      & opt int F.default_options.F.params.Pld_proptest.Gen.max_ops
      & info [ "max-ops" ] ~docv:"N"
          ~doc:"Operator budget per graph (capped at the softcore page count).")
  in
  let max_tokens_arg =
    Arg.(
      value
      & opt int F.default_options.F.params.Pld_proptest.Gen.max_tokens
      & info [ "max-tokens" ] ~docv:"N" ~doc:"Largest input frame length.")
  in
  let pairs_arg =
    Arg.(
      value & opt string "O0:O3"
      & info [ "level-pairs" ] ~docv:"PAIRS"
          ~doc:"Comma-separated level pairs to compare, e.g. O0:O3,O1:O3.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR" ~doc:"Persist shrunk reproducers of failing cases here.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the (bit-reproducible) summary JSON to FILE; - for stdout.")
  in
  let fault_sweep_arg =
    Arg.(
      value & flag
      & info [ "faults" ]
          ~doc:
            "Also rebuild each passing case at -O1 under injected faults (flaky compile job, \
             defective page, lossy NoC links); recovery must not change any output token.")
  in
  let shrink_budget_arg =
    Arg.(
      value
      & opt int F.default_options.F.shrink_budget
      & info [ "shrink-budget" ] ~docv:"N" ~doc:"Oracle evaluations the shrinker may spend per case.")
  in
  let incremental_arg =
    Arg.(
      value & flag
      & info [ "incremental" ]
          ~doc:
            "Run the edit-sequence equivalence fuzzer instead: each case replays a seeded \
             sequence of small source edits, compiling every edit both through the chained \
             delta-P&R path and from scratch; the two builds must agree bit-for-bit with the \
             reference on every output stream. --count sets the number of sequences, --steps \
             the edits per sequence.")
  in
  let steps_arg =
    Arg.(
      value
      & opt int Pld_proptest.Edit_seq.default_options.Pld_proptest.Edit_seq.q_steps
      & info [ "steps" ] ~docv:"N" ~doc:"Edits per sequence (with --incremental).")
  in
  let run seed count max_ops max_tokens pairs_s corpus json fault_sweep shrink_budget incremental
      steps =
    if incremental then begin
      let module E = Pld_proptest.Edit_seq in
      let opts =
        {
          E.q_seed = seed;
          q_count = count;
          q_steps = steps;
          q_params = { Pld_proptest.Gen.default_params with Pld_proptest.Gen.max_ops; max_tokens };
          q_corpus_dir = corpus;
          q_fuel = None;
        }
      in
      let summary = E.run ~log:print_endline opts in
      print_string (E.render summary);
      (match json with
      | None -> ()
      | Some "-" -> print_endline (Pld_telemetry.Json.to_string (E.summary_json summary))
      | Some file -> Pld_telemetry.Json.write_file ~file (E.summary_json summary));
      exit (if summary.E.z_failed > 0 then 1 else 0)
    end;
    let pairs =
      match F.parse_level_pairs pairs_s with
      | Ok p -> p
      | Error e -> die ~code:2 (Printf.sprintf "bad --level-pairs: %s" e)
    in
    let opts =
      {
        F.seed;
        count;
        params = { Pld_proptest.Gen.default_params with Pld_proptest.Gen.max_ops; max_tokens };
        levels = F.levels_of_pairs pairs;
        pairs;
        corpus_dir = corpus;
        fault_sweep;
        shrink_budget;
        fuel = None;
      }
    in
    let summary = F.run ~log:print_endline opts in
    print_string (F.render summary);
    (match json with
    | None -> ()
    | Some "-" -> print_endline (Pld_telemetry.Json.to_string (F.summary_json summary))
    | Some file -> Pld_telemetry.Json.write_file ~file (F.summary_json summary));
    if summary.F.s_failed > 0 then exit 1
  in
  Cmd.v (Cmd.info "fuzz" ~doc)
    Term.(
      const run $ seed_arg $ count_arg $ max_ops_arg $ max_tokens_arg $ pairs_arg $ corpus_arg
      $ json_arg $ fault_sweep_arg $ shrink_budget_arg $ incremental_arg $ steps_arg)

let () =
  let doc = "PLD: partition, link and load applications on programmable logic devices (simulated)" in
  let info = Cmd.info "pldc" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; floorplan_cmd; source_cmd; compile_cmd; run_cmd; profile_cmd; cache_cmd;
            analyze_cmd; baseline_cmd; fuzz_cmd; status_cmd; top_cmd; metrics_cmd; health_cmd;
          ]))
