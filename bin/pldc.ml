(* pldc: the PLD compiler driver (§6's automated tool flow) as a CLI.

     pldc list                         benchmarks available
     pldc floorplan                    device pages (Tab. 1 / Fig. 8)
     pldc source optical               dump an application's C-like source
     pldc compile optical -O1          compile and report
     pldc run optical -O1              compile, deploy, link, run, check *)

open Cmdliner
module B = Pld_core.Build
module R = Pld_core.Runner
open Pld_rosetta

let fp = Pld_fabric.Floorplan.u50 ()
let hw = Pld_ir.Graph.Hw { page_hint = None }

let level_conv =
  let parse = function
    | "-O0" | "O0" | "0" -> Ok B.O0
    | "-O1" | "O1" | "1" -> Ok B.O1
    | "-O3" | "O3" | "3" -> Ok B.O3
    | "vitis" -> Ok B.Vitis
    | s -> Error (`Msg (Printf.sprintf "unknown level %S (use O0, O1, O3 or vitis)" s))
  in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (B.level_name l))

let bench_conv =
  let parse s =
    match Suite.find s with
    | b -> Ok b
    | exception Not_found ->
        Error (`Msg (Printf.sprintf "unknown benchmark %S (have: %s)" s (String.concat ", " Suite.names)))
  in
  Arg.conv (parse, fun fmt b -> Format.pp_print_string fmt b.Suite.name)

let bench_arg = Arg.(required & pos 0 (some bench_conv) None & info [] ~docv:"BENCH")

let level_arg =
  Arg.(value & opt level_conv B.O1 & info [ "O"; "level" ] ~docv:"LEVEL" ~doc:"Optimization level: O0, O1, O3 or vitis.")

let workers_arg =
  Arg.(
    value & opt int 22
    & info [ "workers" ]
        ~doc:"Modeled compile-cluster width for the reported -O1 cluster (LPT) wall time.")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "j"; "jobs" ]
        ~doc:"Executor worker domains running page compiles in parallel (1 = sequential).")

let cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache-dir" ] ~docv:"DIR"
        ~doc:
          "Persist compiled artifacts to a content-addressed store in $(docv), so a rerun after \
           a one-operator edit recompiles exactly that operator.")

let trace_arg =
  Arg.(value & flag & info [ "trace" ] ~doc:"Print the engine's event trace after the build.")

let pace_arg =
  Arg.(
    value & opt float 0.0
    & info [ "pace" ]
        ~doc:
          "Throttle each job to this many wall seconds per modeled backend-tool second, making \
           measured wall-clock reflect the modeled tool runs (0 = off).")

let list_cmd =
  let doc = "List the bundled Rosetta applications." in
  let run () =
    List.iter
      (fun b ->
        let g = b.Suite.graph hw in
        Printf.printf "%-10s %-20s %d operators, %d channels\n" b.Suite.name b.Suite.paper_name
          (List.length g.Pld_ir.Graph.instances)
          (List.length g.Pld_ir.Graph.channels))
      Suite.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

let floorplan_cmd =
  let doc = "Print the device floorplan and page inventory." in
  let run () =
    List.iter
      (fun (ty, (cap : Pld_netlist.Netlist.res), n) ->
        Printf.printf "Type-%d: %d x { %d LUT, %d FF, %d BRAM18, %d DSP }\n" ty n
          cap.Pld_netlist.Netlist.luts cap.Pld_netlist.Netlist.ffs cap.Pld_netlist.Netlist.brams
          cap.Pld_netlist.Netlist.dsps)
      (Pld_fabric.Floorplan.type_summary fp);
    print_newline ();
    print_string (Pld_fabric.Floorplan.render fp)
  in
  Cmd.v (Cmd.info "floorplan" ~doc) Term.(const run $ const ())

let source_cmd =
  let doc = "Dump the application's generated C-like source." in
  let run b =
    let g = b.Suite.graph hw in
    print_endline (Pld_ir.Graph.source g);
    List.iter
      (fun (i : Pld_ir.Graph.instance) ->
        print_newline ();
        print_endline (Pld_ir.Op.source i.op))
      g.Pld_ir.Graph.instances
  in
  Cmd.v (Cmd.info "source" ~doc) Term.(const run $ bench_arg)

(* A bad --cache-dir (e.g. an existing file) is a user error, not an
   internal one. *)
let open_cache dir =
  try B.create_cache ?dir ()
  with Pld_engine.Store.Store_error msg ->
    Printf.eprintf "pldc: bad --cache-dir: %s\n" msg;
    exit 1

let compile_cmd =
  let doc = "Compile an application at the given level and report phases/areas." in
  let run b level workers jobs cache_dir trace pace =
    let cache = open_cache cache_dir in
    let app = B.compile ~cache ~workers ~jobs ~pace fp (b.Suite.graph hw) ~level in
    print_endline (Pld_core.Report.compile_summary app);
    Printf.printf "  cache: %s\n" (Pld_core.Report.cache_summary app.B.report);
    List.iter (fun (inst, page) -> Printf.printf "  %-16s -> page %d\n" inst page) app.B.assignment;
    (match app.B.monolithic with
    | Some m -> print_endline (Pld_pnr.Pnr.report m.Pld_core.Flow.pnr3)
    | None -> ());
    print_endline (Pld_core.Loader.describe_artifacts app);
    if trace then begin
      print_endline "-- engine trace --";
      List.iter print_endline (Pld_core.Report.trace_lines app.B.report)
    end
  in
  Cmd.v (Cmd.info "compile" ~doc)
    Term.(
      const run $ bench_arg $ level_arg $ workers_arg $ jobs_arg $ cache_dir_arg $ trace_arg
      $ pace_arg)

let run_cmd =
  let doc = "Compile, deploy to the card, link, execute a frame, and validate." in
  let run b level workers jobs cache_dir =
    let cache = open_cache cache_dir in
    let app = B.compile ~cache ~workers ~jobs fp (b.Suite.graph hw) ~level in
    let card = Pld_platform.Card.create () in
    let load_s = Pld_core.Loader.deploy card app in
    let inputs = b.Suite.workload () in
    let r = R.run app ~inputs in
    Printf.printf "%s %s: load+link %.4fs, %.0f MHz, %.4f ms/frame (bottleneck %s)\n" b.Suite.name
      (B.level_name level) load_s r.R.perf.R.fmax_mhz r.R.perf.R.ms_per_input r.R.perf.R.bottleneck;
    List.iteri
      (fun k (inst, line) -> if k < 5 then Printf.printf "  [softcore %s] %s\n" inst line)
      r.R.printed;
    let ok = b.Suite.check ~inputs r.R.outputs in
    Printf.printf "output check vs independent reference: %b\n" ok;
    if not ok then exit 1
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ bench_arg $ level_arg $ workers_arg $ jobs_arg $ cache_dir_arg)

let () =
  let doc = "PLD: partition, link and load applications on programmable logic devices (simulated)" in
  let info = Cmd.info "pldc" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; floorplan_cmd; source_cmd; compile_cmd; run_cmd ]))
