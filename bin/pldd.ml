(* pldd: the compile service daemon.

     pldd --socket pldd.sock --cache-dir /var/cache/pld &
     pldc --connect pldd.sock compile optical -O1

   One process owns the shared artifact store; any number of pldc
   clients (or raw newline-delimited-JSON speakers — see
   lib/service/protocol.mli) connect over a Unix-domain socket. Each
   connection is a thread submitting into the multi-tenant service
   queue; compiles run on the service's worker domains against the
   one shared cache, so tenant B's request for what tenant A already
   built is a hit, not a rebuild.

   The serving loop itself (socket claiming, drain-on-SIGTERM,
   connection error accounting) lives in lib/service/server.ml; this
   binary adds the Rosetta/traffic bench namespace, the Run request,
   and the operational flags. *)

open Cmdliner
module B = Pld_core.Build
module T = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json
module Log = Pld_telemetry.Log
module Fault = Pld_faults.Fault
module Store = Pld_engine.Store
module Service = Pld_service.Service
module Server = Pld_service.Server
module Traffic = Pld_service.Traffic
module Protocol = Pld_service.Protocol
open Pld_rosetta

let hw = Pld_ir.Graph.Hw { page_hint = None }

(* A bench name is either a Rosetta application or a synthetic
   traffic chain ("svc-3x0x7") — the same namespace `bench service`
   draws from, so clients can replay its workload. Rosetta benches
   carry their own (rate-correct) workloads; traffic chains are
   rate-1 so a ramp is always safe. *)
let resolve_bench name =
  match Traffic.chain_of_name name with
  | Ok chain -> Ok (Traffic.chain_graph chain, fun () -> Traffic.chain_workload chain)
  | Error _ -> (
      match Suite.find name with
      | b -> Ok (b.Suite.graph hw, b.Suite.workload)
      | exception Not_found ->
          Error
            (Printf.sprintf "unknown bench %S (rosetta: %s; or a svc-I[xJ...] traffic chain)" name
               (String.concat ", " Suite.names)))

let resolve_graph name = Result.map fst (resolve_bench name)

let handle_request server (e : Protocol.envelope) =
  let id = e.Protocol.rq_id in
  match e.Protocol.req with
  | Protocol.Run { bench; level; frames } -> (
      match (resolve_bench bench, Protocol.level_of_name level) with
      | Error msg, _ | _, Error msg -> Protocol.reply_error ~id msg
      | Ok (g, workload), Ok level -> (
          match
            Service.compile (Server.service server) ~tenant:e.Protocol.tenant
              ~priority:e.Protocol.priority ?deadline_ms:e.Protocol.deadline_ms
              ?trace_id:e.Protocol.trace ~level g
          with
          | Error rej -> Server.reply_of_reject ~id rej
          | Ok outcome -> (
              let module L = Pld_core.Loader in
              let module R = Pld_core.Runner in
              try
                let pmu = Pld_telemetry.Pmu.create () in
                let card = Pld_platform.Card.create ~pmu () in
                let dr = L.deploy card outcome.Service.o_app in
                (* The modeled runner executes one frame per request;
                   [frames] is accepted for protocol compatibility. *)
                ignore frames;
                let r = R.run ~pmu dr.L.app ~inputs:(workload ()) in
                (* Persist the run's fabric profile under the build's
                   own cache key — a later Profile request (any tenant,
                   cached or dedup'd build) reads this document. The
                   attribution report is embedded so clients need no
                   insight pass of their own. *)
                let profile =
                  Pld_core.Fabric_profile.of_run ?trace:e.Protocol.trace
                    ~tenant:e.Protocol.tenant ~pmu outcome.Service.o_app r
                in
                let bk = Pld_insight.Bottleneck.attribute profile in
                let doc =
                  match Pld_core.Fabric_profile.to_json profile with
                  | Json.Obj fields ->
                      Json.Obj (fields @ [ ("attribution", Pld_insight.Bottleneck.to_json bk) ])
                  | other -> other
                in
                Service.put_profile (Server.service server) g level doc;
                Protocol.reply_ok ~id
                  (Json.Obj
                     [
                       ("compile", Service.outcome_json outcome);
                       ("link_seconds", Json.Float dr.L.seconds);
                       ("fmax_mhz", Json.Float r.R.perf.R.fmax_mhz);
                       ("ms_per_frame", Json.Float r.R.perf.R.ms_per_input);
                       ( "outputs",
                         Json.Obj
                           (List.map
                              (fun (chan, vs) -> (chan, Json.Int (List.length vs)))
                              r.R.outputs) );
                     ])
              with e -> Protocol.reply_error ~id (Printexc.to_string e))))
  | _ -> Server.handle server ~resolve:resolve_graph e

let serve socket cache_dir max_bytes scrub_on_start queue_workers jobs workers pace seed
    max_in_flight max_queued write_budget shed_max_delay watchdog_timeout drain_grace faults_arg
    metrics_out metrics_interval log_level log_json flight_out =
  (* The structured logger is the daemon's one mouth: humans get
     rendered lines on stderr, machines get JSONL via --log-json, and
     post-mortems get the ring via --flight-out. Configure it before
     anything can fail so even startup errors are structured. *)
  let logger = Log.default in
  (match Log.level_of_name log_level with
  | Some l -> Log.set_level logger l
  | None ->
      Printf.eprintf "pldd: unknown --log-level %S (want debug|info|warn|error)\n" log_level;
      exit 1);
  Log.set_text_sink logger (Some (fun line -> Printf.eprintf "pldd: %s\n%!" line));
  let die msg =
    Log.error logger ~sub:"daemon" msg;
    exit 1
  in
  (match log_json with
  | None -> ()
  | Some file -> (
      match open_out_gen [ Open_append; Open_creat ] 0o644 file with
      | oc ->
          Log.set_json_sink logger
            (Some
               (fun line ->
                 output_string oc line;
                 output_char oc '\n';
                 flush oc))
      | exception Sys_error msg -> die (Printf.sprintf "bad --log-json: %s" msg)));
  let quota =
    {
      Service.max_in_flight;
      max_queued;
      cache_write_budget = (if write_budget < 0 then None else Some write_budget);
    }
  in
  let faults =
    match faults_arg with
    | None -> None
    | Some spec -> (
        match Fault.parse spec with
        | Ok s -> Some (Fault.create ~seed s)
        | Error msg -> die (Printf.sprintf "bad --faults: %s" msg))
  in
  let shed =
    match shed_max_delay with
    | None -> None
    | Some s -> Some { Service.default_shed_policy with Service.sp_max_delay_s = s }
  in
  (* Open the store ourselves (in quarantine mode, so sweep preserves
     corruption evidence) so --scrub-on-start can audit it before the
     first request is admitted. *)
  let cache =
    match cache_dir with
    | None -> None
    | Some dir -> (
        try
          let c = B.create_cache ~dir ?max_bytes ~quarantine:true () in
          (match B.cache_store c with
          | Some st when scrub_on_start ->
              print_endline ("pldd: " ^ Store.render_scrub (Store.scrub st))
          | _ -> ());
          Some c
        with Store.Store_error msg -> die (Printf.sprintf "bad --cache-dir: %s" msg))
  in
  (* Armed after flag validation so a usage error cannot trip a dump;
     from here on, any Error-level event (a watchdog kill, a fatal
     serve failure) writes the last-N-events + metrics flight file. *)
  (match flight_out with
  | Some file -> Log.arm_flight logger ~telemetry:T.default ~file ()
  | None -> ());
  let svc =
    Service.create ?cache ~queue_workers ~jobs ~workers ~pace ~seed ~default_quota:quota ?shed
      ?watchdog_timeout_s:watchdog_timeout ?faults ~logger ()
  in
  let on_listen () =
    Printf.printf "pldd: listening on %s (%d queue workers%s)\n%!" socket (max 1 queue_workers)
      (match cache_dir with Some d -> ", store " ^ d | None -> ", in-memory cache")
  in
  let result =
    Server.serve ~socket ~drain_grace_s:drain_grace ~logger ?metrics_out
      ~metrics_interval_s:metrics_interval ~on_listen ~service:svc ~handler:handle_request ()
  in
  match result with
  | Ok () -> print_endline "pldd: stopped"
  | Error msg ->
      Service.shutdown svc;
      die msg

let () =
  let socket_arg =
    Arg.(
      value & opt string "pldd.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Back the shared cache with a persistent artifact store in $(docv).")
  in
  let max_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~docv:"N" ~doc:"LRU size budget of the persistent store, in bytes.")
  in
  let scrub_arg =
    Arg.(
      value & flag
      & info [ "scrub-on-start" ]
          ~doc:
            "Audit the persistent store before serving: verify every entry's header and payload \
             digest, quarantining failures into store.quarantine/.")
  in
  let queue_workers_arg =
    Arg.(
      value & opt int 2
      & info [ "queue-workers" ] ~docv:"N" ~doc:"Worker domains draining the service queue.")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Executor domains per compile.")
  in
  let workers_arg =
    Arg.(
      value & opt int 22
      & info [ "workers" ] ~docv:"N" ~doc:"Modeled compile-cluster width (LPT makespan).")
  in
  let pace_arg =
    Arg.(
      value & opt float 0.0
      & info [ "pace" ] ~docv:"F" ~doc:"Wall seconds per modeled tool second (0 = flat out).")
  in
  let seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"N"
          ~doc:"P&R seed every job compiles with; fixed so equal requests share cache keys.")
  in
  let max_in_flight_arg =
    Arg.(
      value
      & opt int Service.default_quota.Service.max_in_flight
      & info [ "max-in-flight" ] ~docv:"N" ~doc:"Per-tenant concurrent running-job quota.")
  in
  let max_queued_arg =
    Arg.(
      value
      & opt int Service.default_quota.Service.max_queued
      & info [ "max-queued" ] ~docv:"N" ~doc:"Per-tenant admission limit on waiting jobs.")
  in
  let write_budget_arg =
    Arg.(
      value & opt int (-1)
      & info [ "write-budget" ] ~docv:"N"
          ~doc:
            "Per-tenant store-write budget; once spent, that tenant's builds stop persisting new \
             artifacts (reads stay shared). Negative = unlimited.")
  in
  let shed_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "shed-max-delay" ] ~docv:"SECONDS"
          ~doc:
            "Enable overload shedding: refuse low-priority work whose estimated queue delay \
             exceeds $(docv); the reply carries a retry_after_ms hint.")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "watchdog-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Write off any build running longer than $(docv): the job fails as LOST, the wedged \
             worker is quarantined, and a replacement worker is spawned.")
  in
  let drain_grace_arg =
    Arg.(
      value & opt float 5.0
      & info [ "drain-grace" ] ~docv:"SECONDS"
          ~doc:
            "On SIGTERM/SIGINT/shutdown, let queued and running builds finish for up to $(docv) \
             before stopping; meanwhile new submissions are refused as DRAINING.")
  in
  let faults_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"SPEC"
          ~doc:
            "Fault-injection spec (lib/faults syntax); hang=GRAPH\\@MS wedges that graph's compile \
             for MS milliseconds — the chaos harness's watchdog lever.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Keep a JSON metrics snapshot (incl. store and service stats) in $(docv): rewritten \
             atomically every --metrics-interval, on every 'metrics' request, and once more at \
             shutdown.")
  in
  let metrics_interval_arg =
    Arg.(
      value & opt float 5.0
      & info [ "metrics-interval" ] ~docv:"SECONDS"
          ~doc:"How often the --metrics-out snapshot is refreshed.")
  in
  let log_level_arg =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"Structured-log threshold: debug, info, warn or error.")
  in
  let log_json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "log-json" ] ~docv:"FILE"
          ~doc:
            "Append every structured log event to $(docv) as one JSON object per line (stderr \
             keeps the human rendering).")
  in
  let flight_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-out" ] ~docv:"FILE"
          ~doc:
            "Arm the flight recorder: on any error-level event (watchdog kill, fatal serve \
             failure), dump the recent log ring plus a metrics snapshot to $(docv).")
  in
  let doc = "PLD compile-as-a-service daemon (shared multi-tenant artifact store)" in
  let info = Cmd.info "pldd" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const serve $ socket_arg $ cache_dir_arg $ max_bytes_arg $ scrub_arg $ queue_workers_arg
      $ jobs_arg $ workers_arg $ pace_arg $ seed_arg $ max_in_flight_arg $ max_queued_arg
      $ write_budget_arg $ shed_arg $ watchdog_arg $ drain_grace_arg $ faults_arg
      $ metrics_out_arg $ metrics_interval_arg $ log_level_arg $ log_json_arg $ flight_out_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
