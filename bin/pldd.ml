(* pldd: the compile service daemon.

     pldd --socket pldd.sock --cache-dir /var/cache/pld &
     pldc --connect pldd.sock compile optical -O1

   One process owns the shared artifact store; any number of pldc
   clients (or raw newline-delimited-JSON speakers — see
   lib/service/protocol.mli) connect over a Unix-domain socket. Each
   connection is a thread submitting into the multi-tenant service
   queue; compiles run on the service's worker domains against the
   one shared cache, so tenant B's request for what tenant A already
   built is a hit, not a rebuild. *)

open Cmdliner
module B = Pld_core.Build
module T = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json
module Service = Pld_service.Service
module Traffic = Pld_service.Traffic
module Protocol = Pld_service.Protocol
open Pld_rosetta

let hw = Pld_ir.Graph.Hw { page_hint = None }

(* A bench name is either a Rosetta application or a synthetic
   traffic chain ("svc-3x0x7") — the same namespace `bench service`
   draws from, so clients can replay its workload. Rosetta benches
   carry their own (rate-correct) workloads; traffic chains are
   rate-1 so a ramp is always safe. *)
let resolve_graph name =
  match Traffic.chain_of_name name with
  | Ok chain -> Ok (Traffic.chain_graph chain, fun () -> Traffic.chain_workload chain)
  | Error _ -> (
      match Suite.find name with
      | b -> Ok (b.Suite.graph hw, b.Suite.workload)
      | exception Not_found ->
          Error
            (Printf.sprintf "unknown bench %S (rosetta: %s; or a svc-I[xJ...] traffic chain)" name
               (String.concat ", " Suite.names)))

let handle_request svc stop (e : Protocol.envelope) =
  let id = e.Protocol.rq_id in
  match e.Protocol.req with
  | Protocol.Ping -> Protocol.reply_ok ~id (Json.Obj [ ("pong", Json.Bool true) ])
  | Protocol.Stats -> Protocol.reply_ok ~id (Service.stats_json (Service.stats svc))
  | Protocol.Shutdown ->
      stop ();
      Protocol.reply_ok ~id (Json.Obj [ ("stopping", Json.Bool true) ])
  | Protocol.Compile { bench; level } -> (
      match (resolve_graph bench, Protocol.level_of_name level) with
      | Error msg, _ | _, Error msg -> Protocol.reply_error ~id msg
      | Ok (g, _), Ok level -> (
          match
            Service.compile svc ~tenant:e.Protocol.tenant ~priority:e.Protocol.priority ~level g
          with
          | Ok outcome -> Protocol.reply_ok ~id (Service.outcome_json outcome)
          | Error msg -> Protocol.reply_error ~id msg))
  | Protocol.Run { bench; level; frames } -> (
      match (resolve_graph bench, Protocol.level_of_name level) with
      | Error msg, _ | _, Error msg -> Protocol.reply_error ~id msg
      | Ok (g, workload), Ok level -> (
          match
            Service.compile svc ~tenant:e.Protocol.tenant ~priority:e.Protocol.priority ~level g
          with
          | Error msg -> Protocol.reply_error ~id msg
          | Ok outcome -> (
              let module L = Pld_core.Loader in
              let module R = Pld_core.Runner in
              try
                let card = Pld_platform.Card.create () in
                let dr = L.deploy card outcome.Service.o_app in
                (* The modeled runner executes one frame per request;
                   [frames] is accepted for protocol compatibility. *)
                ignore frames;
                let r = R.run dr.L.app ~inputs:(workload ()) in
                Protocol.reply_ok ~id
                  (Json.Obj
                     [
                       ("compile", Service.outcome_json outcome);
                       ("link_seconds", Json.Float dr.L.seconds);
                       ("fmax_mhz", Json.Float r.R.perf.R.fmax_mhz);
                       ("ms_per_frame", Json.Float r.R.perf.R.ms_per_input);
                       ( "outputs",
                         Json.Obj
                           (List.map
                              (fun (chan, vs) -> (chan, Json.Int (List.length vs)))
                              r.R.outputs) );
                     ])
              with e -> Protocol.reply_error ~id (Printexc.to_string e))))

let handle_conn svc stop fd =
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  let send reply =
    output_string oc (Json.to_string (Protocol.reply_to_json reply));
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | exception Sys_error _ -> ()
    | line ->
        (match Json.of_string line with
        | exception Json.Parse_error msg -> send (Protocol.reply_error ~id:0 ("bad request: " ^ msg))
        | j -> (
            match Protocol.envelope_of_json j with
            | Error msg -> send (Protocol.reply_error ~id:0 msg)
            | Ok envelope -> send (handle_request svc stop envelope)));
        loop ()
  in
  (try loop () with Sys_error _ | Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let serve socket cache_dir max_bytes queue_workers jobs workers pace seed max_in_flight max_queued
    write_budget metrics_out =
  let quota =
    {
      Service.max_in_flight;
      max_queued;
      cache_write_budget = (if write_budget < 0 then None else Some write_budget);
    }
  in
  let svc =
    try
      Service.create ?cache_dir ?max_bytes ~queue_workers ~jobs ~workers ~pace ~seed
        ~default_quota:quota ()
    with Pld_engine.Store.Store_error msg ->
      Printf.eprintf "pldd: bad --cache-dir: %s\n" msg;
      exit 1
  in
  if Sys.file_exists socket then Unix.unlink socket;
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX socket);
  Unix.listen listen_fd 64;
  let stopping = Atomic.make false in
  let stop () =
    if not (Atomic.exchange stopping true) then
      (* Closing the listener pops the accept loop out of its wait. *)
      try Unix.shutdown listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()
  in
  Sys.set_signal Sys.sigint (Sys.Signal_handle (fun _ -> stop ()));
  Sys.set_signal Sys.sigterm (Sys.Signal_handle (fun _ -> stop ()));
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  Printf.printf "pldd: listening on %s (%d queue workers%s)\n%!" socket (max 1 queue_workers)
    (match cache_dir with Some d -> ", store " ^ d | None -> ", in-memory cache");
  let threads = ref [] in
  (try
     while not (Atomic.get stopping) do
       let fd, _ = Unix.accept listen_fd in
       if Atomic.get stopping then Unix.close fd
       else threads := Thread.create (handle_conn svc stop) fd :: !threads
     done
   with Unix.Unix_error ((Unix.EBADF | Unix.EINVAL | Unix.ECONNABORTED | Unix.EINTR), _, _) -> ());
  List.iter Thread.join !threads;
  Service.shutdown svc;
  (match metrics_out with Some file -> T.write_metrics T.default ~file | None -> ());
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  if Sys.file_exists socket then Unix.unlink socket;
  print_endline "pldd: stopped"

let () =
  let socket_arg =
    Arg.(
      value & opt string "pldd.sock"
      & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket to listen on.")
  in
  let cache_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache-dir" ] ~docv:"DIR"
          ~doc:"Back the shared cache with a persistent artifact store in $(docv).")
  in
  let max_bytes_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-bytes" ] ~docv:"N" ~doc:"LRU size budget of the persistent store, in bytes.")
  in
  let queue_workers_arg =
    Arg.(
      value & opt int 2
      & info [ "queue-workers" ] ~docv:"N" ~doc:"Worker domains draining the service queue.")
  in
  let jobs_arg =
    Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc:"Executor domains per compile.")
  in
  let workers_arg =
    Arg.(
      value & opt int 22
      & info [ "workers" ] ~docv:"N" ~doc:"Modeled compile-cluster width (LPT makespan).")
  in
  let pace_arg =
    Arg.(
      value & opt float 0.0
      & info [ "pace" ] ~docv:"F" ~doc:"Wall seconds per modeled tool second (0 = flat out).")
  in
  let seed_arg =
    Arg.(
      value & opt int 7
      & info [ "seed" ] ~docv:"N"
          ~doc:"P&R seed every job compiles with; fixed so equal requests share cache keys.")
  in
  let max_in_flight_arg =
    Arg.(
      value
      & opt int Service.default_quota.Service.max_in_flight
      & info [ "max-in-flight" ] ~docv:"N" ~doc:"Per-tenant concurrent running-job quota.")
  in
  let max_queued_arg =
    Arg.(
      value
      & opt int Service.default_quota.Service.max_queued
      & info [ "max-queued" ] ~docv:"N" ~doc:"Per-tenant admission limit on waiting jobs.")
  in
  let write_budget_arg =
    Arg.(
      value & opt int (-1)
      & info [ "write-budget" ] ~docv:"N"
          ~doc:
            "Per-tenant store-write budget; once spent, that tenant's builds stop persisting new \
             artifacts (reads stay shared). Negative = unlimited.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:"On shutdown, write the metrics registry (incl. store and service stats) as JSON.")
  in
  let doc = "PLD compile-as-a-service daemon (shared multi-tenant artifact store)" in
  let info = Cmd.info "pldd" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const serve $ socket_arg $ cache_dir_arg $ max_bytes_arg $ queue_workers_arg $ jobs_arg
      $ workers_arg $ pace_arg $ seed_arg $ max_in_flight_arg $ max_queued_arg $ write_budget_arg
      $ metrics_out_arg)
  in
  exit (Cmd.eval (Cmd.v info term))
