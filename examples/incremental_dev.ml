(* The paper's development story (§1, §6): rapid incremental refinement.

   A developer brings up the spam filter:
     1. everything on softcores (-O0): compiles in well under a second,
        printf debugging works;
     2. one operator at a time migrates to an FPGA page (-O1) — only
        the changed operator recompiles, the rest come from the build
        cache, and the application keeps running after every step;
     3. final all-pages build.

   Each step opens a fresh cache handle on the same --cache-dir store,
   i.e. behaves like a separate pldc invocation: the artifacts carried
   between steps live on disk, not in this process.

     dune exec examples/incremental_dev.exe *)

open Pld_ir
open Pld_rosetta
module B = Pld_core.Build
module R = Pld_core.Runner

let () =
  let fp = Pld_fabric.Floorplan.u50 () in
  let dir = ".pld-example-cache" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  (* A fresh handle per compile: all sharing goes through the on-disk store. *)
  let fresh_cache () = B.create_cache ~dir () in
  let inputs = Spam_filter.workload () in
  (* Pin every operator to a page with an explicit p_num pragma (the
     paper's Fig. 2(a) line 3), so migrating one operator never moves
     the others — the key to true incremental recompilation. *)
  let base =
    let g0 = Spam_filter.graph () in
    let warmup = B.compile ~cache:(B.create_cache ()) fp g0 ~level:B.O1 in
    List.fold_left
      (fun g (inst, page) -> Graph.retarget g inst (Graph.Hw { page_hint = Some page }))
      g0 warmup.B.assignment
  in
  let step label g level =
    let app = B.compile ~cache:(fresh_cache ()) fp g ~level in
    let r = R.run app ~inputs in
    Printf.printf "%-34s compile %6.4fs (%d rebuilt, %d cached)  %8.4f ms/frame  ok=%b\n%!" label
      app.B.report.B.wall_seconds app.B.report.B.recompiled app.B.report.B.cache_hits
      r.R.perf.R.ms_per_input
      (Spam_filter.check ~inputs r.R.outputs);
    r
  in
  (* Step 1: everything on softcores; printf debugging is available. *)
  let all_soft = Graph.retarget_all base Graph.Riscv in
  let dbg =
    {
      all_soft with
      Graph.instances =
        List.map
          (fun (i : Graph.instance) ->
            if i.inst_name = "reduce_sigmoid" then
              {
                i with
                op =
                  {
                    i.op with
                    Op.body =
                      Op.Printf ("reduce: frame start", []) :: i.op.Op.body;
                  };
              }
            else i)
          all_soft.Graph.instances;
    }
  in
  print_endline "== step 1: all operators on PicoRV32 softcores (-O0) ==";
  let r = step "all -O0 (with printf)" dbg B.O0 in
  List.iteri (fun k (inst, line) -> if k < 2 then Printf.printf "    [softcore %s] %s\n" inst line) r.R.printed;
  (* Step 2: migrate operators one at a time to FPGA pages. Only the
     retargeted operator compiles; everything else is cached. *)
  print_endline "\n== step 2: migrate one operator at a time to FPGA pages ==";
  let order = List.map (fun (i : Graph.instance) -> i.inst_name) base.Graph.instances in
  let pinned_target inst =
    (Pld_core.Flow.find_instance_exn ~context:"incremental_dev" base inst).Graph.target
  in
  let _ =
    List.fold_left
      (fun g inst ->
        let g = Graph.retarget g inst (pinned_target inst) in
        ignore (step (Printf.sprintf "  %s -> fabric page" inst) g B.O1);
        g)
      all_soft order
  in
  (* Step 3: the settled design. *)
  print_endline "\n== step 3: the settled all-pages build (warm cache) ==";
  ignore (step "all -O1" base B.O1);
  print_endline
    "\nEvery step left a runnable, testable application — the edit-compile-debug loop the paper argues FPGAs need."
