(* Quickstart: write a two-operator streaming application, validate it,
   compile it with the separate-compilation -O1 flow, load it onto the
   (simulated) data-center card, link it through the NoC, and run it.

     dune exec examples/quickstart.exe *)

open Pld_ir
module B = Pld_core.Build

let u32 = Dtype.word
let n = 16

(* An operator is a C-like streaming function (Fig. 2(d) of the paper):
   stream ports in/out, static loops, no allocation or recursion. *)
let scale_by_3 =
  Op.make ~name:"scale" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" (Dtype.SInt 32) ]
    [
      Op.For
        {
          var = "i";
          lo = 0;
          hi = n;
          pipeline = true;
          body =
            [
              Op.Read (Op.LVar "x", "in");
              Op.Write ("out", Expr.(Bin (Mul, var "x", int (Dtype.SInt 32) 3)));
            ];
        };
    ]

let running_sum =
  Op.make ~name:"prefix_sum" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" (Dtype.SInt 32); Op.scalar "acc" (Dtype.SInt 32) ]
    [
      Op.Assign (Op.LVar "acc", Expr.int (Dtype.SInt 32) 0);
      Op.For
        {
          var = "i";
          lo = 0;
          hi = n;
          pipeline = true;
          body =
            [
              Op.Read (Op.LVar "x", "in");
              Op.Assign (Op.LVar "acc", Expr.(var "acc" + var "x"));
              Op.Write ("out", Expr.var "acc");
            ];
        };
    ]

(* The top-level kernel: operators connected by latency-insensitive
   stream links (Fig. 2(b)). *)
let top =
  Graph.make ~name:"quickstart"
    ~channels:[ Graph.channel "host_in"; Graph.channel "mid"; Graph.channel "host_out" ]
    ~instances:
      [
        Graph.instance scale_by_3 [ ("in", "host_in"); ("out", "mid") ];
        Graph.instance running_sum [ ("in", "mid"); ("out", "host_out") ];
      ]
    ~inputs:[ "host_in" ] ~outputs:[ "host_out" ]

let () =
  print_endline "== the generated top-level source ==";
  print_endline (Graph.source top);
  (* 1. Functional check on the host (always available, instant). *)
  let inputs = [ ("host_in", List.init n (fun i -> Value.of_int u32 (i + 1))) ] in
  let reference = Pld_kpn.Run_graph.run top ~inputs in
  Printf.printf "\nhost reference output: %s\n"
    (String.concat " "
       (List.map (fun v -> string_of_int (Value.to_int v)) (List.assoc "host_out" reference.Pld_kpn.Run_graph.outputs)));
  (* 2. Separate compilation: each operator to its own FPGA page. *)
  let fp = Pld_fabric.Floorplan.u50 () in
  let app = B.compile fp top ~level:B.O1 in
  print_endline "\n== -O1 build ==";
  print_endline (Pld_core.Report.compile_summary app);
  List.iter
    (fun (inst, page) -> Printf.printf "  %s -> page %d\n" inst page)
    app.B.assignment;
  (* 3. Load and link on the card. *)
  let card = Pld_platform.Card.create () in
  let load_s = (Pld_core.Loader.deploy card app).Pld_core.Loader.seconds in
  Printf.printf "\n== card after deploy (%.3f s to load + link) ==\n%s\n" load_s
    (Pld_platform.Card.describe card);
  (* 4. Run on the accelerator. *)
  let r = Pld_core.Runner.run app ~inputs in
  Printf.printf "\naccelerator output:    %s\n"
    (String.concat " " (List.map (fun v -> string_of_int (Value.to_int v)) (List.assoc "host_out" r.Pld_core.Runner.outputs)));
  Printf.printf "matches host reference: %b\n"
    (r.Pld_core.Runner.outputs = reference.Pld_kpn.Run_graph.outputs);
  Printf.printf "estimated performance: %.0f MHz, %.1f us per frame (bottleneck: %s)\n"
    r.Pld_core.Runner.perf.Pld_core.Runner.fmax_mhz
    (r.Pld_core.Runner.perf.Pld_core.Runner.ms_per_input *. 1000.0)
    r.Pld_core.Runner.perf.Pld_core.Runner.bottleneck
