let () =
  Alcotest.run "pld"
    [
      ("util", Test_util.suite);
      ("apfixed", Test_apfixed.suite);
      ("ir", Test_ir.suite);
      ("aptype", Test_aptype.suite);
      ("kpn", Test_kpn.suite);
      ("hls", Test_hls.suite);
      ("noc", Test_noc.suite);
      ("riscv", Test_riscv.suite);
      (* engine's two-process store tests fork, which OCaml 5 forbids
         once any domain has been created — keep them ahead of every
         suite that spawns domains (pnr multi-seed, service, ...). *)
      ("engine", Test_engine.suite);
      ("pnr", Test_pnr.suite);
      ("telemetry", Test_telemetry.suite);
      ("pmu", Test_pmu.suite);
      ("insight", Test_insight.suite);
      ("pld", Test_pld.suite);
      ("service", Test_service.suite);
      ("rosetta", Test_rosetta.suite);
      ("faults", Test_faults.suite);
      ("proptest", Test_proptest.suite);
    ]
