let () =
  Alcotest.run "pld"
    [
      ("util", Test_util.suite);
      ("apfixed", Test_apfixed.suite);
      ("ir", Test_ir.suite);
      ("aptype", Test_aptype.suite);
      ("kpn", Test_kpn.suite);
      ("hls", Test_hls.suite);
      ("pnr", Test_pnr.suite);
      ("noc", Test_noc.suite);
      ("riscv", Test_riscv.suite);
      ("engine", Test_engine.suite);
      ("telemetry", Test_telemetry.suite);
      ("pmu", Test_pmu.suite);
      ("insight", Test_insight.suite);
      ("pld", Test_pld.suite);
      ("service", Test_service.suite);
      ("rosetta", Test_rosetta.suite);
      ("faults", Test_faults.suite);
      ("proptest", Test_proptest.suite);
    ]
