open Pld_noc

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let flit dst payload = Bft.data_flit ~dst_leaf:dst ~dst_stream:0 payload

let test_single_delivery () =
  let net = Bft.create () in
  check_bool "inject" true (Bft.inject net ~leaf:1 (flit 5 42l));
  Bft.run_until_idle net;
  match Bft.eject net ~leaf:5 with
  | [ (0, 42l) ] -> ()
  | l -> Alcotest.failf "got %d flits" (List.length l)

let test_inject_port_busy () =
  let net = Bft.create () in
  check_bool "first" true (Bft.inject net ~leaf:1 (flit 5 1l));
  check_bool "second rejected same cycle" false (Bft.inject net ~leaf:1 (flit 5 2l));
  Bft.step net;
  check_bool "after step ok" true (Bft.inject net ~leaf:1 (flit 5 2l));
  Bft.run_until_idle net;
  check_int "both delivered" 2 (List.length (Bft.eject net ~leaf:5))

let test_config_packets () =
  let net = Bft.create () in
  check_bool "cfg" true
    (Bft.inject net ~leaf:0
       (Bft.config_flit ~dst_leaf:7 ~reg:2 ~dst_leaf_value:9 ~dst_stream_value:4 ()));
  Bft.run_until_idle net;
  Alcotest.(check (option (pair int int))) "register written" (Some (9, 4)) (Bft.lookup_route net ~leaf:7 ~stream:2);
  (* Re-linking without recompiling: overwrite the register. *)
  Bft.configure net ~leaf:7 ~stream:2 ~dst_leaf:3 ~dst_stream:1;
  Alcotest.(check (option (pair int int))) "relinked" (Some (3, 1)) (Bft.lookup_route net ~leaf:7 ~stream:2)

let test_no_loss_under_load () =
  let net = Bft.create () in
  let rng = Pld_util.Rng.create 5 in
  let sent = ref 0 in
  let expected = Array.make (Bft.leaf_count net) 0 in
  for _ = 1 to 60 do
    for leaf = 1 to 20 do
      let dst = 1 + Pld_util.Rng.int rng 20 in
      if Bft.inject net ~leaf (flit dst (Int32.of_int !sent)) then begin
        incr sent;
        expected.(dst) <- expected.(dst) + 1
      end
    done;
    Bft.step net
  done;
  Bft.run_until_idle net;
  let received = ref 0 in
  for leaf = 0 to Bft.leaf_count net - 1 do
    let got = List.length (Bft.eject net ~leaf) in
    check_int (Printf.sprintf "leaf %d count" leaf) expected.(leaf) got;
    received := !received + got
  done;
  check_int "all delivered" !sent !received;
  check_bool "sent something" true (!sent > 500)

let test_latency_grows_with_distance () =
  (* Same-subtree traffic should beat cross-tree traffic. *)
  let near = Bft.create () in
  check_bool "x" true (Bft.inject near ~leaf:0 (flit 1 7l));
  Bft.run_until_idle near;
  let near_cycles = (Bft.stats near).Bft.cycles in
  let far = Bft.create () in
  check_bool "x" true (Bft.inject far ~leaf:0 (flit 63 7l));
  Bft.run_until_idle far;
  check_bool "far takes longer" true ((Bft.stats far).Bft.cycles > near_cycles)

let test_traffic_serialization () =
  (* One leaf sending n tokens takes ~n cycles: single injection port. *)
  let net = Bft.create () in
  let r =
    Traffic.replay net
      [ { Traffic.src_leaf = 3; src_stream = 0; dst_leaf = 9; dst_stream = 0; tokens = 400 } ]
  in
  check_int "delivered" 400 r.Traffic.delivered;
  check_bool "cycles close to token count" true (r.Traffic.cycles >= 400 && r.Traffic.cycles < 450)

let test_traffic_parallel_streams () =
  let net = Bft.create () in
  let links =
    List.init 8 (fun i ->
        { Traffic.src_leaf = 1 + i; src_stream = 0; dst_leaf = 10 + i; dst_stream = 0; tokens = 300 })
  in
  let r = Traffic.replay net links in
  check_int "delivered" 2400 r.Traffic.delivered;
  check_bool "parallel links overlap" true (r.Traffic.cycles < 900)

let test_traffic_shared_port_bottleneck () =
  (* Two streams out of one leaf share one injection port: drain time
     doubles — the -O1 bandwidth bottleneck of §7.4. *)
  let net = Bft.create () in
  let links =
    [
      { Traffic.src_leaf = 2; src_stream = 0; dst_leaf = 5; dst_stream = 0; tokens = 200 };
      { Traffic.src_leaf = 2; src_stream = 1; dst_leaf = 9; dst_stream = 1; tokens = 200 };
    ]
  in
  let r = Traffic.replay net links in
  check_bool "serialized" true (r.Traffic.cycles >= 400)

let test_config_cycles_small () =
  (* Linking is a few packets per page: configuring 22 links takes
     well under a microsecond at 200 MHz. *)
  let net = Bft.create () in
  let links =
    List.init 22 (fun i ->
        { Traffic.src_leaf = 1 + i; src_stream = 0; dst_leaf = 1 + ((i + 1) mod 22); dst_stream = 0; tokens = 0 })
  in
  let cycles = Traffic.config_cycles net links in
  check_bool "fast linking" true (cycles < 200);
  List.iter
    (fun (l : Traffic.link) ->
      Alcotest.(check (option (pair int int)))
        "route installed"
        (Some (l.Traffic.dst_leaf, l.Traffic.dst_stream))
        (Bft.lookup_route net ~leaf:l.Traffic.src_leaf ~stream:l.Traffic.src_stream))
    links

let test_relay_vs_bft () =
  (* Dedicated wires beat the shared BFT when one leaf fans out. *)
  let fp = Pld_fabric.Floorplan.u50 () in
  let links =
    List.init 3 (fun i ->
        { Traffic.src_leaf = 1; src_stream = i; dst_leaf = 5 + i; dst_stream = i; tokens = 200 })
  in
  let net = Bft.create ~leaves:32 () in
  let bft = Traffic.replay net links in
  let relay = Relay.replay fp links in
  check_bool "bft serializes at the shared port" true (bft.Traffic.cycles >= 600);
  check_bool "dedicated wires stream in parallel" true (relay.Relay.cycles < 300);
  check_bool "dedicated wires cost area" true (relay.Relay.wire_luts > 0);
  check_bool "relinking costs a compile" true (relay.Relay.relink_seconds > 0.0)

let test_link_gauges_and_hop_histogram () =
  (* A congested dup/zip shape: leaf 1 duplicates one stream toward
     three consumers while three producers zip back into leaf 5 — the
     fan-out serializes at leaf 1's injection port and the reconverging
     half contends for leaf 5's ejection path, so delivered-flit ages
     stretch well past the uncongested diameter. *)
  let module Telemetry = Pld_telemetry.Telemetry in
  let tele = Telemetry.create () in
  let net = Bft.create ~telemetry:tele () in
  let dup =
    List.init 3 (fun i ->
        { Traffic.src_leaf = 1; src_stream = i; dst_leaf = 6 + i; dst_stream = 0; tokens = 120 })
  in
  let zip =
    List.init 3 (fun i ->
        { Traffic.src_leaf = 2 + i; src_stream = 3; dst_leaf = 5; dst_stream = i; tokens = 120 })
  in
  let links = dup @ zip in
  let r = Traffic.replay net links in
  check_int "everything delivered" (Traffic.total_tokens links) r.Traffic.delivered;
  (* Per-link high-water gauges mirror the cumulative flit counts the
     switches themselves report. *)
  let traffic = Bft.link_traffic net in
  check_bool "some physical link carried traffic" true (traffic <> []);
  List.iter
    (fun (link, flits) ->
      Alcotest.(check (option (float 1e-9)))
        (Printf.sprintf "noc.link.%d.flits gauge matches switch count" link)
        (Some (float_of_int flits))
        (Telemetry.gauge_value tele (Printf.sprintf "noc.link.%d.flits" link)))
    traffic;
  let before = List.map (fun (link, flits) -> (link, float_of_int flits)) traffic in
  (* A second, lighter replay on the same network must never lower a
     gauge: the counts are cumulative and the recording is max-based. *)
  let _ =
    Traffic.replay net
      [ { Traffic.src_leaf = 20; src_stream = 7; dst_leaf = 21; dst_stream = 0; tokens = 1 } ]
  in
  List.iter
    (fun (link, hw) ->
      match Telemetry.gauge_value tele (Printf.sprintf "noc.link.%d.flits" link) with
      | None -> Alcotest.failf "gauge for link %d vanished" link
      | Some v -> check_bool (Printf.sprintf "link %d high-water kept" link) true (v >= hw))
    before;
  (* Hop-latency histogram: the power-of-two bucket edges are part of
     the exposition contract, and congestion pushes mass past the
     8-cycle bucket an idle network would stay under. *)
  let buckets = Telemetry.bucket_counts tele "noc.hop_latency" in
  Alcotest.(check (list (float 1e-9)))
    "bucket edges" [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; Float.infinity ]
    (List.map fst buckets);
  let total = List.fold_left (fun a (_, c) -> a + c) 0 buckets in
  check_int "one age sample per delivered flit" (r.Traffic.delivered + 1) total;
  let congested = List.fold_left (fun a (e, c) -> if e > 8.0 then a + c else a) 0 buckets in
  check_bool "congestion reaches the high buckets" true (congested > 0)

let prop_random_traffic_no_loss =
  QCheck.Test.make ~name:"random traffic: everything delivered exactly once" ~count:25
    QCheck.(list_of_size (Gen.int_range 1 12) (pair (int_range 1 30) (int_range 1 30)))
    (fun pairs ->
      let net = Bft.create () in
      let links =
        List.mapi
          (fun i (s, d) ->
            { Traffic.src_leaf = s; src_stream = i; dst_leaf = d; dst_stream = i; tokens = 20 })
          (List.filter (fun (s, d) -> s <> d) pairs)
      in
      QCheck.assume (links <> []);
      (* Distinct sources may repeat; merge tokens by giving each link a
         distinct stream id, which Traffic handles. *)
      let r = Traffic.replay net links in
      r.Traffic.delivered = List.fold_left (fun a (l : Traffic.link) -> a + l.Traffic.tokens) 0 links)

let suite =
  [
    ("single flit delivery", `Quick, test_single_delivery);
    ("injection port busy", `Quick, test_inject_port_busy);
    ("config packets write registers", `Quick, test_config_packets);
    ("no loss under load", `Quick, test_no_loss_under_load);
    ("latency grows with distance", `Quick, test_latency_grows_with_distance);
    ("traffic: single link serializes", `Quick, test_traffic_serialization);
    ("traffic: parallel links overlap", `Quick, test_traffic_parallel_streams);
    ("traffic: shared port bottleneck", `Quick, test_traffic_shared_port_bottleneck);
    ("linking config is cheap", `Quick, test_config_cycles_small);
    ("relay-station alternative", `Quick, test_relay_vs_bft);
    ("link gauges and hop-latency buckets under dup/zip congestion", `Quick, test_link_gauges_and_hop_histogram);
    QCheck_alcotest.to_alcotest prop_random_traffic_no_loss;
  ]
