open Pld_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    check_bool "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  check_bool "split streams differ" true (xs <> ys)

let test_rng_gaussian () =
  let rng = Rng.create 3 in
  let n = 20_000 in
  let samples = List.init n (fun _ -> Rng.gaussian rng ~mu:5.0 ~sigma:2.0) in
  let m = Stats.mean samples in
  check_bool "mean near mu" true (Float.abs (m -. 5.0) < 0.1);
  let s = Stats.stddev samples in
  check_bool "stddev near sigma" true (Float.abs (s -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_topo_simple () =
  let order = Topo.sort ~n:4 ~edges:[ (0, 1); (1, 2); (0, 3); (3, 2) ] in
  let pos = Array.make 4 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  check_bool "0 before 1" true (pos.(0) < pos.(1));
  check_bool "1 before 2" true (pos.(1) < pos.(2));
  check_bool "3 before 2" true (pos.(3) < pos.(2))

let test_topo_cycle () =
  match Topo.sort ~n:3 ~edges:[ (0, 1); (1, 2); (2, 0) ] with
  | _ -> Alcotest.fail "expected Cycle"
  | exception Topo.Cycle c -> check_bool "cycle nonempty" true (c <> [])

let test_topo_is_dag () =
  check_bool "dag" true (Topo.is_dag ~n:3 ~edges:[ (0, 1); (1, 2) ]);
  check_bool "not dag" false (Topo.is_dag ~n:2 ~edges:[ (0, 1); (1, 0) ])

let test_topo_sccs () =
  let comps = Topo.sccs ~n:5 ~edges:[ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (4, 4) ] in
  let sizes = List.sort compare (List.map List.length comps) in
  Alcotest.(check (list int)) "component sizes" [ 1; 2; 2 ] sizes

let test_topo_longest_path () =
  let dist = Topo.longest_path ~n:4 ~edges:[ (0, 1, 2.0); (1, 2, 3.0); (0, 2, 4.0); (2, 3, 1.0) ] in
  Alcotest.(check (float 1e-9)) "sink distance" 6.0 dist.(3);
  Alcotest.(check (float 1e-9)) "middle" 5.0 dist.(2)

let test_topo_empty () =
  Alcotest.(check (list int)) "empty graph sorts to []" [] (Topo.sort ~n:0 ~edges:[]);
  check_bool "empty graph is a dag" true (Topo.is_dag ~n:0 ~edges:[]);
  Alcotest.(check (list (list int))) "no components" [] (Topo.sccs ~n:0 ~edges:[]);
  Alcotest.(check (list int)) "isolated vertices in order" [ 0; 1; 2 ] (Topo.sort ~n:3 ~edges:[])

let test_topo_self_edge () =
  (match Topo.sort ~n:3 ~edges:[ (0, 1); (1, 1) ] with
  | _ -> Alcotest.fail "expected Cycle"
  | exception Topo.Cycle c -> Alcotest.(check (list int)) "self-edge is its own witness" [ 1 ] c);
  check_bool "self-edge is not a dag" false (Topo.is_dag ~n:1 ~edges:[ (0, 0) ])

let test_topo_duplicate_edges () =
  (* A repeated edge bumps the in-degree twice; the sort must still
     emit each vertex exactly once, in the same order as without the
     duplicate. *)
  let order = Topo.sort ~n:3 ~edges:[ (0, 1); (0, 1); (1, 2) ] in
  Alcotest.(check (list int)) "each vertex once" [ 0; 1; 2 ] order;
  Alcotest.(check (list int)) "same as deduplicated"
    (Topo.sort ~n:3 ~edges:[ (0, 1); (1, 2) ])
    order

let test_topo_vertex_range () =
  match Topo.sort ~n:2 ~edges:[ (0, 2) ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg -> check_bool "names the module" true (String.length msg > 0)

let test_union_find () =
  let uf = Union_find.create 6 in
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  Union_find.union uf 4 5;
  check_bool "0~2" true (Union_find.same uf 0 2);
  check_bool "0!~4" false (Union_find.same uf 0 4);
  let groups = Union_find.groups uf in
  Alcotest.(check (list (list int))) "groups" [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ] groups

let test_union_find_edges () =
  let uf = Union_find.create 0 in
  Alcotest.(check (list (list int))) "empty structure, no groups" [] (Union_find.groups uf);
  let uf = Union_find.create 3 in
  Alcotest.(check (list (list int))) "fresh structure is all singletons"
    [ [ 0 ]; [ 1 ]; [ 2 ] ] (Union_find.groups uf);
  check_bool "same is reflexive" true (Union_find.same uf 1 1);
  Union_find.union uf 0 0;
  check_bool "self-union is a no-op" false (Union_find.same uf 0 1);
  Union_find.union uf 0 1;
  Union_find.union uf 0 1;
  Alcotest.(check (list (list int))) "repeated union is idempotent"
    [ [ 0; 1 ]; [ 2 ] ] (Union_find.groups uf)

let test_union_find_chain_compresses () =
  (* A long left-leaning chain must still answer find in one pass
     afterwards: every element points at the root once queried. *)
  let n = 200 in
  let uf = Union_find.create n in
  for i = 0 to n - 2 do
    Union_find.union uf i (i + 1)
  done;
  let root = Union_find.find uf 0 in
  for i = 0 to n - 1 do
    check_int "single class" root (Union_find.find uf i)
  done;
  check_int "one group of n" 1 (List.length (Union_find.groups uf))

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile 100.0 xs);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Stats.percentile 25.0 xs)

let test_stats_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.0; 0.1; 0.9; 1.0 ] in
  let counts = List.map (fun (_, _, c) -> c) h in
  Alcotest.(check (list int)) "bin counts" [ 2; 2 ] counts

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geometric_mean [ 1.0; 2.0; 4.0 ])

let test_digest_stable () =
  let d1 = Digest_lite.of_string "hello" in
  let d2 = Digest_lite.of_string "hello" in
  Alcotest.(check string) "stable" d1 d2;
  check_bool "distinct" true (Digest_lite.of_string "hellp" <> d1);
  check_int "hex length" 16 (String.length d1)

let test_digest_combine () =
  let a = Digest_lite.of_string "a" and b = Digest_lite.of_string "b" in
  check_bool "order matters" true (Digest_lite.combine [ a; b ] <> Digest_lite.combine [ b; a ])

let test_table_render () =
  let s = Table.render ~header:[ "name"; "value" ] [ [ "x"; "1" ]; [ "long-name"; "22" ] ] in
  check_bool "contains header" true (String.length s > 0);
  check_bool "has separator" true (String.contains s '=')

let test_table_csv () =
  let s = Table.render_csv ~header:[ "a"; "b" ] [ [ "1"; "with,comma" ] ] in
  check_bool "quoted comma" true (String.length s > 0 && String.contains s '"')

let test_table_ragged_and_aligned () =
  (* Ragged rows pad with empty cells; Right alignment pads on the left. *)
  let s =
    Table.render ~aligns:[ Table.Left; Table.Right ] ~header:[ "k"; "val" ]
      [ [ "a"; "7" ]; [ "b" ] ]
  in
  check_bool "ragged row rendered" true (String.length s > 0);
  let lines = String.split_on_char '\n' s in
  let widths = List.map String.length lines in
  check_bool "all lines equally wide" true
    (match widths with [] -> false | w :: rest -> List.for_all (( = ) w) rest);
  check_bool "right-aligned value" true
    (List.exists (fun l -> String.length l >= 2 && contains_sub ~sub:"  7" l) lines)

let test_table_csv_escaping () =
  let s = Table.render_csv ~header:[ "a" ] [ [ "say \"hi\"" ]; [ "two\nlines" ] ] in
  check_bool "embedded quotes doubled" true (contains_sub ~sub:"\"say \"\"hi\"\"\"" s);
  check_bool "newline cell quoted" true (contains_sub ~sub:"\"two\nlines\"" s);
  Alcotest.(check string) "plain cells untouched" "a,b\n1,2"
    (Table.render_csv ~header:[ "a"; "b" ] [ [ "1"; "2" ] ])

let qcheck_topo_sort_valid =
  QCheck.Test.make ~name:"topo sort respects random DAG edges" ~count:200
    QCheck.(pair (int_range 1 20) (list (pair (int_range 0 19) (int_range 0 19))))
    (fun (n, raw_edges) ->
      (* Force a DAG by orienting edges from smaller to larger vertex. *)
      let edges =
        raw_edges
        |> List.filter_map (fun (u, v) ->
               let u = u mod n and v = v mod n in
               if u < v then Some (u, v) else if v < u then Some (v, u) else None)
      in
      let order = Pld_util.Topo.sort ~n ~edges in
      let pos = Array.make n 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      List.for_all (fun (u, v) -> pos.(u) < pos.(v)) edges)

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (float_range (-100.) 100.))
    (fun xs ->
      let p1 = Pld_util.Stats.percentile 25.0 xs in
      let p2 = Pld_util.Stats.percentile 75.0 xs in
      p1 <= p2 +. 1e-9)

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng split", `Quick, test_rng_split_independent);
    ("rng gaussian moments", `Quick, test_rng_gaussian);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("topo simple", `Quick, test_topo_simple);
    ("topo cycle detection", `Quick, test_topo_cycle);
    ("topo is_dag", `Quick, test_topo_is_dag);
    ("topo sccs", `Quick, test_topo_sccs);
    ("topo longest path", `Quick, test_topo_longest_path);
    ("topo empty graph", `Quick, test_topo_empty);
    ("topo self-edge rejected", `Quick, test_topo_self_edge);
    ("topo duplicate edges", `Quick, test_topo_duplicate_edges);
    ("topo vertex out of range", `Quick, test_topo_vertex_range);
    ("union-find", `Quick, test_union_find);
    ("union-find edge cases", `Quick, test_union_find_edges);
    ("union-find chain compression", `Quick, test_union_find_chain_compresses);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats histogram", `Quick, test_stats_histogram);
    ("stats geomean", `Quick, test_stats_geomean);
    ("digest stable", `Quick, test_digest_stable);
    ("digest combine order", `Quick, test_digest_combine);
    ("table render", `Quick, test_table_render);
    ("table csv", `Quick, test_table_csv);
    ("table ragged rows and alignment", `Quick, test_table_ragged_and_aligned);
    ("table csv escaping", `Quick, test_table_csv_escaping);
    QCheck_alcotest.to_alcotest qcheck_topo_sort_valid;
    QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
  ]
