open Pld_riscv
open Pld_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i32 = Alcotest.(check int32)

(* ---------- ISA ---------- *)

let sample_instrs =
  [
    Isa.Lui (5, 0x12345);
    Isa.Auipc (10, 0xFFF);
    Isa.Jal (1, 2048);
    Isa.Jal (0, -4096);
    Isa.Jalr (1, 5, -12);
    Isa.Branch (Isa.Beq, 5, 6, 16);
    Isa.Branch (Isa.Bge, 10, 11, -256);
    Isa.Load (Isa.W, false, 7, 2, 124);
    Isa.Load (Isa.B, true, 7, 2, -1);
    Isa.Store (Isa.W, 7, 2, -2048);
    Isa.Store (Isa.H, 3, 4, 2046);
    Isa.Alui (Isa.Addi, 5, 5, -1);
    Isa.Alui (Isa.Slli, 5, 5, 31);
    Isa.Alui (Isa.Srai, 6, 6, 4);
    Isa.Alur (Isa.Radd, 1, 2, 3);
    Isa.Alur (Isa.Rmulhu, 1, 2, 3);
    Isa.Alur (Isa.Rdiv, 1, 2, 3);
    Isa.Ecall;
    Isa.Ebreak;
  ]

let test_isa_roundtrip () =
  List.iter
    (fun i ->
      match Isa.decode (Isa.encode i) with
      | Some d -> check_bool (Isa.to_string i) true (d = i)
      | None -> Alcotest.failf "decode failed for %s" (Isa.to_string i))
    sample_instrs

let test_isa_rejects_bad_imm () =
  check_bool "I-type range" true
    (match Isa.encode (Isa.Alui (Isa.Addi, 1, 1, 5000)) with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------- assembler ---------- *)

let test_asm_labels () =
  let img =
    Asm.assemble
      [
        Asm.Label "start";
        Asm.Li (Isa.t0, 5l);
        Asm.Bj (Isa.Beq, Isa.t0, Isa.zero, "end");
        Asm.J "start";
        Asm.Label "end";
        Asm.Instr Isa.Ebreak;
      ]
  in
  check_bool "assembled" true (Array.length img.Asm.words >= 4);
  check_int "start at 0" 0 (List.assoc "start" img.Asm.symbols)

let test_asm_undefined_label () =
  match Asm.assemble [ Asm.J "nowhere" ] with
  | _ -> Alcotest.fail "expected Undefined_label"
  | exception Asm.Undefined_label "nowhere" -> ()

let test_asm_long_branch () =
  (* A branch across >4 KB of code must still assemble and execute
     (the assembler expands it to an inverted branch over a jal). *)
  let filler = List.init 3000 (fun _ -> Asm.Instr (Isa.Alui (Isa.Addi, Isa.t2, Isa.t2, 1))) in
  let img =
    Asm.assemble
      ([ Asm.Li (Isa.t0, 0l); Asm.Bj (Isa.Beq, Isa.t0, Isa.zero, "far") ]
      @ filler
      @ [ Asm.Label "far"; Asm.Li (Isa.t1, 77l); Asm.Instr Isa.Ebreak ])
  in
  let cpu = Cpu.create () in
  Cpu.load_words cpu ~addr:0 img.Asm.words;
  check_bool "halted" true (Cpu.run cpu = Cpu.Halted);
  check_i32 "skipped the filler" 77l (Cpu.read_reg cpu Isa.t1);
  check_i32 "filler never ran" 0l (Cpu.read_reg cpu Isa.t2)

let test_asm_li_wide () =
  let img = Asm.assemble [ Asm.Li (Isa.t0, 0xDEADBEEFl); Asm.Instr Isa.Ebreak ] in
  (* Execute it and check the register. *)
  let cpu = Cpu.create () in
  Cpu.load_words cpu ~addr:0 img.Asm.words;
  ignore (Cpu.run cpu);
  check_i32 "li materializes value" 0xDEADBEEFl (Cpu.read_reg cpu Isa.t0)

let run_program items =
  let img = Asm.assemble items in
  let cpu = Cpu.create () in
  Cpu.load_words cpu ~addr:0 img.Asm.words;
  (Cpu.run cpu, cpu)

(* ---------- CPU ---------- *)

let test_cpu_arith () =
  let _, cpu =
    run_program
      [
        Asm.Li (Isa.t0, 21l);
        Asm.Li (Isa.t1, 2l);
        Asm.Instr (Isa.Alur (Isa.Rmul, Isa.t2, Isa.t0, Isa.t1));
        Asm.Instr Isa.Ebreak;
      ]
  in
  check_i32 "21*2" 42l (Cpu.read_reg cpu Isa.t2)

let test_cpu_loop () =
  (* Sum 1..10 with a branch loop. *)
  let status, cpu =
    run_program
      [
        Asm.Li (Isa.t0, 0l);
        Asm.Li (Isa.t1, 10l);
        Asm.Label "loop";
        Asm.Instr (Isa.Alur (Isa.Radd, Isa.t0, Isa.t0, Isa.t1));
        Asm.Instr (Isa.Alui (Isa.Addi, Isa.t1, Isa.t1, -1));
        Asm.Bj (Isa.Bne, Isa.t1, Isa.zero, "loop");
        Asm.Instr Isa.Ebreak;
      ]
  in
  check_bool "halted" true (status = Cpu.Halted);
  check_i32 "sum" 55l (Cpu.read_reg cpu Isa.t0)

let test_cpu_mem () =
  let _, cpu =
    run_program
      [
        Asm.Li (Isa.t0, 0x8000l);
        Asm.Li (Isa.t1, -7l);
        Asm.Instr (Isa.Store (Isa.W, Isa.t1, Isa.t0, 0));
        Asm.Instr (Isa.Load (Isa.W, false, Isa.t2, Isa.t0, 0));
        Asm.Instr Isa.Ebreak;
      ]
  in
  check_i32 "store/load" (-7l) (Cpu.read_reg cpu Isa.t2)

let test_cpu_division_semantics () =
  let _, cpu =
    run_program
      [
        Asm.Li (Isa.t0, 7l);
        Asm.Li (Isa.t1, 0l);
        Asm.Instr (Isa.Alur (Isa.Rdiv, Isa.t2, Isa.t0, Isa.t1));
        Asm.Instr (Isa.Alur (Isa.Rrem, Isa.t3, Isa.t0, Isa.t1));
        Asm.Instr Isa.Ebreak;
      ]
  in
  check_i32 "div by zero = -1" (-1l) (Cpu.read_reg cpu Isa.t2);
  check_i32 "rem by zero = dividend" 7l (Cpu.read_reg cpu Isa.t3)

let test_cpu_stalls_on_empty_stream () =
  let img =
    Asm.assemble
      [ Asm.Li (Isa.t0, Int32.of_int Cpu.mmio_in_base); Asm.Instr (Isa.Load (Isa.W, false, Isa.t1, Isa.t0, 0)); Asm.Instr Isa.Ebreak ]
  in
  let data = ref None in
  let cpu = Cpu.create ~stream_read:(fun _ -> !data) () in
  Cpu.load_words cpu ~addr:0 img.Asm.words;
  check_bool "stalled" true (Cpu.run cpu = Cpu.Stalled);
  data := Some 99l;
  check_bool "halts after data" true (Cpu.run cpu = Cpu.Halted);
  check_i32 "read value" 99l (Cpu.read_reg cpu Isa.t1)

let test_cpu_traps_on_bad_access () =
  let status, _ =
    run_program [ Asm.Li (Isa.t0, 0x7FFFFF0l); Asm.Instr (Isa.Load (Isa.W, false, Isa.t1, Isa.t0, 0)) ]
  in
  check_bool "trapped" true (match status with Cpu.Trapped _ -> true | _ -> false)

let test_cpu_timing_model () =
  let _, cpu = run_program [ Asm.Li (Isa.t0, 1l); Asm.Instr Isa.Ebreak ] in
  check_bool "multi-cycle instructions" true (cpu.Cpu.cycles >= cpu.Cpu.retired)

(* ---------- codegen + softcore co-simulation ---------- *)

let u32 = Dtype.word

let cosim op inputs_per_port =
  (* interpreter reference *)
  let mk_queues ports vals = List.map2 (fun (p : Op.port) v -> (p.Op.port_name, v)) ports vals in
  let in_qs =
    mk_queues op.Op.inputs
      (List.map
         (fun vs ->
           let q = Queue.create () in
           List.iter (fun x -> Queue.push (Value.of_int u32 x) q) vs;
           q)
         inputs_per_port)
  in
  let out_qs = List.map (fun (p : Op.port) -> (p.Op.port_name, Queue.create ())) op.Op.outputs in
  Interp.run_operator op (Interp.queue_io ~inputs:in_qs ~outputs:out_qs);
  let expect = List.map (fun (_, q) -> List.map Value.to_int (List.of_seq (Queue.to_seq q))) out_qs in
  (* softcore *)
  let prog = Codegen.compile op in
  let in_qs2 =
    List.map
      (fun vs ->
        let q = Queue.create () in
        List.iter (fun x -> Queue.push (Int32.of_int x) q) vs;
        q)
      inputs_per_port
  in
  let out_bufs = List.map (fun _ -> Queue.create ()) op.Op.outputs in
  let cpu =
    Softcore.boot prog
      ~stream_read:(fun i ->
        let q = List.nth in_qs2 i in
        if Queue.is_empty q then None else Some (Queue.pop q))
      ~stream_write:(fun i v ->
        Queue.push v (List.nth out_bufs i);
        true)
  in
  (match Cpu.run cpu with
  | Cpu.Halted -> ()
  | Cpu.Stalled -> Alcotest.fail "softcore starved"
  | Cpu.Trapped tr -> Alcotest.failf "softcore trap: %s" (Cpu.describe_trap tr)
  | Cpu.Running -> Alcotest.fail "did not halt");
  let got =
    List.map (fun q -> List.map (fun v -> Int32.to_int v land 0xFFFFFFFF) (List.of_seq (Queue.to_seq q))) out_bufs
  in
  (List.map (List.map (fun x -> x land 0xFFFFFFFF)) expect, got)

let test_codegen_simple () =
  let op =
    Op.make ~name:"axpb" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" (Dtype.SInt 32) ]
      [
        Op.For
          {
            var = "i";
            lo = 0;
            hi = 10;
            pipeline = false;
            body =
              [
                Op.Read (Op.LVar "x", "in");
                Op.Write ("out", Expr.(Bin (Add, Bin (Mul, var "x", int (Dtype.SInt 32) 3), int (Dtype.SInt 32) 5)));
              ];
          };
      ]
  in
  let expect, got = cosim op [ List.init 10 (fun i -> i * 7) ] in
  Alcotest.(check (list (list int))) "3x+5" expect got

let test_codegen_fixed_division () =
  let fx = Dtype.SFixed { width = 32; int_bits = 17 } in
  let op =
    Op.make ~name:"fdiv" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "a" fx; Op.scalar "b" fx; Op.scalar "q" fx ]
      [
        Op.For
          {
            var = "i";
            lo = 0;
            hi = 4;
            pipeline = false;
            body =
              [
                Op.Read (Op.LVar "a", "in");
                Op.Read (Op.LVar "b", "in");
                Op.If
                  ( Expr.(Bin (Eq, var "b", float_ fx 0.0)),
                    [ Op.Assign (Op.LVar "q", Expr.float_ fx 0.0) ],
                    [ Op.Assign (Op.LVar "q", Expr.(Bin (Div, var "a", var "b"))) ] );
                Op.Write ("out", Expr.var "q");
              ];
          };
      ]
  in
  let fxw x = Value.to_int (Value.bitcast u32 (Value.of_float fx x)) in
  let ins = [ fxw 10.5; fxw 3.0; fxw (-8.25); fxw 2.0; fxw 1.0; fxw 0.0; fxw 100.0; fxw 0.125 ] in
  let expect, got = cosim op [ ins ] in
  Alcotest.(check (list (list int))) "fixed division" expect got

let test_codegen_arrays_and_select () =
  let i32 = Dtype.SInt 32 in
  let op =
    Op.make ~name:"arr" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.array "buf" i32 8; Op.scalar "m" i32 ]
      [
        Op.For
          { var = "i"; lo = 0; hi = 8; pipeline = false; body = [ Op.Read (Op.LIdx ("buf", Expr.var "i"), "in") ] };
        Op.Assign (Op.LVar "m", Expr.int i32 (-1000));
        Op.For
          {
            var = "i";
            lo = 0;
            hi = 8;
            pipeline = false;
            body =
              [
                Op.Assign
                  (Op.LVar "m", Expr.(Select (Idx ("buf", var "i") > var "m", Idx ("buf", var "i"), var "m")));
              ];
          };
        Op.Write ("out", Expr.var "m");
      ]
  in
  let expect, got = cosim op [ [ 3; 9; 1; 200; 5; 0; 199; 42 ] ] in
  Alcotest.(check (list (list int))) "array max" expect got

let test_codegen_printf () =
  let op =
    Op.make ~name:"dbg" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" u32 ]
      [ Op.Read (Op.LVar "x", "in"); Op.Printf ("x is", [ Expr.var "x" ]); Op.Write ("out", Expr.var "x") ]
  in
  let prog = Codegen.compile op in
  let printed = ref [] in
  let q = Queue.create () in
  Queue.push 17l q;
  let cpu =
    Softcore.boot prog
      ~stream_read:(fun _ -> if Queue.is_empty q then None else Some (Queue.pop q))
      ~stream_write:(fun _ _ -> true)
      ~printf:(fun s -> printed := s :: !printed)
  in
  ignore (Cpu.run cpu);
  Alcotest.(check (list string)) "printf routed" [ "x is 17" ] !printed

let test_codegen_rejects_wide_locals () =
  let wide = Dtype.SFixed { width = 96; int_bits = 40 } in
  let op =
    Op.make ~name:"wide" ~inputs:[] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" wide ]
      [ Op.Write ("out", Expr.var "x") ]
  in
  match Codegen.compile op with
  | _ -> Alcotest.fail "expected Unsupported"
  | exception Codegen.Unsupported _ -> ()

let test_profiles () =
  (* Same binary, two overlay processors: identical results, fewer
     cycles on the pipelined core (the paper's Sec 9 overlay menu). *)
  let op =
    Op.make ~name:"p" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" (Dtype.SInt 32) ]
      [
        Op.For
          {
            var = "i";
            lo = 0;
            hi = 20;
            pipeline = false;
            body =
              [
                Op.Read (Op.LVar "x", "in");
                Op.Write ("out", Expr.(Bin (Mul, var "x", var "x")));
              ];
          };
      ]
  in
  let prog = Codegen.compile op in
  let run profile =
    let q = Queue.create () in
    for i = 1 to 20 do
      Queue.push (Int32.of_int i) q
    done;
    let out = Queue.create () in
    let cpu =
      Softcore.boot ~profile prog
        ~stream_read:(fun _ -> if Queue.is_empty q then None else Some (Queue.pop q))
        ~stream_write:(fun _ v -> Queue.push v out; true)
    in
    (match Cpu.run cpu with Cpu.Halted -> () | _ -> Alcotest.fail "no halt");
    (List.of_seq (Queue.to_seq out), cpu.Cpu.cycles)
  in
  let slow_out, slow_cycles = run Cpu.picorv32 in
  let fast_out, fast_cycles = run Cpu.pipelined in
  check_bool "same results" true (slow_out = fast_out);
  check_bool "pipelined at least 2x faster" true (2 * fast_cycles <= slow_cycles)

let test_elf_roundtrip () =
  let op =
    Op.make ~name:"tiny" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" u32 ]
      [ Op.Read (Op.LVar "x", "in"); Op.Write ("out", Expr.var "x") ]
  in
  let prog = Codegen.compile op in
  let packed = Elf.pack ~page:7 prog in
  let back = Elf.unpack packed.Elf.blob in
  check_int "page" 7 back.Elf.page;
  check_bool "program preserved" true (back.Elf.program.Codegen.op_name = "tiny");
  (* Corruption must be detected. *)
  let corrupt = Bytes.of_string packed.Elf.blob in
  Bytes.set corrupt (Bytes.length corrupt - 1) 'X';
  match Elf.unpack (Bytes.to_string corrupt) with
  | _ -> Alcotest.fail "expected CRC failure"
  | exception Invalid_argument _ -> ()

(* Random straight-line operators: interpreter and softcore must agree
   bit for bit. *)
let prop_cosim_random_ops =
  let gen =
    QCheck.Gen.(
      let binop_int = oneofl [ Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.Rem; Expr.And; Expr.Or; Expr.Xor ] in
      let binop_fx = oneofl [ Expr.Add; Expr.Sub; Expr.Mul ] in
      let dtype = oneofl [ Dtype.SInt 32; Dtype.UInt 16; Dtype.SFixed { width = 32; int_bits = 17 }; Dtype.SInt 8 ] in
      dtype >>= fun dt ->
      (if Dtype.is_integer dt then binop_int else binop_fx) >>= fun op1 ->
      (if Dtype.is_integer dt then binop_int else binop_fx) >>= fun op2 ->
      list_size (int_range 2 6) (int_bound 0xFFFF) >>= fun data ->
      return (dt, op1, op2, data))
  in
  QCheck.Test.make ~name:"softcore matches interpreter on random ops" ~count:60
    (QCheck.make gen)
    (fun (dt, op1, op2, data) ->
      let n = List.length data / 2 in
      QCheck.assume (n > 0);
      let op =
        Op.make ~name:"rand" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
          ~locals:[ Op.scalar "a" dt; Op.scalar "b" dt; Op.scalar "r" dt ]
          [
            Op.For
              {
                var = "i";
                lo = 0;
                hi = n;
                pipeline = false;
                body =
                  [
                    Op.Read (Op.LVar "a", "in");
                    Op.Read (Op.LVar "b", "in");
                    Op.Assign (Op.LVar "r", Expr.(Bin (op2, Bin (op1, var "a", var "b"), var "a")));
                    Op.Write ("out", Expr.var "r");
                  ];
              };
          ]
      in
      let expect, got = cosim op [ List.filteri (fun i _ -> i < 2 * n) data ] in
      expect = got)

let suite =
  [
    ("isa encode/decode roundtrip", `Quick, test_isa_roundtrip);
    ("isa rejects bad immediates", `Quick, test_isa_rejects_bad_imm);
    ("asm labels", `Quick, test_asm_labels);
    ("asm undefined label", `Quick, test_asm_undefined_label);
    ("asm long-distance branch", `Quick, test_asm_long_branch);
    ("asm li wide immediate", `Quick, test_asm_li_wide);
    ("cpu arithmetic", `Quick, test_cpu_arith);
    ("cpu branch loop", `Quick, test_cpu_loop);
    ("cpu memory", `Quick, test_cpu_mem);
    ("cpu RISC-V division semantics", `Quick, test_cpu_division_semantics);
    ("cpu stalls on empty stream", `Quick, test_cpu_stalls_on_empty_stream);
    ("cpu traps on bad access", `Quick, test_cpu_traps_on_bad_access);
    ("cpu timing model", `Quick, test_cpu_timing_model);
    ("codegen 3x+5", `Quick, test_codegen_simple);
    ("codegen fixed-point division", `Quick, test_codegen_fixed_division);
    ("codegen arrays and select", `Quick, test_codegen_arrays_and_select);
    ("codegen printf to host", `Quick, test_codegen_printf);
    ("codegen rejects >64-bit locals", `Quick, test_codegen_rejects_wide_locals);
    ("overlay processor profiles", `Quick, test_profiles);
    ("elf pack/unpack + CRC", `Quick, test_elf_roundtrip);
    QCheck_alcotest.to_alcotest prop_cosim_random_ops;
  ]
