(* The telemetry sink in isolation, and wired under the parallel
   executor: span nesting and exception safety, deterministic span
   coverage under a paced parallel run, histogram bucket edges, and
   the Chrome trace / metrics exporters round-tripping through the
   in-tree JSON parser. *)

module T = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json
module Jobgraph = Pld_engine.Jobgraph
module Executor = Pld_engine.Executor

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let span_named tele name = List.find_opt (fun (s : T.span) -> s.T.name = name) (T.spans tele)

let get_span tele name =
  match span_named tele name with
  | Some s -> s
  | None -> Alcotest.failf "span %s not recorded" name

let end_us (s : T.span) = s.T.start_us +. Option.value ~default:0.0 s.T.dur_us

let contains ~(outer : T.span) ~(inner : T.span) =
  outer.T.start_us <= inner.T.start_us && end_us inner <= end_us outer

(* ---------- spans ---------- *)

let test_with_span_nesting () =
  let tele = T.create () in
  let r =
    T.with_span tele ~cat:"test" "outer" (fun () ->
        T.with_span tele ~cat:"test" "inner" (fun () -> 42))
  in
  check_int "thunk result" 42 r;
  let outer = get_span tele "outer" and inner = get_span tele "inner" in
  (* Inner closes first, so it records first; nesting is by time
     containment on the shared track. *)
  check_bool "inner contained in outer" true (contains ~outer ~inner);
  check_int "same track" outer.T.track inner.T.track;
  check_string "category" "test" outer.T.cat;
  check_bool "outer has a duration" true (outer.T.dur_us <> None)

let test_with_span_exception_safety () =
  let tele = T.create () in
  (match T.with_span tele ~cat:"test" "doomed" (fun () -> failwith "boom") with
  | () -> Alcotest.fail "expected Failure"
  | exception Failure m -> check_string "exception propagates" "boom" m);
  let s = get_span tele "doomed" in
  check_bool "span closed despite raise" true (s.T.dur_us <> None);
  match List.assoc_opt "error" s.T.attrs with
  | Some msg -> check_bool "error attr mentions the exception" true
      (String.length msg > 0)
  | None -> Alcotest.fail "no error attribute on failed span"

let test_instant_has_no_duration () =
  let tele = T.create () in
  T.instant tele ~cat:"test" ~attrs:[ ("k", "v") ] "mark";
  let s = get_span tele "mark" in
  check_bool "instant" true (s.T.dur_us = None);
  check_string "attrs kept" "v" (List.assoc "k" s.T.attrs)

(* ---------- executor integration ---------- *)

let test_executor_parallel_spans () =
  (* Four independent paced jobs under four workers: every job must
     produce exactly one engine span nested inside the graph span, and
     the finished-jobs counter must agree — deterministically, whatever
     the interleaving, because with_span closes on the worker that ran
     the job. *)
  let jobs = List.init 4 (fun i -> Printf.sprintf "job%d" i) in
  let g =
    Jobgraph.make
      (List.map
         (fun id -> Jobgraph.node ~id ~kind:"t" ~model:(fun _ -> 0.02) (fun _ -> 0))
         jobs)
  in
  let tele = T.create () in
  let _ = Executor.run ~workers:4 ~pace:1.0 ~telemetry:tele g in
  let graph = get_span tele "graph" in
  check_string "graph span category" "engine" graph.T.cat;
  List.iter
    (fun id ->
      let s = get_span tele id in
      check_string "job span category" "engine" s.T.cat;
      check_bool (id ^ " inside graph span") true (contains ~outer:graph ~inner:s);
      check_string "kind attr" "t" (List.assoc "kind" s.T.attrs))
    jobs;
  check_int "finished counter" 4 (T.counter_value tele "engine.jobs_finished");
  check_int "no drops" 0 (T.dropped_spans tele)

(* ---------- metrics ---------- *)

let test_histogram_bucket_edges () =
  let tele = T.create () in
  let h = T.histogram tele ~buckets:[ 1.0; 2.0; 4.0 ] "lat" in
  List.iter (T.observe h) [ 0.5; 1.0; 1.5; 2.0; 3.0; 5.0 ];
  (* Upper edges are inclusive; the overflow bucket is +inf. *)
  Alcotest.(check (list (pair (float 0.0) int)))
    "bucket counts"
    [ (1.0, 2); (2.0, 2); (4.0, 1); (Float.infinity, 1) ]
    (T.bucket_counts tele "lat");
  Alcotest.(check (list (float 0.0)))
    "samples in insertion order"
    [ 0.5; 1.0; 1.5; 2.0; 3.0; 5.0 ]
    (T.samples tele "lat");
  check_int "unknown counter reads 0" 0 (T.counter_value tele "nope")

let test_counter_and_gauge () =
  let tele = T.create () in
  let c = T.counter tele "c" in
  T.incr c;
  T.incr ~by:41 c;
  check_int "counter sums" 42 (T.counter_value tele "c");
  let g = T.gauge tele "g" in
  T.max_gauge g 3.0;
  T.max_gauge g 1.0;
  Alcotest.(check (option (float 0.0))) "max_gauge keeps high-water" (Some 3.0)
    (T.gauge_value tele "g");
  T.set_gauge g 0.5;
  Alcotest.(check (option (float 0.0))) "set_gauge overwrites" (Some 0.5)
    (T.gauge_value tele "g")

(* ---------- exporters ---------- *)

let populated_sink () =
  let tele = T.create () in
  T.with_span tele ~cat:"engine" ~attrs:[ ("kind", "page") ] "op:a" (fun () -> ());
  T.instant tele ~cat:"loader" "load-retry";
  let mt = T.modeled_track tele ~cat:"flow" ~name:"worker 0" in
  T.modeled_span tele mt "hls" 12.5;
  T.incr ~by:3 (T.counter tele "engine.cache_hits");
  T.observe (T.histogram tele ~buckets:[ 1.0; 10.0 ] "noc.hop_latency") 4.0;
  tele

let expect_member name j =
  match Json.member name j with
  | Some v -> v
  | None -> Alcotest.failf "missing field %S in %s" name (Json.to_string j)

let test_chrome_json_roundtrip () =
  let tele = populated_sink () in
  (* Serialize and parse back with the independent in-tree parser: the
     export is valid JSON, not just a plausible string. *)
  let doc = Json.of_string (Json.to_string (T.to_chrome_json tele)) in
  let events =
    match expect_member "traceEvents" doc with
    | Json.List es -> es
    | j -> Alcotest.failf "traceEvents not a list: %s" (Json.to_string j)
  in
  check_bool "has events" true (List.length events > 0);
  let ph e = match expect_member "ph" e with Json.String s -> s | _ -> "?" in
  List.iter
    (fun e ->
      List.iter (fun f -> ignore (expect_member f e)) [ "name"; "ph"; "pid"; "tid" ];
      match ph e with
      | "X" -> ignore (expect_member "dur" e)
      | "i" ->
          check_bool "instant scope" true (Json.member "s" e = Some (Json.String "t"))
      | "M" -> ignore (expect_member "args" e)
      | other -> Alcotest.failf "unexpected phase %S" other)
    events;
  (* The wall and modeled clocks must land in different Perfetto
     processes, each introduced by a process_name metadata record. *)
  let process_names =
    List.filter_map
      (fun e ->
        if ph e = "M" && expect_member "name" e = Json.String "process_name" then
          Json.member "name" (expect_member "args" e)
        else None)
      events
  in
  check_bool "engine process named" true
    (List.mem (Json.String "engine") process_names);
  check_bool "modeled clock is its own process" true
    (List.mem (Json.String "flow (modeled)") process_names)

let test_metrics_json_roundtrip () =
  let tele = populated_sink () in
  let doc = Json.of_string (Json.to_string (T.to_metrics_json tele)) in
  let counters = expect_member "counters" doc in
  (match Json.member "engine.cache_hits" counters with
  | Some (Json.Int 3) -> ()
  | j -> Alcotest.failf "cache_hits counter: %s"
      (match j with Some j -> Json.to_string j | None -> "missing"));
  let hist = expect_member "noc.hop_latency" (expect_member "histograms" doc) in
  (match Json.member "count" hist with
  | Some (Json.Int 1) -> ()
  | _ -> Alcotest.fail "histogram count");
  ignore (expect_member "gauges" doc);
  ignore (expect_member "spans" doc)

let test_trace_export_smoke () =
  (* write_chrome end to end: the on-disk file parses and names at
     least the layers recorded into the sink. *)
  let tele = populated_sink () in
  let file = Filename.temp_file "pld-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      T.write_chrome tele ~file;
      let doc = Json.of_string (In_channel.with_open_bin file In_channel.input_all) in
      let cats =
        match expect_member "traceEvents" doc with
        | Json.List es ->
            List.sort_uniq compare
              (List.filter_map
                 (fun e ->
                   match Json.member "cat" e with Some (Json.String c) -> Some c | _ -> None)
                 es)
        | _ -> []
      in
      List.iter
        (fun c -> check_bool ("layer " ^ c ^ " exported") true (List.mem c cats))
        [ "engine"; "loader"; "flow" ])

(* ---------- the JSON parser's error and escape paths ---------- *)

let rejects label src =
  match Json.of_string src with
  | exception Json.Parse_error _ -> ()
  | _ -> Alcotest.failf "%s: expected Parse_error on %S" label src

let parses_string label src expect =
  match Json.of_string src with
  | Json.String s -> check_string label expect s
  | _ -> Alcotest.failf "%s: %S did not parse to a string" label src

let test_json_rejects_malformed () =
  rejects "unterminated string" "\"abc";
  rejects "unterminated escape" "\"abc\\";
  rejects "bad escape letter" "\"a\\x\"";
  rejects "truncated \\u" "\"\\u12\"";
  rejects "bad hex digit" "\"\\u12G4\"";
  (* [int_of_string "0x12_4"] would accept these; strict hex must not *)
  rejects "underscore in \\u" "\"\\u12_4\"";
  rejects "sign in \\u" "\"\\u-123\"";
  rejects "trailing garbage" "{} x";
  rejects "bare word" "nul";
  rejects "unclosed object" "{\"a\": 1";
  rejects "unclosed array" "[1, 2";
  rejects "lone comma" "[1,]";
  rejects "missing colon" "{\"a\" 1}";
  rejects "empty input" "";
  rejects "bad number" "[1.2.3]"

let test_json_escapes () =
  parses_string "simple escapes" "\"a\\n\\t\\\\\\\"b\\/\"" "a\n\t\\\"b/";
  parses_string "bmp \\u escape" "\"\\u0041\\u00e9\"" "A\xc3\xa9";
  (* An astral code point arrives as a surrogate pair and must decode
     to one 4-byte UTF-8 sequence. *)
  parses_string "surrogate pair" "\"\\ud83d\\ude00\"" "\xf0\x9f\x98\x80";
  (* Lone surrogates are not code points: U+FFFD, never invalid UTF-8. *)
  parses_string "lone high surrogate" "\"\\ud83d!\"" "\xef\xbf\xbd!";
  parses_string "lone low surrogate" "\"\\ude00!\"" "\xef\xbf\xbd!";
  parses_string "high surrogate before a non-surrogate escape" "\"\\ud83d\\u0041\""
    "\xef\xbf\xbdA";
  (* Escaped strings survive a write/parse round-trip. *)
  let tricky = Json.String "quote\" slash\\ newline\n tab\t emoji\xf0\x9f\x98\x80" in
  check_bool "escape round-trip" true (Json.of_string (Json.to_string tricky) = tricky)

let test_json_deep_nesting () =
  let depth = 10_000 in
  let src =
    String.concat "" [ String.make depth '['; "42"; String.make depth ']' ]
  in
  match Json.of_string src with
  | exception Stack_overflow -> Alcotest.fail "parser overflowed on deep nesting"
  | v ->
      let rec unwrap n = function
        | Json.List [ inner ] -> unwrap (n + 1) inner
        | Json.Float f when f = 42.0 -> check_int "nesting depth preserved" depth n
        | Json.Int 42 -> check_int "nesting depth preserved" depth n
        | _ -> Alcotest.fail "unexpected shape after deep parse"
      in
      unwrap 0 v

let test_json_pretty_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\nb");
        ("xs", Json.List [ Json.Int 1; Json.Float 2.5; Json.Null; Json.Bool true ]);
        ("empty_list", Json.List []);
        ("empty_obj", Json.Obj []);
        ("nested", Json.Obj [ ("k", Json.List [ Json.Obj [ ("x", Json.Int 7) ] ]) ]);
      ]
  in
  let p = Json.pretty doc in
  check_bool "pretty output is indented" true (String.contains p '\n');
  check_bool "pretty parses back to the same document" true (Json.of_string p = doc)

(* ---------- quantile estimators ---------- *)

module Quantile = Pld_telemetry.Quantile

let check_float = Alcotest.(check (float 1e-9))

let test_quantile_of_samples () =
  let samples = List.init 100 (fun i -> float_of_int (i + 1)) in
  check_float "p50 nearest-rank" 50.0 (Quantile.of_samples samples 0.50);
  check_float "p95" 95.0 (Quantile.of_samples samples 0.95);
  check_float "p99" 99.0 (Quantile.of_samples samples 0.99);
  check_float "p100 is the max" 100.0 (Quantile.of_samples samples 1.0);
  check_float "empty reads 0" 0.0 (Quantile.of_samples [] 0.5);
  check_float "unsorted input" 3.0 (Quantile.of_samples [ 3.0; 1.0; 2.0 ] 1.0)

let test_quantile_of_buckets () =
  (* 40 observations: 10 in (0,1], 10 in (1,2], 20 in (2,4]. The median
     rank (20) lands exactly at the top of the second bucket, so linear
     interpolation must return its upper edge. *)
  let buckets = [ (1.0, 10); (2.0, 10); (4.0, 20); (Float.infinity, 0) ] in
  check_float "p50 at a bucket boundary" 2.0 (Quantile.of_buckets buckets 0.50);
  (* Rank 30 sits halfway through the 20-count (2,4] bucket. *)
  check_float "p75 interpolates inside a bucket" 3.0 (Quantile.of_buckets buckets 0.75);
  (* Rank 10 tops the first bucket, whose lower bound is 0. *)
  check_float "p25 in the first bucket" 1.0 (Quantile.of_buckets buckets 0.25);
  check_float "overflow rank clamps to the last finite edge" 1.0
    (Quantile.of_buckets [ (1.0, 0); (Float.infinity, 5) ] 0.99);
  check_float "all-empty buckets read 0" 0.0
    (Quantile.of_buckets [ (1.0, 0); (Float.infinity, 0) ] 0.5);
  (* The pairing helper reproduces bucket_counts' shape. *)
  Alcotest.(check (list (pair (float 0.0) int)))
    "buckets_of_counts pairs edges with counts"
    [ (1.0, 2); (2.0, 0); (Float.infinity, 1) ]
    (Quantile.buckets_of_counts ~edges:[| 1.0; 2.0 |] ~counts:[| 2; 0; 1 |])

(* The estimator the daemon's per-tenant status derives p50/p95/p99
   from: the registry's own bucket counts must round-trip through it
   with bucket-resolution accuracy. *)
let test_quantile_from_registry_histogram () =
  let tele = T.create () in
  let h = T.histogram tele ~buckets:[ 0.01; 0.1; 1.0 ] "lat" in
  List.iter (T.observe h) [ 0.005; 0.05; 0.05; 0.5 ];
  let buckets = T.bucket_counts tele "lat" in
  let p50 = Quantile.of_buckets buckets 0.50 in
  check_bool "p50 lands in the right bucket" true (p50 > 0.01 && p50 <= 0.1)

(* ---------- structured logging ---------- *)

module Log = Pld_telemetry.Log

let contains_sub ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_log_levels_and_ring () =
  let lg = Log.create ~level:Log.Warn ~ring_limit:3 () in
  Log.debug lg ~sub:"t" "dropped";
  Log.info lg ~sub:"t" "dropped too";
  List.iter (fun i -> Log.warn lg ~sub:"t" (Printf.sprintf "w%d" i)) [ 1; 2; 3; 4; 5 ];
  let evs = Log.events lg in
  check_int "ring bounded" 3 (List.length evs);
  Alcotest.(check (list string))
    "oldest evicted first, order kept" [ "w3"; "w4"; "w5" ]
    (List.map (fun e -> e.Log.ev_msg) evs);
  Log.set_level lg Log.Debug;
  Log.debug lg ~sub:"t" "now kept";
  check_int "level change takes effect" 3 (List.length (Log.events lg));
  check_bool "debug now in ring" true
    (List.exists (fun e -> e.Log.ev_msg = "now kept") (Log.events lg))

let test_log_event_json_roundtrip () =
  let lg = Log.create ~level:Log.Debug () in
  Log.error lg ~trace:"00000000deadbeef"
    ~fields:[ ("tenant", "alice"); ("graph", "svc-1x2") ]
    ~sub:"service.watchdog" "build wedged";
  let e = List.hd (Log.events lg) in
  (* The JSONL line a --log-json consumer reads must parse back to the
     same event through the in-tree parser. *)
  let j = Json.of_string (Json.to_string (Log.event_json e)) in
  (match Log.event_of_json j with
  | Ok e' ->
      check_string "msg" e.Log.ev_msg e'.Log.ev_msg;
      check_string "sub" e.Log.ev_sub e'.Log.ev_sub;
      Alcotest.(check (option string)) "trace" e.Log.ev_trace e'.Log.ev_trace;
      Alcotest.(check (list (pair string string))) "fields" e.Log.ev_fields e'.Log.ev_fields;
      check_bool "level" true (e.Log.ev_level = e'.Log.ev_level)
  | Error msg -> Alcotest.failf "event did not round-trip: %s" msg);
  let line = Log.render e in
  List.iter
    (fun part -> check_bool (part ^ " rendered") true (contains_sub ~needle:part line))
    [ "ERROR"; "service.watchdog"; "build wedged"; "tenant=alice"; "trace=00000000deadbeef" ]

let test_log_sinks () =
  let lg = Log.create () in
  let texts = ref [] and jsons = ref [] in
  Log.set_text_sink lg (Some (fun l -> texts := l :: !texts));
  Log.set_json_sink lg (Some (fun l -> jsons := l :: !jsons));
  Log.info lg ~sub:"t" "hello";
  Log.debug lg ~sub:"t" "below level";
  check_int "text sink saw one line" 1 (List.length !texts);
  check_int "json sink saw one line" 1 (List.length !jsons);
  (match Json.of_string (List.hd !jsons) with
  | Json.Obj _ as j ->
      check_bool "json line carries the message" true
        (Json.member "msg" j = Some (Json.String "hello"))
  | _ -> Alcotest.fail "json sink line is not an object");
  Log.set_text_sink lg None;
  Log.info lg ~sub:"t" "after removal";
  check_int "removed sink sees nothing" 1 (List.length !texts)

let test_flight_recorder_dump () =
  let lg = Log.create () in
  let tele = T.create () in
  T.incr ~by:9 (T.counter tele "service.watchdog_kills");
  let file = Filename.temp_file "pld-flight" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      Log.arm_flight lg ~telemetry:tele ~file ();
      Log.info lg ~sub:"service" "context line";
      (* An error-level event trips the dump without anyone calling
         trip_flight — the watchdog-kill path. *)
      Log.error lg ~trace:"feedc0defeedc0de" ~sub:"service.watchdog" "build wedged";
      let doc = Json.of_string (In_channel.with_open_bin file In_channel.input_all) in
      (match Json.member "reason" doc with
      | Some (Json.String r) ->
          check_bool "reason names the tripping event" true
            (contains_sub ~needle:"build wedged" r)
      | _ -> Alcotest.fail "flight dump has no reason");
      (match Json.member "events" doc with
      | Some (Json.List evs) ->
          check_int "both ring events dumped" 2 (List.length evs);
          let parsed = List.map Log.event_of_json evs in
          check_bool "dumped events parse back" true (List.for_all Result.is_ok parsed)
      | _ -> Alcotest.fail "flight dump has no events");
      (match Json.member "metrics" doc with
      | Some m ->
          check_bool "metrics snapshot included" true
            (match Json.member "counters" m with
            | Some (Json.Obj cs) -> List.mem_assoc "service.watchdog_kills" cs
            | _ -> false)
      | None -> Alcotest.fail "flight dump has no metrics");
      Log.disarm_flight lg;
      Sys.remove file;
      Log.error lg ~sub:"t" "after disarm";
      check_bool "disarmed recorder writes nothing" false (Sys.file_exists file))

let test_mint_trace_id () =
  let ids = List.init 64 (fun _ -> Log.mint_trace_id ()) in
  List.iter
    (fun id ->
      check_int "16 hex digits" 16 (String.length id);
      String.iter
        (fun c ->
          check_bool "hex alphabet" true
            (match c with '0' .. '9' | 'a' .. 'f' -> true | _ -> false))
        id)
    ids;
  check_int "distinct within a process" 64 (List.length (List.sort_uniq compare ids))

(* ---------- prometheus exposition ---------- *)

let test_prometheus_exposition () =
  let tele = populated_sink () in
  let text = T.to_prometheus tele in
  let lines = String.split_on_char '\n' text in
  let has l = List.mem l lines in
  check_bool "counter TYPE line" true (has "# TYPE pld_engine_cache_hits counter");
  check_bool "counter value, dots sanitized" true (has "pld_engine_cache_hits 3");
  check_bool "histogram TYPE line" true (has "# TYPE pld_noc_hop_latency histogram");
  check_bool "cumulative finite bucket" true (has "pld_noc_hop_latency_bucket{le=\"10\"} 1");
  check_bool "+Inf bucket equals count" true (has "pld_noc_hop_latency_bucket{le=\"+Inf\"} 1");
  check_bool "histogram sum" true (has "pld_noc_hop_latency_sum 4");
  check_bool "histogram count" true (has "pld_noc_hop_latency_count 1");
  check_bool "span gauges" true (has "# TYPE pld_spans_recorded gauge");
  (* Satellite: HELP/TYPE for every metric — gauges and histograms
     included, with the original dotted name preserved in HELP. *)
  check_bool "counter HELP line" true
    (has "# HELP pld_engine_cache_hits pld metric engine.cache_hits (counter)");
  check_bool "histogram HELP line" true
    (has "# HELP pld_noc_hop_latency pld metric noc.hop_latency (histogram)");
  check_bool "span gauge HELP" true
    (has "# HELP pld_spans_recorded telemetry spans captured in the ring");
  let gtele = T.create () in
  T.set_gauge (T.gauge gtele "fabric.page.peak") 7.0;
  ignore (T.gauge gtele "fabric.unset");
  let glines = String.split_on_char '\n' (T.to_prometheus gtele) in
  check_bool "set gauge HELP line" true
    (List.mem "# HELP pld_fabric_page_peak pld metric fabric.page.peak (gauge)" glines);
  check_bool "set gauge TYPE line" true
    (List.mem "# TYPE pld_fabric_page_peak gauge" glines);
  check_bool "unset gauge still announced" true
    (List.mem "# TYPE pld_fabric_unset gauge" glines);
  check_bool "unset gauge has no sample" false
    (List.exists (fun l -> l = "pld_fabric_unset" || String.length l > 16 && String.sub l 0 16 = "pld_fabric_unset") glines);
  (* Every non-comment line is "name value" or "name{labels} value" over
     the sanitized alphabet — what a Prometheus scraper requires. *)
  List.iter
    (fun l ->
      if l <> "" && not (String.length l >= 1 && l.[0] = '#') then
        Scanf.sscanf l "%s %s%!" (fun name value ->
            check_bool (l ^ ": name alphabet") true
              (String.for_all
                 (function
                   | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' | '{' | '}' | '"' | '='
                   | '.' | '+' | '-' ->
                       true
                   | _ -> false)
                 name);
            check_bool (l ^ ": has a value") true (String.length value > 0)))
    lines

let test_prometheus_label_escaping () =
  Alcotest.(check string)
    "backslash, quote and newline get escapes" "a\\\\b\\\"c\\nd"
    (T.prometheus_escape_label "a\\b\"c\nd");
  Alcotest.(check string) "plain values pass through" "le-10.5" (T.prometheus_escape_label "le-10.5")

let suite =
  [
    Alcotest.test_case "with_span nests by containment" `Quick test_with_span_nesting;
    Alcotest.test_case "with_span closes on raise" `Quick test_with_span_exception_safety;
    Alcotest.test_case "instants have no duration" `Quick test_instant_has_no_duration;
    Alcotest.test_case "parallel executor span coverage" `Quick test_executor_parallel_spans;
    Alcotest.test_case "histogram bucket edges" `Quick test_histogram_bucket_edges;
    Alcotest.test_case "counters and gauges" `Quick test_counter_and_gauge;
    Alcotest.test_case "chrome export round-trips" `Quick test_chrome_json_roundtrip;
    Alcotest.test_case "metrics export round-trips" `Quick test_metrics_json_roundtrip;
    Alcotest.test_case "trace file export smoke" `Quick test_trace_export_smoke;
    Alcotest.test_case "json parser rejects malformed input" `Quick test_json_rejects_malformed;
    Alcotest.test_case "json string escapes" `Quick test_json_escapes;
    Alcotest.test_case "json deep nesting" `Quick test_json_deep_nesting;
    Alcotest.test_case "json pretty round-trip" `Quick test_json_pretty_roundtrip;
    Alcotest.test_case "quantile of samples (nearest rank)" `Quick test_quantile_of_samples;
    Alcotest.test_case "quantile of bucket counts" `Quick test_quantile_of_buckets;
    Alcotest.test_case "quantile from registry histogram" `Quick
      test_quantile_from_registry_histogram;
    Alcotest.test_case "log levels and bounded ring" `Quick test_log_levels_and_ring;
    Alcotest.test_case "log event JSONL round-trip" `Quick test_log_event_json_roundtrip;
    Alcotest.test_case "log sinks" `Quick test_log_sinks;
    Alcotest.test_case "flight recorder dumps ring and metrics" `Quick test_flight_recorder_dump;
    Alcotest.test_case "trace ids are unique hex" `Quick test_mint_trace_id;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
    Alcotest.test_case "prometheus label escaping" `Quick test_prometheus_label_escaping;
  ]
