(* Property-based differential testing: the generator, the cross-level
   oracle, the shrinker, and the corpus replayed as a permanent
   regression suite. *)

open Pld_ir
module P = Pld_proptest
module Gen = P.Gen
module Oracle = P.Oracle
module Mutate = P.Mutate
module Shrink = P.Shrink
module Corpus = P.Corpus
module Fuzz = P.Fuzz
module Seeded = P.Seeded
module B = Pld_core.Build
module Json = Pld_telemetry.Json

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ---------- seeded combinator ---------- *)

let test_seeded_determinism () =
  let draw () =
    let acc = ref [] in
    Seeded.cases ~seed:11 ~count:8 (fun i rng -> acc := (i, Pld_util.Rng.int rng 1000000) :: !acc);
    List.rev !acc
  in
  checkb "two sweeps identical" true (draw () = draw ());
  let seeds = Seeded.sub_seeds ~seed:11 ~count:16 "sweep" in
  checki "sub-seeds distinct" 16 (List.length (List.sort_uniq compare seeds));
  checkb "different tags differ" true (Seeded.derive ~seed:1 "a" <> Seeded.derive ~seed:1 "b");
  checkb "different seeds differ" true (Seeded.derive ~seed:1 "a" <> Seeded.derive ~seed:2 "a")

(* ---------- generator ---------- *)

let test_generator_valid () =
  for i = 0 to 24 do
    let c = Gen.case ~seed:5 ~index:i () in
    let g = c.Gen.graph in
    (match Validate.check_graph g with
    | [] -> ()
    | errs ->
        Alcotest.failf "case %d invalid: %s" i
          (String.concat "; " (List.map Validate.error_to_string errs)));
    checkb "fits softcore pages" true (List.length g.Graph.instances <= 7);
    List.iter
      (fun inp -> checkb "inputs are consumed, never outputs" false (List.mem inp g.Graph.outputs))
      g.Graph.inputs;
    (* feedback-free by construction *)
    ignore (Graph.topo_order g)
  done

let test_generator_deterministic () =
  let d i = Gen.digest (Gen.case ~seed:42 ~index:i ()).Gen.graph (Gen.case ~seed:42 ~index:i ()).Gen.inputs in
  checks "same seed+index, same digest" (d 3) (d 3);
  checkb "different indices, different graphs" true (d 3 <> d 4);
  let c = Gen.case ~seed:1 ~index:0 () and c' = Gen.case ~seed:2 ~index:0 () in
  checkb "different seeds, different graphs" true
    (Gen.digest c.Gen.graph c.Gen.inputs <> Gen.digest c'.Gen.graph c'.Gen.inputs)

(* ---------- the differential oracle ---------- *)

let test_oracle_differential () =
  for i = 0 to 9 do
    let c = Gen.case ~seed:23 ~index:i () in
    match Oracle.check c.Gen.graph ~inputs:c.Gen.inputs with
    | [] -> ()
    | fs ->
        Alcotest.failf "case %d: %s" i
          (String.concat "; " (List.map Oracle.failure_to_string fs))
  done

let test_oracle_o1 () =
  let config = { Oracle.default_config with Oracle.levels = [ B.O1 ] } in
  for i = 0 to 4 do
    let c = Gen.case ~seed:31 ~index:i () in
    match Oracle.check ~config c.Gen.graph ~inputs:c.Gen.inputs with
    | [] -> ()
    | fs ->
        Alcotest.failf "case %d at -O1: %s" i
          (String.concat "; " (List.map Oracle.failure_to_string fs))
  done

let test_scheduler_permutation () =
  (* Kahn property, asserted directly on the ?order hook. *)
  let c = Gen.case ~seed:23 ~index:3 () in
  let g = c.Gen.graph in
  let names = List.map (fun (i : Graph.instance) -> i.inst_name) g.Graph.instances in
  let base = (Pld_kpn.Run_graph.run g ~inputs:c.Gen.inputs).Pld_kpn.Run_graph.outputs in
  let perm = (Pld_kpn.Run_graph.run ~order:(List.rev names) g ~inputs:c.Gen.inputs).Pld_kpn.Run_graph.outputs in
  checki "permutation failures" 0 (List.length (Oracle.compare_streams ~where:"perm" base perm))

let test_cache_soundness () =
  let c = Gen.case ~seed:23 ~index:5 () in
  let cache = B.create_cache () in
  let fp = Pld_fabric.Floorplan.u50 () in
  let tele () = Pld_telemetry.Telemetry.create () in
  let _ = B.compile ~cache ~telemetry:(tele ()) fp c.Gen.graph ~level:B.O1 in
  let second = B.compile ~cache ~telemetry:(tele ()) fp c.Gen.graph ~level:B.O1 in
  checki "identical source recompiles nothing" 0 second.B.report.B.recompiled;
  checkb "warm build had cache hits" true (second.B.report.B.cache_hits > 0)

(* ---------- serialization ---------- *)

let test_serial_roundtrip () =
  for i = 0 to 4 do
    let c = Gen.case ~seed:77 ~index:i () in
    let j = P.Serial.graph_to_json c.Gen.graph in
    let g' = P.Serial.graph_of_json (Json.of_string (Json.to_string j)) in
    checks "graph source survives" (Graph.source c.Gen.graph) (Graph.source g');
    List.iter2
      (fun (a : Graph.instance) (b : Graph.instance) ->
        checks "operator source survives" (Op.source a.op) (Op.source b.op);
        checkb "target survives" true (a.target = b.target))
      c.Gen.graph.Graph.instances g'.Graph.instances;
    let w = P.Serial.workload_to_json c.Gen.inputs in
    let w' = P.Serial.workload_of_json (Json.of_string (Json.to_string w)) in
    checkb "workload bits survive" true
      (List.for_all2
         (fun (cn, vs) (cn', vs') -> cn = cn' && List.for_all2 Value.equal vs vs')
         c.Gen.inputs w')
  done;
  let m = Mutate.Swap_inputs { a = ("zip1", "in0"); b = ("zip1", "in1") } in
  let m' = P.Serial.mutation_of_json (Json.of_string (Json.to_string (P.Serial.mutation_to_json m))) in
  checks "mutation survives" (Mutate.describe m) (Mutate.describe m')

(* ---------- mutant self-test ---------- *)

let find_catchable ~seed ~max_cases =
  let found = ref None in
  (try
     for i = 0 to max_cases - 1 do
       let c = Gen.case ~seed ~index:i () in
       match
         List.find_opt
           (fun m -> Oracle.caught m c.Gen.graph ~inputs:c.Gen.inputs)
           (Mutate.candidates c.Gen.graph)
       with
       | Some m ->
           found := Some (c, m);
           raise Exit
       | None -> ()
     done
   with Exit -> ());
  !found

let test_mutant_caught_and_shrunk () =
  match find_catchable ~seed:7 ~max_cases:20 with
  | None -> Alcotest.fail "no catchable mutant within 20 cases — the oracle lost its teeth"
  | Some (c, m) ->
      let fs = Oracle.check_mutated m c.Gen.graph ~inputs:c.Gen.inputs in
      checkb "mutant fails the oracle" true (fs <> []);
      let sc = { Shrink.s_graph = c.Gen.graph; s_inputs = c.Gen.inputs; s_mutation = Some m } in
      let out = Shrink.shrink ~budget:80 sc (List.hd fs) in
      let small = out.Shrink.shrunk.Shrink.s_graph in
      checkb "shrunk to <= 4 operators" true (List.length small.Graph.instances <= 4);
      checkb "budget respected" true (out.Shrink.tested <= 80);
      (* the shrunk case still pins the property *)
      let m' = Option.get out.Shrink.shrunk.Shrink.s_mutation in
      checkb "shrunk mutant still caught" true
        (Oracle.caught m' small ~inputs:out.Shrink.shrunk.Shrink.s_inputs);
      checki "shrunk clean case passes" 0
        (List.length (Oracle.check small ~inputs:out.Shrink.shrunk.Shrink.s_inputs))

let test_shrink_plain_failure () =
  (* Shrinking a non-mutant failure: fabricate one by expecting the
     wrong outputs is not possible through the oracle, so instead check
     the candidate enumeration is non-empty and strictly smaller. *)
  let c = Gen.case ~seed:23 ~index:7 () in
  let sc = { Shrink.s_graph = c.Gen.graph; s_inputs = c.Gen.inputs; s_mutation = None } in
  let n = List.length c.Gen.graph.Graph.instances in
  List.iter
    (fun cand ->
      let n' = List.length cand.Shrink.s_graph.Graph.instances in
      checkb "candidate not larger" true (n' <= n);
      checki "candidate graph stays valid" 0 (List.length (Validate.check_graph cand.Shrink.s_graph)))
    (List.filter (fun cand -> cand.Shrink.s_mutation = None) (Shrink.candidates sc))

(* ---------- corpus replay ---------- *)

let test_corpus_replay () =
  let entries = Corpus.load_dir "corpus" in
  checkb "committed corpus is non-empty" true (entries <> []);
  checkb "a mutant reproducer is committed" true
    (List.exists (fun (_, e) -> e.Corpus.mutation <> None) entries);
  List.iter
    (fun (file, e) ->
      match Corpus.replay e with
      | [] -> ()
      | fs ->
          Alcotest.failf "corpus %s: %s" file
            (String.concat "; " (List.map Oracle.failure_to_string fs)))
    entries

(* ---------- the fuzz driver ---------- *)

let test_fuzz_driver_reproducible () =
  let opts = { Fuzz.default_options with Fuzz.count = 8; seed = 3 } in
  let s1 = Fuzz.run opts and s2 = Fuzz.run opts in
  checki "no failures" 0 s1.Fuzz.s_failed;
  checki "all cases pass" 8 s1.Fuzz.s_passed;
  checks "summary JSON bit-reproducible" (Json.to_string (Fuzz.summary_json s1))
    (Json.to_string (Fuzz.summary_json s2))

let test_fuzz_fault_sweep () =
  let opts = { Fuzz.default_options with Fuzz.count = 4; seed = 13; fault_sweep = true } in
  let s = Fuzz.run opts in
  checki "fault recovery preserves outputs" 0 s.Fuzz.s_failed

let test_parse_level_pairs () =
  (match Fuzz.parse_level_pairs "O0:O3,O1:O3" with
  | Ok [ (B.O0, B.O3); (B.O1, B.O3) ] -> ()
  | Ok _ -> Alcotest.fail "wrong pairs"
  | Error e -> Alcotest.fail e);
  checkb "bad level rejected" true (Result.is_error (Fuzz.parse_level_pairs "O0:O9"));
  checkb "bad shape rejected" true (Result.is_error (Fuzz.parse_level_pairs "O0"));
  checki "union deduplicates" 2 (List.length (Fuzz.levels_of_pairs [ (B.O0, B.O3); (B.O0, B.O3) ]))

let suite =
  [
    Alcotest.test_case "seeded combinator is deterministic" `Quick test_seeded_determinism;
    Alcotest.test_case "generated graphs validate and fit the floorplan" `Quick test_generator_valid;
    Alcotest.test_case "generator is seed-deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "differential oracle: -O0/-O3 match the reference" `Quick test_oracle_differential;
    Alcotest.test_case "differential oracle: -O1 matches the reference" `Quick test_oracle_o1;
    Alcotest.test_case "outputs invariant under scheduler permutation" `Quick test_scheduler_permutation;
    Alcotest.test_case "cache key soundness: warm rebuild recompiles nothing" `Quick test_cache_soundness;
    Alcotest.test_case "graphs, workloads and mutations round-trip JSON" `Quick test_serial_roundtrip;
    Alcotest.test_case "mutant self-test: miswired link caught and shrunk" `Quick test_mutant_caught_and_shrunk;
    Alcotest.test_case "shrink candidates are valid and never larger" `Quick test_shrink_plain_failure;
    Alcotest.test_case "committed corpus replays clean" `Quick test_corpus_replay;
    Alcotest.test_case "fuzz summaries are bit-reproducible" `Quick test_fuzz_driver_reproducible;
    Alcotest.test_case "fault sweep on random graphs preserves outputs" `Quick test_fuzz_fault_sweep;
    Alcotest.test_case "level-pair parsing" `Quick test_parse_level_pairs;
  ]
