(* The service tier: sessions over a shared cache, the multi-tenant
   request queue (dedup, admission control, priority), and the paper's
   economic claim — a second tenant asking for an already-built graph
   is served without re-running HLS or P&R, which we assert by counting
   modeled flow spans in a private telemetry sink. *)

module Build = Pld_core.Build
module Session = Pld_core.Session
module Runner = Pld_core.Runner
module Service = Pld_service.Service
module Traffic = Pld_service.Traffic
module T = Pld_telemetry.Telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_exn = function Ok v -> v | Error e -> Alcotest.failf "unexpected service error: %s" e
let chain ops = Traffic.chain_graph ops

(* Every recompiled job tiles one modeled track with its phase spans
   (hls, syn, pnr, ...) under cat "flow"; cache hits emit none. The
   span count is therefore a direct "did any tool re-run?" probe. *)
let flow_spans tele =
  List.length (List.filter (fun s -> String.equal s.T.cat "flow") (T.spans tele))

(* ---------- sessions ---------- *)

let test_session_compile_link_run () =
  let s = Session.open_session ~name:"unit" () in
  let ops = [ 0; 1 ] in
  let app = Session.compile s (chain ops) in
  check_bool "first compile recompiles" true (app.Build.report.Build.recompiled > 0);
  let app2 = Session.compile s (chain ops) in
  check_int "second compile recompiles nothing" 0 app2.Build.report.Build.recompiled;
  check_bool "second compile is link-time hits" true (app2.Build.report.Build.cache_hits > 0);
  check_int "compiles counted" 2 (Session.compiles s);
  check_bool "latest app remembered" true
    (List.mem_assoc (Traffic.chain_name ops) (Session.apps s));
  (* The session's card deploys and runs the app end to end. *)
  let dr = Session.link s app2 in
  let r = Session.run s dr ~inputs:(Traffic.chain_workload ops) in
  check_int "one frame out" (Traffic.chain_tokens ops)
    (List.length (List.assoc "cout" r.Runner.outputs));
  Session.close s;
  Session.close s;
  (* idempotent *)
  match Session.compile s (chain ops) with
  | _ -> Alcotest.fail "expected Session.Closed"
  | exception Session.Closed _ -> ()

let test_sessions_share_cache () =
  let cache = Build.create_cache () in
  let s1 = Session.open_session ~cache ~name:"first" () in
  let s2 = Session.open_session ~cache ~name:"second" () in
  let g = chain [ 2; 3 ] in
  let a1 = Session.compile s1 g in
  check_bool "first session builds" true (a1.Build.report.Build.recompiled > 0);
  let a2 = Session.compile s2 g in
  check_int "second session recompiles nothing" 0 a2.Build.report.Build.recompiled;
  check_bool "second session hits the shared cache" true (a2.Build.report.Build.cache_hits > 0);
  Session.close s1;
  Session.close s2

(* ---------- service: cache economics ---------- *)

let test_cross_tenant_served_without_reflow () =
  let tele = T.create () in
  let svc = Service.create ~queue_workers:1 ~telemetry:tele () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  let g = chain [ 4; 5 ] in
  let a = ok_exn (Service.compile svc ~tenant:"alice" g) in
  check_bool "primary build recompiles" true (a.Service.o_recompiled > 0);
  check_bool "primary is not a cross-tenant hit" false a.Service.o_cross_tenant;
  let flows = flow_spans tele in
  check_bool "primary build ran modeled tool phases" true (flows > 0);
  (* Same graph, different tenant, after the first build finished: the
     shared store serves it — no new tool phases may appear. *)
  let b = ok_exn (Service.compile svc ~tenant:"bob" g) in
  check_bool "served from another tenant's work" true b.Service.o_cross_tenant;
  check_int "nothing recompiled" 0 b.Service.o_recompiled;
  check_bool "link-time hits" true (b.Service.o_cache_hits > 0);
  check_int "no new flow spans: HLS/P&R did not re-run" flows (flow_spans tele);
  let st = Service.stats svc in
  check_int "one cross-tenant hit" 1 st.Service.st_cross_hits;
  check_int "both completed" 2 st.Service.st_completed

let test_inflight_dedup () =
  (* pace 0.5 stretches the ~20 ms build to ~0.7 s of modeled tool
     time, so the second submit provably lands while the first is in
     flight. *)
  let svc = Service.create ~queue_workers:1 ~jobs:1 ~pace:0.5 () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  let g = chain [ 6; 7 ] in
  let t1 = ok_exn (Service.submit svc ~tenant:"alice" g) in
  let t2 = ok_exn (Service.submit svc ~tenant:"bob" g) in
  let a = ok_exn (Service.await svc t1) in
  let b = ok_exn (Service.await svc t2) in
  check_bool "primary built" true (a.Service.o_recompiled > 0);
  check_bool "follower piggybacked" true b.Service.o_deduped;
  check_bool "follower is a cross-tenant hit" true b.Service.o_cross_tenant;
  check_int "follower recompiled nothing" 0 b.Service.o_recompiled;
  let st = Service.stats svc in
  check_int "one dedup" 1 st.Service.st_deduped;
  check_int "one cross-tenant hit" 1 st.Service.st_cross_hits

(* ---------- service: admission control and priority ---------- *)

let quota max_in_flight max_queued =
  { Service.max_in_flight; max_queued; cache_write_budget = None }

let test_admission_rejects_over_quota () =
  let svc =
    Service.create ~queue_workers:1 ~jobs:1 ~pace:0.5
      ~quotas:[ ("alice", quota 1 1) ]
      ()
  in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  (* One long build occupies the single worker; a one-deep queue then
     admits one more distinct graph and must reject the next. *)
  let submit ops = Service.submit svc ~tenant:"alice" (chain ops) in
  let blocker = ok_exn (submit [ 8; 9; 10 ]) in
  Unix.sleepf 0.05;
  let results = [ submit [ 11 ]; submit [ 12 ] ] in
  let rejected, admitted = List.partition Result.is_error results in
  check_int "queue bound enforced" 1 (List.length rejected);
  (match rejected with
  | [ Error e ] ->
      check_bool (Printf.sprintf "error names the full queue: %s" e) true
        (String.length e > 0)
  | _ -> Alcotest.fail "expected one rejection");
  List.iter (fun t -> ignore (ok_exn (Service.await svc (ok_exn t)))) admitted;
  ignore (ok_exn (Service.await svc blocker));
  let st = Service.stats svc in
  check_int "rejection counted" 1 st.Service.st_rejected;
  check_int "admitted jobs completed" 2 st.Service.st_completed;
  match st.Service.st_tenants with
  | [ ts ] -> check_int "per-tenant rejection" 1 ts.Service.ts_rejected
  | _ -> Alcotest.fail "expected one tenant"

let test_priority_order () =
  let svc = Service.create ~queue_workers:1 ~jobs:1 ~pace:0.5 () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  (* While the worker is busy, enqueue a low-priority job first and a
     high-priority one second: the scheduler must dispatch the
     high-priority job first, so it waits strictly less. *)
  let blocker = ok_exn (Service.submit svc ~tenant:"t" (chain [ 13; 14; 15 ])) in
  Unix.sleepf 0.05;
  let low = ok_exn (Service.submit svc ~tenant:"t" ~priority:0 (chain [ 16 ])) in
  let high = ok_exn (Service.submit svc ~tenant:"t" ~priority:5 (chain [ 17 ])) in
  ignore (ok_exn (Service.await svc blocker));
  let lo = ok_exn (Service.await svc low) in
  let hi = ok_exn (Service.await svc high) in
  check_bool
    (Printf.sprintf "high priority dispatched first (%.3f < %.3f)" hi.Service.o_queue_seconds
       lo.Service.o_queue_seconds)
    true
    (hi.Service.o_queue_seconds < lo.Service.o_queue_seconds)

(* ---------- percentile ---------- *)

let test_percentile () =
  let samples = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Service.percentile samples 0.50);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Service.percentile samples 0.99);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Service.percentile samples 1.0);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Service.percentile [] 0.5);
  Alcotest.(check (float 1e-9)) "unsorted input" 3.0 (Service.percentile [ 3.0; 1.0; 2.0 ] 1.0)

let suite =
  [
    ("session: compile, cache, link, run, close", `Quick, test_session_compile_link_run);
    ("session: two sessions share one cache", `Quick, test_sessions_share_cache);
    ("service: cross-tenant hit re-runs no tool phase", `Quick, test_cross_tenant_served_without_reflow);
    ("service: identical in-flight requests dedup", `Slow, test_inflight_dedup);
    ("service: admission control rejects over quota", `Slow, test_admission_rejects_over_quota);
    ("service: higher priority dispatches first", `Slow, test_priority_order);
    ("service: percentile", `Quick, test_percentile);
  ]
