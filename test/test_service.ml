(* The service tier: sessions over a shared cache, the multi-tenant
   request queue (dedup, admission control, priority), and the paper's
   economic claim — a second tenant asking for an already-built graph
   is served without re-running HLS or P&R, which we assert by counting
   modeled flow spans in a private telemetry sink. *)

module Build = Pld_core.Build
module Session = Pld_core.Session
module Runner = Pld_core.Runner
module Service = Pld_service.Service
module Traffic = Pld_service.Traffic
module Client = Pld_service.Client
module Fault = Pld_faults.Fault
module T = Pld_telemetry.Telemetry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let ok_exn = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected service error: %s" (Service.reject_message e)

let chain ops = Traffic.chain_graph ops

let faults spec =
  match Fault.parse spec with
  | Ok s -> Fault.create ~seed:7 s
  | Error msg -> Alcotest.failf "bad fault spec %S: %s" spec msg

(* Poll until [f ()] holds; the service's own watchdog tick is 10 ms so
   2 ms keeps us well inside any deadline the test asserts on. *)
let wait_until ?(timeout_s = 5.0) f =
  let t0 = Unix.gettimeofday () in
  let rec go () =
    if f () then true
    else if Unix.gettimeofday () -. t0 > timeout_s then false
    else (
      Unix.sleepf 0.002;
      go ())
  in
  go ()

(* The ledger the chaos harness pins: every submitted request must end
   up in exactly one terminal or live bucket. *)
let check_conserved svc =
  let st = Service.stats svc in
  check_int "requests conserved" st.Service.st_submitted
    (st.Service.st_completed + st.Service.st_failed + st.Service.st_deadline_exceeded
   + st.Service.st_lost + st.Service.st_queue_depth + st.Service.st_in_flight)

(* Every recompiled job tiles one modeled track with its phase spans
   (hls, syn, pnr, ...) under cat "flow"; cache hits emit none. The
   span count is therefore a direct "did any tool re-run?" probe. *)
let flow_spans tele =
  List.length (List.filter (fun s -> String.equal s.T.cat "flow") (T.spans tele))

(* ---------- sessions ---------- *)

let test_session_compile_link_run () =
  let s = Session.open_session ~name:"unit" () in
  let ops = [ 0; 1 ] in
  let app = Session.compile s (chain ops) in
  check_bool "first compile recompiles" true (app.Build.report.Build.recompiled > 0);
  let app2 = Session.compile s (chain ops) in
  check_int "second compile recompiles nothing" 0 app2.Build.report.Build.recompiled;
  check_bool "second compile is link-time hits" true (app2.Build.report.Build.cache_hits > 0);
  check_int "compiles counted" 2 (Session.compiles s);
  check_bool "latest app remembered" true
    (List.mem_assoc (Traffic.chain_name ops) (Session.apps s));
  (* The session's card deploys and runs the app end to end. *)
  let dr = Session.link s app2 in
  let r = Session.run s dr ~inputs:(Traffic.chain_workload ops) in
  check_int "one frame out" (Traffic.chain_tokens ops)
    (List.length (List.assoc "cout" r.Runner.outputs));
  Session.close s;
  Session.close s;
  (* idempotent *)
  match Session.compile s (chain ops) with
  | _ -> Alcotest.fail "expected Session.Closed"
  | exception Session.Closed _ -> ()

let test_sessions_share_cache () =
  let cache = Build.create_cache () in
  let s1 = Session.open_session ~cache ~name:"first" () in
  let s2 = Session.open_session ~cache ~name:"second" () in
  let g = chain [ 2; 3 ] in
  let a1 = Session.compile s1 g in
  check_bool "first session builds" true (a1.Build.report.Build.recompiled > 0);
  let a2 = Session.compile s2 g in
  check_int "second session recompiles nothing" 0 a2.Build.report.Build.recompiled;
  check_bool "second session hits the shared cache" true (a2.Build.report.Build.cache_hits > 0);
  Session.close s1;
  Session.close s2

(* ---------- service: cache economics ---------- *)

let test_cross_tenant_served_without_reflow () =
  let tele = T.create () in
  let svc = Service.create ~queue_workers:1 ~telemetry:tele () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  let g = chain [ 4; 5 ] in
  let a = ok_exn (Service.compile svc ~tenant:"alice" g) in
  check_bool "primary build recompiles" true (a.Service.o_recompiled > 0);
  check_bool "primary is not a cross-tenant hit" false a.Service.o_cross_tenant;
  let flows = flow_spans tele in
  check_bool "primary build ran modeled tool phases" true (flows > 0);
  (* Same graph, different tenant, after the first build finished: the
     shared store serves it — no new tool phases may appear. *)
  let b = ok_exn (Service.compile svc ~tenant:"bob" g) in
  check_bool "served from another tenant's work" true b.Service.o_cross_tenant;
  check_int "nothing recompiled" 0 b.Service.o_recompiled;
  check_bool "link-time hits" true (b.Service.o_cache_hits > 0);
  check_int "no new flow spans: HLS/P&R did not re-run" flows (flow_spans tele);
  let st = Service.stats svc in
  check_int "one cross-tenant hit" 1 st.Service.st_cross_hits;
  check_int "both completed" 2 st.Service.st_completed

let test_inflight_dedup () =
  (* pace 0.5 stretches the ~20 ms build to ~0.7 s of modeled tool
     time, so the second submit provably lands while the first is in
     flight. *)
  let svc = Service.create ~queue_workers:1 ~jobs:1 ~pace:0.5 () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  let g = chain [ 6; 7 ] in
  let t1 = ok_exn (Service.submit svc ~tenant:"alice" g) in
  let t2 = ok_exn (Service.submit svc ~tenant:"bob" g) in
  let a = ok_exn (Service.await svc t1) in
  let b = ok_exn (Service.await svc t2) in
  check_bool "primary built" true (a.Service.o_recompiled > 0);
  check_bool "follower piggybacked" true b.Service.o_deduped;
  check_bool "follower is a cross-tenant hit" true b.Service.o_cross_tenant;
  check_int "follower recompiled nothing" 0 b.Service.o_recompiled;
  let st = Service.stats svc in
  check_int "one dedup" 1 st.Service.st_deduped;
  check_int "one cross-tenant hit" 1 st.Service.st_cross_hits

(* ---------- service: admission control and priority ---------- *)

let quota max_in_flight max_queued =
  { Service.max_in_flight; max_queued; cache_write_budget = None }

let test_admission_rejects_over_quota () =
  let svc =
    Service.create ~queue_workers:1 ~jobs:1 ~pace:0.5
      ~quotas:[ ("alice", quota 1 1) ]
      ()
  in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  (* One long build occupies the single worker; a one-deep queue then
     admits one more distinct graph and must reject the next. *)
  let submit ops = Service.submit svc ~tenant:"alice" (chain ops) in
  let blocker = ok_exn (submit [ 8; 9; 10 ]) in
  Unix.sleepf 0.05;
  let results = [ submit [ 11 ]; submit [ 12 ] ] in
  let rejected, admitted = List.partition Result.is_error results in
  check_int "queue bound enforced" 1 (List.length rejected);
  (match rejected with
  | [ Error (Service.Queue_full { tenant; queued; max_queued } as rej) ] ->
      check_bool "rejection names the tenant" true (String.equal tenant "alice");
      check_int "rejection reports the bound" 1 max_queued;
      check_bool "rejection reports a full queue" true (queued >= max_queued);
      check_bool "queue-full is retryable" true
        (Option.is_some (Service.reject_retry_after_ms rej))
  | [ Error rej ] -> Alcotest.failf "expected Queue_full, got %s" (Service.reject_message rej)
  | _ -> Alcotest.fail "expected one rejection");
  List.iter (fun t -> ignore (ok_exn (Service.await svc (ok_exn t)))) admitted;
  ignore (ok_exn (Service.await svc blocker));
  let st = Service.stats svc in
  check_int "rejection counted" 1 st.Service.st_rejected;
  check_int "admitted jobs completed" 2 st.Service.st_completed;
  match st.Service.st_tenants with
  | [ ts ] -> check_int "per-tenant rejection" 1 ts.Service.ts_rejected
  | _ -> Alcotest.fail "expected one tenant"

let test_priority_order () =
  let svc = Service.create ~queue_workers:1 ~jobs:1 ~pace:0.5 () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  (* While the worker is busy, enqueue a low-priority job first and a
     high-priority one second: the scheduler must dispatch the
     high-priority job first, so it waits strictly less. *)
  let blocker = ok_exn (Service.submit svc ~tenant:"t" (chain [ 13; 14; 15 ])) in
  Unix.sleepf 0.05;
  let low = ok_exn (Service.submit svc ~tenant:"t" ~priority:0 (chain [ 16 ])) in
  let high = ok_exn (Service.submit svc ~tenant:"t" ~priority:5 (chain [ 17 ])) in
  ignore (ok_exn (Service.await svc blocker));
  let lo = ok_exn (Service.await svc low) in
  let hi = ok_exn (Service.await svc high) in
  check_bool
    (Printf.sprintf "high priority dispatched first (%.3f < %.3f)" hi.Service.o_queue_seconds
       lo.Service.o_queue_seconds)
    true
    (hi.Service.o_queue_seconds < lo.Service.o_queue_seconds)

(* ---------- robustness: deadlines, watchdog, shed, drain ---------- *)

let test_deadline_expires_in_queue () =
  (* A wedged build (hang injection) holds the single worker; jobs
     queued behind it with a 50 ms deadline must expire in place, in
     the "queued" stage, without ever dispatching. *)
  let svc = Service.create ~queue_workers:1 ~jobs:1 ~faults:(faults "hang=svc-8@300") () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  let blocker = ok_exn (Service.submit svc ~tenant:"t" (chain [ 8 ])) in
  check_bool "blocker dispatched" true
    (wait_until (fun () -> (Service.stats svc).Service.st_in_flight = 1));
  let doomed =
    List.map (fun op -> ok_exn (Service.submit svc ~tenant:"t" ~deadline_ms:50 (chain [ op ])))
      [ 0; 1 ]
  in
  List.iter
    (fun ticket ->
      match Service.await svc ticket with
      | Error (Service.Deadline_exceeded { stage; overrun_ms }) ->
          check_bool "expired while queued" true (String.equal stage "queued");
          check_bool "overrun is non-negative" true (overrun_ms >= 0)
      | Ok _ -> Alcotest.fail "expected a queued-deadline expiry"
      | Error rej ->
          Alcotest.failf "expected Deadline_exceeded, got %s" (Service.reject_message rej))
    doomed;
  ignore (ok_exn (Service.await svc blocker));
  let st = Service.stats svc in
  check_int "expiries counted" 2 st.Service.st_deadline_exceeded;
  check_conserved svc

let test_deadline_expires_mid_build () =
  (* The hang sits inside the build, so the deadline can only fire at
     a tool-phase boundary — the stage must say so. *)
  let svc = Service.create ~queue_workers:1 ~jobs:1 ~faults:(faults "hang=svc-7@250") () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  (match Service.compile svc ~tenant:"t" ~deadline_ms:80 (chain [ 7 ]) with
  | Error (Service.Deadline_exceeded { stage; _ }) ->
      check_bool "expired mid-build" true (String.equal stage "build")
  | Ok _ -> Alcotest.fail "expected a mid-build deadline expiry"
  | Error rej -> Alcotest.failf "expected Deadline_exceeded, got %s" (Service.reject_message rej));
  check_int "expiry counted" 1 (Service.stats svc).Service.st_deadline_exceeded;
  check_conserved svc

let test_watchdog_replaces_wedged_worker () =
  let svc =
    Service.create ~queue_workers:1 ~jobs:1 ~watchdog_timeout_s:0.12 ~watchdog_tick_s:0.01
      ~faults:(faults "hang=svc-9@500") ()
  in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  (match Service.compile svc ~tenant:"t" (chain [ 9 ]) with
  | Error (Service.Lost _) -> ()
  | Ok _ -> Alcotest.fail "expected the watchdog to write the build off"
  | Error rej -> Alcotest.failf "expected Lost, got %s" (Service.reject_message rej));
  (* The wedged worker was quarantined and replaced: the service must
     still build. *)
  let o = ok_exn (Service.compile svc ~tenant:"t" (chain [ 1 ])) in
  check_bool "replacement worker builds" true (o.Service.o_recompiled > 0);
  let st = Service.stats svc in
  check_int "one watchdog kill" 1 st.Service.st_watchdog_kills;
  check_int "one job lost" 1 st.Service.st_lost;
  check_conserved svc

let test_shed_refuses_with_hint () =
  let shed =
    { Service.sp_max_delay_s = 0.2; sp_exempt_priority = 50; sp_assumed_build_s = 1.0 }
  in
  let svc = Service.create ~queue_workers:1 ~jobs:1 ~shed ~faults:(faults "hang=svc-6@250") () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  let blocker = ok_exn (Service.submit svc ~tenant:"t" (chain [ 6 ])) in
  check_bool "blocker dispatched" true
    (wait_until (fun () -> (Service.stats svc).Service.st_in_flight = 1));
  (* One assumed-1s build over one worker blows a 0.2 s budget. *)
  (match Service.submit svc ~tenant:"mob" (chain [ 10 ]) with
  | Error (Service.Shed { retry_after_ms; _ }) ->
      check_bool "hint is positive" true (retry_after_ms > 0)
  | Ok _ -> Alcotest.fail "expected the submission to be shed"
  | Error rej -> Alcotest.failf "expected Shed, got %s" (Service.reject_message rej));
  (* At or above the exempt priority, work is never shed. *)
  let vip = ok_exn (Service.submit svc ~tenant:"vip" ~priority:50 (chain [ 20 ])) in
  ignore (ok_exn (Service.await svc blocker));
  ignore (ok_exn (Service.await svc vip));
  let st = Service.stats svc in
  check_int "shed counted separately" 1 st.Service.st_shed;
  check_int "shed is not a rejection" 0 st.Service.st_rejected;
  check_conserved svc

let test_drain_refuses_honestly () =
  let svc = Service.create ~queue_workers:1 () in
  let o = ok_exn (Service.compile svc ~tenant:"t" (chain [ 2 ])) in
  check_bool "build before drain" true (o.Service.o_recompiled > 0);
  Service.drain ~grace_s:1.0 svc;
  check_bool "draining reported" true (Service.draining svc);
  (match Service.submit svc ~tenant:"t" (chain [ 3 ]) with
  | Error (Service.Draining _ as rej) ->
      check_bool "DRAINING on the wire" true
        (String.equal (Service.reject_state rej) "DRAINING")
  | Ok _ -> Alcotest.fail "expected a draining refusal"
  | Error rej -> Alcotest.failf "expected Draining, got %s" (Service.reject_message rej));
  Service.shutdown svc;
  check_conserved svc

(* ---------- client backoff ---------- *)

let test_backoff_deterministic () =
  let p = { Client.default_backoff with Client.b_seed = 42 } in
  let schedule b = List.init b.Client.b_attempts (Client.backoff_delay b) in
  (* Equal seeds give equal schedules — what makes a chaos run
     reproducible end to end. *)
  Alcotest.(check (list (float 1e-12))) "equal seeds, equal schedules" (schedule p) (schedule p);
  check_bool "seed changes the schedule" true
    (schedule p <> schedule { p with Client.b_seed = 43 });
  (* Every delay sits inside the jittered exponential envelope. *)
  List.iteri
    (fun attempt d ->
      let raw = min p.Client.b_cap_s (p.Client.b_base_s *. (2.0 ** float_of_int attempt)) in
      check_bool (Printf.sprintf "attempt %d below envelope" attempt) true (d <= raw +. 1e-12);
      check_bool (Printf.sprintf "attempt %d above jitter floor" attempt) true
        (d >= ((1.0 -. p.Client.b_jitter) *. raw) -. 1e-12))
    (schedule p);
  (* Growth is capped: far-out attempts never exceed the cap. *)
  check_bool "cap holds" true (Client.backoff_delay p 30 <= p.Client.b_cap_s +. 1e-12)

(* ---------- percentile ---------- *)

let test_percentile () =
  let samples = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Service.percentile samples 0.50);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Service.percentile samples 0.99);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Service.percentile samples 1.0);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Service.percentile [] 0.5);
  Alcotest.(check (float 1e-9)) "unsorted input" 3.0 (Service.percentile [ 3.0; 1.0; 2.0 ] 1.0)

(* ---------- observability: distributed traces, status, flight ---------- *)

module Server = Pld_service.Server
module Protocol = Pld_service.Protocol
module Log = Pld_telemetry.Log
module Json = Pld_telemetry.Json

let spans_with_trace tele id =
  List.filter (fun (s : T.span) -> List.assoc_opt "trace" s.T.attrs = Some id) (T.spans tele)

let named name spans = List.filter (fun (s : T.span) -> String.equal s.T.name name) spans

let resolve_chain name = Result.map Traffic.chain_graph (Traffic.chain_of_name name)

(* The tentpole, end to end over a real socket: one trace id minted
   client-side must stitch the client's retry attempts, the server's
   admission verdict and queue wait, and the modeled tool phases into
   one trace. The server comes up late on purpose, so the client
   provably retries before succeeding. *)
let test_trace_spans_client_retry_queue_and_build () =
  let tele = T.create () in
  let logger = Log.create () in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pld-e2e-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket then Sys.remove socket;
  let svc = Service.create ~queue_workers:1 ~telemetry:tele ~logger () in
  let server =
    Thread.create
      (fun () ->
        Unix.sleepf 0.08;
        ignore
          (Server.serve ~socket ~install_signals:false ~telemetry:tele ~logger
             ~service:svc
             ~handler:(fun t e -> Server.handle t ~resolve:resolve_chain e)
             ()))
      ()
  in
  let trace = "0123456789abcdef" in
  let envelope =
    Protocol.envelope ~tenant:"alice" ~trace
      (Protocol.Compile { bench = "svc-2x3"; level = "O1" })
  in
  let backoff =
    { Client.default_backoff with Client.b_attempts = 60; b_base_s = 0.01; b_cap_s = 0.02 }
  in
  (match Client.rpc_retry ~backoff ~telemetry:tele ~socket envelope with
  | Ok r -> check_bool "remote compile succeeded" true r.Protocol.ok
  | Error msg -> Alcotest.failf "rpc_retry failed: %s" msg);
  (match Client.rpc ~socket (Protocol.envelope Protocol.Shutdown) with
  | Ok r -> check_bool "shutdown acknowledged" true r.Protocol.ok
  | Error msg -> Alcotest.failf "shutdown failed: %s" msg);
  Thread.join server;
  let traced = spans_with_trace tele trace in
  (* Client side: the attempts that failed against the dead socket and
     the one that succeeded all carry the id, as do the retry marks. *)
  check_bool "client made several attempts under one trace" true
    (List.length (named "rpc.attempt" traced) >= 2);
  check_bool "retry decisions are on the trace" true
    (List.length (named "rpc.retry" traced) >= 1);
  (* Server side: the admission verdict, the queue wait, the build
     umbrella and the modeled tool phases share the same id. *)
  check_int "one admission verdict" 1 (List.length (named "admission.admit" traced));
  check_int "one queue wait" 1 (List.length (named "queue.wait" traced));
  check_int "one request span" 1 (List.length (named "request" traced));
  check_bool "modeled tool phases carry the trace" true
    (List.exists (fun (s : T.span) -> String.equal s.T.cat "flow") traced);
  check_bool "request completed ok" true
    (List.exists
       (fun (s : T.span) -> List.assoc_opt "outcome" s.T.attrs = Some "ok")
       (named "request" traced))

(* The paper's economics, now provable per request: a dedup follower's
   trace contains its admission, join verdict and request span — and
   zero tool-phase or executor spans, because nothing was built for
   it. *)
let test_dedup_follower_trace_has_no_tool_spans () =
  let tele = T.create () in
  let svc = Service.create ~queue_workers:1 ~jobs:1 ~pace:0.5 ~telemetry:tele () in
  Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
  let g = chain [ 18; 19 ] in
  let ta = "aaaaaaaaaaaaaaaa" and tb = "bbbbbbbbbbbbbbbb" in
  let t1 = ok_exn (Service.submit svc ~tenant:"alice" ~trace_id:ta g) in
  let t2 = ok_exn (Service.submit svc ~tenant:"bob" ~trace_id:tb g) in
  ignore (ok_exn (Service.await svc t1));
  let b = ok_exn (Service.await svc t2) in
  check_bool "follower piggybacked" true b.Service.o_deduped;
  let a_spans = spans_with_trace tele ta and b_spans = spans_with_trace tele tb in
  check_bool "primary trace ran tool phases" true
    (List.exists (fun (s : T.span) -> String.equal s.T.cat "flow") a_spans);
  check_int "follower trace ran zero tool or executor spans" 0
    (List.length
       (List.filter
          (fun (s : T.span) -> String.equal s.T.cat "flow" || String.equal s.T.cat "engine")
          b_spans));
  check_bool "follower trace records the dedup join" true
    (List.exists
       (fun (s : T.span) ->
         String.equal s.T.name "dedup.join"
         && List.assoc_opt "primary_trace" s.T.attrs = Some ta)
       b_spans);
  check_int "follower still gets a request span" 1 (List.length (named "request" b_spans))

(* The hang injector wedges a build; the watchdog kill logs at Error
   level, which must trip the armed flight recorder into a parseable
   dump of the recent events plus the metrics snapshot. *)
let test_watchdog_kill_trips_flight_recorder () =
  let tele = T.create () in
  let logger = Log.create ~level:Log.Debug () in
  let file = Filename.temp_file "pld-flight" ".json" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists file then Sys.remove file)
    (fun () ->
      Log.arm_flight logger ~telemetry:tele ~file ();
      let svc =
        Service.create ~queue_workers:1 ~jobs:1 ~telemetry:tele ~logger
          ~watchdog_timeout_s:0.12 ~watchdog_tick_s:0.01 ~faults:(faults "hang=svc-9@500") ()
      in
      Fun.protect ~finally:(fun () -> Service.shutdown svc) @@ fun () ->
      (match Service.compile svc ~tenant:"t" (chain [ 9 ]) with
      | Error (Service.Lost _) -> ()
      | Ok _ -> Alcotest.fail "expected the watchdog to write the build off"
      | Error rej -> Alcotest.failf "expected Lost, got %s" (Service.reject_message rej));
      let doc = Json.of_string (In_channel.with_open_bin file In_channel.input_all) in
      (match Json.member "events" doc with
      | Some (Json.List evs) ->
          let parsed = List.filter_map (fun j -> Result.to_option (Log.event_of_json j)) evs in
          check_int "every dumped event parses" (List.length evs) (List.length parsed);
          check_bool "the watchdog kill is in the dump" true
            (List.exists
               (fun e -> String.equal e.Log.ev_sub "service.watchdog" && e.Log.ev_level = Log.Error)
               parsed);
          check_bool "events carry the request trace" true
            (List.exists (fun e -> Option.is_some e.Log.ev_trace) parsed)
      | _ -> Alcotest.fail "flight dump has no events");
      match Json.member "metrics" doc with
      | Some m -> (
          match Json.member "counters" m with
          | Some (Json.Obj cs) ->
              check_bool "metrics snapshot has the kill counter" true
                (List.assoc_opt "service.watchdog_kills" cs = Some (Json.Int 1))
          | _ -> Alcotest.fail "flight metrics have no counters")
      | None -> Alcotest.fail "flight dump has no metrics")

(* The Status/Health admin documents: counts, per-tenant quantiles
   from bucket counts, and honest state transitions under drain. *)
let test_status_and_health_json () =
  let svc = Service.create ~queue_workers:1 () in
  ignore (ok_exn (Service.compile svc ~tenant:"alice" (chain [ 20; 21 ])));
  ignore (ok_exn (Service.compile svc ~tenant:"bob" (chain [ 20; 21 ])));
  let doc = Service.status_json svc in
  let member path j =
    match Json.member path j with Some v -> v | None -> Alcotest.failf "missing %s" path
  in
  (match member "state" doc with
  | Json.String s -> Alcotest.(check string) "running" "running" s
  | _ -> Alcotest.fail "state not a string");
  (match member "counters" doc with
  | Json.Obj cs ->
      check_bool "submitted counted" true (List.assoc_opt "submitted" cs = Some (Json.Int 2));
      check_bool "completed counted" true (List.assoc_opt "completed" cs = Some (Json.Int 2));
      check_bool "one cross-tenant hit" true
        (List.assoc_opt "cross_tenant_hits" cs = Some (Json.Int 1))
  | _ -> Alcotest.fail "counters not an object");
  (match member "tenants" doc with
  | Json.List tenants ->
      check_int "both tenants reported" 2 (List.length tenants);
      List.iter
        (fun tj ->
          match member "latency" tj with
          | Json.Obj lat ->
              check_bool "each tenant observed one latency" true
                (List.assoc_opt "count" lat = Some (Json.Int 1));
              (match List.assoc_opt "p50_s" lat with
              | Some (Json.Float p50) -> check_bool "p50 positive" true (p50 > 0.0)
              | _ -> Alcotest.fail "no p50_s")
          | _ -> Alcotest.fail "tenant latency not an object")
        tenants
  | _ -> Alcotest.fail "tenants not a list");
  (match member "builds" doc with
  | Json.List [] -> ()
  | Json.List _ -> Alcotest.fail "no build should be in flight"
  | _ -> Alcotest.fail "builds not a list");
  (* render_status turns the same document into the pldc status/top
     summary without raising. *)
  let lines = Protocol.render_status doc in
  check_bool "rendered summary is non-empty" true (List.length lines > 0);
  (match Json.member "ok" (Service.health_json svc) with
  | Some (Json.Bool ok) -> check_bool "healthy while running" true ok
  | _ -> Alcotest.fail "health has no ok");
  Service.drain ~grace_s:1.0 svc;
  (match Json.member "ok" (Service.health_json svc) with
  | Some (Json.Bool ok) -> check_bool "unhealthy once draining" false ok
  | _ -> Alcotest.fail "health has no ok after drain");
  Service.shutdown svc

(* ---------- fabric profiles in the shared store ---------- *)

(* The profile is keyed like the build it describes, so a dedup'd
   cross-tenant hit carries the primary run's profile: bob asking for
   alice's graph gets alice's measurements, trace id included. *)
let test_profile_travels_with_artifact () =
  let svc = Service.create ~queue_workers:1 () in
  let g = chain [ 30; 31 ] in
  ignore (ok_exn (Service.compile svc ~tenant:"alice" ~level:Build.O1 g));
  check_bool "no profile before any profiled run" true
    (Service.find_profile svc g Build.O1 = None);
  let doc =
    Json.Obj [ ("graph", Json.String "svc-chain"); ("trace", Json.String "alice-trace-1") ]
  in
  Service.put_profile svc g Build.O1 doc;
  (* A structurally identical graph from another tenant resolves to the
     same key — the artifact and its profile are one unit. *)
  let g' = chain [ 30; 31 ] in
  check_bool "identical graphs share the profile key" true
    (Service.profile_key g Build.O1 = Service.profile_key g' Build.O1);
  let b = ok_exn (Service.compile svc ~tenant:"bob" ~level:Build.O1 g') in
  check_bool "bob's build is a cross-tenant hit" true b.Service.o_cross_tenant;
  (match Service.find_profile svc g' Build.O1 with
  | None -> Alcotest.fail "cross-tenant hit lost the primary's profile"
  | Some d ->
      Alcotest.(check string) "primary's document served verbatim" (Json.to_string doc)
        (Json.to_string d));
  (* Levels partition the store: no -O0 profile was ever written. *)
  check_bool "other level has no profile" true (Service.find_profile svc g Build.O0 = None);
  Service.shutdown svc

(* The [profile] wire verb end to end: absent before any run, then the
   persisted document with the caller's trace id echoed for
   correlation. *)
let test_profile_wire_verb () =
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pld-profile-%d.sock" (Unix.getpid ()))
  in
  if Sys.file_exists socket then Sys.remove socket;
  let svc = Service.create ~queue_workers:1 () in
  let server =
    Thread.create
      (fun () ->
        ignore
          (Server.serve ~socket ~install_signals:false ~service:svc
             ~handler:(fun t e -> Server.handle t ~resolve:resolve_chain e)
             ()))
      ()
  in
  let rpc req =
    let backoff =
      { Client.default_backoff with Client.b_attempts = 60; b_base_s = 0.01; b_cap_s = 0.02 }
    in
    match Client.rpc_retry ~backoff ~socket req with
    | Ok r -> r
    | Error msg -> Alcotest.failf "rpc failed: %s" msg
  in
  let ask = Protocol.Profile { bench = "svc-2x3"; level = "O1" } in
  let r = rpc (Protocol.envelope ~tenant:"alice" ask) in
  check_bool "absent profile still answers ok" true r.Protocol.ok;
  check_bool "found=false before any run" true
    (Json.member "found" r.Protocol.body = Some (Json.Bool false));
  check_bool "profile is null when absent" true
    (Json.member "profile" r.Protocol.body = Some Json.Null);
  (* A run elsewhere persists the document; the verb now serves it. *)
  let g =
    match resolve_chain "svc-2x3" with
    | Ok g -> g
    | Error m -> Alcotest.failf "resolve failed: %s" m
  in
  Service.put_profile svc g Pld_core.Build.O1 (Json.Obj [ ("marker", Json.Int 7) ]);
  let r = rpc (Protocol.envelope ~tenant:"bob" ~trace:"fedcba9876543210" ask) in
  check_bool "found=true once persisted" true
    (Json.member "found" r.Protocol.body = Some (Json.Bool true));
  (match Json.member "profile" r.Protocol.body with
  | Some (Json.Obj fields) ->
      check_bool "document served" true (List.assoc_opt "marker" fields = Some (Json.Int 7))
  | _ -> Alcotest.fail "profile body is not the stored object");
  check_bool "trace id echoed for correlation" true
    (Json.member "trace" r.Protocol.body = Some (Json.String "fedcba9876543210"));
  (* Unknown bench and bad level are hard errors, not empty results. *)
  let bad = rpc (Protocol.envelope (Protocol.Profile { bench = "no-such"; level = "O1" })) in
  check_bool "unknown bench refused" false bad.Protocol.ok;
  (match Client.rpc ~socket (Protocol.envelope Protocol.Shutdown) with
  | Ok r -> check_bool "shutdown acknowledged" true r.Protocol.ok
  | Error msg -> Alcotest.failf "shutdown failed: %s" msg);
  Thread.join server

let suite =
  [
    ("session: compile, cache, link, run, close", `Quick, test_session_compile_link_run);
    ("session: two sessions share one cache", `Quick, test_sessions_share_cache);
    ("service: cross-tenant hit re-runs no tool phase", `Quick, test_cross_tenant_served_without_reflow);
    ("service: identical in-flight requests dedup", `Slow, test_inflight_dedup);
    ("service: admission control rejects over quota", `Slow, test_admission_rejects_over_quota);
    ("service: higher priority dispatches first", `Slow, test_priority_order);
    ("service: queued deadline expires in place", `Slow, test_deadline_expires_in_queue);
    ("service: deadline fires at a tool-phase boundary", `Slow, test_deadline_expires_mid_build);
    ("service: watchdog writes off a wedged build", `Slow, test_watchdog_replaces_wedged_worker);
    ("service: overload shed carries a retry hint", `Slow, test_shed_refuses_with_hint);
    ("service: draining refusals are honest", `Slow, test_drain_refuses_honestly);
    ("client: backoff schedule is seeded and capped", `Quick, test_backoff_deterministic);
    ("service: percentile", `Quick, test_percentile);
    ("trace: one id spans retry, queue and build", `Slow, test_trace_spans_client_retry_queue_and_build);
    ("trace: dedup follower shows zero tool spans", `Slow, test_dedup_follower_trace_has_no_tool_spans);
    ("flight: watchdog kill dumps the recorder", `Slow, test_watchdog_kill_trips_flight_recorder);
    ("status: live introspection documents", `Quick, test_status_and_health_json);
    ("profile: travels with the shared artifact", `Quick, test_profile_travels_with_artifact);
    ("profile: wire verb serves persisted document", `Slow, test_profile_wire_verb);
  ]
