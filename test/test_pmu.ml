(* Fabric PMU: windowed sampling over a modeled clock — ring behavior,
   out-of-order and over-age samples, derived statistics, and the JSON
   persistence format fabric profiles ride on. *)

module Pmu = Pld_telemetry.Pmu
module Json = Pld_telemetry.Json

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

let test_windowing () =
  let p = Pmu.create ~window_cycles:16 ~depth:4 () in
  check_int "window width" 16 (Pmu.window_cycles p);
  check_int "depth" 4 (Pmu.depth p);
  let s = Pmu.series p ~unit_:"flits" "noc.link.0.flits" in
  (* Three samples in window 0, one in window 1, one in window 3. *)
  List.iter (fun (c, v) -> Pmu.add s ~cycle:c v) [ (0, 1.0); (7, 2.0); (15, 3.0); (16, 4.0); (60, 5.0) ];
  let ws = Pmu.windows p "noc.link.0.flits" in
  Alcotest.(check (list int)) "window indices, oldest first" [ 0; 1; 3 ]
    (List.map (fun (w : Pmu.window) -> w.Pmu.w_index) ws);
  let w0 = List.hd ws in
  check_float "window 0 sum" 6.0 w0.Pmu.w_sum;
  check_int "window 0 count" 3 w0.Pmu.w_count;
  check_float "window 0 peak" 3.0 w0.Pmu.w_peak;
  match Pmu.stat p "noc.link.0.flits" with
  | None -> Alcotest.fail "series has no stat"
  | Some st ->
      check_float "total" 15.0 st.Pmu.st_total;
      check_int "count" 5 st.Pmu.st_count;
      check_int "last cycle" 60 st.Pmu.st_last_cycle;
      check_float "rate per cycle" (15.0 /. 61.0) st.Pmu.st_rate;
      check_float "peak window" 6.0 st.Pmu.st_peak_window;
      check_float "mean sample" 3.0 st.Pmu.st_mean;
      check_float "peak sample" 5.0 st.Pmu.st_peak;
      Alcotest.(check string) "unit carried" "flits" st.Pmu.st_unit

let test_ring_eviction_and_drops () =
  let p = Pmu.create ~window_cycles:8 ~depth:2 () in
  let s = Pmu.series p "kpn.proc.a.firings" in
  Pmu.add s ~cycle:0 1.0;
  (* Jump far ahead: the ring now covers windows 9 and 10 only. *)
  Pmu.add s ~cycle:80 1.0;
  Alcotest.(check (list int)) "old window evicted" [ 10 ]
    (List.map (fun (w : Pmu.window) -> w.Pmu.w_index) (Pmu.windows p "kpn.proc.a.firings"));
  (* Slightly out of order but within the ring: accepted. *)
  Pmu.add s ~cycle:74 1.0;
  Alcotest.(check (list int)) "in-ring backfill" [ 9; 10 ]
    (List.map (fun (w : Pmu.window) -> w.Pmu.w_index) (Pmu.windows p "kpn.proc.a.firings"));
  (* Older than the retained ring: dropped, counted. *)
  Pmu.add s ~cycle:3 1.0;
  (match Pmu.stat p "kpn.proc.a.firings" with
  | None -> Alcotest.fail "no stat"
  | Some st ->
      check_int "over-age sample dropped" 1 st.Pmu.st_dropped;
      (* A dropped sample contributes to nothing but the drop counter —
         totals and the ring stay mutually consistent. *)
      check_int "count excludes dropped" 3 st.Pmu.st_count;
      check_int "last cycle is the max seen" 80 st.Pmu.st_last_cycle);
  (* Negative cycles clamp to 0 — which is itself over-age here. *)
  Pmu.add s ~cycle:(-5) 1.0;
  match Pmu.stat p "kpn.proc.a.firings" with
  | None -> Alcotest.fail "no stat"
  | Some st -> check_int "negative cycle clamps then drops" 2 st.Pmu.st_dropped

let test_series_registry () =
  let p = Pmu.create () in
  let a = Pmu.series p "b.second" in
  let a' = Pmu.series p "b.second" in
  let _ = Pmu.series p "a.first" in
  check_bool "fetch-or-create returns the same series" true (a == a');
  Alcotest.(check (list string)) "insertion order, not alphabetical" [ "b.second"; "a.first" ]
    (Pmu.series_names p)

let test_json_roundtrip () =
  let p = Pmu.create ~window_cycles:32 ~depth:8 () in
  let s1 = Pmu.series p ~unit_:"stalls" "kpn.chan.c.stall_read" in
  let s2 = Pmu.series p ~unit_:"cycles" "softcore.scale.cycles" in
  List.iter (fun c -> Pmu.add s1 ~cycle:c 1.0) [ 0; 5; 40; 41; 100; 300 ];
  List.iter (fun (c, v) -> Pmu.add s2 ~cycle:c v) [ (10, 50000.0); (700, 49000.0) ];
  (* Force a drop so the dropped counter round-trips too. *)
  Pmu.add s2 ~cycle:1 1.0;
  let doc = Json.of_string (Json.to_string (Pmu.to_json p)) in
  match Pmu.of_json doc with
  | Error m -> Alcotest.failf "of_json failed: %s" m
  | Ok q ->
      check_int "window width survives" (Pmu.window_cycles p) (Pmu.window_cycles q);
      check_int "depth survives" (Pmu.depth p) (Pmu.depth q);
      Alcotest.(check (list string)) "series names survive" (Pmu.series_names p) (Pmu.series_names q);
      List.iter
        (fun name ->
          let st_p = Option.get (Pmu.stat p name) and st_q = Option.get (Pmu.stat q name) in
          check_float (name ^ " total") st_p.Pmu.st_total st_q.Pmu.st_total;
          check_int (name ^ " count") st_p.Pmu.st_count st_q.Pmu.st_count;
          check_int (name ^ " dropped") st_p.Pmu.st_dropped st_q.Pmu.st_dropped;
          check_int (name ^ " last cycle") st_p.Pmu.st_last_cycle st_q.Pmu.st_last_cycle;
          check_float (name ^ " rate") st_p.Pmu.st_rate st_q.Pmu.st_rate;
          check_float (name ^ " peak window") st_p.Pmu.st_peak_window st_q.Pmu.st_peak_window;
          Alcotest.(check string) (name ^ " unit") st_p.Pmu.st_unit st_q.Pmu.st_unit;
          let ws_p = Pmu.windows p name and ws_q = Pmu.windows q name in
          check_int (name ^ " window count") (List.length ws_p) (List.length ws_q);
          List.iter2
            (fun (a : Pmu.window) (b : Pmu.window) ->
              check_int "w_index" a.Pmu.w_index b.Pmu.w_index;
              check_float "w_sum" a.Pmu.w_sum b.Pmu.w_sum;
              check_int "w_count" a.Pmu.w_count b.Pmu.w_count;
              check_float "w_peak" a.Pmu.w_peak b.Pmu.w_peak)
            ws_p ws_q)
        (Pmu.series_names p)

let test_of_json_rejects_malformed () =
  (match Pmu.of_json (Json.String "nope") with
  | Ok _ -> Alcotest.fail "accepted a non-object"
  | Error _ -> ());
  match Pmu.of_json (Json.Obj [ ("window_cycles", Json.Int 0) ]) with
  | Ok _ -> Alcotest.fail "accepted a zero window width"
  | Error _ -> ()

let test_render_smoke () =
  let p = Pmu.create () in
  let s = Pmu.series p "kpn.proc.x.firings" in
  Pmu.add s ~cycle:0 1.0;
  let lines = Pmu.render p in
  check_bool "one line per series" true (List.length lines >= 1);
  check_bool "names its series" true
    (List.exists
       (fun l ->
         let re = "kpn.proc.x.firings" in
         let n = String.length re and m = String.length l in
         let rec go i = i + n <= m && (String.sub l i n = re || go (i + 1)) in
         go 0)
       lines)

let suite =
  [
    Alcotest.test_case "windowed accumulation and derived stats" `Quick test_windowing;
    Alcotest.test_case "ring eviction, over-age drops, clamping" `Quick test_ring_eviction_and_drops;
    Alcotest.test_case "series registry is fetch-or-create" `Quick test_series_registry;
    Alcotest.test_case "JSON export round-trips windows exactly" `Quick test_json_roundtrip;
    Alcotest.test_case "of_json rejects malformed documents" `Quick test_of_json_rejects_malformed;
    Alcotest.test_case "render smoke" `Quick test_render_smoke;
  ]
