open Pld_ir
open Pld_kpn

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let u32 = Dtype.word
let vint = Value.of_int u32

let test_channel_fifo_order () =
  let net = Network.create () in
  let c = Network.channel net ~name:"c" u32 in
  Network.push c (vint 1);
  Network.push c (vint 2);
  Network.push c (vint 3);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3 ] (List.map Value.to_int (Network.drain c))

let test_producer_consumer () =
  let net = Network.create () in
  let c = Network.channel net ~capacity:2 ~name:"c" u32 in
  let out = Network.channel net ~capacity:max_int ~name:"out" u32 in
  Network.add_process net ~name:"producer" (fun () ->
      for i = 1 to 100 do
        Network.write c (vint i)
      done);
  Network.add_process net ~name:"consumer" (fun () ->
      for _ = 1 to 100 do
        let v = Network.read c in
        Network.write out (Value.of_int u32 (Value.to_int v * 10))
      done);
  Network.run net;
  let result = List.map Value.to_int (Network.drain out) in
  check_int "all tokens" 100 (List.length result);
  Alcotest.(check (list int)) "head order" [ 10; 20; 30 ] (List.filteri (fun i _ -> i < 3) result)

let test_backpressure_bounded () =
  (* Capacity-1 channel: peak occupancy must never exceed 1 even with an
     eager producer. *)
  let net = Network.create () in
  let c = Network.channel net ~capacity:1 ~name:"c" u32 in
  Network.add_process net ~name:"producer" (fun () ->
      for i = 1 to 50 do
        Network.write c (vint i)
      done);
  Network.add_process net ~name:"consumer" (fun () ->
      for _ = 1 to 50 do
        ignore (Network.read c)
      done);
  Network.run net;
  let st = List.find (fun s -> s.Network.chan = "c") (Network.stats net) in
  check_int "peak occupancy" 1 st.Network.peak_occupancy;
  check_int "tokens counted" 50 st.Network.tokens;
  check_bool "some blocking happened" true (st.Network.block_events > 0)

let test_deadlock_detection () =
  (* Two processes each waiting for the other's first token. *)
  let net = Network.create () in
  let a = Network.channel net ~name:"a" u32 in
  let b = Network.channel net ~name:"b" u32 in
  Network.add_process net ~name:"p" (fun () ->
      let v = Network.read a in
      Network.write b v);
  Network.add_process net ~name:"q" (fun () ->
      let v = Network.read b in
      Network.write a v);
  match Network.run net with
  | () -> Alcotest.fail "expected deadlock"
  | exception Network.Deadlock blocked ->
      Alcotest.(check (list string)) "both blocked" [ "p"; "q" ] (List.sort compare blocked)

let test_partial_deadlock_blocked_set () =
  (* One process runs to completion; the other two wait on each other.
     The Deadlock payload must name exactly the two wedged processes —
     the watchdog's diagnosis depends on this set being precise. *)
  let net = Network.create () in
  let a = Network.channel net ~name:"a" u32 in
  let b = Network.channel net ~name:"b" u32 in
  let done_ = Network.channel net ~capacity:max_int ~name:"done" u32 in
  Network.add_process net ~name:"finisher" (fun () ->
      for i = 1 to 5 do
        Network.write done_ (vint i)
      done);
  Network.add_process net ~name:"p" (fun () ->
      let v = Network.read a in
      Network.write b v);
  Network.add_process net ~name:"q" (fun () ->
      let v = Network.read b in
      Network.write a v);
  match Network.run net with
  | () -> Alcotest.fail "expected deadlock"
  | exception Network.Deadlock blocked ->
      Alcotest.(check (list string)) "only the wedged pair" [ "p"; "q" ] (List.sort compare blocked)

let test_fuel_exhaustion () =
  let net = Network.create () in
  let c = Network.channel net ~capacity:1 ~name:"c" u32 in
  Network.add_process net ~name:"spin" (fun () ->
      (* Writes forever; consumer keeps draining, so no deadlock. *)
      while true do
        Network.write c (vint 1)
      done);
  Network.add_process net ~name:"sink" (fun () ->
      while true do
        ignore (Network.read c)
      done);
  match Network.run ~fuel:10_000 net with
  | () -> Alcotest.fail "expected fuel exhaustion"
  | exception Network.Out_of_fuel { steps; live } ->
      Alcotest.(check bool) "steps reported" true (steps >= 10_000);
      Alcotest.(check bool) "live processes named" true (live <> [])

let doubler n =
  Op.make ~name:"doubler" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" u32 ]
    [
      Op.For
        {
          var = "i";
          lo = 0;
          hi = n;
          pipeline = true;
          body = [ Op.Read (Op.LVar "x", "in"); Op.Write ("out", Expr.(var "x" + var "x")) ];
        };
    ]

let pipeline_graph n =
  Graph.make ~name:"pipe"
    ~channels:[ Graph.channel "cin"; Graph.channel ~depth:2 "cmid"; Graph.channel "cout" ]
    ~instances:
      [
        Graph.instance ~name:"d1" (doubler n) [ ("in", "cin"); ("out", "cmid") ];
        Graph.instance ~name:"d2" (doubler n) [ ("in", "cmid"); ("out", "cout") ];
      ]
    ~inputs:[ "cin" ] ~outputs:[ "cout" ]

let test_run_graph_pipeline () =
  let result = Run_graph.run_words (pipeline_graph 5) ~inputs:[ ("cin", [ 1; 2; 3; 4; 5 ]) ] in
  Alcotest.(check (list int)) "x4" [ 4; 8; 12; 16; 20 ] (List.assoc "cout" result)

let test_run_graph_stats () =
  let r = Run_graph.run (pipeline_graph 3) ~inputs:[ ("cin", List.map vint [ 1; 2; 3 ]) ] in
  let mid = List.find (fun s -> s.Network.chan = "cmid") r.channel_stats in
  check_int "mid tokens" 3 mid.Network.tokens;
  let d1 = List.assoc "d1" r.op_counters in
  check_int "d1 reads" 3 d1.Interp.reads

let test_run_graph_rounds () =
  let result =
    Run_graph.run (pipeline_graph 2) ~rounds:3
      ~inputs:[ ("cin", List.map vint [ 1; 2; 1; 2; 1; 2 ]) ]
  in
  check_int "three frames of two" 6 (List.length (List.assoc "cout" result.outputs))

let test_run_graph_underfed_deadlocks () =
  match Run_graph.run_words (pipeline_graph 5) ~inputs:[ ("cin", [ 1; 2 ]) ] with
  | _ -> Alcotest.fail "expected deadlock on starved input"
  | exception Network.Deadlock _ -> ()

(* Fork-join: unpack feeding two parallel branches joined by an adder —
   the optical-flow topology in miniature. *)
let fork_join_graph n =
  let splitter =
    Op.make ~name:"split" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "o1"; Op.word_port "o2" ]
      ~locals:[ Op.scalar "x" u32 ]
      [
        Op.For
          {
            var = "i";
            lo = 0;
            hi = n;
            pipeline = true;
            body =
              [
                Op.Read (Op.LVar "x", "in");
                Op.Write ("o1", Expr.var "x");
                Op.Write ("o2", Expr.var "x");
              ];
          };
      ]
  in
  let joiner =
    Op.make ~name:"join" ~inputs:[ Op.word_port "a"; Op.word_port "b" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" u32; Op.scalar "y" u32 ]
      [
        Op.For
          {
            var = "i";
            lo = 0;
            hi = n;
            pipeline = true;
            body =
              [
                Op.Read (Op.LVar "x", "a");
                Op.Read (Op.LVar "y", "b");
                Op.Write ("out", Expr.(var "x" + var "y"));
              ];
          };
      ]
  in
  Graph.make ~name:"forkjoin"
    ~channels:
      [
        Graph.channel "cin"; Graph.channel "c1"; Graph.channel "c2"; Graph.channel "c3";
        Graph.channel "cout";
      ]
    ~instances:
      [
        Graph.instance ~name:"s" splitter [ ("in", "cin"); ("o1", "c1"); ("o2", "c2") ];
        Graph.instance ~name:"d" (doubler n) [ ("in", "c2"); ("out", "c3") ];
        Graph.instance ~name:"j" joiner [ ("a", "c1"); ("b", "c3"); ("out", "cout") ];
      ]
    ~inputs:[ "cin" ] ~outputs:[ "cout" ]

let test_fork_join () =
  let result = Run_graph.run_words (fork_join_graph 4) ~inputs:[ ("cin", [ 1; 2; 3; 4 ]) ] in
  (* out = x + 2x = 3x *)
  Alcotest.(check (list int)) "3x" [ 3; 6; 9; 12 ] (List.assoc "cout" result)

(* Stall accounting is split by direction: a capacity-1 channel with an
   eager producer write-blocks; a consumer polling an empty channel
   read-blocks. The back-pressure attribution walk depends on the split
   being on the right side. *)
let test_stall_split_directions () =
  let net = Network.create () in
  let c = Network.channel net ~capacity:1 ~name:"c" u32 in
  Network.add_process net ~name:"producer" (fun () ->
      for i = 1 to 20 do
        Network.write c (vint i)
      done);
  Network.add_process net ~name:"consumer" (fun () ->
      for _ = 1 to 20 do
        ignore (Network.read c)
      done);
  Network.run net;
  let st = List.find (fun s -> s.Network.chan = "c") (Network.stats net) in
  check_bool "writes blocked" true (st.Network.blocked_writes > 0);
  check_int "split sums to block_events" st.Network.block_events
    (st.Network.blocked_reads + st.Network.blocked_writes);
  (* Reverse shape: consumer starts first against an empty channel. *)
  let net2 = Network.create () in
  let c2 = Network.channel net2 ~capacity:64 ~name:"c2" u32 in
  Network.add_process net2 ~name:"consumer" (fun () ->
      for _ = 1 to 5 do
        ignore (Network.read c2)
      done);
  Network.add_process net2 ~name:"producer" (fun () ->
      for i = 1 to 5 do
        Network.write c2 (vint i)
      done);
  Network.run net2;
  let st2 = List.find (fun s -> s.Network.chan = "c2") (Network.stats net2) in
  check_bool "reads blocked" true (st2.Network.blocked_reads > 0);
  check_int "no write blocks under capacity" 0 st2.Network.blocked_writes

(* Satellite: the 256-firing-span budget used to clip silently. Drive a
   process past it and check every dropped span lands on the
   [kpn.spans_dropped] counter. *)
let test_firing_span_budget_counted () =
  let tele = Pld_telemetry.Telemetry.create () in
  let net = Network.create ~telemetry:tele () in
  let c = Network.channel net ~capacity:1 ~name:"c" u32 in
  let n = 400 in
  Network.add_process net ~name:"producer" (fun () ->
      for i = 1 to n do
        Network.write c (vint i)
      done);
  Network.add_process net ~name:"consumer" (fun () ->
      for _ = 1 to n do
        ignore (Network.read c)
      done);
  Network.run net;
  let dropped = Pld_telemetry.Telemetry.counter_value tele "kpn.spans_dropped" in
  check_bool "overflow spans counted, not lost" true (dropped > 0)

let test_pmu_series_from_run () =
  let pmu = Pld_telemetry.Pmu.create () in
  let r =
    Run_graph.run ~pmu (pipeline_graph 3) ~inputs:[ ("cin", List.map vint [ 1; 2; 3 ]) ]
  in
  Alcotest.(check (list int)) "outputs unchanged under profiling" [ 4; 8; 12 ]
    (List.map Value.to_int (List.assoc "cout" r.Run_graph.outputs));
  let names = Pld_telemetry.Pmu.series_names pmu in
  let has n = List.mem n names in
  check_bool "per-process firing series" true (has "kpn.proc.d1.firings" && has "kpn.proc.d2.firings");
  check_bool "per-channel occupancy series" true (has "kpn.chan.cmid.occupancy");
  check_bool "stall series registered" true (has "kpn.chan.cmid.stall_read");
  match Pld_telemetry.Pmu.stat pmu "kpn.proc.d1.firings" with
  | None -> Alcotest.fail "no firing stat"
  | Some st -> check_bool "d1 resumed at least once" true (st.Pld_telemetry.Pmu.st_count >= 1)

let prop_pipeline_any_depth =
  QCheck.Test.make ~name:"pipeline result independent of channel depth" ~count:30
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.int_range 1 16) (int_bound 10000)))
    (fun (depth, xs) ->
      let n = List.length xs in
      let g =
        Graph.make ~name:"pipe"
          ~channels:[ Graph.channel "cin"; Graph.channel ~depth "cmid"; Graph.channel "cout" ]
          ~instances:
            [
              Graph.instance ~name:"d1" (doubler n) [ ("in", "cin"); ("out", "cmid") ];
              Graph.instance ~name:"d2" (doubler n) [ ("in", "cmid"); ("out", "cout") ];
            ]
          ~inputs:[ "cin" ] ~outputs:[ "cout" ]
      in
      let result = Run_graph.run_words g ~inputs:[ ("cin", xs) ] in
      List.assoc "cout" result = List.map (fun x -> 4 * x) xs)

let suite =
  [
    ("channel fifo order", `Quick, test_channel_fifo_order);
    ("producer/consumer", `Quick, test_producer_consumer);
    ("backpressure bounds occupancy", `Quick, test_backpressure_bounded);
    ("deadlock detection", `Quick, test_deadlock_detection);
    ("partial deadlock names the wedged pair", `Quick, test_partial_deadlock_blocked_set);
    ("fuel exhaustion", `Quick, test_fuel_exhaustion);
    ("run_graph pipeline", `Quick, test_run_graph_pipeline);
    ("run_graph stats", `Quick, test_run_graph_stats);
    ("run_graph multiple rounds", `Quick, test_run_graph_rounds);
    ("run_graph starved input deadlocks", `Quick, test_run_graph_underfed_deadlocks);
    ("fork-join graph", `Quick, test_fork_join);
    ("stall accounting splits read/write", `Quick, test_stall_split_directions);
    ("firing-span budget overflow is counted", `Quick, test_firing_span_budget_counted);
    ("profiled run records PMU series", `Quick, test_pmu_series_from_run);
    QCheck_alcotest.to_alcotest prop_pipeline_any_depth;
  ]
