(* Fault injection and fault-tolerant relinking: the robustness layer.

   The suite is seed-parametric: PLD_FAULT_SEED (default 11) seeds
   every rate-based injector, and CI sweeps several seeds — the
   recovery machinery must work under any fault trace, and the same
   seed must reproduce the same trace. *)

open Pld_ir
open Pld_core
module Fault = Pld_faults.Fault
module Bft = Pld_noc.Bft
module Traffic = Pld_noc.Traffic
module Card = Pld_platform.Card
module Fp = Pld_fabric.Floorplan

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0
let u32 = Dtype.word
let fp = Fp.u50 ()
let hw = Graph.Hw { page_hint = None }

let seed =
  match Sys.getenv_opt "PLD_FAULT_SEED" with
  | Some s -> int_of_string s
  | None -> 11

(* Every injector draws from a sub-seed derived from the root seed and
   a per-site tag (lib/proptest's seeded-case discipline), so the fault
   streams of different tests are independent of each other yet all
   reproduce from PLD_FAULT_SEED alone. *)
module Seeded = Pld_proptest.Seeded

let injector ~tag spec = Fault.create ~seed:(Seeded.derive ~seed tag) spec

(* Same pipeline builder as test_pld. *)
let doubler ?(name = "doubler") n =
  Op.make ~name ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" u32 ]
    [
      Op.For
        {
          var = "i";
          lo = 0;
          hi = n;
          pipeline = true;
          body = [ Op.Read (Op.LVar "x", "in"); Op.Write ("out", Expr.(var "x" + var "x")) ];
        };
    ]

let pipeline ?(target = hw) ?(n = 8) stages =
  let ops = List.init stages (fun i -> doubler ~name:(Printf.sprintf "stage%d" i) n) in
  let chan i = if i = 0 then "cin" else if i = stages then "cout" else Printf.sprintf "c%d" i in
  Graph.make ~name:"pipe"
    ~channels:(List.init (stages + 1) (fun i -> Graph.channel (chan i)))
    ~instances:
      (List.mapi
         (fun i op -> Graph.instance ~target ~name:op.Op.name op [ ("in", chan i); ("out", chan (i + 1)) ])
         ops)
    ~inputs:[ "cin" ] ~outputs:[ "cout" ]

let inputs n = [ ("cin", List.init n (fun i -> Value.of_int u32 (i + 1))) ]
let out_ints r = List.map Value.to_int (List.assoc "cout" r.Runner.outputs)

(* ---------- spec parsing ---------- *)

let test_spec_parse_roundtrip () =
  let s = "page=3,drop=0.01,corrupt=0.005,load=5@2,hang=fft0@100,trap=acc@200,job=op:fft0@1" in
  match Fault.parse s with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok spec ->
      Alcotest.(check (list int)) "pages" [ 3 ] spec.Fault.defective_pages;
      Alcotest.(check (float 1e-9)) "drop" 0.01 spec.Fault.drop_rate;
      Alcotest.(check (list (pair int int))) "loads" [ (5, 2) ] spec.Fault.flaky_loads;
      Alcotest.(check (list (pair string int))) "hangs" [ ("fft0", 100) ] spec.Fault.hangs;
      Alcotest.(check (list (pair string int))) "traps" [ ("acc", 200) ] spec.Fault.traps;
      Alcotest.(check (list (pair string int))) "jobs" [ ("op:fft0", 1) ] spec.Fault.flaky_jobs;
      (* to_string renders back to an equivalent spec *)
      check_bool "roundtrip" true (Fault.parse (Fault.to_string spec) = Ok spec)

let test_spec_parse_errors () =
  let bad s = match Fault.parse s with Ok _ -> Alcotest.failf "accepted %S" s | Error _ -> () in
  bad "nonsense";
  bad "drop=1.5";
  bad "drop=-0.1";
  bad "page=abc";
  bad "hang=fft0";
  bad "hang=@5";
  bad "frobnicate=1"

(* ---------- NoC under link faults ---------- *)

let lossy_links = [ { Traffic.src_leaf = 1; src_stream = 0; dst_leaf = 9; dst_stream = 0; tokens = 400 };
                    { Traffic.src_leaf = 5; src_stream = 0; dst_leaf = 2; dst_stream = 0; tokens = 400 } ]

let total_tokens = List.fold_left (fun acc (l : Traffic.link) -> acc + l.Traffic.tokens) 0 lossy_links

let test_replay_lossy_links () =
  let faults = injector ~tag:"replay-lossy" { Fault.empty with Fault.drop_rate = 0.05 } in
  let net = Bft.create ~faults () in
  let r = Traffic.replay net lossy_links in
  check_int "every token delivered" total_tokens r.Traffic.delivered;
  check_bool "some flits dropped" true (r.Traffic.dropped > 0);
  check_bool "dropped flits retransmitted" true (r.Traffic.retransmitted >= r.Traffic.dropped);
  check_bool "per-link counters populated" true (Bft.link_faults net <> [])

let test_replay_corrupt_links () =
  let faults = injector ~tag:"replay-corrupt" { Fault.empty with Fault.corrupt_rate = 0.05 } in
  let net = Bft.create ~faults () in
  let r = Traffic.replay net lossy_links in
  check_int "every token delivered" total_tokens r.Traffic.delivered;
  check_bool "some flits corrupted" true (r.Traffic.corrupted > 0);
  check_bool "corrupted flits retransmitted" true (r.Traffic.retransmitted > 0)

let test_replay_deterministic () =
  let run () =
    let faults = injector ~tag:"replay-det" { Fault.empty with Fault.drop_rate = 0.05; Fault.corrupt_rate = 0.02 } in
    Traffic.replay (Bft.create ~faults ()) lossy_links
  in
  let r1 = run () and r2 = run () in
  check_bool "same seed, same replay (cycles + all counters)" true (r1 = r2)

let test_crc_catches_corruption () =
  (* A flit whose payload is flipped in flight must fail the CRC check:
     deliver a corrupted flit by hand and watch it land in the lost
     queue instead of the eject buffer. *)
  let f = Bft.data_flit ~src_leaf:1 ~dst_leaf:5 ~dst_stream:0 42l in
  check_int "crc matches as framed" (Bft.flit_crc 42l) f.Bft.crc;
  f.Bft.payload <- 43l;
  check_bool "corrupted payload no longer matches" true (Bft.flit_crc f.Bft.payload <> f.Bft.crc)

let test_config_survives_loss () =
  let faults = injector ~tag:"config-loss" { Fault.empty with Fault.drop_rate = 0.1 } in
  let net = Bft.create ~faults () in
  let links =
    [ { Traffic.src_leaf = 3; src_stream = 0; dst_leaf = 7; dst_stream = 1; tokens = 0 };
      { Traffic.src_leaf = 8; src_stream = 1; dst_leaf = 4; dst_stream = 0; tokens = 0 } ]
  in
  let cycles = Traffic.config_cycles net links in
  check_bool "config converged" true (cycles > 0);
  List.iter
    (fun (l : Traffic.link) ->
      Alcotest.(check (option (pair int int)))
        (Printf.sprintf "route leaf %d stream %d" l.Traffic.src_leaf l.Traffic.src_stream)
        (Some (l.Traffic.dst_leaf, l.Traffic.dst_stream))
        (Bft.lookup_route net ~leaf:l.Traffic.src_leaf ~stream:l.Traffic.src_stream))
    links

(* ---------- card: page-load faults + CRC readback ---------- *)

let first_hw_xclbin (app : Build.app) =
  List.filter_map
    (fun (_, c) -> match c with Build.Hw_page h -> Some h.Flow.xclbin | Build.Soft_page _ -> None)
    app.Build.operators
  |> List.hd

let test_card_defective_page_fails_readback () =
  let app = Build.compile fp (pipeline 1) ~level:Build.O1 in
  let page = List.assoc "stage0" app.Build.assignment in
  let faults = injector ~tag:"card-defective" { Fault.empty with Fault.defective_pages = [ page ] } in
  let card = Card.create ~faults () in
  ignore (Card.load card (Flow.overlay_xclbin fp));
  let xb = first_hw_xclbin app in
  ignore (Card.load card xb);
  check_bool "defective page never verifies" false (Card.readback_ok card xb);
  ignore (Card.load card xb);
  check_bool "still garbled on retry" false (Card.readback_ok card xb)

let test_card_flaky_page_recovers () =
  let app = Build.compile fp (pipeline 1) ~level:Build.O1 in
  let page = List.assoc "stage0" app.Build.assignment in
  let faults = injector ~tag:"card-flaky" { Fault.empty with Fault.flaky_loads = [ (page, 2) ] } in
  let card = Card.create ~faults () in
  ignore (Card.load card (Flow.overlay_xclbin fp));
  let xb = first_hw_xclbin app in
  ignore (Card.load card xb);
  check_bool "first load garbled" false (Card.readback_ok card xb);
  ignore (Card.load card xb);
  check_bool "second load garbled" false (Card.readback_ok card xb);
  ignore (Card.load card xb);
  check_bool "third load verifies" true (Card.readback_ok card xb)

let test_card_clean_page_verifies () =
  let app = Build.compile fp (pipeline 1) ~level:Build.O1 in
  let card = Card.create () in
  ignore (Card.load card (Flow.overlay_xclbin fp));
  let xb = first_hw_xclbin app in
  ignore (Card.load card xb);
  check_bool "clean load verifies" true (Card.readback_ok card xb)

(* ---------- card: every Protocol_error path ---------- *)

let expect_protocol_error name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Protocol_error" name
  | exception Card.Protocol_error _ -> ()

let test_protocol_page_before_overlay () =
  let app = Build.compile fp (pipeline 1) ~level:Build.O1 in
  let card = Card.create () in
  expect_protocol_error "page before overlay" (fun () -> Card.load card (first_hw_xclbin app))

let test_protocol_softcore_before_overlay () =
  let app = Build.compile fp (pipeline 1) ~level:Build.O0 in
  let card = Card.create () in
  let xb =
    match List.assoc "stage0" app.Build.operators with
    | Build.Soft_page s -> s.Flow.xclbin0
    | Build.Hw_page _ -> Alcotest.fail "expected softcore"
  in
  expect_protocol_error "softcore before overlay" (fun () -> Card.load card xb)

let test_protocol_page_during_kernel () =
  let paged = Build.compile fp (pipeline 1) ~level:Build.O1 in
  let mono = Build.compile fp (pipeline 1) ~level:Build.O3 in
  let card = Card.create () in
  ignore (Card.load card (Build.monolithic_exn mono).Flow.xclbin3);
  expect_protocol_error "page during monolithic kernel" (fun () ->
      Card.load card (first_hw_xclbin paged))

let test_protocol_nonexistent_page () =
  let app = Build.compile fp (pipeline 1) ~level:Build.O1 in
  let h =
    match List.assoc "stage0" app.Build.operators with
    | Build.Hw_page h -> h
    | Build.Soft_page _ -> Alcotest.fail "expected hw page"
  in
  let bogus =
    Pld_platform.Xclbin.page_bits ~page:99 ~operator:"ghost" ~fmax_mhz:200.0
      h.Flow.pnr.Pld_pnr.Pnr.bitstream
  in
  let card = Card.create () in
  ignore (Card.load card (Flow.overlay_xclbin fp));
  expect_protocol_error "nonexistent page" (fun () -> Card.load card bogus)

(* ---------- loader: the recovery ladder ---------- *)

(* Strip the measured-float fields so traces can be compared across runs. *)
let recovery_shape =
  List.map (function
    | Loader.Load_retry { inst; page; attempt; _ } ->
        Printf.sprintf "retry %s page%d attempt%d" inst page attempt
    | Loader.Spare_relink { inst; from_page; to_page; _ } ->
        Printf.sprintf "relink %s %d->%d" inst from_page to_page
    | Loader.Softcore_fallback { inst; from_page; to_page; _ } ->
        Printf.sprintf "soften %s %d->%d" inst from_page to_page)

let test_deploy_spare_relink () =
  let g = pipeline 3 in
  let app = Build.compile fp g ~level:Build.O1 in
  let victim_inst, victim_page = List.hd app.Build.assignment in
  (* Fault-free reference first. *)
  let clean = Loader.deploy (Card.create ()) app in
  let reference = Runner.run clean.Loader.app ~inputs:(inputs 8) in
  (* Now the same deploy against a card whose page is defective. *)
  let faults = injector ~tag:"deploy-relink" { Fault.empty with Fault.defective_pages = [ victim_page ] } in
  let card = Card.create ~faults () in
  let dr = Loader.deploy ~faults card app in
  check_bool "recovered without degradation" false dr.Loader.degraded;
  let relinks =
    List.filter_map
      (function Loader.Spare_relink { inst; from_page; to_page; _ } -> Some (inst, from_page, to_page) | _ -> None)
      dr.Loader.recovery
  in
  (match relinks with
  | [ (inst, from_page, to_page) ] ->
      check_string "victim relinked" victim_inst inst;
      check_int "away from the defective page" victim_page from_page;
      check_bool "onto a different page" true (to_page <> victim_page);
      check_int "assignment updated" to_page
        (List.assoc victim_inst dr.Loader.app.Build.assignment)
  | l -> Alcotest.failf "expected exactly one spare relink, got %d" (List.length l));
  check_bool "retries preceded the relink" true
    (List.exists (function Loader.Load_retry _ -> true | _ -> false) dr.Loader.recovery);
  check_bool "relink cost on the deploy clock" true (dr.Loader.seconds > clean.Loader.seconds);
  (* The recovered deployment computes bit-identical outputs. *)
  let r = Runner.run dr.Loader.app ~inputs:(inputs 8) in
  Alcotest.(check (list int)) "bit-identical outputs" (out_ints reference) (out_ints r)

let test_deploy_recovery_deterministic () =
  let app = Build.compile fp (pipeline 3) ~level:Build.O1 in
  let _, victim_page = List.hd app.Build.assignment in
  let deploy_once () =
    let faults = injector ~tag:"deploy-det" { Fault.empty with Fault.defective_pages = [ victim_page ] } in
    let dr = Loader.deploy ~faults (Card.create ~faults ()) app in
    recovery_shape dr.Loader.recovery
  in
  Alcotest.(check (list string))
    "same seed, same recovery trace" (deploy_once ()) (deploy_once ())

let test_deploy_flaky_load_retries_only () =
  let app = Build.compile fp (pipeline 2) ~level:Build.O1 in
  let victim_inst, victim_page = List.hd app.Build.assignment in
  let faults = injector ~tag:"deploy-flaky" { Fault.empty with Fault.flaky_loads = [ (victim_page, 2) ] } in
  let dr = Loader.deploy ~faults (Card.create ~faults ()) app in
  Alcotest.(check (list string))
    "two retries, no relink"
    [ Printf.sprintf "retry %s page%d attempt1" victim_inst victim_page;
      Printf.sprintf "retry %s page%d attempt2" victim_inst victim_page ]
    (recovery_shape dr.Loader.recovery);
  check_int "assignment unchanged" victim_page (List.assoc victim_inst dr.Loader.app.Build.assignment)

let test_deploy_exhausted_raises () =
  (* Every page defective: the ladder must run out and say so. *)
  let app = Build.compile fp (pipeline 1) ~level:Build.O1 in
  let all_pages = List.map (fun (p : Fp.page) -> p.Fp.page_id) fp.Fp.pages in
  let faults = injector ~tag:"deploy-exhausted" { Fault.empty with Fault.defective_pages = all_pages } in
  match Loader.deploy ~faults ~max_retries:0 (Card.create ~faults ()) app with
  | _ -> Alcotest.fail "expected Deploy_failed"
  | exception Loader.Deploy_failed msg ->
      check_bool "message names the defect map" true
        (contains ~sub:"defect map" msg)

(* ---------- build engine: retry and quarantine ---------- *)

let test_build_job_retry () =
  let faults = injector ~tag:"build-retry" { Fault.empty with Fault.flaky_jobs = [ ("op:stage0", 1) ] } in
  let app = Build.compile ~faults ~max_retries:2 fp (pipeline 2) ~level:Build.O1 in
  check_bool "nothing quarantined" true (app.Build.report.Build.quarantined = []);
  check_bool "no fallbacks" true (app.Build.report.Build.fallbacks = []);
  let retries =
    List.filter (function Pld_engine.Event.Job_retry _ -> true | _ -> false)
      app.Build.report.Build.events
  in
  check_int "one retry in the trace" 1 (List.length retries);
  (* The retried build is a normal build: all pages hardware. *)
  List.iter
    (fun (_, c) ->
      match c with Build.Hw_page _ -> () | Build.Soft_page _ -> Alcotest.fail "unexpected softcore")
    app.Build.operators

let test_build_quarantine_softcore_fallback () =
  (* stage1's page compile always fails: the build must quarantine it
     and ship the -O0 softcore build for that one operator instead. *)
  let faults = injector ~tag:"build-quarantine" { Fault.empty with Fault.flaky_jobs = [ ("op:stage1", 1000) ] } in
  let app = Build.compile ~faults ~max_retries:1 fp (pipeline 3) ~level:Build.O1 in
  Alcotest.(check (list string)) "fallback recorded" [ "stage1" ] app.Build.report.Build.fallbacks;
  check_bool "quarantine recorded" true
    (List.mem_assoc "op:stage1" app.Build.report.Build.quarantined);
  (match List.assoc "stage1" app.Build.operators with
  | Build.Soft_page _ -> ()
  | Build.Hw_page _ -> Alcotest.fail "stage1 should have fallen back to a softcore");
  let quarantined_events =
    List.filter (function Pld_engine.Event.Job_quarantined _ -> true | _ -> false)
      app.Build.report.Build.events
  in
  check_bool "Job_quarantined in trace" true (quarantined_events <> []);
  (* Degraded but correct: the mixed app still computes the answer. *)
  let r = Runner.run app ~inputs:(inputs 8) in
  Alcotest.(check (list int)) "outputs correct via fallback"
    (List.init 8 (fun i -> 8 * (i + 1)))
    (out_ints r)

let test_build_assign_failure_is_build_error () =
  let faults = injector ~tag:"build-assign" { Fault.empty with Fault.flaky_jobs = [ ("assign", 1000) ] } in
  match Build.compile ~faults ~max_retries:0 fp (pipeline 2) ~level:Build.O1 with
  | _ -> Alcotest.fail "expected Build_error"
  | exception Build.Build_error msg ->
      check_bool "names the assignment" true (contains ~sub:"assignment" msg)

let test_assign_defect_map () =
  let demand = { Pld_netlist.Netlist.luts = 100; ffs = 100; brams = 0; dsps = 0 } in
  let a = Assign.assign fp [ ("op", hw, demand) ] in
  let first_choice = List.assoc "op" a in
  let a' = Assign.assign ~defective:[ first_choice ] fp [ ("op", hw, demand) ] in
  check_bool "defective page avoided" true (List.assoc "op" a' <> first_choice);
  match Assign.assign ~defective:[ 13 ] fp [ ("op", Graph.Hw { page_hint = Some 13 }, demand) ] with
  | _ -> Alcotest.fail "expected No_fit on hint into defect map"
  | exception Assign.No_fit msg ->
      check_bool "says defect map" true (contains ~sub:"defect map" msg)

(* ---------- runner: watchdog and trap diagnosis ---------- *)

(* Control-fault injection is checked on the softcore's cycle clock
   each time its process is scheduled, so the workload must be long
   enough that the victim stalls (and re-enters the scheduler) after
   crossing the threshold — tiny frames finish inside one quantum. *)
let test_watchdog_hang_diagnosed () =
  let g = pipeline ~target:Graph.Riscv ~n:2000 3 in
  let app = Build.compile fp g ~level:Build.O0 in
  let faults = injector ~tag:"watchdog-hang" { Fault.empty with Fault.hangs = [ ("stage1", 1000) ] } in
  match Runner.run ~faults app ~inputs:(inputs 2000) with
  | _ -> Alcotest.fail "expected Stalled"
  | exception Runner.Stalled d ->
      check_bool "hung instance in blocked set" true (List.mem "stage1" d.Runner.blocked);
      check_bool "channels reported" true (d.Runner.channels <> []);
      check_bool "diagnosis renders" true
        (contains ~sub:"stage1" (Runner.describe_stall d))

let test_trap_carries_machine_state () =
  let g = pipeline ~target:Graph.Riscv ~n:2000 2 in
  let app = Build.compile fp g ~level:Build.O0 in
  let faults = injector ~tag:"trap-state" { Fault.empty with Fault.traps = [ ("stage1", 1000) ] } in
  match Runner.run ~faults app ~inputs:(inputs 2000) with
  | _ -> Alcotest.fail "expected Softcore_trap"
  | exception Runner.Softcore_trap (inst, tr) ->
      check_string "instance named" "stage1" inst;
      check_bool "cycle count captured" true (tr.Pld_riscv.Cpu.trap_cycle >= 1);
      check_bool "message present" true (tr.Pld_riscv.Cpu.trap_msg <> "")

let test_cpu_trap_record_fields () =
  (* An illegal instruction must carry pc, the word, and the cycle. *)
  let cpu = Pld_riscv.Cpu.create () in
  Pld_riscv.Cpu.load_words cpu ~addr:0 [| 0xFFFF_FFFFl |];
  match Pld_riscv.Cpu.run cpu with
  | Pld_riscv.Cpu.Trapped tr ->
      check_int "pc at fault" 0 tr.Pld_riscv.Cpu.trap_pc;
      check_bool "instruction word captured" true (tr.Pld_riscv.Cpu.trap_instr = 0xFFFF_FFFFl);
      check_bool "describe mentions pc" true
        (contains ~sub:"pc=0x" (Pld_riscv.Cpu.describe_trap tr))
  | _ -> Alcotest.fail "expected trap"

(* ---------- seeded sweep: random graphs under injected faults ---------- *)

module P = Pld_proptest

(* The generator's seeded-case combinator drives the recovery machinery
   over arbitrary topologies, not just the hand-written pipeline: each
   case is rebuilt at -O1 under a flaky page-compile job, a defective
   page and lossy NoC links, and the recovered outputs must be
   bit-identical to the fault-free reference. *)
let test_random_graph_fault_sweep () =
  P.Seeded.cases ~seed ~count:4 (fun index rng ->
      let g, inputs = P.Gen.graph rng ~name:(Printf.sprintf "sweep%d" index) in
      let expected = (P.Oracle.reference g ~inputs).Pld_kpn.Run_graph.outputs in
      match
        P.Fuzz.fault_check ~case_seed:(P.Seeded.case_seed ~seed index) g ~inputs expected
      with
      | [] -> ()
      | fs ->
          Alcotest.failf "case %d under faults: %s" index
            (String.concat "; " (List.map P.Oracle.failure_to_string fs)))

let test_sub_seeds_independent () =
  let a = Seeded.sub_seeds ~seed ~count:8 "stream-a" in
  let b = Seeded.sub_seeds ~seed ~count:8 "stream-b" in
  Alcotest.(check (list int)) "same tag reproduces" a (Seeded.sub_seeds ~seed ~count:8 "stream-a");
  check_bool "different tags, different streams" true (a <> b);
  let distinct l = List.sort_uniq compare l in
  check_int "no collisions within a stream" (List.length a) (List.length (distinct a))

(* ---------- structure: leaf derivation + descriptive errors ---------- *)

let test_noc_leaves_derived () =
  check_int "u50: DMA + max page id" 23 (Flow.noc_leaves fp);
  let net = Bft.create ~leaves:(Flow.noc_leaves fp) () in
  (* Same 4-ary rounding as the old hard-coded 32 — no topology change. *)
  check_int "rounds to the same tree" (Bft.leaf_count (Bft.create ~leaves:32 ())) (Bft.leaf_count net)

let test_relay_unknown_leaf () =
  let links = [ { Traffic.src_leaf = 99; src_stream = 0; dst_leaf = 1; dst_stream = 0; tokens = 4 } ] in
  match Pld_noc.Relay.replay fp links with
  | _ -> Alcotest.fail "expected Unknown_leaf"
  | exception Pld_noc.Relay.Unknown_leaf msg ->
      check_bool "names the bad leaf" true (contains ~sub:"99" msg)

let test_monolithic_exn_build_error () =
  let app = Build.compile fp (pipeline 1) ~level:Build.O1 in
  (match Build.monolithic_exn app with
  | _ -> Alcotest.fail "expected Build_error"
  | exception Build.Build_error msg ->
      check_bool "names the level" true (contains ~sub:"-O1" msg));
  match Flow.find_instance_exn ~context:"test" (pipeline 1) "ghost" with
  | _ -> Alcotest.fail "expected Build_error"
  | exception Build.Build_error msg ->
      check_bool "lists known instances" true (contains ~sub:"stage0" msg)

let suite =
  [
    ("fault spec parse roundtrip", `Quick, test_spec_parse_roundtrip);
    ("fault spec parse errors", `Quick, test_spec_parse_errors);
    ("replay survives dropped flits", `Quick, test_replay_lossy_links);
    ("replay survives corrupted flits", `Quick, test_replay_corrupt_links);
    ("replay deterministic per seed", `Quick, test_replay_deterministic);
    ("crc catches corruption", `Quick, test_crc_catches_corruption);
    ("config packets survive loss", `Quick, test_config_survives_loss);
    ("defective page fails readback", `Quick, test_card_defective_page_fails_readback);
    ("flaky page recovers after retries", `Quick, test_card_flaky_page_recovers);
    ("clean page verifies", `Quick, test_card_clean_page_verifies);
    ("protocol: page before overlay", `Quick, test_protocol_page_before_overlay);
    ("protocol: softcore before overlay", `Quick, test_protocol_softcore_before_overlay);
    ("protocol: page during kernel", `Quick, test_protocol_page_during_kernel);
    ("protocol: nonexistent page", `Quick, test_protocol_nonexistent_page);
    ("deploy relinks onto a spare page", `Quick, test_deploy_spare_relink);
    ("deploy recovery deterministic per seed", `Quick, test_deploy_recovery_deterministic);
    ("deploy flaky load needs only retries", `Quick, test_deploy_flaky_load_retries_only);
    ("deploy raises when ladder exhausted", `Quick, test_deploy_exhausted_raises);
    ("build retries flaky jobs", `Quick, test_build_job_retry);
    ("build quarantines to softcore fallback", `Quick, test_build_quarantine_softcore_fallback);
    ("build assign failure is Build_error", `Quick, test_build_assign_failure_is_build_error);
    ("assign honors defect map", `Quick, test_assign_defect_map);
    ("watchdog diagnoses hung operator", `Quick, test_watchdog_hang_diagnosed);
    ("trap carries machine state", `Quick, test_trap_carries_machine_state);
    ("cpu trap record fields", `Quick, test_cpu_trap_record_fields);
    ("random graphs survive fault sweep", `Quick, test_random_graph_fault_sweep);
    ("derived sub-seeds independent", `Quick, test_sub_seeds_independent);
    ("noc leaves derived from floorplan", `Quick, test_noc_leaves_derived);
    ("relay rejects unknown leaf", `Quick, test_relay_unknown_leaf);
    ("monolithic_exn raises Build_error", `Quick, test_monolithic_exn_build_error);
  ]
