(* The insight layer: span profiles, critical-path extraction and the
   regression sentinel. Synthetic spans pin the math down exactly; a
   real [Build.compile] against a private sink checks the measured
   critical path and the analytic makespan model agree where they
   must (fully cached) and diverge where they should (cold). *)

module T = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json
module Profile = Pld_insight.Profile
module Trace = Pld_insight.Trace
module Critical_path = Pld_insight.Critical_path
module Baseline = Pld_insight.Baseline
module Sentinel = Pld_insight.Sentinel
module B = Pld_core.Build
module Fp = Pld_fabric.Floorplan
module Suite = Pld_rosetta.Suite

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))
let check_strings = Alcotest.(check (list string))

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let span ?(cat = "t") ?(track = 0) ?(clock = T.Wall) ?(attrs = []) ?dur name start =
  {
    T.name;
    cat;
    track;
    clock;
    start_us = start;
    dur_us = dur;
    attrs;
  }

(* root [0,100] > a [10,50] > leaf [15,25]; b [60,90] is root's second
   child; a second track holds an unrelated span. *)
let synthetic_spans =
  [
    span "root" 0.0 ~dur:100.0;
    span "a" 10.0 ~dur:40.0;
    span "leaf" 15.0 ~dur:10.0;
    span "b" 60.0 ~dur:30.0;
    span "other" 0.0 ~dur:20.0 ~track:1;
    span "mark" 5.0 (* instant: ignored by the profiler *);
  ]

let test_forest_nesting () =
  let forest = Profile.forest synthetic_spans in
  check_int "two timelines, one root each" 2 (List.length forest);
  let root = List.hd forest in
  check_string "outermost span" "root" root.Profile.span.T.name;
  check_strings "root's children in start order"
    [ "a"; "b" ]
    (List.map (fun n -> n.Profile.span.T.name) root.Profile.children);
  let a = List.hd root.Profile.children in
  check_strings "grandchild under a" [ "leaf" ]
    (List.map (fun n -> n.Profile.span.T.name) a.Profile.children);
  let other = List.nth forest 1 in
  check_string "second track is its own timeline" "other" other.Profile.span.T.name;
  check_int "no children on the second track" 0 (List.length other.Profile.children)

let row name rows =
  match List.find_opt (fun r -> r.Profile.name = name) rows with
  | Some r -> r
  | None -> Alcotest.failf "no row for %s" name

let test_flat_self_time () =
  let rows = Profile.flat synthetic_spans in
  (* Durations are microseconds; rows report seconds. *)
  let r = row "root" rows in
  check_float "root total" 1e-4 r.Profile.total_s;
  check_float "root self = total - a - b" 3e-5 r.Profile.self_s;
  let a = row "a" rows in
  check_float "a self = total - leaf" 3e-5 a.Profile.self_s;
  check_float "leaf keeps its full duration" 1e-5 (row "leaf" rows).Profile.self_s;
  let sum = List.fold_left (fun acc r -> acc +. r.Profile.self_s) 0.0 rows in
  let total_span = 1.2e-4 (* 100us on track 0 + 20us on track 1 *) in
  check_float "selves sum to the timelines' span" total_span sum

let test_flat_separates_clocks () =
  let spans =
    [ span "x" 0.0 ~dur:10.0 ~clock:T.Wall; span "x" 0.0 ~dur:50.0 ~clock:T.Modeled ~track:9 ]
  in
  let rows = Profile.flat spans in
  check_int "same name, two clocks, two rows" 2 (List.length rows);
  List.iter
    (fun r ->
      match r.Profile.clock with
      | T.Wall -> check_float "wall row" 1e-5 r.Profile.total_s
      | T.Modeled -> check_float "modeled row" 5e-5 r.Profile.total_s)
    rows

let test_renderers_smoke () =
  let hot = Profile.render_hot (Profile.flat synthetic_spans) in
  check_bool "hot list names the root" true
    (String.length hot > 0 && contains ~sub:"root" hot);
  let tree = Profile.render_tree ~min_s:0.0 synthetic_spans in
  check_bool "tree shows the leaf" true (contains ~sub:"leaf" tree);
  check_bool "tree indents the leaf under a" true
    (contains ~sub:"    leaf" tree)

let test_trace_roundtrip () =
  let tele = T.create () in
  T.with_span tele ~cat:"engine" "outer" (fun () ->
      T.with_span tele ~cat:"engine" ~attrs:[ ("k", "v") ] "inner" (fun () -> ());
      T.instant tele ~cat:"engine" "tick");
  let file = Filename.temp_file "pld-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      T.write_chrome tele ~file;
      let reloaded = Trace.load file in
      let live = T.spans tele in
      check_int "span count survives" (List.length live) (List.length reloaded);
      let find name l = List.find (fun (s : T.span) -> s.T.name = name) l in
      let inner = find "inner" reloaded and inner0 = find "inner" live in
      check_string "category survives" inner0.T.cat inner.T.cat;
      check_bool "clock survives" true (inner.T.clock = inner0.T.clock);
      check_bool "attrs survive" true (List.mem ("k", "v") inner.T.attrs);
      Alcotest.(check (option (float 0.5)))
        "duration survives" inner0.T.dur_us inner.T.dur_us;
      check_bool "instant stays an instant" true ((find "tick" reloaded).T.dur_us = None);
      (* The reloaded spans must profile identically to the live ones. *)
      check_string "profiles agree live vs reloaded"
        (Profile.render_hot (Profile.flat live))
        (Profile.render_hot (Profile.flat reloaded)))

let test_trace_rejects_garbage () =
  (match Trace.spans_of_json (Json.of_string "{\"hello\": 1}") with
  | exception Trace.Malformed _ -> ()
  | _ -> Alcotest.fail "expected Malformed on a non-trace document");
  let file = Filename.temp_file "pld-trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Out_channel.with_open_bin file (fun oc -> output_string oc "{not json");
      match Trace.load file with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail "expected Parse_error on bad JSON")

(* A hand-built run where the modeled chain and the measured path
   disagree on purpose: measured goes through [slow_wall], modeled
   through [slow_model]. *)
let synthetic_run =
  let job name start dur deps kind =
    span name start ~dur ~cat:"engine"
      ~attrs:[ ("run", "7"); ("deps", deps); ("kind", kind) ]
  in
  let flow phase start dur jobname =
    span phase start ~dur ~cat:"flow" ~clock:T.Modeled ~track:5
      ~attrs:[ ("run", "7"); ("job", jobname) ]
  in
  [
    (* an earlier run in the same sink must be ignored *)
    span "ghost" 0.0 ~dur:5.0 ~cat:"engine" ~attrs:[ ("run", "6"); ("deps", "") ];
    span "graph" 0.0 ~dur:5.0 ~cat:"engine" ~attrs:[ ("run", "6") ];
    span "graph" 0.0 ~dur:1000.0 ~cat:"engine" ~attrs:[ ("run", "7") ];
    job "src" 0.0 100.0 "" "hls";
    job "slow_wall" 100.0 600.0 "src" "page";
    job "slow_model" 100.0 100.0 "src" "page";
    job "sink" 700.0 100.0 "slow_wall,slow_model" "page";
    flow "pnr" 0.0 3.0e6 "slow_model";
    flow "bitgen" 3.0e6 1.0e6 "slow_model";
    flow "pnr" 0.0 0.5e6 "sink";
  ]

let test_critical_path_synthetic () =
  check_strings "both graph spans listed, oldest first" [ "6"; "7" ]
    (Critical_path.runs synthetic_run);
  match Critical_path.analyze ~workers:2 synthetic_run with
  | None -> Alcotest.fail "no report"
  | Some r ->
      check_string "latest run picked" "7" r.Critical_path.run;
      check_int "jobs of run 7 only" 4 (List.length r.Critical_path.jobs);
      check_float "graph wall" 1e-3 r.Critical_path.graph_wall_s;
      check_float "measured path length" 8e-4 r.Critical_path.measured_s;
      check_strings "measured path goes through slow_wall"
        [ "src"; "slow_wall"; "sink" ]
        r.Critical_path.measured_path;
      check_float "modeled chain length" 4.5 r.Critical_path.modeled_chain_s;
      check_strings "modeled chain goes through slow_model"
        [ "src"; "slow_model"; "sink" ]
        r.Critical_path.modeled_chain;
      check_float "phase total: pnr" 3.5
        (List.assoc "pnr" r.Critical_path.phase_totals);
      check_float "phase total: bitgen" 1.0
        (List.assoc "bitgen" r.Critical_path.phase_totals);
      let _, n, wall, model =
        List.find (fun (k, _, _, _) -> k = "page") r.Critical_path.by_kind
      in
      check_int "page jobs" 3 n;
      check_float "page wall" 8e-4 wall;
      check_float "page model" 4.5 model;
      (* LPT over modeled durations {4.0, 0.5, 0, 0} on 2 machines:
         the 4.0 job gets its own machine, makespan 4.0. *)
      check_float "lpt makespan" 4.0 r.Critical_path.lpt_s;
      check_bool "render mentions the divergence table" true
        (contains ~sub:"model/wall" (Critical_path.render r))

let test_critical_path_real_build () =
  let bench = Suite.find "spam" in
  let graph = bench.Suite.graph (Pld_ir.Graph.Hw { page_hint = None }) in
  let fp = Fp.u50 () in
  let cache = B.create_cache () in
  (* Cold build: the LPT makespan recovered from the spans must equal
     the report's parallel_seconds — same model, two routes. *)
  let tele = T.create () in
  let app = B.compile ~cache ~telemetry:tele fp graph ~level:B.O1 in
  let report =
    match Critical_path.analyze ~workers:app.B.report.B.workers (T.spans tele) with
    | Some r -> r
    | None -> Alcotest.fail "cold build: no executor run in the sink"
  in
  Alcotest.(check (float 1e-3))
    "lpt_s reproduces report.parallel_seconds" app.B.report.B.parallel_seconds
    report.Critical_path.lpt_s;
  check_bool "cold build has modeled phases" true (report.Critical_path.phase_totals <> []);
  check_bool "pnr phase present" true
    (List.mem_assoc "pnr" report.Critical_path.phase_totals);
  check_bool "modeled chain dominates measured wall (divergence)" true
    (report.Critical_path.modeled_chain_s > report.Critical_path.measured_s);
  (* Fully cached rebuild: nothing recompiles, so the modeled makespan
     is 0 and the measured path is pure orchestration overhead. The
     two clocks must agree within the documented 0.5 s tolerance. *)
  let tele2 = T.create () in
  let app2 = B.compile ~cache ~telemetry:tele2 fp graph ~level:B.O1 in
  check_int "fully cached" 0 app2.B.report.B.recompiled;
  let r2 =
    match Critical_path.analyze ~workers:app2.B.report.B.workers (T.spans tele2) with
    | Some r -> r
    | None -> Alcotest.fail "cached build: no executor run in the sink"
  in
  check_float "cached modeled makespan is zero" 0.0 r2.Critical_path.lpt_s;
  check_bool "cached measured path within tolerance of the model" true
    (Float.abs (r2.Critical_path.measured_s -. r2.Critical_path.lpt_s) < 0.5)

let test_baseline_stats () =
  let s = Baseline.stats_of [ 3.0; 1.0; 2.0; 100.0; 2.5 ] in
  check_int "n" 5 s.Baseline.n;
  check_float "median resists the outlier" 2.5 s.Baseline.median;
  check_float "mad" 0.5 s.Baseline.mad;
  check_float "lo" 1.0 s.Baseline.lo;
  check_float "hi" 100.0 s.Baseline.hi;
  (match Baseline.stats_of [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument on []");
  check_bool "fmax is higher-is-better" true (Baseline.higher_is_better "fmax_mhz");
  check_bool "seconds are lower-is-better" false (Baseline.higher_is_better "pnr_seconds")

let snapshot entries =
  {
    Baseline.version = Baseline.current_version;
    suite = "test";
    created = "2026-01-01T00:00:00Z";
    repeats = 3;
    pace = 0.0;
    entries;
  }

let entry ?(exact = []) ?(tool = []) ?(wall = []) bench level =
  { Baseline.bench; level; exact; tool; wall }

let stat v = { Baseline.n = 3; median = v; mad = 0.0; lo = v; hi = v }

let test_baseline_compare () =
  let base =
    snapshot
      [
        entry "spam" "-O1"
          ~exact:[ ("cache_hits", 10.0); ("fmax_mhz", 300.0); ("gone", 1.0) ]
          ~tool:[ ("pnr_seconds", stat 2.0) ]
          ~wall:[ ("wall_seconds", stat 0.1) ];
      ]
  in
  let current =
    snapshot
      [
        entry "spam" "-O1"
          ~exact:[ ("cache_hits", 10.0); ("fmax_mhz", 330.0); ("fresh", 2.0) ]
          ~tool:[ ("pnr_seconds", stat 6.0) ]
          ~wall:[ ("wall_seconds", stat 0.1) ];
        entry "optical" "-O3";
      ]
  in
  let v = Baseline.compare_snapshots ~base current in
  check_bool "pnr 3x slower fails the check" false v.Baseline.ok;
  let status metric =
    match
      List.find_opt (fun f -> f.Baseline.f_metric = metric) v.Baseline.findings
    with
    | Some f -> Baseline.status_name f.Baseline.f_status
    | None -> "(absent)"
  in
  check_string "equal exact metric is ok" "ok" (status "cache_hits");
  check_string "slower tool metric regresses" "REGRESSION" (status "pnr_seconds");
  check_string "higher fmax improves" "improvement" (status "fmax_mhz");
  check_string "metric only in the baseline" "missing" (status "gone");
  check_string "metric only in the current run" "new" (status "fresh");
  check_int "one regression" 1 (List.length v.Baseline.regressions);
  check_int "one improvement" 1 (List.length v.Baseline.improvements);
  (* Same comparison restricted to exact metrics: the tool regression
     disappears, the exact improvement survives. *)
  let v' = Baseline.compare_snapshots ~exact_only:true ~base current in
  check_bool "exact-only check passes" true v'.Baseline.ok;
  check_bool "exact-only still sees the improvement" true
    (List.exists (fun f -> f.Baseline.f_metric = "fmax_mhz") v'.Baseline.improvements);
  check_bool "verdict renders a summary line" true
    (contains ~sub:"REGRESSION" (Baseline.render_verdict v));
  match Json.member "ok" (Baseline.verdict_json v) with
  | Some (Json.Bool false) -> ()
  | _ -> Alcotest.fail "verdict_json ok field"

let test_baseline_json_roundtrip () =
  let snap =
    snapshot
      [
        entry "spam" "-O1"
          ~exact:[ ("cache_hits", 12.0) ]
          ~tool:[ ("pnr_seconds", { Baseline.n = 3; median = 2.0; mad = 0.1; lo = 1.9; hi = 2.3 }) ]
          ~wall:[ ("wall_seconds", stat 0.05) ];
      ]
  in
  let snap' = Baseline.of_json (Json.of_string (Json.to_string (Baseline.to_json snap))) in
  check_bool "snapshot round-trips" true (snap = snap');
  let file = Filename.temp_file "pld-baseline" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Baseline.save ~file snap;
      check_bool "save/load round-trips" true (Baseline.load ~file = snap));
  let stale =
    Json.of_string
      (Json.to_string (Baseline.to_json { snap with Baseline.version = 999 }))
  in
  match Baseline.of_json stale with
  | exception Failure msg ->
      check_bool "version error says how to fix it" true
        (contains ~sub:"re-save" msg)
  | _ -> Alcotest.fail "expected a version failure"

let test_sentinel_levels () =
  List.iter
    (fun (s, expect) ->
      check_bool ("level " ^ s) true (Sentinel.level_of_string s = expect))
    [
      ("O1", Some B.O1);
      ("-O3", Some B.O3);
      ("o0", Some B.O0);
      ("vitis", Some B.Vitis);
      ("O7", None);
    ]

(* The whole sentinel loop in miniature: measure, save, check clean
   (must pass), perturb one phase (must fail, naming it). *)
let test_sentinel_save_check_perturb () =
  let opts =
    {
      Sentinel.benches = [ "spam" ];
      levels = [ B.O1 ];
      repeats = 2;
      pace = 0.0;
      jobs = 1;
      run_perf = false;
      run_service = false;
      run_chaos = false;
      run_incremental = false;
    }
  in
  let base = Sentinel.measure ~suite:"test" opts in
  check_int "one entry" 1 (List.length base.Baseline.entries);
  let e = List.hd base.Baseline.entries in
  check_bool "exact metrics captured" true (List.mem_assoc "cache_hits" e.Baseline.exact);
  check_bool "tool metrics captured" true (List.mem_assoc "pnr_seconds" e.Baseline.tool);
  let file = Filename.temp_file "pld-sentinel" ".json" in
  let out = Filename.temp_file "pld-regression" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove file;
      Sys.remove out)
    (fun () ->
      Baseline.save ~file base;
      (* A fresh measurement of the same configuration must pass its
         own baseline — the bands absorb machine noise. *)
      let again = Sentinel.measure ~suite:"test" opts in
      let clean = Sentinel.check ~base_file:file again in
      check_bool "back-to-back run passes" true clean.Baseline.ok;
      (* A 3x pnr slowdown must fire the gate and name the phase. *)
      let slow = Sentinel.perturb [ ("pnr_seconds", 3.0) ] again in
      let v = Sentinel.check ~base_file:file ~out slow in
      check_bool "perturbed run fails" false v.Baseline.ok;
      check_bool "the finding names bench, level and phase" true
        (List.exists
           (fun f ->
             f.Baseline.f_bench = "spam" && f.Baseline.f_level = "-O1"
             && f.Baseline.f_metric = "pnr_seconds")
           v.Baseline.regressions);
      let doc = Json.of_string (In_channel.with_open_bin out In_channel.input_all) in
      match Json.member "ok" doc with
      | Some (Json.Bool false) -> ()
      | _ -> Alcotest.fail "REGRESSION.json records the failure")

(* The incremental tier must actually take the delta path on a
   one-operator edit and record both the exact hit and the timing
   ratio — otherwise the sentinel would happily pin a baseline in
   which every edit recompiles from scratch. *)
let test_sentinel_incremental_tier () =
  let opts =
    {
      Sentinel.benches = [ "spam" ];
      levels = [];
      repeats = 1;
      pace = 0.0;
      jobs = 1;
      run_perf = false;
      run_service = false;
      run_chaos = false;
      run_incremental = true;
    }
  in
  let snap = Sentinel.measure ~suite:"test" opts in
  check_int "one incremental entry" 1 (List.length snap.Baseline.entries);
  let e = List.hd snap.Baseline.entries in
  check_bool "entry is the incremental tier" true (e.Baseline.level = "incremental");
  check_bool "delta path served the edit" true
    (List.assoc_opt "inc_delta_hits" e.Baseline.exact = Some 1.0);
  check_bool "kept-cell count captured" true (List.mem_assoc "inc_cells_kept" e.Baseline.exact);
  let speedup = (List.assoc "inc_speedup" e.Baseline.tool).Baseline.median in
  check_bool "delta at least 2x faster than scratch" true (speedup >= 2.0)

let suite =
  [
    Alcotest.test_case "profile forest recovers nesting" `Quick test_forest_nesting;
    Alcotest.test_case "flat profile self time" `Quick test_flat_self_time;
    Alcotest.test_case "flat profile separates clocks" `Quick test_flat_separates_clocks;
    Alcotest.test_case "profile renderers" `Quick test_renderers_smoke;
    Alcotest.test_case "trace round-trips through chrome json" `Quick test_trace_roundtrip;
    Alcotest.test_case "trace rejects garbage" `Quick test_trace_rejects_garbage;
    Alcotest.test_case "critical path on a synthetic run" `Quick test_critical_path_synthetic;
    Alcotest.test_case "critical path vs makespan on a real build" `Quick
      test_critical_path_real_build;
    Alcotest.test_case "baseline statistics" `Quick test_baseline_stats;
    Alcotest.test_case "baseline comparison statuses" `Quick test_baseline_compare;
    Alcotest.test_case "baseline json round-trip" `Quick test_baseline_json_roundtrip;
    Alcotest.test_case "sentinel level parsing" `Quick test_sentinel_levels;
    Alcotest.test_case "sentinel save, check, perturb" `Quick test_sentinel_save_check_perturb;
    Alcotest.test_case "sentinel incremental tier" `Quick test_sentinel_incremental_tier;
  ]
