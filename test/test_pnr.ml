open Pld_fabric
module N = Pld_netlist.Netlist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---------- fabric ---------- *)

let test_device_resources () =
  let d = Device.u50_model () in
  let r = Device.total_user_resources d in
  check_bool "tens of kLUTs" true (r.N.luts > 20_000 && r.N.luts < 80_000);
  check_bool "has BRAM" true (r.N.brams > 50);
  check_bool "has DSP" true (r.N.dsps > 100)

let test_floorplan_pages () =
  let fp = Floorplan.u50 () in
  check_int "22 pages" 22 (List.length fp.Floorplan.pages);
  let summary = Floorplan.type_summary fp in
  check_int "4 page types" 4 (List.length summary);
  Alcotest.(check (list int)) "counts per type" [ 7; 7; 7; 1 ] (List.map (fun (_, _, n) -> n) summary)

let test_pages_disjoint () =
  let fp = Floorplan.u50 () in
  List.iteri
    (fun i (p : Floorplan.page) ->
      List.iteri
        (fun j (q : Floorplan.page) ->
          if i < j then begin
            let overlap =
              p.rect.Floorplan.x0 <= q.rect.Floorplan.x1 && q.rect.Floorplan.x0 <= p.rect.Floorplan.x1
              && p.rect.Floorplan.y0 <= q.rect.Floorplan.y1 && q.rect.Floorplan.y0 <= p.rect.Floorplan.y1
            in
            check_bool (Printf.sprintf "pages %d/%d disjoint" p.page_id q.page_id) false overlap
          end)
        fp.Floorplan.pages)
    fp.Floorplan.pages

let test_pages_no_slr_crossing () =
  let fp = Floorplan.u50 () in
  List.iter
    (fun (p : Floorplan.page) ->
      check_int
        (Printf.sprintf "page %d in one SLR" p.page_id)
        (Device.slr_of_row fp.Floorplan.device p.rect.Floorplan.y0)
        (Device.slr_of_row fp.Floorplan.device p.rect.Floorplan.y1))
    fp.Floorplan.pages

let test_page_lookup () =
  let fp = Floorplan.u50 () in
  let p = Floorplan.find_page fp 1 in
  Alcotest.(check (option int))
    "tile maps back to page" (Some 1)
    (Option.map (fun (q : Floorplan.page) -> q.page_id)
       (Floorplan.page_of_tile fp p.rect.Floorplan.x0 p.rect.Floorplan.y0));
  check_bool "shell is no page" true (Floorplan.page_of_tile fp 37 10 = None)

let test_rrg_structure () =
  let fp = Floorplan.u50 () in
  let rrg = Rrg.build fp.Floorplan.device { Floorplan.x0 = 0; y0 = 2; x1 = 9; y1 = 5 } in
  check_int "nodes" 40 rrg.Rrg.nodes;
  check_bool "edges bidirectional" true (Array.length rrg.Rrg.edges = 2 * ((9 * 4) + (10 * 3)));
  let n = Rrg.node_of_tile rrg 3 4 in
  Alcotest.(check (pair int int)) "roundtrip" (3, 4) (Rrg.tile_of_node rrg n)

let test_rrg_slr_edges_scarcer () =
  let fp = Floorplan.u50 () in
  let rrg = Rrg.build fp.Floorplan.device fp.Floorplan.l1_region in
  let slr_edges = Array.to_list rrg.Rrg.edges |> List.filter (fun e -> e.Rrg.capacity < 14) in
  check_bool "SLR crossings exist" true (slr_edges <> []);
  List.iter (fun e -> check_bool "slower" true (e.Rrg.delay_ns > 0.2)) slr_edges

(* ---------- place & route & timing ---------- *)

let small_netlist n_cells seed =
  let rng = Pld_util.Rng.create seed in
  let b = N.Builder.create "rand" in
  let port_in = N.Builder.add_cell b ~name:"pin" ~kind:(N.Stream_in "in") ~res:(N.res_luts 24) ~delay_ns:0.8 in
  let port_out = N.Builder.add_cell b ~name:"pout" ~kind:(N.Stream_out "out") ~res:(N.res_luts 24) ~delay_ns:0.8 in
  let cells =
    List.init n_cells (fun i ->
        N.Builder.add_cell b ~name:(Printf.sprintf "c%d" i) ~kind:N.Arith
          ~res:(N.res_luts (8 + Pld_util.Rng.int rng 24))
          ~delay_ns:1.0)
  in
  let all = Array.of_list ((port_in :: cells) @ [ port_out ]) in
  Array.iteri
    (fun i c -> if i > 0 then ignore (N.Builder.add_net b ~name:(Printf.sprintf "n%d" i) ~driver:all.(i - 1) ~sinks:[ c ]))
    all;
  (* extra random fanout *)
  for k = 0 to (n_cells / 2) - 1 do
    let a = all.(Pld_util.Rng.int rng (Array.length all)) in
    let bdst = all.(Pld_util.Rng.int rng (Array.length all)) in
    if a <> bdst then ignore (N.Builder.add_net b ~name:(Printf.sprintf "r%d" k) ~driver:a ~sinks:[ bdst ])
  done;
  N.Builder.finish b

let page_region () =
  let fp = Floorplan.u50 () in
  (fp, (Floorplan.find_page fp 1).Floorplan.rect)

let test_place_legalizes () =
  let fp, region = page_region () in
  let nl = small_netlist 20 3 in
  let r = Pld_pnr.Place.run ~seed:2 ~device:fp.Floorplan.device ~region nl in
  Alcotest.(check (float 0.0)) "no overfill" 0.0 r.Pld_pnr.Place.overfill;
  Array.iter
    (fun (x, y) ->
      check_bool "inside region" true
        (x >= region.Floorplan.x0 && x <= region.Floorplan.x1 && y >= region.Floorplan.y0 && y <= region.Floorplan.y1))
    r.Pld_pnr.Place.positions

let test_place_respects_pins () =
  let fp, region = page_region () in
  let nl = small_netlist 10 4 in
  let page = Floorplan.find_page fp 1 in
  let r =
    Pld_pnr.Place.run ~seed:2 ~pins:[ ("in", page.Floorplan.noc_leaf); ("out", page.Floorplan.noc_leaf) ]
      ~device:fp.Floorplan.device ~region nl
  in
  (* Cell 0 is the input port. *)
  Alcotest.(check (pair int int)) "pin honored" page.Floorplan.noc_leaf r.Pld_pnr.Place.positions.(0)

let test_place_rejects_oversize () =
  let fp, region = page_region () in
  let b = N.Builder.create "huge" in
  for i = 0 to 200 do
    ignore (N.Builder.add_cell b ~name:(Printf.sprintf "c%d" i) ~kind:N.Arith ~res:(N.res_luts 40) ~delay_ns:1.0)
  done;
  ignore (N.Builder.add_net b ~name:"n" ~driver:0 ~sinks:[ 1 ]);
  match Pld_pnr.Place.run ~device:fp.Floorplan.device ~region (N.Builder.finish b) with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_route_legal_and_timed () =
  let fp, region = page_region () in
  let nl = small_netlist 20 7 in
  let place = Pld_pnr.Place.run ~seed:2 ~device:fp.Floorplan.device ~region nl in
  let route =
    Pld_pnr.Route.run ~device:fp.Floorplan.device ~region ~placement:place.Pld_pnr.Place.positions nl
  in
  check_int "no overuse" 0 route.Pld_pnr.Route.overused_edges;
  let sta = Pld_pnr.Sta.analyze nl ~net_delay_ns:route.Pld_pnr.Route.net_delay_ns in
  check_bool "sane fmax" true (sta.Pld_pnr.Sta.fmax_mhz > 50.0 && sta.Pld_pnr.Sta.fmax_mhz <= 300.0)

let test_implement_end_to_end () =
  let fp, region = page_region () in
  let nl = small_netlist 15 9 in
  let r = Pld_pnr.Pnr.implement ~device:fp.Floorplan.device ~region nl in
  check_bool "routed ok" true (Pld_pnr.Pnr.routed_ok r);
  check_bool "bitstream nonempty" true (Pld_pnr.Bitgen.size_bytes r.Pld_pnr.Pnr.bitstream > 0)

let test_bitstream_proportional () =
  let fp = Floorplan.u50 () in
  let nl = small_netlist 15 9 in
  let page = (Floorplan.find_page fp 1).Floorplan.rect in
  let small = Pld_pnr.Pnr.implement ~device:fp.Floorplan.device ~region:page nl in
  let big = Pld_pnr.Pnr.implement ~device:fp.Floorplan.device ~region:fp.Floorplan.l1_region nl in
  (* Partial bitstreams are much smaller than full-region ones (§2.3). *)
  check_bool "partial much smaller" true
    (10 * Pld_pnr.Bitgen.size_bytes small.Pld_pnr.Pnr.bitstream
    < Pld_pnr.Bitgen.size_bytes big.Pld_pnr.Pnr.bitstream)

let test_determinism () =
  let fp, region = page_region () in
  let nl = small_netlist 12 5 in
  let a = Pld_pnr.Pnr.implement ~seed:3 ~device:fp.Floorplan.device ~region nl in
  let b = Pld_pnr.Pnr.implement ~seed:3 ~device:fp.Floorplan.device ~region nl in
  Alcotest.(check string) "same bitstream for same seed" a.Pld_pnr.Pnr.bitstream.Pld_pnr.Bitgen.crc
    b.Pld_pnr.Pnr.bitstream.Pld_pnr.Bitgen.crc

let test_superlinear_runtime () =
  (* The heart of the paper: P&R time grows super-linearly, so small
     page compiles are disproportionately cheaper. *)
  let fp = Floorplan.u50 () in
  let small = small_netlist 12 11 in
  let big = small_netlist 120 11 in
  let region = fp.Floorplan.l1_region in
  let t_small =
    (Pld_pnr.Pnr.implement ~device:fp.Floorplan.device ~region small).Pld_pnr.Pnr.place.Pld_pnr.Place.seconds
  in
  let t_big =
    (Pld_pnr.Pnr.implement ~device:fp.Floorplan.device ~region big).Pld_pnr.Pnr.place.Pld_pnr.Place.seconds
  in
  check_bool "10x cells -> >15x time" true (t_big > 15.0 *. t_small)

(* ---------- incremental & multi-seed P&R ---------- *)

(* [small_netlist] with one cell's resources changed — a one-cell edit. *)
let edit_one_cell (nl : N.t) victim =
  let b = N.Builder.create nl.N.nl_name in
  Array.iter
    (fun (c : N.cell) ->
      let res = if c.N.cname = victim then N.res_luts 40 else c.N.res in
      ignore (N.Builder.add_cell b ~name:c.N.cname ~kind:c.N.kind ~res ~delay_ns:c.N.delay_ns))
    nl.N.cells;
  Array.iter
    (fun (n : N.net) -> ignore (N.Builder.add_net b ~name:n.N.nname ~driver:n.N.driver ~sinks:n.N.sinks))
    nl.N.nets;
  N.Builder.finish b

let test_netlist_diff () =
  let nl = small_netlist 10 3 in
  let d = N.diff nl nl in
  check_bool "self diff empty" true (N.diff_is_empty d);
  check_int "all cells kept" (N.cell_count nl) (List.length d.N.cells_kept);
  check_int "all nets kept" (N.net_count nl) (List.length d.N.nets_kept);
  let nl2 = edit_one_cell nl "c3" in
  let d2 = N.diff nl nl2 in
  check_int "one cell changed" 1 (List.length d2.N.cells_changed);
  check_int "no cells removed" 0 (List.length d2.N.cells_removed);
  check_bool "small change fraction" true (N.diff_change_fraction d2 < 0.2)

let test_place_route_deterministic () =
  let fp, region = page_region () in
  let nl = small_netlist 18 6 in
  let p1 = Pld_pnr.Place.run ~seed:5 ~device:fp.Floorplan.device ~region nl in
  let p2 = Pld_pnr.Place.run ~seed:5 ~device:fp.Floorplan.device ~region nl in
  check_bool "same positions for same seed" true (p1.Pld_pnr.Place.positions = p2.Pld_pnr.Place.positions);
  let r1 = Pld_pnr.Route.run ~device:fp.Floorplan.device ~region ~placement:p1.Pld_pnr.Place.positions nl in
  let r2 = Pld_pnr.Route.run ~device:fp.Floorplan.device ~region ~placement:p2.Pld_pnr.Place.positions nl in
  check_bool "same routes for same seed" true (r1.Pld_pnr.Route.routes = r2.Pld_pnr.Route.routes)

let test_delta_empty_diff () =
  let fp, region = page_region () in
  let nl = small_netlist 16 8 in
  let base = Pld_pnr.Pnr.implement ~seed:2 ~device:fp.Floorplan.device ~region nl in
  let d = Pld_pnr.Pnr.implement_delta ~seed:2 ~previous:base ~device:fp.Floorplan.device ~region nl in
  (match d.Pld_pnr.Pnr.delta with
  | Some s ->
      check_bool "delta path taken" true (s.Pld_pnr.Pnr.fallback = None);
      check_int "nothing rerouted" 0 s.Pld_pnr.Pnr.nets_rerouted;
      check_int "no cells moved" 0 s.Pld_pnr.Pnr.cells_moved
  | None -> Alcotest.fail "delta stats missing");
  check_bool "placement untouched" true (d.Pld_pnr.Pnr.placement = base.Pld_pnr.Pnr.placement);
  Alcotest.(check string) "identical bitstream" base.Pld_pnr.Pnr.bitstream.Pld_pnr.Bitgen.crc
    d.Pld_pnr.Pnr.bitstream.Pld_pnr.Bitgen.crc

let test_delta_small_edit () =
  let fp, region = page_region () in
  let nl = small_netlist 16 8 in
  let base = Pld_pnr.Pnr.implement ~seed:2 ~device:fp.Floorplan.device ~region nl in
  let nl2 = edit_one_cell nl "c5" in
  let d = Pld_pnr.Pnr.implement_delta ~seed:2 ~previous:base ~device:fp.Floorplan.device ~region nl2 in
  check_bool "delta result legal" true (Pld_pnr.Pnr.routed_ok d);
  match d.Pld_pnr.Pnr.delta with
  | Some s ->
      check_bool "delta path taken" true (s.Pld_pnr.Pnr.fallback = None);
      check_bool "most cells kept" true (s.Pld_pnr.Pnr.cells_kept > N.cell_count nl2 * 3 / 4);
      check_bool "most routes preserved" true (s.Pld_pnr.Pnr.nets_preserved > 0)
  | None -> Alcotest.fail "delta stats missing"

let test_multi_seed_never_worse () =
  let fp, region = page_region () in
  let nl = small_netlist 14 10 in
  let seeds = [ 1; 2; 3 ] in
  let multi =
    Pld_pnr.Pnr.implement_multi ~seeds ~device:fp.Floorplan.device ~region nl
  in
  check_bool "multi result legal" true (Pld_pnr.Pnr.routed_ok multi);
  List.iter
    (fun s ->
      let r = Pld_pnr.Pnr.implement ~seed:s ~device:fp.Floorplan.device ~region nl in
      check_bool
        (Printf.sprintf "multi at least as fast as seed %d" s)
        true
        (multi.Pld_pnr.Pnr.timing.Pld_pnr.Sta.fmax_mhz
        >= r.Pld_pnr.Pnr.timing.Pld_pnr.Sta.fmax_mhz -. 1e-9))
    seeds

let test_run_multi_matches_single () =
  let fp, region = page_region () in
  let nl = small_netlist 12 4 in
  let results = Pld_pnr.Place.run_multi ~seeds:[ 4; 9 ] ~device:fp.Floorplan.device ~region nl in
  check_int "one result per seed" 2 (List.length results);
  List.iter
    (fun (s, (r : Pld_pnr.Place.result)) ->
      let solo = Pld_pnr.Place.run ~seed:s ~device:fp.Floorplan.device ~region nl in
      check_bool
        (Printf.sprintf "seed %d matches solo run" s)
        true
        (r.Pld_pnr.Place.positions = solo.Pld_pnr.Place.positions))
    results

let prop_sta_fmax_bounded =
  QCheck.Test.make ~name:"sta fmax within (0, clock target]" ~count:20
    QCheck.(pair (int_range 3 25) (int_range 0 1000))
    (fun (n, seed) ->
      let fp, region = page_region () in
      let nl = small_netlist n seed in
      let place = Pld_pnr.Place.run ~seed:1 ~device:fp.Floorplan.device ~region nl in
      let route = Pld_pnr.Route.run ~device:fp.Floorplan.device ~region ~placement:place.Pld_pnr.Place.positions nl in
      let sta = Pld_pnr.Sta.analyze nl ~net_delay_ns:route.Pld_pnr.Route.net_delay_ns in
      sta.Pld_pnr.Sta.fmax_mhz > 0.0 && sta.Pld_pnr.Sta.fmax_mhz <= 300.0)

let suite =
  [
    ("device resources", `Quick, test_device_resources);
    ("floorplan: 22 pages, 4 types", `Quick, test_floorplan_pages);
    ("floorplan: pages disjoint", `Quick, test_pages_disjoint);
    ("floorplan: no SLR crossing", `Quick, test_pages_no_slr_crossing);
    ("floorplan: tile lookup", `Quick, test_page_lookup);
    ("rrg structure", `Quick, test_rrg_structure);
    ("rrg SLR edges scarce and slow", `Quick, test_rrg_slr_edges_scarcer);
    ("place legalizes in page", `Quick, test_place_legalizes);
    ("place honors pins", `Quick, test_place_respects_pins);
    ("place rejects oversize netlists", `Quick, test_place_rejects_oversize);
    ("route legal, timing sane", `Quick, test_route_legal_and_timed);
    ("implement end to end", `Quick, test_implement_end_to_end);
    ("partial bitstream smaller", `Quick, test_bitstream_proportional);
    ("deterministic with seed", `Slow, test_determinism);
    ("superlinear runtime", `Slow, test_superlinear_runtime);
    ("netlist diff", `Quick, test_netlist_diff);
    ("place & route deterministic", `Quick, test_place_route_deterministic);
    ("delta P&R: empty diff is a no-op", `Quick, test_delta_empty_diff);
    ("delta P&R: one-cell edit stays on fast path", `Quick, test_delta_small_edit);
    ("multi-seed never times worse", `Slow, test_multi_seed_never_worse);
    ("run_multi matches single runs", `Quick, test_run_multi_matches_single);
  ]
