open Pld_ir
open Pld_core
module Fp = Pld_fabric.Floorplan
module N = Pld_netlist.Netlist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let u32 = Dtype.word
let fp = Fp.u50 ()

let doubler ?(name = "doubler") n =
  Op.make ~name ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" u32 ]
    [
      Op.For
        {
          var = "i";
          lo = 0;
          hi = n;
          pipeline = true;
          body = [ Op.Read (Op.LVar "x", "in"); Op.Write ("out", Expr.(var "x" + var "x")) ];
        };
    ]

let pipeline ?(target = Graph.Hw { page_hint = None }) ?(n = 8) stages =
  let ops = List.init stages (fun i -> doubler ~name:(Printf.sprintf "stage%d" i) n) in
  let chan i = if i = 0 then "cin" else if i = stages then "cout" else Printf.sprintf "c%d" i in
  Graph.make ~name:"pipe"
    ~channels:(List.init (stages + 1) (fun i -> Graph.channel (chan i)))
    ~instances:
      (List.mapi (fun i op -> Graph.instance ~target ~name:op.Op.name op [ ("in", chan i); ("out", chan (i + 1)) ]) ops)
    ~inputs:[ "cin" ] ~outputs:[ "cout" ]

let inputs n = [ ("cin", List.init n (fun i -> Value.of_int u32 (i + 1))) ]

(* ---------- assignment ---------- *)

let test_assign_basic () =
  let demand = { N.luts = 100; ffs = 100; brams = 0; dsps = 0 } in
  let a =
    Assign.assign fp
      (List.init 5 (fun i -> (Printf.sprintf "op%d" i, Graph.Hw { page_hint = None }, demand)))
  in
  check_int "all assigned" 5 (List.length a);
  let pages = List.map snd a in
  check_int "distinct pages" 5 (List.length (List.sort_uniq compare pages))

let test_assign_honors_hint () =
  let demand = { N.luts = 100; ffs = 100; brams = 0; dsps = 0 } in
  let a = Assign.assign fp [ ("op", Graph.Hw { page_hint = Some 13 }, demand) ] in
  Alcotest.(check (list (pair string int))) "pinned" [ ("op", 13) ] a

let test_assign_no_fit () =
  let demand = { N.luts = 100_000; ffs = 0; brams = 0; dsps = 0 } in
  match Assign.assign fp [ ("big", Graph.Hw { page_hint = None }, demand) ] with
  | _ -> Alcotest.fail "expected No_fit"
  | exception Assign.No_fit _ -> ()

let test_assign_bram_heavy_gets_bram_page () =
  let demand = { N.luts = 100; ffs = 100; brams = 7; dsps = 0 } in
  let a = Assign.assign fp [ ("memop", Graph.Hw { page_hint = None }, demand) ] in
  let page = Fp.find_page fp (List.assoc "memop" a) in
  check_bool "page has BRAM capacity" true (page.Fp.capacity.N.brams >= 7)

(* ---------- builds ---------- *)

let test_compile_o1 () =
  let app = Build.compile fp (pipeline 3) ~level:Build.O1 in
  check_int "three operators" 3 (List.length app.Build.operators);
  check_int "no cache hits on first build" 0 app.Build.report.Build.cache_hits;
  List.iter
    (fun (_, c) ->
      match c with
      | Build.Hw_page h -> check_bool "routed" true (Pld_pnr.Pnr.routed_ok h.Flow.pnr)
      | Build.Soft_page _ -> Alcotest.fail "expected hardware page")
    app.Build.operators

let test_compile_o0_forces_softcores () =
  let app = Build.compile fp (pipeline 3) ~level:Build.O0 in
  List.iter
    (fun (_, c) ->
      match c with
      | Build.Soft_page _ -> ()
      | Build.Hw_page _ -> Alcotest.fail "expected softcore")
    app.Build.operators

let test_compile_mixed_targets () =
  let g = Graph.retarget (pipeline 3) "stage1" Graph.Riscv in
  let app = Build.compile fp g ~level:Build.O1 in
  let kinds = List.map (fun (n, c) -> (n, match c with Build.Hw_page _ -> "hw" | Build.Soft_page _ -> "soft")) app.Build.operators in
  Alcotest.(check (list (pair string string)))
    "pragma picks implementation"
    [ ("stage0", "hw"); ("stage1", "soft"); ("stage2", "hw") ]
    kinds

let test_incremental_cache () =
  let cache = Build.create_cache () in
  let g = pipeline 4 in
  let app1 = Build.compile ~cache fp g ~level:Build.O1 in
  check_int "first build compiles all" 4 app1.Build.report.Build.recompiled;
  (* Rebuild unchanged: everything hits. *)
  let app2 = Build.compile ~cache fp g ~level:Build.O1 in
  check_int "no recompiles" 0 app2.Build.report.Build.recompiled;
  check_int "all hits" 4 app2.Build.report.Build.cache_hits;
  check_bool "cached build is fast" true (app2.Build.report.Build.serial_seconds < 0.001);
  (* Change one operator: exactly one recompile. *)
  let changed = doubler ~name:"stage2" 9 in
  let g' =
    {
      g with
      Graph.instances =
        List.map
          (fun (i : Graph.instance) -> if i.inst_name = "stage2" then { i with op = changed } else i)
          g.Graph.instances;
    }
  in
  let app3 = Build.compile ~cache fp g' ~level:Build.O1 in
  check_int "one recompile" 1 app3.Build.report.Build.recompiled;
  check_int "three hits" 3 app3.Build.report.Build.cache_hits

(* Replace one stage's operator body (a source edit) in a pipeline. *)
let edit_stage g name n' =
  {
    g with
    Graph.instances =
      List.map
        (fun (i : Graph.instance) ->
          if i.inst_name = name then { i with op = doubler ~name n' } else i)
        g.Graph.instances;
  }

let test_persistent_incremental () =
  (* The acceptance story of the engine: a warm pldc rerun after a
     one-operator edit recompiles exactly one page. Every build opens a
     fresh cache handle on the same directory — a simulated fresh
     process, so all carrying happens through the on-disk store. *)
  let dir = ".test-build-cache" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let g = pipeline 6 in
  let cold = Build.compile ~cache:(Build.create_cache ~dir ()) fp g ~level:Build.O1 in
  check_int "cold compiles all six" 6 cold.Build.report.Build.recompiled;
  check_int "cold has no hits" 0 cold.Build.report.Build.cache_hits;
  (* Unchanged rerun in a fresh process: everything from disk. *)
  let warm = Build.compile ~cache:(Build.create_cache ~dir ()) fp g ~level:Build.O1 in
  check_int "warm recompiles nothing" 0 warm.Build.report.Build.recompiled;
  check_int "warm all hits" 6 warm.Build.report.Build.cache_hits;
  (* One-operator edit in yet another fresh process. *)
  let g' = edit_stage g "stage3" 9 in
  let inc = Build.compile ~cache:(Build.create_cache ~dir ()) fp g' ~level:Build.O1 in
  check_int "exactly one recompile" 1 inc.Build.report.Build.recompiled;
  check_int "five hits" 5 inc.Build.report.Build.cache_hits;
  (* The per-kind trace agrees, and the hits came from the store, not
     this process's tables. *)
  Alcotest.(check (option (pair int int)))
    "page kind: 5 hits, 1 miss" (Some (5, 1))
    (List.assoc_opt Build.kind_page
       (List.map (fun (k, h, m) -> (k, (h, m))) inc.Build.report.Build.by_kind));
  check_int "hits served from disk" 5
    (List.length
       (List.filter
          (function
            | Pld_engine.Event.Cache_hit { source = Pld_engine.Event.Disk; _ } -> true
            | _ -> false)
          inc.Build.report.Build.events));
  (* The artifact is current: the edited stage's bitstream differs from
     the cold build's. *)
  let page_of (app : Build.app) name =
    match List.assoc name app.Build.operators with
    | Build.Hw_page h -> h
    | Build.Soft_page _ -> Alcotest.fail "expected hardware page"
  in
  check_bool "edited page recompiled against new source" false
    ((page_of cold "stage3").Flow.op = (page_of inc "stage3").Flow.op)

let test_cache_stats_per_kind () =
  let cache = Build.create_cache () in
  let g = Graph.retarget (pipeline 3) "stage1" Graph.Riscv in
  ignore (Build.compile ~cache fp g ~level:Build.O1);
  ignore (Build.compile ~cache fp g ~level:Build.O1);
  let stats k = Option.get (List.assoc_opt k (List.map (fun (k, h, m) -> (k, (h, m))) (Build.cache_stats cache))) in
  Alcotest.(check (pair int int)) "pages: 2 hit, 2 miss" (2, 2) (stats Build.kind_page);
  Alcotest.(check (pair int int)) "softcore: 1 hit, 1 miss" (1, 1) (stats Build.kind_softcore)

let test_kind_partition_no_collision () =
  (* The same operator compiled as a page and as a softcore produces two
     distinct cache entries even if their keys collide — kinds partition
     the cache, so a softcore image can never be returned for a page. *)
  let cache = Build.create_cache () in
  let g = pipeline 2 in
  ignore (Build.compile ~cache fp g ~level:Build.O1);
  ignore (Build.compile ~cache fp (Graph.retarget_all g Graph.Riscv) ~level:Build.O1);
  check_int "four entries, two kinds" 4 (Build.cache_size cache);
  let app = Build.compile ~cache fp g ~level:Build.O1 in
  List.iter
    (fun (_, c) ->
      match c with
      | Build.Hw_page _ -> ()
      | Build.Soft_page _ -> Alcotest.fail "softcore artifact returned for a page build")
    app.Build.operators

let test_executor_determinism () =
  (* A sequential (-j1) and a parallel (-j4) cold build of the same graph
     produce identical artifacts and reports, modulo timing: every
     seconds field (even the "modeled" tool times) is derived from
     measured simulator runtime and varies run to run, so determinism
     means the semantic payload — netlists, placements, bitstreams,
     assignment, trace structure — is bit-identical. *)
  let build jobs = Build.compile ~cache:(Build.create_cache ()) ~jobs fp (pipeline 6) ~level:Build.O1 in
  let a = build 1 and b = build 4 in
  let semantic (app : Build.app) =
    List.map
      (fun (name, c) ->
        match c with
        | Build.Hw_page h ->
            let p = h.Flow.pnr in
            ( name,
              `Hw
                ( h.Flow.op,
                  h.Flow.page,
                  h.Flow.impl.Pld_hls.Hls_compile.netlist,
                  h.Flow.impl.Pld_hls.Hls_compile.perf,
                  p.Pld_pnr.Pnr.placement,
                  (p.Pld_pnr.Pnr.bitstream.Pld_pnr.Bitgen.frames,
                   p.Pld_pnr.Pnr.bitstream.Pld_pnr.Bitgen.crc),
                  (p.Pld_pnr.Pnr.route.Pld_pnr.Route.routes,
                   p.Pld_pnr.Pnr.route.Pld_pnr.Route.net_delay_ns),
                  p.Pld_pnr.Pnr.timing ) )
        | Build.Soft_page s ->
            (name, `Soft (s.Flow.op0, s.Flow.page0, s.Flow.program, s.Flow.elf)))
      app.Build.operators
  in
  check_bool "identical semantic artifacts" true (semantic a = semantic b);
  Alcotest.(check (list (pair string int))) "identical assignment" a.Build.assignment b.Build.assignment;
  check_int "same recompiles" a.Build.report.Build.recompiled b.Build.report.Build.recompiled;
  Alcotest.(check (list (triple string int int)))
    "same per-kind stats" a.Build.report.Build.by_kind b.Build.report.Build.by_kind;
  let canonical (r : Build.report) =
    List.sort compare
      (List.filter_map
         (fun e ->
           match e with
           | Pld_engine.Event.Graph_start _ -> None
           | e -> Some (Pld_engine.Event.to_string (Pld_engine.Event.strip_timing e)))
         r.Build.events)
  in
  Alcotest.(check (list string)) "identical traces modulo timing"
    (canonical a.Build.report) (canonical b.Build.report)

let test_parallel_jobs_faster () =
  (* Paced so each job sleeps off its modeled tool time: four domains
     overlap those waits even on one core, so measured wall-clock drops. *)
  let g = pipeline 6 in
  let probe = Build.compile ~cache:(Build.create_cache ()) fp g ~level:Build.O1 in
  let pace = 0.6 /. Float.max 1e-6 probe.Build.report.Build.serial_seconds in
  let build jobs = Build.compile ~cache:(Build.create_cache ()) ~jobs ~pace fp g ~level:Build.O1 in
  let w1 = (build 1).Build.report.Build.wall_seconds in
  let w4 = (build 4).Build.report.Build.wall_seconds in
  check_bool
    (Printf.sprintf "-j4 cold build faster than -j1 (%.3fs < %.3fs)" w4 w1)
    true (w4 < w1)

let test_makespan () =
  Alcotest.(check (float 1e-9)) "parallel" 3.0 (Build.makespan ~workers:3 [ 3.0; 2.0; 1.0 ]);
  Alcotest.(check (float 1e-9)) "serial" 6.0 (Build.makespan ~workers:1 [ 3.0; 2.0; 1.0 ]);
  Alcotest.(check (float 1e-9)) "two workers" 3.0 (Build.makespan ~workers:2 [ 2.0; 2.0; 1.0; 1.0 ])

let test_o1_parallel_faster_than_serial () =
  let app = Build.compile fp (pipeline 5) ~level:Build.O1 in
  let r = app.Build.report in
  check_bool "makespan <= serial" true (r.Build.parallel_seconds <= r.Build.serial_seconds +. 1e-9)

(* ---------- execution ---------- *)

let expected n = List.init n (fun i -> 2 * (i + 1))

let run_level level =
  let g = pipeline ~n:512 1 in
  let app = Build.compile fp g ~level in
  let r = Runner.run app ~inputs:(inputs 512) in
  (List.map Value.to_int (List.assoc "cout" r.Runner.outputs), r)

let test_all_levels_agree () =
  List.iter
    (fun level ->
      let out, _ = run_level level in
      Alcotest.(check (list int)) (Build.level_name level) (expected 512) out)
    [ Build.O0; Build.O1; Build.O3; Build.Vitis ]

let test_o0_orders_slower () =
  let _, r0 = run_level Build.O0 in
  let _, r3 = run_level Build.O3 in
  let slow = r0.Runner.perf.Runner.ms_per_input /. r3.Runner.perf.Runner.ms_per_input in
  check_bool
    (Printf.sprintf "softcore 100x+ slower (got %.1fx: %.5f vs %.5f ms)" slow
       r0.Runner.perf.Runner.ms_per_input r3.Runner.perf.Runner.ms_per_input)
    true (slow > 100.0)

let test_o1_between () =
  let _, r1 = run_level Build.O1 in
  let _, r3 = run_level Build.O3 in
  let _, r0 = run_level Build.O0 in
  check_bool "O1 slower than O3" true
    (r1.Runner.perf.Runner.ms_per_input >= r3.Runner.perf.Runner.ms_per_input);
  check_bool "O1 much faster than O0" true
    (r0.Runner.perf.Runner.ms_per_input > 10.0 *. r1.Runner.perf.Runner.ms_per_input)

let test_mixed_execution_matches () =
  let g = Graph.retarget (pipeline ~n:6 3) "stage1" Graph.Riscv in
  let app = Build.compile fp g ~level:Build.O1 in
  let r = Runner.run app ~inputs:(inputs 6) in
  Alcotest.(check (list int)) "mixed pipeline output"
    (List.init 6 (fun i -> 8 * (i + 1)))
    (List.map Value.to_int (List.assoc "cout" r.Runner.outputs));
  check_int "one softcore" 1 (List.length r.Runner.softcore_cycles)

(* ---------- card + loader ---------- *)

let test_deploy_o1 () =
  let card = Pld_platform.Card.create () in
  let app = Build.compile fp (pipeline 3) ~level:Build.O1 in
  let dr = Loader.deploy card app in
  check_bool "load time positive" true (dr.Loader.seconds > 0.0);
  check_bool "no recovery events fault-free" true (dr.Loader.recovery = []);
  check_bool "overlay loaded" true (Pld_platform.Card.l1 card = Pld_platform.Card.Overlay_loaded);
  check_int "three pages occupied" 3 (List.length (Pld_platform.Card.loaded_pages card));
  (* Links programmed in the NoC. *)
  let net = Pld_platform.Card.noc card in
  check_bool "routes installed" true (Pld_noc.Bft.lookup_route net ~leaf:0 ~stream:0 <> None)

let test_deploy_monolithic_evicts_overlay () =
  let card = Pld_platform.Card.create () in
  ignore (Loader.deploy card (Build.compile fp (pipeline 2) ~level:Build.O1));
  ignore (Loader.deploy card (Build.compile fp (pipeline 2) ~level:Build.O3));
  check_bool "kernel active" true
    (match Pld_platform.Card.l1 card with Pld_platform.Card.Kernel_loaded _ -> true | _ -> false);
  check_int "pages cleared" 0 (List.length (Pld_platform.Card.loaded_pages card))

let test_card_protocol_violation () =
  let card = Pld_platform.Card.create () in
  let app = Build.compile fp (pipeline 1) ~level:Build.O1 in
  match
    List.iter
      (fun (_, c) ->
        match c with
        | Build.Hw_page h -> ignore (Pld_platform.Card.load card h.Flow.xclbin)
        | Build.Soft_page _ -> ())
      app.Build.operators
  with
  | _ -> Alcotest.fail "expected Protocol_error (page before overlay)"
  | exception Pld_platform.Card.Protocol_error _ -> ()

let test_assign_hint_collision () =
  let demand = { N.luts = 100; ffs = 100; brams = 0; dsps = 0 } in
  match
    Assign.assign fp
      [
        ("a", Graph.Hw { page_hint = Some 5 }, demand);
        ("b", Graph.Hw { page_hint = Some 5 }, demand);
      ]
  with
  | _ -> Alcotest.fail "expected No_fit on colliding p_num pragmas"
  | exception Assign.No_fit _ -> ()

let test_multi_frame_throughput () =
  (* Several frames through the same pipeline: outputs concatenate and
     stay in order (steady-state streaming). *)
  let g = pipeline ~n:8 2 in
  let frames = 3 in
  let words = List.concat (List.init frames (fun _ -> List.init 8 (fun i -> Value.of_int u32 (i + 1)))) in
  let r = Pld_kpn.Run_graph.run g ~rounds:frames ~inputs:[ ("cin", words) ] in
  let out = List.map Value.to_int (List.assoc "cout" r.Pld_kpn.Run_graph.outputs) in
  Alcotest.(check (list int)) "three frames"
    (List.concat (List.init frames (fun _ -> List.init 8 (fun i -> 4 * (i + 1)))))
    out

let test_dma_model () =
  let d = Pld_platform.Dma.default in
  let small = Pld_platform.Dma.transfer_seconds d ~bytes:64 in
  let big = Pld_platform.Dma.transfer_seconds d ~bytes:(1 lsl 20) in
  check_bool "setup latency floors small transfers" true (small >= d.Pld_platform.Dma.setup_us *. 1e-6);
  check_bool "bandwidth dominates big transfers" true (big > 10.0 *. small);
  let f = Pld_platform.Dma.frame_seconds d ~words_in:256 ~words_out:256 in
  check_bool "frame = two transfers" true (f > small *. 1.5)

(* ---------- reporting ---------- *)

let test_reports () =
  let app = Build.compile fp (pipeline 2) ~level:Build.O1 in
  let row = Report.compile_row app in
  check_int "six columns" 6 (List.length row);
  let area = Report.area_row app in
  check_int "five columns" 5 (List.length area);
  check_bool "summary non-empty" true (String.length (Report.compile_summary app) > 20)

(* ---------- fabric profiles ---------- *)

module Pmu = Pld_telemetry.Pmu
module Json = Pld_telemetry.Json
module Bottleneck = Pld_insight.Bottleneck

let profiled_run ?(n = 64) ?(stages = 3) level =
  let g = pipeline ~n stages in
  let app = Build.compile fp g ~level in
  let pmu = Pmu.create () in
  let r = Runner.run ~pmu app ~inputs:(inputs n) in
  (app, pmu, r)

let test_fabric_profile_of_run () =
  let app, pmu, r = profiled_run Build.O1 in
  let p = Fabric_profile.of_run ~trace:"tr-42" ~tenant:"acme" ~pmu app r in
  Alcotest.(check string) "graph name" "pipe" p.Fabric_profile.pf_graph;
  Alcotest.(check string) "level" "-O1" p.Fabric_profile.pf_level;
  Alcotest.(check (option string)) "trace carried" (Some "tr-42") p.Fabric_profile.pf_trace;
  Alcotest.(check (option string)) "tenant carried" (Some "acme") p.Fabric_profile.pf_tenant;
  check_bool "frame cycles modeled" true (p.Fabric_profile.pf_frame_cycles > 0);
  check_int "one op_stat per instance" 3 (List.length p.Fabric_profile.pf_ops);
  List.iter
    (fun (o : Fabric_profile.op_stat) ->
      check_bool (o.Fabric_profile.op_name ^ " fired") true (o.Fabric_profile.op_firings > 0);
      Alcotest.(check string) "hw kind" "hw" o.Fabric_profile.op_kind;
      check_bool "placed on a page" true (o.Fabric_profile.op_page <> None))
    p.Fabric_profile.pf_ops;
  (* Channel topology: the graph boundary channels face the host. *)
  let chan name =
    List.find (fun (c : Fabric_profile.chan_stat) -> c.Fabric_profile.ch_name = name)
      p.Fabric_profile.pf_chans
  in
  Alcotest.(check (option string)) "cin fed by host" None (chan "cin").Fabric_profile.ch_src;
  Alcotest.(check (option string)) "cout drained by host" None (chan "cout").Fabric_profile.ch_dst;
  check_int "every input token crossed cin" 64 (chan "cin").Fabric_profile.ch_tokens;
  (* The PMU saw the run: per-process firing series exist. *)
  check_bool "firing series recorded" true
    (List.exists (fun n -> n = "kpn.proc.stage0.firings") (Pmu.series_names pmu));
  (* Profiled streaming must not perturb the computed outputs. *)
  Alcotest.(check (list int)) "outputs intact"
    (List.init 64 (fun i -> 8 * (i + 1)))
    (List.map Value.to_int (List.assoc "cout" r.Runner.outputs))

let test_fabric_profile_json_roundtrip () =
  let app, pmu, r = profiled_run ~n:32 ~stages:2 Build.O1 in
  let p = Fabric_profile.of_run ~tenant:"acme" ~pmu app r in
  let doc = Json.of_string (Json.to_string (Fabric_profile.to_json p)) in
  match Fabric_profile.of_json doc with
  | Error m -> Alcotest.failf "of_json failed: %s" m
  | Ok q ->
      Alcotest.(check string) "byte-identical re-export"
        (Json.to_string (Fabric_profile.to_json p))
        (Json.to_string (Fabric_profile.to_json q))

let test_fabric_profile_heatmap_smoke () =
  let app, pmu, r = profiled_run Build.O1 in
  let p = Fabric_profile.of_run ~pmu app r in
  let s = Fabric_profile.render_heatmap p fp in
  check_bool "non-trivial rendering" true (String.length s > 100);
  let contains re =
    let n = String.length re and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = re || go (i + 1)) in
    go 0
  in
  check_bool "names the ops" true (contains "stage0");
  check_bool "shows stall split" true (contains "rd" && contains "wr")

let test_attribution_agrees_with_perf_model () =
  (* The ISSUE's acceptance check: on the Rosetta rendering benchmark
     at -O1 the back-pressure walk must name a rate limiter consistent
     with the perf model's critical-path verdict. *)
  let b = Pld_rosetta.Suite.find "rendering" in
  let g = b.Pld_rosetta.Suite.graph (Graph.Hw { page_hint = None }) in
  let app = Build.compile fp g ~level:Build.O1 in
  let pmu = Pmu.create () in
  let r = Runner.run ~pmu app ~inputs:(b.Pld_rosetta.Suite.workload ()) in
  let p = Fabric_profile.of_run ~pmu app r in
  let bk = Bottleneck.attribute p in
  check_bool "profiled run observes stalls" true (bk.Bottleneck.bk_total_stalls > 0);
  check_bool "attribution agrees with perf model" true bk.Bottleneck.bk_agrees;
  (match Bottleneck.rate_limiter bk with
  | None -> Alcotest.fail "no rate limiter named"
  | Some (op, frac) ->
      check_bool ("dominant culprit " ^ op) true (frac > 0.5));
  check_bool "report renders" true (Bottleneck.render bk <> [])

let test_compile_time_shape () =
  (* -O1 wall time must beat monolithic on a multi-operator app —
     the paper's headline (Tab. 2). *)
  let g = pipeline 6 in
  let o1 = Build.compile fp g ~level:Build.O3 in
  let o1w = o1.Build.report.Build.serial_seconds in
  let sep = Build.compile fp g ~level:Build.O1 in
  let sepw = sep.Build.report.Build.parallel_seconds in
  check_bool "separate compile faster" true (sepw < o1w)

let suite =
  [
    ("assign: basic", `Quick, test_assign_basic);
    ("assign: pragma hint", `Quick, test_assign_honors_hint);
    ("assign: no fit", `Quick, test_assign_no_fit);
    ("assign: bram-heavy placement", `Quick, test_assign_bram_heavy_gets_bram_page);
    ("compile -O1", `Quick, test_compile_o1);
    ("compile -O0 forces softcores", `Quick, test_compile_o0_forces_softcores);
    ("compile mixed pragmas", `Quick, test_compile_mixed_targets);
    ("incremental cache", `Slow, test_incremental_cache);
    ("persistent store: 1-op edit recompiles 1 page", `Slow, test_persistent_incremental);
    ("cache stats per kind", `Quick, test_cache_stats_per_kind);
    ("cache kinds cannot collide", `Quick, test_kind_partition_no_collision);
    ("executor: -j1 = -j4 artifacts", `Slow, test_executor_determinism);
    ("executor: -j4 beats -j1 (paced)", `Slow, test_parallel_jobs_faster);
    ("makespan model", `Quick, test_makespan);
    ("parallel <= serial", `Quick, test_o1_parallel_faster_than_serial);
    ("all levels agree functionally", `Slow, test_all_levels_agree);
    ("-O0 orders slower", `Slow, test_o0_orders_slower);
    ("-O1 between -O3 and -O0", `Slow, test_o1_between);
    ("mixed softcore/fabric run", `Slow, test_mixed_execution_matches);
    ("assign: colliding p_num pragmas", `Quick, test_assign_hint_collision);
    ("multi-frame streaming", `Quick, test_multi_frame_throughput);
    ("dma engine model", `Quick, test_dma_model);
    ("deploy -O1 to card", `Quick, test_deploy_o1);
    ("monolithic load evicts overlay", `Quick, test_deploy_monolithic_evicts_overlay);
    ("card protocol enforcement", `Quick, test_card_protocol_violation);
    ("reports render", `Quick, test_reports);
    ("fabric profile: of_run snapshot", `Quick, test_fabric_profile_of_run);
    ("fabric profile: JSON round-trip", `Quick, test_fabric_profile_json_roundtrip);
    ("fabric profile: heatmap smoke", `Quick, test_fabric_profile_heatmap_smoke);
    ("attribution agrees with perf model (rendering -O1)", `Slow, test_attribution_agrees_with_perf_model);
    ("compile-time shape (Tab. 2)", `Slow, test_compile_time_shape);
  ]
