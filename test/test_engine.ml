(* The build engine in isolation: content digests, the on-disk artifact
   store (including hostile inputs: corruption, truncation, stale
   versions), job-graph validation, the parallel executor, and the LPT
   cluster model. *)

module Digest = Pld_util.Digest_lite
module Event = Pld_engine.Event
module Store = Pld_engine.Store
module Jobgraph = Pld_engine.Jobgraph
module Executor = Pld_engine.Executor
module Makespan = Pld_engine.Makespan

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Each store test gets its own directory under the dune sandbox cwd,
   emptied up front so reruns are deterministic. *)
let fresh_dir name =
  let dir = ".test-store-" ^ name in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  dir

let entry_file dir ~kind ~key = Filename.concat dir (kind ^ "-" ^ key ^ ".art")

(* ---------- digests ---------- *)

let test_digest_framing () =
  check_bool "length framing distinguishes regroupings" false
    (Digest.equal (Digest.of_parts [ "ab"; "c" ]) (Digest.of_parts [ "a"; "bc" ]));
  check_bool "empty list vs singleton empty" false
    (Digest.equal (Digest.of_parts []) (Digest.of_parts [ "" ]));
  check_string "deterministic" (Digest.of_parts [ "x"; "y" ]) (Digest.of_parts [ "x"; "y" ])

let test_digest_is_hex () =
  check_bool "real digest" true (Digest.is_hex (Digest.of_string "hello"));
  check_bool "too short" false (Digest.is_hex "abc123");
  check_bool "uppercase rejected" false (Digest.is_hex "ABCDEF0123456789");
  check_bool "non-hex rejected" false (Digest.is_hex "ghijklmnopqrstuv")

(* ---------- store ---------- *)

let test_store_roundtrip () =
  let dir = fresh_dir "roundtrip" in
  let t = Store.open_ ~dir () in
  let key = Digest.of_string "op source" in
  Store.put t ~kind:"page" ~key [ 1; 2; 3 ];
  check_bool "mem" true (Store.mem t ~kind:"page" ~key);
  Alcotest.(check (option (list int))) "find" (Some [ 1; 2; 3 ]) (Store.find t ~kind:"page" ~key);
  check_int "one entry" 1 (Store.count t);
  (* A fresh handle on the same directory sees the entry: persistence. *)
  let t2 = Store.open_ ~dir () in
  Alcotest.(check (option (list int))) "fresh handle" (Some [ 1; 2; 3 ])
    (Store.find t2 ~kind:"page" ~key)

let test_store_kind_partition () =
  let dir = fresh_dir "kinds" in
  let t = Store.open_ ~dir () in
  let key = Digest.of_string "same inputs" in
  Store.put t ~kind:"page" ~key "bitstream";
  Store.put t ~kind:"softcore" ~key "elf image";
  check_int "two entries under one key" 2 (Store.count t);
  Alcotest.(check (option string)) "page kind" (Some "bitstream") (Store.find t ~kind:"page" ~key);
  Alcotest.(check (option string)) "softcore kind" (Some "elf image")
    (Store.find t ~kind:"softcore" ~key)

let test_store_corruption_evicted () =
  let dir = fresh_dir "corrupt" in
  let t = Store.open_ ~dir () in
  let key = Digest.of_string "victim" in
  Store.put t ~kind:"page" ~key (String.make 64 'a');
  let path = entry_file dir ~kind:"page" ~key in
  (* Flip the last payload byte; the header's payload digest no longer
     matches, so the entry must be evicted, not returned. *)
  let data = In_channel.with_open_bin path In_channel.input_all in
  let n = String.length data in
  let corrupted = String.sub data 0 (n - 1) ^ "b" in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc corrupted);
  Alcotest.(check (option string)) "miss" None (Store.find t ~kind:"page" ~key);
  check_bool "file evicted" false (Sys.file_exists path)

let test_store_truncation_evicted () =
  let dir = fresh_dir "trunc" in
  let t = Store.open_ ~dir () in
  let key = Digest.of_string "victim" in
  Store.put t ~kind:"page" ~key (String.make 64 'a');
  let path = entry_file dir ~kind:"page" ~key in
  let data = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub data 0 (String.length data - 8)));
  Alcotest.(check (option string)) "miss" None (Store.find t ~kind:"page" ~key);
  check_bool "file evicted" false (Sys.file_exists path)

let test_store_stale_version_swept () =
  let dir = fresh_dir "stale" in
  let t = Store.open_ ~dir () in
  let key = Digest.of_string "old" in
  Store.put t ~kind:"page" ~key "payload";
  (* Rewrite the header claiming a future format version. The magic +
     version prefix is part of the stable on-disk format, so spelling it
     out here is the point of the test. *)
  let path = entry_file dir ~kind:"page" ~key in
  let data = In_channel.with_open_bin path In_channel.input_all in
  let prefix = Printf.sprintf "PLD-ARTIFACT v%d" Store.version in
  check_bool "entry starts with versioned magic" true
    (String.starts_with ~prefix data);
  let stale =
    Printf.sprintf "PLD-ARTIFACT v%d" (Store.version + 1)
    ^ String.sub data (String.length prefix) (String.length data - String.length prefix)
  in
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc stale);
  (* Opening sweeps it; nothing of another version survives. *)
  let t2 = Store.open_ ~dir () in
  check_bool "swept on open" false (Sys.file_exists path);
  check_int "no entries" 0 (Store.count t2);
  ignore t

let test_store_foreign_art_swept () =
  let dir = fresh_dir "foreign" in
  ignore (Store.open_ ~dir ());
  let bogus = Filename.concat dir "page-nothexatall00.art" in
  Out_channel.with_open_bin bogus (fun oc -> Out_channel.output_string oc "garbage");
  ignore (Store.open_ ~dir ());
  check_bool "malformed name swept" false (Sys.file_exists bogus)

let test_store_clear () =
  let dir = fresh_dir "clear" in
  let t = Store.open_ ~dir () in
  Store.put t ~kind:"page" ~key:(Digest.of_string "a") 1;
  Store.put t ~kind:"mono" ~key:(Digest.of_string "b") 2;
  check_int "two entries" 2 (Store.count t);
  Store.clear t;
  check_int "cleared" 0 (Store.count t);
  check_bool "directory kept" true (Sys.is_directory dir)

let test_store_bad_names_rejected () =
  let dir = fresh_dir "names" in
  let t = Store.open_ ~dir () in
  let key = Digest.of_string "k" in
  let expect_invalid f = match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  expect_invalid (fun () -> Store.put t ~kind:"Page!" ~key 1);
  expect_invalid (fun () -> Store.put t ~kind:"" ~key 1);
  expect_invalid (fun () -> (Store.find t ~kind:"page" ~key:"not a digest" : int option))

let test_store_tmp_swept_on_open () =
  let dir = fresh_dir "tmpsweep" in
  let t = Store.open_ ~dir () in
  let key = Digest.of_string "kept" in
  Store.put t ~kind:"page" ~key "survivor";
  (* Orphans a crash mid-serialize would leave behind: a per-process
     temp next to a real entry name, and an unrelated temp. *)
  let orphan = Filename.concat dir "page-0123456789abcdef.art.4242.tmp" in
  let stray = Filename.concat dir "scratch.tmp" in
  List.iter
    (fun p -> Out_channel.with_open_bin p (fun oc -> Out_channel.output_string oc "half-written"))
    [ orphan; stray ];
  let t2 = Store.open_ ~dir () in
  check_bool "orphan temp swept" false (Sys.file_exists orphan);
  check_bool "stray temp swept" false (Sys.file_exists stray);
  Alcotest.(check (option string)) "valid entry survives the sweep" (Some "survivor")
    (Store.find t2 ~kind:"page" ~key);
  ignore t

(* ---------- store: LRU eviction ---------- *)

let k i = Digest.of_string (Printf.sprintf "key%d" i)

(* Entry file size for a given payload, measured rather than hard-coded
   so the budget arithmetic tracks the header format. *)
let entry_bytes payload =
  let t = Store.open_ ~dir:(fresh_dir "sizing") () in
  Store.put t ~kind:"page" ~key:(Digest.of_string "probe") payload;
  (Store.stats t).Store.s_bytes

let test_store_lru_eviction () =
  let payload = String.make 200 'p' in
  let e = entry_bytes payload in
  (* Budget holds exactly two same-sized entries. *)
  let t = Store.open_ ~dir:(fresh_dir "lru") ~max_bytes:((2 * e) + (e / 2)) () in
  Store.put t ~kind:"page" ~key:(k 1) payload;
  Store.put t ~kind:"page" ~key:(k 2) payload;
  check_int "both fit" 2 (Store.count t);
  (* Refresh k1, so k2 becomes the least recently used... *)
  Alcotest.(check (option string)) "hit refreshes" (Some payload)
    (Store.find t ~kind:"page" ~key:(k 1));
  (* ...and the third write evicts k2, not k1. *)
  Store.put t ~kind:"page" ~key:(k 3) payload;
  check_int "budget enforced" 2 (Store.count t);
  check_bool "least-recently-used evicted" false (Store.mem t ~kind:"page" ~key:(k 2));
  check_bool "refreshed entry survives" true (Store.mem t ~kind:"page" ~key:(k 1));
  check_bool "fresh write survives" true (Store.mem t ~kind:"page" ~key:(k 3))

let test_store_oversized_entry_kept () =
  let payload = String.make 400 'q' in
  let e = entry_bytes payload in
  (* Budget smaller than a single entry: the just-written artifact is
     never its own victim, so it parks at the budget. *)
  let t = Store.open_ ~dir:(fresh_dir "oversize") ~max_bytes:(e / 2) () in
  Store.put t ~kind:"page" ~key:(k 1) payload;
  check_int "oversized entry parked" 1 (Store.count t);
  Store.put t ~kind:"page" ~key:(k 2) payload;
  check_int "next write claims the slot" 1 (Store.count t);
  check_bool "previous entry evicted" false (Store.mem t ~kind:"page" ~key:(k 1));
  check_bool "new entry present" true (Store.mem t ~kind:"page" ~key:(k 2))

let test_store_lru_survives_reopen () =
  let payload = String.make 200 'r' in
  let e = entry_bytes payload in
  let dir = fresh_dir "lrupersist" in
  let t = Store.open_ ~dir () in
  Store.put t ~kind:"page" ~key:(k 1) payload;
  Store.put t ~kind:"page" ~key:(k 2) payload;
  (* Make k1 the most recently used; the stamp lands in store.index. *)
  check_bool "refresh hit" true (Store.mem t ~kind:"page" ~key:(k 1));
  (* A fresh handle with a one-entry budget must evict by the persisted
     order: k2 goes, the refreshed k1 stays. *)
  let t2 = Store.open_ ~dir ~max_bytes:(e + (e / 2)) () in
  check_int "one survivor" 1 (Store.count t2);
  check_bool "most-recently-used survives reopen" true (Store.mem t2 ~kind:"page" ~key:(k 1));
  check_bool "LRU victim evicted on open" false (Store.mem t2 ~kind:"page" ~key:(k 2))

let test_store_stats_and_telemetry () =
  let module T = Pld_telemetry.Telemetry in
  let tele = T.create () in
  let t = Store.open_ ~dir:(fresh_dir "stats") ~telemetry:tele () in
  Store.put t ~kind:"page" ~key:(k 1) "aaaa";
  Store.put t ~kind:"page" ~key:(k 2) "bbbb";
  Store.put t ~kind:"mono" ~key:(k 1) "cccc";
  Alcotest.(check (option string)) "hit" (Some "aaaa") (Store.find t ~kind:"page" ~key:(k 1));
  Alcotest.(check (option string)) "miss" None (Store.find t ~kind:"page" ~key:(k 9));
  let s = Store.stats t in
  check_int "entries" 3 s.Store.s_entries;
  check_bool "bytes counted" true (s.Store.s_bytes > 0);
  let of_kind kind = List.find (fun ks -> ks.Store.ks_kind = kind) s.Store.s_kinds in
  let page = of_kind "page" and mono = of_kind "mono" in
  check_int "page entries" 2 page.Store.ks_entries;
  check_int "page hits" 1 page.Store.ks_hits;
  check_int "page misses" 1 page.Store.ks_misses;
  check_int "page puts" 2 page.Store.ks_puts;
  check_int "mono puts" 1 mono.Store.ks_puts;
  check_int "mono misses" 0 mono.Store.ks_misses;
  (* The same counters land in the telemetry registry, per kind. *)
  check_int "tele page hits" 1 (T.counter_value tele "store.page.hits");
  check_int "tele page misses" 1 (T.counter_value tele "store.page.misses");
  check_int "tele page puts" 2 (T.counter_value tele "store.page.puts");
  check_int "tele mono puts" 1 (T.counter_value tele "store.mono.puts");
  Alcotest.(check (option (float 0.01))) "entries gauge" (Some 3.0)
    (T.gauge_value tele "store.entries");
  Alcotest.(check (option (float 0.01))) "bytes gauge" (Some (float_of_int s.Store.s_bytes))
    (T.gauge_value tele "store.bytes");
  (* render: one line per kind plus the totals line. *)
  check_int "render lines" 3 (List.length (Store.render_stats s))

(* ---------- store: cross-process concurrency ---------- *)

(* Two real processes hammer one directory with overlapping keys. The
   fcntl lock plus atomic temp-file renames must keep every entry
   intact: payloads encode their key, so a torn write or cross-wired
   rename shows up as a content mismatch, and a lost write as a miss. *)
let hammer_keys = 8

let hammer_payload key = "payload-for-" ^ key ^ String.make 64 'z'

let hammer_child dir rounds seed =
  let ok = ref true in
  (try
     let t = Store.open_ ~dir () in
     for i = 0 to rounds - 1 do
       let key = Digest.of_string (Printf.sprintf "shared%d" ((i + seed) mod hammer_keys)) in
       Store.put t ~kind:"page" ~key (hammer_payload key);
       match Store.find t ~kind:"page" ~key with
       | Some p when String.equal p (hammer_payload key) -> ()
       | Some _ | None -> ok := false
     done
   with _ -> ok := false);
  (* Skip at_exit (alcotest's reporters run in the parent only). *)
  if !ok then Unix._exit 0 else Unix._exit 1

let test_store_two_process_hammer () =
  let dir = fresh_dir "hammer" in
  ignore (Store.open_ ~dir ());
  let spawn seed =
    match Unix.fork () with 0 -> hammer_child dir 40 seed | pid -> pid
  in
  let pids = [ spawn 0; spawn 3 ] in
  List.iter
    (fun pid ->
      match Unix.waitpid [] pid with
      | _, Unix.WEXITED 0 -> ()
      | _, _ -> Alcotest.fail "child saw a corrupt or lost entry")
    pids;
  (* Every shared key reads back intact from a fresh handle. *)
  let t = Store.open_ ~dir () in
  check_int "all shared keys present" hammer_keys (Store.count t);
  for i = 0 to hammer_keys - 1 do
    let key = Digest.of_string (Printf.sprintf "shared%d" i) in
    Alcotest.(check (option string)) "intact" (Some (hammer_payload key))
      (Store.find t ~kind:"page" ~key)
  done

(* ---------- store: crash recovery and scrub ---------- *)

let rec rm_rf path =
  if Sys.is_directory path then (
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path)
  else Sys.remove path

(* Like [fresh_dir], but also clears store.quarantine/ left by a
   previous run. *)
let fresh_deep_dir name =
  let dir = ".test-store-" ^ name in
  if Sys.file_exists dir then rm_rf dir;
  dir

let damage_truncate path =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  let len = (Unix.fstat fd).Unix.st_size in
  Unix.ftruncate fd (len / 2);
  Unix.close fd

let damage_flip_last_byte path =
  let data = In_channel.with_open_bin path In_channel.input_all in
  let n = String.length data in
  let flipped = Char.chr (Char.code data.[n - 1] lxor 0x40) in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub data 0 (n - 1));
      Out_channel.output_char oc flipped)

let test_store_killed_mid_insert () =
  (* SIGKILL a child hammering [put]: atomic tmp+rename means the
     survivor may see a clean miss for the in-flight key, but never a
     torn entry — and a scrub must find nothing to quarantine. *)
  let dir = fresh_deep_dir "sigkill" in
  ignore (Store.open_ ~dir ());
  let anchor = Digest.of_string "anchor" in
  let payload i = Printf.sprintf "mid-%d-" i ^ String.make 2048 'x' in
  let r, w = Unix.pipe () in
  (match Unix.fork () with
  | 0 ->
      Unix.close r;
      let t = Store.open_ ~dir () in
      Store.put t ~kind:"page" ~key:anchor "anchor payload";
      ignore (Unix.write w (Bytes.of_string "!") 0 1);
      let i = ref 0 in
      while true do
        Store.put t ~kind:"page" ~key:(Digest.of_string (Printf.sprintf "mid%d" !i)) (payload !i);
        incr i
      done;
      Unix._exit 0
  | pid ->
      Unix.close w;
      (* Wait for the anchor write, let the hammer get going, then
         kill mid-stream. *)
      ignore (Unix.read r (Bytes.create 1) 0 1);
      Unix.close r;
      Unix.sleepf 0.02;
      Unix.kill pid Sys.sigkill;
      (match Unix.waitpid [] pid with
      | _, Unix.WSIGNALED s -> check_bool "child died by SIGKILL" true (s = Sys.sigkill)
      | _ -> Alcotest.fail "child exited instead of being killed"));
  let t = Store.open_ ~dir ~quarantine:true () in
  Alcotest.(check (option string)) "anchor intact" (Some "anchor payload")
    (Store.find t ~kind:"page" ~key:anchor);
  check_bool "child made progress" true (Store.count t >= 1);
  (* Every key the child may have been writing: old value or clean
     miss, never garbage. *)
  for i = 0 to 4095 do
    match (Store.find t ~kind:"page" ~key:(Digest.of_string (Printf.sprintf "mid%d" i)) : string option) with
    | Some v -> Alcotest.(check string) (Printf.sprintf "mid%d intact" i) (payload i) v
    | None -> ()
  done;
  let r = Store.scrub t in
  check_int "kill left no torn entries" 0 r.Store.sc_quarantined

let test_store_scrub_quarantines_exact_damage () =
  let module T = Pld_telemetry.Telemetry in
  let tele = T.create () in
  let dir = fresh_deep_dir "scrubunit" in
  (* Damage behind the live handle's back — a reopen would already
     sweep the invalid entries, and the point here is that scrub finds
     them on demand. *)
  let t = Store.open_ ~dir ~quarantine:true ~telemetry:tele () in
  let key i = Digest.of_string (Printf.sprintf "scrub%d" i) in
  for i = 0 to 3 do
    Store.put t ~kind:"page" ~key:(key i) (Printf.sprintf "payload %d" i)
  done;
  damage_truncate (entry_file dir ~kind:"page" ~key:(key 0));
  damage_flip_last_byte (entry_file dir ~kind:"page" ~key:(key 1));
  let r = Store.scrub t in
  check_int "all entries scanned" 4 r.Store.sc_scanned;
  check_int "survivors pass" 2 r.Store.sc_ok;
  check_int "exactly the damaged pair quarantined" 2 r.Store.sc_quarantined;
  check_int "telemetry agrees" 2 (T.counter_value tele "store.quarantined");
  check_int "evidence preserved" 2 (Array.length (Sys.readdir r.Store.sc_quarantine_dir));
  Alcotest.(check (option string)) "survivor reads" (Some "payload 2")
    (Store.find t ~kind:"page" ~key:(key 2));
  Alcotest.(check (option string)) "victim is a clean miss" None
    (Store.find t ~kind:"page" ~key:(key 0));
  check_int "count excludes quarantined" 2 (Store.count t);
  (* A second scrub finds nothing left to do. *)
  let r2 = Store.scrub t in
  check_int "scrub is idempotent" 0 r2.Store.sc_quarantined

let test_store_quarantine_mode_preserves_evidence () =
  (* In quarantine mode a corrupt entry found by [find] is moved aside
     for the post-mortem, not deleted (contrast
     [test_store_corruption_evicted]). *)
  let dir = fresh_deep_dir "evidence" in
  let t = Store.open_ ~dir ~quarantine:true () in
  let key = Digest.of_string "victim" in
  Store.put t ~kind:"page" ~key (String.make 64 'a');
  let path = entry_file dir ~kind:"page" ~key in
  damage_flip_last_byte path;
  Alcotest.(check (option string)) "miss" None (Store.find t ~kind:"page" ~key);
  check_bool "entry gone from the store" false (Sys.file_exists path);
  check_int "entry moved into quarantine" 1
    (Array.length (Sys.readdir (Store.quarantine_dir t)))

(* ---------- job graphs ---------- *)

let const_node id v = Jobgraph.node ~id ~kind:"t" (fun _ -> v)

let diamond () =
  (* d = (a+1) + (a*2): a feeds b and c, which feed d. *)
  Jobgraph.make
    [
      Jobgraph.node ~id:"a" ~kind:"t" (fun _ -> 10);
      Jobgraph.node ~id:"b" ~kind:"t" ~deps:[ "a" ] (fun ctx -> ctx.Jobgraph.fetch "a" + 1);
      Jobgraph.node ~id:"c" ~kind:"t" ~deps:[ "a" ] (fun ctx -> ctx.Jobgraph.fetch "a" * 2);
      Jobgraph.node ~id:"d" ~kind:"t" ~deps:[ "b"; "c" ] (fun ctx ->
          ctx.Jobgraph.fetch "b" + ctx.Jobgraph.fetch "c");
    ]

let test_jobgraph_order () =
  let g = diamond () in
  check_int "size" 4 (Jobgraph.size g);
  let order = List.map Jobgraph.id (Jobgraph.order g) in
  let pos x = Option.get (List.find_index (String.equal x) order) in
  check_bool "a before b" true (pos "a" < pos "b");
  check_bool "a before c" true (pos "a" < pos "c");
  check_bool "b before d" true (pos "b" < pos "d");
  check_bool "c before d" true (pos "c" < pos "d");
  Alcotest.(check (list string)) "dependents of a" [ "b"; "c" ] (Jobgraph.dependents g "a")

let expect_invalid nodes =
  match Jobgraph.make nodes with
  | _ -> Alcotest.fail "expected Jobgraph.Invalid"
  | exception Jobgraph.Invalid _ -> ()

let test_jobgraph_duplicate_id () = expect_invalid [ const_node "x" 1; const_node "x" 2 ]

let test_jobgraph_unknown_dep () =
  expect_invalid [ Jobgraph.node ~id:"x" ~kind:"t" ~deps:[ "ghost" ] (fun _ -> 1) ]

let test_jobgraph_cycle () =
  expect_invalid
    [
      Jobgraph.node ~id:"x" ~kind:"t" ~deps:[ "y" ] (fun _ -> 1);
      Jobgraph.node ~id:"y" ~kind:"t" ~deps:[ "x" ] (fun _ -> 2);
    ]

let test_fetch_non_dependency_rejected () =
  let g =
    Jobgraph.make
      [
        const_node "a" 1;
        const_node "b" 2;
        (* c depends only on a but tries to read b — an undeclared edge
           the executor must refuse (it would race under parallelism). *)
        Jobgraph.node ~id:"c" ~kind:"t" ~deps:[ "a" ] (fun ctx -> ctx.Jobgraph.fetch "b");
      ]
  in
  match Executor.run ~workers:1 g with
  | _ -> Alcotest.fail "expected Jobgraph.Invalid"
  | exception Jobgraph.Invalid _ -> ()

(* ---------- executor ---------- *)

let test_executor_sequential () =
  let r = Executor.run ~workers:1 (diamond ()) in
  Alcotest.(check (list (pair string int)))
    "artifacts in submission order"
    [ ("a", 10); ("b", 11); ("c", 20); ("d", 31) ]
    r.Executor.artifacts;
  check_int "all finished" 4 (Event.finished r.Executor.events);
  check_bool "wall measured" true (r.Executor.wall_seconds >= 0.0)

(* Parallel and sequential runs must produce identical artifacts and the
   same event multiset, modulo wall-clock/worker fields and the
   Graph_start worker count. *)
let canonical events =
  List.sort compare
    (List.filter_map
       (fun e ->
         match e with
         | Event.Graph_start _ -> None
         | e -> Some (Event.to_string (Event.strip_timing e)))
       events)

let wide_graph () =
  let leaves = List.init 8 (fun i -> Printf.sprintf "leaf%d" i) in
  Jobgraph.make
    (List.mapi (fun i id -> Jobgraph.node ~id ~kind:"t" (fun _ -> i * i)) leaves
    @ [
        Jobgraph.node ~id:"sum" ~kind:"t" ~deps:leaves (fun ctx ->
            List.fold_left (fun acc l -> acc + ctx.Jobgraph.fetch l) 0 leaves);
      ])

let test_executor_parallel_determinism () =
  let seq = Executor.run ~workers:1 (wide_graph ()) in
  let par = Executor.run ~workers:4 (wide_graph ()) in
  Alcotest.(check (list (pair string int)))
    "same artifacts" seq.Executor.artifacts par.Executor.artifacts;
  Alcotest.(check (list string)) "same events modulo wall/worker" (canonical seq.Executor.events)
    (canonical par.Executor.events);
  check_int "sum correct" 140 (List.assoc "sum" par.Executor.artifacts)

let test_executor_failure_propagates () =
  let g =
    Jobgraph.make
      [
        const_node "ok" 1;
        Jobgraph.node ~id:"bad" ~kind:"t" (fun _ -> failwith "boom");
        Jobgraph.node ~id:"after" ~kind:"t" ~deps:[ "bad" ] (fun _ -> 3);
      ]
  in
  let seen = ref [] in
  let on_event e = seen := e :: !seen in
  (match Executor.run ~workers:4 ~on_event g with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> check_string "original exception" "boom" m);
  check_bool "failure event emitted" true
    (List.exists (function Event.Job_failed { job = "bad"; _ } -> true | _ -> false) !seen)

let test_executor_pace_overlaps () =
  (* Four independent jobs, each paced to ~60 ms of modeled tool time:
     sequentially that is ~240 ms; four workers overlap the sleeps even
     on one core, because a paced job is blocked, not computing. *)
  let graph () =
    Jobgraph.make
      (List.init 4 (fun i ->
           Jobgraph.node
             ~id:(Printf.sprintf "job%d" i)
             ~kind:"t" ~model:(fun _ -> 0.06) (fun _ -> i)))
  in
  let seq = Executor.run ~workers:1 ~pace:1.0 (graph ()) in
  let par = Executor.run ~workers:4 ~pace:1.0 (graph ()) in
  check_bool
    (Printf.sprintf "sequential paced >= 0.2s (got %.3f)" seq.Executor.wall_seconds)
    true
    (seq.Executor.wall_seconds >= 0.2);
  check_bool
    (Printf.sprintf "parallel beats sequential (%.3f < %.3f)" par.Executor.wall_seconds
       seq.Executor.wall_seconds)
    true
    (par.Executor.wall_seconds < seq.Executor.wall_seconds)

(* ---------- event aggregation ---------- *)

let test_event_by_kind () =
  let events =
    [
      Event.Cache_hit { job = "op:a"; kind = "page"; source = Event.Disk };
      Event.Job_finish
        { job = "op:a"; kind = "page"; worker = 0; wall_seconds = 0.0; model_seconds = 0.0; phases = [] };
      Event.Job_finish
        { job = "op:b"; kind = "page"; worker = 0; wall_seconds = 0.1; model_seconds = 9.0; phases = [] };
      Event.Job_finish
        { job = "hls:x"; kind = "hls"; worker = 0; wall_seconds = 0.0; model_seconds = 0.0; phases = [] };
    ]
  in
  Alcotest.(check (list (triple string int int)))
    "hits/misses per kind"
    [ ("page", 1, 1); ("hls", 0, 1) ]
    (Event.by_kind events);
  check_int "hits" 1 (Event.cache_hits events);
  check_int "finished" 3 (Event.finished events)

let test_event_phase_totals () =
  let finish phases =
    Event.Job_finish
      { job = "j"; kind = "t"; worker = 0; wall_seconds = 0.0; model_seconds = 0.0; phases }
  in
  Alcotest.(check (list (pair string (float 1e-9))))
    "summed in first-appearance order"
    [ ("syn", 3.0); ("pnr", 5.0) ]
    (Event.phase_totals [ finish [ ("syn", 1.0); ("pnr", 5.0) ]; finish [ ("syn", 2.0) ] ])

(* ---------- makespan ---------- *)

let test_lpt_known_values () =
  Alcotest.(check (float 1e-9)) "three workers" 3.0 (Makespan.lpt ~workers:3 [ 3.0; 2.0; 1.0 ]);
  Alcotest.(check (float 1e-9)) "serial" 6.0 (Makespan.lpt ~workers:1 [ 3.0; 2.0; 1.0 ]);
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Makespan.lpt ~workers:4 []);
  match Makespan.lpt ~workers:0 [ 1.0 ] with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let prop_lpt_bounds =
  QCheck.Test.make ~name:"LPT: max duration <= makespan <= serial sum; workers=1 is serial"
    ~count:200
    QCheck.(pair (int_range 1 8) (list_of_size (Gen.int_range 0 12) (float_range 0.0 100.0)))
    (fun (workers, durations) ->
      let m = Makespan.lpt ~workers durations in
      let sum = List.fold_left ( +. ) 0.0 durations in
      let longest = List.fold_left Float.max 0.0 durations in
      let eps = 1e-6 in
      m >= longest -. eps && m <= sum +. eps
      && abs_float (Makespan.lpt ~workers:1 durations -. sum) <= eps)

let suite =
  [
    ("digest: length framing", `Quick, test_digest_framing);
    ("digest: is_hex", `Quick, test_digest_is_hex);
    ("store: roundtrip + fresh handle", `Quick, test_store_roundtrip);
    ("store: kinds partition the namespace", `Quick, test_store_kind_partition);
    ("store: corrupt payload evicted", `Quick, test_store_corruption_evicted);
    ("store: truncated entry evicted", `Quick, test_store_truncation_evicted);
    ("store: stale version swept on open", `Quick, test_store_stale_version_swept);
    ("store: malformed filename swept", `Quick, test_store_foreign_art_swept);
    ("store: clear", `Quick, test_store_clear);
    ("store: bad kind/key rejected", `Quick, test_store_bad_names_rejected);
    ("store: orphaned temp files swept on open", `Quick, test_store_tmp_swept_on_open);
    ("store: LRU eviction at a tight budget", `Quick, test_store_lru_eviction);
    ("store: oversized entry is never its own victim", `Quick, test_store_oversized_entry_kept);
    ("store: LRU order survives reopen", `Quick, test_store_lru_survives_reopen);
    ("store: stats and telemetry counters", `Quick, test_store_stats_and_telemetry);
    ("store: two processes share one directory", `Slow, test_store_two_process_hammer);
    (* The forked tests must precede every domain-spawning test in the
       whole binary: OCaml 5 forbids Unix.fork once any domain was
       ever created (see lib/service/chaos.mli, forked_names). *)
    ("store: SIGKILL mid-insert leaves no torn entry", `Slow, test_store_killed_mid_insert);
    ("store: scrub quarantines exactly the damage", `Quick, test_store_scrub_quarantines_exact_damage);
    ("store: quarantine mode preserves evidence", `Quick, test_store_quarantine_mode_preserves_evidence);
    ("jobgraph: topological order", `Quick, test_jobgraph_order);
    ("jobgraph: duplicate id rejected", `Quick, test_jobgraph_duplicate_id);
    ("jobgraph: unknown dep rejected", `Quick, test_jobgraph_unknown_dep);
    ("jobgraph: cycle rejected", `Quick, test_jobgraph_cycle);
    ("executor: undeclared fetch rejected", `Quick, test_fetch_non_dependency_rejected);
    ("executor: sequential run", `Quick, test_executor_sequential);
    ("executor: parallel = sequential", `Quick, test_executor_parallel_determinism);
    ("executor: failure propagates", `Quick, test_executor_failure_propagates);
    ("executor: paced jobs overlap", `Slow, test_executor_pace_overlaps);
    ("events: by_kind hits/misses", `Quick, test_event_by_kind);
    ("events: phase totals", `Quick, test_event_phase_totals);
    ("makespan: known values", `Quick, test_lpt_known_values);
    QCheck_alcotest.to_alcotest prop_lpt_bounds;
  ]
