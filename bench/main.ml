(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7) on the simulated substrate, plus the ablations called
   out in DESIGN.md.

     dune exec bench/main.exe              -- everything
     dune exec bench/main.exe table2 fig9  -- selected experiments

   Absolute numbers are not comparable to the paper (its backend is
   Vivado on a physical U50; ours is a scaled simulator) — the shapes
   (who wins, by what factor, where the bottleneck sits) are. *)

open Pld_rosetta
module B = Pld_core.Build
module R = Pld_core.Runner
module Baseline = Pld_insight.Baseline
module Sentinel = Pld_insight.Sentinel
module Fp = Pld_fabric.Floorplan
module N = Pld_netlist.Netlist
module Table = Pld_util.Table
module T = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json

let fp = Fp.u50 ()
let hw = Pld_ir.Graph.Hw { page_hint = None }

let section title =
  print_string (T.render_section title);
  flush stdout

(* One shared cache so repeated builds across experiments are free. *)
let cache = B.create_cache ()

let compile b level = B.compile ~cache fp (b.Suite.graph hw) ~level

type bench_results = {
  bench : Suite.bench;
  apps : (B.level * B.app) list;
  runs : (B.level * R.result) list;
  host_seconds : float;
  ok : bool;
}

let results : (string, bench_results) Hashtbl.t = Hashtbl.create 8

let evaluate (b : Suite.bench) =
  match Hashtbl.find_opt results b.Suite.name with
  | Some r -> r
  | None ->
      let inputs = b.Suite.workload () in
      let levels = [ B.Vitis; B.O3; B.O1; B.O0 ] in
      let apps = List.map (fun l -> (l, compile b l)) levels in
      let runs = List.map (fun (l, app) -> (l, R.run app ~inputs)) apps in
      let _, host_seconds = R.run_host (b.Suite.graph hw) ~inputs in
      let ok =
        List.for_all (fun ((_ : B.level), (r : R.result)) -> b.Suite.check ~inputs r.R.outputs) runs
      in
      let r = { bench = b; apps; runs; host_seconds; ok } in
      Hashtbl.replace results b.Suite.name r;
      r

let total_of level (app : B.app) =
  match level with
  | B.O0 | B.O1 -> app.B.report.B.parallel_seconds
  | B.O3 | B.Vitis -> app.B.report.B.serial_seconds

(* ---------- Table 1 / Fig 8 ---------- *)

let table1 () =
  section "Table 1: page resource distribution (scaled XCU50 model)";
  let rows =
    List.map
      (fun (ty, (cap : N.res), count) ->
        [
          Printf.sprintf "Type-%d" ty;
          string_of_int cap.N.luts;
          string_of_int cap.N.ffs;
          string_of_int cap.N.brams;
          string_of_int cap.N.dsps;
          string_of_int count;
        ])
      (Fp.type_summary fp)
  in
  print_endline
    (Table.render
       ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right; Table.Right ]
       ~header:[ "Page Type"; "LUTs"; "FFs"; "BRAM18s"; "DSPs"; "Number" ]
       rows);
  let r = Pld_fabric.Device.total_user_resources fp.Fp.device in
  Printf.printf
    "available to developers: %d LUTs, %d BRAM18, %d DSPs (paper, full scale: 751793 / 2300 / 5936)\n"
    r.N.luts r.N.brams r.N.dsps;
  section "Fig 8: physical layout floorplan (pages a-v, S=shell, H=HBM)";
  print_endline (Fp.render fp)

(* ---------- Table 2 ---------- *)

let table2 () =
  section "Table 2: compile time in seconds (measured on this machine)";
  let header = [ "Benchmark"; "flow"; "hls"; "syn"; "p&r"; "bit"; "overhead"; "total" ] in
  let rows =
    List.concat_map
      (fun b ->
        let r = evaluate b in
        List.map
          (fun (level, (app : B.app)) ->
            let p = app.B.report.B.phases in
            [
              r.bench.Suite.paper_name;
              B.level_name level;
              Printf.sprintf "%.2f" p.Pld_core.Flow.hls;
              Printf.sprintf "%.2f" p.Pld_core.Flow.syn;
              Printf.sprintf "%.2f" p.Pld_core.Flow.pnr;
              Printf.sprintf "%.2f" p.Pld_core.Flow.bitgen;
              Printf.sprintf "%.2f" p.Pld_core.Flow.overhead;
              Printf.sprintf "%.2f" (total_of level app);
            ])
          r.apps)
      Suite.all
  in
  print_endline (Table.render ~header rows);
  print_endline "paper shape: Vitis/-O3 1-2 hours; -O1 10-20 minutes (4.2-7.3x); -O0 seconds.";
  (* Speedup ratios live in the metrics registry (a gauge per bench, a
     histogram for the suite-wide spread) and are rendered from it. *)
  let spread = T.histogram T.default "bench.table2.o3_o1_speedup" in
  List.iter
    (fun b ->
      let r = evaluate b in
      let total level = total_of level (List.assoc level r.apps) in
      let set metric v =
        T.set_gauge (T.gauge T.default (Printf.sprintf "bench.table2.%s.%s" b.Suite.name metric)) v
      in
      set "o3_o1_speedup" (total B.O3 /. total B.O1);
      set "o1_o0_ratio" (total B.O1 /. total B.O0);
      T.observe spread (total B.O3 /. total B.O1))
    Suite.all;
  List.iter
    (fun b ->
      List.iter
        (fun metric ->
          Option.iter
            (fun line -> print_endline ("  " ^ line))
            (T.render_metric T.default (Printf.sprintf "bench.table2.%s.%s" b.Suite.name metric)))
        [ "o3_o1_speedup"; "o1_o0_ratio" ])
    Suite.all;
  Printf.printf "  -O3/-O1 speedup across the suite: %s\n"
    (T.render_summary T.default "bench.table2.o3_o1_speedup")

(* ---------- Fig 9 ---------- *)

let fig9 () =
  section "Fig 9: distribution of per-operator -O1 mapping times (seconds)";
  (* Per-op mapping times go through the metrics registry; the printed
     summary and bars are rendered from it, not from an ad-hoc list. *)
  List.iter
    (fun b ->
      let r = evaluate b in
      let app = List.assoc B.O1 r.apps in
      let times = List.filter (fun t -> t > 0.0) (List.map snd app.B.report.B.per_op_seconds) in
      if times <> [] then begin
        let name = "bench.o1_op_seconds." ^ b.Suite.name in
        let h = T.histogram T.default name in
        List.iter (T.observe h) times;
        Printf.printf "%-18s %s\n" b.Suite.paper_name (T.render_summary T.default name);
        List.iter print_endline (T.render_histogram ~bins:6 T.default name)
      end
      else print_endline (b.Suite.paper_name ^ "  (all from cache this run)"))
    Suite.all;
  print_endline
    "paper shape: per-page compiles spread 600-1200 s with a tail; the worst page sets -O1 wall time."

(* ---------- Table 3 ---------- *)

let ms_str ms =
  if ms >= 1000.0 then Printf.sprintf "%.1f s" (ms /. 1000.0)
  else if ms >= 1.0 then Printf.sprintf "%.2f ms" ms
  else Printf.sprintf "%.0f us" (ms *. 1000.0)

let table3 () =
  section "Table 3: performance (Fmax and time per input frame)";
  let header = [ "Benchmark"; "Vitis"; "-O3"; "-O1"; "-O0"; "X86 host"; "Vitis Emu (modeled)" ] in
  let rows =
    List.map
      (fun b ->
        let r = evaluate b in
        let cell level =
          let run = List.assoc level r.runs in
          Printf.sprintf "%.0fMHz %s" run.R.perf.R.fmax_mhz (ms_str run.R.perf.R.ms_per_input)
        in
        [
          b.Suite.paper_name;
          cell B.Vitis;
          cell B.O3;
          cell B.O1;
          cell B.O0;
          ms_str (r.host_seconds *. 1000.0);
          ms_str (r.host_seconds *. 1000.0 *. R.emulation_slowdown);
        ])
      Suite.all
  in
  print_endline (Table.render ~header rows);
  (* Slowdowns and check verdicts also go through the registry and are
     rendered from it; the counter equals the suite size when all
     functional checks pass. *)
  let checks_ok = T.counter T.default "bench.table3.checks_ok" in
  List.iter
    (fun b ->
      let r = evaluate b in
      let ms level = (List.assoc level r.runs).R.perf.R.ms_per_input in
      let set metric v =
        T.set_gauge (T.gauge T.default (Printf.sprintf "bench.table3.%s.%s" b.Suite.name metric)) v
      in
      set "o1_o3_slowdown" (ms B.O1 /. ms B.O3);
      set "o0_o3_slowdown" (ms B.O0 /. ms B.O3);
      if r.ok then T.incr checks_ok)
    Suite.all;
  List.iter
    (fun b ->
      List.iter
        (fun metric ->
          Option.iter
            (fun line -> print_endline ("  " ^ line))
            (T.render_metric T.default (Printf.sprintf "bench.table3.%s.%s" b.Suite.name metric)))
        [ "o1_o3_slowdown"; "o0_o3_slowdown" ])
    Suite.all;
  Option.iter
    (fun line -> print_endline ("  " ^ line))
    (T.render_metric T.default "bench.table3.checks_ok");
  print_endline
    "paper shape: -O3 comparable to Vitis (sometimes faster); -O1 1.5-10x slower; -O0 3-5 orders slower."

(* ---------- Table 4 ---------- *)

let table4 () =
  section "Table 4: area consumption";
  let header = [ "Benchmark"; "flow"; "LUT"; "BRAM18"; "DSP"; "pages" ] in
  let rows =
    List.concat_map
      (fun b ->
        let r = evaluate b in
        List.map
          (fun (level, app) ->
            match Pld_core.Report.area_row app with
            | _ :: rest -> r.bench.Suite.paper_name :: B.level_name level :: rest
            | [] -> [])
          r.apps)
      Suite.all
  in
  print_endline (Table.render ~header rows);
  print_endline
    "paper shape: -O3 > Vitis (stitching FIFOs), -O1 > -O3 (leaf interfaces); -O0 charges a full softcore per page."

(* ---------- Fig 10 ---------- *)

let fig10 () =
  section
    "Fig 10: speedup with ONE operator on a softcore (-O0) and the rest on pages (-O1), vs all--O0";
  List.iter
    (fun b ->
      let inputs = b.Suite.workload () in
      let all_o0 = R.run (compile b B.O0) ~inputs in
      let base_ms = all_o0.R.perf.R.ms_per_input in
      let g = b.Suite.graph hw in
      let name = "bench.fig10_speedup." ^ b.Suite.name in
      let h = T.histogram T.default name in
      List.iter
        (fun (i : Pld_ir.Graph.instance) ->
          let mixed = Pld_ir.Graph.retarget g i.inst_name Pld_ir.Graph.Riscv in
          let app = B.compile ~cache fp mixed ~level:B.O1 in
          let r = R.run app ~inputs in
          T.observe h (base_ms /. r.R.perf.R.ms_per_input))
        g.Pld_ir.Graph.instances;
      Printf.printf "%-18s speedup over all--O0: %s\n%!" b.Suite.paper_name
        (T.render_summary T.default name))
    Suite.all;
  print_endline
    "paper shape: ~1x when the softcore operator is the bottleneck, approaching the all--O1 gain otherwise."

(* ---------- Fig 11 ---------- *)

let fig11 () =
  section "Fig 11: performance vs compile time (normalized to the Vitis flow; log-log in the paper)";
  let header = [ "Benchmark"; "flow"; "compile s"; "norm perf" ] in
  let rows =
    List.concat_map
      (fun b ->
        let r = evaluate b in
        let vitis_ms = (List.assoc B.Vitis r.runs).R.perf.R.ms_per_input in
        List.map
          (fun (level, (app : B.app)) ->
            let run = List.assoc level r.runs in
            [
              b.Suite.paper_name;
              B.level_name level;
              Printf.sprintf "%.2f" (total_of level app);
              Printf.sprintf "%.3g" (vitis_ms /. run.R.perf.R.ms_per_input);
            ])
          r.apps)
      Suite.all
  in
  print_endline (Table.render ~header rows);
  print_endline "paper shape: three clusters — seconds @ ~1e-4, minutes @ ~1e-1, hours @ 1."

(* ---------- Eq 1 ablation: page-size sweep ---------- *)

let eq1 () =
  section "Eq 1 ablation: page size vs efficiency (optical flow operator set)";
  let g = (Suite.find "optical").Suite.graph hw in
  let areas =
    List.map
      (fun (i : Pld_ir.Graph.instance) ->
        (N.total_res (Pld_hls.Hls_compile.compile i.op).Pld_hls.Hls_compile.netlist).N.luts)
      g.Pld_ir.Graph.instances
  in
  let leaf = Pld_core.Assign.leaf_interface_res.N.luts in
  let link_per_endpoint = 31 in
  let header = [ "page LUTs"; "pages used"; "efficiency" ] in
  let rows =
    List.map
      (fun page_luts ->
        if List.exists (fun a -> a + leaf > page_luts) areas then
          [ string_of_int page_luts; "-"; "does not fit: decompose operators" ]
        else begin
          let pages = ref [] in
          List.iter
            (fun a ->
              let need = a + leaf in
              match List.find_opt (fun r -> !r + need <= page_luts) !pages with
              | Some r -> r := !r + need
              | None -> pages := ref need :: !pages)
            areas;
          let used = List.length !pages in
          let eff =
            float_of_int (List.fold_left ( + ) 0 areas)
            /. float_of_int (used * (page_luts + link_per_endpoint + leaf))
          in
          [ string_of_int page_luts; string_of_int used; Printf.sprintf "%.2f" eff ]
        end)
      [ 256; 512; 1024; 1344; 2048; 4096 ]
  in
  print_endline (Table.render ~header rows);
  print_endline
    "paper: ~18k-LUT pages give ~95% efficiency before fragmentation; tiny pages pay leaf+link overhead, huge pages fragment."

(* ---------- NoC payload-width sweep ---------- *)

let noc_sweep () =
  section "Ablation: linking-network payload width vs -O1 frame time (optical flow)";
  let b = Suite.find "optical" in
  let inputs = b.Suite.workload () in
  let app = compile b B.O1 in
  let base = Pld_kpn.Run_graph.run (b.Suite.graph hw) ~inputs in
  let links = R.noc_links app base.Pld_kpn.Run_graph.channel_stats in
  let header = [ "payload bits"; "NoC drain cycles"; "frame ms @200MHz" ] in
  let rows =
    List.map
      (fun width ->
        let scale tokens = ((tokens * 32) + width - 1) / width in
        let scaled =
          List.filter_map
            (fun (l : Pld_noc.Traffic.link) ->
              if l.Pld_noc.Traffic.tokens = 0 || l.Pld_noc.Traffic.src_leaf = l.Pld_noc.Traffic.dst_leaf
              then None
              else Some { l with Pld_noc.Traffic.tokens = scale l.Pld_noc.Traffic.tokens })
            links
        in
        let net = Pld_noc.Bft.create ~leaves:32 () in
        let r = Pld_noc.Traffic.replay net scaled in
        [
          string_of_int width;
          string_of_int r.Pld_noc.Traffic.cycles;
          Printf.sprintf "%.3f" (float_of_int r.Pld_noc.Traffic.cycles /. 200_000.0);
        ])
      [ 16; 32; 64; 128 ]
  in
  print_endline (Table.render ~header rows);
  print_endline "wider links trade overlay area for -O1 bandwidth (the design space of §4.3)."

(* ---------- incremental recompile ---------- *)

let incremental () =
  section "Ablation: incremental recompilation (edit one operator of optical flow)";
  (* A persistent content-addressed store; each build opens a fresh cache
     handle on the same directory, i.e. simulates a fresh pldc process
     finding the previous run's artifacts on disk. *)
  let dir = ".pld-bench-cache" in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let b = Suite.find "optical" in
  let g = b.Suite.graph hw in
  let full = B.compile ~cache:(B.create_cache ~dir ()) fp g ~level:B.O1 in
  Printf.printf "cold build:    %d ops compiled, cluster wall %.2fs (model), measured %.4fs [%s]\n"
    full.B.report.B.recompiled full.B.report.B.parallel_seconds full.B.report.B.wall_seconds
    (Pld_core.Report.cache_summary full.B.report);
  let noop = B.compile ~cache:(B.create_cache ~dir ()) fp g ~level:B.O1 in
  Printf.printf "fresh process: %d ops compiled, measured %.4fs (%d cache hits, all from disk) [%s]\n"
    noop.B.report.B.recompiled noop.B.report.B.wall_seconds noop.B.report.B.cache_hits
    (Pld_core.Report.cache_summary noop.B.report);
  (* Edit flow_calc: add a debug printf — source hash changes. *)
  let edited =
    {
      g with
      Pld_ir.Graph.instances =
        List.map
          (fun (i : Pld_ir.Graph.instance) ->
            if i.inst_name = "flow_calc" then
              { i with op = { i.op with Pld_ir.Op.body = i.op.Pld_ir.Op.body @ [ Pld_ir.Op.Printf ("frame done", []) ] } }
            else i)
          g.Pld_ir.Graph.instances;
    }
  in
  let inc = B.compile ~cache:(B.create_cache ~dir ()) fp edited ~level:B.O1 in
  Printf.printf
    "edit one op:   %d op compiled, cluster wall %.2fs (%d cache hits) [%s] -- the edit-compile-debug loop of §6\n"
    inc.B.report.B.recompiled inc.B.report.B.parallel_seconds inc.B.report.B.cache_hits
    (Pld_core.Report.cache_summary inc.B.report);
  (* -O3 has no per-operator cache to hide behind: the monolithic P&R
     reruns on any edit. Delta P&R is what keeps the edit loop fast
     there — recompile each benchmark after a one-operator touch,
     seeding placement and routing with the previous build. *)
  section "Delta P&R: recompile after a one-operator edit at -O3";
  let pnr_seconds (app : B.app) =
    let p = (B.monolithic_exn app).Pld_core.Flow.pnr3 in
    p.Pld_pnr.Pnr.place_seconds +. p.Pld_pnr.Pnr.route_seconds +. p.Pld_pnr.Pnr.sta_seconds
  in
  let header =
    [ "benchmark"; "scratch pnr"; "delta pnr"; "speedup"; "kept/moved"; "rerouted"; "path" ]
  in
  let rows =
    List.map
      (fun (b : Suite.bench) ->
        let g = b.Suite.graph hw in
        let scratch = B.compile ~cache:(B.create_cache ()) fp g ~level:B.O3 in
        let victim = (List.hd g.Pld_ir.Graph.instances).Pld_ir.Graph.inst_name in
        let edited = Option.get (Pld_ir.Graph.touch_op g victim) in
        let delta = B.compile ~cache:(B.create_cache ()) ~previous:scratch fp edited ~level:B.O3 in
        let ss = pnr_seconds scratch and ds = pnr_seconds delta in
        let stats = (B.monolithic_exn delta).Pld_core.Flow.pnr3.Pld_pnr.Pnr.delta in
        let kept, moved, rerouted, path =
          match stats with
          | Some d -> (
              ( d.Pld_pnr.Pnr.cells_kept,
                d.Pld_pnr.Pnr.cells_moved,
                d.Pld_pnr.Pnr.nets_rerouted,
                match d.Pld_pnr.Pnr.fallback with
                | None -> "delta"
                | Some r -> "scratch (" ^ r ^ ")" ))
          | None -> (0, 0, 0, "scratch")
        in
        [
          b.Suite.name;
          Printf.sprintf "%.3fs" ss;
          Printf.sprintf "%.3fs" ds;
          Printf.sprintf "%.1fx" (ss /. Float.max 1e-9 ds);
          Printf.sprintf "%d/%d" kept moved;
          string_of_int rerouted;
          path;
        ])
      Suite.all
  in
  print_endline (Table.render ~header rows);
  print_endline
    "touching one operator reuses the previous placement and reroutes only the ripped-up nets."

(* ---------- executor parallelism ---------- *)

let executor () =
  section "Ablation: executor worker domains (-j) on a cold 6-operator -O1 compile";
  let b = Suite.find "spam" in
  let g = b.Suite.graph hw in
  (* Pace the jobs so each sleeps off its modeled backend-tool time (a stand-in
     for blocking on a vendor p&r invocation); scaled so -j1 takes ~1 s. *)
  let probe = B.compile ~cache:(B.create_cache ()) fp g ~level:B.O1 in
  let pace = 1.0 /. Float.max 1e-6 probe.B.report.B.serial_seconds in
  (* Per-width wall clocks are registry gauges rendered back out, so
     the ablation's numbers land in --metrics-out exports too. *)
  List.iter
    (fun jobs ->
      let app = B.compile ~cache:(B.create_cache ()) ~jobs ~pace fp g ~level:B.O1 in
      let name = Printf.sprintf "bench.executor.j%d.wall_seconds" jobs in
      T.set_gauge (T.gauge T.default name) app.B.report.B.wall_seconds;
      Printf.printf "  (model: serial %.2fs, 22-worker cluster %.2fs)\n"
        app.B.report.B.serial_seconds app.B.report.B.parallel_seconds;
      Option.iter (fun line -> print_endline ("  " ^ line)) (T.render_metric T.default name))
    [ 1; 2; 4 ];
  print_endline
    "while a job waits on its (modeled) backend tool the domain sleeps, so extra jobs overlap the waits."

(* ---------- DFX load / link costs ---------- *)

let loading () =
  section "Ablation: bitstream load and link costs (optical flow)";
  let card = Pld_platform.Card.create () in
  let app = compile (Suite.find "optical") B.O1 in
  print_endline (Pld_core.Loader.describe_artifacts app);
  let seconds = (Pld_core.Loader.deploy card app).Pld_core.Loader.seconds in
  Printf.printf
    "total load+link: %.4f s (partial bitstreams are KB-scale; linking is a few packets per page)\n"
    seconds;
  let mono = compile (Suite.find "optical") B.O3 in
  let card2 = Pld_platform.Card.create () in
  let s2 = (Pld_core.Loader.deploy card2 mono).Pld_core.Loader.seconds in
  Printf.printf "monolithic kernel load: %.4f s\n" s2

(* ---------- fault recovery ---------- *)

let recovery () =
  section "Ablation: fault recovery - relink onto a spare page vs a full recompile (optical flow)";
  let b = Suite.find "optical" in
  let app = compile b B.O1 in
  (* Mark the first placed page defective: every load of it garbles,
     so the deploy must retry, give up, and relink onto a spare. *)
  let victim_inst, victim_page = List.hd app.B.assignment in
  let spec = { Pld_faults.Fault.empty with Pld_faults.Fault.defective_pages = [ victim_page ] } in
  let faults = Pld_faults.Fault.create ~seed:7 spec in
  let card = Pld_platform.Card.create ~faults () in
  let dr = Pld_core.Loader.deploy ~faults card app in
  List.iter print_endline (Pld_core.Report.recovery_lines dr);
  let recovery_seconds = dr.Pld_core.Loader.seconds in
  let clean_card = Pld_platform.Card.create () in
  let clean = Pld_core.Loader.deploy clean_card app in
  let rebuild = B.compile ~cache:(B.create_cache ()) fp (b.Suite.graph hw) ~level:B.O1 in
  let mono = compile b B.O3 in
  Printf.printf
    "%-34s %10.4f s\n%-34s %10.4f s\n%-34s %10.4f s\n%-34s %10.4f s\n"
    "fault-free deploy" clean.Pld_core.Loader.seconds
    (Printf.sprintf "recovery deploy (%s: %d -> %d)" victim_inst victim_page
       (List.assoc victim_inst dr.Pld_core.Loader.app.B.assignment))
    recovery_seconds "cold -O1 recompile (cluster)" rebuild.B.report.B.parallel_seconds
    "-O3 monolithic recompile" mono.B.report.B.serial_seconds;
  Printf.printf
    "-> recovery pays one page-scoped relink (about the -O1 critical path, HLS reused) on the \
     deploy clock - not the %0.1fx costlier monolithic rebuild a fixed-function flow would need\n"
    (mono.B.report.B.serial_seconds /. Float.max 1e-9 recovery_seconds)

(* ---------- future work: overlay processor menu ---------- *)

let softcore_sweep () =
  section "Future-work ablation (Sec 9): softcore overlay menu (-O0 on PicoRV32 vs a pipelined core)";
  let b = Suite.find "spam" in
  let g = b.Suite.graph hw in
  let inputs = b.Suite.workload () in
  Printf.printf "%-12s %-14s %-12s %s\n" "profile" "worst cycles" "ms/frame" "check";
  (* Whole-app co-simulation per profile via a local Network. *)
  let run_profile profile =
    let app = B.compile ~cache fp g ~level:B.O0 in
    let net = Pld_kpn.Network.create () in
    let channels = Hashtbl.create 16 in
    List.iter
      (fun (c : Pld_ir.Graph.channel) ->
        let capacity = if List.mem c.Pld_ir.Graph.chan_name g.Pld_ir.Graph.outputs then max_int else c.Pld_ir.Graph.depth in
        Hashtbl.replace channels c.Pld_ir.Graph.chan_name
          (Pld_kpn.Network.channel net ~capacity ~name:c.Pld_ir.Graph.chan_name c.Pld_ir.Graph.elem))
      g.Pld_ir.Graph.channels;
    let chan name = Hashtbl.find channels name in
    List.iter (fun (name, values) -> List.iter (Pld_kpn.Network.push (chan name)) values) inputs;
    let cores = ref [] in
    List.iter
      (fun (inst, compiled) ->
        match compiled with
        | B.Soft_page (s : Pld_core.Flow.o0_operator) ->
            let i = Pld_core.Flow.find_instance_exn ~context:"bench.softcore_sweep" g inst in
            let in_chans = List.map (fun (p : Pld_ir.Op.port) -> chan (List.assoc p.Pld_ir.Op.port_name i.Pld_ir.Graph.bindings)) s.Pld_core.Flow.op0.Pld_ir.Op.inputs in
            let out_chans = List.map (fun (p : Pld_ir.Op.port) -> chan (List.assoc p.Pld_ir.Op.port_name i.Pld_ir.Graph.bindings)) s.Pld_core.Flow.op0.Pld_ir.Op.outputs in
            let cpu =
              Pld_riscv.Softcore.boot ~profile s.Pld_core.Flow.program
                ~stream_read:(fun port ->
                  match Pld_kpn.Network.try_read (List.nth in_chans port) with
                  | Some v -> Some (Int32.of_int (Pld_ir.Value.to_int (Pld_ir.Value.bitcast Pld_ir.Dtype.word v)))
                  | None -> None)
                ~stream_write:(fun port w ->
                  Pld_kpn.Network.try_write (List.nth out_chans port)
                    (Pld_ir.Value.of_int Pld_ir.Dtype.word (Int32.to_int w land 0xFFFFFFFF)))
            in
            cores := (inst, cpu) :: !cores;
            Pld_kpn.Network.add_process net ~name:inst (fun () ->
                let rec go () =
                  match Pld_riscv.Cpu.run ~max_cycles:(cpu.Pld_riscv.Cpu.cycles + 50_000) cpu with
                  | Pld_riscv.Cpu.Halted -> ()
                  | Pld_riscv.Cpu.Stalled -> Pld_kpn.Network.yield (); go ()
                  | Pld_riscv.Cpu.Running -> Pld_kpn.Network.note_progress net; Pld_kpn.Network.yield (); go ()
                  | Pld_riscv.Cpu.Trapped tr -> failwith (Pld_riscv.Cpu.describe_trap tr)
                in
                go ())
        | B.Hw_page _ -> ())
      app.B.operators;
    Pld_kpn.Network.run net;
    let outputs = List.map (fun name -> (name, Pld_kpn.Network.drain (chan name))) g.Pld_ir.Graph.outputs in
    let worst = List.fold_left (fun acc (_, cpu) -> max acc cpu.Pld_riscv.Cpu.cycles) 0 !cores in
    (worst, b.Suite.check ~inputs outputs)
  in
  List.iter
    (fun profile ->
      let worst, ok = run_profile profile in
      Printf.printf "%-12s %-14d %-12.4f %b\n" profile.Pld_riscv.Cpu.profile_name worst
        (float_of_int worst /. 200_000.0) ok)
    [ Pld_riscv.Cpu.picorv32; Pld_riscv.Cpu.pipelined ];
  print_endline
    "the paper (Sec 7.4): \"performance can easily be improved by replacing [the PicoRV] with a higher frequency, pipelined softcore\"."

(* ---------- future work: dedicated-wire linking ---------- *)

let linking_alt () =
  section "Future-work ablation (Sec 7.5/9): BFT packet linking vs dedicated wires (Relay Station)";
  let b = Suite.find "optical" in
  let inputs = b.Suite.workload () in
  let app = compile b B.O1 in
  let fr = Pld_kpn.Run_graph.run (b.Suite.graph hw) ~inputs in
  let links = R.noc_links app fr.Pld_kpn.Run_graph.channel_stats in
  let active = List.filter (fun (l : Pld_noc.Traffic.link) -> l.Pld_noc.Traffic.tokens > 0 && l.Pld_noc.Traffic.src_leaf <> l.Pld_noc.Traffic.dst_leaf) links in
  let net = Pld_noc.Bft.create ~leaves:(Pld_core.Flow.noc_leaves fp) () in
  let bft_cfg = Pld_noc.Traffic.config_cycles net active in
  let bft = Pld_noc.Traffic.replay net active in
  let relay = Pld_noc.Relay.replay fp links in
  Printf.printf "BFT packet network:  %d cycles/frame, link = %d cycles of config packets, overlay reused as-is\n"
    bft.Pld_noc.Traffic.cycles bft_cfg;
  Printf.printf "%s\n" (Pld_noc.Relay.describe relay);
  Printf.printf "-> dedicated wires are %.1fx faster per frame but turn re-linking into a %0.2f s compile\n"
    (float_of_int bft.Pld_noc.Traffic.cycles /. float_of_int (max 1 relay.Pld_noc.Relay.cycles))
    relay.Pld_noc.Relay.relink_seconds

(* ---------- design-size scaling ---------- *)

let scaling () =
  section "Ablation (Sec 2.2/4.1): compile time vs design size - monolithic grows super-linearly, -O1 stays flat";
  let u32 = Pld_ir.Dtype.word in
  let stage name n =
    Pld_ir.Op.make ~name ~inputs:[ Pld_ir.Op.word_port "in" ] ~outputs:[ Pld_ir.Op.word_port "out" ]
      ~locals:[ Pld_ir.Op.scalar "x" (Pld_ir.Dtype.SInt 32); Pld_ir.Op.scalar "y" (Pld_ir.Dtype.SInt 32) ]
      [
        Pld_ir.Op.For
          {
            var = "i";
            lo = 0;
            hi = n;
            pipeline = true;
            body =
              [
                Pld_ir.Op.Read (Pld_ir.Op.LVar "x", "in");
                Pld_ir.Op.Assign
                  (Pld_ir.Op.LVar "y", Pld_ir.Expr.(Bin (Mul, Var "x", Bin (Add, Var "x", Var "y"))));
                Pld_ir.Op.Write ("out", Pld_ir.Expr.(Bin (Add, Var "y", Var "x")));
              ];
          };
      ]
  in
  let graph_of k =
    let chan i = if i = 0 then "cin" else if i = k then "cout" else Printf.sprintf "c%d" i in
    Pld_ir.Graph.make ~name:(Printf.sprintf "scale%d" k)
      ~channels:(List.init (k + 1) (fun i -> Pld_ir.Graph.channel (chan i)))
      ~instances:
        (List.init k (fun i ->
             Pld_ir.Graph.instance ~name:(Printf.sprintf "s%d" i) (stage (Printf.sprintf "s%d" i) 64)
               [ ("in", chan i); ("out", chan (i + 1)) ]))
      ~inputs:[ "cin" ] ~outputs:[ "cout" ]
  in
  ignore u32;
  let header = [ "operators"; "-O3 p&r s"; "-O1 slowest page p&r s"; "-O1 wall (22 workers)" ] in
  let rows =
    List.map
      (fun k ->
        let g = graph_of k in
        let o3 = B.compile fp g ~level:B.O3 in
        let o1 = B.compile fp g ~level:B.O1 in
        let o3_pnr = o3.B.report.B.phases.Pld_core.Flow.pnr in
        let worst_page =
          List.fold_left
            (fun acc (_, c) ->
              match c with
              | B.Hw_page h -> Float.max acc h.Pld_core.Flow.times.Pld_core.Flow.pnr
              | B.Soft_page _ -> acc)
            0.0 o1.B.operators
        in
        [
          string_of_int k;
          Printf.sprintf "%.3f" o3_pnr;
          Printf.sprintf "%.3f" worst_page;
          Printf.sprintf "%.2f" o1.B.report.B.parallel_seconds;
        ])
      [ 2; 4; 8; 16 ]
  in
  print_endline (Table.render ~header rows);
  print_endline
    "doubling the operator count grows the monolithic p&r super-linearly while the -O1 critical path (one page) is constant \
     - the separate-compilation mechanism of Sec 4.1."

(* ---------- machine-readable export ---------- *)

(* BENCH_<suite>.json: every number the tables print, but parseable —
   per benchmark and level the phase breakdown, modeled serial/cluster
   and measured wall compile times, cache traffic, and the frame-rate
   model's verdict. CI archives it so the perf trajectory is diffable
   across commits. *)
let export_json () =
  section "Export: machine-readable benchmark results (BENCH_rosetta.json)";
  let level_entry r (level, (app : B.app)) =
    let rep = app.B.report in
    let p = rep.B.phases in
    let run = List.assoc level r.runs in
    let jobs_total = rep.B.cache_hits + rep.B.recompiled in
    (* Monolithic levels expose the P&R phase split (place / route /
       sta) — the denominators of the delta-P&R speedup claims. *)
    let pnr_phases =
      match app.B.monolithic with
      | None -> []
      | Some m ->
          let pr = m.Pld_core.Flow.pnr3 in
          [
            ("pnr_place_seconds", Json.Float pr.Pld_pnr.Pnr.place_seconds);
            ("pnr_route_seconds", Json.Float pr.Pld_pnr.Pnr.route_seconds);
            ("pnr_sta_seconds", Json.Float pr.Pld_pnr.Pnr.sta_seconds);
          ]
    in
    Json.Obj
      [
        ("level", Json.String (B.level_name level));
        ( "compile",
          Json.Obj
            ([
              ("hls_seconds", Json.Float p.Pld_core.Flow.hls);
              ("syn_seconds", Json.Float p.Pld_core.Flow.syn);
              ("pnr_seconds", Json.Float p.Pld_core.Flow.pnr);
              ("bitgen_seconds", Json.Float p.Pld_core.Flow.bitgen);
              ("overhead_seconds", Json.Float p.Pld_core.Flow.overhead);
              ("serial_seconds", Json.Float rep.B.serial_seconds);
              ("parallel_seconds", Json.Float rep.B.parallel_seconds);
              ("measured_wall_seconds", Json.Float rep.B.wall_seconds);
              ("cache_hits", Json.Int rep.B.cache_hits);
              ("recompiled", Json.Int rep.B.recompiled);
              ( "cache_hit_rate",
                Json.Float
                  (if jobs_total = 0 then 0.0
                   else float_of_int rep.B.cache_hits /. float_of_int jobs_total) );
            ]
            @ pnr_phases) );
        ( "perf",
          Json.Obj
            [
              ("fmax_mhz", Json.Float run.R.perf.R.fmax_mhz);
              ("ms_per_input", Json.Float run.R.perf.R.ms_per_input);
              ("frame_cycles", Json.Int run.R.perf.R.frame_cycles);
              ("bottleneck", Json.String run.R.perf.R.bottleneck);
            ] );
      ]
  in
  let bench_entry b =
    let r = evaluate b in
    Json.Obj
      [
        ("name", Json.String b.Suite.name);
        ("paper_name", Json.String b.Suite.paper_name);
        ("host_ms", Json.Float (r.host_seconds *. 1000.0));
        ("check_ok", Json.Bool r.ok);
        ("levels", Json.List (List.map (level_entry r) r.apps));
      ]
  in
  let doc =
    Json.Obj
      [
        ("suite", Json.String "rosetta");
        ("benchmarks", Json.List (List.map bench_entry Suite.all));
      ]
  in
  let file = "BENCH_rosetta.json" in
  Json.write_file ~pretty:true ~file doc;
  Printf.printf "wrote %s (%d benchmarks x 4 levels)\n" file (List.length Suite.all)

(* ---------- Bechamel micro-benchmarks ---------- *)

let micro () =
  section "Micro-benchmarks (Bechamel): core substrate primitives";
  let open Bechamel in
  let fx32 = Pld_ir.Dtype.SFixed { width = 32; int_bits = 17 } in
  let fx = Pld_ir.Value.of_float fx32 3.25 and fy = Pld_ir.Value.of_float fx32 1.75 in
  let t_mul =
    Test.make ~name:"ap_fixed mul 32x32" (Staged.stage (fun () -> ignore (Pld_ir.Value.mul fx fy)))
  in
  let t_div =
    Test.make ~name:"ap_fixed div 32/32" (Staged.stage (fun () -> ignore (Pld_ir.Value.div fx fy)))
  in
  let net = Pld_noc.Bft.create () in
  let t_noc =
    Test.make ~name:"noc cycle (64 leaves)"
      (Staged.stage (fun () ->
           ignore
             (Pld_noc.Bft.inject net ~leaf:1
                (Pld_noc.Bft.data_flit ~src_leaf:1 ~dst_leaf:9 ~dst_stream:0 1l));
           Pld_noc.Bft.step net;
           ignore (Pld_noc.Bft.eject net ~leaf:9)))
  in
  let img =
    Pld_riscv.Asm.assemble
      [ Pld_riscv.Asm.Label "top"; Pld_riscv.Asm.Li (Pld_riscv.Isa.t0, 3l); Pld_riscv.Asm.J "top" ]
  in
  let cpu = Pld_riscv.Cpu.create () in
  Pld_riscv.Cpu.load_words cpu ~addr:0 img.Pld_riscv.Asm.words;
  let t_cpu =
    Test.make ~name:"picorv32 model step" (Staged.stage (fun () -> ignore (Pld_riscv.Cpu.step cpu)))
  in
  let tests = Test.make_grouped ~name:"substrates" [ t_mul; t_div; t_noc; t_cpu ] in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg instances tests in
  let report = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  (* ns/op estimates are registry gauges rendered back out. *)
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] ->
          let metric = "bench.micro." ^ name ^ ".ns_per_op" in
          T.set_gauge (T.gauge T.default metric) est;
          Option.iter (fun line -> print_endline ("  " ^ line)) (T.render_metric T.default metric)
      | Some _ | None -> Printf.printf "  %-34s (no estimate)\n" name)
    report

(* ---------- regression sentinel ---------- *)

(* `bench regress` is a subcommand, not an experiment: it owns its exit
   code (nonzero on regression) and its own flags, so it dispatches
   before the experiment list. *)
let regress_usage =
  "usage: bench regress [--save] [--baseline FILE] [--benches a,b] [--levels O1,O3]\n\
  \                     [--repeats N] [--pace F] [--jobs N] [--no-perf] [--no-service] [--no-chaos]\n\
  \                     [--no-incremental]\n\
  \                     [--perturb metric=factor[,metric=factor...]]\n\
  \                     [--exact-only] [--skip-wall] [--out FILE]\n\n\
   --save writes the measured snapshot to the baseline file and exits 0;\n\
   otherwise the snapshot is compared against the baseline and the exit\n\
   code is 1 on any regression. --perturb scales measured metrics (the\n\
   gate's self-test); --exact-only ignores machine-dependent classes\n\
   (checking against a baseline from different hardware); --skip-wall\n\
   drops only the wall class. --out writes REGRESSION.json-style\n\
   machine-readable findings.\n"

let parse_perturb spec =
  List.map
    (fun part ->
      match String.index_opt part '=' with
      | Some i ->
          let name = String.sub part 0 i in
          let f = String.sub part (i + 1) (String.length part - i - 1) in
          (match float_of_string_opt f with
          | Some f -> (name, f)
          | None -> failwith (Printf.sprintf "bad --perturb factor %S" part))
      | None -> failwith (Printf.sprintf "bad --perturb entry %S (want metric=factor)" part))
    (String.split_on_char ',' spec)

let regress args =
  let baseline_file = ref "baselines/rosetta.json" in
  let save = ref false in
  let out = ref None in
  let exact_only = ref false in
  let skip_wall = ref false in
  let perturb = ref [] in
  let opts = ref Sentinel.default_options in
  let levels_of spec =
    List.map
      (fun s ->
        match Sentinel.level_of_string s with
        | Some l -> l
        | None -> failwith (Printf.sprintf "unknown level %S" s))
      (String.split_on_char ',' spec)
  in
  let rec parse = function
    | [] -> ()
    | "--save" :: rest ->
        save := true;
        parse rest
    | "--baseline" :: file :: rest ->
        baseline_file := file;
        parse rest
    | "--benches" :: spec :: rest ->
        opts := { !opts with Sentinel.benches = String.split_on_char ',' spec };
        parse rest
    | "--levels" :: spec :: rest ->
        opts := { !opts with Sentinel.levels = levels_of spec };
        parse rest
    | "--repeats" :: n :: rest ->
        opts := { !opts with Sentinel.repeats = int_of_string n };
        parse rest
    | "--pace" :: f :: rest ->
        opts := { !opts with Sentinel.pace = float_of_string f };
        parse rest
    | "--jobs" :: n :: rest ->
        opts := { !opts with Sentinel.jobs = int_of_string n };
        parse rest
    | "--no-perf" :: rest ->
        opts := { !opts with Sentinel.run_perf = false };
        parse rest
    | "--no-service" :: rest ->
        opts := { !opts with Sentinel.run_service = false };
        parse rest
    | "--no-chaos" :: rest ->
        opts := { !opts with Sentinel.run_chaos = false };
        parse rest
    | "--no-incremental" :: rest ->
        opts := { !opts with Sentinel.run_incremental = false };
        parse rest
    | "--perturb" :: spec :: rest ->
        perturb := !perturb @ parse_perturb spec;
        parse rest
    | "--exact-only" :: rest ->
        exact_only := true;
        parse rest
    | "--skip-wall" :: rest ->
        skip_wall := true;
        parse rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse rest
    | ("--help" | "-h") :: _ ->
        print_string regress_usage;
        exit 0
    | arg :: _ ->
        Printf.eprintf "regress: unknown argument %s\n%s" arg regress_usage;
        exit 2
  in
  parse args;
  Printf.printf "measuring %s at %s (%d repeats)...\n%!"
    (String.concat "," !opts.Sentinel.benches)
    (String.concat "," (List.map B.level_name !opts.Sentinel.levels))
    !opts.Sentinel.repeats;
  let current = Sentinel.measure !opts in
  let current = if !perturb = [] then current else Sentinel.perturb !perturb current in
  let current =
    if not !skip_wall then current
    else
      {
        current with
        Baseline.entries =
          List.map
            (fun (e : Baseline.entry) -> { e with Baseline.wall = [] })
            current.Baseline.entries;
      }
  in
  if !save then begin
    (match Filename.dirname !baseline_file with
    | "" | "." -> ()
    | dir -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755);
    Baseline.save ~file:!baseline_file current;
    Printf.printf "saved baseline %s (%d entries)\n" !baseline_file
      (List.length current.Baseline.entries);
    exit 0
  end;
  if not (Sys.file_exists !baseline_file) then begin
    Printf.eprintf "regress: no baseline at %s (record one with --save)\n" !baseline_file;
    exit 2
  end;
  let verdict =
    Sentinel.check ~base_file:!baseline_file ~exact_only:!exact_only ?out:!out current
  in
  print_string (Baseline.render_verdict verdict);
  exit (if verdict.Baseline.ok then 0 else 1)

(* ---------- compile-as-a-service traffic ---------- *)

(* `bench service` replays a synthetic multi-tenant trace through an
   in-process Pld_service (same code path as the pldd daemon, minus
   the socket) and reports the latency distribution and the shared-
   store economics. A subcommand, not an experiment: it has its own
   flags and machine-readable output. *)
let service_usage =
  "usage: bench service [--sessions N] [--tenants N] [--zipf S] [--pool N]\n\
  \                     [--max-chain N] [--level O0|O1|O3] [--seed N]\n\
  \                     [--queue-workers N] [--jobs N] [--cache-dir DIR]\n\
  \                     [--max-bytes N] [--out FILE]\n\n\
   Replays N interleaved compile sessions with Zipf-distributed operator\n\
   popularity over a shared multi-tenant artifact store and prints p50/\n\
   p95/p99 session latency, per-tenant job counts and the cross-tenant\n\
   hit rate. --out writes the summary JSON (machine-readable).\n"

let service args =
  let module Service = Pld_service.Service in
  let module Traffic = Pld_service.Traffic in
  let opts = ref Traffic.default_options in
  let queue_workers = ref 2 in
  let jobs = ref 1 in
  let cache_dir = ref None in
  let max_bytes = ref None in
  let out = ref None in
  let rec parse = function
    | [] -> ()
    | "--sessions" :: n :: rest ->
        opts := { !opts with Traffic.sessions = int_of_string n };
        parse rest
    | "--tenants" :: n :: rest ->
        opts := { !opts with Traffic.tenants = int_of_string n };
        parse rest
    | "--zipf" :: s :: rest ->
        opts := { !opts with Traffic.zipf = float_of_string s };
        parse rest
    | "--pool" :: n :: rest ->
        opts := { !opts with Traffic.pool = int_of_string n };
        parse rest
    | "--max-chain" :: n :: rest ->
        opts := { !opts with Traffic.max_chain = int_of_string n };
        parse rest
    | "--level" :: s :: rest ->
        (match Sentinel.level_of_string s with
        | Some l -> opts := { !opts with Traffic.level = l }
        | None ->
            Printf.eprintf "service: unknown level %S\n" s;
            exit 2);
        parse rest
    | "--seed" :: n :: rest ->
        opts := { !opts with Traffic.seed = int_of_string n };
        parse rest
    | "--queue-workers" :: n :: rest ->
        queue_workers := int_of_string n;
        parse rest
    | "--jobs" :: n :: rest ->
        jobs := int_of_string n;
        parse rest
    | "--cache-dir" :: dir :: rest ->
        cache_dir := Some dir;
        parse rest
    | "--max-bytes" :: n :: rest ->
        max_bytes := Some (int_of_string n);
        parse rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse rest
    | ("--help" | "-h") :: _ ->
        print_string service_usage;
        exit 0
    | arg :: _ ->
        Printf.eprintf "service: unknown argument %s\n%s" arg service_usage;
        exit 2
  in
  parse args;
  let o = !opts in
  Printf.printf "service: %d sessions, %d tenants, zipf %.2f over %d ops, %d queue workers...\n%!"
    o.Traffic.sessions o.Traffic.tenants o.Traffic.zipf o.Traffic.pool (max 1 !queue_workers);
  let svc =
    Service.create ?cache_dir:!cache_dir ?max_bytes:!max_bytes ~queue_workers:!queue_workers
      ~jobs:!jobs ()
  in
  let summary =
    Fun.protect ~finally:(fun () -> Service.shutdown svc) (fun () -> Traffic.run ~service:svc o)
  in
  List.iter print_endline (Traffic.render summary);
  print_newline ();
  List.iter print_endline (Service.render_stats (Service.stats svc));
  (match !out with
  | None -> ()
  | Some file ->
      Pld_telemetry.Json.write_file ~pretty:true ~file (Traffic.summary_json summary);
      Printf.printf "\nwrote %s\n" file);
  exit (if summary.Traffic.sm_failed = 0 then 0 else 1)

(* ---------- chaos harness ---------- *)

(* `bench chaos` runs the seeded crash-recovery scenarios (SIGKILLed
   store writers, corrupted entries, vanishing clients, overload with
   wedged builds) and fails nonzero on any conservation violation. A
   subcommand: it owns its exit code and machine-readable report. *)
let chaos_usage =
  "usage: bench chaos [--seed N[,N...]] [--only NAME[,NAME...]] [--dir DIR] [--out FILE]\n\n\
   Scenarios: "
  ^ String.concat ", " Pld_service.Chaos.scenario_names
  ^ "\n\n\
     Each seed runs every selected scenario; the exit code is 1 if any\n\
     check (conservation of requests, zero corrupt reads after a kill,\n\
     exact scrub counts, ...) is violated under any seed. --out writes\n\
     the per-seed reports as JSON.\n"

let chaos args =
  let module Chaos = Pld_service.Chaos in
  let seeds = ref [ 7 ] in
  let only = ref None in
  let dir = ref None in
  let out = ref None in
  let rec parse = function
    | [] -> ()
    | "--seed" :: spec :: rest ->
        seeds := List.map int_of_string (String.split_on_char ',' spec);
        parse rest
    | "--only" :: spec :: rest ->
        only := Some (String.split_on_char ',' spec);
        parse rest
    | "--dir" :: d :: rest ->
        dir := Some d;
        parse rest
    | "--out" :: file :: rest ->
        out := Some file;
        parse rest
    | ("--help" | "-h") :: _ ->
        print_string chaos_usage;
        exit 0
    | arg :: _ ->
        Printf.eprintf "chaos: unknown argument %s\n%s" arg chaos_usage;
        exit 2
  in
  parse args;
  let reports =
    try Chaos.run_seeds ~seeds:!seeds ?dir:!dir ?only:!only ~log:print_endline ()
    with Invalid_argument msg ->
      Printf.eprintf "chaos: %s\n" msg;
      exit 2
  in
  List.iter
    (fun r ->
      Printf.printf "\n-- seed %d --\n" r.Chaos.r_seed;
      List.iter print_endline (Chaos.render r))
    reports;
  (match !out with
  | None -> ()
  | Some file ->
      Json.write_file ~pretty:true ~file
        (Json.Obj
           [
             ("harness", Json.String "chaos");
             ("runs", Json.List (List.map Chaos.report_json reports));
           ]);
      Printf.printf "\nwrote %s\n" file);
  let violated = List.filter (fun r -> not (Chaos.ok r)) reports in
  (match violated with
  | [] -> Printf.printf "\nchaos: all invariants held across %d seed(s)\n" (List.length reports)
  | _ ->
      Printf.printf "\nchaos: INVARIANT VIOLATIONS under seed(s) %s\n"
        (String.concat ", " (List.map (fun r -> string_of_int r.Chaos.r_seed) violated)));
  exit (if violated = [] then 0 else 1)

let all_experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("fig9", fig9);
    ("table3", table3);
    ("table4", table4);
    ("fig10", fig10);
    ("fig11", fig11);
    ("eq1", eq1);
    ("noc-sweep", noc_sweep);
    ("incremental", incremental);
    ("executor", executor);
    ("loading", loading);
    ("recovery", recovery);
    ("scaling", scaling);
    ("softcore-sweep", softcore_sweep);
    ("linking-alt", linking_alt);
    ("export-json", export_json);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (match args with
  | "regress" :: rest -> regress rest
  | "service" :: rest -> service rest
  | "chaos" :: rest -> chaos rest
  | _ -> ());
  let chosen =
    match args with
    | [] -> all_experiments
    | names ->
        List.map
          (fun n ->
            match List.assoc_opt n all_experiments with
            | Some f -> (n, f)
            | None ->
                Printf.eprintf "unknown experiment %s (have: %s)\n" n
                  (String.concat " " (List.map fst all_experiments));
                exit 2)
          names
  in
  Printf.printf "PLD benchmark harness -- %d experiment(s)\n" (List.length chosen);
  let t0 = Unix.gettimeofday () in
  List.iter (fun (_, f) -> f ()) chosen;
  Printf.printf "\nall experiments completed in %.1f s\n" (Unix.gettimeofday () -. t0)
