test/test_util.ml: Alcotest Array Digest_lite Float Fun Gen List Pld_util QCheck QCheck_alcotest Rng Stats String Table Topo Union_find
