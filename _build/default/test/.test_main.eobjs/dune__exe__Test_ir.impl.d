test/test_ir.ml: Alcotest Dtype Expr Gen Graph Interp List Op Pld_ir QCheck QCheck_alcotest Queue String Validate Value
