test/test_noc.ml: Alcotest Array Bft Gen Int32 List Pld_fabric Pld_noc Pld_util Printf QCheck QCheck_alcotest Relay Traffic
