test/test_aptype.ml: Alcotest Aptype Array Dtype Expr Interp List Pld_ir Printf QCheck QCheck_alcotest Value
