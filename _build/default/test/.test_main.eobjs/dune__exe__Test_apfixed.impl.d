test/test_apfixed.ml: Alcotest Ap_fixed Ap_int Bits Float Int64 List Pld_apfixed Printf QCheck QCheck_alcotest
