test/test_hls.ml: Alcotest Array Dtype Expr Hls_compile List Op Pld_hls Pld_ir Pld_netlist Printf QCheck QCheck_alcotest Sched String Synth
