test/test_main.ml: Alcotest Test_apfixed Test_aptype Test_hls Test_ir Test_kpn Test_noc Test_pld Test_pnr Test_riscv Test_rosetta Test_util
