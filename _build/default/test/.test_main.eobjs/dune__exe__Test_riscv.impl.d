test/test_riscv.ml: Alcotest Array Asm Bytes Codegen Cpu Dtype Elf Expr Int32 Interp Isa List Op Pld_ir Pld_riscv QCheck QCheck_alcotest Queue Softcore Value
