test/test_pnr.ml: Alcotest Array Device Floorplan List Option Pld_fabric Pld_netlist Pld_pnr Pld_util Printf QCheck QCheck_alcotest Rrg
