test/test_kpn.ml: Alcotest Dtype Expr Gen Graph Interp List Network Op Pld_ir Pld_kpn QCheck QCheck_alcotest Run_graph Value
