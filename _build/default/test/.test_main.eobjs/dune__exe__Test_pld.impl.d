test/test_pld.ml: Alcotest Assign Build Dtype Expr Flow Graph List Loader Op Pld_core Pld_fabric Pld_ir Pld_kpn Pld_netlist Pld_noc Pld_platform Pld_pnr Printf Report Runner String Value
