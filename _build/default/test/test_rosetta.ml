open Pld_rosetta
open Pld_ir

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let hw = Graph.Hw { page_hint = None }

let functional_case (b : Suite.bench) () =
  let g = b.Suite.graph hw in
  Alcotest.(check (list string)) "graph validates" []
    (List.map Validate.error_to_string (Validate.check_graph g));
  let inputs = b.Suite.workload () in
  let r = Pld_kpn.Run_graph.run g ~inputs in
  check_bool "matches independent reference" true (b.Suite.check ~inputs r.Pld_kpn.Run_graph.outputs)

let o0_case (b : Suite.bench) () =
  (* Same source, softcore execution: outputs must still validate. *)
  let fp = Pld_fabric.Floorplan.u50 () in
  let g = b.Suite.graph hw in
  let inputs = b.Suite.workload () in
  let app = Pld_core.Build.compile fp g ~level:Pld_core.Build.O0 in
  let r = Pld_core.Runner.run app ~inputs in
  check_bool "softcore run validates" true (b.Suite.check ~inputs r.Pld_core.Runner.outputs)

let o1_case (b : Suite.bench) () =
  let fp = Pld_fabric.Floorplan.u50 () in
  let g = b.Suite.graph hw in
  let inputs = b.Suite.workload () in
  let app = Pld_core.Build.compile fp g ~level:Pld_core.Build.O1 in
  check_bool "every operator fits a page" true (List.length app.Pld_core.Build.assignment > 0);
  let r = Pld_core.Runner.run app ~inputs in
  check_bool "page run validates" true (b.Suite.check ~inputs r.Pld_core.Runner.outputs)

let test_optical_flow_shape () =
  (* The flow field of a 1-pixel right shift should be mostly negative
     u (content moved from left), near-zero v in the interior. *)
  let inputs = Optical_flow.workload () in
  let g = Optical_flow.graph () in
  let r = Pld_kpn.Run_graph.run g ~inputs in
  let out = Array.of_list (List.assoc "flow_out" r.Pld_kpn.Run_graph.outputs) in
  check_int "two words per pixel" (2 * Optical_flow.height * Optical_flow.width) (Array.length out)

let test_digit_labels_in_range () =
  let inputs = Digit_recog.workload () in
  let g = Digit_recog.graph () in
  let r = Pld_kpn.Run_graph.run g ~inputs in
  List.iter
    (fun v ->
      let l = Value.to_int v in
      check_bool "label 0..9" true (l >= 0 && l <= 9))
    (List.assoc "labels_out" r.Pld_kpn.Run_graph.outputs)

let test_spam_verdicts_binary () =
  let inputs = Spam_filter.workload () in
  let g = Spam_filter.graph () in
  let r = Pld_kpn.Run_graph.run g ~inputs in
  List.iter
    (fun v -> check_bool "0 or 1" true (Value.to_int v = 0 || Value.to_int v = 1))
    (List.assoc "verdict_out" r.Pld_kpn.Run_graph.outputs)

let test_rendering_depths_bounded () =
  let inputs = Rendering.workload () in
  let g = Rendering.graph () in
  let r = Pld_kpn.Run_graph.run g ~inputs in
  List.iter
    (fun v ->
      let z = Value.to_int v in
      check_bool "depth in [0,255]" true (z >= 0 && z <= 255))
    (List.assoc "frame_out" r.Pld_kpn.Run_graph.outputs)

let test_bnn_classes_in_range () =
  let inputs = Bnn.workload () in
  let g = Bnn.graph () in
  let r = Pld_kpn.Run_graph.run g ~inputs in
  let out = List.assoc "class_out" r.Pld_kpn.Run_graph.outputs in
  check_int "one class per image" Bnn.n_images (List.length out);
  List.iter (fun v -> check_bool "class 0..9" true (Value.to_int v >= 0 && Value.to_int v < 10)) out

let test_face_window_count () =
  let inputs = Face_detect.workload () in
  let g = Face_detect.graph () in
  let r = Pld_kpn.Run_graph.run g ~inputs in
  check_int "one score per window" Face_detect.n_windows
    (List.length (List.assoc "faces_out" r.Pld_kpn.Run_graph.outputs))

let prop_rendering_random_workloads =
  QCheck.Test.make ~name:"rendering matches reference on random triangles" ~count:10
    QCheck.(int_bound 10_000)
    (fun seed ->
      let inputs = Rendering.workload ~seed () in
      let g = Rendering.graph () in
      let r = Pld_kpn.Run_graph.run g ~inputs in
      Rendering.check ~inputs r.Pld_kpn.Run_graph.outputs)

let prop_bnn_random_workloads =
  QCheck.Test.make ~name:"bnn matches reference on random images" ~count:5
    QCheck.(int_bound 10_000)
    (fun wseed ->
      let inputs = Bnn.workload ~seed:wseed () in
      (* Note: the graph's weights use the default seed; only the image
         workload varies (the reference must match that asymmetry). *)
      let g = Bnn.graph () in
      let r = Pld_kpn.Run_graph.run g ~inputs in
      let expect = Bnn.reference inputs in
      List.map Value.to_int (List.assoc "class_out" r.Pld_kpn.Run_graph.outputs) = expect)

let suite =
  List.concat_map
    (fun (b : Suite.bench) ->
      [
        (b.Suite.name ^ ": functional vs reference", `Quick, functional_case b);
        (b.Suite.name ^ ": -O1 page build + run", `Slow, o1_case b);
      ])
    Suite.all
  @ [
      ("optical: -O0 softcore run", `Slow, o0_case (Suite.find "optical"));
      ("spam: -O0 softcore run", `Slow, o0_case (Suite.find "spam"));
      ("optical flow output shape", `Quick, test_optical_flow_shape);
      ("digit labels in range", `Quick, test_digit_labels_in_range);
      ("spam verdicts binary", `Quick, test_spam_verdicts_binary);
      ("rendering depths bounded", `Quick, test_rendering_depths_bounded);
      ("bnn classes in range", `Quick, test_bnn_classes_in_range);
      ("face window count", `Quick, test_face_window_count);
      QCheck_alcotest.to_alcotest prop_rendering_random_workloads;
      QCheck_alcotest.to_alcotest prop_bnn_random_workloads;
    ]
