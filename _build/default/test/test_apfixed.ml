open Pld_apfixed

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_str = Alcotest.(check string)

(* ---------- Bits ---------- *)

let b w v = Bits.of_int ~width:w v

let test_bits_roundtrip_int64 () =
  List.iter
    (fun (w, v) ->
      let t = Bits.of_int64 ~width:w v in
      let back = Bits.to_int64_signed t in
      let expect =
        if w >= 64 then v
        else begin
          let shifted = Int64.shift_left v (64 - w) in
          Int64.shift_right shifted (64 - w)
        end
      in
      check_i64 (Printf.sprintf "w=%d v=%Ld" w v) expect back)
    [ (8, 127L); (8, -128L); (8, 255L); (1, 1L); (32, -1L); (64, Int64.min_int); (40, 0xFFFFFFFFFFL); (17, 70000L) ]

let test_bits_add_wrap () =
  let r = Bits.add (b 8 200) (b 8 100) in
  check_int "200+100 mod 256" 44 (Bits.to_int_trunc r)

let test_bits_sub_neg () =
  let r = Bits.sub (b 8 5) (b 8 7) in
  check_i64 "5-7 = -2" (-2L) (Bits.to_int64_signed r);
  check_i64 "neg 1 = -1" (-1L) (Bits.to_int64_signed (Bits.neg (b 16 1)))

let test_bits_mul () =
  let r = Bits.mul (b 16 300) (b 16 500) in
  check_int "300*500 mod 2^16" (300 * 500 mod 65536) (Bits.to_int_trunc r);
  let full = Bits.mul_full (b 16 300) (b 16 500) in
  check_int "full product width" 32 (Bits.width full);
  check_int "full product value" 150000 (Bits.to_int_trunc full)

let test_bits_wide_mul () =
  (* 2^40 * 2^40 = 2^80 exactly — needs multi-limb carries. *)
  let a = Bits.shift_left (Bits.one 100) 40 in
  let r = Bits.mul a a in
  check_bool "bit 80 set" true (Bits.get r 80);
  check_int "popcount 1" 1 (Bits.popcount r)

let test_bits_divmod () =
  let q = Bits.udiv (b 32 1000) (b 32 7) in
  let r = Bits.urem (b 32 1000) (b 32 7) in
  check_int "1000/7" 142 (Bits.to_int_trunc q);
  check_int "1000 mod 7" 6 (Bits.to_int_trunc r)

let test_bits_sdiv_signs () =
  let t a bv q r =
    let qq = Bits.sdiv (b 32 a) (b 32 bv) and rr = Bits.srem (b 32 a) (b 32 bv) in
    check_i64 (Printf.sprintf "%d/%d" a bv) (Int64.of_int q) (Bits.to_int64_signed qq);
    check_i64 (Printf.sprintf "%d%%%d" a bv) (Int64.of_int r) (Bits.to_int64_signed rr)
  in
  t 7 2 3 1;
  t (-7) 2 (-3) (-1);
  t 7 (-2) (-3) 1;
  t (-7) (-2) 3 (-1)

let test_bits_div_by_zero () =
  let q = Bits.udiv (b 8 5) (b 8 0) in
  check_int "div by zero = all ones" 255 (Bits.to_int_trunc q)

let test_bits_shifts () =
  check_int "shl" 40 (Bits.to_int_trunc (Bits.shift_left (b 16 5) 3));
  check_int "shr" 5 (Bits.to_int_trunc (Bits.shift_right_logical (b 16 40) 3));
  check_i64 "sra keeps sign" (-1L) (Bits.to_int64_signed (Bits.shift_right_arith (b 8 (-4)) 2));
  check_int "shift beyond width" 0 (Bits.to_int_trunc (Bits.shift_left (b 8 255) 8));
  (* Cross-limb shifts. *)
  let wide = Bits.shift_left (Bits.one 80) 70 in
  check_bool "bit 70" true (Bits.get wide 70);
  let back = Bits.shift_right_logical wide 70 in
  check_bool "back to 1" true (Bits.equal back (Bits.one 80))

let test_bits_resize () =
  let v = b 8 (-3) in
  check_i64 "sign extend 8->32" (-3L) (Bits.to_int64_signed (Bits.resize ~signed:true ~width:32 v));
  check_int "zero extend 8->32" 253 (Bits.to_int_trunc (Bits.resize ~signed:false ~width:32 v));
  check_int "truncate 32->4" 13 (Bits.to_int_trunc (Bits.resize ~signed:true ~width:4 v));
  (* Partial top limb sign extension: width 40 negative to 100. *)
  let v40 = Bits.of_int ~width:40 (-5) in
  check_i64 "40->100 signed" (-5L) (Bits.to_int64_signed (Bits.resize ~signed:true ~width:100 v40))

let test_bits_extract_concat () =
  let v = Bits.of_int ~width:16 0xABCD in
  check_int "extract nibble" 0xB (Bits.to_int_trunc (Bits.extract v ~hi:11 ~lo:8));
  let c = Bits.concat (b 8 0xAB) (b 8 0xCD) in
  check_int "concat" 0xABCD (Bits.to_int_trunc c);
  check_int "concat width" 16 (Bits.width c)

let test_bits_compare () =
  check_bool "unsigned 255 > 1" true (Bits.compare_unsigned (b 8 255) (b 8 1) > 0);
  check_bool "signed -1 < 1" true (Bits.compare_signed (b 8 255) (b 8 1) < 0)

let test_bits_hex_decimal () =
  let v = Bits.of_hex ~width:16 "abcd" in
  check_str "hex roundtrip" "abcd" (Bits.to_hex v);
  check_str "decimal unsigned" "43981" (Bits.to_decimal_unsigned v);
  check_str "decimal signed" "-21555" (Bits.to_decimal_signed v);
  check_str "big decimal" "1208925819614629174706176"
    (Bits.to_decimal_unsigned (Bits.shift_left (Bits.one 100) 80))

(* ---------- Ap_int ---------- *)

let ai ?(signed = true) w v = Ap_int.of_int ~signed ~width:w v

let test_apint_basic () =
  let x = ai 8 100 and y = ai 8 50 in
  check_i64 "add grows" 150L (Ap_int.to_int64 (Ap_int.add x y));
  check_i64 "mul" 5000L (Ap_int.to_int64 (Ap_int.mul x y));
  check_i64 "sub negative" (-50L) (Ap_int.to_int64 (Ap_int.sub y x))

let test_apint_mixed_sign () =
  let s = ai 8 (-1) and u = ai ~signed:false 8 200 in
  (* -1 + 200 must be 199, not a wrap artifact. *)
  check_i64 "mixed add" 199L (Ap_int.to_int64 (Ap_int.add s u));
  check_bool "compare mixed" true (Ap_int.compare s u < 0)

let test_apint_div () =
  check_i64 "signed div" (-3L) (Ap_int.to_int64 (Ap_int.div (ai 16 (-7)) (ai 16 2)));
  check_i64 "rem" 1L (Ap_int.to_int64 (Ap_int.rem (ai 16 7) (ai 16 2)))

let test_apint_minmax () =
  check_i64 "max s8" 127L (Ap_int.to_int64 (Ap_int.max_value ~signed:true ~width:8));
  check_i64 "min s8" (-128L) (Ap_int.to_int64 (Ap_int.min_value ~signed:true ~width:8));
  check_i64 "max u8" 255L (Ap_int.to_int64 (Ap_int.max_value ~signed:false ~width:8))

let test_apint_to_float () =
  Alcotest.(check (float 1e-6)) "small" (-42.0) (Ap_int.to_float (ai 16 (-42)));
  let big = Ap_int.shift_left (ai 100 1) 80 in
  Alcotest.(check (float 1e18)) "2^80" (Float.pow 2.0 80.0) (Ap_int.to_float big)

(* ---------- Ap_fixed ---------- *)

let af ?(signed = true) w i x = Ap_fixed.of_float ~signed ~width:w ~int_bits:i x

let test_apfixed_roundtrip () =
  let x = af 32 17 3.14159 in
  check_bool "close" true (Float.abs (Ap_fixed.to_float x -. 3.14159) < 1e-4);
  let y = af 32 17 (-2.5) in
  Alcotest.(check (float 1e-4)) "negative" (-2.5) (Ap_fixed.to_float y)

let test_apfixed_add_mul () =
  let a = af 16 8 1.5 and bb = af 16 8 2.25 in
  Alcotest.(check (float 1e-6)) "add" 3.75 (Ap_fixed.to_float (Ap_fixed.add a bb));
  Alcotest.(check (float 1e-6)) "sub" (-0.75) (Ap_fixed.to_float (Ap_fixed.sub a bb));
  Alcotest.(check (float 1e-6)) "mul" 3.375 (Ap_fixed.to_float (Ap_fixed.mul a bb));
  check_int "mul width grows" 32 (Ap_fixed.width (Ap_fixed.mul a bb))

let test_apfixed_div () =
  let a = af 32 17 7.0 and bb = af 32 17 2.0 in
  Alcotest.(check (float 1e-4)) "7/2" 3.5 (Ap_fixed.to_float (Ap_fixed.div a bb));
  let n = af 32 17 (-1.0) and d = af 32 17 3.0 in
  check_bool "-1/3 near" true (Float.abs (Ap_fixed.to_float (Ap_fixed.div n d) +. 0.33333) < 1e-3)

let test_apfixed_convert_truncates () =
  let x = af 32 16 1.999 in
  let y = Ap_fixed.convert ~signed:true ~width:8 ~int_bits:4 x in
  (* 4 fraction bits -> nearest-below multiple of 1/16. *)
  Alcotest.(check (float 1e-9)) "truncated" 1.9375 (Ap_fixed.to_float y)

let test_apfixed_paper_types () =
  (* The optical-flow operator uses ap_fixed<64,40> intermediates:
     denom = t1*t2 - t4*t4 with ap_fixed<32,17> inputs. *)
  let t1 = af 32 17 12.25 and t2 = af 32 17 3.5 and t4 = af 32 17 (-2.0) in
  let denom = Ap_fixed.sub (Ap_fixed.mul t1 t2) (Ap_fixed.mul t4 t4) in
  let denom64 = Ap_fixed.convert ~signed:true ~width:64 ~int_bits:40 denom in
  Alcotest.(check (float 1e-6)) "denom" 38.875 (Ap_fixed.to_float denom64)

let test_apfixed_compare () =
  check_bool "lt" true (Ap_fixed.compare (af 16 8 1.0) (af 16 8 2.0) < 0);
  check_bool "eq across formats" true (Ap_fixed.equal (af 16 8 1.5) (af 32 20 1.5))

let test_apfixed_to_ap_int () =
  let x = af 32 17 42.75 in
  check_i64 "floor to int" 42L (Ap_int.to_int64 (Ap_fixed.to_ap_int x));
  let y = af 32 17 (-1.25) in
  check_i64 "floor negative" (-2L) (Ap_int.to_int64 (Ap_fixed.to_ap_int y))

(* ---------- properties ---------- *)

let gen_width = QCheck.Gen.int_range 1 90
let arb_width = QCheck.make gen_width

let prop_add_commutative =
  QCheck.Test.make ~name:"bits add commutative" ~count:300
    QCheck.(triple arb_width (int_bound 1_000_000) (int_bound 1_000_000))
    (fun (w, x, y) ->
      let bx = Bits.of_int ~width:w x and by = Bits.of_int ~width:w y in
      Bits.equal (Bits.add bx by) (Bits.add by bx))

let prop_addsub_inverse =
  QCheck.Test.make ~name:"(x + y) - y = x" ~count:300
    QCheck.(triple arb_width int int)
    (fun (w, x, y) ->
      let bx = Bits.of_int ~width:w x and by = Bits.of_int ~width:w y in
      Bits.equal (Bits.sub (Bits.add bx by) by) bx)

let prop_divmod_identity =
  QCheck.Test.make ~name:"q*b + r = a (unsigned)" ~count:300
    QCheck.(triple (int_range 1 64) (int_bound max_int) (int_range 1 max_int))
    (fun (w, a, d) ->
      let ba = Bits.of_int ~width:w a and bd = Bits.of_int ~width:w d in
      QCheck.assume (not (Bits.is_zero bd));
      let q = Bits.udiv ba bd and r = Bits.urem ba bd in
      Bits.equal (Bits.add (Bits.mul q bd) r) ba && Bits.compare_unsigned r bd < 0)

let prop_mul_matches_int64 =
  QCheck.Test.make ~name:"32-bit mul matches int64" ~count:500
    QCheck.(pair (int_bound 0xFFFFFFF) (int_bound 0xFFFFFFF))
    (fun (x, y) ->
      let r = Bits.mul (Bits.of_int ~width:32 x) (Bits.of_int ~width:32 y) in
      Bits.to_int64_unsigned r = Int64.logand (Int64.mul (Int64.of_int x) (Int64.of_int y)) 0xFFFFFFFFL)

let prop_shift_mul_pow2 =
  QCheck.Test.make ~name:"shl k = mul 2^k" ~count:300
    QCheck.(triple arb_width (int_bound 1000) (int_bound 6))
    (fun (w, x, k) ->
      QCheck.assume (w > k);
      let bx = Bits.of_int ~width:w x in
      Bits.equal (Bits.shift_left bx k) (Bits.mul bx (Bits.of_int ~width:w (1 lsl k))))

let prop_resize_roundtrip =
  QCheck.Test.make ~name:"widen then truncate is identity" ~count:300
    QCheck.(pair (int_range 1 60) int)
    (fun (w, x) ->
      let bx = Bits.of_int ~width:w x in
      let widened = Bits.resize ~signed:true ~width:(w + 40) bx in
      Bits.equal (Bits.resize ~signed:true ~width:w widened) bx)

let prop_apfixed_add_float =
  QCheck.Test.make ~name:"ap_fixed add tracks float" ~count:300
    QCheck.(pair (float_range (-1000.0) 1000.0) (float_range (-1000.0) 1000.0))
    (fun (x, y) ->
      let fx = af 32 17 x and fy = af 32 17 y in
      let s = Ap_fixed.to_float (Ap_fixed.add fx fy) in
      Float.abs (s -. (Ap_fixed.to_float fx +. Ap_fixed.to_float fy)) < 1e-6)

let prop_apfixed_mul_float =
  QCheck.Test.make ~name:"ap_fixed mul tracks float" ~count:300
    QCheck.(pair (float_range (-100.0) 100.0) (float_range (-100.0) 100.0))
    (fun (x, y) ->
      let fx = af 32 17 x and fy = af 32 17 y in
      let p = Ap_fixed.to_float (Ap_fixed.mul fx fy) in
      Float.abs (p -. (Ap_fixed.to_float fx *. Ap_fixed.to_float fy)) < 1e-6)

let prop_apfixed_div_identity =
  QCheck.Test.make ~name:"(a/b)*b ~ a" ~count:200
    QCheck.(pair (float_range (-100.0) 100.0) (float_range 0.5 100.0))
    (fun (x, y) ->
      let fx = af 32 17 x and fy = af 32 17 y in
      let q = Ap_fixed.div fx fy in
      Float.abs ((Ap_fixed.to_float q *. Ap_fixed.to_float fy) -. Ap_fixed.to_float fx) < 1e-2)

let prop_decimal_roundtrip =
  QCheck.Test.make ~name:"unsigned decimal printing matches int64" ~count:300
    QCheck.(pair (int_range 1 62) (int_bound max_int))
    (fun (w, x) ->
      let b = Bits.of_int ~width:w x in
      Bits.to_decimal_unsigned b = Int64.to_string (Bits.to_int64_unsigned b))

let prop_hex_roundtrip =
  QCheck.Test.make ~name:"hex print/parse roundtrip" ~count:300
    QCheck.(pair (int_range 1 100) int)
    (fun (w, x) ->
      let b = Bits.of_int ~width:w x in
      Bits.equal (Bits.of_hex ~width:w (Bits.to_hex b)) b)

let suite =
  [
    ("bits int64 roundtrip", `Quick, test_bits_roundtrip_int64);
    ("bits add wraps", `Quick, test_bits_add_wrap);
    ("bits sub/neg", `Quick, test_bits_sub_neg);
    ("bits mul", `Quick, test_bits_mul);
    ("bits wide mul", `Quick, test_bits_wide_mul);
    ("bits divmod", `Quick, test_bits_divmod);
    ("bits signed division signs", `Quick, test_bits_sdiv_signs);
    ("bits division by zero", `Quick, test_bits_div_by_zero);
    ("bits shifts", `Quick, test_bits_shifts);
    ("bits resize", `Quick, test_bits_resize);
    ("bits extract/concat", `Quick, test_bits_extract_concat);
    ("bits compare", `Quick, test_bits_compare);
    ("bits hex/decimal", `Quick, test_bits_hex_decimal);
    ("ap_int basic ops", `Quick, test_apint_basic);
    ("ap_int mixed signedness", `Quick, test_apint_mixed_sign);
    ("ap_int division", `Quick, test_apint_div);
    ("ap_int min/max", `Quick, test_apint_minmax);
    ("ap_int to_float", `Quick, test_apint_to_float);
    ("ap_fixed float roundtrip", `Quick, test_apfixed_roundtrip);
    ("ap_fixed add/mul", `Quick, test_apfixed_add_mul);
    ("ap_fixed div", `Quick, test_apfixed_div);
    ("ap_fixed convert truncates", `Quick, test_apfixed_convert_truncates);
    ("ap_fixed paper flow_calc types", `Quick, test_apfixed_paper_types);
    ("ap_fixed compare", `Quick, test_apfixed_compare);
    ("ap_fixed to ap_int floors", `Quick, test_apfixed_to_ap_int);
    QCheck_alcotest.to_alcotest prop_add_commutative;
    QCheck_alcotest.to_alcotest prop_addsub_inverse;
    QCheck_alcotest.to_alcotest prop_divmod_identity;
    QCheck_alcotest.to_alcotest prop_mul_matches_int64;
    QCheck_alcotest.to_alcotest prop_shift_mul_pow2;
    QCheck_alcotest.to_alcotest prop_resize_roundtrip;
    QCheck_alcotest.to_alcotest prop_apfixed_add_float;
    QCheck_alcotest.to_alcotest prop_apfixed_mul_float;
    QCheck_alcotest.to_alcotest prop_apfixed_div_identity;
    QCheck_alcotest.to_alcotest prop_decimal_roundtrip;
    QCheck_alcotest.to_alcotest prop_hex_roundtrip;
  ]
