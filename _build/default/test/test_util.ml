open Pld_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done;
  for _ = 1 to 1000 do
    let v = Rng.int_in rng (-5) 5 in
    check_bool "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_split_independent () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1_000_000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1_000_000) in
  check_bool "split streams differ" true (xs <> ys)

let test_rng_gaussian () =
  let rng = Rng.create 3 in
  let n = 20_000 in
  let samples = List.init n (fun _ -> Rng.gaussian rng ~mu:5.0 ~sigma:2.0) in
  let m = Stats.mean samples in
  check_bool "mean near mu" true (Float.abs (m -. 5.0) < 0.1);
  let s = Stats.stddev samples in
  check_bool "stddev near sigma" true (Float.abs (s -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 11 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 50 Fun.id) sorted

let test_topo_simple () =
  let order = Topo.sort ~n:4 ~edges:[ (0, 1); (1, 2); (0, 3); (3, 2) ] in
  let pos = Array.make 4 0 in
  List.iteri (fun i v -> pos.(v) <- i) order;
  check_bool "0 before 1" true (pos.(0) < pos.(1));
  check_bool "1 before 2" true (pos.(1) < pos.(2));
  check_bool "3 before 2" true (pos.(3) < pos.(2))

let test_topo_cycle () =
  match Topo.sort ~n:3 ~edges:[ (0, 1); (1, 2); (2, 0) ] with
  | _ -> Alcotest.fail "expected Cycle"
  | exception Topo.Cycle c -> check_bool "cycle nonempty" true (c <> [])

let test_topo_is_dag () =
  check_bool "dag" true (Topo.is_dag ~n:3 ~edges:[ (0, 1); (1, 2) ]);
  check_bool "not dag" false (Topo.is_dag ~n:2 ~edges:[ (0, 1); (1, 0) ])

let test_topo_sccs () =
  let comps = Topo.sccs ~n:5 ~edges:[ (0, 1); (1, 0); (1, 2); (2, 3); (3, 2); (4, 4) ] in
  let sizes = List.sort compare (List.map List.length comps) in
  Alcotest.(check (list int)) "component sizes" [ 1; 2; 2 ] sizes

let test_topo_longest_path () =
  let dist = Topo.longest_path ~n:4 ~edges:[ (0, 1, 2.0); (1, 2, 3.0); (0, 2, 4.0); (2, 3, 1.0) ] in
  Alcotest.(check (float 1e-9)) "sink distance" 6.0 dist.(3);
  Alcotest.(check (float 1e-9)) "middle" 5.0 dist.(2)

let test_union_find () =
  let uf = Union_find.create 6 in
  Union_find.union uf 0 1;
  Union_find.union uf 1 2;
  Union_find.union uf 4 5;
  check_bool "0~2" true (Union_find.same uf 0 2);
  check_bool "0!~4" false (Union_find.same uf 0 4);
  let groups = Union_find.groups uf in
  Alcotest.(check (list (list int))) "groups" [ [ 0; 1; 2 ]; [ 3 ]; [ 4; 5 ] ] groups

let test_stats_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 1e-9)) "median" 3.0 (Stats.median xs);
  Alcotest.(check (float 1e-9)) "p0" 1.0 (Stats.percentile 0.0 xs);
  Alcotest.(check (float 1e-9)) "p100" 5.0 (Stats.percentile 100.0 xs);
  Alcotest.(check (float 1e-9)) "p25" 2.0 (Stats.percentile 25.0 xs)

let test_stats_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.0; 0.1; 0.9; 1.0 ] in
  let counts = List.map (fun (_, _, c) -> c) h in
  Alcotest.(check (list int)) "bin counts" [ 2; 2 ] counts

let test_stats_geomean () =
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geometric_mean [ 1.0; 2.0; 4.0 ])

let test_digest_stable () =
  let d1 = Digest_lite.of_string "hello" in
  let d2 = Digest_lite.of_string "hello" in
  Alcotest.(check string) "stable" d1 d2;
  check_bool "distinct" true (Digest_lite.of_string "hellp" <> d1);
  check_int "hex length" 16 (String.length d1)

let test_digest_combine () =
  let a = Digest_lite.of_string "a" and b = Digest_lite.of_string "b" in
  check_bool "order matters" true (Digest_lite.combine [ a; b ] <> Digest_lite.combine [ b; a ])

let test_table_render () =
  let s = Table.render ~header:[ "name"; "value" ] [ [ "x"; "1" ]; [ "long-name"; "22" ] ] in
  check_bool "contains header" true (String.length s > 0);
  check_bool "has separator" true (String.contains s '=')

let test_table_csv () =
  let s = Table.render_csv ~header:[ "a"; "b" ] [ [ "1"; "with,comma" ] ] in
  check_bool "quoted comma" true (String.length s > 0 && String.contains s '"')

let qcheck_topo_sort_valid =
  QCheck.Test.make ~name:"topo sort respects random DAG edges" ~count:200
    QCheck.(pair (int_range 1 20) (list (pair (int_range 0 19) (int_range 0 19))))
    (fun (n, raw_edges) ->
      (* Force a DAG by orienting edges from smaller to larger vertex. *)
      let edges =
        raw_edges
        |> List.filter_map (fun (u, v) ->
               let u = u mod n and v = v mod n in
               if u < v then Some (u, v) else if v < u then Some (v, u) else None)
      in
      let order = Pld_util.Topo.sort ~n ~edges in
      let pos = Array.make n 0 in
      List.iteri (fun i v -> pos.(v) <- i) order;
      List.for_all (fun (u, v) -> pos.(u) < pos.(v)) edges)

let qcheck_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(list_of_size (Gen.int_range 1 30) (float_range (-100.) 100.))
    (fun xs ->
      let p1 = Pld_util.Stats.percentile 25.0 xs in
      let p2 = Pld_util.Stats.percentile 75.0 xs in
      p1 <= p2 +. 1e-9)

let suite =
  [
    ("rng determinism", `Quick, test_rng_determinism);
    ("rng bounds", `Quick, test_rng_bounds);
    ("rng split", `Quick, test_rng_split_independent);
    ("rng gaussian moments", `Quick, test_rng_gaussian);
    ("rng shuffle permutation", `Quick, test_rng_shuffle_permutation);
    ("topo simple", `Quick, test_topo_simple);
    ("topo cycle detection", `Quick, test_topo_cycle);
    ("topo is_dag", `Quick, test_topo_is_dag);
    ("topo sccs", `Quick, test_topo_sccs);
    ("topo longest path", `Quick, test_topo_longest_path);
    ("union-find", `Quick, test_union_find);
    ("stats percentile", `Quick, test_stats_percentile);
    ("stats histogram", `Quick, test_stats_histogram);
    ("stats geomean", `Quick, test_stats_geomean);
    ("digest stable", `Quick, test_digest_stable);
    ("digest combine order", `Quick, test_digest_combine);
    ("table render", `Quick, test_table_render);
    ("table csv", `Quick, test_table_csv);
    QCheck_alcotest.to_alcotest qcheck_topo_sort_valid;
    QCheck_alcotest.to_alcotest qcheck_percentile_monotone;
  ]
