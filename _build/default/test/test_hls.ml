open Pld_ir
open Pld_hls
module N = Pld_netlist.Netlist

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let u32 = Dtype.word
let i32 = Dtype.SInt 32

let streaming_op ?(pipeline = true) ?(reads = 1) n =
  let body =
    List.init reads (fun k -> Op.Read (Op.LVar (Printf.sprintf "x%d" k), "in"))
    @ [ Op.Write ("out", Expr.var "x0") ]
  in
  Op.make ~name:"s" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:(List.init reads (fun k -> Op.scalar (Printf.sprintf "x%d" k) u32))
    [ Op.For { var = "i"; lo = 0; hi = n; body; pipeline } ]

let test_sched_ii_port_limit () =
  (* II is bounded by the busiest stream port (one word per cycle). *)
  let p1 = (Sched.analyze (streaming_op ~reads:1 100)).Sched.bottleneck_ii in
  let p6 = (Sched.analyze (streaming_op ~reads:6 100)).Sched.bottleneck_ii in
  check_int "single read II=1" 1 p1;
  check_int "six reads II=6" 6 p6

let test_sched_pipeline_vs_sequential () =
  let pip = (Sched.analyze (streaming_op ~pipeline:true 100)).Sched.cycles_per_firing in
  let seq = (Sched.analyze (streaming_op ~pipeline:false 100)).Sched.cycles_per_firing in
  check_bool "pipelining helps" true (pip < seq)

let test_sched_cycles_scale_with_trips () =
  let c100 = (Sched.analyze (streaming_op 100)).Sched.cycles_per_firing in
  let c1000 = (Sched.analyze (streaming_op 1000)).Sched.cycles_per_firing in
  check_bool "roughly 10x" true (c1000 > 9 * c100 / 2 && c1000 < 11 * c100)

let test_expr_levels () =
  let e = Expr.(Bin (Mul, var "a", Bin (Add, var "b", var "c"))) in
  check_int "mul over add" 4 (Sched.expr_levels e);
  check_int "div heavy" 8 (Sched.expr_levels Expr.(Bin (Div, var "a", var "b")))

let fixture_op =
  Op.make ~name:"fixture" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" i32; Op.scalar "y" i32; Op.array "buf" i32 512 ]
    [
      Op.For
        {
          var = "i";
          lo = 0;
          hi = 64;
          pipeline = true;
          body =
            [
              Op.Read (Op.LVar "x", "in");
              Op.Assign (Op.LVar "y", Expr.(Bin (Mul, var "x", var "x")));
              Op.Assign (Op.LIdx ("buf", Expr.var "i"), Expr.var "y");
              Op.Write ("out", Expr.(var "y" + var "x"));
            ];
        };
    ]

let test_synth_structure () =
  let nl = Synth.synthesize fixture_op in
  check_bool "has cells" true (N.cell_count nl > 5);
  check_bool "has nets" true (N.net_count nl > 3);
  let ports = N.ports nl in
  check_int "two stream ports" 2 (List.length ports);
  let r = N.total_res nl in
  check_bool "uses DSP for 32x32 mul" true (r.N.dsps >= 1);
  check_bool "512x32b array goes to BRAM" true (r.N.brams >= 1)

let test_synth_rejects_invalid () =
  let bad =
    Op.make ~name:"bad" ~inputs:[] ~outputs:[ Op.word_port "out" ] [ Op.Write ("out", Expr.var "nope") ]
  in
  match Synth.synthesize bad with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let test_synth_cells_fit_tiles () =
  (* Every placement macro must fit a single tile after splitting. *)
  let nl = Synth.synthesize fixture_op in
  Array.iter
    (fun (c : N.cell) ->
      check_bool (c.N.cname ^ " within slice budget") true
        (c.N.res.N.luts <= 48 && c.N.res.N.brams <= 1 && c.N.res.N.dsps <= 2))
    nl.N.cells

let test_synth_cse () =
  (* The same subexpression used twice must not double area. *)
  let op k =
    Op.make ~name:"cse" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" i32; Op.scalar "y" i32 ]
      [
        Op.Read (Op.LVar "x", "in");
        Op.Assign (Op.LVar "y", Expr.(Bin (Mul, var "x", var "x")));
        Op.Write ("out", if k = 1 then Expr.var "y" else Expr.(Bin (Mul, var "x", var "x")));
      ]
  in
  let one = (N.total_res (Synth.synthesize (op 1))).N.dsps in
  let two = (N.total_res (Synth.synthesize (op 2))).N.dsps in
  check_int "duplicate expr shares the multiplier" one two

let test_pow2_mul_is_free () =
  let fx = Dtype.SFixed { width = 32; int_bits = 17 } in
  let op const =
    Op.make ~name:"m" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" fx ]
      [
        Op.Read (Op.LVar "x", "in");
        Op.Write ("out", Expr.(Bin (Mul, var "x", float_ fx const)));
      ]
  in
  let p2 = (N.total_res (Synth.synthesize (op 0.5))).N.dsps in
  let gen = (N.total_res (Synth.synthesize (op 0.7))).N.dsps in
  check_int "x*0.5 uses no DSP" 0 p2;
  check_bool "x*0.7 uses DSPs" true (gen > 0)

let test_compile_report () =
  let impl = Hls_compile.compile fixture_op in
  check_bool "fmax positive" true (impl.Hls_compile.est_fmax_mhz > 50.0);
  check_bool "fmax within target" true (impl.Hls_compile.est_fmax_mhz <= Hls_compile.target_mhz);
  let report = Hls_compile.report impl in
  check_bool "report mentions II" true (String.length report > 40)

let test_netlist_merge () =
  let nl = Synth.synthesize fixture_op in
  let merged = N.merge ~name:"two" [ ("a", nl); ("b", nl) ] in
  check_int "cells doubled" (2 * N.cell_count nl) (N.cell_count merged);
  let ports = N.ports merged in
  check_bool "ports instance-qualified" true
    (List.exists (fun (p, _) -> p = "a.in") ports && List.exists (fun (p, _) -> p = "b.out") ports)

let test_fifo_links () =
  let nl = Synth.synthesize fixture_op in
  let merged = N.merge ~name:"two" [ ("a", nl); ("b", nl) ] in
  let linked = N.add_fifo_links merged [ ("a.out", "b.in", "fifo0", 512) ] in
  check_int "one extra cell" (N.cell_count merged + 1) (N.cell_count linked);
  let r = N.total_res linked and r0 = N.total_res merged in
  check_bool "deep fifo costs BRAM" true (r.N.brams > r0.N.brams)

let prop_area_monotone_in_unroll =
  QCheck.Test.make ~name:"more statements, no less area" ~count:20
    QCheck.(int_range 1 8)
    (fun k ->
      let op n =
        Op.make ~name:"u" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
          ~locals:(List.init n (fun i -> Op.scalar (Printf.sprintf "v%d" i) i32))
          (List.concat
             (List.init n (fun i ->
                  [
                    Op.Read (Op.LVar (Printf.sprintf "v%d" i), "in");
                    (let k = (3 * i) + 7 in
                     Op.Write
                       ("out", Expr.(Bin (Mul, var (Printf.sprintf "v%d" i), int i32 k))));
                  ])))
      in
      let a1 = (N.total_res (Synth.synthesize (op k))).N.luts in
      let a2 = (N.total_res (Synth.synthesize (op (k + 1)))).N.luts in
      a2 >= a1)

let suite =
  [
    ("sched: port-limited II", `Quick, test_sched_ii_port_limit);
    ("sched: pipeline beats sequential", `Quick, test_sched_pipeline_vs_sequential);
    ("sched: cycles scale with trips", `Quick, test_sched_cycles_scale_with_trips);
    ("sched: expression levels", `Quick, test_expr_levels);
    ("synth: structure and resources", `Quick, test_synth_structure);
    ("synth: rejects invalid operators", `Quick, test_synth_rejects_invalid);
    ("synth: macros fit tiles", `Quick, test_synth_cells_fit_tiles);
    ("synth: CSE shares datapath", `Quick, test_synth_cse);
    ("synth: power-of-two mul is a shift", `Quick, test_pow2_mul_is_free);
    ("compile: report and fmax", `Quick, test_compile_report);
    ("netlist: merge", `Quick, test_netlist_merge);
    ("netlist: fifo links", `Quick, test_fifo_links);
    QCheck_alcotest.to_alcotest prop_area_monotone_in_unroll;
  ]
