open Pld_ir

(* Aptype.infer must predict the interpreter's dynamic result types
   exactly — the -O0 code generator depends on it. *)

let dtypes =
  [|
    Dtype.Bool;
    Dtype.UInt 8;
    Dtype.SInt 8;
    Dtype.UInt 32;
    Dtype.SInt 32;
    Dtype.SFixed { width = 32; int_bits = 17 };
    Dtype.UFixed { width = 16; int_bits = 4 };
    Dtype.SFixed { width = 64; int_bits = 40 };
  |]

let value_for dt seed =
  match dt with
  | Dtype.Bool -> Value.of_bool (seed mod 2 = 0)
  | _ -> Value.of_int dt (seed mod 1000)

let test_static_matches_dynamic_binops () =
  let ops_all = [ Expr.Add; Expr.Sub; Expr.Mul ] in
  let ops_int = [ Expr.Div; Expr.Rem; Expr.And; Expr.Or; Expr.Xor ] in
  let ops_cmp = [ Expr.Eq; Expr.Lt; Expr.Ge; Expr.LAnd ] in
  Array.iteri
    (fun i da ->
      Array.iteri
        (fun j db ->
          let va = value_for da (i + 3) and vb = value_for db (j + 7) in
          let env name = if name = "a" then da else db in
          let try_op op =
            let e = Expr.Bin (op, Expr.Var "a", Expr.Var "b") in
            let static = Aptype.to_dtype (Aptype.infer env e) in
            let dynamic =
              let apply =
                match op with
                | Expr.Add -> Value.add
                | Expr.Sub -> Value.sub
                | Expr.Mul -> Value.mul
                | Expr.Div -> Value.div
                | Expr.Rem -> Value.rem
                | Expr.And -> Value.logand
                | Expr.Or -> Value.logor
                | Expr.Xor -> Value.logxor
                | _ -> fun a b -> Value.of_bool (Value.compare a b < 0)
              in
              Value.dtype (apply va vb)
            in
            Alcotest.(check string)
              (Printf.sprintf "%s %s %s" (Dtype.to_string da) (Expr.binop_name op) (Dtype.to_string db))
              (Dtype.to_string dynamic) (Dtype.to_string static)
          in
          List.iter try_op ops_all;
          if Dtype.is_integer da && Dtype.is_integer db then List.iter try_op ops_int;
          List.iter try_op ops_cmp)
        dtypes)
    dtypes

let test_static_matches_dynamic_div_fixed () =
  let da = Dtype.SFixed { width = 32; int_bits = 17 } in
  let db = Dtype.SFixed { width = 64; int_bits = 40 } in
  let env name = if name = "a" then da else db in
  let e = Expr.Bin (Expr.Div, Expr.Var "a", Expr.Var "b") in
  let static = Aptype.to_dtype (Aptype.infer env e) in
  let dynamic = Value.dtype (Value.div (Value.of_float da 3.5) (Value.of_float db 2.0)) in
  Alcotest.(check string) "fixed div type" (Dtype.to_string dynamic) (Dtype.to_string static)

let test_unops_and_shift () =
  Array.iter
    (fun dt ->
      let env _ = dt in
      let vv = value_for dt 11 in
      let neg_static = Aptype.to_dtype (Aptype.infer env (Expr.Un (Expr.Neg, Expr.Var "a"))) in
      Alcotest.(check string) "neg" (Dtype.to_string (Value.dtype (Value.neg vv))) (Dtype.to_string neg_static);
      let shift_static = Aptype.to_dtype (Aptype.infer env (Expr.Bin (Expr.Shl, Expr.Var "a", Expr.int (Dtype.SInt 32) 2))) in
      Alcotest.(check string) "shift keeps type" (Dtype.to_string (Value.dtype (Value.shift_left vv 2)))
        (Dtype.to_string shift_static))
    dtypes

let test_select_requires_matching_arms () =
  let env name = if name = "a" then Dtype.SInt 8 else Dtype.SInt 16 in
  let e = Expr.Select (Expr.bool_ true, Expr.Var "a", Expr.Var "b") in
  match Aptype.infer env e with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

let prop_nested_expression_types =
  let gen =
    QCheck.Gen.(
      let dt = oneofl [ Dtype.SInt 32; Dtype.UInt 16; Dtype.SFixed { width = 32; int_bits = 17 } ] in
      pair dt (pair (int_bound 500) (int_bound 500)))
  in
  QCheck.Test.make ~name:"nested expr: inferred = dynamic dtype" ~count:200 (QCheck.make gen)
    (fun (dt, (x, y)) ->
      let env _ = dt in
      let e =
        Expr.(Bin (Mul, Bin (Add, Var "a", Var "b"), Bin (Sub, Var "a", Var "b")))
      in
      let counters = Interp.fresh_counters () in
      ignore counters;
      let va = Value.of_int dt x and vb = Value.of_int dt y in
      let dynamic = Value.dtype (Value.mul (Value.add va vb) (Value.sub va vb)) in
      let static = Aptype.to_dtype (Aptype.infer env e) in
      Dtype.to_string static = Dtype.to_string dynamic)

let suite =
  [
    ("binops: static = dynamic", `Quick, test_static_matches_dynamic_binops);
    ("fixed division type", `Quick, test_static_matches_dynamic_div_fixed);
    ("unops and shifts", `Quick, test_unops_and_shift);
    ("select arms must match", `Quick, test_select_requires_matching_arms);
    QCheck_alcotest.to_alcotest prop_nested_expression_types;
  ]
