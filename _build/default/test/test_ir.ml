open Pld_ir

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let u32 = Dtype.word
let i32 = Dtype.SInt 32

(* An operator that doubles each of n inputs: the smallest legal
   streaming operator. *)
let doubler n =
  Op.make ~name:"doubler" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" u32 ]
    [
      Op.For
        {
          var = "i";
          lo = 0;
          hi = n;
          pipeline = true;
          body = [ Op.Read (Op.LVar "x", "in"); Op.Write ("out", Expr.(var "x" + var "x")) ];
        };
    ]

let run_op ?(processor = false) op ins =
  let inq = Queue.create () and outq = Queue.create () in
  List.iter (fun v -> Queue.push (Value.of_int u32 v) inq) ins;
  let io = Interp.queue_io ~inputs:[ ("in", inq) ] ~outputs:[ ("out", outq) ] in
  Interp.run_operator ~processor op io;
  List.map Value.to_int (List.of_seq (Queue.to_seq outq))

let test_interp_doubler () =
  Alcotest.(check (list int)) "doubled" [ 2; 4; 6 ] (run_op (doubler 3) [ 1; 2; 3 ])

let test_interp_counters () =
  let c = Interp.fresh_counters () in
  let inq = Queue.create () and outq = Queue.create () in
  List.iter (fun v -> Queue.push (Value.of_int u32 v) inq) [ 1; 2 ];
  Interp.run_operator ~counters:c (doubler 2)
    (Interp.queue_io ~inputs:[ ("in", inq) ] ~outputs:[ ("out", outq) ]);
  check_int "reads" 2 c.reads;
  check_int "writes" 2 c.writes;
  check_int "loop iterations" 2 c.loop_iterations

let test_interp_if_select () =
  let op =
    Op.make ~name:"clamp" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" i32 ]
      [
        Op.Read (Op.LVar "x", "in");
        Op.If
          ( Expr.(var "x" > int i32 100),
            [ Op.Write ("out", Expr.int i32 100) ],
            [ Op.Write ("out", Expr.var "x") ] );
      ]
  in
  Alcotest.(check (list int)) "clamped" [ 100 ] (run_op op [ 250 ]);
  Alcotest.(check (list int)) "passed" [ 7 ] (run_op op [ 7 ])

let test_interp_array () =
  (* Sum an array filled from the stream. *)
  let op =
    Op.make ~name:"sum4" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.array "buf" i32 4; Op.scalar "acc" i32 ]
      [
        Op.For
          { var = "i"; lo = 0; hi = 4; pipeline = false; body = [ Op.Read (Op.LIdx ("buf", Expr.var "i"), "in") ] };
        Op.Assign (Op.LVar "acc", Expr.int i32 0);
        Op.For
          {
            var = "i";
            lo = 0;
            hi = 4;
            pipeline = false;
            body = [ Op.Assign (Op.LVar "acc", Expr.(var "acc" + Idx ("buf", var "i"))) ];
          };
        Op.Write ("out", Expr.var "acc");
      ]
  in
  Alcotest.(check (list int)) "sum" [ 10 ] (run_op op [ 1; 2; 3; 4 ])

let test_interp_fixed_point_division () =
  (* The flow_calc core: denom/numer arithmetic over ap_fixed. *)
  let fx = Dtype.SFixed { width = 32; int_bits = 17 } in
  let op =
    Op.make ~name:"fdiv" ~inputs:[ Op.word_port "a"; Op.word_port "b" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" fx; Op.scalar "y" fx; Op.scalar "q" fx ]
      [
        Op.Read (Op.LVar "x", "a");
        Op.Read (Op.LVar "y", "b");
        Op.If
          ( Expr.(var "y" = float_ fx 0.0),
            [ Op.Assign (Op.LVar "q", Expr.float_ fx 0.0) ],
            [ Op.Assign (Op.LVar "q", Expr.(var "x" / var "y")) ] );
        Op.Write ("out", Expr.var "q");
      ]
  in
  let bits_of f = Value.to_int (Value.bitcast u32 (Value.of_float fx f)) in
  let inq_a = Queue.create () and inq_b = Queue.create () and outq = Queue.create () in
  Queue.push (Value.of_int u32 (bits_of 7.5)) inq_a;
  Queue.push (Value.of_int u32 (bits_of 2.5)) inq_b;
  Interp.run_operator op
    (Interp.queue_io ~inputs:[ ("a", inq_a); ("b", inq_b) ] ~outputs:[ ("out", outq) ]);
  let out = Value.bitcast fx (Queue.pop outq) in
  Alcotest.(check (float 1e-3)) "7.5/2.5" 3.0 (Value.to_float out)

let test_printf_gating () =
  let op =
    Op.make ~name:"dbg" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" u32 ]
      [ Op.Read (Op.LVar "x", "in"); Op.Printf ("x=", [ Expr.var "x" ]); Op.Write ("out", Expr.var "x") ]
  in
  let printed = ref 0 in
  let mk () =
    let inq = Queue.create () and outq = Queue.create () in
    Queue.push (Value.of_int u32 5) inq;
    let base = Interp.queue_io ~inputs:[ ("in", inq) ] ~outputs:[ ("out", outq) ] in
    { base with Interp.printf = (fun _ _ -> incr printed) }
  in
  Interp.run_operator ~processor:false op (mk ());
  check_int "hw elides printf" 0 !printed;
  Interp.run_operator ~processor:true op (mk ());
  check_int "processor runs printf" 1 !printed

(* ---------- validation ---------- *)

let test_validate_ok () =
  Alcotest.(check (list string)) "no errors" []
    (List.map Validate.error_to_string (Validate.check_operator (doubler 4)))

let test_validate_undeclared () =
  let op =
    Op.make ~name:"bad" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      [ Op.Write ("out", Expr.var "nope") ]
  in
  check_bool "catches undeclared" true (Validate.check_operator op <> [])

let test_validate_bad_port () =
  let op =
    Op.make ~name:"bad" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.scalar "x" u32 ]
      [ Op.Read (Op.LVar "x", "out") ]
  in
  check_bool "read from output port" true (Validate.check_operator op <> [])

let test_validate_loop_var_assign () =
  let op =
    Op.make ~name:"bad" ~inputs:[] ~outputs:[ Op.word_port "out" ]
      [
        Op.For
          {
            var = "i";
            lo = 0;
            hi = 3;
            pipeline = false;
            body = [ Op.Assign (Op.LVar "i", Expr.int i32 0) ];
          };
      ]
  in
  check_bool "loop var assignment" true (Validate.check_operator op <> [])

let test_validate_const_bounds () =
  let op =
    Op.make ~name:"bad" ~inputs:[] ~outputs:[ Op.word_port "out" ]
      ~locals:[ Op.array "a" i32 4 ]
      [ Op.Write ("out", Expr.(Idx ("a", int i32 9))) ]
  in
  check_bool "static out of bounds" true (Validate.check_operator op <> [])

let simple_graph ?(target = Graph.Hw { page_hint = None }) () =
  let op = doubler 2 in
  Graph.make ~name:"top"
    ~channels:[ Graph.channel "cin"; Graph.channel "cmid"; Graph.channel "cout" ]
    ~instances:
      [
        Graph.instance ~target ~name:"d1" op [ ("in", "cin"); ("out", "cmid") ];
        Graph.instance ~target ~name:"d2" op [ ("in", "cmid"); ("out", "cout") ];
      ]
    ~inputs:[ "cin" ] ~outputs:[ "cout" ]

let test_validate_graph_ok () =
  Alcotest.(check (list string)) "graph valid" []
    (List.map Validate.error_to_string (Validate.check_graph (simple_graph ())))

let test_validate_graph_dangling () =
  let g = simple_graph () in
  let g_bad = { g with Graph.channels = Graph.channel "floating" :: g.Graph.channels } in
  check_bool "dangling channel flagged" true (Validate.check_graph g_bad <> [])

let test_validate_graph_type_mismatch () =
  let op = doubler 2 in
  let g =
    Graph.make ~name:"top"
      ~channels:[ Graph.channel ~elem:(Dtype.UInt 16) "cin"; Graph.channel "cout" ]
      ~instances:[ Graph.instance ~name:"d" op [ ("in", "cin"); ("out", "cout") ] ]
      ~inputs:[ "cin" ] ~outputs:[ "cout" ]
  in
  check_bool "type mismatch flagged" true (Validate.check_graph g <> [])

let test_graph_topo_and_edges () =
  let g = simple_graph () in
  let order = List.map (fun i -> i.Graph.inst_name) (Graph.topo_order g) in
  Alcotest.(check (list string)) "topological" [ "d1"; "d2" ] order;
  check_int "one internal edge" 1 (List.length (Graph.edges g))

let test_graph_retarget () =
  let g = Graph.retarget (simple_graph ()) "d2" Graph.Riscv in
  match Graph.find_instance g "d2" with
  | Some i -> check_bool "is riscv" true (i.Graph.target = Graph.Riscv)
  | None -> Alcotest.fail "instance missing"

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_sources_stable () =
  let s1 = Op.source (doubler 2) and s2 = Op.source (doubler 2) in
  Alcotest.(check string) "operator source deterministic" s1 s2;
  let s3 = Op.source (doubler 3) in
  check_bool "differs when body changes" true (s1 <> s3);
  let gs = Graph.source (simple_graph ()) in
  check_bool "graph source mentions pragma" true (contains gs "pragma")

let test_value_word_bitcast_roundtrip () =
  let fx = Dtype.SFixed { width = 32; int_bits = 17 } in
  let v = Value.of_float fx (-12.375) in
  let w = Value.bitcast u32 v in
  let back = Value.bitcast fx w in
  Alcotest.(check (float 1e-6)) "roundtrip through word" (-12.375) (Value.to_float back)

let prop_doubler_matches_spec =
  QCheck.Test.make ~name:"doubler interp matches spec" ~count:50
    QCheck.(list_of_size (Gen.int_range 0 20) (int_bound 1_000_000))
    (fun xs ->
      let n = List.length xs in
      run_op (doubler n) xs = List.map (fun x -> 2 * x mod 0x100000000) xs)

let suite =
  [
    ("interp doubler", `Quick, test_interp_doubler);
    ("interp counters", `Quick, test_interp_counters);
    ("interp if/select", `Quick, test_interp_if_select);
    ("interp arrays", `Quick, test_interp_array);
    ("interp fixed-point division", `Quick, test_interp_fixed_point_division);
    ("printf gated by target", `Quick, test_printf_gating);
    ("validate accepts good operator", `Quick, test_validate_ok);
    ("validate undeclared var", `Quick, test_validate_undeclared);
    ("validate port direction", `Quick, test_validate_bad_port);
    ("validate loop var assignment", `Quick, test_validate_loop_var_assign);
    ("validate constant bounds", `Quick, test_validate_const_bounds);
    ("validate graph ok", `Quick, test_validate_graph_ok);
    ("validate dangling channel", `Quick, test_validate_graph_dangling);
    ("validate channel type mismatch", `Quick, test_validate_graph_type_mismatch);
    ("graph topo order/edges", `Quick, test_graph_topo_and_edges);
    ("graph retarget pragma", `Quick, test_graph_retarget);
    ("sources deterministic", `Quick, test_sources_stable);
    ("value word bitcast roundtrip", `Quick, test_value_word_bitcast_roundtrip);
    QCheck_alcotest.to_alcotest prop_doubler_matches_spec;
  ]
