examples/softcore_migration.mli:
