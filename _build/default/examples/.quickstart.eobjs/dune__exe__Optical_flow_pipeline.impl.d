examples/optical_flow_pipeline.ml: Array Dsl List Optical_flow Pld_core Pld_fabric Pld_ir Pld_rosetta Printf
