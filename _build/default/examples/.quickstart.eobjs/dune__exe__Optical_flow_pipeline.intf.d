examples/optical_flow_pipeline.mli:
