examples/quickstart.mli:
