examples/incremental_dev.ml: Graph List Op Option Pld_core Pld_fabric Pld_ir Pld_rosetta Printf Spam_filter Unix
