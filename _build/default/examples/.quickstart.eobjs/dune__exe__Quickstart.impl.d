examples/quickstart.ml: Dtype Expr Graph List Op Pld_core Pld_fabric Pld_ir Pld_kpn Pld_platform Printf String Value
