examples/incremental_dev.mli:
