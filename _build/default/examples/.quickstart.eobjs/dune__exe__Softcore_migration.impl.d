examples/softcore_migration.ml: Array Dtype Expr Int32 Interp List Op Pld_hls Pld_ir Pld_riscv Printf Queue String Value
