(* Same single source, two targets (§5): compile one operator both to a
   PicoRV32 softcore (real RV32IM code, shown disassembled) and to an
   FPGA page, and check the outputs are bit-identical while the cycle
   counts differ by orders of magnitude.

     dune exec examples/softcore_migration.exe *)

open Pld_ir
module Riscv = Pld_riscv

let fx = Dtype.SFixed { width = 32; int_bits = 17 }
let n = 32

let cf = Expr.float_ fx 0.75

(* A saturating multiply-accumulate operator with fixed-point types. *)
let mac =
  Op.make ~name:"mac" ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" fx; Op.scalar "acc" fx ]
    [
      Op.Assign (Op.LVar "acc", Expr.float_ fx 0.0);
      Op.For
        {
          var = "i";
          lo = 0;
          hi = n;
          pipeline = true;
          body =
            [
              Op.Read (Op.LVar "x", "in");
              Op.Printf ("acc update at", [ Expr.var "i" ]);
              Op.Assign (Op.LVar "acc", Expr.(var "acc" + (var "x" * cf))) ;
              Op.If
                (Expr.(var "acc" > float_ fx 100.0),
                 [ Op.Assign (Op.LVar "acc", Expr.float_ fx 100.0) ],
                 []);
              Op.Write ("out", Expr.var "acc");
            ];
        };
    ]

let () =
  let words =
    List.init n (fun i -> Value.bitcast Dtype.word (Value.of_float fx (float_of_int i *. 0.5)))
  in
  (* FPGA page view: HLS report. *)
  let impl = Pld_hls.Hls_compile.compile mac in
  print_endline (Pld_hls.Hls_compile.report impl);
  (* Softcore view: the compiled RV32 binary. *)
  let prog = Riscv.Codegen.compile mac in
  Printf.printf "\n-O0 binary: %d instructions, %d ap-runtime call sites, footprint %d bytes\n"
    (Array.length prog.Riscv.Codegen.image.Riscv.Asm.words)
    (Array.length prog.Riscv.Codegen.meta)
    prog.Riscv.Codegen.footprint_bytes;
  print_endline "first instructions of the operator's text section:";
  let dis = Riscv.Asm.disassemble prog.Riscv.Codegen.image in
  String.split_on_char '\n' dis |> List.filteri (fun i _ -> i < 12) |> List.iter print_endline;
  (* Run both. *)
  let interp_out =
    let inq = Queue.create () and outq = Queue.create () in
    List.iter (fun v -> Queue.push v inq) words;
    Interp.run_operator mac (Interp.queue_io ~inputs:[ ("in", inq) ] ~outputs:[ ("out", outq) ]);
    List.map Value.to_int (List.of_seq (Queue.to_seq outq))
  in
  let inq = Queue.create () in
  List.iter (fun v -> Queue.push (Int32.of_int (Value.to_int v)) inq) words;
  let outs = Queue.create () in
  let printed = ref 0 in
  let cpu =
    Riscv.Softcore.boot prog
      ~stream_read:(fun _ -> if Queue.is_empty inq then None else Some (Queue.pop inq))
      ~stream_write:(fun _ v -> Queue.push v outs; true)
      ~printf:(fun _ -> incr printed)
  in
  (match Riscv.Cpu.run cpu with
  | Riscv.Cpu.Halted -> ()
  | _ -> failwith "softcore did not halt");
  let soft_out = List.map (fun v -> Int32.to_int v land 0xFFFFFFFF) (List.of_seq (Queue.to_seq outs)) in
  Printf.printf "\nsoftcore: %d instructions retired, %d cycles, %d printf lines\n" cpu.Riscv.Cpu.retired
    cpu.Riscv.Cpu.cycles !printed;
  Printf.printf "bit-exact with the hardware semantics: %b\n"
    (List.map (fun x -> x land 0xFFFFFFFF) interp_out = soft_out);
  let fpga_cycles = impl.Pld_hls.Hls_compile.perf.Pld_hls.Sched.cycles_per_firing in
  Printf.printf "FPGA page: %d cycles per frame @200MHz; softcore: %d cycles -> %.0fx slower (\"%s\")\n"
    fpga_cycles cpu.Riscv.Cpu.cycles
    (float_of_int cpu.Riscv.Cpu.cycles /. float_of_int fpga_cycles)
    "the price of the -O0 instant compile"
