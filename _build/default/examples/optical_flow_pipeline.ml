(* The paper's flagship workload (Fig. 2): the Lucas-Kanade optical
   flow pipeline, compiled with every flow PLD offers from the same
   source, with per-flow performance and compile-time numbers.

     dune exec examples/optical_flow_pipeline.exe *)

open Pld_rosetta
module B = Pld_core.Build
module R = Pld_core.Runner

let () =
  let fp = Pld_fabric.Floorplan.u50 () in
  let g = Optical_flow.graph () in
  print_endline "== dataflow graph (top.cpp equivalent) ==";
  print_endline (Pld_ir.Graph.source g);
  print_endline "\n== flow_calc operator (Fig. 2(d) equivalent) ==";
  (match Pld_ir.Graph.find_instance g "flow_calc" with
  | Some i -> print_endline (Pld_ir.Op.source i.Pld_ir.Graph.op)
  | None -> ());
  let inputs = Optical_flow.workload () in
  let cache = B.create_cache () in
  Printf.printf "\n%-8s %-10s %-10s %-12s %-14s %s\n" "flow" "compile(s)" "Fmax" "ms/frame" "check" "bottleneck";
  List.iter
    (fun level ->
      let app = B.compile ~cache fp g ~level in
      let compile_s =
        match level with
        | B.O0 | B.O1 -> app.B.report.B.parallel_seconds
        | B.O3 | B.Vitis -> app.B.report.B.serial_seconds
      in
      let r = R.run app ~inputs in
      Printf.printf "%-8s %-10.2f %-10s %-12.4f %-14b %s\n%!" (B.level_name level) compile_s
        (Printf.sprintf "%.0fMHz" r.R.perf.R.fmax_mhz)
        r.R.perf.R.ms_per_input
        (Optical_flow.check ~inputs r.R.outputs)
        r.R.perf.R.bottleneck)
    [ B.Vitis; B.O3; B.O1; B.O0 ];
  (* Show a corner of the flow field. *)
  let app = B.compile ~cache fp g ~level:B.O3 in
  let r = R.run app ~inputs in
  let out = Array.of_list (List.assoc "flow_out" r.R.outputs) in
  print_endline "\nflow field sample (u component, rows 4-7, cols 4-9):";
  for row = 4 to 7 do
    for col = 4 to 9 do
      let i = (row * Optical_flow.width) + col in
      Printf.printf "%7.2f" (Dsl.fx_of_word out.(2 * i))
    done;
    print_newline ()
  done;
  print_endline "(the frame pair is a one-pixel right shift: u should sit near -1 in the interior)"
