lib/fabric/floorplan.ml: Buffer Char Device List Pld_netlist
