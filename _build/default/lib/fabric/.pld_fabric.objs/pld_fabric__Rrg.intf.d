lib/fabric/rrg.mli: Device Floorplan
