lib/fabric/rrg.ml: Array Device Floorplan List Printf
