lib/fabric/device.ml: Array Buffer Pld_netlist
