lib/fabric/floorplan.mli: Device Pld_netlist
