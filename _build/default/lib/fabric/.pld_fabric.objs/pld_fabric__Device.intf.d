lib/fabric/device.mli: Pld_netlist
