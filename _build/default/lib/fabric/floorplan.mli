(** The PLD page floorplan (Fig. 8, Tab. 1): the user DFX region
    divided into 22 L2 pages of four types, the linking-network region,
    and the static shell. *)

type rect = { x0 : int; y0 : int; x1 : int; y1 : int }  (** inclusive *)

type page = {
  page_id : int;  (** 1-based, as in Fig. 3 *)
  ptype : int;  (** 1..4, Tab. 1 page type *)
  rect : rect;
  capacity : Pld_netlist.Netlist.res;
  slr : int;
  noc_leaf : int * int;  (** tile where the leaf interface meets the NoC *)
}

type t = {
  device : Device.t;
  pages : page list;
  l1_region : rect;  (** the level-1 DFX region (all user logic + NoC) *)
  noc_region : rect;
  shell_region : rect;
}

val u50 : unit -> t
(** 22 pages: 7 Type-1, 7 Type-2, 7 Type-3, 1 Type-4. *)

val find_page : t -> int -> page
(** Raises [Not_found] for unknown ids. *)

val page_of_tile : t -> int -> int -> page option

val rect_tiles : rect -> (int * int) list

val rect_capacity : Device.t -> rect -> Pld_netlist.Netlist.res

val type_summary : t -> (int * Pld_netlist.Netlist.res * int) list
(** [(ptype, capacity, count)] rows — our Table 1. *)

val render : t -> string
(** ASCII floorplan with page ids. *)
