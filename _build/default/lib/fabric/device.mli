(** Island-style FPGA device model.

    The fabric is a grid of heterogeneous tiles (CLB / BRAM column /
    DSP column), two SLRs stacked vertically, a static-shell column
    holding the PCIe logic, and an HBM row at the bottom — an
    XCU50-class device scaled down ~16× so that place & route runs in
    seconds while keeping the same structure and asymptotics. *)

type tile_kind =
  | Clb
  | Bram  (** BRAM column tile: one BRAM18 *)
  | Dsp  (** DSP column tile *)
  | Shell  (** static region (PCIe shell), not placeable by users *)
  | Noc  (** linking-network / interface region (L1 overlay logic) *)
  | Hbm  (** HBM hard IP row *)

type t = {
  dev_name : string;
  cols : int;
  rows : int;
  kind : tile_kind array array;  (** [kind.(x).(y)] *)
  slr_boundary_row : int;  (** rows >= this are SLR1 *)
}

val tile_capacity : tile_kind -> Pld_netlist.Netlist.res
(** Placeable resources of one tile ([Shell]/[Noc]/[Hbm] are empty). *)

val slr_of_row : t -> int -> int

val in_bounds : t -> int -> int -> bool
val kind_at : t -> int -> int -> tile_kind

val u50_model : unit -> t
(** The scaled XCU50: 40×30 tiles, SLR boundary at row 14, HBM rows
    0–1, shell columns 35–39, NoC column block 27–34. *)

val total_user_resources : t -> Pld_netlist.Netlist.res
(** Sum over CLB/BRAM/DSP tiles — the "available to developers" count
    reported in §7.1. *)

val render : t -> string
(** ASCII floorplan sketch (one char per tile). *)
