type node = int

type edge = { src : node; dst : node; capacity : int; delay_ns : float }

type t = {
  device : Device.t;
  region : Floorplan.rect;
  nodes : int;
  edges : edge array;
  out_edges : int list array;
}

let wires_per_boundary = 14
let slr_wires = 4
let base_delay = 0.08
let slr_delay = 0.4

let width r = r.Floorplan.x1 - r.Floorplan.x0 + 1
let height r = r.Floorplan.y1 - r.Floorplan.y0 + 1

let node_of_tile t x y =
  let r = t.region in
  if x < r.Floorplan.x0 || x > r.Floorplan.x1 || y < r.Floorplan.y0 || y > r.Floorplan.y1 then
    invalid_arg (Printf.sprintf "Rrg.node_of_tile: (%d,%d) outside region" x y);
  ((y - r.Floorplan.y0) * width r) + (x - r.Floorplan.x0)

let tile_of_node t n =
  let r = t.region in
  (r.Floorplan.x0 + (n mod width r), r.Floorplan.y0 + (n / width r))

let build device region =
  let w = width region and h = height region in
  let nodes = w * h in
  let edges = ref [] in
  let idx x y = ((y - region.Floorplan.y0) * w) + (x - region.Floorplan.x0) in
  for x = region.Floorplan.x0 to region.Floorplan.x1 do
    for y = region.Floorplan.y0 to region.Floorplan.y1 do
      let add dx dy =
        let nx = x + dx and ny = y + dy in
        if
          nx >= region.Floorplan.x0 && nx <= region.Floorplan.x1 && ny >= region.Floorplan.y0
          && ny <= region.Floorplan.y1
        then begin
          let crosses_slr =
            dy <> 0
            && Device.slr_of_row device y <> Device.slr_of_row device ny
          in
          let capacity = if crosses_slr then slr_wires else wires_per_boundary in
          let delay_ns = if crosses_slr then slr_delay else base_delay in
          edges := { src = idx x y; dst = idx nx ny; capacity; delay_ns } :: !edges
        end
      in
      add 1 0;
      add (-1) 0;
      add 0 1;
      add 0 (-1)
    done
  done;
  let edges = Array.of_list (List.rev !edges) in
  let out_edges = Array.make nodes [] in
  Array.iteri (fun i e -> out_edges.(e.src) <- i :: out_edges.(e.src)) edges;
  { device; region; nodes; edges; out_edges }

let manhattan t a b =
  let ax, ay = tile_of_node t a and bx, by = tile_of_node t b in
  abs (ax - bx) + abs (ay - by)
