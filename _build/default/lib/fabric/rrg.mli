(** Routing-resource graph: one node per tile, directed edges between
    orthogonal neighbours with finite wire capacity. SLR-crossing edges
    are scarcer and slower (§2.5). Built either for the whole device or
    for a page rectangle (the abstract-shell compile scope). *)

type node = int
(** Dense index; [node_of_tile]/[tile_of_node] convert. *)

type edge = {
  src : node;
  dst : node;
  capacity : int;  (** parallel wires *)
  delay_ns : float;
}

type t = {
  device : Device.t;
  region : Floorplan.rect;
  nodes : int;  (** count *)
  edges : edge array;
  out_edges : int list array;  (** edge indices by source node *)
}

val node_of_tile : t -> int -> int -> node
(** Raises [Invalid_argument] outside the region. *)

val tile_of_node : t -> node -> int * int

val build : Device.t -> Floorplan.rect -> t
(** Wire capacity per tile boundary is 14; SLR crossings get 4 wires at
    3× delay. *)

val manhattan : t -> node -> node -> int
