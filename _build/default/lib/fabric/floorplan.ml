module N = Pld_netlist.Netlist

type rect = { x0 : int; y0 : int; x1 : int; y1 : int }

type page = {
  page_id : int;
  ptype : int;
  rect : rect;
  capacity : N.res;
  slr : int;
  noc_leaf : int * int;
}

type t = {
  device : Device.t;
  pages : page list;
  l1_region : rect;
  noc_region : rect;
  shell_region : rect;
}

let rect_tiles r =
  let out = ref [] in
  for x = r.x0 to r.x1 do
    for y = r.y0 to r.y1 do
      out := (x, y) :: !out
    done
  done;
  List.rev !out

let rect_capacity device r =
  List.fold_left
    (fun acc (x, y) -> N.res_add acc (Device.tile_capacity (Device.kind_at device x y)))
    N.res_zero (rect_tiles r)

let u50 () =
  let device = Device.u50_model () in
  let band i = (2 + (i * 4), 2 + (i * 4) + 3) in
  let mk_page page_id ptype rect =
    let capacity = rect_capacity device rect in
    let slr = Device.slr_of_row device ((rect.y0 + rect.y1) / 2) in
    (* The leaf interface sits on the page edge facing the linking
       network column block (cols 27-34) — on the nearest CLB column,
       since port logic needs LUTs/FFs. *)
    let mid_y = (rect.y0 + rect.y1) / 2 in
    let rec clb_col x =
      if x < rect.x0 then rect.x0
      else if Device.kind_at device x mid_y = Device.Clb then x
      else clb_col (x - 1)
    in
    let noc_leaf = (clb_col rect.x1, mid_y) in
    { page_id; ptype; rect; capacity; slr; noc_leaf }
  in
  let group_pages first_id ptype x0 x1 =
    List.init 7 (fun i ->
        let y0, y1 = band i in
        mk_page (first_id + i) ptype { x0; y0; x1; y1 })
  in
  let pages =
    group_pages 1 1 0 9 @ group_pages 8 2 10 17 @ group_pages 15 3 18 26
    @ [ mk_page 22 4 { x0 = 27; y0 = 2; x1 = 34; y1 = 4 } ]
  in
  {
    device;
    pages;
    l1_region = { x0 = 0; y0 = 2; x1 = 34; y1 = 29 };
    noc_region = { x0 = 27; y0 = 5; x1 = 34; y1 = 29 };
    shell_region = { x0 = 35; y0 = 0; x1 = 39; y1 = 29 };
  }

let find_page t id =
  match List.find_opt (fun p -> p.page_id = id) t.pages with
  | Some p -> p
  | None -> raise Not_found

let page_of_tile t x y =
  List.find_opt (fun p -> x >= p.rect.x0 && x <= p.rect.x1 && y >= p.rect.y0 && y <= p.rect.y1) t.pages

let type_summary t =
  let types = List.sort_uniq compare (List.map (fun p -> p.ptype) t.pages) in
  List.map
    (fun ty ->
      let members = List.filter (fun p -> p.ptype = ty) t.pages in
      match members with
      | [] -> assert false
      | p :: _ -> (ty, p.capacity, List.length members))
    types

let render t =
  let d = t.device in
  let buf = Buffer.create 2048 in
  for y = d.Device.rows - 1 downto 0 do
    for x = 0 to d.Device.cols - 1 do
      let c =
        match page_of_tile t x y with
        | Some p -> Char.chr (Char.code 'a' + ((p.page_id - 1) mod 26))
        | None -> begin
            match Device.kind_at d x y with
            | Device.Shell -> 'S'
            | Device.Noc -> 'N'
            | Device.Hbm -> 'H'
            | Device.Clb | Device.Bram | Device.Dsp -> '.'
          end
      in
      Buffer.add_char buf c
    done;
    if y = d.Device.slr_boundary_row then Buffer.add_string buf "  <- SLR boundary";
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
