module N = Pld_netlist.Netlist

type tile_kind = Clb | Bram | Dsp | Shell | Noc | Hbm

type t = {
  dev_name : string;
  cols : int;
  rows : int;
  kind : tile_kind array array;
  slr_boundary_row : int;
}

let tile_capacity = function
  | Clb -> { N.res_zero with luts = 48; ffs = 96 }
  | Bram -> { N.res_zero with brams = 1 }
  | Dsp -> { N.res_zero with dsps = 2 }
  | Shell | Noc | Hbm -> N.res_zero

let slr_of_row t row = if row >= t.slr_boundary_row then 1 else 0
let in_bounds t x y = x >= 0 && x < t.cols && y >= 0 && y < t.rows
let kind_at t x y = t.kind.(x).(y)

(* Column composition of the three page groups plus the interface
   column block. The patterns make the four page types of Tab. 1
   heterogeneous in BRAM/DSP mix, like real fabric columns. *)
let group_a = [| Clb; Clb; Clb; Clb; Bram; Clb; Clb; Clb; Bram; Dsp |] (* cols 0-9 *)
let group_b = [| Clb; Clb; Clb; Bram; Clb; Clb; Clb; Dsp |] (* cols 10-17 *)
let group_c = [| Clb; Clb; Clb; Bram; Clb; Clb; Clb; Dsp; Dsp |] (* cols 18-26 *)
let group_d = [| Clb; Clb; Clb; Bram; Clb; Clb; Clb; Dsp |] (* cols 27-34, Type-4 + NoC *)

let u50_model () =
  let cols = 40 and rows = 30 in
  let kind = Array.make_matrix cols rows Clb in
  let column_kind x =
    if x < 10 then group_a.(x)
    else if x < 18 then group_b.(x - 10)
    else if x < 27 then group_c.(x - 18)
    else if x < 35 then group_d.(x - 27)
    else Shell
  in
  for x = 0 to cols - 1 do
    for y = 0 to rows - 1 do
      (* The linking-network region (cols 27-34, rows >= 5) is ordinary
         fabric at the device level: the -O1 overlay claims it, while a
         monolithic -O3 compile may place user logic there. *)
      let k =
        if column_kind x = Shell then Shell
        else if y <= 1 then Hbm (* HBM hard IP rows *)
        else column_kind x
      in
      kind.(x).(y) <- k
    done
  done;
  (* Row 14 starts SLR1: page bands are 4 rows tall starting at row 2,
     so no page crosses the SLR boundary. *)
  { dev_name = "xcu50-model"; cols; rows; kind; slr_boundary_row = 14 }

let total_user_resources t =
  let acc = ref N.res_zero in
  for x = 0 to t.cols - 1 do
    for y = 0 to t.rows - 1 do
      match t.kind.(x).(y) with
      | Clb | Bram | Dsp -> acc := N.res_add !acc (tile_capacity t.kind.(x).(y))
      | Shell | Noc | Hbm -> ()
    done
  done;
  !acc

let render t =
  let char_of = function Clb -> '.' | Bram -> 'B' | Dsp -> 'D' | Shell -> 'S' | Noc -> 'N' | Hbm -> 'H' in
  let buf = Buffer.create ((t.cols + 1) * t.rows) in
  for y = t.rows - 1 downto 0 do
    for x = 0 to t.cols - 1 do
      Buffer.add_char buf (char_of t.kind.(x).(y))
    done;
    if y = t.slr_boundary_row then Buffer.add_string buf "  <- SLR boundary";
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
