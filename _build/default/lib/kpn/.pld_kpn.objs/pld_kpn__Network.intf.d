lib/kpn/network.mli: Dtype Pld_ir Value
