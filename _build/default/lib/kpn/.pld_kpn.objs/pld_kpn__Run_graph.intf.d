lib/kpn/run_graph.mli: Graph Interp Network Pld_ir Value
