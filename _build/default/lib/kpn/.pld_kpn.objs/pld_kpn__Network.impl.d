lib/kpn/network.ml: Dtype Effect List Pld_ir Queue Value
