lib/kpn/run_graph.ml: Dtype Graph Hashtbl Interp List Network Pld_ir String Validate Value
