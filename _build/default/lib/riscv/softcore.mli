(** Boot a compiled operator on a PicoRV32-model softcore: loads text
    and data into unified memory and installs the firmware ap-runtime
    as the [ecall] handler. *)

val boot :
  ?mem_kb:int ->
  ?profile:Cpu.profile ->
  stream_read:(int -> int32 option) ->
  stream_write:(int -> int32 -> bool) ->
  ?printf:(string -> unit) ->
  Codegen.program ->
  Cpu.t
(** Stream callbacks are indexed by the operator's port order (inputs
    and outputs numbered independently from 0). *)

val read_slot : Cpu.t -> addr:int -> Pld_ir.Aptype.t -> Pld_ir.Value.t
val write_slot : Cpu.t -> addr:int -> Pld_ir.Value.t -> unit
(** Slot codec shared with the runtime handler (exposed for tests). *)
