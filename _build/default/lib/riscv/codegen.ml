open Pld_ir

type site =
  | Sbin of Expr.binop * Aptype.t * Aptype.t
  | Sun of Expr.unop * Aptype.t
  | Scast of Aptype.t * Aptype.t
  | Sbitcast of Aptype.t * Aptype.t
  | Sprint of string * Aptype.t list

type program = {
  op_name : string;
  image : Asm.image;
  data_init : (int * int32 array) list;
  meta : site array;
  var_layout : (string * int) list;
  footprint_bytes : int;
  port_map : (string * int) list;
}

let data_base = 0x10000
let temp_base = 0x1C000
let spill_base = 0x2C000
let temp_slot_bytes = 32
let max_temps = (spill_base - temp_base) / temp_slot_bytes

exception Unsupported of string

let unsupported fmt = Printf.ksprintf (fun m -> raise (Unsupported m)) fmt

(* Soft ap-runtime cycle model (documented in DESIGN.md): a library
   call on an unpipelined PicoRV32 costs dispatch overhead plus work
   proportional to operand words; division iterates per bit. *)
let words_of_width w = (w + 31) / 32

let cost_of_site = function
  | Sbin (op, ta, tb) -> begin
      let w = max ta.Aptype.width tb.Aptype.width in
      let words = words_of_width w in
      match op with
      | Expr.Mul -> 18 + (12 * words * words)
      | Expr.Div | Expr.Rem ->
          (* Long division iterates over the working width. *)
          let ww = ta.Aptype.width + tb.Aptype.width + 1 in
          18 + (35 * ww / 8 * words)
      | Expr.Add | Expr.Sub -> 18 + (6 * words)
      | Expr.And | Expr.Or | Expr.Xor | Expr.Shl | Expr.Shr -> 18 + (5 * words)
      | Expr.Eq | Expr.Ne | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge | Expr.LAnd | Expr.LOr ->
          18 + (4 * words)
    end
  | Sun (_, ta) -> 18 + (5 * words_of_width ta.Aptype.width)
  | Scast (ta, tb) -> 14 + (4 * words_of_width (max ta.Aptype.width tb.Aptype.width))
  | Sbitcast (ta, tb) -> 10 + (3 * words_of_width (max ta.Aptype.width tb.Aptype.width))
  | Sprint (_, args) -> 100 + (40 * List.length args)

let slot_bytes_of_width w = ((w + 31) / 32) * 4

let compile (op : Op.t) =
  (match Validate.check_operator op with
  | [] -> ()
  | errs ->
      unsupported "operator %s invalid: %s" op.name
        (String.concat "; " (List.map Validate.error_to_string errs)));
  (* ----- data layout ----- *)
  let var_addr : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let var_dtype : (string, Dtype.t) Hashtbl.t = Hashtbl.create 16 in
  let data_init = ref [] in
  let cursor = ref data_base in
  let alloc name bytes =
    let addr = !cursor in
    cursor := !cursor + ((bytes + 3) / 4 * 4);
    Hashtbl.replace var_addr name addr;
    addr
  in
  let words_of_value v =
    let bits = Value.to_bits v in
    let w = Pld_apfixed.Bits.width bits in
    Array.init (words_of_width w) (fun k ->
        let hi = min (w - 1) ((k * 32) + 31) in
        let chunk = Pld_apfixed.Bits.extract bits ~hi ~lo:(k * 32) in
        Int32.of_int (Pld_apfixed.Bits.to_int_trunc (Pld_apfixed.Bits.resize ~signed:false ~width:32 chunk)))
  in
  List.iter
    (fun d ->
      match d with
      | Op.Scalar { name; dtype; init } ->
          let w = Dtype.width dtype in
          if w > 64 then unsupported "%s: local %s is %d bits (> 64) for -O0" op.name name w;
          Hashtbl.replace var_dtype name dtype;
          let addr = alloc name (slot_bytes_of_width w) in
          Option.iter (fun v -> data_init := (addr, words_of_value (Value.cast dtype v)) :: !data_init) init
      | Op.Array { name; dtype; length; init } ->
          let w = Dtype.width dtype in
          if w > 64 then unsupported "%s: array %s elements are %d bits (> 64) for -O0" op.name name w;
          Hashtbl.replace var_dtype name dtype;
          let elem = slot_bytes_of_width w in
          let addr = alloc name (elem * length) in
          Option.iter
            (fun vs ->
              Array.iteri
                (fun i v ->
                  data_init := (addr + (i * elem), words_of_value (Value.cast dtype v)) :: !data_init)
                vs)
            init)
    op.locals;
  (* Constant pool: interned by (dtype, bits). *)
  let const_pool : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let intern_const v =
    let key = Dtype.to_string (Value.dtype v) ^ "/" ^ Pld_apfixed.Bits.to_hex (Value.to_bits v) in
    match Hashtbl.find_opt const_pool key with
    | Some addr -> addr
    | None ->
        let addr = alloc ("$const" ^ key) (slot_bytes_of_width (Dtype.width (Value.dtype v))) in
        data_init := (addr, words_of_value v) :: !data_init;
        Hashtbl.replace const_pool key addr;
        addr
  in
  (* ----- type environment ----- *)
  let loop_vars : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let env name =
    match Hashtbl.find_opt var_dtype name with
    | Some dt -> dt
    | None ->
        if Hashtbl.mem loop_vars name then Dtype.SInt 32
        else invalid_arg ("Codegen: unknown variable " ^ name)
  in
  (* Loop variables live in slots too. *)
  let loop_var_addr name =
    match Hashtbl.find_opt var_addr ("$loop_" ^ name) with
    | Some a -> a
    | None -> alloc ("$loop_" ^ name) 4
  in
  (* ----- code emission ----- *)
  let code = ref [] in
  let emit it = code := it :: !code in
  let meta = ref [] in
  let nmeta = ref 0 in
  let site s =
    meta := s :: !meta;
    incr nmeta;
    !nmeta - 1
  in
  let label_counter = ref 0 in
  let fresh_label prefix =
    incr label_counter;
    Printf.sprintf "%s_%d" prefix !label_counter
  in
  let li r v = emit (Asm.Li (r, Int32.of_int v)) in
  let ecall site_idx =
    li Isa.a7 site_idx;
    emit (Asm.Instr Isa.Ecall)
  in
  let temp_addr idx =
    if idx >= max_temps then unsupported "%s: expression temporaries exceed page memory" op.name;
    temp_base + (idx * temp_slot_bytes)
  in
  let spill_cell depth = spill_base + (4 * depth) in
  (* Port indices. *)
  let port_map =
    List.mapi (fun i (p : Op.port) -> (p.port_name, i)) op.inputs
    @ List.mapi (fun i (p : Op.port) -> (p.port_name, i)) op.outputs
  in
  let in_port p = List.assoc p (List.mapi (fun i (q : Op.port) -> (q.port_name, i)) op.inputs) in
  let out_port p = List.assoc p (List.mapi (fun i (q : Op.port) -> (q.port_name, i)) op.outputs) in
  let word_t = Aptype.of_dtype Dtype.word in
  (* eval emits code leaving the ADDRESS of the value in t0 and returns
     its static type. [depth] indexes temp slots and spill cells. *)
  let rec eval depth (e : Expr.t) : Aptype.t =
    let ty = Aptype.infer env e in
    if ty.Aptype.width > temp_slot_bytes * 8 then
      unsupported "%s: intermediate of %d bits exceeds the ap-runtime limit" op.name ty.Aptype.width;
    (match e with
    | Expr.Const v -> li Isa.t0 (intern_const v)
    | Expr.Var v ->
        if Hashtbl.mem loop_vars v then li Isa.t0 (loop_var_addr v)
        else li Isa.t0 (Hashtbl.find var_addr v)
    | Expr.Idx (a, i) ->
        let ti = eval depth i in
        (* Load the low word of the index value (indices fit 32 bits). *)
        ignore ti;
        emit (Asm.Instr (Isa.Load (Isa.W, false, Isa.t1, Isa.t0, 0)));
        let elem = slot_bytes_of_width (Dtype.width (env a)) in
        let shift = match elem with 4 -> 2 | 8 -> 3 | _ -> -1 in
        if shift >= 0 then emit (Asm.Instr (Isa.Alui (Isa.Slli, Isa.t1, Isa.t1, shift)))
        else begin
          li Isa.t2 elem;
          emit (Asm.Instr (Isa.Alur (Isa.Rmul, Isa.t1, Isa.t1, Isa.t2)))
        end;
        li Isa.t0 (Hashtbl.find var_addr a);
        emit (Asm.Instr (Isa.Alur (Isa.Radd, Isa.t0, Isa.t0, Isa.t1)))
    | Expr.Bin (bop, x, y) ->
        let tx = eval depth x in
        (* Spill the left operand's address while the right evaluates. *)
        li Isa.t2 (spill_cell depth);
        emit (Asm.Instr (Isa.Store (Isa.W, Isa.t0, Isa.t2, 0)));
        let ty' = eval (depth + 1) y in
        emit (Asm.Instr (Isa.Alui (Isa.Addi, Isa.a2, Isa.t0, 0)));
        li Isa.t2 (spill_cell depth);
        emit (Asm.Instr (Isa.Load (Isa.W, false, Isa.a1, Isa.t2, 0)));
        li Isa.a0 (temp_addr depth);
        ecall (site (Sbin (bop, tx, ty')));
        li Isa.t0 (temp_addr depth)
    | Expr.Un (uop, x) ->
        let tx = eval depth x in
        emit (Asm.Instr (Isa.Alui (Isa.Addi, Isa.a1, Isa.t0, 0)));
        li Isa.a0 (temp_addr depth);
        ecall (site (Sun (uop, tx)));
        li Isa.t0 (temp_addr depth)
    | Expr.Cast (dt, x) ->
        let tx = eval depth x in
        emit (Asm.Instr (Isa.Alui (Isa.Addi, Isa.a1, Isa.t0, 0)));
        li Isa.a0 (temp_addr depth);
        ecall (site (Scast (tx, Aptype.of_dtype dt)));
        li Isa.t0 (temp_addr depth)
    | Expr.Bitcast (dt, x) ->
        let tx = eval depth x in
        emit (Asm.Instr (Isa.Alui (Isa.Addi, Isa.a1, Isa.t0, 0)));
        li Isa.a0 (temp_addr depth);
        ecall (site (Sbitcast (tx, Aptype.of_dtype dt)));
        li Isa.t0 (temp_addr depth)
    | Expr.Select (c, x, y) ->
        let lelse = fresh_label "sel_else" and lend = fresh_label "sel_end" in
        ignore (eval depth c);
        emit (Asm.Instr (Isa.Load (Isa.W, false, Isa.t1, Isa.t0, 0)));
        emit (Asm.Bj (Isa.Beq, Isa.t1, Isa.zero, lelse));
        let tx = eval depth x in
        emit (Asm.Instr (Isa.Alui (Isa.Addi, Isa.a1, Isa.t0, 0)));
        li Isa.a0 (temp_addr depth);
        ecall (site (Scast (tx, tx)));
        emit (Asm.J lend);
        emit (Asm.Label lelse);
        let ty' = eval depth y in
        emit (Asm.Instr (Isa.Alui (Isa.Addi, Isa.a1, Isa.t0, 0)));
        li Isa.a0 (temp_addr depth);
        ecall (site (Scast (ty', ty')));
        emit (Asm.Label lend);
        li Isa.t0 (temp_addr depth));
    ty
  in
  (* Store the value at address t0 (type [src_ty]) into an lvalue. *)
  let store_lvalue depth lv src_ty ~bitcast =
    match lv with
    | Op.LVar v ->
        let dst_ty = Aptype.of_dtype (env v) in
        let addr = if Hashtbl.mem loop_vars v then loop_var_addr v else Hashtbl.find var_addr v in
        emit (Asm.Instr (Isa.Alui (Isa.Addi, Isa.a1, Isa.t0, 0)));
        li Isa.a0 addr;
        ecall (site (if bitcast then Sbitcast (src_ty, dst_ty) else Scast (src_ty, dst_ty)))
    | Op.LIdx (a, i) ->
        (* Save the source address, compute the element address. *)
        li Isa.t2 (spill_cell depth);
        emit (Asm.Instr (Isa.Store (Isa.W, Isa.t0, Isa.t2, 0)));
        ignore (eval (depth + 1) i);
        emit (Asm.Instr (Isa.Load (Isa.W, false, Isa.t1, Isa.t0, 0)));
        let elem = slot_bytes_of_width (Dtype.width (env a)) in
        let shift = match elem with 4 -> 2 | 8 -> 3 | _ -> -1 in
        if shift >= 0 then emit (Asm.Instr (Isa.Alui (Isa.Slli, Isa.t1, Isa.t1, shift)))
        else begin
          li Isa.t2 elem;
          emit (Asm.Instr (Isa.Alur (Isa.Rmul, Isa.t1, Isa.t1, Isa.t2)))
        end;
        li Isa.a0 (Hashtbl.find var_addr a);
        emit (Asm.Instr (Isa.Alur (Isa.Radd, Isa.a0, Isa.a0, Isa.t1)));
        li Isa.t2 (spill_cell depth);
        emit (Asm.Instr (Isa.Load (Isa.W, false, Isa.a1, Isa.t2, 0)));
        let dst_ty = Aptype.of_dtype (env a) in
        ecall (site (if bitcast then Sbitcast (src_ty, dst_ty) else Scast (src_ty, dst_ty)))
  in
  let rec stmt (s : Op.stmt) =
    match s with
    | Op.Assign (lv, e) ->
        let ty = eval 0 e in
        store_lvalue 0 lv ty ~bitcast:false
    | Op.Read (lv, port) ->
        (* Blocking MMIO load into a scratch temp, then bitcast. *)
        li Isa.t1 (Cpu.mmio_in_base + (8 * in_port port));
        emit (Asm.Instr (Isa.Load (Isa.W, false, Isa.t2, Isa.t1, 0)));
        li Isa.t0 (temp_addr 0);
        emit (Asm.Instr (Isa.Store (Isa.W, Isa.t2, Isa.t0, 0)));
        store_lvalue 0 lv word_t ~bitcast:true
    | Op.Write (port, e) ->
        let ty = eval 0 e in
        emit (Asm.Instr (Isa.Alui (Isa.Addi, Isa.a1, Isa.t0, 0)));
        li Isa.a0 (temp_addr 1);
        ecall (site (Sbitcast (ty, word_t)));
        li Isa.t0 (temp_addr 1);
        emit (Asm.Instr (Isa.Load (Isa.W, false, Isa.t2, Isa.t0, 0)));
        li Isa.t1 (Cpu.mmio_out_base + (8 * out_port port));
        emit (Asm.Instr (Isa.Store (Isa.W, Isa.t2, Isa.t1, 0)))
    | Op.Printf (msg, args) ->
        let tys =
          List.mapi
            (fun i a ->
              let ty = eval 0 a in
              emit (Asm.Instr (Isa.Alui (Isa.Addi, Isa.a1, Isa.t0, 0)));
              li Isa.a0 (temp_addr (8 + i));
              ecall (site (Scast (ty, ty)));
              ty)
            args
        in
        (* args now sit in consecutive temps starting at 8 *)
        li Isa.a1 (temp_addr 8);
        ecall (site (Sprint (msg, tys)))
    | Op.For { var; lo; hi; body; _ } ->
        let lhead = fresh_label "for_head" and lend = fresh_label "for_end" in
        Hashtbl.replace loop_vars var ();
        let addr = loop_var_addr var in
        li Isa.t0 lo;
        li Isa.t1 addr;
        emit (Asm.Instr (Isa.Store (Isa.W, Isa.t0, Isa.t1, 0)));
        emit (Asm.Label lhead);
        li Isa.t1 addr;
        emit (Asm.Instr (Isa.Load (Isa.W, false, Isa.t0, Isa.t1, 0)));
        li Isa.t2 hi;
        emit (Asm.Bj (Isa.Bge, Isa.t0, Isa.t2, lend));
        List.iter stmt body;
        li Isa.t1 addr;
        emit (Asm.Instr (Isa.Load (Isa.W, false, Isa.t0, Isa.t1, 0)));
        emit (Asm.Instr (Isa.Alui (Isa.Addi, Isa.t0, Isa.t0, 1)));
        emit (Asm.Instr (Isa.Store (Isa.W, Isa.t0, Isa.t1, 0)));
        emit (Asm.J lhead);
        emit (Asm.Label lend);
        Hashtbl.remove loop_vars var
    | Op.If (c, a, b) ->
        let lelse = fresh_label "if_else" and lend = fresh_label "if_end" in
        ignore (eval 0 c);
        emit (Asm.Instr (Isa.Load (Isa.W, false, Isa.t1, Isa.t0, 0)));
        emit (Asm.Bj (Isa.Beq, Isa.t1, Isa.zero, lelse));
        List.iter stmt a;
        emit (Asm.J lend);
        emit (Asm.Label lelse);
        List.iter stmt b;
        emit (Asm.Label lend)
  in
  List.iter stmt op.body;
  (* Halt. *)
  li Isa.t1 Cpu.mmio_halt;
  emit (Asm.Instr (Isa.Store (Isa.W, Isa.zero, Isa.t1, 0)));
  let items = List.rev !code in
  let image = Asm.assemble items in
  let text_bytes = 4 * Array.length image.Asm.words in
  if text_bytes > data_base then
    unsupported "%s: text %d bytes overflows the data base" op.name text_bytes;
  let footprint = text_bytes + (!cursor - data_base) in
  if !cursor > temp_base then unsupported "%s: data %d bytes overflows page memory" op.name (!cursor - data_base);
  {
    op_name = op.name;
    image;
    data_init = List.rev !data_init;
    meta = Array.of_list (List.rev !meta);
    var_layout = Hashtbl.fold (fun k v acc -> (k, v) :: acc) var_addr [];
    footprint_bytes = footprint;
    port_map;
  }
