open Pld_ir
module Bits = Pld_apfixed.Bits

let read_slot cpu ~addr (ty : Aptype.t) =
  let words = (ty.Aptype.width + 31) / 32 in
  let bits = ref (Bits.zero (max 1 (words * 32))) in
  for k = 0 to words - 1 do
    let w = Cpu.read_word cpu (addr + (4 * k)) in
    let chunk = Bits.of_int64 ~width:(words * 32) (Int64.logand (Int64.of_int32 w) 0xFFFFFFFFL) in
    bits := Bits.logor !bits (Bits.shift_left chunk (32 * k))
  done;
  Value.of_bits (Aptype.to_dtype ty) (Bits.resize ~signed:false ~width:ty.Aptype.width !bits)

let write_slot cpu ~addr v =
  let bits = Value.to_bits v in
  let w = Bits.width bits in
  let words = (w + 31) / 32 in
  let padded = Bits.resize ~signed:false ~width:(words * 32) bits in
  for k = 0 to words - 1 do
    let chunk = Bits.extract padded ~hi:((32 * k) + 31) ~lo:(32 * k) in
    Cpu.write_word cpu (addr + (4 * k)) (Int64.to_int32 (Bits.to_int64_unsigned chunk))
  done

let apply_bin (op : Expr.binop) a b =
  match op with
  | Expr.Add -> Value.add a b
  | Expr.Sub -> Value.sub a b
  | Expr.Mul -> Value.mul a b
  | Expr.Div -> Value.div a b
  | Expr.Rem -> Value.rem a b
  | Expr.And -> Value.logand a b
  | Expr.Or -> Value.logor a b
  | Expr.Xor -> Value.logxor a b
  | Expr.Shl -> Value.shift_left a (Value.to_int b)
  | Expr.Shr -> Value.shift_right a (Value.to_int b)
  | Expr.Eq -> Value.of_bool (Value.equal_value a b)
  | Expr.Ne -> Value.of_bool (not (Value.equal_value a b))
  | Expr.Lt -> Value.of_bool (Value.compare a b < 0)
  | Expr.Le -> Value.of_bool (Value.compare a b <= 0)
  | Expr.Gt -> Value.of_bool (Value.compare a b > 0)
  | Expr.Ge -> Value.of_bool (Value.compare a b >= 0)
  | Expr.LAnd -> Value.of_bool (Value.to_bool a && Value.to_bool b)
  | Expr.LOr -> Value.of_bool (Value.to_bool a || Value.to_bool b)

let boot ?(mem_kb = 192) ?(profile = Cpu.picorv32) ~stream_read ~stream_write ?(printf = fun _ -> ()) (p : Codegen.program) =
  let handler cpu =
    let a0 = Int32.to_int (Cpu.read_reg cpu Isa.a0) in
    let a1 = Int32.to_int (Cpu.read_reg cpu Isa.a1) in
    let a2 = Int32.to_int (Cpu.read_reg cpu Isa.a2) in
    let idx = Int32.to_int (Cpu.read_reg cpu Isa.a7) in
    if idx < 0 || idx >= Array.length p.Codegen.meta then
      invalid_arg (Printf.sprintf "softcore %s: bad ecall site %d" p.Codegen.op_name idx);
    let s = p.Codegen.meta.(idx) in
    (match s with
    | Codegen.Sbin (op, ta, tb) ->
        let va = read_slot cpu ~addr:a1 ta and vb = read_slot cpu ~addr:a2 tb in
        write_slot cpu ~addr:a0 (apply_bin op va vb)
    | Codegen.Sun (op, ta) ->
        let v = read_slot cpu ~addr:a1 ta in
        let r =
          match op with
          | Expr.Neg -> Value.neg v
          | Expr.BNot -> Value.lognot v
          | Expr.LNot -> Value.of_bool (not (Value.to_bool v))
        in
        write_slot cpu ~addr:a0 r
    | Codegen.Scast (ta, tb) ->
        let v = read_slot cpu ~addr:a1 ta in
        write_slot cpu ~addr:a0 (Value.cast (Aptype.to_dtype tb) v)
    | Codegen.Sbitcast (ta, tb) ->
        let v = read_slot cpu ~addr:a1 ta in
        write_slot cpu ~addr:a0 (Value.bitcast (Aptype.to_dtype tb) v)
    | Codegen.Sprint (msg, tys) ->
        let args =
          List.mapi (fun i ty -> read_slot cpu ~addr:(a1 + (i * 32)) ty) tys
        in
        printf (msg ^ String.concat "" (List.map (fun v -> " " ^ Value.to_string v) args)));
    Codegen.cost_of_site s
  in
  let cpu = Cpu.create ~mem_kb ~profile ~stream_read ~stream_write ~on_ecall:handler () in
  Cpu.load_words cpu ~addr:0 p.Codegen.image.Asm.words;
  List.iter (fun (addr, words) -> Cpu.load_words cpu ~addr words) p.Codegen.data_init;
  cpu
