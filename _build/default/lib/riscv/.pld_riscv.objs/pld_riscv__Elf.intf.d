lib/riscv/elf.mli: Codegen
