lib/riscv/cpu.mli: Bytes
