lib/riscv/codegen.mli: Aptype Asm Expr Op Pld_ir
