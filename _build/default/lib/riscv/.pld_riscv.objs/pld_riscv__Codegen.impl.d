lib/riscv/codegen.ml: Aptype Array Asm Cpu Dtype Expr Hashtbl Int32 Isa List Op Option Pld_apfixed Pld_ir Printf String Validate Value
