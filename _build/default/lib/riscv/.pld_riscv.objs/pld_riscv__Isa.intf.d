lib/riscv/isa.mli:
