lib/riscv/isa.ml: Array Int32 Option Printf
