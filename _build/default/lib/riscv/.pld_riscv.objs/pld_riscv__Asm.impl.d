lib/riscv/asm.ml: Array Buffer Hashtbl Int32 Isa List Printf
