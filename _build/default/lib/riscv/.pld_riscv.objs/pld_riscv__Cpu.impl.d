lib/riscv/cpu.ml: Array Bytes Char Int32 Int64 Isa Printf
