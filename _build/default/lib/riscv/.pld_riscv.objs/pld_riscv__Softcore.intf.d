lib/riscv/softcore.mli: Codegen Cpu Pld_ir
