lib/riscv/softcore.ml: Aptype Array Asm Codegen Cpu Expr Int32 Int64 Isa List Pld_apfixed Pld_ir Printf String Value
