lib/riscv/asm.mli: Isa
