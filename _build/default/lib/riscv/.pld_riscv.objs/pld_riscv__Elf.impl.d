lib/riscv/elf.ml: Codegen Marshal Pld_util String
