(** Standalone binary images for compiled operators.

    The pre-linker/loader (Fig. 5) packs each compiled binary with a
    header carrying the destination page and memory base so the driver
    can stream it into the right softcore's memory. *)

type packed = {
  page : int;  (** destination physical page *)
  program : Codegen.program;
  blob : string;  (** serialized image, what would go over PCIe *)
}

val pack : page:int -> Codegen.program -> packed
val size_bytes : packed -> int

val unpack : string -> packed
(** Raises [Invalid_argument] on a corrupt blob (bad magic or CRC). *)
