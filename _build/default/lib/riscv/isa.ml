type reg = int

let zero = 0
let ra = 1
let sp = 2
let t0 = 5
let t1 = 6
let t2 = 7
let s0 = 8
let s1 = 9
let a0 = 10
let a1 = 11
let a2 = 12
let a3 = 13
let a4 = 14
let a5 = 15
let a6 = 16
let a7 = 17
let t3 = 28
let t4 = 29
let t5 = 30
let t6 = 31

type cond = Beq | Bne | Blt | Bge | Bltu | Bgeu
type width = B | H | W
type alu = Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai

type op =
  | Radd | Rsub | Rsll | Rslt | Rsltu | Rxor | Rsrl | Rsra | Ror | Rand
  | Rmul | Rmulh | Rmulhsu | Rmulhu | Rdiv | Rdivu | Rrem | Rremu

type instr =
  | Lui of reg * int
  | Auipc of reg * int
  | Jal of reg * int
  | Jalr of reg * reg * int
  | Branch of cond * reg * reg * int
  | Load of width * bool * reg * reg * int
  | Store of width * reg * reg * int
  | Alui of alu * reg * reg * int
  | Alur of op * reg * reg * reg
  | Ecall
  | Ebreak

let check_reg r = if r < 0 || r > 31 then invalid_arg "Isa: bad register"

let check_imm name lo hi v =
  if v < lo || v > hi then invalid_arg (Printf.sprintf "Isa: %s immediate %d out of [%d,%d]" name v lo hi)

let ( <<< ) v n = Int32.shift_left (Int32.of_int v) n
let ( ||| ) = Int32.logor

let enc_r funct7 funct3 opcode rd rs1 rs2 =
  (funct7 <<< 25) ||| (rs2 <<< 20) ||| (rs1 <<< 15) ||| (funct3 <<< 12) ||| (rd <<< 7)
  ||| Int32.of_int opcode

let enc_i funct3 opcode rd rs1 imm =
  check_imm "I" (-2048) 2047 imm;
  ((imm land 0xFFF) <<< 20) ||| (rs1 <<< 15) ||| (funct3 <<< 12) ||| (rd <<< 7) ||| Int32.of_int opcode

let enc_s funct3 opcode rs1 rs2 imm =
  check_imm "S" (-2048) 2047 imm;
  let imm = imm land 0xFFF in
  ((imm lsr 5) <<< 25) ||| (rs2 <<< 20) ||| (rs1 <<< 15) ||| (funct3 <<< 12)
  ||| ((imm land 0x1F) <<< 7) ||| Int32.of_int opcode

let enc_b funct3 rs1 rs2 imm =
  check_imm "B" (-4096) 4094 imm;
  if imm land 1 <> 0 then invalid_arg "Isa: misaligned branch offset";
  let u = imm land 0x1FFF in
  (((u lsr 12) land 1) <<< 31)
  ||| (((u lsr 5) land 0x3F) <<< 25)
  ||| (rs2 <<< 20) ||| (rs1 <<< 15) ||| (funct3 <<< 12)
  ||| (((u lsr 1) land 0xF) <<< 8)
  ||| (((u lsr 11) land 1) <<< 7)
  ||| 0b1100011l

let enc_u opcode rd imm =
  check_imm "U" 0 0xFFFFF imm;
  (imm <<< 12) ||| (rd <<< 7) ||| Int32.of_int opcode

let enc_j rd imm =
  check_imm "J" (-1048576) 1048574 imm;
  if imm land 1 <> 0 then invalid_arg "Isa: misaligned jump offset";
  let u = imm land 0x1FFFFF in
  (((u lsr 20) land 1) <<< 31)
  ||| (((u lsr 1) land 0x3FF) <<< 21)
  ||| (((u lsr 11) land 1) <<< 20)
  ||| (((u lsr 12) land 0xFF) <<< 12)
  ||| (rd <<< 7) ||| 0b1101111l

let cond_funct3 = function Beq -> 0 | Bne -> 1 | Blt -> 4 | Bge -> 5 | Bltu -> 6 | Bgeu -> 7

let alu_funct3 = function
  | Addi -> 0 | Slti -> 2 | Sltiu -> 3 | Xori -> 4 | Ori -> 6 | Andi -> 7
  | Slli -> 1 | Srli -> 5 | Srai -> 5

let op_encoding = function
  | Radd -> (0, 0) | Rsub -> (0x20, 0) | Rsll -> (0, 1) | Rslt -> (0, 2) | Rsltu -> (0, 3)
  | Rxor -> (0, 4) | Rsrl -> (0, 5) | Rsra -> (0x20, 5) | Ror -> (0, 6) | Rand -> (0, 7)
  | Rmul -> (1, 0) | Rmulh -> (1, 1) | Rmulhsu -> (1, 2) | Rmulhu -> (1, 3)
  | Rdiv -> (1, 4) | Rdivu -> (1, 5) | Rrem -> (1, 6) | Rremu -> (1, 7)

let width_funct3 unsigned = function
  | B -> if unsigned then 4 else 0
  | H -> if unsigned then 5 else 1
  | W -> 2

let encode instr =
  (match instr with
  | Lui (rd, _) | Auipc (rd, _) | Jal (rd, _) -> check_reg rd
  | Jalr (rd, rs1, _) -> check_reg rd; check_reg rs1
  | Branch (_, rs1, rs2, _) | Store (_, rs2, rs1, _) -> check_reg rs1; check_reg rs2
  | Load (_, _, rd, rs1, _) | Alui (_, rd, rs1, _) -> check_reg rd; check_reg rs1
  | Alur (_, rd, rs1, rs2) -> check_reg rd; check_reg rs1; check_reg rs2
  | Ecall | Ebreak -> ());
  match instr with
  | Lui (rd, imm) -> enc_u 0b0110111 rd imm
  | Auipc (rd, imm) -> enc_u 0b0010111 rd imm
  | Jal (rd, imm) -> enc_j rd imm
  | Jalr (rd, rs1, imm) -> enc_i 0 0b1100111 rd rs1 imm
  | Branch (c, rs1, rs2, imm) -> enc_b (cond_funct3 c) rs1 rs2 imm
  | Load (w, unsigned, rd, rs1, imm) -> enc_i (width_funct3 unsigned w) 0b0000011 rd rs1 imm
  | Store (w, rs2, rs1, imm) -> enc_s (width_funct3 false w) 0b0100011 rs1 rs2 imm
  | Alui (a, rd, rs1, imm) -> begin
      match a with
      | Slli ->
          check_imm "shamt" 0 31 imm;
          enc_i 1 0b0010011 rd rs1 imm
      | Srli ->
          check_imm "shamt" 0 31 imm;
          enc_i 5 0b0010011 rd rs1 imm
      | Srai ->
          check_imm "shamt" 0 31 imm;
          enc_i 5 0b0010011 rd rs1 (imm lor 0x400)
      | _ -> enc_i (alu_funct3 a) 0b0010011 rd rs1 imm
    end
  | Alur (o, rd, rs1, rs2) ->
      let f7, f3 = op_encoding o in
      enc_r f7 f3 0b0110011 rd rs1 rs2
  | Ecall -> 0x00000073l
  | Ebreak -> 0x00100073l

let bits v hi lo = Int32.to_int (Int32.logand (Int32.shift_right_logical v lo) (Int32.of_int ((1 lsl (hi - lo + 1)) - 1)))

let sign_extend v w = if v land (1 lsl (w - 1)) <> 0 then v - (1 lsl w) else v

let decode word =
  let opcode = bits word 6 0 in
  let rd = bits word 11 7 and rs1 = bits word 19 15 and rs2 = bits word 24 20 in
  let funct3 = bits word 14 12 and funct7 = bits word 31 25 in
  let imm_i = sign_extend (bits word 31 20) 12 in
  let imm_s = sign_extend ((bits word 31 25 lsl 5) lor bits word 11 7) 12 in
  let imm_b =
    sign_extend
      ((bits word 31 31 lsl 12) lor (bits word 7 7 lsl 11) lor (bits word 30 25 lsl 5)
      lor (bits word 11 8 lsl 1))
      13
  in
  let imm_u = bits word 31 12 in
  let imm_j =
    sign_extend
      ((bits word 31 31 lsl 20) lor (bits word 19 12 lsl 12) lor (bits word 20 20 lsl 11)
      lor (bits word 30 21 lsl 1))
      21
  in
  match opcode with
  | 0b0110111 -> Some (Lui (rd, imm_u))
  | 0b0010111 -> Some (Auipc (rd, imm_u))
  | 0b1101111 -> Some (Jal (rd, imm_j))
  | 0b1100111 when funct3 = 0 -> Some (Jalr (rd, rs1, imm_i))
  | 0b1100011 -> begin
      let c =
        match funct3 with
        | 0 -> Some Beq | 1 -> Some Bne | 4 -> Some Blt | 5 -> Some Bge | 6 -> Some Bltu
        | 7 -> Some Bgeu | _ -> None
      in
      Option.map (fun c -> Branch (c, rs1, rs2, imm_b)) c
    end
  | 0b0000011 -> begin
      match funct3 with
      | 0 -> Some (Load (B, false, rd, rs1, imm_i))
      | 1 -> Some (Load (H, false, rd, rs1, imm_i))
      | 2 -> Some (Load (W, false, rd, rs1, imm_i))
      | 4 -> Some (Load (B, true, rd, rs1, imm_i))
      | 5 -> Some (Load (H, true, rd, rs1, imm_i))
      | _ -> None
    end
  | 0b0100011 -> begin
      match funct3 with
      | 0 -> Some (Store (B, rs2, rs1, imm_s))
      | 1 -> Some (Store (H, rs2, rs1, imm_s))
      | 2 -> Some (Store (W, rs2, rs1, imm_s))
      | _ -> None
    end
  | 0b0010011 -> begin
      match funct3 with
      | 0 -> Some (Alui (Addi, rd, rs1, imm_i))
      | 2 -> Some (Alui (Slti, rd, rs1, imm_i))
      | 3 -> Some (Alui (Sltiu, rd, rs1, imm_i))
      | 4 -> Some (Alui (Xori, rd, rs1, imm_i))
      | 6 -> Some (Alui (Ori, rd, rs1, imm_i))
      | 7 -> Some (Alui (Andi, rd, rs1, imm_i))
      | 1 when funct7 = 0 -> Some (Alui (Slli, rd, rs1, rs2))
      | 5 when funct7 = 0 -> Some (Alui (Srli, rd, rs1, rs2))
      | 5 when funct7 = 0x20 -> Some (Alui (Srai, rd, rs1, rs2))
      | _ -> None
    end
  | 0b0110011 -> begin
      let o =
        match (funct7, funct3) with
        | 0, 0 -> Some Radd | 0x20, 0 -> Some Rsub | 0, 1 -> Some Rsll | 0, 2 -> Some Rslt
        | 0, 3 -> Some Rsltu | 0, 4 -> Some Rxor | 0, 5 -> Some Rsrl | 0x20, 5 -> Some Rsra
        | 0, 6 -> Some Ror | 0, 7 -> Some Rand
        | 1, 0 -> Some Rmul | 1, 1 -> Some Rmulh | 1, 2 -> Some Rmulhsu | 1, 3 -> Some Rmulhu
        | 1, 4 -> Some Rdiv | 1, 5 -> Some Rdivu | 1, 6 -> Some Rrem | 1, 7 -> Some Rremu
        | _ -> None
      in
      Option.map (fun o -> Alur (o, rd, rs1, rs2)) o
    end
  | 0b1110011 ->
      if word = 0x00000073l then Some Ecall else if word = 0x00100073l then Some Ebreak else None
  | _ -> None

let reg_name r =
  let names =
    [| "zero"; "ra"; "sp"; "gp"; "tp"; "t0"; "t1"; "t2"; "s0"; "s1"; "a0"; "a1"; "a2"; "a3";
       "a4"; "a5"; "a6"; "a7"; "s2"; "s3"; "s4"; "s5"; "s6"; "s7"; "s8"; "s9"; "s10"; "s11";
       "t3"; "t4"; "t5"; "t6" |]
  in
  if r >= 0 && r < 32 then names.(r) else Printf.sprintf "x%d" r

let to_string = function
  | Lui (rd, imm) -> Printf.sprintf "lui %s, 0x%x" (reg_name rd) imm
  | Auipc (rd, imm) -> Printf.sprintf "auipc %s, 0x%x" (reg_name rd) imm
  | Jal (rd, imm) -> Printf.sprintf "jal %s, %d" (reg_name rd) imm
  | Jalr (rd, rs1, imm) -> Printf.sprintf "jalr %s, %d(%s)" (reg_name rd) imm (reg_name rs1)
  | Branch (c, rs1, rs2, imm) ->
      let n = match c with Beq -> "beq" | Bne -> "bne" | Blt -> "blt" | Bge -> "bge" | Bltu -> "bltu" | Bgeu -> "bgeu" in
      Printf.sprintf "%s %s, %s, %d" n (reg_name rs1) (reg_name rs2) imm
  | Load (w, u, rd, rs1, imm) ->
      let n = match (w, u) with B, false -> "lb" | H, false -> "lh" | W, _ -> "lw" | B, true -> "lbu" | H, true -> "lhu" in
      Printf.sprintf "%s %s, %d(%s)" n (reg_name rd) imm (reg_name rs1)
  | Store (w, rs2, rs1, imm) ->
      let n = match w with B -> "sb" | H -> "sh" | W -> "sw" in
      Printf.sprintf "%s %s, %d(%s)" n (reg_name rs2) imm (reg_name rs1)
  | Alui (a, rd, rs1, imm) ->
      let n = match a with Addi -> "addi" | Slti -> "slti" | Sltiu -> "sltiu" | Xori -> "xori" | Ori -> "ori" | Andi -> "andi" | Slli -> "slli" | Srli -> "srli" | Srai -> "srai" in
      Printf.sprintf "%s %s, %s, %d" n (reg_name rd) (reg_name rs1) imm
  | Alur (o, rd, rs1, rs2) ->
      let n = match o with Radd -> "add" | Rsub -> "sub" | Rsll -> "sll" | Rslt -> "slt" | Rsltu -> "sltu" | Rxor -> "xor" | Rsrl -> "srl" | Rsra -> "sra" | Ror -> "or" | Rand -> "and" | Rmul -> "mul" | Rmulh -> "mulh" | Rmulhsu -> "mulhsu" | Rmulhu -> "mulhu" | Rdiv -> "div" | Rdivu -> "divu" | Rrem -> "rem" | Rremu -> "remu" in
      Printf.sprintf "%s %s, %s, %s" n (reg_name rd) (reg_name rs1) (reg_name rs2)
  | Ecall -> "ecall"
  | Ebreak -> "ebreak"
