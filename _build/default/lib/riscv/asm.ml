type item =
  | Label of string
  | Instr of Isa.instr
  | Bj of Isa.cond * Isa.reg * Isa.reg * string
  | J of string
  | Call of string
  | Ret
  | Li of Isa.reg * int32
  | Word of int32
  | Comment of string

type image = { words : int32 array; symbols : (string * int) list }

exception Undefined_label of string

(* li expands to lui+addi unless the value fits 12 signed bits. *)
let li_size v = if Int32.compare v (-2048l) >= 0 && Int32.compare v 2047l <= 0 then 1 else 2

(* Conditional branches to labels expand to an inverted short branch
   over a jal, so label distance is never limited to the +-4 KB B-type
   range (compiled operator bodies easily exceed it). *)
let item_size = function
  | Label _ | Comment _ -> 0
  | Instr _ | J _ | Call _ | Ret | Word _ -> 1
  | Bj _ -> 2
  | Li (_, v) -> li_size v

let assemble items =
  (* Pass 1: addresses. *)
  let symbols = Hashtbl.create 16 in
  let addr = ref 0 in
  List.iter
    (fun it ->
      (match it with
      | Label l ->
          if Hashtbl.mem symbols l then invalid_arg ("Asm.assemble: duplicate label " ^ l);
          Hashtbl.replace symbols l !addr
      | _ -> ());
      addr := !addr + (4 * item_size it))
    items;
  let find l = match Hashtbl.find_opt symbols l with Some a -> a | None -> raise (Undefined_label l) in
  (* Pass 2: encode. *)
  let words = ref [] in
  let pc = ref 0 in
  let emit i =
    words := Isa.encode i :: !words;
    pc := !pc + 4
  in
  List.iter
    (fun it ->
      match it with
      | Label _ | Comment _ -> ()
      | Instr i -> emit i
      | Bj (c, r1, r2, l) ->
          let inverse =
            match c with
            | Isa.Beq -> Isa.Bne
            | Isa.Bne -> Isa.Beq
            | Isa.Blt -> Isa.Bge
            | Isa.Bge -> Isa.Blt
            | Isa.Bltu -> Isa.Bgeu
            | Isa.Bgeu -> Isa.Bltu
          in
          emit (Isa.Branch (inverse, r1, r2, 8));
          emit (Isa.Jal (Isa.zero, find l - !pc))
      | J l -> emit (Isa.Jal (Isa.zero, find l - !pc))
      | Call l -> emit (Isa.Jal (Isa.ra, find l - !pc))
      | Ret -> emit (Isa.Jalr (Isa.zero, Isa.ra, 0))
      | Word w ->
          words := w :: !words;
          pc := !pc + 4
      | Li (rd, v) ->
          if li_size v = 1 then emit (Isa.Alui (Isa.Addi, rd, Isa.zero, Int32.to_int v))
          else begin
            (* lui loads the upper 20 bits; addi's sign extension must
               be compensated by rounding the upper part. *)
            let lo = Int32.to_int (Int32.logand v 0xFFFl) in
            let lo = if lo >= 2048 then lo - 4096 else lo in
            let hi =
              Int32.to_int (Int32.logand (Int32.shift_right_logical (Int32.sub v (Int32.of_int lo)) 12) 0xFFFFFl)
            in
            emit (Isa.Lui (rd, hi));
            emit (Isa.Alui (Isa.Addi, rd, rd, lo))
          end)
    items;
  { words = Array.of_list (List.rev !words); symbols = Hashtbl.fold (fun k v acc -> (k, v) :: acc) symbols [] }

let disassemble img =
  let buf = Buffer.create 1024 in
  Array.iteri
    (fun i w ->
      let addr = i * 4 in
      List.iter (fun (l, a) -> if a = addr then Buffer.add_string buf (l ^ ":\n")) img.symbols;
      let text = match Isa.decode w with Some i -> Isa.to_string i | None -> Printf.sprintf ".word 0x%08lx" w in
      Buffer.add_string buf (Printf.sprintf "  %04x: %s\n" addr text))
    img.words;
  Buffer.contents buf
