(** Two-pass assembler: label resolution for branches/jumps plus the
    [li]/[la] pseudo-instructions the code generator leans on. *)

type item =
  | Label of string
  | Instr of Isa.instr
  | Bj of Isa.cond * Isa.reg * Isa.reg * string  (** branch to label *)
  | J of string  (** unconditional jump to label *)
  | Call of string  (** jal ra, label *)
  | Ret
  | Li of Isa.reg * int32  (** load 32-bit immediate (1-2 instructions) *)
  | Word of int32  (** literal data word in the text stream *)
  | Comment of string

type image = {
  words : int32 array;  (** text, base address 0 *)
  symbols : (string * int) list;  (** label → byte address *)
}

exception Undefined_label of string

val assemble : item list -> image

val disassemble : image -> string
