type packed = { page : int; program : Codegen.program; blob : string }

let magic = "PLDELF01"

let pack ~page program =
  let body = Marshal.to_string (page, program) [] in
  let crc = Pld_util.Digest_lite.of_string body in
  let blob = magic ^ crc ^ body in
  { page; program; blob }

let size_bytes p = String.length p.blob

let unpack blob =
  let mlen = String.length magic in
  if String.length blob < mlen + 16 then invalid_arg "Elf.unpack: truncated blob";
  if String.sub blob 0 mlen <> magic then invalid_arg "Elf.unpack: bad magic";
  let crc = String.sub blob mlen 16 in
  let body = String.sub blob (mlen + 16) (String.length blob - mlen - 16) in
  if Pld_util.Digest_lite.of_string body <> crc then invalid_arg "Elf.unpack: CRC mismatch";
  let page, program = (Marshal.from_string body 0 : int * Codegen.program) in
  { page; program; blob }
