(** The -O0 compiler: IR operator → RV32IM program (Fig. 5's
    riscv-gcc caller).

    Control flow, loops, stream I/O and addressing compile to native
    RV32 instructions. Arbitrary-precision arithmetic compiles to calls
    into the firmware ap-runtime (the paper's memory-efficient
    ap_int/ap_fixed compatibility library, §5.2): each call site is an
    [ecall] carrying a site index; the runtime handler computes with
    the same {!Pld_ir.Value} semantics as the reference interpreter and
    charges a calibrated soft-library cycle cost. This keeps -O0
    bit-exact with the interpreter and the FPGA flows.

    Memory layout (192 KB unified memory):
    - text at 0x0
    - variable slots + constant pool at {!data_base}
    - expression temporaries (32 B each) at {!temp_base}
    - operand-address spill cells at {!spill_base} *)

open Pld_ir

type site =
  | Sbin of Expr.binop * Aptype.t * Aptype.t
  | Sun of Expr.unop * Aptype.t
  | Scast of Aptype.t * Aptype.t  (** src, dst *)
  | Sbitcast of Aptype.t * Aptype.t
  | Sprint of string * Aptype.t list

type program = {
  op_name : string;
  image : Asm.image;
  data_init : (int * int32 array) list;  (** address, words *)
  meta : site array;
  var_layout : (string * int) list;
  footprint_bytes : int;  (** code + data, the Tab-in-§5.2 30-60 KB *)
  port_map : (string * int) list;  (** port name → MMIO stream index *)
}

val data_base : int
val temp_base : int
val spill_base : int

exception Unsupported of string
(** Raised for operators outside the -O0 subset (locals wider than 64
    bits, out-of-memory footprints, select arms of different types). *)

val compile : Op.t -> program

val cost_of_site : site -> int
(** Cycle cost charged by the firmware runtime for one call. *)
