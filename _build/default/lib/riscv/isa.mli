(** RV32IM instruction set: constructors, binary encoding, decoding.

    Registers follow the standard ABI numbering (x0=zero, x1=ra,
    x2=sp, x5-7=t0-2, x10-17=a0-7, ...). *)

type reg = int  (** 0..31 *)

val zero : reg
val ra : reg
val sp : reg
val t0 : reg
val t1 : reg
val t2 : reg
val t3 : reg
val t4 : reg
val t5 : reg
val t6 : reg
val a0 : reg
val a1 : reg
val a2 : reg
val a3 : reg
val a4 : reg
val a5 : reg
val a6 : reg
val a7 : reg
val s0 : reg
val s1 : reg

type cond = Beq | Bne | Blt | Bge | Bltu | Bgeu
type width = B | H | W
type alu = Addi | Slti | Sltiu | Xori | Ori | Andi | Slli | Srli | Srai
type op =
  | Radd | Rsub | Rsll | Rslt | Rsltu | Rxor | Rsrl | Rsra | Ror | Rand
  | Rmul | Rmulh | Rmulhsu | Rmulhu | Rdiv | Rdivu | Rrem | Rremu

type instr =
  | Lui of reg * int
  | Auipc of reg * int
  | Jal of reg * int  (** pc-relative byte offset *)
  | Jalr of reg * reg * int
  | Branch of cond * reg * reg * int
  | Load of width * bool * reg * reg * int  (** [Load (w, unsigned, rd, rs1, imm)] *)
  | Store of width * reg * reg * int  (** [Store (w, rs2, rs1, imm)]: mem[rs1+imm] <- rs2 *)
  | Alui of alu * reg * reg * int
  | Alur of op * reg * reg * reg
  | Ecall
  | Ebreak

val encode : instr -> int32
(** Raises [Invalid_argument] on out-of-range immediates. *)

val decode : int32 -> instr option

val to_string : instr -> string
