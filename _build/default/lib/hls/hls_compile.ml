open Pld_ir
module N = Pld_netlist.Netlist

type impl = {
  op : Op.t;
  netlist : N.t;
  perf : Sched.perf;
  est_fmax_mhz : float;
  hls_seconds : float;
  syn_seconds : float;
}

let target_mhz = 300.0

(* Pre-P&R estimate: the worst cell delay plus typical local routing,
   assuming the scheduler breaks chains every [levels_per_cycle]
   levels. Post-P&R timing comes from the real STA in pld.pnr. *)
let estimate_fmax netlist =
  let worst =
    Array.fold_left (fun acc (c : N.cell) -> Float.max acc c.delay_ns) 0.5 netlist.N.cells
  in
  let period_ns = worst +. 1.0 in
  Float.min target_mhz (1000.0 /. period_ns)

let compile op =
  let t0 = Unix.gettimeofday () in
  let perf = Sched.analyze op in
  let t1 = Unix.gettimeofday () in
  let netlist = Synth.synthesize op in
  let t2 = Unix.gettimeofday () in
  {
    op;
    netlist;
    perf;
    est_fmax_mhz = estimate_fmax netlist;
    hls_seconds = t1 -. t0;
    syn_seconds = t2 -. t1;
  }

let report impl =
  let r = N.total_res impl.netlist in
  Printf.sprintf
    "== HLS report: %s ==\n\
     cells: %d  nets: %d\n\
     area: %d LUT, %d FF, %d BRAM18, %d DSP\n\
     II: %d  cycles/firing: %d  max expr depth: %d\n\
     estimated Fmax: %.0f MHz (target %.0f)\n\
     loops:\n%s"
    impl.op.Op.name (N.cell_count impl.netlist) (N.net_count impl.netlist) r.N.luts r.N.ffs
    r.N.brams r.N.dsps impl.perf.Sched.bottleneck_ii impl.perf.Sched.cycles_per_firing
    impl.perf.Sched.max_expr_depth impl.est_fmax_mhz target_mhz
    (String.concat "\n"
       (List.map
          (fun (l : Sched.loop_report) ->
            Printf.sprintf "  %-16s trip=%-6d II=%-3d depth=%-4d %s cycles=%d" l.label l.trip l.ii
              l.depth
              (if l.pipelined then "pipelined" else "sequential")
              l.cycles)
          impl.perf.Sched.loops))
