(** Synthesis: lower an operator body to a {!Pld_netlist.Netlist.t} of
    placement macros with realistic resource vectors — the "syn" phase
    of Tab. 2.

    Connectivity is variable-mediated: each scalar local becomes a
    register bank, each array a memory macro; expression cells connect
    producers to the registers/ports they feed. The netlist carries no
    behaviour (the interpreter is the reference); it exists so that
    place & route works on the same structure a vendor flow would. *)

open Pld_ir

val width_of_expr : Op.t -> (string, Dtype.t) Hashtbl.t -> Expr.t -> int
(** Static width inference used by the area model: HLS growth rules
    applied structurally. *)

val split_oversized : Pld_netlist.Netlist.t -> Pld_netlist.Netlist.t
(** Decompose macros wider than one tile into chained slice-sized
    subcells (applied automatically by {!synthesize}; exposed for
    netlists assembled outside it, e.g. the -O1 operator packer). *)

val synthesize : Op.t -> Pld_netlist.Netlist.t
(** Raises [Invalid_argument] on operators {!Validate.check_operator}
    rejects. *)
