(** The hls_caller of Figs. 5–7: C operator → scheduled netlist. *)

open Pld_ir

type impl = {
  op : Op.t;
  netlist : Pld_netlist.Netlist.t;
  perf : Sched.perf;
  est_fmax_mhz : float;  (** pre-place-and-route timing estimate *)
  hls_seconds : float;  (** measured wall-clock of scheduling *)
  syn_seconds : float;  (** measured wall-clock of synthesis *)
}

val compile : Op.t -> impl
(** Deterministic; raises [Invalid_argument] on ill-formed operators. *)

val target_mhz : float
(** The HLS timing target (300 MHz, as in Tab. 3's Vitis rows). *)

val report : impl -> string
(** Human-readable HLS report (area, II, depth, Fmax estimate). *)
