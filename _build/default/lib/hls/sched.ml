open Pld_ir

type loop_report = {
  label : string;
  trip : int;
  ii : int;
  depth : int;
  pipelined : bool;
  cycles : int;
}

type perf = {
  cycles_per_firing : int;
  bottleneck_ii : int;
  max_expr_depth : int;
  loops : loop_report list;
}

let rec expr_levels (e : Expr.t) =
  match e with
  | Const _ | Var _ -> 0
  | Idx (_, i) -> 1 + expr_levels i (* BRAM read: one registered level *)
  | Bin (op, a, b) ->
      let w = match op with Mul -> 3 | Div | Rem -> 8 | _ -> 1 in
      w + max (expr_levels a) (expr_levels b)
  | Un (_, a) -> 1 + expr_levels a
  | Cast (_, a) | Bitcast (_, a) -> expr_levels a
  | Select (c, a, b) -> 1 + max (expr_levels c) (max (expr_levels a) (expr_levels b))

(* Logic levels that fit in one 300 MHz cycle with chaining. *)
let levels_per_cycle = 3

let cycles_of_levels l = max 1 ((l + levels_per_cycle - 1) / levels_per_cycle)

(* Stream-port accesses per single execution of [stmts] (max across
   branches, multiplied through loop trip counts). *)
let port_accesses stmts =
  let tbl = Hashtbl.create 8 in
  let merge_max a b =
    let out = Hashtbl.create 8 in
    let put k v = Hashtbl.replace out k (max v (Option.value ~default:0 (Hashtbl.find_opt out k))) in
    Hashtbl.iter put a;
    Hashtbl.iter put b;
    out
  in
  let bump t p n = Hashtbl.replace t p (n + Option.value ~default:0 (Hashtbl.find_opt t p)) in
  let rec go t (s : Op.stmt) =
    match s with
    | Read (_, p) -> bump t p 1
    | Write (p, _) -> bump t p 1
    | Assign _ | Printf _ -> ()
    | For { lo; hi; body; _ } ->
        let inner = Hashtbl.create 4 in
        List.iter (go inner) body;
        Hashtbl.iter (fun p n -> bump t p (n * max 0 (hi - lo))) inner
    | If (_, a, b) ->
        let ta = Hashtbl.create 4 and tb = Hashtbl.create 4 in
        List.iter (go ta) a;
        List.iter (go tb) b;
        Hashtbl.iter (fun p n -> bump t p n) (merge_max ta tb)
  in
  List.iter (go tbl) stmts;
  ignore bump;
  tbl

let rec body_latency stmts = List.fold_left (fun acc s -> acc + stmt_latency s) 0 stmts

and stmt_latency (s : Op.stmt) =
  match s with
  | Assign (_, e) -> cycles_of_levels (expr_levels e)
  | Read _ | Write _ -> 1
  | Printf _ -> 0
  | If (c, a, b) -> cycles_of_levels (expr_levels c) + max (body_latency a) (body_latency b)
  | For { lo; hi; body; _ } -> (max 0 (hi - lo) * body_latency body) + 2

let rec max_depth_expr stmts =
  List.fold_left
    (fun acc (s : Op.stmt) ->
      match s with
      | Assign (_, e) | Write (_, e) -> max acc (expr_levels e)
      | Read _ | Printf _ -> acc
      | If (c, a, b) -> max acc (max (expr_levels c) (max (max_depth_expr a) (max_depth_expr b)))
      | For { body; _ } -> max acc (max_depth_expr body))
    0 stmts

let analyze (op : Op.t) =
  let loops = ref [] in
  let rec go label (s : Op.stmt) =
    match s with
    | Op.For { var; lo; hi; body; pipeline } ->
        let trip = max 0 (hi - lo) in
        let label = if label = "" then var else label ^ "." ^ var in
        if pipeline then begin
          (* II is bounded by the busiest stream port: one word/cycle. *)
          let acc = port_accesses body in
          let port_ii = Hashtbl.fold (fun _ n m -> max n m) acc 1 in
          (* Inner loops are expanded into the pipeline: their full
             latency joins the iteration's schedule length. *)
          let depth = max 1 (body_latency body) in
          let ii = max 1 port_ii in
          let cycles = max 1 ((max 0 (trip - 1) * ii) + depth + 1) in
          loops := { label; trip; ii; depth; pipelined = true; cycles } :: !loops;
          cycles
        end
        else begin
          let inner = List.fold_left (fun acc s -> acc + go label s) 0 body in
          let cycles = (trip * max 1 inner) + 2 in
          loops := { label; trip; ii = max 1 inner; depth = inner; pipelined = false; cycles } :: !loops;
          cycles
        end
    | Op.If (c, a, b) ->
        cycles_of_levels (expr_levels c)
        + max
            (List.fold_left (fun acc s -> acc + go (label ^ ".t") s) 0 a)
            (List.fold_left (fun acc s -> acc + go (label ^ ".f") s) 0 b)
    | Op.Assign (_, e) -> cycles_of_levels (expr_levels e)
    | Op.Read _ | Op.Write _ -> 1
    | Op.Printf _ -> 0
  in
  let cycles = List.fold_left (fun acc s -> acc + go "" s) 0 op.body in
  let loops = List.rev !loops in
  let bottleneck_ii =
    List.fold_left (fun acc l -> if l.pipelined then max acc l.ii else acc) 1 loops
  in
  {
    cycles_per_firing = max 1 cycles;
    bottleneck_ii;
    max_expr_depth = max_depth_expr op.body;
    loops;
  }
