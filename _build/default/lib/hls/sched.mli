(** HLS scheduling model: derives initiation interval, pipeline depth
    and cycles-per-firing for an operator body.

    The model follows Vitis_HLS behaviour on the operator discipline's
    subset: a [pipeline]d loop achieves II bounded below by its stream-
    port access serialization (a port moves one word per cycle), and
    any loop nested inside a pipelined loop is fully expanded into the
    schedule. *)

open Pld_ir

type loop_report = {
  label : string;  (** loop variable, dotted for nesting *)
  trip : int;
  ii : int;
  depth : int;  (** pipeline depth in cycles *)
  pipelined : bool;
  cycles : int;  (** total cycles for the loop *)
}

type perf = {
  cycles_per_firing : int;  (** one execution of the whole body *)
  bottleneck_ii : int;  (** max II over pipelined loops (1 if none) *)
  max_expr_depth : int;  (** combinational levels before registering *)
  loops : loop_report list;
}

val expr_levels : Expr.t -> int
(** Combinational depth in logic levels (mul counts 3, div its width,
    add 1, wiring 0). *)

val analyze : Op.t -> perf
