open Pld_ir
module N = Pld_netlist.Netlist

let rec width_of_expr (op : Op.t) env (e : Expr.t) =
  let w x = width_of_expr op env x in
  match e with
  | Const v -> Dtype.width (Value.dtype v)
  | Var v -> begin
      match Hashtbl.find_opt env v with
      | Some dt -> Dtype.width dt
      | None -> 32 (* loop variables *)
    end
  | Idx (a, _) -> begin
      match Hashtbl.find_opt env a with Some dt -> Dtype.width dt | None -> 32
    end
  | Bin ((Add | Sub), x, y) -> min Pld_apfixed.Bits.max_width (1 + max (w x) (w y))
  | Bin (Mul, x, y) -> min Pld_apfixed.Bits.max_width (w x + w y)
  | Bin ((Div | Rem), x, y) ->
      ignore (w y);
      min Pld_apfixed.Bits.max_width (w x + 8)
  | Bin ((And | Or | Xor | Shl | Shr), x, y) ->
      ignore (w y);
      w x
  | Bin ((Eq | Ne | Lt | Le | Gt | Ge | LAnd | LOr), _, _) -> 1
  | Un (Neg, x) -> 1 + w x
  | Un (BNot, x) -> w x
  | Un (LNot, _) -> 1
  | Cast (dt, _) | Bitcast (dt, _) -> Dtype.width dt
  | Select (_, x, y) -> max (w x) (w y)

let ceil_div a b = (a + b - 1) / b

(* Macros wider than a tile can hold must be decomposed into chained
   slice-sized subcells, or placement could never legalize them. The
   chain mirrors how a wide adder/divider spans several CLB columns. *)
let max_part = { N.luts = 40; ffs = 80; brams = 1; dsps = 2 }

let split_oversized (nl : N.t) =
  let parts_needed (r : N.res) =
    let f v m = if m = 0 then 1 else ceil_div v m in
    max 1
      (max
         (max (f r.N.luts max_part.N.luts) (f r.N.ffs max_part.N.ffs))
         (max (f r.N.brams max_part.N.brams) (f r.N.dsps max_part.N.dsps)))
  in
  if Array.for_all (fun (c : N.cell) -> parts_needed c.res = 1) nl.N.cells then nl
  else begin
    let b = N.Builder.create nl.N.nl_name in
    let head = Array.make (Array.length nl.N.cells) 0 in
    let tail = Array.make (Array.length nl.N.cells) 0 in
    Array.iter
      (fun (c : N.cell) ->
        let n = parts_needed c.res in
        if n = 1 then begin
          let id = N.Builder.add_cell b ~name:c.cname ~kind:c.kind ~res:c.res ~delay_ns:c.delay_ns in
          head.(c.cid) <- id;
          tail.(c.cid) <- id
        end
        else begin
          let share i v = (v / n) + if i < v mod n then 1 else 0 in
          let ids =
            List.init n (fun i ->
                let res =
                  {
                    N.luts = share i c.res.N.luts;
                    ffs = share i c.res.N.ffs;
                    brams = share i c.res.N.brams;
                    dsps = share i c.res.N.dsps;
                  }
                in
                N.Builder.add_cell b
                  ~name:(Printf.sprintf "%s.p%d" c.cname i)
                  ~kind:c.kind ~res ~delay_ns:c.delay_ns)
          in
          let rec link = function
            | a :: (bnext :: _ as rest) ->
                ignore (N.Builder.add_net b ~name:(Printf.sprintf "%s.chain%d" c.cname a) ~driver:a ~sinks:[ bnext ]);
                link rest
            | [ _ ] | [] -> ()
          in
          link ids;
          head.(c.cid) <- List.hd ids;
          tail.(c.cid) <- List.nth ids (n - 1)
        end)
      nl.N.cells;
    Array.iter
      (fun (n : N.net) ->
        ignore
          (N.Builder.add_net b ~name:n.nname ~driver:tail.(n.driver)
             ~sinks:(List.map (fun s -> head.(s)) n.sinks)))
      nl.N.nets;
    N.Builder.finish b
  end

let synthesize (op : Op.t) =
  (match Validate.check_operator op with
  | [] -> ()
  | errs ->
      invalid_arg
        (Printf.sprintf "Synth.synthesize %s: %s" op.name
           (String.concat "; " (List.map Validate.error_to_string errs))));
  let b = N.Builder.create op.name in
  let fresh =
    let n = ref 0 in
    fun prefix ->
      incr n;
      Printf.sprintf "%s_%d" prefix !n
  in
  let env : (string, Dtype.t) Hashtbl.t = Hashtbl.create 16 in
  (* Storage cells for locals. *)
  let storage : (string, int) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun d ->
      match d with
      | Op.Scalar { name; dtype; _ } ->
          Hashtbl.replace env name dtype;
          let w = Dtype.width dtype in
          let cid =
            N.Builder.add_cell b ~name ~kind:N.Reg
              ~res:{ N.res_zero with ffs = w; luts = ceil_div w 8 }
              ~delay_ns:0.5
          in
          Hashtbl.replace storage name cid
      | Op.Array { name; dtype; length; _ } ->
          Hashtbl.replace env name dtype;
          let w = Dtype.width dtype in
          let bits = length * w in
          let res =
            if bits <= 2048 then { N.res_zero with luts = ceil_div bits 32 + 8 }
            else { N.res_zero with brams = ceil_div bits 18432 }
          in
          let cid = N.Builder.add_cell b ~name ~kind:N.Mem ~res ~delay_ns:1.8 in
          Hashtbl.replace storage name cid)
    op.locals;
  (* Stream port cells. *)
  let in_ports : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let out_ports : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let port_res = { N.res_zero with luts = 24; ffs = 40 } in
  List.iter
    (fun (p : Op.port) ->
      let cid =
        N.Builder.add_cell b ~name:("port_" ^ p.port_name) ~kind:(N.Stream_in p.port_name)
          ~res:port_res ~delay_ns:0.8
      in
      Hashtbl.replace in_ports p.port_name cid)
    op.inputs;
  List.iter
    (fun (p : Op.port) ->
      let cid =
        N.Builder.add_cell b ~name:("port_" ^ p.port_name) ~kind:(N.Stream_out p.port_name)
          ~res:port_res ~delay_ns:0.8
      in
      Hashtbl.replace out_ports p.port_name cid)
    op.outputs;
  let fsm =
    N.Builder.add_cell b ~name:"fsm" ~kind:N.Control
      ~res:{ N.res_zero with luts = 8 + (2 * Op.stmt_count op); ffs = 6 + Op.stmt_count op }
      ~delay_ns:0.9
  in
  let connect ?(label = "n") driver sinks =
    match sinks with
    | [] -> ()
    | _ -> ignore (N.Builder.add_net b ~name:(fresh label) ~driver ~sinks)
  in
  (* Loop variables map to their counter cell while in scope. *)
  let loop_cells : (string, int) Hashtbl.t = Hashtbl.create 4 in
  (* Common subexpression elimination: structurally identical
     expressions under the same loop bindings reuse one datapath cell,
     the way HLS binding does. *)
  let cse : (Expr.t * (string * int) list, int option) Hashtbl.t = Hashtbl.create 64 in
  let cse_key e =
    ( e,
      List.filter_map
        (fun name -> Option.map (fun cell -> (name, cell)) (Hashtbl.find_opt loop_cells name))
        (Expr.vars e) )
  in
  (* Outside pipelined loops the schedule time-multiplexes arithmetic
     onto a small pool of bound functional units. *)
  let in_pipeline = ref false in
  let pools : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
  let alloc_cell ~prefix ~kind ~res ~delay ~shareable ~limit =
    if !in_pipeline || not shareable then
      N.Builder.add_cell b ~name:(fresh prefix) ~kind ~res ~delay_ns:delay
    else begin
      let key = Printf.sprintf "%s:%s:%d" prefix (N.kind_name kind) res.N.luts in
      let pool =
        match Hashtbl.find_opt pools key with
        | Some p -> p
        | None ->
            let p = ref [] in
            Hashtbl.replace pools key p;
            p
      in
      if List.length !pool < limit then begin
        let cid = N.Builder.add_cell b ~name:(fresh (prefix ^ "_shared")) ~kind ~res ~delay_ns:delay in
        pool := !pool @ [ cid ];
        cid
      end
      else begin
        match !pool with
        | first :: rest ->
            pool := rest @ [ first ];
            first
        | [] -> assert false
      end
    end
  in
  (* Synthesize an expression; returns the driving cell (None for pure
     constants) — nets are created from operand drivers into each new
     cell. *)
  let rec expr_cell (e : Expr.t) : int option =
    let key = cse_key e in
    match Hashtbl.find_opt cse key with
    | Some cell -> cell
    | None ->
        let cell = expr_cell_fresh e in
        Hashtbl.replace cse key cell;
        cell

  and expr_cell_fresh (e : Expr.t) : int option =
    let w = width_of_expr op env e in
    match e with
    | Const _ -> None
    | Var v -> begin
        match Hashtbl.find_opt loop_cells v with
        | Some c -> Some c
        | None -> Some (Hashtbl.find storage v)
      end
    | Idx (a, i) ->
        let mem = Hashtbl.find storage a in
        Option.iter (fun d -> connect ~label:"addr" d [ mem ]) (expr_cell i);
        Some mem
    | Bin (bop, x, y) -> begin
        let dx = expr_cell x and dy = expr_cell y in
        let wx = width_of_expr op env x and wy = width_of_expr op env y in
        (* Multiplication by a power-of-two constant is a shift. *)
        let pow2_const e =
          match e with
          | Expr.Const v -> Pld_apfixed.Bits.popcount (Value.to_bits v) = 1
          | _ -> false
        in
        let kind, res, delay, shareable, limit =
          match bop with
          | Add | Sub -> (N.Arith, N.res_luts w, 0.9 +. (0.012 *. float_of_int w), true, 4)
          | Mul ->
              if pow2_const x || pow2_const y then (N.Logic, N.res_luts (ceil_div w 8), 0.3, false, 0)
              else if max wx wy <= 8 then (N.Logic, N.res_luts (wx * wy / 2), 1.2, false, 0)
              else
                (* DSP capacity scales with the 16x-reduced fabric. *)
                let d = ceil_div (max wx wy) 32 in
                (N.Mul, { N.res_zero with dsps = d }, 2.2, true, 2)
          | Div | Rem ->
              (* Iterative radix-2 divider: a subtract/select row plus
                 state, sequenced over the working width. *)
              (N.Div, { N.res_zero with luts = 3 * w; ffs = 2 * w }, 1.8, true, 1)
          | And | Or | Xor -> (N.Logic, N.res_luts (ceil_div w 2), 0.6, false, 0)
          | Shl | Shr -> begin
              match y with
              | Const _ -> (N.Logic, N.res_luts (ceil_div w 8), 0.3, false, 0)
              | _ -> (N.Arith, N.res_luts (w * 2), 0.9, true, 2) (* registered barrel shifter *)
            end
          | Eq | Ne | Lt | Le | Gt | Ge ->
              ( N.Arith,
                N.res_luts (ceil_div (max wx wy) 2),
                0.8 +. (0.008 *. float_of_int (max wx wy)),
                true,
                4 )
          | LAnd | LOr -> (N.Logic, N.res_luts 1, 0.4, false, 0)
        in
        let cid = alloc_cell ~prefix:(Expr.binop_name bop) ~kind ~res ~delay ~shareable ~limit in
        Option.iter (fun d -> connect d [ cid ]) dx;
        Option.iter (fun d -> connect d [ cid ]) dy;
        Some cid
      end
    | Un (uop, x) ->
        let dx = expr_cell x in
        let res, delay =
          match uop with
          | Expr.Neg -> (N.res_luts w, 0.9)
          | Expr.BNot -> (N.res_luts (ceil_div w 8), 0.3)
          | Expr.LNot -> (N.res_luts 1, 0.3)
        in
        let cid = N.Builder.add_cell b ~name:(fresh "un") ~kind:N.Logic ~res ~delay_ns:delay in
        Option.iter (fun d -> connect d [ cid ]) dx;
        Some cid
    | Cast (_, x) | Bitcast (_, x) -> expr_cell x (* wires *)
    | Select (c, x, y) ->
        let dc = expr_cell c and dx = expr_cell x and dy = expr_cell y in
        let cid =
          N.Builder.add_cell b ~name:(fresh "mux") ~kind:N.Logic ~res:(N.res_luts (ceil_div w 2))
            ~delay_ns:0.7
        in
        List.iter (fun d -> Option.iter (fun d -> connect d [ cid ]) d) [ dc; dx; dy ];
        Some cid
  in
  let store_target lv =
    match lv with
    | Op.LVar v -> Hashtbl.find storage v
    | Op.LIdx (a, i) ->
        let mem = Hashtbl.find storage a in
        Option.iter (fun d -> connect ~label:"addr" d [ mem ]) (expr_cell i);
        mem
  in
  let rec stmt (s : Op.stmt) =
    match s with
    | Assign (lv, e) ->
        let tgt = store_target lv in
        Option.iter (fun d -> if d <> tgt then connect d [ tgt ]) (expr_cell e)
    | Read (lv, port) ->
        let tgt = store_target lv in
        connect ~label:"rd" (Hashtbl.find in_ports port) [ tgt ]
    | Write (port, e) ->
        let tgt = Hashtbl.find out_ports port in
        (match expr_cell e with
        | Some d -> connect ~label:"wr" d [ tgt ]
        | None -> connect ~label:"wr" fsm [ tgt ])
    | Printf _ -> () (* elided in hardware *)
    | For { var; hi; body; pipeline; _ } ->
        let counter =
          N.Builder.add_cell b ~name:(fresh ("loop_" ^ var)) ~kind:N.Control
            ~res:{ N.res_zero with luts = 16; ffs = 32 }
            ~delay_ns:0.9
        in
        connect ~label:"loopctl" fsm [ counter ];
        let saved = Hashtbl.find_opt loop_cells var in
        Hashtbl.replace loop_cells var counter;
        (* Trip-count-bounded width for the loop variable: index
           arithmetic sizes like real HLS, not like a 32-bit int. *)
        let bits =
          let rec need v acc = if v <= 1 then acc else need (v / 2) (acc + 1) in
          1 + need (max 1 (abs hi)) 1
        in
        let saved_dtype = Hashtbl.find_opt env var in
        Hashtbl.replace env var (Dtype.SInt bits);
        let saved_pipe = !in_pipeline in
        if pipeline then in_pipeline := true;
        List.iter stmt body;
        in_pipeline := saved_pipe;
        (match saved_dtype with
        | Some dt -> Hashtbl.replace env var dt
        | None -> Hashtbl.remove env var);
        (match saved with
        | Some c -> Hashtbl.replace loop_cells var c
        | None -> Hashtbl.remove loop_cells var)
    | If (c, a, bb) ->
        Option.iter (fun d -> connect ~label:"pred" d [ fsm ]) (expr_cell c);
        List.iter stmt a;
        List.iter stmt bb
  in
  List.iter stmt op.body;
  split_oversized (N.Builder.finish b)
