lib/hls/synth.mli: Dtype Expr Hashtbl Op Pld_ir Pld_netlist
