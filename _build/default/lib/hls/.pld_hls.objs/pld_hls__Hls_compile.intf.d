lib/hls/hls_compile.mli: Op Pld_ir Pld_netlist Sched
