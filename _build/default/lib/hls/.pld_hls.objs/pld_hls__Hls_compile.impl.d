lib/hls/hls_compile.ml: Array Float List Op Pld_ir Pld_netlist Printf Sched String Synth Unix
