lib/hls/sched.mli: Expr Op Pld_ir
