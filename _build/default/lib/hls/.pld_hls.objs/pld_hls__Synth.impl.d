lib/hls/synth.ml: Array Dtype Expr Hashtbl List Op Option Pld_apfixed Pld_ir Pld_netlist Printf String Validate Value
