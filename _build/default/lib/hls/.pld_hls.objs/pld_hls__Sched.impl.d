lib/hls/sched.ml: Expr Hashtbl List Op Option Pld_ir
