(** Host↔card DMA engine model (§2.5, Fig. 3): PCIe-attached streaming
    with per-transfer setup latency and link bandwidth. The engine sits
    on NoC leaf 0 in the PLD overlay and feeds the kernel's AXI streams
    directly in the monolithic flows. *)

type t = {
  gbytes_per_sec : float;
  setup_us : float;  (** descriptor setup + doorbell per transfer *)
  word_bytes : int;
}

val default : t
(** PCIe Gen3 x16-class: 12 GB/s, 0.5 µs setup, 4-byte stream words. *)

val transfer_seconds : t -> bytes:int -> float
val frame_seconds : t -> words_in:int -> words_out:int -> float
(** Input and output transfers of one frame (two descriptors). *)
