lib/platform/dma.ml:
