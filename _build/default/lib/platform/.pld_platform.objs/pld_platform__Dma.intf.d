lib/platform/dma.mli:
