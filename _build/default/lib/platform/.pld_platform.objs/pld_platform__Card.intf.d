lib/platform/card.mli: Pld_fabric Pld_noc Pld_riscv Xclbin
