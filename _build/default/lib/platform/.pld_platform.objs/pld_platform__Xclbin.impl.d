lib/platform/xclbin.ml: List Pld_pnr Pld_riscv Printf
