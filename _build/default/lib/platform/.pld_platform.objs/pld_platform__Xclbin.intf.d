lib/platform/xclbin.mli: Pld_pnr Pld_riscv
