lib/platform/card.ml: Hashtbl List Option Pld_fabric Pld_noc Pld_pnr Pld_riscv Printf String Xclbin
