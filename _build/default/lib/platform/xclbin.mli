(** Binary containers, mirroring the artifacts of Figs. 5–7:

    - the L1 [overlay.xclbin] holding the linking network + support
      infrastructure,
    - per-page L2 partial bitstreams from the -O1 flow,
    - softcore-page L2 bitstreams whose payload is an ELF image,
    - the monolithic [kernel.xclbin] from the -O3 flow. *)

type payload =
  | Overlay of { pages : int list; noc_leaves : int }
  | Page_bits of { page : int; operator : string; bitstream : Pld_pnr.Bitgen.t; fmax_mhz : float }
  | Softcore of { page : int; elf : Pld_riscv.Elf.packed }
  | Kernel of { bitstream : Pld_pnr.Bitgen.t; fmax_mhz : float; operators : string list }

type t = { label : string; payload : payload; size_bytes : int }

val overlay : pages:int list -> noc_leaves:int -> t
val page_bits : page:int -> operator:string -> fmax_mhz:float -> Pld_pnr.Bitgen.t -> t
val softcore : page:int -> Pld_riscv.Elf.packed -> t
val kernel : fmax_mhz:float -> operators:string list -> Pld_pnr.Bitgen.t -> t

val describe : t -> string
