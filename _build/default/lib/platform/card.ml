type page_state =
  | Empty
  | Hw of { operator : string; fmax_mhz : float; crc : string }
  | Softcore of { elf : Pld_riscv.Elf.packed }

type l1_state =
  | Unconfigured
  | Overlay_loaded
  | Kernel_loaded of { operators : string list; fmax_mhz : float }

type t = {
  fp : Pld_fabric.Floorplan.t;
  mutable l1 : l1_state;
  pages : (int, page_state) Hashtbl.t;
  mutable net : Pld_noc.Bft.t option;
}

exception Protocol_error of string

let create () =
  { fp = Pld_fabric.Floorplan.u50 (); l1 = Unconfigured; pages = Hashtbl.create 32; net = None }

let floorplan t = t.fp

let noc t =
  match t.net with
  | Some n -> n
  | None -> failwith "Card.noc: overlay not loaded"

let l1 t = t.l1
let page_state t p = Option.value ~default:Empty (Hashtbl.find_opt t.pages p)
let dma_leaf = 0

(* Pages map to NoC leaves 1..22 in page-id order. *)
let page_leaf _t page = page

let pcie_bytes_per_sec = 2.0e9
let config_latency = 0.002

let load_seconds bytes = config_latency +. (float_of_int bytes /. pcie_bytes_per_sec)

let reset t =
  t.l1 <- Unconfigured;
  Hashtbl.reset t.pages;
  t.net <- None

let load t (xb : Xclbin.t) =
  (match xb.Xclbin.payload with
  | Xclbin.Overlay { noc_leaves; _ } ->
      Hashtbl.reset t.pages;
      t.l1 <- Overlay_loaded;
      t.net <- Some (Pld_noc.Bft.create ~leaves:noc_leaves ())
  | Xclbin.Page_bits { page; operator; bitstream; fmax_mhz } -> begin
      match t.l1 with
      | Overlay_loaded ->
          (match Pld_fabric.Floorplan.find_page t.fp page with
          | _ -> ()
          | exception Not_found ->
              raise (Protocol_error (Printf.sprintf "page %d does not exist" page)));
          Hashtbl.replace t.pages page
            (Hw { operator; fmax_mhz; crc = bitstream.Pld_pnr.Bitgen.crc })
      | Unconfigured -> raise (Protocol_error "page load before overlay")
      | Kernel_loaded _ -> raise (Protocol_error "page load while a monolithic kernel is active")
    end
  | Xclbin.Softcore { page; elf } -> begin
      match t.l1 with
      | Overlay_loaded -> Hashtbl.replace t.pages page (Softcore { elf })
      | Unconfigured -> raise (Protocol_error "softcore load before overlay")
      | Kernel_loaded _ -> raise (Protocol_error "softcore load while a monolithic kernel is active")
    end
  | Xclbin.Kernel { operators; fmax_mhz; _ } ->
      Hashtbl.reset t.pages;
      t.net <- None;
      t.l1 <- Kernel_loaded { operators; fmax_mhz });
  load_seconds xb.Xclbin.size_bytes

let loaded_pages t =
  Hashtbl.fold (fun p s acc -> (p, s) :: acc) t.pages [] |> List.sort compare

let describe t =
  let l1 =
    match t.l1 with
    | Unconfigured -> "L1: unconfigured"
    | Overlay_loaded -> "L1: PLD overlay"
    | Kernel_loaded { operators; fmax_mhz } ->
        Printf.sprintf "L1: monolithic kernel (%d ops @ %.0f MHz)" (List.length operators) fmax_mhz
  in
  let pages =
    loaded_pages t
    |> List.map (fun (p, s) ->
           match s with
           | Empty -> Printf.sprintf "  page %d: empty" p
           | Hw { operator; fmax_mhz; _ } -> Printf.sprintf "  page %d: %s @ %.0f MHz" p operator fmax_mhz
           | Softcore { elf } ->
               Printf.sprintf "  page %d: softcore running %s" p
                 elf.Pld_riscv.Elf.program.Pld_riscv.Codegen.op_name)
  in
  String.concat "\n" (l1 :: pages)
