type payload =
  | Overlay of { pages : int list; noc_leaves : int }
  | Page_bits of { page : int; operator : string; bitstream : Pld_pnr.Bitgen.t; fmax_mhz : float }
  | Softcore of { page : int; elf : Pld_riscv.Elf.packed }
  | Kernel of { bitstream : Pld_pnr.Bitgen.t; fmax_mhz : float; operators : string list }

type t = { label : string; payload : payload; size_bytes : int }

let overlay ~pages ~noc_leaves =
  {
    label = "overlay.xclbin";
    payload = Overlay { pages; noc_leaves };
    (* Overlay configures the NoC region plus every page's blank frame. *)
    size_bytes = (List.length pages * 4096) + (noc_leaves * 2048);
  }

let page_bits ~page ~operator ~fmax_mhz bitstream =
  {
    label = Printf.sprintf "%s.p%d.xclbin" operator page;
    payload = Page_bits { page; operator; bitstream; fmax_mhz };
    size_bytes = Pld_pnr.Bitgen.size_bytes bitstream;
  }

let softcore ~page elf =
  {
    label = Printf.sprintf "%s.p%d.elf.xclbin" elf.Pld_riscv.Elf.program.Pld_riscv.Codegen.op_name page;
    payload = Softcore { page; elf };
    size_bytes = Pld_riscv.Elf.size_bytes elf;
  }

let kernel ~fmax_mhz ~operators bitstream =
  {
    label = "kernel.xclbin";
    payload = Kernel { bitstream; fmax_mhz; operators };
    size_bytes = Pld_pnr.Bitgen.size_bytes bitstream;
  }

let describe t =
  match t.payload with
  | Overlay { pages; noc_leaves } ->
      Printf.sprintf "%s: L1 overlay, %d pages, %d NoC leaves, %d bytes" t.label (List.length pages)
        noc_leaves t.size_bytes
  | Page_bits { page; operator; fmax_mhz; _ } ->
      Printf.sprintf "%s: L2 partial bitstream for %s on page %d (%.0f MHz), %d bytes" t.label
        operator page fmax_mhz t.size_bytes
  | Softcore { page; elf } ->
      Printf.sprintf "%s: softcore ELF for page %d (%d bytes footprint), %d bytes" t.label page
        elf.Pld_riscv.Elf.program.Pld_riscv.Codegen.footprint_bytes t.size_bytes
  | Kernel { fmax_mhz; operators; _ } ->
      Printf.sprintf "%s: monolithic kernel (%d operators, %.0f MHz), %d bytes" t.label
        (List.length operators) fmax_mhz t.size_bytes
