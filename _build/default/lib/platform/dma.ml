type t = { gbytes_per_sec : float; setup_us : float; word_bytes : int }

let default = { gbytes_per_sec = 12.0; setup_us = 0.5; word_bytes = 4 }

let transfer_seconds t ~bytes =
  (t.setup_us *. 1e-6) +. (float_of_int bytes /. (t.gbytes_per_sec *. 1e9))

let frame_seconds t ~words_in ~words_out =
  transfer_seconds t ~bytes:(words_in * t.word_bytes)
  +. transfer_seconds t ~bytes:(words_out * t.word_bytes)
