lib/noc/traffic.ml: Bft Hashtbl Int32 List Option
