lib/noc/relay.mli: Pld_fabric Traffic
