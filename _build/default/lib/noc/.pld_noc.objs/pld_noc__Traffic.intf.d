lib/noc/traffic.mli: Bft
