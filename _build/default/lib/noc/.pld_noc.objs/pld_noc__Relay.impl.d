lib/noc/relay.ml: List Pld_fabric Printf Traffic
