lib/noc/bft.ml: Array Hashtbl List Option Printf Queue
