lib/noc/bft.mli:
