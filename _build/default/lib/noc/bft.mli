(** Deflection-routed Butterfly-Fat-Tree linking network (§4.3).

    Single-flit packets, Hoplite-style bufferless switches: every flit
    entering a switch leaves the same cycle on *some* port — flits that
    lose arbitration for their preferred port are deflected. Switches
    are 4-ary with two parent links (the BFT "fatness"); the root has
    none. One flit per link per cycle at the 200 MHz overlay clock.

    Leaves are page endpoints; leaf 0 is conventionally the DMA/host
    interface. Each leaf's interface holds configuration registers
    mapping its local output streams to (destination leaf, destination
    stream); configuration packets update these registers in-band —
    that is the "linking in seconds" mechanism. *)

type flit_kind =
  | Data of { dst_stream : int }
  | Config of { reg : int; dst_leaf_value : int; dst_stream_value : int }
      (** write leaf routing register [reg] at the destination leaf *)

type flit = { dst_leaf : int; payload : int32; kind : flit_kind; mutable age : int }

type t

val create : ?leaves:int -> unit -> t
(** [leaves] defaults to 32 (22 pages + DMA + headroom), rounded up to
    a power of 4-ary tree capacity. *)

val leaf_count : t -> int
val level_count : t -> int

val configure : t -> leaf:int -> stream:int -> dst_leaf:int -> dst_stream:int -> unit
(** Host-side direct register write (used by tests and by the loader
    after its config packets are delivered). *)

val lookup_route : t -> leaf:int -> stream:int -> (int * int) option
(** Current (dst_leaf, dst_stream) register value. *)

val inject : t -> leaf:int -> flit -> bool
(** Try to hand a flit to the leaf's injection port; false if the port
    is busy this cycle (caller retries next cycle). *)

val inject_via_route : t -> leaf:int -> stream:int -> int32 -> bool
(** Data injection using the leaf's configured routing register;
    raises [Invalid_argument] if the stream is not linked. *)

val eject : t -> leaf:int -> (int * int32) list
(** Drain (dst_stream, payload) data flits delivered to this leaf since
    the last call. Config flits are applied internally. *)

val step : t -> unit
(** Advance one cycle. *)

type stats = {
  cycles : int;
  delivered : int;
  deflections : int;
  max_latency : int;
  total_latency : int;
}

val stats : t -> stats

val run_until_idle : ?max_cycles:int -> t -> unit
(** Step until no flits are in flight (injection queues drained by the
    caller beforehand). Raises [Failure] past [max_cycles]. *)
