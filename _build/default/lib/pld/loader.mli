(** The loading half of "pld": push compiled containers onto the card
    in DFX order (overlay first, then L2 pages) and link the dataflow
    graph by sending routing-register configuration packets through
    the network. *)

val deploy : Pld_platform.Card.t -> Build.app -> float
(** Returns modeled load+link seconds. Raises
    [Pld_platform.Card.Protocol_error] on DFX violations. *)

val describe_artifacts : Build.app -> string
(** One line per xclbin/ELF the deploy would load. *)
