(** Execution engines and the performance models behind Tab. 3 and
    Figs. 10–11.

    All flows share the same functional semantics (the KPN reference);
    what differs is the timing model:

    - -O3 / Vitis: each operator runs at the post-P&R Fmax with its HLS
      schedule; the frame time is the pipeline bottleneck's cycles.
    - -O1: compute runs at the 200 MHz overlay clock and every stream
      crosses the linking network — the frame time is the max of the
      compute bottleneck and the replayed NoC drain time.
    - -O0: softcore pages execute their real RV32 binaries cycle by
      cycle (co-simulated inside the KPN); hardware pages keep the -O1
      model. The frame time is the slowest stage. *)

open Pld_ir

type perf = {
  fmax_mhz : float;
  frame_cycles : int;
  ms_per_input : float;
  bottleneck : string;
  link_seconds : float;  (** NoC configuration (linking) time, -O0/-O1 *)
}

type result = {
  outputs : (string * Value.t list) list;
  perf : perf;
  printed : (string * string) list;
  softcore_cycles : (string * int) list;  (** per softcore instance *)
}

val noc_links : Build.app -> Pld_kpn.Network.channel_stats list -> Pld_noc.Traffic.link list
(** One logical NoC link per graph channel (leaf = page id, DMA on
    leaf 0); token counts come from a functional run's channel stats
    (0 when absent). Used by the loader and the perf model. *)

val run : ?fuel:int -> Build.app -> inputs:(string * Value.t list) list -> result
(** Raises on validation failures or KPN deadlock. *)

val run_host : Graph.t -> inputs:(string * Value.t list) list -> (string * Value.t list) list * float
(** The "X86 g++" column: execute the application natively on the host
    (the reference interpreter) and measure wall-clock seconds. *)

val emulation_slowdown : float
(** Modeled Vitis hardware-emulation slowdown over native host
    execution (documented constant). *)
