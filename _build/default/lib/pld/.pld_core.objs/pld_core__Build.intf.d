lib/pld/build.mli: Flow Graph Pld_fabric Pld_ir
