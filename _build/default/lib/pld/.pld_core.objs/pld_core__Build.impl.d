lib/pld/build.ml: Array Assign Float Flow Graph Hashtbl List Op Option Pld_fabric Pld_hls Pld_ir Pld_netlist Pld_util Validate
