lib/pld/loader.ml: Build Flow List Option Pld_noc Pld_platform Runner String
