lib/pld/assign.mli: Graph Pld_fabric Pld_ir Pld_netlist
