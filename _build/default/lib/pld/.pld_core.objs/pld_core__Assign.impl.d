lib/pld/assign.ml: Format Graph Hashtbl List Pld_fabric Pld_ir Pld_netlist Printf
