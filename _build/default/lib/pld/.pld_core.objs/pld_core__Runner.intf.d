lib/pld/runner.mli: Build Graph Pld_ir Pld_kpn Pld_noc Value
