lib/pld/flow.ml: Array Assign Graph List Op Option Pld_fabric Pld_hls Pld_ir Pld_netlist Pld_platform Pld_pnr Pld_riscv Unix Validate
