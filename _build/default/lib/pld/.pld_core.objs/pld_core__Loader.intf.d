lib/pld/loader.mli: Build Pld_platform
