lib/pld/runner.ml: Build Dtype Flow Graph Hashtbl Int32 Interp List Op Option Pld_fabric Pld_hls Pld_ir Pld_kpn Pld_noc Pld_platform Pld_pnr Pld_riscv Unix Value
