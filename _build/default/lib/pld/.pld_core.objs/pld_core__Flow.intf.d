lib/pld/flow.mli: Graph Op Pld_fabric Pld_hls Pld_ir Pld_netlist Pld_platform Pld_pnr Pld_riscv
