lib/pld/report.mli: Build Runner
