lib/pld/report.ml: Build Flow List Option Pld_hls Pld_ir Pld_netlist Pld_pnr Printf Runner
