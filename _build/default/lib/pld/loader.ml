module Card = Pld_platform.Card
module Xclbin = Pld_platform.Xclbin

let deploy card (app : Build.app) =
  match app.Build.level with
  | Build.O3 | Build.Vitis ->
      let mono = Option.get app.Build.monolithic in
      Card.load card mono.Flow.xclbin3
  | Build.O0 | Build.O1 ->
      let t = ref (Card.load card (Flow.overlay_xclbin app.Build.fp)) in
      List.iter
        (fun (_, compiled) ->
          let xb =
            match compiled with
            | Build.Hw_page h -> h.Flow.xclbin
            | Build.Soft_page s -> s.Flow.xclbin0
          in
          t := !t +. Card.load card xb)
        app.Build.operators;
      (* Link: program every source leaf's routing registers with
         config packets through the network. *)
      let links = Runner.noc_links app [] in
      let net = Card.noc card in
      let cycles = Pld_noc.Traffic.config_cycles net links in
      Pld_noc.Traffic.configure_links net links;
      t := !t +. (float_of_int cycles /. 200.0e6);
      !t

let describe_artifacts (app : Build.app) =
  match app.Build.level with
  | Build.O3 | Build.Vitis ->
      Xclbin.describe (Option.get app.Build.monolithic).Flow.xclbin3
  | Build.O0 | Build.O1 ->
      String.concat "\n"
        (Xclbin.describe (Flow.overlay_xclbin app.Build.fp)
        :: List.map
             (fun (_, c) ->
               Xclbin.describe
                 (match c with Build.Hw_page h -> h.Flow.xclbin | Build.Soft_page s -> s.Flow.xclbin0))
             app.Build.operators)
