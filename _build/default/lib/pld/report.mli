(** Human-readable compile/run reporting in the shape of the paper's
    tables. *)

val compile_row : Build.app -> string list
(** [benchmark; hls; syn; p&r; bitgen; total] seconds — one Tab. 2
    cell group. For -O1 the total is the parallel (cluster) wall time
    of the slowest operator; phases are summed over recompiled
    operators. *)

val compile_summary : Build.app -> string

val area_row : Build.app -> string list
(** [LUT; BRAM18; DSP; pages] — one Tab. 4 cell group. *)

val perf_row : Runner.result -> string list
(** [Fmax; ms/input] — one Tab. 3 cell group. *)
