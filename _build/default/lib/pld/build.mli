(** Application-level builds: drives the per-operator flows with an
    incremental cache (only changed operators recompile — the Makefile
    discipline of §6) and a cluster model for parallel page compiles
    (§7.1's Slurm setup). *)

open Pld_ir

type level = O0 | O1 | O3 | Vitis

val level_name : level -> string

type compiled_operator =
  | Hw_page of Flow.o1_operator
  | Soft_page of Flow.o0_operator

type report = {
  level : level;
  per_op_seconds : (string * float) list;  (** 0 for cache hits *)
  phases : Flow.phase_times;  (** aggregate across recompiled operators *)
  serial_seconds : float;
  parallel_seconds : float;  (** cluster makespan over [workers] *)
  cache_hits : int;
  recompiled : int;
}

type app = {
  graph : Graph.t;
  fp : Pld_fabric.Floorplan.t;
  level : level;
  assignment : (string * int) list;  (** instance → page (O0/O1 only) *)
  operators : (string * compiled_operator) list;
  monolithic : Flow.o3_app option;  (** O3 / Vitis only *)
  report : report;
}

type cache

val create_cache : unit -> cache
val cache_size : cache -> int

val compile :
  ?cache:cache -> ?workers:int -> ?seed:int -> Pld_fabric.Floorplan.t -> Graph.t -> level:level -> app
(** [level = O1] follows each instance's pragma (HW → page P&R,
    RISCV → softcore); [O0] forces every instance onto a softcore;
    [O3]/[Vitis] compile monolithically. [workers] (default 22) sizes
    the compile cluster for [parallel_seconds]. *)

val makespan : workers:int -> float list -> float
(** Longest-processing-time list scheduling — the cluster model. *)
