open Pld_ir
module Fp = Pld_fabric.Floorplan
module Hls = Pld_hls.Hls_compile
module Digest = Pld_util.Digest_lite

type level = O0 | O1 | O3 | Vitis

let level_name = function O0 -> "-O0" | O1 -> "-O1" | O3 -> "-O3" | Vitis -> "vitis"

type compiled_operator = Hw_page of Flow.o1_operator | Soft_page of Flow.o0_operator

type report = {
  level : level;
  per_op_seconds : (string * float) list;
  phases : Flow.phase_times;
  serial_seconds : float;
  parallel_seconds : float;
  cache_hits : int;
  recompiled : int;
}

type app = {
  graph : Graph.t;
  fp : Fp.t;
  level : level;
  assignment : (string * int) list;
  operators : (string * compiled_operator) list;
  monolithic : Flow.o3_app option;
  report : report;
}

type entry = Cached_hw of Flow.o1_operator | Cached_soft of Flow.o0_operator | Cached_mono of Flow.o3_app

type cache = (string, entry) Hashtbl.t

let create_cache () : cache = Hashtbl.create 64
let cache_size (c : cache) = Hashtbl.length c

let makespan ~workers durations =
  if workers < 1 then invalid_arg "Build.makespan: need at least one worker";
  let loads = Array.make workers 0.0 in
  let sorted = List.sort (fun a b -> compare b a) durations in
  List.iter
    (fun d ->
      let best = ref 0 in
      Array.iteri (fun i l -> if l < loads.(!best) then best := i) loads;
      loads.(!best) <- loads.(!best) +. d)
    sorted;
  Array.fold_left Float.max 0.0 loads

let zero_phases = { Flow.hls = 0.0; syn = 0.0; pnr = 0.0; bitgen = 0.0; overhead = 0.0 }

let add_phases a b =
  {
    Flow.hls = a.Flow.hls +. b.Flow.hls;
    syn = a.Flow.syn +. b.Flow.syn;
    pnr = a.Flow.pnr +. b.Flow.pnr;
    bitgen = a.Flow.bitgen +. b.Flow.bitgen;
    overhead = a.Flow.overhead +. b.Flow.overhead;
  }

let op_key ~level ~seed ~page (i : Graph.instance) =
  Digest.combine
    [
      Digest.of_string (Op.source i.op);
      Digest.of_string (level_name level);
      Digest.of_string (string_of_int seed);
      Digest.of_string (string_of_int page);
      Digest.of_string
        (match i.target with
        | Graph.Riscv -> "riscv"
        | Graph.Hw { page_hint } -> "hw" ^ Option.fold ~none:"" ~some:string_of_int page_hint);
    ]

let compile ?cache ?(workers = 22) ?(seed = 7) (fp : Fp.t) (g : Graph.t) ~level =
  Validate.check_graph_exn g;
  let cache = match cache with Some c -> c | None -> create_cache () in
  let hits = ref 0 and misses = ref 0 in
  match level with
  | O3 | Vitis -> begin
      let key =
        Digest.combine
          (Digest.of_string (Graph.source g)
          :: Digest.of_string (level_name level)
          :: Digest.of_string (string_of_int seed)
          :: List.map (fun (i : Graph.instance) -> Digest.of_string (Op.source i.op)) g.instances)
      in
      let mono, seconds =
        match Hashtbl.find_opt cache key with
        | Some (Cached_mono m) ->
            incr hits;
            (m, 0.0)
        | Some (Cached_hw _ | Cached_soft _) | None ->
            incr misses;
            let m = Flow.compile_o3 ~seed ~vitis_baseline:(level = Vitis) fp g in
            Hashtbl.replace cache key (Cached_mono m);
            (m, Flow.total_seconds m.Flow.times3)
      in
      let phases = if seconds = 0.0 then zero_phases else mono.Flow.times3 in
      {
        graph = g;
        fp;
        level;
        assignment = [];
        operators = [];
        monolithic = Some mono;
        report =
          {
            level;
            per_op_seconds = [ (g.graph_name, seconds) ];
            phases;
            serial_seconds = seconds;
            parallel_seconds = seconds;
            cache_hits = !hits;
            recompiled = !misses;
          };
      }
    end
  | O0 | O1 -> begin
      let target_of (i : Graph.instance) =
        match level with O0 -> Graph.Riscv | _ -> i.target
      in
      (* Page assignment needs post-HLS areas for HW operators; HLS is
         deterministic and cheap, so run it first (its cost is also
         counted inside the O1 per-operator compile). *)
      let demands =
        List.map
          (fun (i : Graph.instance) ->
            let res =
              match target_of i with
              | Graph.Riscv ->
                  (* PicoRV32 + memory: a fixed overlay footprint
                     (before the shared leaf interface is added). *)
                  { Pld_netlist.Netlist.luts = 900; ffs = 1300; brams = 6; dsps = 1 }
              | Graph.Hw _ ->
                  Pld_netlist.Netlist.total_res (Hls.compile i.op).Hls.netlist
            in
            (i.inst_name, target_of i, res))
          g.instances
      in
      let assignment = Assign.assign fp demands in
      let results =
        List.map
          (fun (i : Graph.instance) ->
            let page = List.assoc i.inst_name assignment in
            let key = op_key ~level ~seed ~page i in
            match (target_of i, Hashtbl.find_opt cache key) with
            | Graph.Riscv, Some (Cached_soft s) ->
                incr hits;
                (i.inst_name, Soft_page s, 0.0, zero_phases)
            | Graph.Hw _, Some (Cached_hw h) ->
                incr hits;
                (i.inst_name, Hw_page h, 0.0, h.Flow.times)
            | Graph.Riscv, _ ->
                incr misses;
                let s = Flow.compile_o0_operator ~page ~inst:i.inst_name i.op in
                Hashtbl.replace cache key (Cached_soft s);
                ( i.inst_name,
                  Soft_page s,
                  s.Flow.riscv_seconds,
                  { zero_phases with Flow.hls = s.Flow.riscv_seconds } )
            | Graph.Hw _, _ ->
                incr misses;
                let h = Flow.compile_o1_operator ~seed fp ~page ~inst:i.inst_name i.op in
                Hashtbl.replace cache key (Cached_hw h);
                (i.inst_name, Hw_page h, Flow.total_seconds h.Flow.times, h.Flow.times))
          g.instances
      in
      let per_op_seconds = List.map (fun (n, _, s, _) -> (n, s)) results in
      let recompiled_phase =
        List.fold_left (fun acc (_, _, s, ph) -> if s > 0.0 then add_phases acc ph else acc) zero_phases results
      in
      let durations = List.map (fun (_, s) -> s) per_op_seconds in
      {
        graph = g;
        fp;
        level;
        assignment;
        operators = List.map (fun (n, c, _, _) -> (n, c)) results;
        monolithic = None;
        report =
          {
            level;
            per_op_seconds;
            phases = recompiled_phase;
            serial_seconds = List.fold_left ( +. ) 0.0 durations;
            parallel_seconds = makespan ~workers durations;
            cache_hits = !hits;
            recompiled = !misses;
          };
      }
    end
