(** Content hashing for the incremental build cache.

    FNV-1a over bytes, folded to a hex string. Not cryptographic; it only
    needs to detect source changes between compiles, the same role as the
    timestamp/hash checks in a Makefile-driven flow. *)

type t = string (** 16 hex characters *)

val of_string : string -> t
val combine : t list -> t
val pp : Format.formatter -> t -> unit
