type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_seed t =
  t.state <- Int64.add t.state golden_gamma;
  t.state

(* SplitMix64 finalizer. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t = mix (next_seed t)

let split t = { state = bits64 t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 1) land max_int in
  r mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec draw () =
    let u = float t 1.0 in
    if u = 0.0 then draw () else u
  in
  let u1 = draw () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))
