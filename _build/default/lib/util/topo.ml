exception Cycle of int list

let adjacency n edges =
  let adj = Array.make n [] in
  let indeg = Array.make n 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then invalid_arg "Topo: vertex out of range";
      adj.(u) <- v :: adj.(u);
      indeg.(v) <- indeg.(v) + 1)
    edges;
  Array.iteri (fun i l -> adj.(i) <- List.rev l) adj;
  (adj, indeg)

(* Kahn's algorithm with a min-heap replaced by ordered scanning: n is
   small everywhere we use this, so a simple sorted worklist keeps the
   ordering stable and the code obvious. *)
let sort ~n ~edges =
  let adj, indeg = adjacency n edges in
  let module Q = Set.Make (Int) in
  let ready = ref Q.empty in
  for v = n - 1 downto 0 do
    if indeg.(v) = 0 then ready := Q.add v !ready
  done;
  let rec loop acc =
    match Q.min_elt_opt !ready with
    | None -> List.rev acc
    | Some v ->
        ready := Q.remove v !ready;
        List.iter
          (fun w ->
            indeg.(w) <- indeg.(w) - 1;
            if indeg.(w) = 0 then ready := Q.add w !ready)
          adj.(v);
        loop (v :: acc)
  in
  let order = loop [] in
  if List.length order = n then order
  else begin
    (* Find a witness cycle among the unresolved vertices. *)
    let remaining = Array.make n false in
    for v = 0 to n - 1 do
      remaining.(v) <- indeg.(v) > 0
    done;
    let start =
      let rec find v = if v >= n then 0 else if remaining.(v) then v else find (v + 1) in
      find 0
    in
    let visited = Array.make n (-1) in
    let rec walk v step path =
      if visited.(v) >= 0 then begin
        let cycle = List.filteri (fun i _ -> i >= visited.(v)) (List.rev path) in
        raise (Cycle cycle)
      end;
      visited.(v) <- step;
      let next = List.find_opt (fun w -> remaining.(w)) adj.(v) in
      match next with
      | Some w -> walk w (step + 1) (v :: path)
      | None -> raise (Cycle [ v ])
    in
    walk start 0 []
  end

let is_dag ~n ~edges = match sort ~n ~edges with _ -> true | exception Cycle _ -> false

let sccs ~n ~edges =
  let adj, _ = adjacency n edges in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  (* Iterative Tarjan to avoid stack overflow on long chains. *)
  let rec strongconnect v =
    index.(v) <- !counter;
    lowlink.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    on_stack.(v) <- true;
    List.iter
      (fun w ->
        if index.(w) < 0 then begin
          strongconnect w;
          lowlink.(v) <- min lowlink.(v) lowlink.(w)
        end
        else if on_stack.(w) then lowlink.(v) <- min lowlink.(v) index.(w))
      adj.(v);
    if lowlink.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  for v = 0 to n - 1 do
    if index.(v) < 0 then strongconnect v
  done;
  List.rev !components

let longest_path ~n ~edges =
  let plain = List.map (fun (u, v, _) -> (u, v)) edges in
  let order = sort ~n ~edges:plain in
  let adj = Array.make n [] in
  List.iter (fun (u, v, w) -> adj.(u) <- (v, w) :: adj.(u)) edges;
  let dist = Array.make n 0.0 in
  List.iter
    (fun u -> List.iter (fun (v, w) -> if dist.(u) +. w > dist.(v) then dist.(v) <- dist.(u) +. w) adj.(u))
    order;
  dist
