type t = string

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let hash64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let of_string s = Printf.sprintf "%016Lx" (hash64 s)
let combine ts = of_string (String.concat "|" ts)
let pp fmt t = Format.pp_print_string fmt t
