type align = Left | Right

let cell rows i j = match List.nth_opt (List.nth rows i) j with Some c -> c | None -> ""

let render ?(aligns = []) ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let width j =
    List.fold_left (fun acc r -> max acc (String.length (match List.nth_opt r j with Some c -> c | None -> ""))) 0 all
  in
  let widths = List.init cols width in
  let align j = match List.nth_opt aligns j with Some a -> a | None -> Left in
  let pad j s =
    let w = List.nth widths j in
    let n = w - String.length s in
    if n <= 0 then s
    else match align j with Left -> s ^ String.make n ' ' | Right -> String.make n ' ' ^ s
  in
  let line ch = "+" ^ String.concat "+" (List.map (fun w -> String.make (w + 2) ch) widths) ^ "+" in
  let row r = "| " ^ String.concat " | " (List.mapi (fun j _ -> pad j (match List.nth_opt r j with Some c -> c | None -> "")) widths) ^ " |" in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf (row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line '=');
  Buffer.add_char buf '\n';
  List.iteri
    (fun i _ ->
      ignore (cell rows i 0);
      Buffer.add_string buf (row (List.nth rows i));
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (line '-');
  Buffer.contents buf

let escape_csv s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let render_csv ~header rows =
  let line r = String.concat "," (List.map escape_csv r) in
  String.concat "\n" (line header :: List.map line rows)
