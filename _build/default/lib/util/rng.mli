(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the simulator (placer moves, workload
    generators, NoC traffic) draws from an explicit [Rng.t] so that runs
    are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds give equal
    streams. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val bits64 : t -> int64
(** Raw 64 random bits. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal deviate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)
