lib/util/stats.mli:
