lib/util/table.ml: Buffer List String
