lib/util/table.mli:
