lib/util/topo.ml: Array Int List Set
