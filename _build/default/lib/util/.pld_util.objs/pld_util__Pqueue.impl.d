lib/util/pqueue.ml: Array
