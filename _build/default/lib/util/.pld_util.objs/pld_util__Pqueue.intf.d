lib/util/pqueue.mli:
