lib/util/digest_lite.ml: Char Format Int64 Printf String
