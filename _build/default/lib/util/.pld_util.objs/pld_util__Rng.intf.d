lib/util/rng.mli:
