lib/util/topo.mli:
