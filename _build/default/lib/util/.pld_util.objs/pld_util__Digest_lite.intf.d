lib/util/digest_lite.mli: Format
