(** Disjoint-set forest with path compression and union by rank. *)

type t

val create : int -> t
(** [create n] makes [n] singleton sets [0..n-1]. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> unit
val same : t -> int -> int -> bool

val groups : t -> int list list
(** All current sets, each as a sorted list of members. *)
