(** Small descriptive-statistics helpers used by the benchmark harness. *)

val mean : float list -> float
val stddev : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0, 100]; linear interpolation between
    order statistics. Raises [Invalid_argument] on an empty list. *)

val median : float list -> float
val min_max : float list -> float * float

val histogram : bins:int -> float list -> (float * float * int) list
(** [(lo, hi, count)] triples covering min..max in [bins] equal bins. *)

val geometric_mean : float list -> float

val summary : float list -> string
(** One-line "min/median/mean/max" rendering for logs. *)
