type t = { parent : int array; rank : int array }

let create n = { parent = Array.init n (fun i -> i); rank = Array.make n 0 }

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let root = find t p in
    t.parent.(x) <- root;
    root
  end

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then
    if t.rank.(ra) < t.rank.(rb) then t.parent.(ra) <- rb
    else if t.rank.(ra) > t.rank.(rb) then t.parent.(rb) <- ra
    else begin
      t.parent.(rb) <- ra;
      t.rank.(ra) <- t.rank.(ra) + 1
    end

let same t a b = find t a = find t b

let groups t =
  let n = Array.length t.parent in
  let tbl = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t i in
    let cur = try Hashtbl.find tbl r with Not_found -> [] in
    Hashtbl.replace tbl r (i :: cur)
  done;
  Hashtbl.fold (fun _ members acc -> members :: acc) tbl []
  |> List.sort (fun a b -> compare (List.hd a) (List.hd b))
