(** Minimal binary min-heap keyed by floats (router/placer workhorse). *)

type 'a t

val create : unit -> 'a t
val push : 'a t -> float -> 'a -> unit
val pop : 'a t -> (float * 'a) option
val is_empty : 'a t -> bool
val size : 'a t -> int
val clear : 'a t -> unit
