let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] | [ _ ] -> 0.0
  | xs ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
        /. float_of_int (List.length xs - 1)
      in
      sqrt var

let percentile p = function
  | [] -> invalid_arg "Stats.percentile: empty"
  | xs ->
      let a = Array.of_list xs in
      Array.sort compare a;
      let n = Array.length a in
      if n = 1 then a.(0)
      else begin
        let rank = p /. 100.0 *. float_of_int (n - 1) in
        let lo = int_of_float (floor rank) in
        let hi = min (lo + 1) (n - 1) in
        let frac = rank -. float_of_int lo in
        a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
      end

let median xs = percentile 50.0 xs

let min_max = function
  | [] -> invalid_arg "Stats.min_max: empty"
  | x :: xs -> List.fold_left (fun (lo, hi) v -> (min lo v, max hi v)) (x, x) xs

let histogram ~bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  match xs with
  | [] -> []
  | _ ->
      let lo, hi = min_max xs in
      let width = if hi = lo then 1.0 else (hi -. lo) /. float_of_int bins in
      let counts = Array.make bins 0 in
      List.iter
        (fun x ->
          let i = min (bins - 1) (int_of_float ((x -. lo) /. width)) in
          counts.(i) <- counts.(i) + 1)
        xs;
      List.init bins (fun i ->
          (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), counts.(i)))

let geometric_mean = function
  | [] -> 0.0
  | xs ->
      let logsum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
      exp (logsum /. float_of_int (List.length xs))

let summary xs =
  match xs with
  | [] -> "(empty)"
  | _ ->
      let lo, hi = min_max xs in
      Printf.sprintf "min=%.3g median=%.3g mean=%.3g max=%.3g" lo (median xs) (mean xs) hi
