type 'a t = { mutable keys : float array; mutable vals : 'a option array; mutable n : int }

let create () = { keys = Array.make 16 0.0; vals = Array.make 16 None; n = 0 }

let grow t =
  let cap = Array.length t.keys in
  if t.n >= cap then begin
    let keys = Array.make (2 * cap) 0.0 and vals = Array.make (2 * cap) None in
    Array.blit t.keys 0 keys 0 cap;
    Array.blit t.vals 0 vals 0 cap;
    t.keys <- keys;
    t.vals <- vals
  end

let swap t i j =
  let k = t.keys.(i) and v = t.vals.(i) in
  t.keys.(i) <- t.keys.(j);
  t.vals.(i) <- t.vals.(j);
  t.keys.(j) <- k;
  t.vals.(j) <- v

let push t key v =
  grow t;
  t.keys.(t.n) <- key;
  t.vals.(t.n) <- Some v;
  let i = ref t.n in
  t.n <- t.n + 1;
  while !i > 0 && t.keys.((!i - 1) / 2) > t.keys.(!i) do
    swap t !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let pop t =
  if t.n = 0 then None
  else begin
    let key = t.keys.(0) and v = t.vals.(0) in
    t.n <- t.n - 1;
    t.keys.(0) <- t.keys.(t.n);
    t.vals.(0) <- t.vals.(t.n);
    t.vals.(t.n) <- None;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < t.n && t.keys.(l) < t.keys.(!smallest) then smallest := l;
      if r < t.n && t.keys.(r) < t.keys.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        swap t !i !smallest;
        i := !smallest
      end
      else continue := false
    done;
    match v with Some v -> Some (key, v) | None -> None
  end

let is_empty t = t.n = 0
let size t = t.n

let clear t =
  Array.fill t.vals 0 t.n None;
  t.n <- 0
