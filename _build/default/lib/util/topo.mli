(** Topological sorting and cycle detection over small integer graphs. *)

exception Cycle of int list
(** Raised by {!sort} with one witness cycle (vertex list). *)

val sort : n:int -> edges:(int * int) list -> int list
(** [sort ~n ~edges] topologically orders vertices [0..n-1] where each
    [(u, v)] edge means "u before v". Stable with respect to vertex
    numbering among independent vertices. Raises {!Cycle} if cyclic. *)

val is_dag : n:int -> edges:(int * int) list -> bool

val sccs : n:int -> edges:(int * int) list -> int list list
(** Strongly connected components (Tarjan), in reverse topological
    order of the condensation. *)

val longest_path : n:int -> edges:(int * int * float) list -> float array
(** [longest_path ~n ~edges] gives, for each vertex, the weight of the
    longest weighted path ending at it (0 for sources). Requires a DAG;
    raises {!Cycle} otherwise. Edge [(u, v, w)] contributes [dist u + w]
    to [v]. *)
