(** Plain-text table rendering for the benchmark harness. *)

type align = Left | Right

val render : ?aligns:align list -> header:string list -> string list list -> string
(** [render ~header rows] lays out a boxed ASCII table. Missing cells
    render empty; [aligns] defaults to [Left] per column. *)

val render_csv : header:string list -> string list list -> string
