open Pld_fabric
module N = Pld_netlist.Netlist

type result = {
  netlist : N.t;
  region : Floorplan.rect;
  placement : (int * int) array;
  place : Place.result;
  route : Route.result;
  timing : Sta.result;
  bitstream : Bitgen.t;
  seconds : float;
}

let implement ?(seed = 1) ?(effort = 1.0) ?(clock_target_mhz = 300.0) ?(pins = []) ~device ~region nl =
  let t0 = Unix.gettimeofday () in
  let place = Place.run ~seed ~effort ~pins ~device ~region nl in
  let route = Route.run ~seed ~device ~region ~placement:place.Place.positions nl in
  let timing = Sta.analyze ~clock_target_mhz nl ~net_delay_ns:route.Route.net_delay_ns in
  let bitstream =
    Bitgen.generate ~region ~placement:place.Place.positions
      ~routes:(Array.to_list route.Route.routes) nl
  in
  {
    netlist = nl;
    region;
    placement = place.Place.positions;
    place;
    route;
    timing;
    bitstream;
    seconds = Unix.gettimeofday () -. t0;
  }

let routed_ok r = r.place.Place.overfill = 0.0 && r.route.Route.overused_edges = 0

let report r =
  Printf.sprintf
    "== P&R report: %s ==\n\
     region: (%d,%d)-(%d,%d)\n\
     wirelength: %d  overfill: %.1f  route overuse: %d (after %d iterations)\n\
     critical path: %.2f ns -> Fmax %.0f MHz\n\
     bitstream: %d bytes (crc %s)\n\
     time: place %.2fs route %.2fs bit %.2fs (total %.2fs)"
    r.netlist.N.nl_name r.region.Floorplan.x0 r.region.Floorplan.y0 r.region.Floorplan.x1
    r.region.Floorplan.y1 r.place.Place.wirelength r.place.Place.overfill
    r.route.Route.overused_edges r.route.Route.iterations r.timing.Sta.critical_path_ns
    r.timing.Sta.fmax_mhz (Bitgen.size_bytes r.bitstream) r.bitstream.Bitgen.crc
    r.place.Place.seconds r.route.Route.seconds r.bitstream.Bitgen.seconds r.seconds
