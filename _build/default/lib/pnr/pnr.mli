(** The implementation backend: place, route, time, and generate a
    bitstream for a netlist targeting a device region.

    Two scopes mirror the paper's flows: a page rectangle with the
    abstract shell (the -O1 xclbin generator) or the whole L1 region
    (the -O3 / Vitis monolithic compile). *)

open Pld_fabric
module N := Pld_netlist.Netlist

type result = {
  netlist : N.t;
  region : Floorplan.rect;
  placement : (int * int) array;
  place : Place.result;
  route : Route.result;
  timing : Sta.result;
  bitstream : Bitgen.t;
  seconds : float;  (** total wall-clock (place+route+sta+bitgen) *)
}

val implement :
  ?seed:int ->
  ?effort:float ->
  ?clock_target_mhz:float ->
  ?pins:(string * (int * int)) list ->
  device:Device.t ->
  region:Floorplan.rect ->
  N.t ->
  result
(** Raises [Invalid_argument] when the netlist cannot fit the region
    (the caller decides whether to pick a bigger page). *)

val routed_ok : result -> bool
(** Placement legal (no overfill) and routing has no overused wires. *)

val report : result -> string
