(** PathFinder negotiated-congestion router over the fabric's routing
    resource graph. *)

open Pld_fabric
module N := Pld_netlist.Netlist

type route = { net_id : int; edges : int list (** edge indices into the RRG *) }

type result = {
  rrg : Rrg.t;
  routes : route array;
  iterations : int;
  overused_edges : int;  (** 0 = fully legal routing *)
  total_wire : int;
  seconds : float;
  net_delay_ns : float array;  (** per net, driver→farthest sink *)
}

val run :
  ?seed:int ->
  ?max_iterations:int ->
  device:Device.t ->
  region:Floorplan.rect ->
  placement:(int * int) array ->
  N.t ->
  result
(** Routes every multi-tile net; same-tile nets cost zero wire. *)
