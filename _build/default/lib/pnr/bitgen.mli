(** Bitstream generation: serialize a placed-and-routed design into
    configuration frames for a region. Partial bitstreams (one page)
    are proportionally smaller than full-region ones — the property
    that makes DFX loading fast (§2.3). *)

open Pld_fabric
module N := Pld_netlist.Netlist

type t = {
  target : Floorplan.rect;
  frames : bytes;
  crc : string;
  seconds : float;
}

val generate :
  region:Floorplan.rect -> placement:(int * int) array -> routes:Route.route list -> N.t -> t

val size_bytes : t -> int

val frames_per_tile : int
(** Configuration bytes per tile — the size model constant. *)
