lib/pnr/pnr.mli: Bitgen Device Floorplan Place Pld_fabric Pld_netlist Route Sta
