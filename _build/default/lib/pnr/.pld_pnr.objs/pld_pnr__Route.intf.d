lib/pnr/route.mli: Device Floorplan Pld_fabric Pld_netlist Rrg
