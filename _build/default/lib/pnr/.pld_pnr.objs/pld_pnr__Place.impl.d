lib/pnr/place.ml: Array Device Float Floorplan Format List Pld_fabric Pld_netlist Pld_util Printf Unix
