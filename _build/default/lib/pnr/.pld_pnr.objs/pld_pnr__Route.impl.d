lib/pnr/route.ml: Array Hashtbl List Pld_fabric Pld_netlist Pld_util Rrg Unix
