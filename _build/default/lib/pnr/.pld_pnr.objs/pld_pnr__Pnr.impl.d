lib/pnr/pnr.ml: Array Bitgen Floorplan Place Pld_fabric Pld_netlist Printf Route Sta Unix
