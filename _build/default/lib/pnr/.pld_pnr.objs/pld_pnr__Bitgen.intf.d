lib/pnr/bitgen.mli: Floorplan Pld_fabric Pld_netlist Route
