lib/pnr/sta.ml: Array Float List Pld_netlist Queue
