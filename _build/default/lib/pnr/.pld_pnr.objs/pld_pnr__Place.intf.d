lib/pnr/place.mli: Device Floorplan Pld_fabric Pld_netlist
