lib/pnr/bitgen.ml: Array Bytes Char Floorplan Hashtbl List Pld_fabric Pld_netlist Pld_util Route Unix
