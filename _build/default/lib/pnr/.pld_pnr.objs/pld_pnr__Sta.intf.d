lib/pnr/sta.mli: Pld_netlist
