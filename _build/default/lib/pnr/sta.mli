(** Static timing analysis over the placed-and-routed netlist.

    Sequential cells (registers, memories, ports, control) are timing
    endpoints; combinational cells (arith/mul/div/logic) chain. The
    critical path is the longest cell+net delay between endpoints. *)

module N := Pld_netlist.Netlist

type result = {
  critical_path_ns : float;
  fmax_mhz : float;  (** min(clock target, 1000 / critical path) *)
  critical_cells : string list;  (** cell names on the worst path *)
}

val is_sequential : N.kind -> bool

val analyze : ?clock_target_mhz:float -> N.t -> net_delay_ns:float array -> result
(** [net_delay_ns] is indexed by net id (from routing, or estimates). *)
