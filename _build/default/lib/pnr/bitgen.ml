open Pld_fabric
module N = Pld_netlist.Netlist

type t = { target : Floorplan.rect; frames : bytes; crc : string; seconds : float }

let frames_per_tile = 96

let generate ~region ~placement ~routes (nl : N.t) =
  let t0 = Unix.gettimeofday () in
  let w = region.Floorplan.x1 - region.Floorplan.x0 + 1 in
  let h = region.Floorplan.y1 - region.Floorplan.y0 + 1 in
  let size = w * h * frames_per_tile in
  let frames = Bytes.make size '\000' in
  (* Stamp each tile's frame block with a deterministic function of the
     cells placed there, so two different placements yield different
     bitstreams and identical designs yield identical ones. *)
  Array.iteri
    (fun cid (x, y) ->
      let tile = ((y - region.Floorplan.y0) * w) + (x - region.Floorplan.x0) in
      let base = tile * frames_per_tile in
      let cell = nl.N.cells.(cid) in
      let h = Hashtbl.hash (cell.N.cname, cell.N.kind, cid) in
      for k = 0 to 7 do
        let off = base + (h + k) mod frames_per_tile in
        Bytes.set frames off (Char.chr ((Char.code (Bytes.get frames off) + h + k) land 0xFF))
      done)
    placement;
  List.iteri
    (fun i (r : Route.route) ->
      List.iter
        (fun ei ->
          let off = (i + ei) mod size in
          Bytes.set frames off (Char.chr ((Char.code (Bytes.get frames off) + 1) land 0xFF)))
        r.Route.edges)
    routes;
  let crc = Pld_util.Digest_lite.of_string (Bytes.to_string frames) in
  { target = region; frames; crc; seconds = Unix.gettimeofday () -. t0 }

let size_bytes t = Bytes.length t.frames
