(** Simulated-annealing placer (VPR-style).

    Cells are placed at tiles of the target region; tile capacities are
    enforced through an overfill penalty whose weight ramps as the
    temperature drops, so final placements are (near-)legal. Runtime
    grows super-linearly with cell count — the mechanism behind the
    paper's monolithic-vs-page compile-time gap. *)

open Pld_fabric
module N := Pld_netlist.Netlist

type result = {
  positions : (int * int) array;  (** cell id → tile (x, y) *)
  wirelength : int;  (** total half-perimeter wirelength *)
  overfill : float;  (** residual capacity violation (0 = legal) *)
  moves_evaluated : int;
  seconds : float;
}

val fits_region : Device.t -> Floorplan.rect -> N.t -> bool
(** Aggregate capacity check: does the netlist fit the region at all? *)

val run :
  ?seed:int ->
  ?effort:float ->
  ?pins:(string * (int * int)) list ->
  device:Device.t ->
  region:Floorplan.rect ->
  N.t ->
  result
(** [pins] fixes named cells (stream ports) at given tiles — the page
    leaf-interface location, or the shell/DMA edge for monolithic
    compiles. [effort] scales moves per temperature (default 1.0).
    Raises [Invalid_argument] if the netlist exceeds region capacity. *)
