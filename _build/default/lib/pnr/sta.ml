module N = Pld_netlist.Netlist

type result = { critical_path_ns : float; fmax_mhz : float; critical_cells : string list }

(* The scheduled datapath is fully registered at the 300 MHz target
   (the HLS scheduler breaks chains every few levels and every macro
   carries an output register), so every cell is a pipeline stage and
   the critical path is one macro plus its incoming route. *)
let is_sequential = function
  | N.Reg | N.Mem | N.Control | N.Stream_in _ | N.Stream_out _ | N.Mul | N.Div | N.Arith | N.Logic
    -> true

(* Sequential cells are split into a launch vertex (their cell id, only
   out-edges) and a capture vertex (ncells + id, only in-edges), which
   makes the timing graph a DAG even when registers sit in feedback
   loops. Combinational cells keep one vertex; the synthesis
   construction guarantees the combinational subgraph is acyclic. *)
let analyze ?(clock_target_mhz = 300.0) (nl : N.t) ~net_delay_ns =
  let ncells = Array.length nl.N.cells in
  let nverts = 2 * ncells in
  let seq c = is_sequential nl.N.cells.(c).N.kind in
  let sink_vertex c = if seq c then ncells + c else c in
  let succs = Array.make nverts [] in
  let indeg = Array.make nverts 0 in
  Array.iter
    (fun (n : N.net) ->
      let src = n.N.driver in
      List.iter
        (fun s ->
          let sv = sink_vertex s in
          succs.(src) <- (sv, net_delay_ns.(n.N.nid)) :: succs.(src);
          indeg.(sv) <- indeg.(sv) + 1)
        n.N.sinks)
    nl.N.nets;
  let arrival = Array.make nverts 0.0 in
  let pred = Array.make nverts (-1) in
  let queue = Queue.create () in
  for v = 0 to nverts - 1 do
    if indeg.(v) = 0 then Queue.push v queue
  done;
  let worst = ref 0.0 and worst_vertex = ref (-1) in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    if v < ncells then begin
      let cell = nl.N.cells.(v) in
      (* Launch vertices restart the path at clk->q; combinational
         vertices add their logic delay to the worst input arrival. *)
      let out = (if seq v then 0.0 else arrival.(v)) +. cell.N.delay_ns in
      List.iter
        (fun (sv, wire) ->
          let at_sink = out +. wire in
          if at_sink > arrival.(sv) then begin
            arrival.(sv) <- at_sink;
            pred.(sv) <- v
          end;
          if at_sink > !worst then begin
            worst := at_sink;
            worst_vertex := sv
          end;
          indeg.(sv) <- indeg.(sv) - 1;
          if indeg.(sv) = 0 then Queue.push sv queue)
        succs.(v)
    end
  done;
  let critical_path_ns = Float.max 0.5 !worst in
  let cell_of_vertex v = if v >= ncells then v - ncells else v in
  let rec chain v acc =
    if v < 0 then acc
    else begin
      let name = nl.N.cells.(cell_of_vertex v).N.cname in
      let acc = match acc with n :: _ when n = name -> acc | _ -> name :: acc in
      chain pred.(v) acc
    end
  in
  let critical_cells = if !worst_vertex >= 0 then chain !worst_vertex [] else [] in
  let fmax_mhz = Float.min clock_target_mhz (1000.0 /. critical_path_ns) in
  { critical_path_ns; fmax_mhz; critical_cells }
