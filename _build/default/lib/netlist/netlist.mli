(** Post-synthesis netlists: the interchange between HLS, place &
    route, and the bitstream generator.

    Cells are placement macros (a whole w-bit adder, a register bank, a
    BRAM) carrying a resource vector; nets are driver→sinks hyperedges.
    Functional behaviour lives in the IR interpreter — the netlist
    carries structure, area and timing. *)

type res = { luts : int; ffs : int; brams : int; dsps : int }

val res_zero : res
val res_add : res -> res -> res
val res_luts : int -> res
val res_le : res -> res -> bool
(** Component-wise [<=]: does a demand fit a capacity? *)

val pp_res : Format.formatter -> res -> unit

type kind =
  | Arith  (** adder / subtractor / comparator *)
  | Mul  (** DSP multiplier *)
  | Div  (** long divider macro *)
  | Logic  (** bitwise / mux logic *)
  | Reg  (** pipeline register bank *)
  | Mem  (** BRAM array *)
  | Control  (** FSM / loop counters *)
  | Stream_in of string  (** leaf-interface input port *)
  | Stream_out of string

type cell = { cid : int; cname : string; kind : kind; res : res; delay_ns : float }
type net = { nid : int; nname : string; driver : int; sinks : int list }
type t = { nl_name : string; cells : cell array; nets : net array }

val kind_name : kind -> string

(** Imperative builder. *)
module Builder : sig
  type netlist := t
  type t

  val create : string -> t
  val add_cell : t -> name:string -> kind:kind -> res:res -> delay_ns:float -> int
  val add_net : t -> name:string -> driver:int -> sinks:int list -> int
  val finish : t -> netlist
  (** Validates cell references; raises [Invalid_argument] on dangling
      ids or self-loop single-cell nets. *)
end

val total_res : t -> res
val cell_count : t -> int
val net_count : t -> int

val ports : t -> (string * [ `In | `Out ]) list
(** Stream ports in cell order. *)

val merge : name:string -> (string * t) list -> t
(** Combine instance netlists into one flat netlist with instance-
    prefixed names — the -O3 monolithic elaboration. Nets are kept
    per-instance; cross-instance links are added by the caller. *)

val add_fifo_links : t -> (string * string * string * int) list -> t
(** [add_fifo_links nl links] with [(from_inst_port, to_inst_port,
    fifo_name, depth_words)] inserts a FIFO cell (BRAM-backed above 64
    words) between a [Stream_out] and a [Stream_in] cell, connecting
    them with nets — the -O3 kernel generator of Fig. 7. Port cell
    names must match exactly. *)

val stats_line : t -> string
