lib/netlist/netlist.ml: Array Format Hashtbl List Printf
