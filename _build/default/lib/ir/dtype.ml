type t =
  | Bool
  | UInt of int
  | SInt of int
  | UFixed of { width : int; int_bits : int }
  | SFixed of { width : int; int_bits : int }

let word = UInt 32

let width = function
  | Bool -> 1
  | UInt w | SInt w -> w
  | UFixed { width; _ } | SFixed { width; _ } -> width

let is_integer = function Bool | UInt _ | SInt _ -> true | UFixed _ | SFixed _ -> false
let is_signed = function Bool | UInt _ | UFixed _ -> false | SInt _ | SFixed _ -> true
let equal (a : t) (b : t) = a = b

let to_string = function
  | Bool -> "bool"
  | UInt w -> Printf.sprintf "ap_uint<%d>" w
  | SInt w -> Printf.sprintf "ap_int<%d>" w
  | UFixed { width; int_bits } -> Printf.sprintf "ap_ufixed<%d,%d>" width int_bits
  | SFixed { width; int_bits } -> Printf.sprintf "ap_fixed<%d,%d>" width int_bits

let pp fmt t = Format.pp_print_string fmt (to_string t)
