(** Static type inference for expressions, mirroring {!Value}'s dynamic
    growth rules exactly.

    The RISC-V code generator compiles arithmetic through the firmware
    ap-runtime and must know, at compile time, the precise result type
    of every intermediate — the property test in the suite checks this
    module against the interpreter on random expressions. *)

type t = { signed : bool; width : int; int_bits : int; is_bool : bool }

val of_dtype : Dtype.t -> t
val to_dtype : t -> Dtype.t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
val neg : t -> t
val bitwise : t -> t -> t
val shift : t -> t
val compare_result : t
val lognot_result : t -> t

type env = string -> Dtype.t
(** Variable (or array-element) dtype lookup; loop variables are
    [SInt 32]. *)

val infer : env -> Expr.t -> t
(** Raises [Invalid_argument] on unknown variables. *)
