type t = { signed : bool; width : int; int_bits : int; is_bool : bool }

let of_dtype = function
  | Dtype.Bool -> { signed = false; width = 1; int_bits = 1; is_bool = true }
  | Dtype.UInt w -> { signed = false; width = w; int_bits = w; is_bool = false }
  | Dtype.SInt w -> { signed = true; width = w; int_bits = w; is_bool = false }
  | Dtype.UFixed { width; int_bits } -> { signed = false; width; int_bits; is_bool = false }
  | Dtype.SFixed { width; int_bits } -> { signed = true; width; int_bits; is_bool = false }

let to_dtype t =
  if t.is_bool then Dtype.Bool
  else if t.width = t.int_bits then if t.signed then Dtype.SInt t.width else Dtype.UInt t.width
  else if t.signed then Dtype.SFixed { width = t.width; int_bits = t.int_bits }
  else Dtype.UFixed { width = t.width; int_bits = t.int_bits }

let frac t = t.width - t.int_bits

(* Mirrors Ap_fixed.align. *)
let align_params a b =
  let s = a.signed || b.signed in
  let f = max (frac a) (frac b) in
  let need v = (if s && not v.signed then 1 else 0) + v.int_bits in
  let i = max (need a) (need b) in
  (s, i, f)

let add a b =
  let s, i, f = align_params a b in
  { signed = s; width = i + f + 1; int_bits = i + 1; is_bool = false }

let sub a b =
  let _, i, f = align_params a b in
  { signed = true; width = i + f + 1; int_bits = i + 1; is_bool = false }

let mul a b =
  {
    signed = a.signed || b.signed;
    width = a.width + b.width;
    int_bits = a.int_bits + b.int_bits;
    is_bool = false;
  }

(* Mirrors Ap_int.promote: the common width of integer operands. *)
let promote_width a b =
  let s = a.signed || b.signed in
  let extra v = if s && not v.signed then 1 else 0 in
  (s, max (a.width + extra a) (b.width + extra b))

let is_integer t = t.width = t.int_bits

let div a b =
  if is_integer a && is_integer b then begin
    let s, w = promote_width a b in
    { signed = s; width = w; int_bits = w; is_bool = false }
  end
  else begin
    (* Mirrors Ap_fixed.div. *)
    let s = a.signed || b.signed in
    let fa = frac a and fb = frac b in
    let shift = max 0 (b.width + fb) in
    let fr = fa - fb + shift in
    let ir = a.int_bits + fb + 1 in
    let wr = max 1 (ir + fr) in
    { signed = s; width = wr; int_bits = ir; is_bool = false }
  end

let rem a b =
  let s, w = promote_width a b in
  { signed = s; width = w; int_bits = w; is_bool = false }

let bitwise a b =
  let s, w = promote_width a b in
  { signed = s; width = w; int_bits = w; is_bool = false }

let shift a = a

let compare_result = { signed = false; width = 1; int_bits = 1; is_bool = true }

let lognot_result a = { a with is_bool = false }

let neg a = { signed = true; width = a.width + 1; int_bits = a.int_bits + 1; is_bool = false }

type env = string -> Dtype.t

let rec infer env (e : Expr.t) =
  match e with
  | Const v -> of_dtype (Value.dtype v)
  | Var v -> of_dtype (env v)
  | Idx (a, i) ->
      ignore (infer env i);
      of_dtype (env a)
  | Bin (op, x, y) -> begin
      let tx = infer env x and ty = infer env y in
      match op with
      | Add -> add tx ty
      | Sub -> sub tx ty
      | Mul -> mul tx ty
      | Div -> div tx ty
      | Rem -> rem tx ty
      | And | Or | Xor -> bitwise tx ty
      | Shl | Shr -> shift tx
      | Eq | Ne | Lt | Le | Gt | Ge | LAnd | LOr -> compare_result
    end
  | Un (Neg, x) -> neg (infer env x)
  | Un (BNot, x) -> lognot_result (infer env x)
  | Un (LNot, x) ->
      ignore (infer env x);
      compare_result
  | Cast (dt, x) ->
      ignore (infer env x);
      of_dtype dt
  | Bitcast (dt, x) ->
      ignore (infer env x);
      of_dtype dt
  | Select (c, x, y) ->
      ignore (infer env c);
      let tx = infer env x and ty = infer env y in
      if tx <> ty then
        invalid_arg
          (Printf.sprintf "Aptype.infer: select arms have different types (%s vs %s)"
             (Dtype.to_string (to_dtype tx))
             (Dtype.to_string (to_dtype ty)));
      tx
