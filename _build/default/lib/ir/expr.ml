type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr

type unop = Neg | BNot | LNot

type t =
  | Const of Value.t
  | Var of string
  | Idx of string * t
  | Bin of binop * t * t
  | Un of unop * t
  | Cast of Dtype.t * t
  | Bitcast of Dtype.t * t
  | Select of t * t * t

let int dt v = Const (Value.of_int dt v)
let float_ dt v = Const (Value.of_float dt v)
let bool_ b = Const (Value.of_bool b)
let var s = Var s

let ( + ) a b = Bin (Add, a, b)
let ( - ) a b = Bin (Sub, a, b)
let ( * ) a b = Bin (Mul, a, b)
let ( / ) a b = Bin (Div, a, b)
let ( % ) a b = Bin (Rem, a, b)
let ( < ) a b = Bin (Lt, a, b)
let ( <= ) a b = Bin (Le, a, b)
let ( > ) a b = Bin (Gt, a, b)
let ( >= ) a b = Bin (Ge, a, b)
let ( = ) a b = Bin (Eq, a, b)
let ( <> ) a b = Bin (Ne, a, b)
let ( && ) a b = Bin (LAnd, a, b)
let ( || ) a b = Bin (LOr, a, b)
let ( lsl ) a b = Bin (Shl, a, b)
let ( lsr ) a b = Bin (Shr, a, b)
let ( land ) a b = Bin (And, a, b)
let ( lor ) a b = Bin (Or, a, b)
let ( lxor ) a b = Bin (Xor, a, b)

let vars t =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let record name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out := name :: !out
    end
  in
  let rec go = function
    | Const _ -> ()
    | Var v -> record v
    | Idx (a, i) ->
        record a;
        go i
    | Bin (_, x, y) ->
        go x;
        go y
    | Un (_, x) | Cast (_, x) | Bitcast (_, x) -> go x
    | Select (c, x, y) ->
        go c;
        go x;
        go y
  in
  go t;
  List.rev !out

let rec size = function
  | Const _ | Var _ -> 1
  | Idx (_, i) -> Stdlib.( + ) 1 (size i)
  | Bin (_, x, y) -> Stdlib.( + ) 1 (Stdlib.( + ) (size x) (size y))
  | Un (_, x) | Cast (_, x) | Bitcast (_, x) -> Stdlib.( + ) 1 (size x)
  | Select (c, x, y) -> Stdlib.( + ) 1 (Stdlib.( + ) (size c) (Stdlib.( + ) (size x) (size y)))

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Rem -> "%"
  | And -> "&" | Or -> "|" | Xor -> "^"
  | Shl -> "<<" | Shr -> ">>"
  | Eq -> "==" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="
  | LAnd -> "&&" | LOr -> "||"

let unop_name = function Neg -> "-" | BNot -> "~" | LNot -> "!"

let rec pp fmt = function
  | Const v -> Value.pp fmt v
  | Var v -> Format.pp_print_string fmt v
  | Idx (a, i) -> Format.fprintf fmt "%s[%a]" a pp i
  | Bin (op, x, y) -> Format.fprintf fmt "(%a %s %a)" pp x (binop_name op) pp y
  | Un (op, x) -> Format.fprintf fmt "%s%a" (unop_name op) pp x
  | Cast (dt, x) -> Format.fprintf fmt "(%a)%a" Dtype.pp dt pp x
  | Bitcast (dt, x) -> Format.fprintf fmt "bitcast<%a>(%a)" Dtype.pp dt pp x
  | Select (c, x, y) -> Format.fprintf fmt "(%a ? %a : %a)" pp c pp x pp y
