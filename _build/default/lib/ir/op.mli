(** Dataflow operators: the unit of separate compilation (paper §3.4).

    An operator is a C-like function whose only communication is via
    latency-insensitive stream ports. Its body obeys the operator
    discipline: static loop bounds, no allocation, no recursion, no
    shared memory. *)

type lvalue = LVar of string | LIdx of string * Expr.t

type stmt =
  | Assign of lvalue * Expr.t
  | Read of lvalue * string  (** [lv = port.read()] *)
  | Write of string * Expr.t  (** [port.write(e)] *)
  | For of { var : string; lo : int; hi : int; body : stmt list; pipeline : bool }
      (** [for (var = lo; var < hi; var++)]; [pipeline] mirrors
          [#pragma HLS pipeline]. *)
  | If of Expr.t * stmt list * stmt list
  | Printf of string * Expr.t list
      (** Processor-only debug output, elided on HW targets — the
          paper's [#ifdef RISCV printf] idiom. *)

type port = { port_name : string; elem : Dtype.t }

type decl =
  | Scalar of { name : string; dtype : Dtype.t; init : Value.t option }
  | Array of { name : string; dtype : Dtype.t; length : int; init : Value.t array option }

type t = {
  name : string;
  inputs : port list;
  outputs : port list;
  locals : decl list;
  body : stmt list;
}

val make :
  name:string -> inputs:port list -> outputs:port list -> ?locals:decl list -> stmt list -> t

val port : string -> Dtype.t -> port
val word_port : string -> port
(** A 32-bit stream port, the linking-network payload width. *)

val scalar : ?init:Value.t -> string -> Dtype.t -> decl
val array : ?init:Value.t array -> string -> Dtype.t -> int -> decl

val find_local : t -> string -> decl option
val find_input : t -> string -> port option
val find_output : t -> string -> port option

val stmt_count : t -> int
(** Static statement count (loop bodies counted once). *)

val work_estimate : t -> int
(** Dynamic expression-node count with loop trip counts expanded —
    the HLS and RISC-V cost models both start from this. *)

val source : t -> string
(** C-like rendering of the whole operator; hashing this is how the
    incremental build cache detects changes. *)

val pp : Format.formatter -> t -> unit
