(** Static checks enforcing the operator discipline (§3.4) and graph
    well-formedness before any flow runs. *)

type error = { where : string; message : string }

val check_operator : Op.t -> error list
(** Scoping, port direction, array/scalar usage, static bounds, loop
    variable immutability, integer-only bitwise operations. *)

val check_graph : Graph.t -> error list
(** Unique names, bindings resolve, dtype agreement across links, every
    channel has exactly one producer and one consumer, every port is
    bound, plus {!check_operator} on each distinct operator. *)

val error_to_string : error -> string

exception Invalid of error list

val check_graph_exn : Graph.t -> unit
(** Raises {!Invalid} if {!check_graph} reports anything. *)
