(** Expressions of the operator language. *)

type binop =
  | Add | Sub | Mul | Div | Rem
  | And | Or | Xor
  | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge
  | LAnd | LOr

type unop = Neg | BNot | LNot

type t =
  | Const of Value.t
  | Var of string
  | Idx of string * t  (** array element read *)
  | Bin of binop * t * t
  | Un of unop * t
  | Cast of Dtype.t * t  (** value-preserving conversion *)
  | Bitcast of Dtype.t * t  (** raw reinterpretation, as in [x(31,0) = in.read()] *)
  | Select of t * t * t  (** [cond ? a : b] *)

val int : Dtype.t -> int -> t
val float_ : Dtype.t -> float -> t
val bool_ : bool -> t
val var : string -> t
val ( + ) : t -> t -> t
val ( - ) : t -> t -> t
val ( * ) : t -> t -> t
val ( / ) : t -> t -> t
val ( % ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( = ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
val ( lsl ) : t -> t -> t
val ( lsr ) : t -> t -> t
val ( land ) : t -> t -> t
val ( lor ) : t -> t -> t
val ( lxor ) : t -> t -> t

val vars : t -> string list
(** Free variable and array names, deduplicated, in first-use order. *)

val size : t -> int
(** Node count — used by the HLS area heuristics. *)

val pp : Format.formatter -> t -> unit
(** C-like rendering. *)

val binop_name : binop -> string
