lib/ir/expr.ml: Dtype Format Hashtbl List Stdlib Value
