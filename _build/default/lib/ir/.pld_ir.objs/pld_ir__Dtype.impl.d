lib/ir/dtype.ml: Format Printf
