lib/ir/graph.ml: Buffer Dtype Format List Op Option Pld_util Printf String
