lib/ir/value.mli: Bits Dtype Format Pld_apfixed
