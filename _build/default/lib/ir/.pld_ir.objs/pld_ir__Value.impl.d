lib/ir/value.ml: Ap_fixed Ap_int Bits Dtype Format Pld_apfixed Printf
