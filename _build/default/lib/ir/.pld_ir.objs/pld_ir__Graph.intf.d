lib/ir/graph.mli: Dtype Format Op
