lib/ir/op.mli: Dtype Expr Format Value
