lib/ir/expr.mli: Dtype Format Value
