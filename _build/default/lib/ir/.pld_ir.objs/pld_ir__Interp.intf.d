lib/ir/interp.mli: Op Queue Value
