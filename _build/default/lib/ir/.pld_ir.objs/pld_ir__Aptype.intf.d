lib/ir/aptype.mli: Dtype Expr
