lib/ir/aptype.ml: Dtype Expr Printf Value
