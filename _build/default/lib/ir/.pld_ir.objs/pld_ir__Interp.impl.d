lib/ir/interp.ml: Array Dtype Expr Hashtbl List Op Printf Queue Value
