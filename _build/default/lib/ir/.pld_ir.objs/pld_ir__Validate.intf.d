lib/ir/validate.mli: Graph Op
