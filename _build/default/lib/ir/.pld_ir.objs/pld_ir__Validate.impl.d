lib/ir/validate.ml: Array Dtype Expr Graph Hashtbl List Op Option Printf Value
