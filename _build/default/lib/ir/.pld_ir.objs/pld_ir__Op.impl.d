lib/ir/op.ml: Dtype Expr Format List Printf String Value
