(** Datatypes of the operator language: the HLS-compatible subset the
    paper's operator discipline (§3.4) allows — arbitrary-precision
    integers and fixed-point, plus booleans from comparisons. *)

type t =
  | Bool
  | UInt of int  (** ap_uint<w> *)
  | SInt of int  (** ap_int<w> *)
  | UFixed of { width : int; int_bits : int }  (** ap_ufixed<w,i> *)
  | SFixed of { width : int; int_bits : int }  (** ap_fixed<w,i> *)

val word : t
(** The 32-bit stream payload type used by the linking network. *)

val width : t -> int
(** Physical bit width ([Bool] is 1). *)

val is_integer : t -> bool
(** True for [Bool], [UInt], [SInt]. *)

val is_signed : t -> bool

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** C-style rendering, e.g. ["ap_fixed<32,17>"]. *)
