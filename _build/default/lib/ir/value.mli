(** Runtime values of the operator language.

    A value always carries its {!Dtype.t}; arithmetic between values
    follows the HLS growth rules (via {!Pld_apfixed}), and assignment
    narrows with {!cast}. *)

open Pld_apfixed

type t

val dtype : t -> Dtype.t

val of_bool : bool -> t
val of_int : Dtype.t -> int -> t
val of_float : Dtype.t -> float -> t
val of_bits : Dtype.t -> Bits.t -> t
(** Reinterpret a raw pattern under [dtype] (resizing as needed). *)

val to_bool : t -> bool
(** Nonzero test. *)

val to_int : t -> int
(** Truncating conversion (floor for fixed-point). *)

val to_float : t -> float

val to_bits : t -> Bits.t
(** The raw pattern at exactly [Dtype.width (dtype v)] bits. *)

val cast : Dtype.t -> t -> t
(** Value-preserving conversion with HLS truncate/wrap semantics. *)

val bitcast : Dtype.t -> t -> t
(** Raw reinterpretation: keep the bit pattern (resized unsigned). *)

val zero : Dtype.t -> t

(* Arithmetic: results carry a full-precision dtype; the caller narrows
   on assignment. *)
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
(** Integer-only; raises [Invalid_argument] on fixed operands. *)

val neg : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
(** Bitwise ops are integer-only. *)

val shift_left : t -> int -> t
val shift_right : t -> int -> t

val compare : t -> t -> int
val equal_value : t -> t -> bool
(** Numeric equality (e.g. [UInt 8] 3 = [SInt 16] 3). *)

val equal : t -> t -> bool
(** Structural: same dtype and same bits. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
