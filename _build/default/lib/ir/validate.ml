type error = { where : string; message : string }

exception Invalid of error list

let error_to_string e = Printf.sprintf "%s: %s" e.where e.message

type kind = Kscalar | Karray of int | Kloop

let check_operator (op : Op.t) =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := { where = op.name; message = m } :: !errors) fmt in
  let scope = Hashtbl.create 16 in
  List.iter
    (fun d ->
      match d with
      | Op.Scalar { name; init; dtype; _ } ->
          if Hashtbl.mem scope name then err "duplicate local %s" name;
          Hashtbl.replace scope name Kscalar;
          Option.iter
            (fun v ->
              if not (Dtype.equal (Value.dtype v) dtype) then
                err "initializer type of %s is %s, declared %s" name
                  (Dtype.to_string (Value.dtype v))
                  (Dtype.to_string dtype))
            init
      | Op.Array { name; length; init; _ } ->
          if Hashtbl.mem scope name then err "duplicate local %s" name;
          if length <= 0 then err "array %s has non-positive length %d" name length;
          Hashtbl.replace scope name (Karray length);
          Option.iter
            (fun vs ->
              if Array.length vs <> length then
                err "array %s initializer has %d elements, declared %d" name (Array.length vs) length)
            init)
    op.locals;
  let input_names = List.map (fun p -> p.Op.port_name) op.inputs in
  let output_names = List.map (fun p -> p.Op.port_name) op.outputs in
  List.iter
    (fun p ->
      if Hashtbl.mem scope p then err "port %s shadows a local" p;
      if List.mem p output_names && List.mem p input_names then err "port %s is both input and output" p)
    (input_names @ output_names);
  let rec check_expr e =
    match e with
    | Expr.Const _ -> ()
    | Expr.Var v -> begin
        match Hashtbl.find_opt scope v with
        | Some Kscalar | Some Kloop -> ()
        | Some (Karray _) -> err "array %s used without index" v
        | None -> err "undeclared variable %s" v
      end
    | Expr.Idx (a, i) -> begin
        check_expr i;
        match Hashtbl.find_opt scope a with
        | Some (Karray len) -> begin
            match i with
            | Expr.Const v ->
                let idx = Value.to_int v in
                if idx < 0 || idx >= len then err "constant index %d out of bounds for %s[%d]" idx a len
            | _ -> ()
          end
        | Some _ -> err "%s indexed but is not an array" a
        | None -> err "undeclared array %s" a
      end
    | Expr.Bin ((Expr.And | Expr.Or | Expr.Xor | Expr.Rem), x, y) ->
        check_expr x;
        check_expr y
    | Expr.Bin (_, x, y) ->
        check_expr x;
        check_expr y
    | Expr.Un (_, x) | Expr.Cast (_, x) | Expr.Bitcast (_, x) -> check_expr x
    | Expr.Select (c, x, y) ->
        check_expr c;
        check_expr x;
        check_expr y
  in
  let check_lvalue lv =
    match lv with
    | Op.LVar v -> begin
        match Hashtbl.find_opt scope v with
        | Some Kscalar -> ()
        | Some Kloop -> err "loop variable %s assigned" v
        | Some (Karray _) -> err "array %s assigned without index" v
        | None -> err "assignment to undeclared %s" v
      end
    | Op.LIdx (a, i) -> begin
        check_expr i;
        match Hashtbl.find_opt scope a with
        | Some (Karray len) -> begin
            match i with
            | Expr.Const v ->
                let idx = Value.to_int v in
                if idx < 0 || idx >= len then err "constant index %d out of bounds for %s[%d]" idx a len
            | _ -> ()
          end
        | Some _ -> err "%s indexed-assigned but is not an array" a
        | None -> err "assignment to undeclared array %s" a
      end
  in
  let rec check_stmt s =
    match s with
    | Op.Assign (lv, e) ->
        check_lvalue lv;
        check_expr e
    | Op.Read (lv, port) ->
        check_lvalue lv;
        if not (List.mem port input_names) then err "read from %s which is not an input port" port
    | Op.Write (port, e) ->
        check_expr e;
        if not (List.mem port output_names) then err "write to %s which is not an output port" port
    | Op.Printf (_, args) -> List.iter check_expr args
    | Op.For { var; lo; hi; body; _ } ->
        if hi < lo then err "loop %s has empty/negative range [%d,%d)" var lo hi;
        let shadowed = Hashtbl.find_opt scope var in
        Hashtbl.replace scope var Kloop;
        List.iter check_stmt body;
        (match shadowed with Some k -> Hashtbl.replace scope var k | None -> Hashtbl.remove scope var)
    | Op.If (c, a, b) ->
        check_expr c;
        List.iter check_stmt a;
        List.iter check_stmt b
  in
  List.iter check_stmt op.body;
  List.rev !errors

let check_graph (g : Graph.t) =
  let errors = ref [] in
  let err where fmt = Printf.ksprintf (fun m -> errors := { where; message = m } :: !errors) fmt in
  (* Unique names. *)
  let dup l = List.filter (fun x -> List.length (List.filter (( = ) x) l) > 1) l in
  List.iter (fun c -> err g.graph_name "duplicate channel %s" c) (List.sort_uniq compare (dup (List.map (fun c -> c.Graph.chan_name) g.channels)));
  List.iter (fun i -> err g.graph_name "duplicate instance %s" i) (List.sort_uniq compare (dup (List.map (fun i -> i.Graph.inst_name) g.instances)));
  (* Graph input/output channels must exist. *)
  List.iter
    (fun cn -> if Graph.find_channel g cn = None then err g.graph_name "external channel %s not declared" cn)
    (g.inputs @ g.outputs);
  (* Count producers/consumers per channel. *)
  let producers = Hashtbl.create 16 and consumers = Hashtbl.create 16 in
  let bump tbl c = Hashtbl.replace tbl c (1 + Option.value ~default:0 (Hashtbl.find_opt tbl c)) in
  List.iter (fun c -> bump producers c) g.inputs;
  List.iter (fun c -> bump consumers c) g.outputs;
  List.iter
    (fun (i : Graph.instance) ->
      let op = i.op in
      (* Every port bound exactly once. *)
      List.iter
        (fun (p : Op.port) ->
          match List.filter (fun (pn, _) -> pn = p.port_name) i.bindings with
          | [] -> err i.inst_name "port %s not bound" p.port_name
          | [ (_, chan) ] -> begin
              match Graph.find_channel g chan with
              | None -> err i.inst_name "port %s bound to unknown channel %s" p.port_name chan
              | Some c ->
                  if not (Dtype.equal c.elem p.elem) then
                    err i.inst_name "port %s has type %s but channel %s carries %s" p.port_name
                      (Dtype.to_string p.elem) chan (Dtype.to_string c.elem);
                  if List.exists (fun q -> q.Op.port_name = p.port_name) op.inputs then bump consumers chan
                  else bump producers chan
            end
          | _ -> err i.inst_name "port %s bound more than once" p.port_name)
        (op.inputs @ op.outputs);
      List.iter
        (fun (pn, _) ->
          if
            not
              (List.exists (fun (p : Op.port) -> p.port_name = pn) (op.inputs @ op.outputs))
          then err i.inst_name "binding names unknown port %s" pn)
        i.bindings;
      List.iter (fun e -> errors := e :: !errors) (check_operator op))
    g.instances;
  List.iter
    (fun (c : Graph.channel) ->
      let p = Option.value ~default:0 (Hashtbl.find_opt producers c.chan_name) in
      let q = Option.value ~default:0 (Hashtbl.find_opt consumers c.chan_name) in
      if p <> 1 then err g.graph_name "channel %s has %d producers (want 1)" c.chan_name p;
      if q <> 1 then err g.graph_name "channel %s has %d consumers (want 1)" c.chan_name q)
    g.channels;
  List.rev !errors

let check_graph_exn g = match check_graph g with [] -> () | errs -> raise (Invalid errs)
