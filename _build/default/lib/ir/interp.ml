type io = {
  read : string -> Value.t;
  write : string -> Value.t -> unit;
  printf : string -> Value.t list -> unit;
}

type counters = {
  mutable ops : int;
  mutable reads : int;
  mutable writes : int;
  mutable loop_iterations : int;
  mutable multiplies : int;
  mutable divides : int;
}

let fresh_counters () =
  { ops = 0; reads = 0; writes = 0; loop_iterations = 0; multiplies = 0; divides = 0 }

type slot = Cell of Value.t ref | Arr of Value.t array

let run_operator ?(processor = false) ?counters (op : Op.t) io =
  let c = match counters with Some c -> c | None -> fresh_counters () in
  let env : (string, slot) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun d ->
      match d with
      | Op.Scalar { name; dtype; init } ->
          let v = match init with Some v -> v | None -> Value.zero dtype in
          Hashtbl.replace env name (Cell (ref v))
      | Op.Array { name; dtype; length; init } ->
          let a =
            match init with
            | Some vs -> Array.map (Value.cast dtype) vs
            | None -> Array.make length (Value.zero dtype)
          in
          Hashtbl.replace env name (Arr a))
    op.locals;
  let cell name =
    match Hashtbl.find_opt env name with
    | Some (Cell r) -> r
    | Some (Arr _) -> invalid_arg (op.name ^ ": " ^ name ^ " is an array")
    | None -> invalid_arg (op.name ^ ": undeclared " ^ name)
  in
  let arr name =
    match Hashtbl.find_opt env name with
    | Some (Arr a) -> a
    | Some (Cell _) -> invalid_arg (op.name ^ ": " ^ name ^ " is a scalar")
    | None -> invalid_arg (op.name ^ ": undeclared " ^ name)
  in
  let rec eval (e : Expr.t) : Value.t =
    c.ops <- c.ops + 1;
    match e with
    | Const v -> v
    | Var v -> !(cell v)
    | Idx (a, i) ->
        let arr = arr a in
        let idx = Value.to_int (eval i) in
        if idx < 0 || idx >= Array.length arr then
          invalid_arg (Printf.sprintf "%s: %s[%d] out of bounds (len %d)" op.name a idx (Array.length arr));
        arr.(idx)
    | Bin (bop, x, y) -> begin
        let vx = eval x in
        match bop with
        | LAnd -> Value.of_bool (Value.to_bool vx && Value.to_bool (eval y))
        | LOr -> Value.of_bool (Value.to_bool vx || Value.to_bool (eval y))
        | _ -> begin
            let vy = eval y in
            match bop with
            | Add -> Value.add vx vy
            | Sub -> Value.sub vx vy
            | Mul ->
                c.multiplies <- c.multiplies + 1;
                Value.mul vx vy
            | Div ->
                c.divides <- c.divides + 1;
                Value.div vx vy
            | Rem ->
                c.divides <- c.divides + 1;
                Value.rem vx vy
            | And -> Value.logand vx vy
            | Or -> Value.logor vx vy
            | Xor -> Value.logxor vx vy
            | Shl -> Value.shift_left vx (Value.to_int vy)
            | Shr -> Value.shift_right vx (Value.to_int vy)
            | Eq -> Value.of_bool (Value.equal_value vx vy)
            | Ne -> Value.of_bool (not (Value.equal_value vx vy))
            | Lt -> Value.of_bool (Value.compare vx vy < 0)
            | Le -> Value.of_bool (Value.compare vx vy <= 0)
            | Gt -> Value.of_bool (Value.compare vx vy > 0)
            | Ge -> Value.of_bool (Value.compare vx vy >= 0)
            | LAnd | LOr -> assert false
          end
      end
    | Un (Neg, x) -> Value.neg (eval x)
    | Un (BNot, x) -> Value.lognot (eval x)
    | Un (LNot, x) -> Value.of_bool (not (Value.to_bool (eval x)))
    | Cast (dt, x) -> Value.cast dt (eval x)
    | Bitcast (dt, x) -> Value.bitcast dt (eval x)
    | Select (cond, x, y) -> if Value.to_bool (eval cond) then eval x else eval y
  in
  let declared_dtype lv =
    let of_decl name =
      match Hashtbl.find_opt env name with
      | Some (Cell r) -> Value.dtype !r
      | Some (Arr a) -> if Array.length a > 0 then Value.dtype a.(0) else Dtype.word
      | None -> invalid_arg (op.name ^ ": undeclared " ^ name)
    in
    match lv with Op.LVar v -> of_decl v | Op.LIdx (a, _) -> of_decl a
  in
  let store lv v =
    match lv with
    | Op.LVar name -> (cell name) := v
    | Op.LIdx (name, i) ->
        let a = arr name in
        let idx = Value.to_int (eval i) in
        if idx < 0 || idx >= Array.length a then
          invalid_arg (Printf.sprintf "%s: %s[%d] store out of bounds" op.name name idx);
        a.(idx) <- v
  in
  let rec exec (s : Op.stmt) =
    match s with
    | Assign (lv, e) -> store lv (Value.cast (declared_dtype lv) (eval e))
    | Read (lv, port) ->
        c.reads <- c.reads + 1;
        store lv (Value.bitcast (declared_dtype lv) (io.read port))
    | Write (port, e) ->
        c.writes <- c.writes + 1;
        let elem =
          match Op.find_output op port with
          | Some p -> p.elem
          | None -> invalid_arg (op.name ^ ": write to unknown port " ^ port)
        in
        io.write port (Value.bitcast elem (eval e))
    | Printf (msg, args) -> if processor then io.printf msg (List.map eval args)
    | For { var; lo; hi; body; _ } ->
        let r = ref (Value.of_int (Dtype.SInt 32) lo) in
        let saved = Hashtbl.find_opt env var in
        Hashtbl.replace env var (Cell r);
        for i = lo to hi - 1 do
          c.loop_iterations <- c.loop_iterations + 1;
          r := Value.of_int (Dtype.SInt 32) i;
          List.iter exec body
        done;
        (match saved with Some s -> Hashtbl.replace env var s | None -> Hashtbl.remove env var)
    | If (cond, a, b) -> if Value.to_bool (eval cond) then List.iter exec a else List.iter exec b
  in
  List.iter exec op.body

let queue_io ~inputs ~outputs =
  let find tbl port =
    match List.assoc_opt port tbl with
    | Some q -> q
    | None -> failwith ("queue_io: unknown port " ^ port)
  in
  {
    read =
      (fun port ->
        let q = find inputs port in
        if Queue.is_empty q then failwith ("queue_io: read from empty stream " ^ port)
        else Queue.pop q);
    write = (fun port v -> Queue.push v (find outputs port));
    printf = (fun _ _ -> ());
  }
