type lvalue = LVar of string | LIdx of string * Expr.t

type stmt =
  | Assign of lvalue * Expr.t
  | Read of lvalue * string
  | Write of string * Expr.t
  | For of { var : string; lo : int; hi : int; body : stmt list; pipeline : bool }
  | If of Expr.t * stmt list * stmt list
  | Printf of string * Expr.t list

type port = { port_name : string; elem : Dtype.t }

type decl =
  | Scalar of { name : string; dtype : Dtype.t; init : Value.t option }
  | Array of { name : string; dtype : Dtype.t; length : int; init : Value.t array option }

type t = {
  name : string;
  inputs : port list;
  outputs : port list;
  locals : decl list;
  body : stmt list;
}

let make ~name ~inputs ~outputs ?(locals = []) body = { name; inputs; outputs; locals; body }

let port port_name elem = { port_name; elem }
let word_port name = port name Dtype.word
let scalar ?init name dtype = Scalar { name; dtype; init }
let array ?init name dtype length = Array { name; dtype; length; init }

let decl_name = function Scalar { name; _ } | Array { name; _ } -> name

let find_local t name = List.find_opt (fun d -> decl_name d = name) t.locals
let find_input t name = List.find_opt (fun p -> p.port_name = name) t.inputs
let find_output t name = List.find_opt (fun p -> p.port_name = name) t.outputs

let rec stmt_size s =
  match s with
  | Assign _ | Read _ | Write _ | Printf _ -> 1
  | For { body; _ } -> 1 + List.fold_left (fun acc s -> acc + stmt_size s) 0 body
  | If (_, a, b) ->
      1
      + List.fold_left (fun acc s -> acc + stmt_size s) 0 a
      + List.fold_left (fun acc s -> acc + stmt_size s) 0 b

let stmt_count t = List.fold_left (fun acc s -> acc + stmt_size s) 0 t.body

let rec stmt_work s =
  match s with
  | Assign (LVar _, e) -> Expr.size e
  | Assign (LIdx (_, i), e) -> Expr.size i + Expr.size e
  | Read _ -> 2
  | Write (_, e) -> 1 + Expr.size e
  | Printf _ -> 1
  | For { lo; hi; body; _ } ->
      let per = List.fold_left (fun acc s -> acc + stmt_work s) 0 body in
      max 0 (hi - lo) * per
  | If (c, a, b) ->
      (* Hardware evaluates both arms; cost both, plus the condition. *)
      Expr.size c
      + List.fold_left (fun acc s -> acc + stmt_work s) 0 a
      + List.fold_left (fun acc s -> acc + stmt_work s) 0 b

let work_estimate t = List.fold_left (fun acc s -> acc + stmt_work s) 0 t.body

let pp_lvalue fmt = function
  | LVar v -> Format.pp_print_string fmt v
  | LIdx (a, i) -> Format.fprintf fmt "%s[%a]" a Expr.pp i

let rec pp_stmt indent fmt s =
  let pad = String.make indent ' ' in
  match s with
  | Assign (lv, e) -> Format.fprintf fmt "%s%a = %a;" pad pp_lvalue lv Expr.pp e
  | Read (lv, port) -> Format.fprintf fmt "%s%a = %s.read();" pad pp_lvalue lv port
  | Write (port, e) -> Format.fprintf fmt "%s%s.write(%a);" pad port Expr.pp e
  | Printf (msg, args) ->
      Format.fprintf fmt "%sprintf(%S%s);" pad msg
        (String.concat "" (List.map (Format.asprintf ", %a" Expr.pp) args))
  | For { var; lo; hi; body; pipeline } ->
      Format.fprintf fmt "%sfor (int %s = %d; %s < %d; %s++) {%s@\n%a@\n%s}" pad var lo var hi var
        (if pipeline then " // #pragma HLS pipeline" else "")
        (pp_body (indent + 2)) body pad
  | If (c, a, []) ->
      Format.fprintf fmt "%sif (%a) {@\n%a@\n%s}" pad Expr.pp c (pp_body (indent + 2)) a pad
  | If (c, a, b) ->
      Format.fprintf fmt "%sif (%a) {@\n%a@\n%s} else {@\n%a@\n%s}" pad Expr.pp c
        (pp_body (indent + 2)) a pad (pp_body (indent + 2)) b pad

and pp_body indent fmt body =
  Format.pp_print_list
    ~pp_sep:(fun fmt () -> Format.pp_print_string fmt "\n")
    (pp_stmt indent) fmt body

let pp_decl fmt = function
  | Scalar { name; dtype; init } ->
      Format.fprintf fmt "  %a %s%s;" Dtype.pp dtype name
        (match init with None -> "" | Some v -> Printf.sprintf " = %s" (Value.to_string v))
  | Array { name; dtype; length; init } ->
      Format.fprintf fmt "  %a %s[%d];%s" Dtype.pp dtype name length
        (match init with None -> "" | Some _ -> " // initialized")

let pp fmt t =
  let pp_port fmt p = Format.fprintf fmt "hls::stream<%a>& %s" Dtype.pp p.elem p.port_name in
  Format.fprintf fmt "void %s(%a) {@\n" t.name
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ", ") pp_port)
    (t.inputs @ t.outputs);
  List.iter (fun d -> Format.fprintf fmt "%a@\n" pp_decl d) t.locals;
  Format.fprintf fmt "%a@\n}" (pp_body 2) t.body

let source t = Format.asprintf "%a" pp t
