open Pld_apfixed

type t = { dtype : Dtype.t; fx : Ap_fixed.t }

let dtype t = t.dtype

let fx_params = function
  | Dtype.Bool -> (false, 1, 1)
  | Dtype.UInt w -> (false, w, w)
  | Dtype.SInt w -> (true, w, w)
  | Dtype.UFixed { width; int_bits } -> (false, width, int_bits)
  | Dtype.SFixed { width; int_bits } -> (true, width, int_bits)

(* Recover the canonical dtype of a full-precision intermediate. *)
let dtype_of_fx fx =
  let w = Ap_fixed.width fx and i = Ap_fixed.int_bits fx and s = Ap_fixed.signed fx in
  if w = i then if s then Dtype.SInt w else Dtype.UInt w
  else if s then Dtype.SFixed { width = w; int_bits = i }
  else Dtype.UFixed { width = w; int_bits = i }

let normalize dtype fx =
  let signed, width, int_bits = fx_params dtype in
  { dtype; fx = Ap_fixed.convert ~signed ~width ~int_bits fx }

let of_fx fx = { dtype = dtype_of_fx fx; fx }

let of_bool b =
  { dtype = Dtype.Bool; fx = Ap_fixed.make ~signed:false ~int_bits:1 (Bits.of_int ~width:1 (if b then 1 else 0)) }

let of_int dtype v =
  let _, width, _ = fx_params dtype in
  let wide = max 64 (width + 1) in
  let as_fx = Ap_fixed.make ~signed:true ~int_bits:wide (Bits.of_int ~width:wide v) in
  normalize dtype as_fx

let of_float dtype x =
  let signed, width, int_bits = fx_params dtype in
  { dtype; fx = Ap_fixed.of_float ~signed ~width ~int_bits x }

let of_bits dtype bits =
  let signed, width, int_bits = fx_params dtype in
  { dtype; fx = Ap_fixed.make ~signed ~int_bits (Bits.resize ~signed:false ~width bits) }

let to_bits t = Ap_fixed.raw t.fx
let to_bool t = not (Ap_fixed.is_zero t.fx)
let to_int t = Ap_int.to_int (Ap_fixed.to_ap_int t.fx)
let to_float t = Ap_fixed.to_float t.fx
let cast dtype t = normalize dtype t.fx
let bitcast dtype t = of_bits dtype (to_bits t)
let zero dtype = of_int dtype 0

let add a b = of_fx (Ap_fixed.add a.fx b.fx)
let sub a b = of_fx (Ap_fixed.sub a.fx b.fx)
let mul a b = of_fx (Ap_fixed.mul a.fx b.fx)
let neg a = of_fx (Ap_fixed.neg a.fx)

let require_integer name v =
  if not (Dtype.is_integer v.dtype) then
    invalid_arg (Printf.sprintf "Value.%s: %s is not an integer type" name (Dtype.to_string v.dtype))

let to_ap_int v = Ap_int.make ~signed:(Dtype.is_signed v.dtype) (to_bits v)

(* Integer/integer division truncates toward zero (C semantics);
   anything involving fixed-point uses the full-precision quotient. *)
let div a b =
  if Dtype.is_integer a.dtype && Dtype.is_integer b.dtype then
    of_fx (Ap_fixed.of_ap_int (Ap_int.div (to_ap_int a) (to_ap_int b)))
  else of_fx (Ap_fixed.div a.fx b.fx)

let rem a b =
  require_integer "rem" a;
  require_integer "rem" b;
  of_fx (Ap_fixed.of_ap_int (Ap_int.rem (to_ap_int a) (to_ap_int b)))

let bitwise name f a b =
  require_integer name a;
  require_integer name b;
  of_fx (Ap_fixed.of_ap_int (f (to_ap_int a) (to_ap_int b)))

let logand = bitwise "logand" Ap_int.logand
let logor = bitwise "logor" Ap_int.logor
let logxor = bitwise "logxor" Ap_int.logxor

let lognot a =
  require_integer "lognot" a;
  of_fx (Ap_fixed.of_ap_int (Ap_int.lognot (to_ap_int a)))

(* Width-preserving shifts on the raw pattern (Xilinx semantics). *)
let shift_left t n =
  let signed, _, int_bits = fx_params t.dtype in
  { t with fx = Ap_fixed.make ~signed ~int_bits (Bits.shift_left (to_bits t) n) }

let shift_right t n =
  let signed, _, int_bits = fx_params t.dtype in
  let shifted =
    if signed then Bits.shift_right_arith (to_bits t) n else Bits.shift_right_logical (to_bits t) n
  in
  { t with fx = Ap_fixed.make ~signed ~int_bits shifted }

let compare a b = Ap_fixed.compare a.fx b.fx
let equal_value a b = compare a b = 0
let equal a b = Dtype.equal a.dtype b.dtype && Bits.equal (to_bits a) (to_bits b)

let to_string t =
  match t.dtype with
  | Dtype.Bool -> if to_bool t then "true" else "false"
  | Dtype.UInt _ | Dtype.SInt _ -> Ap_int.to_string (to_ap_int t)
  | Dtype.UFixed _ | Dtype.SFixed _ -> Ap_fixed.to_string t.fx

let pp fmt t = Format.pp_print_string fmt (to_string t)
