(** Reference interpreter for operators.

    Executes one operator body against caller-supplied stream callbacks
    — the same code runs under the Kahn-network scheduler (blocking
    callbacks), the softcore co-simulation checker, and unit tests
    (queue-backed callbacks). *)

type io = {
  read : string -> Value.t;  (** blocking stream read per port name *)
  write : string -> Value.t -> unit;
  printf : string -> Value.t list -> unit;  (** -O0 debug sink *)
}

type counters = {
  mutable ops : int;  (** expression nodes evaluated *)
  mutable reads : int;
  mutable writes : int;
  mutable loop_iterations : int;
  mutable multiplies : int;
  mutable divides : int;
}

val fresh_counters : unit -> counters

val run_operator : ?processor:bool -> ?counters:counters -> Op.t -> io -> unit
(** One complete execution of the body. [processor] enables [Printf]
    statements (the paper's [#ifdef RISCV] guard); default false.
    Raises [Invalid_argument] on scoping errors {!Validate} would have
    caught. *)

val queue_io :
  inputs:(string * Value.t Queue.t) list ->
  outputs:(string * Value.t Queue.t) list ->
  io
(** Non-blocking test harness: reading an empty queue raises
    [Failure]. *)
