(** Rosetta digit recognition (§7.2): 1-nearest-neighbour matching of
    196-bit downsampled digits against a training set, refactored — as
    in the paper — into a systolic pipeline where each stage holds a
    slice of the training set and threads the best (distance, label)
    pair through with each test digit. *)

open Pld_ir

val n_stages : int
val vectors_per_stage : int
val words_per_digit : int
val n_tests : int

val graph : ?seed:int -> ?target:Graph.target -> unit -> Graph.t
(** [seed] generates the baked-in training set. Input ["digits_in"]:
    7 words per test digit; output ["labels_out"]: 1 label word per
    digit. *)

val workload : ?seed:int -> unit -> (string * Value.t list) list
(** Test digits are noisy copies of training vectors ([seed] must
    match the graph's). *)

val reference : ?seed:int -> (string * Value.t list) list -> int list
val check : ?seed:int -> inputs:(string * Value.t list) list -> (string * Value.t list) list -> bool
