(** Rosetta optical flow (§7.2): the Lucas–Kanade tensor pipeline of
    Fig. 2 — unpack → grad_xy / grad_z → weight_y → tensor_y →
    tensor_x → flow_calc — on a scaled frame, with the paper's
    ap_fixed<32,17> working type and ap_fixed<64,40> intermediates. *)

open Pld_ir

val height : int
val width : int

val graph : ?target:Graph.target -> unit -> Graph.t
(** Input channel ["frames_in"] carries 2 words per pixel (current,
    previous); output ["flow_out"] carries 2 words per pixel (u, v) as
    ap_fixed<32,17> bit patterns. *)

val workload : ?seed:int -> unit -> (string * Value.t list) list

val reference : (string * Value.t list) list -> (float * float) array
(** Independent float model of the pipeline (same stencils), for
    tolerance checking. *)

val check : inputs:(string * Value.t list) list -> (string * Value.t list) list -> bool
(** Output u/v within 0.1 of the float reference. *)
