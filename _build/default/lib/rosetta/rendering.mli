(** Rosetta 3D rendering (§7.2): projection → rasterization (split by
    image region, as the paper decomposes large stages) → z-buffer
    merge, on a 16×16 frame with 8 input triangles. *)

open Pld_ir

val n_triangles : int
val height : int
val width : int

val graph : ?target:Graph.target -> unit -> Graph.t
(** Input ["tri_in"]: 9 words per triangle (three x,y,z vertices);
    output ["frame_out"]: 256 depth words (255 = background). *)

val workload : ?seed:int -> unit -> (string * Value.t list) list
val reference : (string * Value.t list) list -> int array
val check : inputs:(string * Value.t list) list -> (string * Value.t list) list -> bool
