open Pld_ir
open Dsl

let n_stages = 5
let vectors_per_stage = 4
let words_per_digit = 7
let n_tests = 8
let n_train = n_stages * vectors_per_stage

let popcount4 = Array.init 16 (fun n -> Value.of_int i32 ((n land 1) + (n lsr 1 land 1) + (n lsr 2 land 1) + (n lsr 3 land 1)))

let training_set seed =
  let rng = Pld_util.Rng.create (seed * 77 + 5) in
  Array.init n_train (fun k ->
      let words = Array.init words_per_digit (fun _ -> Int64.to_int (Int64.logand (Pld_util.Rng.bits64 rng) 0xFFFFFFFFL)) in
      (words, k mod 10))

(* One systolic stage: compare the incoming digit against this stage's
   slice of the training set and update the running best. *)
let stage_op seed s =
  let train = training_set seed in
  let slice = Array.sub train (s * vectors_per_stage) vectors_per_stage in
  let train_words =
    Array.concat (Array.to_list (Array.map (fun (ws, _) -> Array.map (Value.of_int u32) ws) slice))
  in
  let labels = Array.map (fun (_, l) -> Value.of_int i32 l) slice in
  pipe_op
    ~name:(Printf.sprintf "knn_stage%d" s)
    ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:
      [
        Op.array "buf" u32 words_per_digit;
        Op.array ~init:train_words "train" u32 (vectors_per_stage * words_per_digit);
        Op.array ~init:labels "labels" i32 vectors_per_stage;
        Op.array ~init:popcount4 "pop4" i32 16;
        Op.scalar "bd" i32; Op.scalar "bl" i32; Op.scalar "dist" i32; Op.scalar "x" u32;
      ]
    [
      for_ ~pipeline:false "t" 0 n_tests
        [
          for_ ~pipeline:false "j" 0 words_per_digit [ read_at "buf" (v "j") "in" ];
          read "bd" "in";
          read "bl" "in";
          for_ ~pipeline:false "k" 0 vectors_per_stage
            [
              assign "dist" (c i32 0);
              for_ ~pipeline:false "w" 0 words_per_digit
                [
                  assign "x"
                    Expr.("buf".%[v "w"] lxor "train".%[(v "k" * c i32 words_per_digit) + v "w"]);
                  for_ "n" 0 8
                    [
                      assign "dist" Expr.(v "dist" + "pop4".%[Cast (i32, v "x" land c u32 15)]);
                      assign "x" Expr.(v "x" lsr c i32 4);
                    ];
                ];
              if_
                Expr.(v "dist" < v "bd")
                [ assign "bd" (v "dist"); assign "bl" ("labels".%[v "k"]) ]
                [];
            ];
          for_ ~pipeline:false "j" 0 words_per_digit [ write "out" ("buf".%[v "j"]) ];
          write "out" (v "bd");
          write "out" (v "bl");
        ];
    ]

(* Head: inject the initial (max distance, no label) pair. *)
let injector =
  pipe_op ~name:"knn_inject" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:[ Op.scalar "x" u32 ]
    [
      for_ ~pipeline:false "t" 0 n_tests
        [
          for_ ~pipeline:false "j" 0 words_per_digit [ read "x" "in"; write "out" (v "x") ];
          write "out" (c i32 9999);
          write "out" (c i32 (-1));
        ];
    ]

(* Tail: keep only the winning label. *)
let vote =
  pipe_op ~name:"knn_vote" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:[ Op.scalar "x" u32; Op.scalar "bl" i32 ]
    [
      for_ ~pipeline:false "t" 0 n_tests
        [
          for_ ~pipeline:false "j" 0 (words_per_digit + 1) [ read "x" "in" ];
          read "bl" "in";
          write "out" (v "bl");
        ];
    ]

let graph ?(seed = 9) ?(target = Graph.Hw { page_hint = None }) () =
  chain ~name:"digit_recognition" ~input:"digits_in" ~output:"labels_out"
    ((injector, target)
    :: List.init n_stages (fun s -> (stage_op seed s, target))
    @ [ (vote, target) ])

let workload ?(seed = 9) () =
  let train = training_set seed in
  let rng = Pld_util.Rng.create (seed + 1000) in
  let words =
    List.concat
      (List.init n_tests (fun _ ->
           let k = Pld_util.Rng.int rng n_train in
           let ws, _ = train.(k) in
           (* Flip a few bits of a training vector. *)
           List.init words_per_digit (fun j ->
               let flips = 1 lsl Pld_util.Rng.int rng 32 in
               (ws.(j) lxor flips) land 0xFFFFFFFF)))
  in
  [ ("digits_in", word_values words) ]

let popcount x =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go x 0

let reference ?(seed = 9) inputs =
  let train = training_set seed in
  let ws = Array.of_list (List.map Value.to_int (List.assoc "digits_in" inputs)) in
  List.init n_tests (fun t ->
      let digit = Array.sub ws (t * words_per_digit) words_per_digit in
      let best = ref (9999, -1) in
      Array.iter
        (fun (tw, label) ->
          let d = ref 0 in
          Array.iteri (fun j w -> d := !d + popcount (w lxor digit.(j))) tw;
          if !d < fst !best then best := (!d, label))
        train;
      snd !best)

let check ?seed ~inputs outputs =
  let got = List.map Value.to_int (List.assoc "labels_out" outputs) in
  (* Labels may come back as 32-bit wrapped ints. *)
  let got = List.map (fun x -> if x > 0x7FFFFFFF then x - 0x100000000 else x) got in
  got = reference ?seed inputs
