open Pld_ir
open Dsl

let image_size = 16
let npix = image_size * image_size
let window = 8
let stride = 4
let positions = [ 0; 4; 8 ]
let windows = List.concat_map (fun r -> List.map (fun c' -> (r, c')) positions) positions
let n_windows = List.length windows

(* Rectangle sum on the inclusive integral image, with the border
   corrections resolved statically per window. *)
let rect_sum r0 c0 r1 c1 =
  let ii r c' = Expr.Idx ("ii", Expr.int i32 ((r * image_size) + c')) in
  let base = ii r1 c1 in
  let sub1 = if r0 > 0 then Some (ii (r0 - 1) c1) else None in
  let sub2 = if c0 > 0 then Some (ii r1 (c0 - 1)) else None in
  let add = if r0 > 0 && c0 > 0 then Some (ii (r0 - 1) (c0 - 1)) else None in
  let e = base in
  let e = match sub1 with Some s -> Expr.(e - s) | None -> e in
  let e = match sub2 with Some s -> Expr.(e - s) | None -> e in
  match add with Some s -> Expr.(e + s) | None -> e

let integral =
  let outs = [ "o1"; "o2"; "o3"; "o4" ] in
  pipe_op ~name:"integral" ~ins:[ "in" ] ~outs
    ~locals:[ Op.array "img" i32 npix; Op.array "ii" i32 npix; Op.scalar "acc" i32 ]
    ([ for_ "i" 0 npix [ read_at "img" (v "i") "in" ] ]
    @ [
        for_ ~pipeline:false "r" 0 image_size
          [
            assign "acc" (c i32 0);
            for_ "cc" 0 image_size
              [
                assign "acc" Expr.(v "acc" + "img".%[(v "r" * c i32 image_size) + v "cc"]);
                if_
                  Expr.(v "r" > c i32 0)
                  [
                    set "ii"
                      Expr.((v "r" * c i32 image_size) + v "cc")
                      Expr.(v "acc" + "ii".%[((v "r" - c i32 1) * c i32 image_size) + v "cc"]);
                  ]
                  [ set "ii" Expr.((v "r" * c i32 image_size) + v "cc") (v "acc") ];
              ];
          ];
      ]
    @ List.map (fun o -> for_ "i" 0 npix [ write o ("ii".%[v "i"]) ]) outs)

(* Strong filtering: two Haar features per window (top-bottom and
   left-right contrast), split across two operators by image region. *)
let strong name wins =
  pipe_op ~name ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:[ Op.array "ii" i32 npix; Op.scalar "fa" i32; Op.scalar "fb" i32 ]
    ([ for_ "i" 0 npix [ read_at "ii" (v "i") "in" ] ]
    @ List.concat_map
        (fun (r, c') ->
          let half = window / 2 in
          let fa_top = rect_sum r c' (r + half - 1) (c' + window - 1) in
          let fa_bot = rect_sum (r + half) c' (r + window - 1) (c' + window - 1) in
          let fb_left = rect_sum r c' (r + window - 1) (c' + half - 1) in
          let fb_right = rect_sum r (c' + half) (r + window - 1) (c' + window - 1) in
          [
            assign "fa" Expr.(fa_top - fa_bot);
            assign "fb" Expr.(fb_left - fb_right);
            write "out" Expr.((c i32 2 * v "fa") + (c i32 3 * v "fb"));
          ])
        wins)

(* Interleave the two strong streams back into window order. *)
let collect n_a n_b =
  pipe_op ~name:"collect" ~ins:[ "a"; "b" ] ~outs:[ "out" ]
    ~locals:[ Op.scalar "x" i32 ]
    [
      for_ ~pipeline:false "i" 0 n_a [ read "x" "a"; write "out" (v "x") ];
      for_ ~pipeline:false "i" 0 n_b [ read "x" "b"; write "out" (v "x") ];
    ]

(* Weak filtering: each operator applies one extra filter set to every
   candidate window and folds it into the running score. *)
let weak name feature_of_window =
  pipe_op ~name ~ins:[ "ii_in"; "s_in" ] ~outs:[ "out" ]
    ~locals:[ Op.array "ii" i32 npix; Op.scalar "s" i32 ]
    ([ for_ "i" 0 npix [ read_at "ii" (v "i") "ii_in" ] ]
    @ List.concat_map
        (fun (r, c') ->
          [ read "s" "s_in"; write "out" Expr.(v "s" + feature_of_window r c') ])
        windows)

(* Center-surround contrast. *)
let feature_c r c' =
  let q = window / 4 in
  let inner = rect_sum (r + q) (c' + q) (r + window - q - 1) (c' + window - q - 1) in
  let whole = rect_sum r c' (r + window - 1) (c' + window - 1) in
  Expr.((c i32 4 * inner) - whole)

(* Diagonal quadrant contrast. *)
let feature_d r c' =
  let half = window / 2 in
  let q1 = rect_sum r c' (r + half - 1) (c' + half - 1) in
  let q2 = rect_sum (r + half) (c' + half) (r + window - 1) (c' + window - 1) in
  let q3 = rect_sum r (c' + half) (r + half - 1) (c' + window - 1) in
  let q4 = rect_sum (r + half) c' (r + window - 1) (c' + half - 1) in
  Expr.(q1 + q2 - q3 - q4)

let split_windows = List.filteri (fun i _ -> i < 5) windows
let rest_windows = List.filteri (fun i _ -> i >= 5) windows

let graph ?(target = Graph.Hw { page_hint = None }) () =
  let ch = Graph.channel in
  Graph.make ~name:"face_detection"
    ~channels:
      [
        ch "image_in"; ch ~depth:npix "c_ii_a"; ch ~depth:npix "c_ii_b"; ch ~depth:npix "c_ii_w1";
        ch ~depth:npix "c_ii_w2"; ch ~depth:16 "c_sa"; ch ~depth:16 "c_sb"; ch ~depth:16 "c_s";
        ch ~depth:16 "c_w1"; ch "faces_out";
      ]
    ~instances:
      [
        Graph.instance ~target integral
          [ ("in", "image_in"); ("o1", "c_ii_a"); ("o2", "c_ii_b"); ("o3", "c_ii_w1"); ("o4", "c_ii_w2") ];
        Graph.instance ~target (strong "strong_a" split_windows) [ ("in", "c_ii_a"); ("out", "c_sa") ];
        Graph.instance ~target (strong "strong_b" rest_windows) [ ("in", "c_ii_b"); ("out", "c_sb") ];
        Graph.instance ~target (collect 5 4) [ ("a", "c_sa"); ("b", "c_sb"); ("out", "c_s") ];
        Graph.instance ~target (weak "weak_c" feature_c) [ ("ii_in", "c_ii_w1"); ("s_in", "c_s"); ("out", "c_w1") ];
        Graph.instance ~target (weak "weak_d" feature_d) [ ("ii_in", "c_ii_w2"); ("s_in", "c_w1"); ("out", "faces_out") ];
      ]
    ~inputs:[ "image_in" ] ~outputs:[ "faces_out" ]

let workload ?(seed = 21) () =
  let rng = Pld_util.Rng.create seed in
  (* A bright blob (face-ish) on a dark background plus noise. *)
  let words =
    List.init npix (fun i ->
        let r = i / image_size and c' = i mod image_size in
        let blob = if r >= 4 && r < 12 && c' >= 4 && c' < 12 then 150 else 40 in
        (blob + Pld_util.Rng.int rng 30) land 0xFF)
  in
  [ ("image_in", word_values words) ]

let reference inputs =
  let ws = Array.of_list (List.map Value.to_int (List.assoc "image_in" inputs)) in
  let ii = Array.make npix 0 in
  for r = 0 to image_size - 1 do
    let acc = ref 0 in
    for c' = 0 to image_size - 1 do
      acc := !acc + ws.((r * image_size) + c');
      ii.((r * image_size) + c') <- (!acc + if r > 0 then ii.(((r - 1) * image_size) + c') else 0)
    done
  done;
  let rect r0 c0 r1 c1 =
    let at r c' = if r < 0 || c' < 0 then 0 else ii.((r * image_size) + c') in
    at r1 c1 - at (r0 - 1) c1 - at r1 (c0 - 1) + at (r0 - 1) (c0 - 1)
  in
  List.map
    (fun (r, c') ->
      let half = window / 2 and q = window / 4 in
      let fa = rect r c' (r + half - 1) (c' + window - 1) - rect (r + half) c' (r + window - 1) (c' + window - 1) in
      let fb = rect r c' (r + window - 1) (c' + half - 1) - rect r (c' + half) (r + window - 1) (c' + window - 1) in
      let fc = (4 * rect (r + q) (c' + q) (r + window - q - 1) (c' + window - q - 1)) - rect r c' (r + window - 1) (c' + window - 1) in
      let fd =
        rect r c' (r + half - 1) (c' + half - 1)
        + rect (r + half) (c' + half) (r + window - 1) (c' + window - 1)
        - rect r (c' + half) (r + half - 1) (c' + window - 1)
        - rect (r + half) c' (r + window - 1) (c' + half - 1)
      in
      (2 * fa) + (3 * fb) + fc + fd)
    windows

let check ~inputs outputs =
  let expect = reference inputs in
  let got =
    List.map
      (fun v ->
        let x = Value.to_int v in
        if x > 0x7FFFFFFF then x - 0x100000000 else x)
      (List.assoc "faces_out" outputs)
  in
  got = expect

let _ = ignore stride
