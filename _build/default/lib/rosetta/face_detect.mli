(** Rosetta face detection (§7.2): integral image → strong (cascade)
    filtering split by image region → weak filtering split by filter
    set → merge, over a fixed grid of candidate windows. *)

open Pld_ir

val image_size : int
val n_windows : int

val graph : ?target:Graph.target -> unit -> Graph.t
(** Input ["image_in"]: 256 pixel words; output ["faces_out"]: one
    score word per window (sign bit decides face / not-face at the
    host). *)

val workload : ?seed:int -> unit -> (string * Value.t list) list
val reference : (string * Value.t list) list -> int list
val check : inputs:(string * Value.t list) list -> (string * Value.t list) list -> bool
