open Pld_ir

type bench = {
  name : string;
  paper_name : string;
  graph : Graph.target -> Graph.t;
  workload : unit -> (string * Value.t list) list;
  check : inputs:(string * Value.t list) list -> (string * Value.t list) list -> bool;
}

let all =
  [
    {
      name = "rendering";
      paper_name = "3D Rendering";
      graph = (fun target -> Rendering.graph ~target ());
      workload = (fun () -> Rendering.workload ());
      check = (fun ~inputs outputs -> Rendering.check ~inputs outputs);
    };
    {
      name = "digit";
      paper_name = "Digit Recognition";
      graph = (fun target -> Digit_recog.graph ~target ());
      workload = (fun () -> Digit_recog.workload ());
      check = (fun ~inputs outputs -> Digit_recog.check ~inputs outputs);
    };
    {
      name = "spam";
      paper_name = "Spam Filter";
      graph = (fun target -> Spam_filter.graph ~target ());
      workload = (fun () -> Spam_filter.workload ());
      check = (fun ~inputs outputs -> Spam_filter.check ~inputs outputs);
    };
    {
      name = "optical";
      paper_name = "Optical Flow";
      graph = (fun target -> Optical_flow.graph ~target ());
      workload = (fun () -> Optical_flow.workload ());
      check = (fun ~inputs outputs -> Optical_flow.check ~inputs outputs);
    };
    {
      name = "face";
      paper_name = "Face Detection";
      graph = (fun target -> Face_detect.graph ~target ());
      workload = (fun () -> Face_detect.workload ());
      check = (fun ~inputs outputs -> Face_detect.check ~inputs outputs);
    };
    {
      name = "bnn";
      paper_name = "Binary NN";
      graph = (fun target -> Bnn.graph ~target ());
      workload = (fun () -> Bnn.workload ());
      check = (fun ~inputs outputs -> Bnn.check ~inputs outputs);
    };
  ]

let find name = List.find (fun b -> b.name = name) all
let names = List.map (fun b -> b.name) all
