open Pld_ir
open Dsl

let n_features = 64
let n_lanes = 4
let lane_width = n_features / n_lanes
let n_samples = 16

let weights seed =
  let rng = Pld_util.Rng.create (seed * 131 + 7) in
  Array.init n_features (fun _ -> Pld_util.Rng.float rng 2.0 -. 1.0)

let bias = -0.25

(* Scatter each sample's features across the dot-product lanes. *)
let scatter =
  let outs = List.init n_lanes (fun j -> Printf.sprintf "o%d" j) in
  pipe_op ~name:"scatter" ~ins:[ "in" ] ~outs ~locals:[ Op.scalar "x" u32 ]
    [
      for_ ~pipeline:false "s" 0 n_samples
        (List.concat_map
           (fun j ->
             [ for_ "i" 0 lane_width [ read "x" "in"; write (Printf.sprintf "o%d" j) (v "x") ] ])
           (List.init n_lanes Fun.id));
    ]

let dot_lane seed j =
  let w = weights seed in
  let lane_weights =
    Array.init lane_width (fun i -> Value.of_float fx32 w.((j * lane_width) + i))
  in
  pipe_op
    ~name:(Printf.sprintf "dot%d" j)
    ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:
      [
        Op.array ~init:lane_weights "w" fx32 lane_width;
        Op.scalar "x" fx32; Op.scalar "acc" fx32;
      ]
    [
      for_ ~pipeline:false "s" 0 n_samples
        [
          assign "acc" (cf fx32 0.0);
          for_ "i" 0 lane_width
            [ read "x" "in"; assign "acc" Expr.(v "acc" + (v "x" * "w".%[v "i"])) ];
          write "out" (v "acc");
        ];
    ]

(* Sum the partial products, add the bias, apply a piecewise-linear
   sigmoid and threshold at 0.5. *)
let reduce =
  let ins = List.init n_lanes (fun j -> Printf.sprintf "i%d" j) in
  pipe_op ~name:"reduce_sigmoid" ~ins ~outs:[ "out" ]
    ~locals:[ Op.scalar "acc" fx32; Op.scalar "p" fx32; Op.scalar "sgm" fx32 ]
    [
      for_ ~pipeline:false "s" 0 n_samples
        ([ assign "acc" (cf fx32 bias) ]
        @ List.concat_map
            (fun j -> [ read "p" (Printf.sprintf "i%d" j); assign "acc" Expr.(v "acc" + v "p") ])
            (List.init n_lanes Fun.id)
        @ [
            (* sigmoid(x) ~ clamp(0.5 + 0.15 x, 0, 1) *)
            assign "sgm" Expr.(cf fx32 0.5 + (v "acc" * cf fx32 0.15));
            if_ Expr.(v "sgm" < cf fx32 0.0) [ assign "sgm" (cf fx32 0.0) ] [];
            if_ Expr.(v "sgm" > cf fx32 1.0) [ assign "sgm" (cf fx32 1.0) ] [];
            write "out" Expr.(Select (v "sgm" > cf fx32 0.5, c u32 1, c u32 0));
          ]);
    ]

let graph ?(seed = 5) ?(target = Graph.Hw { page_hint = None }) () =
  let ch = Graph.channel in
  let lane_chans = List.init n_lanes (fun j -> Printf.sprintf "c_in%d" j) in
  let part_chans = List.init n_lanes (fun j -> Printf.sprintf "c_dot%d" j) in
  Graph.make ~name:"spam_filter"
    ~channels:
      (ch "samples_in" :: ch "verdict_out"
      :: List.map (fun n -> ch ~depth:(2 * lane_width) n) lane_chans
      @ List.map (fun n -> ch ~depth:n_samples n) part_chans)
    ~instances:
      (Graph.instance ~target scatter
         (("in", "samples_in") :: List.mapi (fun j ch -> (Printf.sprintf "o%d" j, ch)) lane_chans)
      :: Graph.instance ~target reduce
           (List.mapi (fun j ch -> (Printf.sprintf "i%d" j, ch)) part_chans
           @ [ ("out", "verdict_out") ])
      :: List.init n_lanes (fun j ->
             Graph.instance ~target (dot_lane seed j)
               [ ("in", List.nth lane_chans j); ("out", List.nth part_chans j) ]))
    ~inputs:[ "samples_in" ] ~outputs:[ "verdict_out" ]

let workload ?(seed = 5) () =
  let rng = Pld_util.Rng.create (seed + 17) in
  let words =
    List.concat
      (List.init n_samples (fun _ ->
           List.init n_features (fun _ ->
               Value.to_int (fx_word (Pld_util.Rng.float rng 2.0 -. 1.0)))))
  in
  [ ("samples_in", word_values words) ]

let reference ?(seed = 5) inputs =
  let w = weights seed in
  let ws = Array.of_list (List.map (fun v -> fx_of_word v) (List.assoc "samples_in" inputs)) in
  List.init n_samples (fun s ->
      let acc = ref bias in
      for i = 0 to n_features - 1 do
        acc := !acc +. (ws.((s * n_features) + i) *. w.(i))
      done;
      let sgm = Float.max 0.0 (Float.min 1.0 (0.5 +. (0.15 *. !acc))) in
      (sgm, if sgm > 0.5 then 1 else 0))

let check ?seed ~inputs outputs =
  let expect = reference ?seed inputs in
  let got = List.map Value.to_int (List.assoc "verdict_out" outputs) in
  List.length got = n_samples
  && List.for_all2
       (fun (score, verdict) g -> Float.abs (score -. 0.5) < 0.02 || g = verdict)
       expect got
