(** Rosetta SPAM filtering (§7.2): logistic-regression scoring where —
    as in the paper's decomposition — the feature dot product is
    data-parallel across separate dot-product operators, with scatter
    and reduce operators around them. *)

open Pld_ir

val n_features : int
val n_lanes : int
val n_samples : int

val graph : ?seed:int -> ?target:Graph.target -> unit -> Graph.t
(** Input ["samples_in"]: [n_features] ap_fixed<32,17> words per
    sample; output ["verdict_out"]: one word per sample (1 = spam). *)

val workload : ?seed:int -> unit -> (string * Value.t list) list
val reference : ?seed:int -> (string * Value.t list) list -> (float * int) list
(** Per sample: (score, verdict). *)

val check : ?seed:int -> inputs:(string * Value.t list) list -> (string * Value.t list) list -> bool
(** Verdicts must match except for samples within 0.02 of the decision
    boundary (fixed-point rounding may flip those). *)
