open Pld_ir
open Dsl

let i4 = Dtype.SInt 4
let i8 = Dtype.SInt 8

let image_size = 8
let npix = image_size * image_size
let n_images = 4
let n_channels = 2
let n_hidden = 8
let n_classes = 10

type weights = {
  conv1 : int array; (* [ch][dr][dc] flattened, values in [-2,2] *)
  conv2 : int array; (* [out_ch][in_ch][tap] flattened, 0/1 *)
  fc1 : int array; (* [hidden] 32-bit masks *)
  fc2 : int array; (* [class][hidden] values in [0,3] *)
}

let make_weights seed =
  let rng = Pld_util.Rng.create (seed * 313 + 41) in
  {
    conv1 = Array.init (n_channels * 9) (fun _ -> Pld_util.Rng.int_in rng (-2) 2);
    conv2 = Array.init (n_channels * n_channels * 9) (fun _ -> Pld_util.Rng.int rng 2);
    fc1 = Array.init n_hidden (fun _ -> Int64.to_int (Int64.logand (Pld_util.Rng.bits64 rng) 0xFFFFFFFFL));
    fc2 = Array.init (n_classes * n_hidden) (fun _ -> Pld_util.Rng.int rng 4);
  }

(* Zero-padded tap: img[(r+dr-1)*S + (c+dc-1)] or 0 at borders. *)
let tap ?(zero = i4) arr r cc dr dc =
  let s = image_size in
  let dr1 = dr - 1 and dc1 = dc - 1 in
  (* Narrow constants keep the index datapath a few bits wide. *)
  let rr = Expr.(v r + c i4 dr1) and ccx = Expr.(v cc + c i4 dc1) in
  let inb =
    Expr.(rr >= c i4 0 && rr < c i8 s && ccx >= c i4 0 && ccx < c i8 s)
  in
  Expr.Select (inb, Expr.Idx (arr, Expr.((rr * c i8 s) + ccx)), c zero 0)

let conv1_op w =
  let taps ch =
    List.concat_map
      (fun dr -> List.map (fun dc -> (w.conv1.((ch * 9) + (dr * 3) + dc), dr, dc)) [ 0; 1; 2 ])
      [ 0; 1; 2 ]
  in
  (* Strength-reduce the tiny weights: x, -x, x<<1, -(x<<1), or drop. *)
  let weighted wt x =
    match wt with
    | 0 -> None
    | 1 -> Some x
    | -1 -> Some (Expr.Un (Expr.Neg, x))
    | 2 -> Some Expr.(x lsl c i32 1)
    | -2 -> Some (Expr.Un (Expr.Neg, Expr.(x lsl c i32 1)))
    | _ -> Some Expr.(c i4 wt * x)
  in
  let sum ch =
    match
      List.filter_map (fun (wt, dr, dc) -> weighted wt (tap ~zero:i8 "img" "r" "cc" dr dc)) (taps ch)
    with
    | [] -> c i32 0
    | terms -> reduce_tree terms
  in
  pipe_op ~name:"bnn_conv1" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:[ Op.array "img" i8 npix; Op.scalar "b0" i4; Op.scalar "b1" i4 ]
    [
      for_ ~pipeline:false "im" 0 n_images
        [
          for_ "i" 0 npix [ read_at "img" (v "i") "in" ];
          for_ ~pipeline:false "r" 0 image_size
            [
              for_ "cc" 0 image_size
                [
                  assign "b0" Expr.(Select (sum 0 > c i32 0, c i4 1, c i4 0));
                  assign "b1" Expr.(Select (sum 1 > c i32 0, c i4 1, c i4 0));
                  write "out" Expr.(v "b0" lor (v "b1" lsl c i32 1));
                ];
            ];
        ];
    ]

let conv2_op w =
  (* XNOR-popcount across both input channels' 3x3 neighbourhoods. *)
  let contrib out_ch =
    reduce_tree
      (List.map
         (fun (in_ch, dr, dc) ->
           let wt = w.conv2.((out_ch * n_channels * 9) + (in_ch * 9) + (dr * 3) + dc) in
           let bit = Expr.((tap "a" "r" "cc" dr dc lsr c i32 in_ch) land c i32 1) in
           (* xnor(bit, wt) = 1 when equal *)
           Expr.(Select (bit = c i4 wt, c i4 1, c i4 0)))
         (List.concat_map
            (fun in_ch ->
              List.concat_map (fun dr -> List.map (fun dc -> (in_ch, dr, dc)) [ 0; 1; 2 ]) [ 0; 1; 2 ])
            [ 0; 1 ]))
  in
  let threshold = n_channels * 9 / 2 in
  pipe_op ~name:"bnn_conv2" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:[ Op.array "a" i4 npix; Op.scalar "b0" i4; Op.scalar "b1" i4 ]
    [
      for_ ~pipeline:false "im" 0 n_images
        [
          for_ "i" 0 npix [ read_at "a" (v "i") "in" ];
          for_ ~pipeline:false "r" 0 image_size
            [
              for_ "cc" 0 image_size
                [
                  assign "b0" Expr.(Select (contrib 0 > c i32 threshold, c i4 1, c i4 0));
                  assign "b1" Expr.(Select (contrib 1 > c i32 threshold, c i4 1, c i4 0));
                  write "out" Expr.(v "b0" lor (v "b1" lsl c i32 1));
                ];
            ];
        ];
    ]

let pool_op =
  let s2 = image_size / 2 in
  pipe_op ~name:"bnn_pool" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:[ Op.array "a" i4 npix ]
    [
      for_ ~pipeline:false "im" 0 n_images
        [
          for_ "i" 0 npix [ read_at "a" (v "i") "in" ];
          for_ ~pipeline:false "r" 0 s2
            [
              for_ "cc" 0 s2
                [
                  (* 2x2 max pool = bitwise OR of the four 2-bit cells. *)
                  write "out"
                    Expr.(
                      Idx ("a", ((v "r" * c i32 2) * c i32 image_size) + (v "cc" * c i32 2))
                      lor Idx ("a", ((v "r" * c i32 2) * c i32 image_size) + (v "cc" * c i32 2) + c i32 1)
                      lor Idx ("a", (((v "r" * c i32 2) + c i32 1) * c i32 image_size) + (v "cc" * c i32 2))
                      lor Idx ("a", (((v "r" * c i32 2) + c i32 1) * c i32 image_size) + (v "cc" * c i32 2) + c i32 1));
                ];
            ];
        ];
    ]

let fc1_op w =
  let masks = Array.map (Value.of_int u32) w.fc1 in
  let pop4 = Array.init 16 (fun n -> Value.of_int i32 ((n land 1) + (n lsr 1 land 1) + (n lsr 2 land 1) + (n lsr 3 land 1))) in
  pipe_op ~name:"bnn_fc1" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:
      [
        Op.array ~init:masks "w" u32 n_hidden; Op.array ~init:pop4 "pop4" i32 16;
        Op.scalar "x" u32; Op.scalar "t" u32; Op.scalar "y" u32; Op.scalar "acc" i32;
        Op.scalar "h" i32;
      ]
    [
      for_ ~pipeline:false "im" 0 n_images
        [
          assign "x" (c u32 0);
          for_ ~pipeline:false "i" 0 (npix / 4)
            [
              read "t" "in";
              assign "x" Expr.(v "x" lor ((v "t" land c u32 3) lsl (v "i" * c i32 2)));
            ];
          assign "h" (c i32 0);
          for_ ~pipeline:false "j" 0 n_hidden
            [
              (* popcount of xnor(x, w[j]) over 32 bits *)
              assign "y" Expr.(Un (BNot, v "x" lxor "w".%[v "j"]));
              assign "acc" (c i32 0);
              for_ "n" 0 8
                [
                  assign "acc" Expr.(v "acc" + "pop4".%[Cast (i32, v "y" land c u32 15)]);
                  assign "y" Expr.(v "y" lsr c i32 4);
                ];
              if_ Expr.(v "acc" > c i32 16) [ assign "h" Expr.(v "h" lor (c i32 1 lsl v "j")) ] [];
            ];
          write "out" (v "h");
        ];
    ]

let fc2_op w =
  let weights = Array.map (Value.of_int i32) w.fc2 in
  pipe_op ~name:"bnn_fc2" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:
      [
        Op.array ~init:weights "w" i32 (n_classes * n_hidden);
        Op.scalar "h" i32; Op.scalar "s" i32; Op.scalar "best" i32; Op.scalar "bestk" i32;
        Op.scalar "wv" i32;
      ]
    [
      for_ ~pipeline:false "im" 0 n_images
        [
          read "h" "in";
          assign "best" (c i32 (-100000));
          assign "bestk" (c i32 0);
          for_ ~pipeline:false "k" 0 n_classes
            [
              assign "s" (c i32 0);
              for_ ~pipeline:false "j" 0 n_hidden
                [
                  assign "wv" ("w".%[Expr.((v "k" * c i32 n_hidden) + v "j")]);
                  if_
                    Expr.(((v "h" lsr v "j") land c i32 1) = c i32 1)
                    [ assign "s" Expr.(v "s" + v "wv") ]
                    [ assign "s" Expr.(v "s" - v "wv") ];
                ];
              if_ Expr.(v "s" > v "best") [ assign "best" (v "s"); assign "bestk" (v "k") ] [];
            ];
          write "out" (v "bestk");
        ];
    ]

let graph ?(seed = 13) ?(target = Graph.Hw { page_hint = None }) () =
  let w = make_weights seed in
  chain ~name:"bnn" ~input:"images_in" ~output:"class_out"
    [
      (conv1_op w, target); (conv2_op w, target); (pool_op, target); (fc1_op w, target);
      (fc2_op w, target);
    ]

let workload ?(seed = 13) () =
  let rng = Pld_util.Rng.create (seed + 99) in
  let words =
    List.concat (List.init n_images (fun _ -> List.init npix (fun _ -> Pld_util.Rng.int rng 16)))
  in
  [ ("images_in", word_values words) ]

(* ---------- integer-exact reference ---------- *)

let reference ?(seed = 13) inputs =
  let w = make_weights seed in
  let ws = Array.of_list (List.map Value.to_int (List.assoc "images_in" inputs)) in
  let s = image_size in
  List.init n_images (fun im ->
      let img = Array.sub ws (im * npix) npix in
      let at a r cc = if r < 0 || r >= s || cc < 0 || cc >= s then 0 else a.((r * s) + cc) in
      let conv1 =
        Array.init npix (fun i ->
            let r = i / s and cc = i mod s in
            let bit ch =
              let acc = ref 0 in
              for dr = 0 to 2 do
                for dc = 0 to 2 do
                  acc := !acc + (w.conv1.((ch * 9) + (dr * 3) + dc) * at img (r + dr - 1) (cc + dc - 1))
                done
              done;
              if !acc > 0 then 1 else 0
            in
            bit 0 lor (bit 1 lsl 1))
      in
      let conv2 =
        Array.init npix (fun i ->
            let r = i / s and cc = i mod s in
            let bit out_ch =
              let acc = ref 0 in
              for in_ch = 0 to 1 do
                for dr = 0 to 2 do
                  for dc = 0 to 2 do
                    let b = (at conv1 (r + dr - 1) (cc + dc - 1) lsr in_ch) land 1 in
                    let wt = w.conv2.((out_ch * n_channels * 9) + (in_ch * 9) + (dr * 3) + dc) in
                    if b = wt then incr acc
                  done
                done
              done;
              if !acc > n_channels * 9 / 2 then 1 else 0
            in
            bit 0 lor (bit 1 lsl 1))
      in
      let s2 = s / 2 in
      let pooled =
        Array.init (s2 * s2) (fun i ->
            let r = i / s2 and cc = i mod s2 in
            at conv2 (2 * r) (2 * cc) lor at conv2 (2 * r) ((2 * cc) + 1)
            lor at conv2 ((2 * r) + 1) (2 * cc)
            lor at conv2 ((2 * r) + 1) ((2 * cc) + 1))
      in
      let x = Array.to_list pooled |> List.mapi (fun i v -> (v land 3) lsl (2 * i)) |> List.fold_left ( lor ) 0 in
      let h = ref 0 in
      for j = 0 to n_hidden - 1 do
        let y = lnot (x lxor w.fc1.(j)) land 0xFFFFFFFF in
        let rec pc v acc = if v = 0 then acc else pc (v lsr 1) (acc + (v land 1)) in
        if pc y 0 > 16 then h := !h lor (1 lsl j)
      done;
      let best = ref (-100000) and bestk = ref 0 in
      for k = 0 to n_classes - 1 do
        let sc = ref 0 in
        for j = 0 to n_hidden - 1 do
          let wv = w.fc2.((k * n_hidden) + j) in
          if (!h lsr j) land 1 = 1 then sc := !sc + wv else sc := !sc - wv
        done;
        if !sc > !best then begin
          best := !sc;
          bestk := k
        end
      done;
      !bestk)

let check ?seed ~inputs outputs =
  List.map Value.to_int (List.assoc "class_out" outputs) = reference ?seed inputs
