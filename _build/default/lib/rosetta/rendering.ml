open Pld_ir
open Dsl

let n_triangles = 8
let height = 16
let width = 16
let half = height / 2
let background = 255

(* Project a triangle to screen space and reduce it to a bounding box
   plus a representative depth — per-triangle 5-word descriptors,
   duplicated to both rasterizer regions. *)
let proj =
  let vmin3 a b c' = Expr.(Select (a < b, Select (a < c', a, c'), Select (b < c', b, c'))) in
  let vmax3 a b c' = Expr.(Select (a > b, Select (a > c', a, c'), Select (b > c', b, c'))) in
  pipe_op ~name:"proj" ~ins:[ "in" ] ~outs:[ "o1"; "o2" ]
    ~locals:
      [
        Op.array "t" i32 9; Op.scalar "minx" i32; Op.scalar "miny" i32; Op.scalar "maxx" i32;
        Op.scalar "maxy" i32; Op.scalar "z" i32;
      ]
    [
      for_ "i" 0 n_triangles
        ([
           for_ ~pipeline:false "j" 0 9 [ read_at "t" (v "j") "in" ];
           assign "minx" (vmin3 ("t".%[c i32 0]) ("t".%[c i32 3]) ("t".%[c i32 6]));
           assign "maxx" (vmax3 ("t".%[c i32 0]) ("t".%[c i32 3]) ("t".%[c i32 6]));
           assign "miny" (vmin3 ("t".%[c i32 1]) ("t".%[c i32 4]) ("t".%[c i32 7]));
           assign "maxy" (vmax3 ("t".%[c i32 1]) ("t".%[c i32 4]) ("t".%[c i32 7]));
           assign "z"
             Expr.(("t".%[c i32 2] + "t".%[c i32 5] + "t".%[c i32 8]) / c i32 3);
         ]
        @ List.concat_map
            (fun port ->
              [
                write port (v "minx"); write port (v "miny"); write port (v "maxx");
                write port (v "maxy"); write port (v "z");
              ])
            [ "o1"; "o2" ]);
    ]

(* Rasterize triangles into the region [row0, row0+half): bounding-box
   fill with a z-buffer, streamed out at the end of the frame. *)
let rast name row0 =
  pipe_op ~name ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:
      [
        Op.array "zbuf" i32 (half * width);
        Op.scalar "minx" i32; Op.scalar "miny" i32; Op.scalar "maxx" i32; Op.scalar "maxy" i32;
        Op.scalar "z" i32; Op.scalar "row" i32;
      ]
    [
      for_ "i" 0 (half * width) [ set "zbuf" (v "i") (c i32 background) ];
      for_ ~pipeline:false "i" 0 n_triangles
        [
          read "minx" "in"; read "miny" "in"; read "maxx" "in"; read "maxy" "in"; read "z" "in";
          for_ ~pipeline:false "r" 0 half
            [
              assign "row" Expr.(v "r" + c i32 row0);
              for_ "cc" 0 width
                [
                  if_
                    Expr.(
                      v "row" >= v "miny" && v "row" <= v "maxy" && v "cc" >= v "minx"
                      && v "cc" <= v "maxx"
                      && v "z" < "zbuf".%[(v "r" * c i32 width) + v "cc"])
                    [ set "zbuf" Expr.((v "r" * c i32 width) + v "cc") (v "z") ]
                    [];
                ];
            ];
        ];
      for_ "i" 0 (half * width) [ write "out" ("zbuf".%[v "i"]) ];
    ]

let merge =
  pipe_op ~name:"zmerge" ~ins:[ "top"; "bot" ] ~outs:[ "out" ]
    ~locals:[ Op.scalar "x" i32 ]
    [
      for_ "i" 0 (half * width) [ read "x" "top"; write "out" (v "x") ];
      for_ "i" 0 (half * width) [ read "x" "bot"; write "out" (v "x") ];
    ]

let graph ?(target = Graph.Hw { page_hint = None }) () =
  let ch = Graph.channel in
  Graph.make ~name:"rendering"
    ~channels:
      [
        ch "tri_in"; ch ~depth:64 "c_top"; ch ~depth:64 "c_bot"; ch ~depth:256 "c_zt";
        ch ~depth:256 "c_zb"; ch "frame_out";
      ]
    ~instances:
      [
        Graph.instance ~target proj [ ("in", "tri_in"); ("o1", "c_top"); ("o2", "c_bot") ];
        Graph.instance ~target (rast "rast_top" 0) [ ("in", "c_top"); ("out", "c_zt") ];
        Graph.instance ~target (rast "rast_bot" half) [ ("in", "c_bot"); ("out", "c_zb") ];
        Graph.instance ~target merge [ ("top", "c_zt"); ("bot", "c_zb"); ("out", "frame_out") ];
      ]
    ~inputs:[ "tri_in" ] ~outputs:[ "frame_out" ]

let workload ?(seed = 3) () =
  let rng = Pld_util.Rng.create seed in
  let words =
    List.concat
      (List.init n_triangles (fun _ ->
           List.concat
             (List.init 3 (fun _ ->
                  [ Pld_util.Rng.int rng width; Pld_util.Rng.int rng height; Pld_util.Rng.int rng 200 ]))))
  in
  [ ("tri_in", word_values words) ]

let reference inputs =
  let ws = Array.of_list (List.map Value.to_int (List.assoc "tri_in" inputs)) in
  let frame = Array.make (height * width) background in
  for t = 0 to n_triangles - 1 do
    let g i = ws.((9 * t) + i) in
    let xs = [ g 0; g 3; g 6 ] and ys = [ g 1; g 4; g 7 ] in
    let minx = List.fold_left min max_int xs and maxx = List.fold_left max 0 xs in
    let miny = List.fold_left min max_int ys and maxy = List.fold_left max 0 ys in
    let z = (g 2 + g 5 + g 8) / 3 in
    for r = miny to maxy do
      for cc = minx to maxx do
        if r >= 0 && r < height && cc >= 0 && cc < width then begin
          let i = (r * width) + cc in
          if z < frame.(i) then frame.(i) <- z
        end
      done
    done
  done;
  frame

let check ~inputs outputs =
  let expect = reference inputs in
  let got = List.map Value.to_int (List.assoc "frame_out" outputs) in
  List.length got = Array.length expect && List.for_all2 ( = ) got (Array.to_list expect)
