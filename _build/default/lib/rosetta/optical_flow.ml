open Pld_ir
open Dsl

let height = 16
let width = 16
let npix = height * width
let hmax = height - 2
let wmax = width - 2

(* ---------- operators ---------- *)

let unpack =
  pipe_op ~name:"unpack" ~ins:[ "in" ] ~outs:[ "o1"; "o2" ]
    ~locals:[ Op.scalar "cur" u32; Op.scalar "prev" u32 ]
    [
      for_ "i" 0 npix
        [
          read "cur" "in";
          read "prev" "in";
          write "o1" (v "cur");
          write "o2" Expr.(v "cur" lor (v "prev" lsl c i32 16));
        ];
    ]

let grad_xy =
  let k r c' = Expr.(Idx ("img", (v r * c i32 width) + c')) in
  pipe_op ~name:"grad_xy" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:[ Op.array "img" i32 npix; Op.scalar "gx" fx32; Op.scalar "gy" fx32 ]
    [
      for_ "i" 0 npix [ read_at "img" (v "i") "in" ];
      for_ ~pipeline:false "r" 0 height
        [
          for_ "cc" 0 width
            [
              if_
                Expr.(
                  v "r" >= c i32 1 && v "r" <= c i32 hmax
                  && v "cc" >= c i32 1
                  && v "cc" <= c i32 wmax)
                [
                  assign "gx"
                    Expr.(
                      Cast (fx32, k "r" (v "cc" + c i32 1) - k "r" (v "cc" - c i32 1))
                      * cf fx32 0.5);
                  assign "gy"
                    Expr.(
                      Cast
                        ( fx32,
                          Idx ("img", ((v "r" + c i32 1) * c i32 width) + v "cc")
                          - Idx ("img", ((v "r" - c i32 1) * c i32 width) + v "cc") )
                      * cf fx32 0.5);
                ]
                [ assign "gx" (cf fx32 0.0); assign "gy" (cf fx32 0.0) ];
              write "out" (v "gx");
              write "out" (v "gy");
            ];
        ];
    ]

let grad_z =
  pipe_op ~name:"grad_z" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:[ Op.scalar "p" u32; Op.scalar "gz" fx32 ]
    [
      for_ "i" 0 npix
        [
          read "p" "in";
          assign "gz"
            Expr.(
              Cast
                ( fx32,
                  Cast (i32, v "p" land c u32 0xFFFF) - Cast (i32, v "p" lsr c u32 16) ));
          write "out" (v "gz");
        ];
    ]

(* Vertical [0.25, 0.5, 0.25] blur over gx, gy, gz. *)
let weight_y =
  let blur arr out =
    if_
      Expr.(v "r" >= c i32 1 && v "r" <= c i32 hmax)
      [
        assign out
          Expr.(
            (Idx (arr, v "k" - c i32 width) * cf fx32 0.25)
            + (Idx (arr, v "k") * cf fx32 0.5)
            + (Idx (arr, v "k" + c i32 width) * cf fx32 0.25));
      ]
      [ assign out (cf fx32 0.0) ]
  in
  pipe_op ~name:"weight_y" ~ins:[ "gxy"; "gz" ] ~outs:[ "out" ]
    ~locals:
      [
        Op.array "bgx" fx32 npix; Op.array "bgy" fx32 npix; Op.array "bgz" fx32 npix;
        Op.scalar "k" i32; Op.scalar "wx" fx32; Op.scalar "wy" fx32; Op.scalar "wz" fx32;
      ]
    [
      for_ "i" 0 npix
        [ read_at "bgx" (v "i") "gxy"; read_at "bgy" (v "i") "gxy"; read_at "bgz" (v "i") "gz" ];
      for_ ~pipeline:false "r" 0 height
        [
          for_ "cc" 0 width
            [
              assign "k" Expr.((v "r" * c i32 width) + v "cc");
              blur "bgx" "wx";
              blur "bgy" "wy";
              blur "bgz" "wz";
              write "out" (v "wx");
              write "out" (v "wy");
              write "out" (v "wz");
            ];
        ];
    ]

let tensor_names = [| "txx"; "tyy"; "tzz"; "txy"; "txz"; "tyz" |]

(* Outer products of the gradient vector, then vertical smoothing. *)
let tensor_y =
  let products =
    [
      ("txx", "wx", "wx"); ("tyy", "wy", "wy"); ("tzz", "wz", "wz");
      ("txy", "wx", "wy"); ("txz", "wx", "wz"); ("tyz", "wy", "wz");
    ]
  in
  let blur arr out =
    if_
      Expr.(v "r" >= c i32 1 && v "r" <= c i32 hmax)
      [
        assign out
          Expr.(
            (Idx (arr, v "k" - c i32 width) * cf fx32 0.25)
            + (Idx (arr, v "k") * cf fx32 0.5)
            + (Idx (arr, v "k" + c i32 width) * cf fx32 0.25));
      ]
      [ assign out (Idx (arr, v "k")) ]
  in
  pipe_op ~name:"tensor_y" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:
      (List.map (fun (n, _, _) -> Op.array n fx32 npix) products
      @ [
          Op.scalar "wx" fx32; Op.scalar "wy" fx32; Op.scalar "wz" fx32; Op.scalar "k" i32;
          Op.scalar "acc" fx32;
        ])
    [
      for_ "i" 0 npix
        ([ read "wx" "in"; read "wy" "in"; read "wz" "in" ]
        @ List.map (fun (n, a, b) -> set n (v "i") Expr.(v a * v b)) products);
      for_ ~pipeline:false "r" 0 height
        [
          for_ "cc" 0 width
            ([ assign "k" Expr.((v "r" * c i32 width) + v "cc") ]
            @ List.concat_map
                (fun (n, _, _) -> [ blur n "acc"; write "out" (v "acc") ])
                products);
        ];
    ]

(* Horizontal smoothing of the six tensor components. *)
let tensor_x =
  let blur arr out =
    if_
      Expr.(v "cc" >= c i32 1 && v "cc" <= c i32 wmax)
      [
        assign out
          Expr.(
            (Idx (arr, v "k" - c i32 1) * cf fx32 0.25)
            + (Idx (arr, v "k") * cf fx32 0.5)
            + (Idx (arr, v "k" + c i32 1) * cf fx32 0.25));
      ]
      [ assign out (Idx (arr, v "k")) ]
  in
  pipe_op ~name:"tensor_x" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:
      (Array.to_list (Array.map (fun n -> Op.array n fx32 npix) tensor_names)
      @ [ Op.scalar "k" i32; Op.scalar "acc" fx32 ])
    [
      for_ "i" 0 npix
        (Array.to_list (Array.map (fun n -> read_at n (v "i") "in") tensor_names));
      for_ ~pipeline:false "r" 0 height
        [
          for_ "cc" 0 width
            ([ assign "k" Expr.((v "r" * c i32 width) + v "cc") ]
            @ List.concat_map
                (fun n -> [ blur n "acc"; write "out" (v "acc") ])
                (Array.to_list tensor_names));
        ];
    ]

(* Fig. 2(d): solve the 2x2 Lucas-Kanade system per pixel. *)
let flow_calc =
  pipe_op ~name:"flow_calc" ~ins:[ "in" ] ~outs:[ "out" ]
    ~locals:
      [
        Op.array "t" fx32 6; Op.scalar "denom" fx64; Op.scalar "nu" fx64; Op.scalar "nv" fx64;
        Op.scalar "u" fx32; Op.scalar "w" fx32;
      ]
    [
      for_ "i" 0 npix
        [
          for_ ~pipeline:false "j" 0 6 [ read_at "t" (v "j") "in" ];
          Op.Printf ("pixel", [ v "i" ]);
          assign "denom" Expr.((idx "t" (c i32 0) * idx "t" (c i32 1)) - (idx "t" (c i32 3) * idx "t" (c i32 3)));
          if_
            Expr.(v "denom" = cf fx64 0.0)
            [ assign "u" (cf fx32 0.0); assign "w" (cf fx32 0.0) ]
            [
              assign "nu"
                Expr.((idx "t" (c i32 5) * idx "t" (c i32 3)) - (idx "t" (c i32 4) * idx "t" (c i32 1)));
              assign "nv"
                Expr.((idx "t" (c i32 4) * idx "t" (c i32 3)) - (idx "t" (c i32 5) * idx "t" (c i32 0)));
              assign "u" Expr.(v "nu" / v "denom");
              assign "w" Expr.(v "nv" / v "denom");
            ];
          write "out" (v "u");
          write "out" (v "w");
        ];
    ]

(* ---------- graph ---------- *)

let graph ?(target = Graph.Hw { page_hint = None }) () =
  let ch = Graph.channel in
  Graph.make ~name:"optical_flow"
    ~channels:
      [
        (* Frame-buffering stages need frame-sized FIFOs to avoid
           back-pressure deadlock; this is the paper's observation that
           the -O3 stitching FIFOs consume significant BRAM (§7.5). *)
        ch "frames_in"; ch ~depth:(2 * npix) "c_cur"; ch ~depth:(2 * npix) "c_pair";
        ch ~depth:(2 * npix) "c_gxy"; ch ~depth:(2 * npix) "c_gz"; ch ~depth:(3 * npix) "c_w";
        ch ~depth:(6 * npix) "c_ty"; ch ~depth:(6 * npix) "c_tx";
        ch "flow_out";
      ]
    ~instances:
      [
        Graph.instance ~target unpack [ ("in", "frames_in"); ("o1", "c_cur"); ("o2", "c_pair") ];
        Graph.instance ~target grad_xy [ ("in", "c_cur"); ("out", "c_gxy") ];
        Graph.instance ~target grad_z [ ("in", "c_pair"); ("out", "c_gz") ];
        Graph.instance ~target weight_y [ ("gxy", "c_gxy"); ("gz", "c_gz"); ("out", "c_w") ];
        Graph.instance ~target tensor_y [ ("in", "c_w"); ("out", "c_ty") ];
        Graph.instance ~target tensor_x [ ("in", "c_ty"); ("out", "c_tx") ];
        Graph.instance ~target flow_calc [ ("in", "c_tx"); ("out", "flow_out") ];
      ]
    ~inputs:[ "frames_in" ] ~outputs:[ "flow_out" ]

(* ---------- workload ---------- *)

let frames ?(seed = 11) () =
  let rng = Pld_util.Rng.create seed in
  let base r cc = 80 + (8 * r) + (5 * cc) + Pld_util.Rng.int rng 12 in
  let prev = Array.init npix (fun i -> base (i / width) (i mod width) land 0xFF) in
  (* The current frame is the previous one shifted one pixel right. *)
  let cur =
    Array.init npix (fun i ->
        let r = i / width and cc = i mod width in
        if cc = 0 then prev.(i) else prev.((r * width) + cc - 1))
  in
  (cur, prev)

let workload ?seed () =
  let cur, prev = frames ?seed () in
  let words = List.concat (List.init npix (fun i -> [ cur.(i); prev.(i) ])) in
  [ ("frames_in", word_values words) ]

(* ---------- float reference ---------- *)

let reference inputs =
  let words = List.map Value.to_int (List.assoc "frames_in" inputs) in
  let cur = Array.make npix 0.0 and prev = Array.make npix 0.0 in
  List.iteri
    (fun i w -> if i mod 2 = 0 then cur.(i / 2) <- float_of_int w else prev.(i / 2) <- float_of_int w)
    words;
  let at a r cc = if r < 0 || r >= height || cc < 0 || cc >= width then 0.0 else a.((r * width) + cc) in
  let interior r cc = r >= 1 && r <= height - 2 && cc >= 1 && cc <= width - 2 in
  let gx = Array.make npix 0.0 and gy = Array.make npix 0.0 and gz = Array.make npix 0.0 in
  for r = 0 to height - 1 do
    for cc = 0 to width - 1 do
      let i = (r * width) + cc in
      if interior r cc then begin
        gx.(i) <- (at cur r (cc + 1) -. at cur r (cc - 1)) *. 0.5;
        gy.(i) <- (at cur (r + 1) cc -. at cur (r - 1) cc) *. 0.5
      end;
      gz.(i) <- cur.(i) -. prev.(i)
    done
  done;
  let vblur ?(border_zero = true) a =
    Array.init npix (fun i ->
        let r = i / width and cc = i mod width in
        if r >= 1 && r <= height - 2 then
          (0.25 *. at a (r - 1) cc) +. (0.5 *. at a r cc) +. (0.25 *. at a (r + 1) cc)
        else if border_zero then 0.0
        else a.(i))
  in
  let wx = vblur gx and wy = vblur gy and wz = vblur gz in
  let quant x = Float.of_int (int_of_float (Float.round (x *. 32768.0))) /. 32768.0 in
  let prod a b = Array.init npix (fun i -> quant (a.(i) *. b.(i))) in
  let comps = [| prod wx wx; prod wy wy; prod wz wz; prod wx wy; prod wx wz; prod wy wz |] in
  let smooth_y = Array.map (fun a -> vblur ~border_zero:false a) comps in
  let hblur a =
    Array.init npix (fun i ->
        let r = i / width and cc = i mod width in
        if cc >= 1 && cc <= width - 2 then
          (0.25 *. at a r (cc - 1)) +. (0.5 *. at a r cc) +. (0.25 *. at a r (cc + 1))
        else a.(i))
  in
  let t = Array.map hblur smooth_y in
  Array.init npix (fun i ->
      let txx = t.(0).(i) and tyy = t.(1).(i) and txy = t.(3).(i) and txz = t.(4).(i) and tyz = t.(5).(i) in
      let denom = (txx *. tyy) -. (txy *. txy) in
      if Float.abs denom < 1e-9 then (0.0, 0.0)
      else (((tyz *. txy) -. (txz *. tyy)) /. denom, ((txz *. txy) -. (tyz *. txx)) /. denom))

let check ~inputs outputs =
  let expect = reference inputs in
  let out = List.assoc "flow_out" outputs in
  if List.length out <> 2 * npix then false
  else begin
    let arr = Array.of_list out in
    let ok = ref true in
    for i = 0 to npix - 1 do
      let u = fx_of_word arr.(2 * i) and w = fx_of_word arr.((2 * i) + 1) in
      let eu, ew = expect.(i) in
      (* Skip ill-conditioned pixels where quantization flips the
         guard; elsewhere demand closeness. *)
      let t0 = fx_of_word arr.(2 * i) in
      ignore t0;
      if Float.abs eu < 50.0 && Float.abs ew < 50.0 then
        if Float.abs (u -. eu) > 0.35 || Float.abs (w -. ew) > 0.35 then ok := false
    done;
    !ok
  end
