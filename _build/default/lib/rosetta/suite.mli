(** Uniform access to all six Rosetta benchmarks for the test and
    benchmark harnesses. *)

open Pld_ir

type bench = {
  name : string;
  paper_name : string;  (** row label used in the paper's tables *)
  graph : Graph.target -> Graph.t;
  workload : unit -> (string * Value.t list) list;
  check : inputs:(string * Value.t list) list -> (string * Value.t list) list -> bool;
}

val all : bench list
val find : string -> bench
(** Raises [Not_found]. *)

val names : string list
