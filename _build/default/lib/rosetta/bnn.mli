(** Rosetta binarized neural network (§7.2): a small BNN classifier —
    fixed-point first convolution producing binary activations, a
    binary XNOR-popcount convolution, pooling, two binary fully
    connected layers and an argmax — with the weight coefficients held
    in on-chip memory, one operator per stage as in the paper. *)

open Pld_ir

val image_size : int
val n_images : int
val n_classes : int

val graph : ?seed:int -> ?target:Graph.target -> unit -> Graph.t
(** Input ["images_in"]: 64 pixel words per image (4-bit values);
    output ["class_out"]: one class word per image. *)

val workload : ?seed:int -> unit -> (string * Value.t list) list
val reference : ?seed:int -> (string * Value.t list) list -> int list
val check : ?seed:int -> inputs:(string * Value.t list) list -> (string * Value.t list) list -> bool
