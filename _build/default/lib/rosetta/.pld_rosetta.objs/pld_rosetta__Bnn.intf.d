lib/rosetta/bnn.mli: Graph Pld_ir Value
