lib/rosetta/suite.mli: Graph Pld_ir Value
