lib/rosetta/spam_filter.ml: Array Dsl Expr Float Fun Graph List Op Pld_ir Pld_util Printf Value
