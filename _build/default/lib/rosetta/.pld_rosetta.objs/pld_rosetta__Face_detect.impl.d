lib/rosetta/face_detect.ml: Array Dsl Expr Graph List Op Pld_ir Pld_util Value
