lib/rosetta/rendering.mli: Graph Pld_ir Value
