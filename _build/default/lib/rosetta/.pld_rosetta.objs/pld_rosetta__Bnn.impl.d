lib/rosetta/bnn.ml: Array Dsl Dtype Expr Graph Int64 List Op Pld_ir Pld_util Value
