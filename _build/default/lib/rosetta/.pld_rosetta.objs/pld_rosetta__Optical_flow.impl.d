lib/rosetta/optical_flow.ml: Array Dsl Expr Float Graph List Op Pld_ir Pld_util Value
