lib/rosetta/digit_recog.mli: Graph Pld_ir Value
