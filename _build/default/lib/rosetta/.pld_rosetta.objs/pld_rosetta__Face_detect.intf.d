lib/rosetta/face_detect.mli: Graph Pld_ir Value
