lib/rosetta/digit_recog.ml: Array Dsl Expr Graph Int64 List Op Pld_ir Pld_util Printf Value
