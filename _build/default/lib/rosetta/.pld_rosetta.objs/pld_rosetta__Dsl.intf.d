lib/rosetta/dsl.mli: Dtype Expr Graph Op Pld_ir Value
