lib/rosetta/suite.ml: Bnn Digit_recog Face_detect Graph List Optical_flow Pld_ir Rendering Spam_filter Value
