lib/rosetta/dsl.ml: Dtype Expr Graph List Op Pld_ir Printf Value
