lib/rosetta/spam_filter.mli: Graph Pld_ir Value
