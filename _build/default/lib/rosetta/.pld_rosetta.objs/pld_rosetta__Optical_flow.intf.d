lib/rosetta/optical_flow.mli: Graph Pld_ir Value
