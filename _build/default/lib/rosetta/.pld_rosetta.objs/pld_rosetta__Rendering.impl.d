lib/rosetta/rendering.ml: Array Dsl Expr Graph List Op Pld_ir Pld_util Value
