(** Arbitrary-precision integers with Xilinx [ap_int]/[ap_uint]
    semantics: fixed declared width, two's-complement wrap on overflow,
    explicit signedness.

    Binary operations follow the HLS rules: operands are first extended
    to a common width (the max of the two, +1 when mixing signedness so
    the unsigned operand still fits), the operation is performed, and
    the result keeps that common width. Assignment back to a narrower
    variable truncates — that is {!resize}'s job. *)

type t

val width : t -> int
val signed : t -> bool
val bits : t -> Bits.t

val make : signed:bool -> Bits.t -> t
val of_int : ?signed:bool -> width:int -> int -> t
(** [signed] defaults to [true] (ap_int rather than ap_uint). *)

val of_int64 : ?signed:bool -> width:int -> int64 -> t
val to_int64 : t -> int64
(** Value according to signedness (sign- or zero-extended to 64 bits). *)

val to_int : t -> int
(** Like {!to_int64} but as a native int; truncates above 62 bits. *)

val to_float : t -> float

val resize : signed:bool -> width:int -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val rem : t -> t -> t
val neg : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t
val shift_left : t -> int -> t
val shift_right : t -> int -> t
(** Arithmetic for signed, logical for unsigned. *)

val compare : t -> t -> int
(** Value comparison (handles mixed signedness). *)

val equal : t -> t -> bool
(** Value equality. *)

val min_value : signed:bool -> width:int -> t
val max_value : signed:bool -> width:int -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
