type t = { signed : bool; bits : Bits.t }

let width t = Bits.width t.bits
let signed t = t.signed
let bits t = t.bits
let make ~signed bits = { signed; bits }

let of_int64 ?(signed = true) ~width v = { signed; bits = Bits.of_int64 ~width v }
let of_int ?signed ~width v = of_int64 ?signed ~width (Int64.of_int v)

let to_int64 t = if t.signed then Bits.to_int64_signed t.bits else Bits.to_int64_unsigned t.bits
let to_int t = Int64.to_int (to_int64 t)

let to_float t =
  (* Accurate for widths <= 64; wider values fold limb by limb. *)
  if width t <= 64 then
    if t.signed then Int64.to_float (to_int64 t)
    else begin
      let v = Bits.to_int64_unsigned t.bits in
      if Int64.compare v 0L >= 0 then Int64.to_float v
      else Int64.to_float (Int64.shift_right_logical v 1) *. 2.0 +. Int64.to_float (Int64.logand v 1L)
    end
  else begin
    let mag = if t.signed && Bits.msb t.bits then Bits.neg t.bits else t.bits in
    let w = Bits.width mag in
    let rec fold acc i =
      if i >= w then acc
      else begin
        let chunk_w = min 32 (w - i) in
        let chunk = Bits.to_int_trunc (Bits.extract mag ~hi:(i + chunk_w - 1) ~lo:i) in
        fold (acc +. (float_of_int chunk *. Float.pow 2.0 (float_of_int i))) (i + chunk_w)
      end
    in
    let m = fold 0.0 0 in
    if t.signed && Bits.msb t.bits then -.m else m
  end

let resize ~signed ~width t = { signed; bits = Bits.resize ~signed:t.signed ~width t.bits }

(* Promote both operands to a common (width, signedness) per the HLS
   rules: mixing signedness yields signed, and an unsigned operand
   promoted to signed needs one extra bit. *)
let promote a b =
  let s = a.signed || b.signed in
  let extra av = if s && not av.signed then 1 else 0 in
  let w = max (width a + extra a) (width b + extra b) in
  (resize ~signed:s ~width:w a, resize ~signed:s ~width:w b, s, w)

(* Arithmetic results grow so they cannot overflow, as in ap_int:
   assignment back to a declared variable truncates via [resize]. *)
let grow2 f extra a b =
  let a', b', s, w = promote a b in
  let w' = w + extra in
  { signed = s; bits = f (Bits.resize ~signed:s ~width:w' a'.bits) (Bits.resize ~signed:s ~width:w' b'.bits) }

let add = grow2 Bits.add 1
let sub a b = { (grow2 Bits.sub 1 a b) with signed = true }

let mul a b =
  let s = a.signed || b.signed in
  let w = width a + width b in
  let wa = Bits.resize ~signed:a.signed ~width:w a.bits in
  let wb = Bits.resize ~signed:b.signed ~width:w b.bits in
  { signed = s; bits = Bits.mul wa wb }

let div a b =
  let a', b', s, _ = promote a b in
  { signed = s; bits = (if s then Bits.sdiv else Bits.udiv) a'.bits b'.bits }

let rem a b =
  let a', b', s, _ = promote a b in
  { signed = s; bits = (if s then Bits.srem else Bits.urem) a'.bits b'.bits }

let neg t = { t with bits = Bits.neg t.bits }
let logand = grow2 Bits.logand 0
let logor = grow2 Bits.logor 0
let logxor = grow2 Bits.logxor 0
let lognot t = { t with bits = Bits.lognot t.bits }

let shift_left t n = { t with bits = Bits.shift_left t.bits n }

let shift_right t n =
  { t with bits = (if t.signed then Bits.shift_right_arith else Bits.shift_right_logical) t.bits n }

let compare a b =
  let a', b', s, _ = promote a b in
  if s then Bits.compare_signed a'.bits b'.bits else Bits.compare_unsigned a'.bits b'.bits

let equal a b = compare a b = 0

let min_value ~signed ~width =
  if signed then { signed; bits = Bits.set (Bits.zero width) (width - 1) true }
  else { signed; bits = Bits.zero width }

let max_value ~signed ~width =
  if signed then { signed; bits = Bits.set (Bits.ones width) (width - 1) false }
  else { signed; bits = Bits.ones width }

let to_string t =
  if t.signed then Bits.to_decimal_signed t.bits else Bits.to_decimal_unsigned t.bits

let pp fmt t =
  Format.fprintf fmt "%s<%d>%s" (if t.signed then "ap_int" else "ap_uint") (width t) (to_string t)
