(** Arbitrary-width two's-complement bit vectors.

    This is the storage layer underneath {!Ap_int} and {!Ap_fixed}. A
    value is a raw bit pattern of a fixed [width]; signedness is an
    interpretation applied by callers (via the [_signed] variants and
    {!resize}). All arithmetic wraps modulo [2^width], matching hardware
    and the Xilinx ap_int semantics the paper's operators rely on.

    Widths from 1 to {!max_width} are supported; values are stored as
    32-bit limbs in OCaml ints. *)

type t

val max_width : int

val width : t -> int

val zero : int -> t
(** [zero w] is the all-zero vector of width [w]. *)

val one : int -> t
val ones : int -> t
(** All bits set. *)

val of_int : width:int -> int -> t
(** Two's-complement truncation of a native int to [width] bits. *)

val of_int64 : width:int -> int64 -> t

val to_int64_unsigned : t -> int64
(** Low 64 bits, zero-extended interpretation. *)

val to_int64_signed : t -> int64
(** Low 64 bits after sign-extending from [width]. *)

val to_int_trunc : t -> int
(** Low 62 bits as a native int (unsigned interpretation, truncated). *)

val get : t -> int -> bool
(** [get t i] is bit [i]; raises [Invalid_argument] out of range. *)

val set : t -> int -> bool -> t
val msb : t -> bool
val equal : t -> t -> bool
val is_zero : t -> bool

val compare_unsigned : t -> t -> int
val compare_signed : t -> t -> int
(** Both require equal widths. *)

val add : t -> t -> t
val sub : t -> t -> t
val neg : t -> t

val mul : t -> t -> t
(** Wrapping product at the operand width. *)

val mul_full : t -> t -> t
(** Exact product, width [width a + width b], operands treated unsigned. *)

val udiv : t -> t -> t
val urem : t -> t -> t
(** Unsigned division; division by zero returns all-ones / the dividend
    (the usual hardware convention) rather than raising. *)

val sdiv : t -> t -> t
val srem : t -> t -> t
(** C-style truncating signed division. [sdiv x 0] is all-ones. *)

val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t
val lognot : t -> t

val shift_left : t -> int -> t
val shift_right_logical : t -> int -> t
val shift_right_arith : t -> int -> t
(** Shift amounts larger than the width saturate to all-zeros (or the
    sign fill for arithmetic shifts). Negative amounts are invalid. *)

val resize : signed:bool -> width:int -> t -> t
(** Widen (zero- or sign-extend) or truncate to [width]. *)

val extract : t -> hi:int -> lo:int -> t
(** Bit slice [hi:lo] inclusive, width [hi - lo + 1]. *)

val concat : t -> t -> t
(** [concat hi lo] places [hi] above [lo]. *)

val popcount : t -> int

val of_hex : width:int -> string -> t
(** Parse a hexadecimal string (no prefix); raises on bad digits. *)

val to_hex : t -> string

val to_decimal_unsigned : t -> string
val to_decimal_signed : t -> string

val random : Pld_util.Rng.t -> width:int -> t

val pp : Format.formatter -> t -> unit
(** Renders as [width'hHEX]. *)
