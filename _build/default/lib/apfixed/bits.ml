(* Representation: [limbs.(k)] holds bits [32k .. 32k+31] as an int in
   [0, 2^32). The top limb is always masked so unused bits are zero —
   every constructor and operation re-normalizes. *)

type t = { width : int; limbs : int array }

let max_width = 4096
let limb_bits = 32
let limb_mask = 0xFFFFFFFF

let nlimbs width = (width + limb_bits - 1) / limb_bits

let check_width width =
  if width < 1 || width > max_width then
    invalid_arg (Printf.sprintf "Bits: width %d out of range [1,%d]" width max_width)

let top_mask width =
  let rem = width mod limb_bits in
  if rem = 0 then limb_mask else (1 lsl rem) - 1

let normalize t =
  let n = Array.length t.limbs in
  t.limbs.(n - 1) <- t.limbs.(n - 1) land top_mask t.width;
  t

let zero width =
  check_width width;
  { width; limbs = Array.make (nlimbs width) 0 }

let width t = t.width

let copy t = { width = t.width; limbs = Array.copy t.limbs }

let of_int64 ~width v =
  check_width width;
  let t = zero width in
  let n = Array.length t.limbs in
  (* Sign-extend the int64 pattern across all limbs, then mask. *)
  let fill = if Int64.compare v 0L < 0 then limb_mask else 0 in
  for k = 0 to n - 1 do
    if k < 2 then
      t.limbs.(k) <- Int64.to_int (Int64.logand (Int64.shift_right_logical v (k * limb_bits)) 0xFFFFFFFFL)
    else t.limbs.(k) <- fill
  done;
  normalize t

let of_int ~width v = of_int64 ~width (Int64.of_int v)

let one width = of_int ~width 1

let ones width =
  let t = zero width in
  Array.fill t.limbs 0 (Array.length t.limbs) limb_mask;
  normalize t

let get t i =
  if i < 0 || i >= t.width then invalid_arg "Bits.get: index out of range";
  t.limbs.(i / limb_bits) lsr (i mod limb_bits) land 1 = 1

let set t i b =
  if i < 0 || i >= t.width then invalid_arg "Bits.set: index out of range";
  let r = copy t in
  let k = i / limb_bits and o = i mod limb_bits in
  if b then r.limbs.(k) <- r.limbs.(k) lor (1 lsl o)
  else r.limbs.(k) <- r.limbs.(k) land lnot (1 lsl o);
  r

let msb t = get t (t.width - 1)
let equal a b = a.width = b.width && a.limbs = b.limbs
let is_zero t = Array.for_all (fun l -> l = 0) t.limbs

let to_int64_unsigned t =
  let n = Array.length t.limbs in
  let lo = Int64.of_int t.limbs.(0) in
  if n = 1 then lo
  else Int64.logor lo (Int64.shift_left (Int64.of_int t.limbs.(1)) limb_bits)

let to_int64_signed t =
  let v = to_int64_unsigned t in
  if t.width >= 64 then v
  else if msb t then Int64.logor v (Int64.shift_left (-1L) t.width)
  else v

let to_int_trunc t = Int64.to_int (Int64.logand (to_int64_unsigned t) 0x3FFFFFFFFFFFFFFFL)

let require_same_width name a b =
  if a.width <> b.width then
    invalid_arg (Printf.sprintf "Bits.%s: width mismatch (%d vs %d)" name a.width b.width)

let compare_unsigned a b =
  require_same_width "compare_unsigned" a b;
  let rec go k = if k < 0 then 0 else if a.limbs.(k) <> b.limbs.(k) then compare a.limbs.(k) b.limbs.(k) else go (k - 1) in
  go (Array.length a.limbs - 1)

let compare_signed a b =
  require_same_width "compare_signed" a b;
  match (msb a, msb b) with
  | true, false -> -1
  | false, true -> 1
  | _ -> compare_unsigned a b

let add a b =
  require_same_width "add" a b;
  let r = zero a.width in
  let carry = ref 0 in
  for k = 0 to Array.length r.limbs - 1 do
    let s = a.limbs.(k) + b.limbs.(k) + !carry in
    r.limbs.(k) <- s land limb_mask;
    carry := s lsr limb_bits
  done;
  normalize r

let lognot t =
  let r = copy t in
  for k = 0 to Array.length r.limbs - 1 do
    r.limbs.(k) <- lnot r.limbs.(k) land limb_mask
  done;
  normalize r

let neg t = add (lognot t) (one t.width)
let sub a b = add a (neg b)

let map2 f a b =
  let r = zero a.width in
  for k = 0 to Array.length r.limbs - 1 do
    r.limbs.(k) <- f a.limbs.(k) b.limbs.(k) land limb_mask
  done;
  normalize r

let logand a b = require_same_width "logand" a b; map2 ( land ) a b
let logor a b = require_same_width "logor" a b; map2 ( lor ) a b
let logxor a b = require_same_width "logxor" a b; map2 ( lxor ) a b

let shift_left t n =
  if n < 0 then invalid_arg "Bits.shift_left: negative amount";
  let r = zero t.width in
  if n >= t.width then r
  else begin
    let limb_shift = n / limb_bits and bit_shift = n mod limb_bits in
    let nl = Array.length r.limbs in
    for k = nl - 1 downto 0 do
      let src = k - limb_shift in
      let v =
        if src < 0 then 0
        else begin
          let lo = t.limbs.(src) lsl bit_shift land limb_mask in
          let hi = if bit_shift = 0 || src = 0 then 0 else t.limbs.(src - 1) lsr (limb_bits - bit_shift) in
          lo lor hi
        end
      in
      r.limbs.(k) <- v
    done;
    normalize r
  end

let shift_right_logical t n =
  if n < 0 then invalid_arg "Bits.shift_right_logical: negative amount";
  let r = zero t.width in
  if n >= t.width then r
  else begin
    let limb_shift = n / limb_bits and bit_shift = n mod limb_bits in
    let nl = Array.length r.limbs in
    for k = 0 to nl - 1 do
      let src = k + limb_shift in
      let v =
        if src >= nl then 0
        else begin
          let lo = t.limbs.(src) lsr bit_shift in
          let hi = if bit_shift = 0 || src + 1 >= nl then 0 else t.limbs.(src + 1) lsl (limb_bits - bit_shift) land limb_mask in
          lo lor hi
        end
      in
      r.limbs.(k) <- v
    done;
    normalize r
  end

let shift_right_arith t n =
  if n < 0 then invalid_arg "Bits.shift_right_arith: negative amount";
  if not (msb t) then shift_right_logical t n
  else begin
    let n = min n t.width in
    let shifted = shift_right_logical t n in
    (* Fill the vacated top [n] bits with ones. *)
    let fill = shift_left (ones t.width) (t.width - n) in
    logor shifted fill
  end

let resize ~signed ~width:w t =
  check_width w;
  let r = zero w in
  let nl = Array.length r.limbs and snl = Array.length t.limbs in
  let fill = if signed && msb t then limb_mask else 0 in
  for k = 0 to nl - 1 do
    r.limbs.(k) <- (if k < snl then t.limbs.(k) else fill)
  done;
  (* When sign-extending a source whose top limb is partial, smear the
     sign through the top source limb first. *)
  if signed && msb t && t.width mod limb_bits <> 0 && w > t.width then begin
    let k = snl - 1 in
    r.limbs.(k) <- r.limbs.(k) lor (lnot (top_mask t.width) land limb_mask)
  end;
  normalize r

let mul_full a b =
  let w = a.width + b.width in
  check_width w;
  let r = zero w in
  let na = Array.length a.limbs and nb = Array.length b.limbs in
  let nr = Array.length r.limbs in
  (* Schoolbook multiplication on 16-bit half-limbs to stay within the
     63-bit native int during partial products. *)
  let half x i = if i land 1 = 0 then x land 0xFFFF else (x lsr 16) land 0xFFFF in
  let acc = Array.make (2 * nr + 2) 0 in
  for i = 0 to (2 * na) - 1 do
    for j = 0 to (2 * nb) - 1 do
      let p = half a.limbs.(i / 2) i * half b.limbs.(j / 2) j in
      let pos = i + j in
      acc.(pos) <- acc.(pos) + (p land 0xFFFF);
      acc.(pos + 1) <- acc.(pos + 1) + (p lsr 16)
    done
  done;
  (* Propagate carries across 16-bit cells. *)
  let carry = ref 0 in
  for k = 0 to (2 * nr) - 1 do
    let v = acc.(k) + !carry in
    acc.(k) <- v land 0xFFFF;
    carry := v lsr 16
  done;
  for k = 0 to nr - 1 do
    r.limbs.(k) <- acc.(2 * k) lor (acc.((2 * k) + 1) lsl 16)
  done;
  normalize r

let mul a b =
  require_same_width "mul" a b;
  resize ~signed:false ~width:a.width (mul_full a b)

(* Restoring long division, bit by bit. Slow but simple; operand widths
   in this code base are <= 128 so this is never a bottleneck. *)
let udivmod a b =
  require_same_width "udivmod" a b;
  let w = a.width in
  if is_zero b then (ones w, copy a)
  else begin
    let q = zero w in
    let r = ref (zero w) in
    let q = ref q in
    for i = w - 1 downto 0 do
      r := shift_left !r 1;
      if get a i then r := logor !r (one w);
      if compare_unsigned !r b >= 0 then begin
        r := sub !r b;
        q := set !q i true
      end
    done;
    (!q, !r)
  end

let udiv a b = fst (udivmod a b)
let urem a b = snd (udivmod a b)

let sdivmod a b =
  let negate_a = msb a and negate_b = msb b in
  let abs v = if msb v then neg v else v in
  let q, r = udivmod (abs a) (abs b) in
  let q = if negate_a <> negate_b then neg q else q in
  let r = if negate_a then neg r else r in
  if is_zero b then (ones a.width, copy a) else (q, r)

let sdiv a b = fst (sdivmod a b)
let srem a b = snd (sdivmod a b)

let extract t ~hi ~lo =
  if lo < 0 || hi >= t.width || hi < lo then invalid_arg "Bits.extract: bad range";
  resize ~signed:false ~width:(hi - lo + 1) (shift_right_logical t lo)

let concat hi lo =
  let w = hi.width + lo.width in
  check_width w;
  logor (shift_left (resize ~signed:false ~width:w hi) lo.width) (resize ~signed:false ~width:w lo)

let popcount t =
  Array.fold_left
    (fun acc limb ->
      let rec count v acc = if v = 0 then acc else count (v lsr 1) (acc + (v land 1)) in
      count limb acc)
    0 t.limbs

let hex_digit c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> invalid_arg (Printf.sprintf "Bits.of_hex: bad digit %c" c)

let of_hex ~width s =
  check_width width;
  let t = ref (zero width) in
  String.iter (fun c -> t := logor (shift_left !t 4) (of_int ~width (hex_digit c))) s;
  !t

let to_hex t =
  let digits = (t.width + 3) / 4 in
  let buf = Bytes.create digits in
  for d = 0 to digits - 1 do
    let lo = d * 4 in
    let v = ref 0 in
    for b = 3 downto 0 do
      let i = lo + b in
      v := (!v lsl 1) lor (if i < t.width && get t i then 1 else 0)
    done;
    Bytes.set buf (digits - 1 - d) "0123456789abcdef".[!v]
  done;
  Bytes.to_string buf

let to_decimal_unsigned t =
  if is_zero t then "0"
  else begin
    (* Work at >= 4 bits so the divisor 10 does not wrap to zero. *)
    let t = if t.width < 4 then resize ~signed:false ~width:4 t else t in
    let ten = of_int ~width:t.width 10 in
    let rec go v acc =
      if is_zero v then acc
      else begin
        let q, r = udivmod v ten in
        go q (String.make 1 (Char.chr (Char.code '0' + to_int_trunc r)) ^ acc)
      end
    in
    go t ""
  end

let to_decimal_signed t =
  if msb t then "-" ^ to_decimal_unsigned (neg t) else to_decimal_unsigned t

let random rng ~width =
  let t = zero width in
  for k = 0 to Array.length t.limbs - 1 do
    t.limbs.(k) <- Int64.to_int (Int64.logand (Pld_util.Rng.bits64 rng) 0xFFFFFFFFL)
  done;
  normalize t

let pp fmt t = Format.fprintf fmt "%d'h%s" t.width (to_hex t)
