(** Fixed-point numbers with Xilinx [ap_fixed<W,I>] semantics.

    A value has total width [W], integer bits [I] (including the sign
    bit when signed) and therefore [W - I] fractional bits; its numeric
    value is [raw * 2^(I - W)]. Arithmetic grows precision exactly as
    the HLS library does (full-precision intermediates); {!convert}
    performs the truncate-and-wrap that happens on assignment. *)

type t

val width : t -> int
val int_bits : t -> int
val frac_bits : t -> int
val signed : t -> bool
val raw : t -> Bits.t

val make : signed:bool -> int_bits:int -> Bits.t -> t
(** [make ~signed ~int_bits bits] uses [Bits.width bits] as [W].
    [int_bits] may exceed the width or be negative (pure-fraction
    formats), as in the Xilinx library. *)

val zero : signed:bool -> width:int -> int_bits:int -> t

val of_float : signed:bool -> width:int -> int_bits:int -> float -> t
(** Round to nearest, wrap on overflow (AP_RND-ish construction used
    only at the workload boundary). *)

val to_float : t -> float

val of_ap_int : Ap_int.t -> t
(** Integer reinterpreted as fixed point with [I = W]. *)

val to_ap_int : t -> Ap_int.t
(** Truncate toward negative infinity to an integer of width
    [max int_bits 1]. *)

val convert : signed:bool -> width:int -> int_bits:int -> t -> t
(** Assignment conversion: truncate extra fraction bits (toward
    negative infinity, AP_TRN) and wrap out-of-range integer bits
    (AP_WRAP) — the Xilinx defaults. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Full-precision intermediates: add/sub align fraction bits and grow
    one integer bit; mul sums widths and integer bits; div produces
    [W1 + W2] total bits with [I1 + (W2 - I2)] integer bits (enough for
    the exact quotient magnitude). Division by zero yields the all-ones
    raw pattern, mirroring {!Bits.sdiv}. *)

val neg : t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val is_zero : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
