type t = { signed : bool; int_bits : int; bits : Bits.t }

let width t = Bits.width t.bits
let int_bits t = t.int_bits
let frac_bits t = width t - t.int_bits
let signed t = t.signed
let raw t = t.bits
let make ~signed ~int_bits bits = { signed; int_bits; bits }

let zero ~signed ~width ~int_bits = { signed; int_bits; bits = Bits.zero width }

let of_float ~signed ~width ~int_bits x =
  let frac = width - int_bits in
  let scaled = Float.round (x *. Float.pow 2.0 (float_of_int frac)) in
  (* Workload-boundary constructor: values fitting in 64 bits only. *)
  { signed; int_bits; bits = Bits.of_int64 ~width (Int64.of_float scaled) }

let to_float t =
  let v = Ap_int.to_float (Ap_int.make ~signed:t.signed t.bits) in
  v *. Float.pow 2.0 (float_of_int (-frac_bits t))

let of_ap_int a = { signed = Ap_int.signed a; int_bits = Ap_int.width a; bits = Ap_int.bits a }

(* Shift the raw pattern so the value gains [diff] fraction bits
   (positive widens to the right, negative truncates toward -inf), at a
   result width of [w], then reinterpret under the caller's sign. *)
let reraw ~own_signed ~w raw diff =
  if diff >= 0 then begin
    let ext = Bits.resize ~signed:own_signed ~width:(max w (Bits.width raw + diff)) raw in
    Bits.resize ~signed:own_signed ~width:w (Bits.shift_left ext diff)
  end
  else begin
    let shifted =
      if own_signed then Bits.shift_right_arith raw (-diff) else Bits.shift_right_logical raw (-diff)
    in
    Bits.resize ~signed:own_signed ~width:w shifted
  end

let convert ~signed ~width:w ~int_bits t =
  let diff = (w - int_bits) - frac_bits t in
  { signed; int_bits; bits = reraw ~own_signed:t.signed ~w t.bits diff }

let to_ap_int t =
  let w = max t.int_bits 1 in
  let c = convert ~signed:t.signed ~width:w ~int_bits:w t in
  Ap_int.make ~signed:t.signed c.bits

(* Bring two operands to a common signedness, fraction and width large
   enough to represent both exactly. *)
let align a b =
  let s = a.signed || b.signed in
  let f = max (frac_bits a) (frac_bits b) in
  let need v = (if s && not v.signed then 1 else 0) + v.int_bits in
  let i = max (need a) (need b) in
  let w = i + f in
  let w = max w 1 in
  let conv v = convert ~signed:s ~width:w ~int_bits:(w - f) v in
  (conv a, conv b, s, i, f)

let addsub op a b =
  let a', b', s, i, f = align a b in
  (* One growth bit so the sum/difference cannot wrap. *)
  let w = i + f + 1 in
  let widen v = Bits.resize ~signed:s ~width:w v.bits in
  { signed = s; int_bits = i + 1; bits = op (widen a') (widen b') }

let add = addsub Bits.add

(* Differences are signed even for unsigned operands. *)
let sub a b =
  let a', b', s, i, f = align a b in
  let w = i + f + 1 in
  let widen v = Bits.resize ~signed:s ~width:w v.bits in
  { signed = true; int_bits = i + 1; bits = Bits.sub (widen a') (widen b') }

let mul a b =
  let s = a.signed || b.signed in
  let w = width a + width b in
  let wa = Bits.resize ~signed:a.signed ~width:w a.bits in
  let wb = Bits.resize ~signed:b.signed ~width:w b.bits in
  { signed = s; int_bits = a.int_bits + b.int_bits; bits = Bits.mul wa wb }

let div a b =
  let s = a.signed || b.signed in
  let fa = frac_bits a and fb = frac_bits b in
  let shift = max 0 (width b + fb) in
  let fr = fa - fb + shift in
  let ir = a.int_bits + fb + 1 in
  let wr = max 1 (ir + fr) in
  let wwork = max wr (width a + shift + 1) in
  let araw = Bits.shift_left (Bits.resize ~signed:a.signed ~width:wwork a.bits) shift in
  let braw = Bits.resize ~signed:b.signed ~width:wwork b.bits in
  let q = if s then Bits.sdiv araw braw else Bits.udiv araw braw in
  { signed = s; int_bits = ir; bits = Bits.resize ~signed:s ~width:wr q }

let neg t =
  let w = width t + 1 in
  { signed = true; int_bits = t.int_bits + 1; bits = Bits.neg (Bits.resize ~signed:t.signed ~width:w t.bits) }

let compare a b =
  let a', b', s, _, _ = align a b in
  if s then Bits.compare_signed a'.bits b'.bits else Bits.compare_unsigned a'.bits b'.bits

let equal a b = compare a b = 0
let is_zero t = Bits.is_zero t.bits

let to_string t = Printf.sprintf "%.9g" (to_float t)

let pp fmt t =
  Format.fprintf fmt "%s<%d,%d>%s"
    (if t.signed then "ap_fixed" else "ap_ufixed")
    (width t) t.int_bits (to_string t)
