lib/apfixed/bits.mli: Format Pld_util
