lib/apfixed/ap_fixed.mli: Ap_int Bits Format
