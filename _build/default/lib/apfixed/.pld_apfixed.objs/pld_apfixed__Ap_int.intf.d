lib/apfixed/ap_int.mli: Bits Format
