lib/apfixed/bits.ml: Array Bytes Char Format Int64 Pld_util Printf String
