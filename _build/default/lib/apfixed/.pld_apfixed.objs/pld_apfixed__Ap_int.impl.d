lib/apfixed/ap_int.ml: Bits Float Format Int64
