lib/apfixed/ap_fixed.ml: Ap_int Bits Float Format Int64 Printf
