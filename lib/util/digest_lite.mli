(** Content hashing for the incremental build cache.

    FNV-1a over bytes, folded to a hex string. Not cryptographic; it only
    needs to detect source changes between compiles, the same role as the
    timestamp/hash checks in a Makefile-driven flow. *)

type t = string (** 16 hex characters *)

val of_string : string -> t

val combine : t list -> t

val of_parts : string list -> t
(** Hash of the parts with length framing, so [["ab"; "c"]] and
    [["a"; "bc"]] digest differently — unlike joining with a separator
    that may also occur inside the data. Build keys are derived with
    this. *)

val is_hex : string -> bool
(** Whether the string is a well-formed digest (exactly 16 lowercase
    hex characters) — the artifact store uses this to reject files
    whose names were tampered with or truncated. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
