type t = string

let fnv_offset = 0xCBF29CE484222325L
let fnv_prime = 0x100000001B3L

let hash64 s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let of_string s = Printf.sprintf "%016Lx" (hash64 s)
let combine ts = of_string (String.concat "|" ts)

let of_parts parts =
  of_string
    (String.concat "" (List.map (fun p -> string_of_int (String.length p) ^ ":" ^ p) parts))

let is_hex s =
  String.length s = 16
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) s

let equal (a : t) (b : t) = String.equal a b
let compare (a : t) (b : t) = String.compare a b
let pp fmt t = Format.pp_print_string fmt t
