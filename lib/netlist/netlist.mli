(** Post-synthesis netlists: the interchange between HLS, place &
    route, and the bitstream generator.

    Cells are placement macros (a whole w-bit adder, a register bank, a
    BRAM) carrying a resource vector; nets are driver→sinks hyperedges.
    Functional behaviour lives in the IR interpreter — the netlist
    carries structure, area and timing. *)

type res = { luts : int; ffs : int; brams : int; dsps : int }

val res_zero : res
val res_add : res -> res -> res
val res_luts : int -> res
val res_le : res -> res -> bool
(** Component-wise [<=]: does a demand fit a capacity? *)

val pp_res : Format.formatter -> res -> unit

type kind =
  | Arith  (** adder / subtractor / comparator *)
  | Mul  (** DSP multiplier *)
  | Div  (** long divider macro *)
  | Logic  (** bitwise / mux logic *)
  | Reg  (** pipeline register bank *)
  | Mem  (** BRAM array *)
  | Control  (** FSM / loop counters *)
  | Stream_in of string  (** leaf-interface input port *)
  | Stream_out of string

type cell = { cid : int; cname : string; kind : kind; res : res; delay_ns : float }
type net = { nid : int; nname : string; driver : int; sinks : int list }
type t = { nl_name : string; cells : cell array; nets : net array }

val kind_name : kind -> string

(** Imperative builder. *)
module Builder : sig
  type netlist := t
  type t

  val create : string -> t
  val add_cell : t -> name:string -> kind:kind -> res:res -> delay_ns:float -> int
  val add_net : t -> name:string -> driver:int -> sinks:int list -> int
  val finish : t -> netlist
  (** Validates cell references; raises [Invalid_argument] on dangling
      ids or self-loop single-cell nets. *)
end

val total_res : t -> res
val cell_count : t -> int
val net_count : t -> int

val ports : t -> (string * [ `In | `Out ]) list
(** Stream ports in cell order. *)

val merge : name:string -> (string * t) list -> t
(** Combine instance netlists into one flat netlist with instance-
    prefixed names — the -O3 monolithic elaboration. Nets are kept
    per-instance; cross-instance links are added by the caller. *)

val add_fifo_links : t -> (string * string * string * int) list -> t
(** [add_fifo_links nl links] with [(from_inst_port, to_inst_port,
    fifo_name, depth_words)] inserts a FIFO cell (BRAM-backed above 64
    words) between a [Stream_out] and a [Stream_in] cell, connecting
    them with nets — the -O3 kernel generator of Fig. 7. Port cell
    names must match exactly. *)

val stats_line : t -> string

(** {2 Structural diff}

    Cells are matched across two netlists by [cname] (stable: HLS emits
    deterministic names and [merge] instance-qualifies them), nets by
    [nname] with connectivity compared through endpoint cell names.
    This is the input to delta place & route: kept cells may keep their
    placement, kept nets their routes. *)

type diff = {
  cells_kept : (int * int) list;
      (** [(old cid, new cid)] — same name, kind, resources, delay *)
  cells_changed : (int option * int) list;
      (** new cids needing (re)placement; [Some old] when the name
          matched but attributes differ, [None] for added cells *)
  cells_removed : int list;  (** old cids with no counterpart *)
  nets_kept : (int * int) list;
      (** [(old nid, new nid)] — same name and endpoint cell names *)
  nets_changed : int list;  (** new nids that are new or rewired *)
  nets_removed : int list;
}

val diff : t -> t -> diff
(** [diff old_nl new_nl]. *)

val diff_is_empty : diff -> bool
(** No changed/added/removed cells and no changed/removed nets. *)

val diff_change_fraction : diff -> float
(** Changed + removed cells over current cell count; 1.0 when the new
    netlist is empty. Drives the fall-back-to-scratch decision. *)

val diff_summary : diff -> string
