type res = { luts : int; ffs : int; brams : int; dsps : int }

let res_zero = { luts = 0; ffs = 0; brams = 0; dsps = 0 }

let res_add a b =
  { luts = a.luts + b.luts; ffs = a.ffs + b.ffs; brams = a.brams + b.brams; dsps = a.dsps + b.dsps }

let res_luts n = { res_zero with luts = n }

let res_le a b = a.luts <= b.luts && a.ffs <= b.ffs && a.brams <= b.brams && a.dsps <= b.dsps

let pp_res fmt r =
  Format.fprintf fmt "{luts=%d; ffs=%d; brams=%d; dsps=%d}" r.luts r.ffs r.brams r.dsps

type kind =
  | Arith
  | Mul
  | Div
  | Logic
  | Reg
  | Mem
  | Control
  | Stream_in of string
  | Stream_out of string

let kind_name = function
  | Arith -> "arith"
  | Mul -> "mul"
  | Div -> "div"
  | Logic -> "logic"
  | Reg -> "reg"
  | Mem -> "mem"
  | Control -> "control"
  | Stream_in p -> "stream_in:" ^ p
  | Stream_out p -> "stream_out:" ^ p

type cell = { cid : int; cname : string; kind : kind; res : res; delay_ns : float }
type net = { nid : int; nname : string; driver : int; sinks : int list }
type t = { nl_name : string; cells : cell array; nets : net array }

module Builder = struct
  type t = { bname : string; mutable bcells : cell list; mutable bnets : net list; mutable nc : int; mutable nn : int }

  let create bname = { bname; bcells = []; bnets = []; nc = 0; nn = 0 }

  let add_cell t ~name ~kind ~res ~delay_ns =
    let cid = t.nc in
    t.nc <- t.nc + 1;
    t.bcells <- { cid; cname = name; kind; res; delay_ns } :: t.bcells;
    cid

  let add_net t ~name ~driver ~sinks =
    let nid = t.nn in
    t.nn <- t.nn + 1;
    t.bnets <- { nid; nname = name; driver; sinks } :: t.bnets;
    nid

  let finish t =
    let cells = Array.of_list (List.rev t.bcells) in
    let nets = Array.of_list (List.rev t.bnets) in
    Array.iter
      (fun n ->
        let check id =
          if id < 0 || id >= Array.length cells then
            invalid_arg (Printf.sprintf "Netlist %s: net %s references cell %d" t.bname n.nname id)
        in
        check n.driver;
        List.iter check n.sinks;
        if n.sinks = [] then invalid_arg (Printf.sprintf "Netlist %s: net %s has no sinks" t.bname n.nname))
      nets;
    { nl_name = t.bname; cells; nets }
end

let total_res t = Array.fold_left (fun acc c -> res_add acc c.res) res_zero t.cells
let cell_count t = Array.length t.cells
let net_count t = Array.length t.nets

let ports t =
  Array.to_list t.cells
  |> List.filter_map (fun c ->
         match c.kind with
         | Stream_in p -> Some (p, `In)
         | Stream_out p -> Some (p, `Out)
         | Arith | Mul | Div | Logic | Reg | Mem | Control -> None)

let merge ~name parts =
  let b = Builder.create name in
  List.iter
    (fun (prefix, nl) ->
      let base = Hashtbl.create 16 in
      Array.iter
        (fun c ->
          let kind =
            (* Port names become instance-qualified so -O3 linking can
               find them unambiguously. *)
            match c.kind with
            | Stream_in p -> Stream_in (prefix ^ "." ^ p)
            | Stream_out p -> Stream_out (prefix ^ "." ^ p)
            | k -> k
          in
          let cid =
            Builder.add_cell b ~name:(prefix ^ "." ^ c.cname) ~kind ~res:c.res ~delay_ns:c.delay_ns
          in
          Hashtbl.replace base c.cid cid)
        nl.cells;
      Array.iter
        (fun n ->
          ignore
            (Builder.add_net b ~name:(prefix ^ "." ^ n.nname) ~driver:(Hashtbl.find base n.driver)
               ~sinks:(List.map (Hashtbl.find base) n.sinks)))
        nl.nets)
    parts;
  Builder.finish b

let find_port_cell t name dir =
  let matches c =
    match (c.kind, dir) with
    | Stream_out p, `Out -> p = name
    | Stream_in p, `In -> p = name
    | _ -> false
  in
  match Array.to_list t.cells |> List.find_opt matches with
  | Some c -> c.cid
  | None -> invalid_arg (Printf.sprintf "Netlist %s: no %s port cell %s" t.nl_name
                           (match dir with `In -> "input" | `Out -> "output") name)

let add_fifo_links t links =
  let b = Builder.create t.nl_name in
  Array.iter (fun c -> ignore (Builder.add_cell b ~name:c.cname ~kind:c.kind ~res:c.res ~delay_ns:c.delay_ns)) t.cells;
  Array.iter (fun n -> ignore (Builder.add_net b ~name:n.nname ~driver:n.driver ~sinks:n.sinks)) t.nets;
  List.iter
    (fun (src, dst, fifo_name, depth) ->
      let src_cell = find_port_cell t src `Out in
      let dst_cell = find_port_cell t dst `In in
      (* 32-bit FIFO: shallow ones in LUTRAM, deep ones in BRAM18. *)
      let res =
        if depth <= 64 then { res_zero with luts = 48 + depth; ffs = 70 }
        else { res_zero with luts = 60; ffs = 70; brams = (((depth * 32) + 18431) / 18432) }
      in
      let fifo = Builder.add_cell b ~name:fifo_name ~kind:Mem ~res ~delay_ns:1.2 in
      ignore (Builder.add_net b ~name:(fifo_name ^ ".push") ~driver:src_cell ~sinks:[ fifo ]);
      ignore (Builder.add_net b ~name:(fifo_name ^ ".pop") ~driver:fifo ~sinks:[ dst_cell ]))
    links;
  Builder.finish b

let stats_line t =
  let r = total_res t in
  Printf.sprintf "%s: %d cells, %d nets, %d LUT %d FF %d BRAM18 %d DSP" t.nl_name
    (cell_count t) (net_count t) r.luts r.ffs r.brams r.dsps

(* ---------- structural diff (incremental P&R) ---------- *)

type diff = {
  cells_kept : (int * int) list;
  cells_changed : (int option * int) list;
  cells_removed : int list;
  nets_kept : (int * int) list;
  nets_changed : int list;
  nets_removed : int list;
}

let cell_eq (a : cell) (b : cell) = a.kind = b.kind && a.res = b.res && a.delay_ns = b.delay_ns

let diff (old_nl : t) (new_nl : t) =
  let old_by_name = Hashtbl.create (Array.length old_nl.cells) in
  Array.iter (fun c -> Hashtbl.replace old_by_name c.cname c) old_nl.cells;
  let new_names = Hashtbl.create (Array.length new_nl.cells) in
  Array.iter (fun c -> Hashtbl.replace new_names c.cname ()) new_nl.cells;
  let kept = ref [] and changed = ref [] in
  Array.iter
    (fun c ->
      match Hashtbl.find_opt old_by_name c.cname with
      | Some o when cell_eq o c -> kept := (o.cid, c.cid) :: !kept
      | Some o -> changed := (Some o.cid, c.cid) :: !changed
      | None -> changed := (None, c.cid) :: !changed)
    new_nl.cells;
  let cells_removed =
    Array.to_list old_nl.cells
    |> List.filter (fun c -> not (Hashtbl.mem new_names c.cname))
    |> List.map (fun c -> c.cid)
  in
  (* Nets match by name, with connectivity compared through endpoint
     cell names (ids shift when cells are inserted or removed). *)
  let old_nets = Hashtbl.create (Array.length old_nl.nets) in
  Array.iter (fun n -> Hashtbl.replace old_nets n.nname n) old_nl.nets;
  let new_net_names = Hashtbl.create (Array.length new_nl.nets) in
  Array.iter (fun n -> Hashtbl.replace new_net_names n.nname ()) new_nl.nets;
  let old_name cid = old_nl.cells.(cid).cname in
  let new_name cid = new_nl.cells.(cid).cname in
  let nets_kept = ref [] and nets_changed = ref [] in
  Array.iter
    (fun n ->
      match Hashtbl.find_opt old_nets n.nname with
      | Some o
        when old_name o.driver = new_name n.driver
             && List.length o.sinks = List.length n.sinks
             && List.for_all2 (fun a b -> old_name a = new_name b) o.sinks n.sinks ->
          nets_kept := (o.nid, n.nid) :: !nets_kept
      | Some _ | None -> nets_changed := n.nid :: !nets_changed)
    new_nl.nets;
  let nets_removed =
    Array.to_list old_nl.nets
    |> List.filter (fun n -> not (Hashtbl.mem new_net_names n.nname))
    |> List.map (fun n -> n.nid)
  in
  {
    cells_kept = List.rev !kept;
    cells_changed = List.rev !changed;
    cells_removed;
    nets_kept = List.rev !nets_kept;
    nets_changed = List.rev !nets_changed;
    nets_removed;
  }

let diff_is_empty d =
  d.cells_changed = [] && d.cells_removed = [] && d.nets_changed = [] && d.nets_removed = []

let diff_change_fraction d =
  let kept = List.length d.cells_kept and changed = List.length d.cells_changed in
  let total = kept + changed in
  if total = 0 then 1.0
  else float_of_int (changed + List.length d.cells_removed) /. float_of_int total

let diff_summary d =
  Printf.sprintf "cells: %d kept %d changed %d removed; nets: %d kept %d changed %d removed"
    (List.length d.cells_kept) (List.length d.cells_changed) (List.length d.cells_removed)
    (List.length d.nets_kept) (List.length d.nets_changed) (List.length d.nets_removed)
