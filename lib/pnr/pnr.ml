open Pld_fabric
module N = Pld_netlist.Netlist

type delta_stats = {
  cells_kept : int;
  cells_moved : int;
  nets_preserved : int;
  nets_rerouted : int;
  fallback : string option;
}

type result = {
  netlist : N.t;
  region : Floorplan.rect;
  placement : (int * int) array;
  place : Place.result;
  route : Route.result;
  timing : Sta.result;
  bitstream : Bitgen.t;
  place_seconds : float;
  route_seconds : float;
  sta_seconds : float;
  bitgen_seconds : float;
  seconds : float;
  delta : delta_stats option;
}

let routed_ok r = r.place.Place.overfill = 0.0 && r.route.Route.overused_edges = 0

(* STA and bitgen on a finished placement/routing, with phase timing. *)
let finish ~t0 ~netlist ~region ~place ~route ~clock_target_mhz ~delta =
  let t_sta = Unix.gettimeofday () in
  let timing = Sta.analyze ~clock_target_mhz netlist ~net_delay_ns:route.Route.net_delay_ns in
  let t_bit = Unix.gettimeofday () in
  let bitstream =
    Bitgen.generate ~region ~placement:place.Place.positions
      ~routes:(Array.to_list route.Route.routes) netlist
  in
  let t_end = Unix.gettimeofday () in
  {
    netlist;
    region;
    placement = place.Place.positions;
    place;
    route;
    timing;
    bitstream;
    place_seconds = place.Place.seconds;
    route_seconds = route.Route.seconds;
    sta_seconds = t_bit -. t_sta;
    bitgen_seconds = t_end -. t_bit;
    seconds = t_end -. t0;
    delta;
  }

let implement ?(seed = 1) ?(effort = 1.0) ?(clock_target_mhz = 300.0) ?(pins = []) ~device ~region nl =
  let t0 = Unix.gettimeofday () in
  let place = Place.run ~seed ~effort ~pins ~device ~region nl in
  let route = Route.run ~seed ~device ~region ~placement:place.Place.positions nl in
  finish ~t0 ~netlist:nl ~region ~place ~route ~clock_target_mhz ~delta:None

(* Edits larger than this fraction of the netlist go back to scratch:
   the refinement would move most cells anyway, without the hot start's
   freedom. *)
let max_change_fraction = 0.5

let implement_delta ?(seed = 1) ?(effort = 1.0) ?(clock_target_mhz = 300.0) ?(pins = [])
    ?previous ~device ~region nl =
  let t0 = Unix.gettimeofday () in
  let scratch reason =
    let r = implement ~seed ~effort ~clock_target_mhz ~pins ~device ~region nl in
    {
      r with
      seconds = Unix.gettimeofday () -. t0;
      delta =
        Some
          {
            cells_kept = 0;
            cells_moved = Array.length r.placement;
            nets_preserved = 0;
            nets_rerouted = r.route.Route.nets_routed;
            fallback = Some reason;
          };
    }
  in
  match previous with
  | None -> scratch "no-previous"
  | Some prev ->
      if prev.region <> region then scratch "region-changed"
      else if prev.route.Route.overused_edges > 0 then scratch "previous-congested"
      else begin
        let d = N.diff prev.netlist nl in
        if N.diff_change_fraction d > max_change_fraction then scratch "large-edit"
        else begin
          (* The hot start must not cost placement quality. Netlists
             can carry irreducible overfill (single cells larger than
             any tile, oversubscribed BRAM/DSP columns), and an edit
             can raise that floor — so the yardstick is the overfill
             {e beyond} each netlist's own floor: the refined placement
             may waste no more than the placement it reused did. On
             fully legal netlists this degenerates to the plain
             overfill = 0 check. Two tiers: frozen kept cells first,
             then — if the edit cannot be absorbed around them — a
             seeded-but-unpinned pass before surrendering to scratch. *)
          let slack =
            prev.place.Place.overfill
            -. Place.intrinsic_overfill ~device ~region prev.netlist
          in
          let floor_new = Place.intrinsic_overfill ~device ~region nl in
          let acceptable (p : Place.result) =
            p.Place.overfill <= floor_new +. slack +. 1e-6
          in
          let place =
            let frozen_pass =
              Place.refine ~seed ~effort ~pins ~device ~region ~previous:prev.placement ~diff:d nl
            in
            if acceptable frozen_pass then frozen_pass
            else
              Place.refine ~seed ~effort ~pins ~freeze:false ~device ~region
                ~previous:prev.placement ~diff:d nl
          in
          if not (acceptable place) then scratch "refine-illegal"
          else begin
            (* A kept net's route carries over iff every endpoint sits
               where it did before. *)
            let ncells = Array.length nl.N.cells in
            let old_of = Array.make ncells (-1) in
            List.iter (fun (o, n2) -> old_of.(n2) <- o) d.N.cells_kept;
            List.iter
              (fun (o, n2) -> match o with Some o -> old_of.(n2) <- o | None -> ())
              d.N.cells_changed;
            let unmoved cid =
              old_of.(cid) >= 0 && place.Place.positions.(cid) = prev.placement.(old_of.(cid))
            in
            let keep =
              List.filter
                (fun (_, new_ni) ->
                  let n = nl.N.nets.(new_ni) in
                  List.for_all unmoved (n.N.driver :: n.N.sinks))
                d.N.nets_kept
            in
            let route =
              Route.run ~seed ~reuse:{ Route.prev = prev.route; keep } ~device ~region
                ~placement:place.Place.positions nl
            in
            if route.Route.overused_edges > 0 then scratch "route-congested"
            else begin
              let moved = ref 0 and kept = ref 0 in
              for cid = 0 to ncells - 1 do
                if unmoved cid then incr kept else incr moved
              done;
              let delta =
                Some
                  {
                    cells_kept = !kept;
                    cells_moved = !moved;
                    nets_preserved = List.length keep;
                    nets_rerouted = route.Route.nets_routed;
                    fallback = None;
                  }
              in
              finish ~t0 ~netlist:nl ~region ~place ~route ~clock_target_mhz ~delta
            end
          end
        end
      end

let implement_multi ?(effort = 1.0) ?(clock_target_mhz = 300.0) ?(pins = []) ?telemetry ~seeds
    ~device ~region nl =
  match seeds with
  | [] -> invalid_arg "Pnr.implement_multi: empty seed list"
  | [ s ] -> implement ~seed:s ~effort ~clock_target_mhz ~pins ~device ~region nl
  | _ ->
      let t0 = Unix.gettimeofday () in
      let module J = Pld_engine.Jobgraph in
      let module X = Pld_engine.Executor in
      let nodes =
        List.map
          (fun s ->
            J.node ~id:(Printf.sprintf "pnr:seed%d" s) ~kind:"pnr" (fun _ctx ->
                let place = Place.run ~seed:s ~effort ~pins ~device ~region nl in
                let route = Route.run ~seed:s ~device ~region ~placement:place.Place.positions nl in
                let t_sta = Unix.gettimeofday () in
                let timing = Sta.analyze ~clock_target_mhz nl ~net_delay_ns:route.Route.net_delay_ns in
                (s, place, route, timing, Unix.gettimeofday () -. t_sta)))
          seeds
      in
      let r = X.run ?telemetry ~workers:(List.length seeds) (J.make nodes) in
      let candidates = List.map snd r.X.artifacts in
      (* Deterministic pick: legal first, then best post-STA timing,
         then lowest seed. *)
      let score (s, (place : Place.result), (route : Route.result), (timing : Sta.result), _) =
        let legal = place.Place.overfill = 0.0 && route.Route.overused_edges = 0 in
        ((if legal then 0 else 1), -.timing.Sta.fmax_mhz, timing.Sta.critical_path_ns, s)
      in
      let best =
        List.sort (fun a b -> compare (score a) (score b)) candidates |> List.hd
      in
      let _, place, route, timing, sta_seconds = best in
      let t_bit = Unix.gettimeofday () in
      let bitstream =
        Bitgen.generate ~region ~placement:place.Place.positions
          ~routes:(Array.to_list route.Route.routes) nl
      in
      let t_end = Unix.gettimeofday () in
      {
        netlist = nl;
        region;
        placement = place.Place.positions;
        place;
        route;
        timing;
        bitstream;
        place_seconds = place.Place.seconds;
        route_seconds = route.Route.seconds;
        sta_seconds;
        bitgen_seconds = t_end -. t_bit;
        seconds = t_end -. t0;
        delta = None;
      }

let report r =
  let delta_line =
    match r.delta with
    | None -> ""
    | Some d -> (
        match d.fallback with
        | Some reason -> Printf.sprintf "\ndelta: fell back to scratch (%s)" reason
        | None ->
            Printf.sprintf "\ndelta: %d cells kept / %d moved, %d routes preserved / %d rerouted"
              d.cells_kept d.cells_moved d.nets_preserved d.nets_rerouted)
  in
  Printf.sprintf
    "== P&R report: %s ==\n\
     region: (%d,%d)-(%d,%d)\n\
     wirelength: %d  overfill: %.1f  route overuse: %d (after %d iterations)\n\
     critical path: %.2f ns -> Fmax %.0f MHz\n\
     bitstream: %d bytes (crc %s)\n\
     time: place %.2fs route %.2fs sta %.2fs bit %.2fs (total %.2fs)%s"
    r.netlist.N.nl_name r.region.Floorplan.x0 r.region.Floorplan.y0 r.region.Floorplan.x1
    r.region.Floorplan.y1 r.place.Place.wirelength r.place.Place.overfill
    r.route.Route.overused_edges r.route.Route.iterations r.timing.Sta.critical_path_ns
    r.timing.Sta.fmax_mhz (Bitgen.size_bytes r.bitstream) r.bitstream.Bitgen.crc
    r.place_seconds r.route_seconds r.sta_seconds r.bitgen_seconds r.seconds delta_line
