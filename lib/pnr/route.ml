open Pld_fabric
module N = Pld_netlist.Netlist
module Pq = Pld_util.Pqueue

type route = { net_id : int; edges : int list }

type result = {
  rrg : Rrg.t;
  routes : route array;
  iterations : int;
  overused_edges : int;
  total_wire : int;
  seconds : float;
  net_delay_ns : float array;
  nets_routed : int;
  history : float array;
}

type reuse = { prev : result; keep : (int * int) list }

(* Dijkstra from a source node to one sink with congestion-aware edge
   costs; returns the edge list (or [] if sink = source). *)
let shortest rrg cost src dst =
  let dist = Array.make rrg.Rrg.nodes infinity in
  let back = Array.make rrg.Rrg.nodes (-1) in
  let pq = Pq.create () in
  dist.(src) <- 0.0;
  Pq.push pq 0.0 src;
  let finished = ref false in
  while not (!finished || Pq.is_empty pq) do
    match Pq.pop pq with
    | None -> finished := true
    | Some (d, u) ->
        if u = dst then finished := true
        else if d <= dist.(u) then
          List.iter
            (fun ei ->
              let e = rrg.Rrg.edges.(ei) in
              let nd = d +. cost ei in
              if nd < dist.(e.Rrg.dst) then begin
                dist.(e.Rrg.dst) <- nd;
                back.(e.Rrg.dst) <- ei;
                Pq.push pq nd e.Rrg.dst
              end)
            rrg.Rrg.out_edges.(u)
  done;
  if dist.(dst) = infinity then None
  else begin
    let rec walk node acc =
      if node = src then acc
      else begin
        let ei = back.(node) in
        walk rrg.Rrg.edges.(ei).Rrg.src (ei :: acc)
      end
    in
    Some (walk dst [])
  end

let run ?(seed = 1) ?(max_iterations = 14) ?reuse ~device ~region ~placement (nl : N.t) =
  ignore seed;
  let t0 = Unix.gettimeofday () in
  (* Incremental runs reuse the previous RRG (same device/region — the
     caller's contract) instead of rebuilding it. *)
  let rrg = match reuse with Some r -> r.prev.rrg | None -> Rrg.build device region in
  let nedges = Array.length rrg.Rrg.edges in
  let usage = Array.make nedges 0 in
  (* Preserved routes keep their negotiated history costs, so the
     incremental pass starts from the congestion knowledge the previous
     run ended with. *)
  let history =
    match reuse with
    | Some r when Array.length r.prev.history = nedges -> Array.copy r.prev.history
    | _ -> Array.make nedges 0.0
  in
  let pres_fac = ref 1.0 in
  let cost ei =
    let e = rrg.Rrg.edges.(ei) in
    let over = float_of_int (max 0 (usage.(ei) + 1 - e.Rrg.capacity)) in
    e.Rrg.delay_ns *. (1.0 +. history.(ei)) *. (1.0 +. (over *. !pres_fac))
  in
  let node_of_cell cid =
    let x, y = placement.(cid) in
    Rrg.node_of_tile rrg x y
  in
  let nnets = Array.length nl.N.nets in
  let routes = Array.map (fun (n : N.net) -> { net_id = n.N.nid; edges = [] }) nl.N.nets in
  let sink_delay = Array.make nnets 0.0 in
  (* Load preserved routes and mark everything else dirty: only the
     dirty set is routed on the first pass (rip-up-only rerouting). *)
  let dirty =
    match reuse with
    | None -> Array.make nnets true
    | Some r ->
        let d = Array.make nnets true in
        List.iter
          (fun (old_ni, new_ni) ->
            let pr = r.prev.routes.(old_ni) in
            routes.(new_ni) <- { net_id = nl.N.nets.(new_ni).N.nid; edges = pr.edges };
            List.iter (fun ei -> usage.(ei) <- usage.(ei) + 1) pr.edges;
            sink_delay.(new_ni) <- r.prev.net_delay_ns.(old_ni);
            d.(new_ni) <- false)
          r.keep;
        d
  in
  let nets_routed = ref 0 in
  let route_net ni =
    incr nets_routed;
    let n = nl.N.nets.(ni) in
    (* Rip up. *)
    List.iter (fun ei -> usage.(ei) <- usage.(ei) - 1) routes.(ni).edges;
    let src = node_of_cell n.N.driver in
    let seen = Hashtbl.create 8 in
    sink_delay.(ni) <- 0.0;
    let all_edges =
      List.concat_map
        (fun sink ->
          let dst = node_of_cell sink in
          if dst = src then []
          else
            match shortest rrg cost src dst with
            | Some path ->
                let d = List.fold_left (fun acc ei -> acc +. rrg.Rrg.edges.(ei).Rrg.delay_ns) 0.0 path in
                if d > sink_delay.(ni) then sink_delay.(ni) <- d;
                path
            | None -> [])
        n.N.sinks
    in
    let dedup =
      List.filter
        (fun ei ->
          if Hashtbl.mem seen ei then false
          else begin
            Hashtbl.add seen ei ();
            true
          end)
        all_edges
    in
    List.iter (fun ei -> usage.(ei) <- usage.(ei) + 1) dedup;
    routes.(ni) <- { net_id = n.N.nid; edges = dedup }
  in
  (* Iterate: first pass routes the dirty set (everything on a scratch
     run), later passes reroute nets using overused edges — preserved
     routes are ripped up only if congestion reaches them. *)
  let iterations = ref 0 in
  let overused () =
    let acc = ref 0 in
    Array.iteri (fun ei u -> if u > rrg.Rrg.edges.(ei).Rrg.capacity then incr acc) usage;
    !acc
  in
  let congested_net ni = List.exists (fun ei -> usage.(ei) > rrg.Rrg.edges.(ei).Rrg.capacity) routes.(ni).edges in
  let continue = ref true in
  while !continue && !iterations < max_iterations do
    incr iterations;
    for ni = 0 to nnets - 1 do
      if (if !iterations = 1 then dirty.(ni) else congested_net ni) then route_net ni
    done;
    Array.iteri
      (fun ei u ->
        let cap = rrg.Rrg.edges.(ei).Rrg.capacity in
        if u > cap then history.(ei) <- history.(ei) +. (0.5 *. float_of_int (u - cap)))
      usage;
    pres_fac := !pres_fac *. 1.8;
    if overused () = 0 then continue := false
  done;
  let net_delay_ns = sink_delay in
  {
    rrg;
    routes;
    iterations = !iterations;
    overused_edges = overused ();
    total_wire = Array.fold_left (fun acc r -> acc + List.length r.edges) 0 routes;
    seconds = Unix.gettimeofday () -. t0;
    net_delay_ns;
    nets_routed = !nets_routed;
    history;
  }
