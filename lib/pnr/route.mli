(** PathFinder negotiated-congestion router over the fabric's routing
    resource graph. *)

open Pld_fabric
module N := Pld_netlist.Netlist

type route = { net_id : int; edges : int list (** edge indices into the RRG *) }

type result = {
  rrg : Rrg.t;
  routes : route array;
  iterations : int;
  overused_edges : int;  (** 0 = fully legal routing *)
  total_wire : int;
  seconds : float;
  net_delay_ns : float array;  (** per net, driver→farthest sink *)
  nets_routed : int;
      (** [route_net] invocations — on an incremental run, the rip-up
          set's size plus congestion-driven reroutes *)
  history : float array;
      (** per-edge negotiated-congestion history at exit — the state an
          incremental rerun resumes from *)
}

type reuse = {
  prev : result;  (** prior routing of the same device/region *)
  keep : (int * int) list;
      (** [(old nid, new nid)] whose routes carry over verbatim: the
          caller guarantees both endpoints sit at unchanged tiles *)
}

val run :
  ?seed:int ->
  ?max_iterations:int ->
  ?reuse:reuse ->
  device:Device.t ->
  region:Floorplan.rect ->
  placement:(int * int) array ->
  N.t ->
  result
(** Routes every multi-tile net; same-tile nets cost zero wire.

    With [reuse], the previous RRG is reused (no rebuild), kept nets'
    routes and delays are loaded as-is with the previous history costs,
    and the first PathFinder pass routes only the remaining dirty nets
    — incremental rip-up-only rerouting. Preserved routes are ripped up
    in later passes only if congestion reaches them. *)
