(** The implementation backend: place, route, time, and generate a
    bitstream for a netlist targeting a device region.

    Two scopes mirror the paper's flows: a page rectangle with the
    abstract shell (the -O1 xclbin generator) or the whole L1 region
    (the -O3 / Vitis monolithic compile). On top of the from-scratch
    {!implement} sit two fast paths: {!implement_delta} reuses a prior
    result across a small netlist edit (placement reuse + rip-up-only
    rerouting), and {!implement_multi} races independent SA seeds on
    domains and keeps the best post-STA timing. *)

open Pld_fabric
module N := Pld_netlist.Netlist

type delta_stats = {
  cells_kept : int;  (** matched cells left at their previous tile *)
  cells_moved : int;  (** cells placed anew or relocated *)
  nets_preserved : int;  (** routes carried over verbatim *)
  nets_rerouted : int;  (** router invocations (rip-up set + congestion) *)
  fallback : string option;
      (** [None] when the delta path ran; [Some reason] when the compile
          fell back to scratch ([no-previous], [region-changed],
          [previous-not-routed], [large-edit], [refine-illegal],
          [route-congested]) *)
}

type result = {
  netlist : N.t;
  region : Floorplan.rect;
  placement : (int * int) array;
  place : Place.result;
  route : Route.result;
  timing : Sta.result;
  bitstream : Bitgen.t;
  place_seconds : float;
  route_seconds : float;
  sta_seconds : float;
  bitgen_seconds : float;
  seconds : float;  (** total wall-clock (place+route+sta+bitgen) *)
  delta : delta_stats option;
      (** present iff the result came from {!implement_delta} *)
}

val implement :
  ?seed:int ->
  ?effort:float ->
  ?clock_target_mhz:float ->
  ?pins:(string * (int * int)) list ->
  device:Device.t ->
  region:Floorplan.rect ->
  N.t ->
  result
(** Raises [Invalid_argument] when the netlist cannot fit the region
    (the caller decides whether to pick a bigger page). *)

val implement_delta :
  ?seed:int ->
  ?effort:float ->
  ?clock_target_mhz:float ->
  ?pins:(string * (int * int)) list ->
  ?previous:result ->
  device:Device.t ->
  region:Floorplan.rect ->
  N.t ->
  result
(** Incremental P&R: diff the netlist against [previous]'s, keep the
    placements of unchanged cells, refine only changed/affected cells
    at low temperature, and rip up and reroute only nets whose
    endpoints moved (plus congestion victims) — preserved routes keep
    their PathFinder history costs. Falls back to a from-scratch
    {!implement} (recording the reason in [delta]) when there is no
    usable previous result, the region changed, the edit touches more
    than half the cells, or the fast path fails to stay legal. The
    result is always legal-or-equal to what {!implement} would give. *)

val implement_multi :
  ?effort:float ->
  ?clock_target_mhz:float ->
  ?pins:(string * (int * int)) list ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  seeds:int list ->
  device:Device.t ->
  region:Floorplan.rect ->
  N.t ->
  result
(** Races one place+route+STA pipeline per seed on OCaml 5 domains via
    the engine executor, then generates the bitstream for the winner:
    legal results first, then highest Fmax, then lowest critical path,
    then lowest seed — deterministic for a fixed seed list. Seeds must
    be distinct. Used for cold -O3/Vitis compiles where wall time would
    otherwise be one serial anneal. *)

val routed_ok : result -> bool
(** Placement legal (no overfill) and routing has no overused wires. *)

val report : result -> string
