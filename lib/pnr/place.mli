(** Simulated-annealing placer (VPR-style).

    Cells are placed at tiles of the target region; tile capacities are
    enforced through an overfill penalty whose weight ramps as the
    temperature drops, so final placements are (near-)legal. Runtime
    grows super-linearly with cell count — the mechanism behind the
    paper's monolithic-vs-page compile-time gap. *)

open Pld_fabric
module N := Pld_netlist.Netlist

type result = {
  positions : (int * int) array;  (** cell id → tile (x, y) *)
  wirelength : int;  (** total half-perimeter wirelength *)
  overfill : float;  (** residual capacity violation (0 = legal) *)
  moves_evaluated : int;
  seconds : float;
}

val fits_region : Device.t -> Floorplan.rect -> N.t -> bool
(** Aggregate capacity check: does the netlist fit the region at all? *)

val intrinsic_overfill : device:Device.t -> region:Floorplan.rect -> N.t -> float
(** The overfill no placement of this netlist in this region can go
    below: each cell's best-case weighted overflow on the friendliest
    tile kind present, summed. Oversized cells (a deep FIFO, a wide
    datapath) make this nonzero, so placement quality is the overfill
    {e beyond} this floor — the yardstick delta P&R uses to decide
    whether a refined placement is as good as the one it reused. *)

val run :
  ?seed:int ->
  ?effort:float ->
  ?pins:(string * (int * int)) list ->
  device:Device.t ->
  region:Floorplan.rect ->
  N.t ->
  result
(** [pins] fixes named cells (stream ports) at given tiles — the page
    leaf-interface location, or the shell/DMA edge for monolithic
    compiles. [effort] scales moves per temperature (default 1.0).
    Raises [Invalid_argument] if the netlist exceeds region capacity. *)

val refine :
  ?seed:int ->
  ?effort:float ->
  ?pins:(string * (int * int)) list ->
  ?freeze:bool ->
  device:Device.t ->
  region:Floorplan.rect ->
  previous:(int * int) array ->
  diff:N.diff ->
  N.t ->
  result
(** Delta placement: [previous] is the prior placement indexed by the
    {e old} netlist's cell ids, [diff] maps it onto the new netlist.
    Kept cells are frozen at their old tiles ([freeze], default [true];
    [false] seeds them there but lets the anneal move everything — the
    fallback tier when the frozen pass cannot legalize around the
    edit); changed/added cells and
    cells on rewired nets anneal through a short low-temperature pass
    sized to that movable subset. With an empty diff the previous
    placement is returned untouched. Raises [Invalid_argument] like
    {!run}; the caller must ensure the region is the one the previous
    placement targeted. *)

val run_multi :
  ?effort:float ->
  ?pins:(string * (int * int)) list ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  seeds:int list ->
  device:Device.t ->
  region:Floorplan.rect ->
  N.t ->
  (int * result) list
(** Races one full anneal per seed on OCaml 5 domains via the engine
    executor (one worker per seed) and returns every result in seed
    order — callers pick a winner (see [Pnr.implement_multi], which
    selects on post-STA timing). Seeds must be distinct. *)
