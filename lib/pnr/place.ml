open Pld_fabric
module N = Pld_netlist.Netlist
module Rng = Pld_util.Rng

type result = {
  positions : (int * int) array;
  wirelength : int;
  overfill : float;
  moves_evaluated : int;
  seconds : float;
}

let fits_region device region nl =
  N.res_le (N.total_res nl) (Floorplan.rect_capacity device region)

(* Overfill weights: hard blocks (BRAM/DSP) are scarce, so violations
   there cost far more than LUT spill. *)
let w_lut = 1.0
let w_ff = 0.4
let w_bram = 60.0
let w_dsp = 60.0

let res_over (res : N.res) (cap : N.res) =
  (w_lut *. float_of_int (max 0 (res.N.luts - cap.N.luts)))
  +. (w_ff *. float_of_int (max 0 (res.N.ffs - cap.N.ffs)))
  +. (w_bram *. float_of_int (max 0 (res.N.brams - cap.N.brams)))
  +. (w_dsp *. float_of_int (max 0 (res.N.dsps - cap.N.dsps)))

(* The overfill a placement of [nl] can never go below: each cell's
   best-case weighted overflow on the friendliest tile kind the region
   offers, summed. Generated netlists routinely carry single cells
   larger than any one tile, so "legal" placements of such netlists
   are judged by their overfill *beyond* this floor. *)
let intrinsic_overfill ~device ~region (nl : N.t) =
  let kinds = ref [] in
  for x = region.Floorplan.x0 to region.Floorplan.x1 do
    for y = region.Floorplan.y0 to region.Floorplan.y1 do
      let k = Device.kind_at device x y in
      if not (List.mem k !kinds) then kinds := k :: !kinds
    done
  done;
  let caps = List.map Device.tile_capacity !kinds in
  Array.fold_left
    (fun acc (c : N.cell) ->
      acc
      +. List.fold_left (fun best cap -> Float.min best (res_over c.res cap)) infinity caps)
    0.0 nl.N.cells

(* [refine = Some (start, frozen)] seeds the anneal from a previous
   placement: cells with a start tile begin there, frozen ones never
   move, and the schedule drops to a short low-temperature pass sized
   to the movable subset — the delta-P&R placement reuse. *)
let run_core ~seed ~effort ~pins ~refine ~device ~region (nl : N.t) =
  let t_start = Unix.gettimeofday () in
  if not (fits_region device region nl) then
    invalid_arg
      (Printf.sprintf "Place.run: %s does not fit region (%s needed)" nl.N.nl_name
         (Format.asprintf "%a" N.pp_res (N.total_res nl)));
  let rng = Rng.create seed in
  let w = region.Floorplan.x1 - region.Floorplan.x0 + 1 in
  let h = region.Floorplan.y1 - region.Floorplan.y0 + 1 in
  let ntiles = w * h in
  let tile_xy i = (region.Floorplan.x0 + (i mod w), region.Floorplan.y0 + (i / w)) in
  let cap = Array.init ntiles (fun i ->
      let x, y = tile_xy i in
      Device.tile_capacity (Device.kind_at device x y))
  in
  let ncells = Array.length nl.N.cells in
  let pos = Array.make ncells 0 in
  (* Occupancy per tile, by resource. *)
  let occ_l = Array.make ntiles 0 and occ_f = Array.make ntiles 0 in
  let occ_b = Array.make ntiles 0 and occ_d = Array.make ntiles 0 in
  let tile_over i =
    let c = cap.(i) in
    (w_lut *. float_of_int (max 0 (occ_l.(i) - c.N.luts)))
    +. (w_ff *. float_of_int (max 0 (occ_f.(i) - c.N.ffs)))
    +. (w_bram *. float_of_int (max 0 (occ_b.(i) - c.N.brams)))
    +. (w_dsp *. float_of_int (max 0 (occ_d.(i) - c.N.dsps)))
  in
  let add_cell i cell_res sign =
    occ_l.(i) <- occ_l.(i) + (sign * cell_res.N.luts);
    occ_f.(i) <- occ_f.(i) + (sign * cell_res.N.ffs);
    occ_b.(i) <- occ_b.(i) + (sign * cell_res.N.brams);
    occ_d.(i) <- occ_d.(i) + (sign * cell_res.N.dsps)
  in
  (* Fixed pins: stream-port cells pinned to given tiles. *)
  let fixed = Array.make ncells false in
  let pin_tile name =
    match List.assoc_opt name pins with
    | Some (x, y) ->
        if
          x < region.Floorplan.x0 || x > region.Floorplan.x1 || y < region.Floorplan.y0
          || y > region.Floorplan.y1
        then invalid_arg (Printf.sprintf "Place.run: pin %s at (%d,%d) outside region" name x y);
        Some (((y - region.Floorplan.y0) * w) + (x - region.Floorplan.x0))
    | None -> None
  in
  (* Initial placement: pins fixed, everything else scattered near good
     tiles for its resource class. *)
  Array.iteri
    (fun cid (c : N.cell) ->
      let tile =
        let pinned =
          match c.kind with
          | N.Stream_in p | N.Stream_out p -> pin_tile p
          | _ -> None
        in
        let seeded =
          match refine with
          | Some (start, frozen) -> (
              match start.(cid) with
              | Some (x, y)
                when x >= region.Floorplan.x0 && x <= region.Floorplan.x1
                     && y >= region.Floorplan.y0 && y <= region.Floorplan.y1 ->
                  let t = ((y - region.Floorplan.y0) * w) + (x - region.Floorplan.x0) in
                  if frozen.(cid) then begin
                    fixed.(cid) <- true;
                    Some t
                  end
                  else if
                    (* A changed cell may have switched resource class
                       (a grown FIFO goes LUT -> BRAM): its old tile is
                       only a useful start if it can host the new
                       demand — the range-limited anneal cannot ferry
                       it to a distant hard-block column. *)
                    (c.res.N.brams = 0 || cap.(t).N.brams > 0)
                    && (c.res.N.dsps = 0 || cap.(t).N.dsps > 0)
                  then Some t
                  else None
              | _ -> None)
          | None -> None
        in
        match pinned with
        | Some t ->
            fixed.(cid) <- true;
            t
        | None -> (
            match seeded with
            | Some t -> t
            | None ->
                (* Bias hard blocks toward tiles that can host them. *)
                let want_bram = c.res.N.brams > 0 and want_dsp = c.res.N.dsps > 0 in
                let candidates = ref [] in
                for i = 0 to ntiles - 1 do
                  if (want_bram && cap.(i).N.brams > 0) || (want_dsp && cap.(i).N.dsps > 0) then
                    candidates := i :: !candidates
                done;
                begin
                  match !candidates with
                  | [] -> Rng.int rng ntiles
                  | l -> List.nth l (Rng.int rng (List.length l))
                end)
      in
      pos.(cid) <- tile;
      add_cell tile c.res 1)
    nl.N.cells;
  (* Net bounding boxes. *)
  let nets = Array.map (fun (n : N.net) -> Array.of_list (n.driver :: n.sinks)) nl.N.nets in
  let cell_nets = Array.make ncells [] in
  Array.iteri (fun ni members -> Array.iter (fun c -> cell_nets.(c) <- ni :: cell_nets.(c)) members) nets;
  let hpwl ni =
    let members = nets.(ni) in
    let x0 = ref max_int and x1 = ref min_int and y0 = ref max_int and y1 = ref min_int in
    Array.iter
      (fun c ->
        let x, y = tile_xy pos.(c) in
        if x < !x0 then x0 := x;
        if x > !x1 then x1 := x;
        if y < !y0 then y0 := y;
        if y > !y1 then y1 := y)
      members;
    !x1 - !x0 + (!y1 - !y0)
  in
  let total_wl () =
    let acc = ref 0 in
    Array.iteri (fun ni _ -> acc := !acc + hpwl ni) nets;
    !acc
  in
  let total_over () =
    let acc = ref 0.0 in
    for i = 0 to ntiles - 1 do
      acc := !acc +. tile_over i
    done;
    !acc
  in
  let cong_weight = ref 1.0 in
  let wl = ref (float_of_int (total_wl ())) in
  let over = ref (total_over ()) in
  let moves = ref 0 in
  let movable = Array.to_list (Array.mapi (fun i f -> (i, f)) fixed)
                |> List.filter (fun (_, f) -> not f) |> List.map fst |> Array.of_list in
  let nmov = Array.length movable in
  let attempt_move temp range =
    if nmov = 0 then ()
    else begin
      incr moves;
      let cid = movable.(Rng.int rng nmov) in
      let cur = pos.(cid) in
      let cx, cy = tile_xy cur in
      (* Range-limited target tile. *)
      let nx = max region.Floorplan.x0 (min region.Floorplan.x1 (cx + Rng.int_in rng (-range) range)) in
      let ny = max region.Floorplan.y0 (min region.Floorplan.y1 (cy + Rng.int_in rng (-range) range)) in
      let tgt = ((ny - region.Floorplan.y0) * w) + (nx - region.Floorplan.x0) in
      if tgt <> cur then begin
        let res = nl.N.cells.(cid).res in
        (* Delta of overfill on the two affected tiles. *)
        let before = tile_over cur +. tile_over tgt in
        add_cell cur res (-1);
        add_cell tgt res 1;
        let after = tile_over cur +. tile_over tgt in
        (* Delta of wirelength on affected nets. *)
        let nets_touched = cell_nets.(cid) in
        let wl_before = List.fold_left (fun acc ni -> acc + hpwl ni) 0 nets_touched in
        pos.(cid) <- tgt;
        let wl_after = List.fold_left (fun acc ni -> acc + hpwl ni) 0 nets_touched in
        let delta =
          float_of_int (wl_after - wl_before) +. (!cong_weight *. (after -. before))
        in
        let accept = delta < 0.0 || Rng.float rng 1.0 < exp (-.delta /. temp) in
        if accept then begin
          wl := !wl +. float_of_int (wl_after - wl_before);
          over := !over +. (after -. before)
        end
        else begin
          (* Revert. *)
          add_cell tgt res (-1);
          add_cell cur res 1;
          pos.(cid) <- cur
        end
      end
    end
  in
  (* Annealing schedule: a full sweep from a hot start, or — when
     seeded from a previous placement — a short low-temperature pass
     sized to the movable subset. *)
  let t0_temp, cool, max_temps, range0, moves_per_temp =
    match refine with
    | None ->
        ( max 1.0 (!wl /. float_of_int (max 1 ncells)) *. 20.0,
          0.88,
          90,
          max w h,
          max 32 (int_of_float (effort *. 8.0 *. (float_of_int ncells ** 1.33))) )
    | Some _ ->
        cong_weight := 8.0;
        ( max 0.5 (!wl /. float_of_int (max 1 ncells) *. 1.5),
          0.80,
          30,
          max 2 (max w h / 4),
          max 32 (int_of_float (effort *. 8.0 *. (float_of_int (max 1 nmov) ** 1.33))) )
  in
  let temp = ref t0_temp in
  let range = ref range0 in
  let temps = ref 0 in
  if nmov > 0 then begin
    while !temp > 0.01 && !temps < max_temps do
      for _ = 1 to moves_per_temp do
        attempt_move !temp !range
      done;
      temp := !temp *. cool;
      cong_weight := Float.min 4096.0 (!cong_weight *. 1.25);
      range := max 1 (!range * 9 / 10);
      incr temps
    done;
    (* Greedy zero-temperature cleanup. *)
    for _ = 1 to moves_per_temp do
      attempt_move 0.0001 2
    done
  end;
  (* Deterministic legalization: evict cells from overfilled tiles to
     the nearest tile with residual capacity, wirelength-blind. *)
  let residual_fits i (r : N.res) =
    let c = cap.(i) in
    occ_l.(i) + r.N.luts <= c.N.luts
    && occ_f.(i) + r.N.ffs <= c.N.ffs
    && occ_b.(i) + r.N.brams <= c.N.brams
    && occ_d.(i) + r.N.dsps <= c.N.dsps
  in
  let cells_at = Array.make ntiles [] in
  Array.iteri (fun cid t -> cells_at.(t) <- cid :: cells_at.(t)) pos;
  let passes = ref 0 in
  while total_over () > 0.0 && !passes < 6 do
    incr passes;
    for t = 0 to ntiles - 1 do
      let rec fix () =
        if tile_over t > 0.0 then begin
          (* Move the largest movable cell off this tile. *)
          let movable_here =
            List.filter (fun c -> not fixed.(c)) cells_at.(t)
            |> List.sort (fun a b ->
                   compare (nl.N.cells.(b).res.N.luts + nl.N.cells.(b).res.N.ffs)
                     (nl.N.cells.(a).res.N.luts + nl.N.cells.(a).res.N.ffs))
          in
          match movable_here with
          | [] -> ()
          | cid :: _ ->
              let res = nl.N.cells.(cid).res in
              add_cell t res (-1);
              let tx, ty = tile_xy t in
              let best = ref (-1) and best_d = ref max_int in
              for u = 0 to ntiles - 1 do
                if u <> t && residual_fits u res then begin
                  let ux, uy = tile_xy u in
                  let d = abs (ux - tx) + abs (uy - ty) in
                  if d < !best_d then begin
                    best_d := d;
                    best := u
                  end
                end
              done;
              if !best >= 0 then begin
                add_cell !best res 1;
                pos.(cid) <- !best;
                cells_at.(t) <- List.filter (( <> ) cid) cells_at.(t);
                cells_at.(!best) <- cid :: cells_at.(!best);
                fix ()
              end
              else add_cell t res 1 (* nowhere to go; leave the overfill *)
        end
      in
      fix ()
    done
  done;
  wl := float_of_int (total_wl ());
  over := total_over ();
  let positions = Array.map tile_xy pos in
  {
    positions;
    wirelength = total_wl ();
    overfill = total_over ();
    moves_evaluated = !moves;
    seconds = Unix.gettimeofday () -. t_start;
  }

let run ?(seed = 1) ?(effort = 1.0) ?(pins = []) ~device ~region nl =
  run_core ~seed ~effort ~pins ~refine:None ~device ~region nl

let refine ?(seed = 1) ?(effort = 1.0) ?(pins = []) ?(freeze = true) ~device ~region ~previous
    ~diff (nl : N.t) =
  let ncells = Array.length nl.N.cells in
  let start = Array.make ncells None in
  let frozen = Array.make ncells false in
  (* [freeze = false] is the second refinement tier: every kept cell
     still starts on its previous tile, but none is pinned — used when
     the frozen pass could not legalize around the edit. *)
  List.iter
    (fun (old_cid, new_cid) ->
      start.(new_cid) <- Some previous.(old_cid);
      frozen.(new_cid) <- freeze)
    diff.N.cells_kept;
  (* Changed cells seed from their old tile when they have one but stay
     movable; added cells scatter as usual. *)
  List.iter
    (fun (old_cid, new_cid) ->
      match old_cid with
      | Some o -> start.(new_cid) <- Some previous.(o)
      | None -> ())
    diff.N.cells_changed;
  (* Cells on a rewired net are affected: release them so the
     refinement can absorb local disruption. *)
  List.iter
    (fun nid ->
      let n = nl.N.nets.(nid) in
      List.iter (fun c -> frozen.(c) <- false) (n.N.driver :: n.N.sinks))
    diff.N.nets_changed;
  run_core ~seed ~effort ~pins ~refine:(Some (start, frozen)) ~device ~region nl

let run_multi ?(effort = 1.0) ?(pins = []) ?telemetry ~seeds ~device ~region nl =
  match seeds with
  | [] -> invalid_arg "Place.run_multi: empty seed list"
  | [ s ] -> [ (s, run ~seed:s ~effort ~pins ~device ~region nl) ]
  | _ ->
      let module J = Pld_engine.Jobgraph in
      let module X = Pld_engine.Executor in
      let nodes =
        List.map
          (fun s ->
            J.node ~id:(Printf.sprintf "place:seed%d" s) ~kind:"place" (fun _ctx ->
                (s, run ~seed:s ~effort ~pins ~device ~region nl)))
          seeds
      in
      let r = X.run ?telemetry ~workers:(List.length seeds) (J.make nodes) in
      List.map snd r.X.artifacts
