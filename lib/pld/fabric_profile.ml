open Pld_ir
module Pmu = Pld_telemetry.Pmu
module Json = Pld_telemetry.Json
module Net = Pld_kpn.Network
module Fp = Pld_fabric.Floorplan

type op_stat = {
  op_name : string;
  op_kind : string;
  op_page : int option;
  op_firings : int;
  op_blocked_read : int;
  op_blocked_write : int;
}

type chan_stat = {
  ch_name : string;
  ch_src : string option;
  ch_dst : string option;
  ch_tokens : int;
  ch_peak : int;
  ch_capacity : int;
  ch_blocked_reads : int;
  ch_blocked_writes : int;
}

type t = {
  pf_graph : string;
  pf_level : string;
  pf_frame_cycles : int;
  pf_bottleneck : string;
  pf_trace : string option;
  pf_tenant : string option;
  pf_ops : op_stat list;
  pf_chans : chan_stat list;
  pf_links : (int * int) list;
  pf_softcores : (string * int) list;
  pf_pmu : Pmu.t;
}

(* Link series are named [noc.link.<id>.flits]; the total of each is
   the flit count the replay (or cosim) put on that link. *)
let links_of_pmu pmu =
  List.filter_map
    (fun (st : Pmu.stat) ->
      match String.split_on_char '.' st.Pmu.st_name with
      | [ "noc"; "link"; id; "flits" ] ->
          Option.map (fun id -> (id, int_of_float st.Pmu.st_total)) (int_of_string_opt id)
      | _ -> None)
    (Pmu.stats pmu)
  |> List.sort compare

let of_run ?trace ?tenant ~pmu (app : Build.app) (r : Runner.result) =
  let g = app.Build.graph in
  let chan_stat name =
    List.find_opt (fun (s : Net.channel_stats) -> s.Net.chan = name) r.Runner.channel_stats
  in
  let chans =
    List.map
      (fun (c : Graph.channel) ->
        let tokens, peak, br, bw =
          match chan_stat c.chan_name with
          | Some s -> (s.Net.tokens, s.Net.peak_occupancy, s.Net.blocked_reads, s.Net.blocked_writes)
          | None -> (0, 0, 0, 0)
        in
        {
          ch_name = c.chan_name;
          ch_src = Graph.producer g c.chan_name;
          ch_dst = Graph.consumer g c.chan_name;
          ch_tokens = tokens;
          ch_peak = peak;
          ch_capacity = c.depth;
          ch_blocked_reads = br;
          ch_blocked_writes = bw;
        })
      g.channels
  in
  let ops =
    List.map
      (fun (i : Graph.instance) ->
        let name = i.inst_name in
        let kind =
          match List.assoc_opt name app.Build.operators with
          | Some (Build.Hw_page _) -> "hw"
          | Some (Build.Soft_page _) -> "softcore"
          | None -> "mono"
        in
        let firings =
          match Pmu.stat pmu ("kpn.proc." ^ name ^ ".firings") with
          | Some st -> st.Pmu.st_count
          | None -> 0
        in
        (* An operator's read stalls happen on the channels it consumes,
           its write stalls on the channels it produces. *)
        let br =
          List.fold_left
            (fun acc c -> if c.ch_dst = Some name then acc + c.ch_blocked_reads else acc)
            0 chans
        in
        let bw =
          List.fold_left
            (fun acc c -> if c.ch_src = Some name then acc + c.ch_blocked_writes else acc)
            0 chans
        in
        {
          op_name = name;
          op_kind = kind;
          op_page = List.assoc_opt name app.Build.assignment;
          op_firings = firings;
          op_blocked_read = br;
          op_blocked_write = bw;
        })
      g.instances
  in
  {
    pf_graph = g.Graph.graph_name;
    pf_level = Build.level_name app.Build.level;
    pf_frame_cycles = r.Runner.perf.Runner.frame_cycles;
    pf_bottleneck = r.Runner.perf.Runner.bottleneck;
    pf_trace = trace;
    pf_tenant = tenant;
    pf_ops = ops;
    pf_chans = chans;
    pf_links = links_of_pmu pmu;
    pf_softcores = r.Runner.softcore_cycles;
    pf_pmu = pmu;
  }

(* JSON codec. Same explicitness discipline as the other exporters:
   every field present, [null] for absent options, validated on the
   way back in. *)

let opt_str = function None -> Json.Null | Some s -> Json.String s

let op_json o =
  Json.Obj
    [
      ("name", Json.String o.op_name);
      ("kind", Json.String o.op_kind);
      ("page", match o.op_page with None -> Json.Null | Some p -> Json.Int p);
      ("firings", Json.Int o.op_firings);
      ("blocked_read", Json.Int o.op_blocked_read);
      ("blocked_write", Json.Int o.op_blocked_write);
    ]

let chan_json c =
  Json.Obj
    [
      ("name", Json.String c.ch_name);
      ("src", opt_str c.ch_src);
      ("dst", opt_str c.ch_dst);
      ("tokens", Json.Int c.ch_tokens);
      ("peak", Json.Int c.ch_peak);
      ("capacity", Json.Int c.ch_capacity);
      ("blocked_reads", Json.Int c.ch_blocked_reads);
      ("blocked_writes", Json.Int c.ch_blocked_writes);
    ]

let to_json p =
  Json.Obj
    [
      ("graph", Json.String p.pf_graph);
      ("level", Json.String p.pf_level);
      ("frame_cycles", Json.Int p.pf_frame_cycles);
      ("bottleneck", Json.String p.pf_bottleneck);
      ("trace", opt_str p.pf_trace);
      ("tenant", opt_str p.pf_tenant);
      ("ops", Json.List (List.map op_json p.pf_ops));
      ("channels", Json.List (List.map chan_json p.pf_chans));
      ( "links",
        Json.List (List.map (fun (id, flits) -> Json.List [ Json.Int id; Json.Int flits ]) p.pf_links)
      );
      ( "softcores",
        Json.List
          (List.map
             (fun (n, c) -> Json.Obj [ ("instance", Json.String n); ("cycles", Json.Int c) ])
             p.pf_softcores) );
      ("pmu", Pmu.to_json p.pf_pmu);
    ]

let ( let* ) = Result.bind

let str_field j name =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | _ -> Error (Printf.sprintf "profile: missing string field %S" name)

let int_field j name =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | _ -> Error (Printf.sprintf "profile: missing integer field %S" name)

let opt_str_field j name =
  match Json.member name j with
  | Some (Json.String s) -> Ok (Some s)
  | Some Json.Null | None -> Ok None
  | _ -> Error (Printf.sprintf "profile: field %S is not a string" name)

let list_field j name =
  match Json.member name j with
  | Some (Json.List l) -> Ok l
  | _ -> Error (Printf.sprintf "profile: missing list field %S" name)

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let op_of_json j =
  let* name = str_field j "name" in
  let* kind = str_field j "kind" in
  let* page =
    match Json.member "page" j with
    | Some (Json.Int p) -> Ok (Some p)
    | Some Json.Null | None -> Ok None
    | _ -> Error "profile: op page is not an integer"
  in
  let* firings = int_field j "firings" in
  let* br = int_field j "blocked_read" in
  let* bw = int_field j "blocked_write" in
  Ok
    {
      op_name = name;
      op_kind = kind;
      op_page = page;
      op_firings = firings;
      op_blocked_read = br;
      op_blocked_write = bw;
    }

let chan_of_json j =
  let* name = str_field j "name" in
  let* src = opt_str_field j "src" in
  let* dst = opt_str_field j "dst" in
  let* tokens = int_field j "tokens" in
  let* peak = int_field j "peak" in
  let* capacity = int_field j "capacity" in
  let* br = int_field j "blocked_reads" in
  let* bw = int_field j "blocked_writes" in
  Ok
    {
      ch_name = name;
      ch_src = src;
      ch_dst = dst;
      ch_tokens = tokens;
      ch_peak = peak;
      ch_capacity = capacity;
      ch_blocked_reads = br;
      ch_blocked_writes = bw;
    }

let link_of_json = function
  | Json.List [ Json.Int id; Json.Int flits ] -> Ok (id, flits)
  | _ -> Error "profile: link entry is not [id, flits]"

let softcore_of_json j =
  let* n = str_field j "instance" in
  let* c = int_field j "cycles" in
  Ok (n, c)

let of_json j =
  let* graph = str_field j "graph" in
  let* level = str_field j "level" in
  let* frame_cycles = int_field j "frame_cycles" in
  let* bottleneck = str_field j "bottleneck" in
  let* trace = opt_str_field j "trace" in
  let* tenant = opt_str_field j "tenant" in
  let* ops = Result.bind (list_field j "ops") (map_result op_of_json) in
  let* chans = Result.bind (list_field j "channels") (map_result chan_of_json) in
  let* links = Result.bind (list_field j "links") (map_result link_of_json) in
  let* softcores = Result.bind (list_field j "softcores") (map_result softcore_of_json) in
  let* pmu =
    match Json.member "pmu" j with
    | Some pj -> Pmu.of_json pj
    | None -> Error "profile: missing pmu document"
  in
  Ok
    {
      pf_graph = graph;
      pf_level = level;
      pf_frame_cycles = frame_cycles;
      pf_bottleneck = bottleneck;
      pf_trace = trace;
      pf_tenant = tenant;
      pf_ops = ops;
      pf_chans = chans;
      pf_links = links;
      pf_softcores = softcores;
      pf_pmu = pmu;
    }

(* Heatmap rendering: the floorplan grid shaded by firing activity,
   one legend row per occupied page, link utilization bars below. *)

let shade_chars = [| '.'; ':'; '-'; '='; '+'; '*'; '#'; '@' |]

let shade ~max_v v =
  if v <= 0 || max_v <= 0 then '.'
  else
    let idx =
      int_of_float (float_of_int (Array.length shade_chars - 1) *. float_of_int v /. float_of_int max_v)
    in
    shade_chars.(min (Array.length shade_chars - 1) idx)

let bar ~width ~max_v v =
  let n = if max_v <= 0 then 0 else v * width / max_v in
  String.make (min width n) '#' ^ String.make (width - min width n) ' '

let stall_pct o =
  let total = o.op_firings + o.op_blocked_read + o.op_blocked_write in
  if total = 0 then 0.0
  else 100.0 *. float_of_int (o.op_blocked_read + o.op_blocked_write) /. float_of_int total

let render_heatmap p (fp : Fp.t) =
  let by_page =
    List.filter_map (fun o -> Option.map (fun pg -> (pg, o)) o.op_page) p.pf_ops
  in
  let max_firings = List.fold_left (fun acc (_, o) -> max acc o.op_firings) 0 by_page in
  let d = fp.Fp.device in
  let module Device = Pld_fabric.Device in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "fabric heatmap: %s @ %s — %d frame cycles, bottleneck %s\n" p.pf_graph
       p.pf_level p.pf_frame_cycles p.pf_bottleneck);
  for y = d.Device.rows - 1 downto 0 do
    for x = 0 to d.Device.cols - 1 do
      let c =
        match Fp.page_of_tile fp x y with
        | Some pg -> begin
            match List.assoc_opt pg.Fp.page_id by_page with
            | Some o -> shade ~max_v:max_firings o.op_firings
            | None -> ' '
          end
        | None -> begin
            match Device.kind_at d x y with
            | Device.Shell -> 'S'
            | Device.Noc -> 'N'
            | Device.Hbm -> 'H'
            | Device.Clb | Device.Bram | Device.Dsp -> ' '
          end
      in
      Buffer.add_char buf c
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf "pages:\n";
  List.iter
    (fun (pg, o) ->
      Buffer.add_string buf
        (Printf.sprintf "  page %2d %c %-16s %8d firings  %5.1f%% stalled (%d rd / %d wr)\n" pg
           (shade ~max_v:max_firings o.op_firings)
           o.op_name o.op_firings (stall_pct o) o.op_blocked_read o.op_blocked_write))
    (List.sort compare by_page);
  let max_flits = List.fold_left (fun acc (_, f) -> max acc f) 0 p.pf_links in
  if p.pf_links <> [] then begin
    Buffer.add_string buf "links:\n";
    List.iter
      (fun (id, flits) ->
        Buffer.add_string buf
          (Printf.sprintf "  link %3d [%s] %d flits\n" id (bar ~width:20 ~max_v:max_flits flits)
             flits))
      p.pf_links
  end;
  Buffer.contents buf
