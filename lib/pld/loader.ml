module Card = Pld_platform.Card
module Xclbin = Pld_platform.Xclbin
module Fault = Pld_faults.Fault
module N = Pld_netlist.Netlist
module Telemetry = Pld_telemetry.Telemetry

type recovery_event =
  | Load_retry of { inst : string; page : int; attempt : int; backoff_seconds : float }
  | Spare_relink of { inst : string; from_page : int; to_page : int; relink_seconds : float }
  | Softcore_fallback of { inst : string; from_page : int; to_page : int; relink_seconds : float }

type deploy_result = {
  seconds : float;
  app : Build.app;
  recovery : recovery_event list;
  degraded : bool;
}

exception Deploy_failed of string

let deploy_failed fmt = Printf.ksprintf (fun m -> raise (Deploy_failed m)) fmt

let describe_recovery = function
  | Load_retry { inst; page; attempt; backoff_seconds } ->
      Printf.sprintf "retry   %s: page %d readback failed (attempt %d, backoff %.1f ms)" inst page
        attempt (backoff_seconds *. 1000.0)
  | Spare_relink { inst; from_page; to_page; relink_seconds } ->
      Printf.sprintf "relink  %s: page %d defective -> spare page %d (%.2f s relink)" inst
        from_page to_page relink_seconds
  | Softcore_fallback { inst; from_page; to_page; relink_seconds } ->
      Printf.sprintf "degrade %s: page %d defective, no spare fits -> softcore on page %d (%.2f s)"
        inst from_page to_page relink_seconds

(* First retry waits 2 ms, then doubles: the bounded exponential
   backoff a real loader daemon would use between DFX attempts. *)
let backoff_seconds attempt = 0.002 *. (2.0 ** float_of_int (attempt - 1))

let xclbin_of = function
  | Build.Hw_page h -> h.Flow.xclbin
  | Build.Soft_page s -> s.Flow.xclbin0

let demand_of = function
  | Build.Hw_page h -> N.total_res h.Flow.impl.Pld_hls.Hls_compile.netlist
  | Build.Soft_page _ -> Build.softcore_demand

(* Recompile an operator for a different page, one rung of the
   recovery ladder. [soften] drops a HW operator to the -O0 softcore
   build (the bottom rung); the modeled recompile seconds ride on the
   deploy clock, which is exactly the honesty the report needs. *)
let relink_operator ~soften (fp : Pld_fabric.Floorplan.t) ~inst ~page compiled =
  match (compiled, soften) with
  | Build.Soft_page s, _ ->
      let s' = Flow.compile_o0_operator ~page ~inst s.Flow.op0 in
      (Build.Soft_page s', s'.Flow.riscv_seconds)
  | Build.Hw_page h, false ->
      let h' = Flow.compile_o1_operator ~impl:h.Flow.impl fp ~page ~inst h.Flow.op in
      (* The HLS result is reused, so only the page-scoped share of the
         flow is paid again. *)
      (Build.Hw_page h', Flow.total_seconds h'.Flow.times -. h'.Flow.times.Flow.hls)
  | Build.Hw_page h, true ->
      let s = Flow.compile_o0_operator ~page ~inst h.Flow.op in
      (Build.Soft_page s, s.Flow.riscv_seconds)

let deploy ?faults ?(max_retries = 3) card (app : Build.app) =
  (match faults with Some f -> Card.set_faults card (Some f) | None -> ());
  let tele = Telemetry.default in
  Telemetry.with_span tele ~cat:"loader"
    ~attrs:[ ("level", Build.level_name app.Build.level) ]
    "deploy"
  @@ fun () ->
  match app.Build.level with
  | Build.O3 | Build.Vitis ->
      let mono = Build.monolithic_exn app in
      let seconds = Card.load card mono.Flow.xclbin3 in
      Telemetry.set_gauge (Telemetry.gauge tele "loader.seconds") seconds;
      { seconds; app; recovery = []; degraded = false }
  | Build.O0 | Build.O1 ->
      let fp = app.Build.fp in
      let t = ref (Card.load card (Flow.overlay_xclbin fp)) in
      let recovery = ref [] in
      let degraded = ref false in
      (* Pages found bad during this deploy join the defect map so no
         spare search ever lands on them again. *)
      let defective =
        ref (match faults with Some f -> (Fault.spec f).Fault.defective_pages | None -> [])
      in
      let assignment = ref app.Build.assignment in
      (* Load one container and readback-verify, retrying with backoff.
         Returns [true] once a load verifies, [false] when the page is
         given up on. *)
      let load_verified ~inst ~page xb =
        let rec go attempt =
          t := !t +. Card.load card xb;
          if Card.readback_ok card xb then true
          else if attempt <= max_retries then begin
            let backoff = backoff_seconds attempt in
            t := !t +. backoff;
            recovery := Load_retry { inst; page; attempt; backoff_seconds = backoff } :: !recovery;
            Telemetry.incr (Telemetry.counter tele "loader.retries");
            Telemetry.instant tele ~cat:"loader"
              ~attrs:
                [ ("inst", inst); ("page", string_of_int page); ("attempt", string_of_int attempt) ]
              "load-retry";
            go (attempt + 1)
          end
          else false
        in
        go 1
      in
      let operators =
        List.map
          (fun (inst, compiled) ->
            let page = List.assoc inst !assignment in
            Telemetry.with_span tele ~cat:"loader"
              ~attrs:[ ("page", string_of_int page) ]
              ("load:" ^ inst)
            @@ fun () ->
            if load_verified ~inst ~page (xclbin_of compiled) then (inst, compiled)
            else begin
              (* The page keeps garbling past the retry budget: treat
                 it as defective and walk the recovery ladder — spare
                 page first, then the softcore build, before giving up
                 and sending the developer back to a full recompile. *)
              defective := page :: !defective;
              let rec try_spares ~soften =
                let used = List.filter_map (fun (i, p) -> if i = inst then None else Some p) !assignment in
                let demand = if soften then Build.softcore_demand else demand_of compiled in
                match Assign.spare_pages ~defective:!defective fp ~used demand with
                | [] ->
                    if soften then
                      deploy_failed
                        "%s: page %d defective and no clean page left (defect map: %s) — full recompile needed"
                        inst page
                        (String.concat ", " (List.map string_of_int (List.sort_uniq compare !defective)))
                    else begin
                      (* No spare fits the HW build; drop a rung. *)
                      degraded := true;
                      try_spares ~soften:true
                    end
                | spare :: _ ->
                    let compiled', relink_seconds =
                      Telemetry.with_span tele ~cat:"loader"
                        ~attrs:
                          [ ("from_page", string_of_int page); ("to_page", string_of_int spare) ]
                        ("relink:" ^ inst)
                        (fun () -> relink_operator ~soften fp ~inst ~page:spare compiled)
                    in
                    t := !t +. relink_seconds;
                    if load_verified ~inst ~page:spare (xclbin_of compiled') then begin
                      let softened =
                        soften && (match compiled with Build.Hw_page _ -> true | _ -> false)
                      in
                      Telemetry.incr
                        (Telemetry.counter tele
                           (if softened then "loader.softcore_fallbacks" else "loader.relinks"));
                      recovery :=
                        (if softened then
                           Softcore_fallback { inst; from_page = page; to_page = spare; relink_seconds }
                         else Spare_relink { inst; from_page = page; to_page = spare; relink_seconds })
                        :: !recovery;
                      assignment := List.map (fun (i, p) -> if i = inst then (i, spare) else (i, p)) !assignment;
                      (inst, compiled')
                    end
                    else begin
                      defective := spare :: !defective;
                      try_spares ~soften
                    end
              in
              try_spares ~soften:false
            end)
          app.Build.operators
      in
      let app' = { app with Build.assignment = !assignment; operators } in
      (* Link: program every source leaf's routing registers with
         config packets through the network (retransmitting any that
         the injected link faults eat). *)
      let links = Runner.noc_links app' [] in
      let net = Card.noc card in
      let cycles =
        Telemetry.with_span tele ~cat:"loader"
          ~attrs:[ ("links", string_of_int (List.length links)) ]
          "link" (fun () ->
            let cycles = Pld_noc.Traffic.config_cycles net links in
            Pld_noc.Traffic.configure_links net links;
            cycles)
      in
      t := !t +. (float_of_int cycles /. 200.0e6);
      Telemetry.set_gauge (Telemetry.gauge tele "loader.seconds") !t;
      { seconds = !t; app = app'; recovery = List.rev !recovery; degraded = !degraded }

let describe_artifacts (app : Build.app) =
  match app.Build.level with
  | Build.O3 | Build.Vitis -> Xclbin.describe (Build.monolithic_exn app).Flow.xclbin3
  | Build.O0 | Build.O1 ->
      String.concat "\n"
        (Xclbin.describe (Flow.overlay_xclbin app.Build.fp)
        :: List.map
             (fun (_, c) ->
               Xclbin.describe
                 (match c with Build.Hw_page h -> h.Flow.xclbin | Build.Soft_page s -> s.Flow.xclbin0))
             app.Build.operators)
