(** The three compile flows of §6: -O0 (softcore, Fig. 5), -O1
    (separate per-page place & route, Fig. 6), -O3 (monolithic,
    Fig. 7), plus the undecomposed Vitis baseline.

    Phase seconds combine the measured wall-clock of our own algorithms
    with fixed per-invocation overheads modelling backend-tool startup
    and context loading (the cost the abstract shell shrinks but never
    removes); the two components are kept separate in {!phase_times}. *)

open Pld_ir

exception Build_error of string
(** A build artifact or graph piece that should exist does not — e.g.
    asking a paged app for its monolithic bitstream, or an instance
    name that is not in the graph. The message names the app/graph,
    the level, and the missing piece. Re-exported as
    [Build.Build_error]. *)

val find_instance_exn : context:string -> Graph.t -> string -> Graph.instance
(** Like [Graph.find_instance] but raises {!Build_error} naming the
    [context], the graph, and the known instances. *)

val find_channel_exn : context:string -> Graph.t -> string -> Graph.channel
(** Like [Graph.find_channel] but raises {!Build_error}. *)

type phase_times = {
  hls : float;
  syn : float;
  pnr : float;
  bitgen : float;
  overhead : float;  (** modeled tool fixed costs, documented in DESIGN.md *)
}

val total_seconds : phase_times -> float

type o1_operator = {
  inst : string;
  op : Op.t;
  page : int;
  impl : Pld_hls.Hls_compile.impl;
  pnr : Pld_pnr.Pnr.result;
  xclbin : Pld_platform.Xclbin.t;
  times : phase_times;
}

type o0_operator = {
  inst0 : string;
  op0 : Op.t;
  page0 : int;
  program : Pld_riscv.Codegen.program;
  elf : Pld_riscv.Elf.packed;
  xclbin0 : Pld_platform.Xclbin.t;
  riscv_seconds : float;
}

type o3_app = {
  graph : Graph.t;
  impls : (string * Pld_hls.Hls_compile.impl) list;
  merged : Pld_netlist.Netlist.t;
  pnr3 : Pld_pnr.Pnr.result;
  xclbin3 : Pld_platform.Xclbin.t;
  times3 : phase_times;
}

val noc_leaves : Pld_fabric.Floorplan.t -> int
(** Leaves the overlay's NoC instantiates: leaf 0 (DMA) plus one per
    page (page id = leaf id); [Bft.create] rounds this up to 4-ary
    tree capacity. The single source of truth for the leaf count. *)

val overlay_xclbin : Pld_fabric.Floorplan.t -> Pld_platform.Xclbin.t

val compile_o1_operator :
  ?seed:int ->
  ?impl:Pld_hls.Hls_compile.impl ->
  Pld_fabric.Floorplan.t ->
  page:int ->
  inst:string ->
  Op.t ->
  o1_operator
(** HLS → operator packer (leaf interface) → page-scoped P&R with the
    abstract shell → partial xclbin. [impl] supplies an already-run HLS
    result for this same operator (the build engine's HLS job feeds
    both page assignment and the page compile), skipping the re-run. *)

val compile_o0_operator : page:int -> inst:string -> Op.t -> o0_operator

val compile_o3 :
  ?seed:int ->
  ?vitis_baseline:bool ->
  ?previous:Pld_pnr.Pnr.result ->
  ?pnr_seeds:int list ->
  Pld_fabric.Floorplan.t ->
  Graph.t ->
  o3_app
(** [vitis_baseline] compiles the undecomposed design (direct wires
    instead of inter-operator FIFOs), the paper's "Vitis flow" column.

    [previous] (a prior monolithic P&R of the same region — typically
    the last build's [pnr3]) routes the compile through
    [Pnr.implement_delta]: placement reuse and rip-up-only rerouting
    for the edited netlist, falling back to scratch when the edit is
    too large. [pnr_seeds] with two or more distinct seeds instead
    races that many annealing seeds on domains and keeps the best
    post-STA timing ([Pnr.implement_multi]) — for cold compiles;
    [previous] wins when both are given. *)
