(** The loading half of "pld": push compiled containers onto the card
    in DFX order (overlay first, then L2 pages) and link the dataflow
    graph by sending routing-register configuration packets through
    the network.

    Deploys are fault-tolerant: every page load is readback-verified
    (CRC over the configuration frames), and a page that keeps failing
    walks the recovery ladder — bounded-backoff retries, then a relink
    onto a spare page, then the -O0 softcore build — before the deploy
    gives up. The ladder is the refinement ladder of §6 run in
    reverse, and it only ever relinks: no full recompile happens here. *)

type recovery_event =
  | Load_retry of { inst : string; page : int; attempt : int; backoff_seconds : float }
      (** A load's readback failed; it was retried after an exponential
          backoff (2 ms doubling). *)
  | Spare_relink of { inst : string; from_page : int; to_page : int; relink_seconds : float }
      (** [from_page] exhausted its retries, so the operator was
          recompiled for spare page [to_page] (HLS reused; only the
          page-scoped P&R is paid) and loaded there. *)
  | Softcore_fallback of { inst : string; from_page : int; to_page : int; relink_seconds : float }
      (** No clean page fits the hardware build: the operator dropped a
          rung to the -O0 softcore image, which fits every page. The
          deploy is then {e degraded} — functionally identical, slower. *)

type deploy_result = {
  seconds : float;  (** modeled load + link + retry/relink seconds *)
  app : Build.app;
      (** the app as actually deployed: assignment and operators
          reflect any relinks (identical to the input when no fault
          fired) *)
  recovery : recovery_event list;  (** in the order they happened *)
  degraded : bool;  (** at least one HW operator fell back to softcore *)
}

exception Deploy_failed of string
(** The recovery ladder ran out of clean pages. The message carries the
    defect map; a full recompile (new floorplan) is the only way out. *)

val describe_recovery : recovery_event -> string

val deploy :
  ?faults:Pld_faults.Fault.t -> ?max_retries:int -> Pld_platform.Card.t -> Build.app -> deploy_result
(** [faults] attaches the injector to the card (page-load corruption,
    NoC link faults) before loading. [max_retries] (default 3) bounds
    the per-page retry rung. Raises [Pld_platform.Card.Protocol_error]
    on DFX violations and {!Deploy_failed} when recovery is
    impossible. *)

val describe_artifacts : Build.app -> string
(** One line per xclbin/ELF the deploy would load. *)
