open Pld_ir
module N = Pld_netlist.Netlist
module Fp = Pld_fabric.Floorplan

exception No_fit of string

(* Leaf interface plus the page's linking-network endpoint share:
   ~500 + ~500 LUTs each at full scale (Sec 4.1), /16 for the fabric
   model, plus slack for the address registers. *)
let leaf_interface_res = { N.luts = 60; ffs = 100; brams = 0; dsps = 0 }

let fits page_capacity res = N.res_le (N.res_add res leaf_interface_res) page_capacity

(* Free pages an operator could be relinked onto: not in use, not on
   the defect map, capacity covers the demand; smallest fitting page
   first so spares waste as little fabric as the original best-fit. *)
let spare_pages ?(defective = []) (fp : Fp.t) ~used res =
  fp.pages
  |> List.filter (fun (p : Fp.page) ->
         (not (List.mem p.page_id used)) && (not (List.mem p.page_id defective))
         && fits p.capacity res)
  |> List.sort (fun (a : Fp.page) (b : Fp.page) ->
         compare (a.capacity.N.luts, a.page_id) (b.capacity.N.luts, b.page_id))
  |> List.map (fun (p : Fp.page) -> p.page_id)

let assign ?(defective = []) (fp : Fp.t) instances =
  let free = Hashtbl.create 32 in
  List.iter
    (fun (p : Fp.page) ->
      if not (List.mem p.page_id defective) then Hashtbl.replace free p.page_id p.capacity)
    fp.pages;
  let result = ref [] in
  let demand res = N.res_add res leaf_interface_res in
  let take inst page_id cap =
    Hashtbl.remove free page_id;
    ignore cap;
    result := (inst, page_id) :: !result
  in
  (* Pass 1: explicit pragma hints. *)
  let hinted, rest =
    List.partition (fun (_, target, _) -> match target with Graph.Hw { page_hint = Some _ } -> true | _ -> false) instances
  in
  List.iter
    (fun (inst, target, res) ->
      match target with
      | Graph.Hw { page_hint = Some p } -> begin
          match Hashtbl.find_opt free p with
          | Some cap when N.res_le (demand res) cap -> take inst p cap
          | Some _ -> raise (No_fit (Printf.sprintf "%s: pragma p_num=%d but operator does not fit that page" inst p))
          | None when List.mem p defective ->
              raise (No_fit (Printf.sprintf "%s: pragma p_num=%d but page is on the defect map" inst p))
          | None -> raise (No_fit (Printf.sprintf "%s: pragma p_num=%d but page is taken or unknown" inst p))
        end
      | Graph.Hw { page_hint = None } | Graph.Riscv -> assert false)
    hinted;
  (* Pass 2: best-fit decreasing by LUT demand. Softcore targets take
     any page (the PicoRV32 fits every type). *)
  let rest =
    List.sort (fun (_, _, a) (_, _, b) -> compare (demand b).N.luts (demand a).N.luts) rest
  in
  List.iter
    (fun (inst, target, res) ->
      let need = demand res in
      let candidates =
        Hashtbl.fold (fun p cap acc -> if N.res_le need cap then (p, cap) :: acc else acc) free []
      in
      let by_waste =
        List.sort
          (fun (_, a) (_, b) -> compare (a.N.luts - need.N.luts, a) (b.N.luts - need.N.luts, b))
          candidates
      in
      match (by_waste, target) with
      | (p, cap) :: _, _ -> take inst p cap
      | [], Graph.Riscv ->
          raise (No_fit (Printf.sprintf "%s: no free page left for softcore" inst))
      | [], Graph.Hw _ ->
          raise
            (No_fit
               (Printf.sprintf "%s: needs %s but no free page fits — decompose the operator" inst
                  (Format.asprintf "%a" N.pp_res need))))
    rest;
  List.rev !result
