(** Execution engines and the performance models behind Tab. 3 and
    Figs. 10–11.

    All flows share the same functional semantics (the KPN reference);
    what differs is the timing model:

    - -O3 / Vitis: each operator runs at the post-P&R Fmax with its HLS
      schedule; the frame time is the pipeline bottleneck's cycles.
    - -O1: compute runs at the 200 MHz overlay clock and every stream
      crosses the linking network — the frame time is the max of the
      compute bottleneck and the replayed NoC drain time.
    - -O0: softcore pages execute their real RV32 binaries cycle by
      cycle (co-simulated inside the KPN); hardware pages keep the -O1
      model. The frame time is the slowest stage.

    Runs are supervised: a co-simulation that deadlocks or exhausts its
    fuel raises {!Stalled} with a diagnosis (who is blocked, what sits
    in each channel) rather than a bare exception, and a softcore that
    traps raises {!Softcore_trap} with the core's machine state. *)

open Pld_ir

type perf = {
  fmax_mhz : float;
  frame_cycles : int;
  ms_per_input : float;
  bottleneck : string;
  link_seconds : float;  (** NoC configuration (linking) time, -O0/-O1 *)
  noc_dropped : int;  (** flits eaten by injected link faults (replay) *)
  noc_corrupted : int;  (** flits whose CRC check failed on delivery *)
  noc_retransmitted : int;  (** sender-side retransmissions that recovered them *)
}

type result = {
  outputs : (string * Value.t list) list;
  perf : perf;
  printed : (string * string) list;
  softcore_cycles : (string * int) list;  (** per softcore instance *)
  channel_stats : Pld_kpn.Network.channel_stats list;
      (** per-channel token/occupancy/stall figures from the functional
          run — the raw material of back-pressure attribution *)
}

exception Softcore_trap of string * Pld_riscv.Cpu.trap
(** A softcore instance trapped during co-simulation: instance name
    plus the core's pc / instruction word / cycle count. *)

type stall_diagnosis = {
  stall_reason : string;  (** deadlock vs. fuel exhaustion *)
  blocked : string list;  (** instances that never finished *)
  channels : (string * int * int) list;
      (** per channel: (name, tokens in flight, block events) *)
}

exception Stalled of stall_diagnosis
(** The co-simulation watchdog: raised in place of
    [Pld_kpn.Network.Deadlock] / [Out_of_fuel] with enough structure
    to tell a hung operator from an underfed input. *)

val describe_stall : stall_diagnosis -> string

val noc_links : Build.app -> Pld_kpn.Network.channel_stats list -> Pld_noc.Traffic.link list
(** One logical NoC link per graph channel (leaf = page id, DMA on
    leaf 0); token counts come from a functional run's channel stats
    (0 when absent). Used by the loader and the perf model. *)

val noc_replay :
  ?faults:Pld_faults.Fault.t ->
  ?pmu:Pld_telemetry.Pmu.t ->
  Build.app ->
  Pld_kpn.Network.channel_stats list ->
  int * Pld_noc.Traffic.result
(** Replay the frame's traffic on a fresh NoC whose leaf count is
    derived from the app's floorplan ([Flow.noc_leaves]) — structurally
    identical to the deployed overlay's network. Returns (config
    cycles, replay result). With [faults], drop/corrupt rates apply and
    the result's fault counters are meaningful. [pmu] receives the
    replay network's windowed link/delay/deflection series. *)

val run :
  ?fuel:int ->
  ?faults:Pld_faults.Fault.t ->
  ?pmu:Pld_telemetry.Pmu.t ->
  Build.app ->
  inputs:(string * Value.t list) list ->
  result
(** Raises on validation failures; {!Stalled} when the co-simulation
    wedges; {!Softcore_trap} when an injected (or real) trap fires.
    [faults] drives softcore hang/trap injection and the NoC replay's
    link faults. [pmu] collects windowed fabric series from every
    engine the flow exercises (KPN scheduler, NoC replay, softcores) —
    the input to {!Fabric_profile.of_run}. *)

val run_host : Graph.t -> inputs:(string * Value.t list) list -> (string * Value.t list) list * float
(** The "X86 g++" column: execute the application natively on the host
    (the reference interpreter) and measure wall-clock seconds. *)

val emulation_slowdown : float
(** Modeled Vitis hardware-emulation slowdown over native host
    execution (documented constant). *)
