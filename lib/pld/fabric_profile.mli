(** Per-build fabric profile: the PMU's windowed series plus the
    run's per-operator, per-channel and per-link figures, snapshotted
    into one self-contained document.

    This is the artifact the observability plane trades in: {!of_run}
    assembles it after a {!Runner.run}, the engine store persists it
    next to the build's bitstreams (so a cache hit still carries the
    primary's profile), [pldd] serves it over the [profile] wire verb,
    and [lib/insight]'s back-pressure attribution consumes it. The
    JSON form round-trips exactly ({!of_json} of {!to_json}). *)

type op_stat = {
  op_name : string;
  op_kind : string;  (** ["hw"], ["softcore"], or ["mono"] *)
  op_page : int option;  (** assigned page (O0/O1 only) *)
  op_firings : int;  (** scheduler resumes of this process *)
  op_blocked_read : int;  (** stalls on empty input channels (starved) *)
  op_blocked_write : int;  (** stalls on full output channels (back-pressured) *)
}

type chan_stat = {
  ch_name : string;
  ch_src : string option;  (** producer instance; [None] = host/DMA *)
  ch_dst : string option;  (** consumer instance; [None] = host/DMA *)
  ch_tokens : int;
  ch_peak : int;
  ch_capacity : int;  (** declared depth *)
  ch_blocked_reads : int;
  ch_blocked_writes : int;
}

type t = {
  pf_graph : string;
  pf_level : string;
  pf_frame_cycles : int;
  pf_bottleneck : string;  (** the perf model's critical-path verdict *)
  pf_trace : string option;  (** trace id of the run that produced it *)
  pf_tenant : string option;  (** tenant whose build produced it *)
  pf_ops : op_stat list;
  pf_chans : chan_stat list;
  pf_links : (int * int) list;  (** (NoC link id, flits carried) *)
  pf_softcores : (string * int) list;  (** per-instance cycle counts *)
  pf_pmu : Pld_telemetry.Pmu.t;  (** the windowed series themselves *)
}

val of_run :
  ?trace:string -> ?tenant:string -> pmu:Pld_telemetry.Pmu.t -> Build.app -> Runner.result -> t
(** Snapshot a finished run: channel stats and per-op stall splits from
    the runner's result, firing counts and link traffic from the PMU
    series the run recorded, topology (producers/consumers, pages) from
    the app. *)

val to_json : t -> Pld_telemetry.Json.t

val of_json : Pld_telemetry.Json.t -> (t, string) result
(** [of_json (to_json p)] reconstructs [p] exactly, PMU windows
    included. *)

val render_heatmap : t -> Pld_fabric.Floorplan.t -> string
(** ASCII heatmap: the floorplan grid with each active page shaded by
    its operator's firing activity, a per-page legend with stall
    fractions, and per-link utilization bars. The ranked back-pressure
    attribution lives one layer up, in [Pld_insight.Bottleneck]. *)
