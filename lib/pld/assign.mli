(** Operator→page assignment: PLD's virtualization of the card as
    pages (§4.2). Explicit [p_num] pragma hints are honoured first;
    remaining operators go best-fit-decreasing into the smallest page
    type whose capacity covers their post-synthesis area plus the leaf
    interface. *)

open Pld_ir

exception No_fit of string
(** Operator does not fit any free page — the developer must decompose
    it further (§3.4). *)

val leaf_interface_res : Pld_netlist.Netlist.res
(** Area charged on every page for the NoC leaf interface (~500 LUTs
    full-scale; scaled here like the rest of the fabric). *)

val fits : Pld_netlist.Netlist.res -> Pld_netlist.Netlist.res -> bool
(** [fits capacity res]: does [res] plus the leaf interface fit a page
    of that [capacity]? *)

val spare_pages :
  ?defective:int list ->
  Pld_fabric.Floorplan.t ->
  used:int list ->
  Pld_netlist.Netlist.res ->
  int list
(** Free pages an operator of area [res] could be relinked onto —
    excluding [used] assignments and the [defective] defect map —
    smallest fitting capacity first. *)

val assign :
  ?defective:int list ->
  Pld_fabric.Floorplan.t ->
  (string * Graph.target * Pld_netlist.Netlist.res) list ->
  (string * int) list
(** [(instance, required area)] list → [(instance, page_id)].
    [defective] pages are never assigned (the defect map). *)
