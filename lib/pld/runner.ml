open Pld_ir
module Net = Pld_kpn.Network
module Hls = Pld_hls.Hls_compile
module Fp = Pld_fabric.Floorplan
module Fault = Pld_faults.Fault

type perf = {
  fmax_mhz : float;
  frame_cycles : int;
  ms_per_input : float;
  bottleneck : string;
  link_seconds : float;
  noc_dropped : int;
  noc_corrupted : int;
  noc_retransmitted : int;
}

type result = {
  outputs : (string * Value.t list) list;
  perf : perf;
  printed : (string * string) list;
  softcore_cycles : (string * int) list;
  channel_stats : Net.channel_stats list;
}

exception Softcore_trap of string * Pld_riscv.Cpu.trap

type stall_diagnosis = {
  stall_reason : string;
  blocked : string list;
  channels : (string * int * int) list;
}

exception Stalled of stall_diagnosis

let describe_stall d =
  String.concat "\n"
    (Printf.sprintf "stalled: %s" d.stall_reason
    :: Printf.sprintf "  blocked instances: %s" (String.concat ", " d.blocked)
    :: List.map
         (fun (name, occ, blocks) ->
           Printf.sprintf "  channel %-16s %d token(s) in flight, %d block event(s)" name occ blocks)
         d.channels)

let emulation_slowdown = 20.0
let overlay_mhz = 200.0

let ms_of_cycles cycles mhz = float_of_int cycles /. (mhz *. 1000.0)

(* Host DMA cost for one frame: every flow pays it (§2.5's PCIe path). *)
let dma_ms ~inputs ~outputs =
  let count l = List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 l in
  1000.0
  *. Pld_platform.Dma.frame_seconds Pld_platform.Dma.default ~words_in:(count inputs)
       ~words_out:(count outputs)

(* NoC link list for an app: one logical stream per graph channel, with
   globally unique stream ids and token counts from the functional run. *)
let noc_links (app : Build.app) channel_stats =
  let g = app.Build.graph in
  let leaf_of inst =
    match List.assoc_opt inst app.Build.assignment with
    | Some page -> page (* page id = NoC leaf *)
    | None -> Pld_platform.Card.dma_leaf
  in
  List.mapi
    (fun idx (c : Graph.channel) ->
      let src = match Graph.producer g c.chan_name with Some p -> leaf_of p | None -> Pld_platform.Card.dma_leaf in
      let dst = match Graph.consumer g c.chan_name with Some q -> leaf_of q | None -> Pld_platform.Card.dma_leaf in
      let tokens =
        match List.find_opt (fun (s : Net.channel_stats) -> s.Net.chan = c.chan_name) channel_stats with
        | Some s -> s.Net.tokens
        | None -> 0
      in
      { Pld_noc.Traffic.src_leaf = src; src_stream = idx; dst_leaf = dst; dst_stream = idx; tokens })
    g.channels

(* Replay the frame's traffic on a NoC structurally identical to the
   deployed overlay's (leaf count derived from the floorplan, fault
   injector shared) — the timing model for the linking network,
   including retransmission cost on lossy links. *)
let noc_replay ?faults ?pmu (app : Build.app) channel_stats =
  let links = noc_links app channel_stats in
  let net = Pld_noc.Bft.create ~leaves:(Flow.noc_leaves app.Build.fp) ?faults ?pmu () in
  let cfg = Pld_noc.Traffic.config_cycles net links in
  let r =
    Pld_noc.Traffic.replay net
      (List.filter (fun (l : Pld_noc.Traffic.link) -> l.tokens > 0 && l.src_leaf <> l.dst_leaf) links)
  in
  (cfg, r)

let hw_bottleneck impls =
  List.fold_left
    (fun (best_n, best_c) (n, (impl : Hls.impl)) ->
      let c = impl.Hls.perf.Pld_hls.Sched.cycles_per_firing in
      if c > best_c then (n, c) else (best_n, best_c))
    ("-", 0) impls

(* Mixed co-simulation: softcore instances execute their RV32 binaries
   against the KPN channels; hardware instances run the reference
   interpreter (their timing comes from the HLS schedule). The run is
   supervised by a watchdog: deadlock or fuel exhaustion becomes a
   structured {!Stalled} diagnosis instead of a bare exception. *)
let run_cosim ?fuel ?faults ?pmu (app : Build.app) ~inputs =
  let g = app.Build.graph in
  let module Telemetry = Pld_telemetry.Telemetry in
  Telemetry.with_span Telemetry.default ~cat:"cosim"
    ~attrs:[ ("graph", g.Graph.graph_name) ]
    ("cosim:" ^ g.Graph.graph_name)
  @@ fun () ->
  let net = Net.create ?pmu () in
  let channels = Hashtbl.create 16 in
  List.iter
    (fun (c : Graph.channel) ->
      let capacity = if List.mem c.chan_name g.outputs then max_int else c.depth in
      Hashtbl.replace channels c.chan_name (Net.channel net ~capacity ~name:c.chan_name c.elem))
    g.channels;
  let chan name = Hashtbl.find channels name in
  List.iter (fun (name, values) -> List.iter (Net.push (chan name)) values) inputs;
  let printed = ref [] in
  let cores = ref [] in
  List.iter
    (fun (inst, compiled) ->
      match compiled with
      | Build.Soft_page (s : Flow.o0_operator) ->
          let i = Flow.find_instance_exn ~context:"Runner.run_cosim" g inst in
          let in_chans =
            List.map (fun (p : Op.port) -> chan (List.assoc p.port_name i.bindings)) s.Flow.op0.Op.inputs
          in
          let out_chans =
            List.map (fun (p : Op.port) -> chan (List.assoc p.port_name i.bindings)) s.Flow.op0.Op.outputs
          in
          let cpu =
            Pld_riscv.Softcore.boot s.Flow.program
              ~stream_read:(fun port ->
                match Net.try_read (List.nth in_chans port) with
                | Some v -> Some (Int32.of_int (Value.to_int (Value.bitcast Dtype.word v)))
                | None -> None)
              ~stream_write:(fun port w ->
                Net.try_write (List.nth out_chans port)
                  (Value.of_int Dtype.word (Int32.to_int w land 0xFFFFFFFF)))
              ~printf:(fun msg -> printed := (inst, msg) :: !printed)
          in
          cores := (inst, cpu) :: !cores;
          let hang_at = Option.bind faults (fun f -> Fault.hang_cycles f ~inst) in
          let trap_at = Option.bind faults (fun f -> Fault.trap_cycles f ~inst) in
          (* One PMU sample per scheduling quantum: cycles this core
             retired since its last slice, on its own cycle clock. *)
          let pmu_series =
            Option.map
              (fun p ->
                Pld_telemetry.Pmu.series p ~unit_:"cycles"
                  (Printf.sprintf "softcore.%s.cycles" inst))
              pmu
          in
          let pmu_last = ref 0 in
          let pmu_tick () =
            match pmu_series with
            | Some s -> pmu_last := Pld_riscv.Cpu.pmu_tick cpu s ~last:!pmu_last
            | None -> ()
          in
          Net.add_process net ~name:inst (fun () ->
              let quantum = 50_000 in
              let rec go () =
                (* Injected control faults, checked on the cycle clock:
                   a trap flips the core into [Trapped] with its machine
                   state; a hang spins without touching its streams
                   until the watchdog calls it out. *)
                (match trap_at with
                | Some n when cpu.Pld_riscv.Cpu.cycles >= n ->
                    Pld_riscv.Cpu.inject_trap cpu "injected fault: softcore trap"
                | _ -> ());
                match hang_at with
                | Some n when cpu.Pld_riscv.Cpu.cycles >= n ->
                    Net.yield ();
                    go ()
                | _ -> (
                    let status =
                      Pld_riscv.Cpu.run ~max_cycles:(cpu.Pld_riscv.Cpu.cycles + quantum) cpu
                    in
                    pmu_tick ();
                    match status with
                    | Pld_riscv.Cpu.Halted -> ()
                    | Pld_riscv.Cpu.Stalled ->
                        Net.yield ();
                        go ()
                    | Pld_riscv.Cpu.Running ->
                        Net.note_progress net;
                        Net.yield ();
                        go ()
                    | Pld_riscv.Cpu.Trapped tr -> raise (Softcore_trap (inst, tr)))
              in
              go ())
      | Build.Hw_page (h : Flow.o1_operator) ->
          let i = Flow.find_instance_exn ~context:"Runner.run_cosim" g inst in
          let io : Interp.io =
            {
              read = (fun port -> Net.read (chan (List.assoc port i.bindings)));
              write = (fun port v -> Net.write (chan (List.assoc port i.bindings)) v);
              printf = (fun _ _ -> ());
            }
          in
          Net.add_process net ~name:inst (fun () -> Interp.run_operator h.Flow.op io))
    app.Build.operators;
  let diagnose ~reason ~blocked =
    let stats = Net.stats net in
    let chans =
      Hashtbl.fold
        (fun name ch acc ->
          let blocks =
            match List.find_opt (fun (s : Net.channel_stats) -> s.Net.chan = name) stats with
            | Some s -> s.Net.block_events
            | None -> 0
          in
          (name, Net.occupancy ch, blocks) :: acc)
        channels []
      |> List.sort compare
    in
    raise (Stalled { stall_reason = reason; blocked; channels = chans })
  in
  (try Net.run ?fuel net with
  | Net.Deadlock blocked ->
      diagnose ~reason:"deadlock: no token moved in a full scheduling round" ~blocked
  | Net.Out_of_fuel { steps; live } ->
      diagnose
        ~reason:(Printf.sprintf "out of fuel after %d scheduler steps (hung operator?)" steps)
        ~blocked:live);
  let outputs = List.map (fun name -> (name, Net.drain (chan name))) g.outputs in
  let softcore_cycles = List.map (fun (n, cpu) -> (n, cpu.Pld_riscv.Cpu.cycles)) !cores in
  List.iter
    (fun (inst, cycles) ->
      Telemetry.max_gauge
        (Telemetry.gauge Telemetry.default (Printf.sprintf "softcore.%s.cycles" inst))
        (float_of_int cycles))
    softcore_cycles;
  (outputs, Net.stats net, List.rev !printed, softcore_cycles)

(* Profiled runs get the HLS schedule's cycles-per-firing as relative
   service rates, so the KPN scheduler reproduces the modeled fabric's
   queueing behaviour (Run_graph paces each instance accordingly);
   unprofiled runs keep the flat-out untimed schedule. *)
let rates_for pmu impls =
  match pmu with
  | None -> []
  | Some _ ->
      List.map
        (fun (n, (impl : Hls.impl)) -> (n, impl.Hls.perf.Pld_hls.Sched.cycles_per_firing))
        impls

let run ?fuel ?faults ?pmu (app : Build.app) ~inputs =
  let g = app.Build.graph in
  match app.Build.level with
  | Build.O3 | Build.Vitis -> begin
      let mono = Build.monolithic_exn app in
      let r = Pld_kpn.Run_graph.run ?fuel ?pmu ~rates:(rates_for pmu mono.Flow.impls) g ~inputs in
      let bname, bcycles = hw_bottleneck mono.Flow.impls in
      let fmax = mono.Flow.pnr3.Pld_pnr.Pnr.timing.Pld_pnr.Sta.fmax_mhz in
      {
        outputs = r.Pld_kpn.Run_graph.outputs;
        perf =
          {
            fmax_mhz = fmax;
            frame_cycles = bcycles;
            ms_per_input =
              ms_of_cycles bcycles fmax +. dma_ms ~inputs ~outputs:r.Pld_kpn.Run_graph.outputs;
            bottleneck = bname;
            link_seconds = 0.0;
            noc_dropped = 0;
            noc_corrupted = 0;
            noc_retransmitted = 0;
          };
        printed = r.Pld_kpn.Run_graph.printed;
        softcore_cycles = [];
        channel_stats = r.Pld_kpn.Run_graph.channel_stats;
      }
    end
  | Build.O1 when List.for_all (fun (_, c) -> match c with Build.Hw_page _ -> true | Build.Soft_page _ -> false) app.Build.operators
    -> begin
      let impls =
        List.filter_map
          (fun (n, c) -> match c with Build.Hw_page h -> Some (n, h.Flow.impl) | Build.Soft_page _ -> None)
          app.Build.operators
      in
      let r = Pld_kpn.Run_graph.run ?fuel ?pmu ~rates:(rates_for pmu impls) g ~inputs in
      let bname, bcycles = hw_bottleneck impls in
      let cfg_cycles, replay = noc_replay ?faults ?pmu app r.Pld_kpn.Run_graph.channel_stats in
      let noc_cycles = replay.Pld_noc.Traffic.cycles in
      let cycles = max bcycles noc_cycles in
      let bottleneck = if noc_cycles > bcycles then "linking-network bandwidth" else bname in
      {
        outputs = r.Pld_kpn.Run_graph.outputs;
        perf =
          {
            fmax_mhz = overlay_mhz;
            frame_cycles = cycles;
            ms_per_input =
              ms_of_cycles cycles overlay_mhz +. dma_ms ~inputs ~outputs:r.Pld_kpn.Run_graph.outputs;
            bottleneck;
            link_seconds = ms_of_cycles cfg_cycles overlay_mhz /. 1000.0;
            noc_dropped = replay.Pld_noc.Traffic.dropped;
            noc_corrupted = replay.Pld_noc.Traffic.corrupted;
            noc_retransmitted = replay.Pld_noc.Traffic.retransmitted;
          };
        printed = r.Pld_kpn.Run_graph.printed;
        softcore_cycles = [];
        channel_stats = r.Pld_kpn.Run_graph.channel_stats;
      }
    end
  | Build.O0 | Build.O1 -> begin
      (* Mixed or all-softcore: co-simulate. *)
      let outputs, channel_stats, printed, softcore_cycles =
        run_cosim ?fuel ?faults ?pmu app ~inputs
      in
      let hw_impls =
        List.filter_map
          (fun (n, c) -> match c with Build.Hw_page h -> Some (n, h.Flow.impl) | Build.Soft_page _ -> None)
          app.Build.operators
      in
      let hw_name, hw_cycles = hw_bottleneck hw_impls in
      let soft_name, soft_cycles =
        List.fold_left (fun (bn, bc) (n, c) -> if c > bc then (n, c) else (bn, bc)) ("-", 0) softcore_cycles
      in
      let cfg_cycles, replay = noc_replay ?faults ?pmu app channel_stats in
      let noc_cycles = replay.Pld_noc.Traffic.cycles in
      let cycles = max (max hw_cycles soft_cycles) noc_cycles in
      let bottleneck =
        if cycles = soft_cycles then soft_name ^ " (softcore)"
        else if cycles = hw_cycles then hw_name
        else "linking-network bandwidth"
      in
      {
        outputs;
        perf =
          {
            fmax_mhz = overlay_mhz;
            frame_cycles = cycles;
            ms_per_input = ms_of_cycles cycles overlay_mhz +. dma_ms ~inputs ~outputs;
            bottleneck;
            link_seconds = ms_of_cycles cfg_cycles overlay_mhz /. 1000.0;
            noc_dropped = replay.Pld_noc.Traffic.dropped;
            noc_corrupted = replay.Pld_noc.Traffic.corrupted;
            noc_retransmitted = replay.Pld_noc.Traffic.retransmitted;
          };
        printed;
        softcore_cycles;
        channel_stats;
      }
    end

let run_host g ~inputs =
  let t0 = Unix.gettimeofday () in
  let r = Pld_kpn.Run_graph.run g ~inputs in
  (r.Pld_kpn.Run_graph.outputs, Unix.gettimeofday () -. t0)
