open Pld_ir
module N = Pld_netlist.Netlist
module Fp = Pld_fabric.Floorplan
module Hls = Pld_hls.Hls_compile
module Pnr = Pld_pnr.Pnr
module Xclbin = Pld_platform.Xclbin

exception Build_error of string

let build_error fmt = Printf.ksprintf (fun m -> raise (Build_error m)) fmt

let find_instance_exn ~context (g : Graph.t) inst =
  match Graph.find_instance g inst with
  | Some i -> i
  | None ->
      build_error "%s: instance %S is not in graph %s (instances: %s)" context inst g.graph_name
        (String.concat ", " (List.map (fun (i : Graph.instance) -> i.inst_name) g.instances))

let find_channel_exn ~context (g : Graph.t) chan =
  match Graph.find_channel g chan with
  | Some c -> c
  | None ->
      build_error "%s: channel %S is not in graph %s (channels: %s)" context chan g.graph_name
        (String.concat ", " (List.map (fun (c : Graph.channel) -> c.chan_name) g.channels))

type phase_times = { hls : float; syn : float; pnr : float; bitgen : float; overhead : float }

let total_seconds t = t.hls +. t.syn +. t.pnr +. t.bitgen +. t.overhead

(* Fixed backend costs per invocation (scaled ~1/10 of the vendor
   tool's startup/context-load times; see DESIGN.md). The abstract
   shell makes the page-scoped context load far cheaper than the
   monolithic one — that asymmetry is the point of §4.1. *)
let o1_overhead = 0.7
let o3_overhead = 4.0
let o0_overhead = 0.08

type o1_operator = {
  inst : string;
  op : Op.t;
  page : int;
  impl : Hls.impl;
  pnr : Pnr.result;
  xclbin : Xclbin.t;
  times : phase_times;
}

type o0_operator = {
  inst0 : string;
  op0 : Op.t;
  page0 : int;
  program : Pld_riscv.Codegen.program;
  elf : Pld_riscv.Elf.packed;
  xclbin0 : Xclbin.t;
  riscv_seconds : float;
}

type o3_app = {
  graph : Graph.t;
  impls : (string * Hls.impl) list;
  merged : N.t;
  pnr3 : Pnr.result;
  xclbin3 : Xclbin.t;
  times3 : phase_times;
}

(* NoC leaves the overlay instantiates: the DMA corner (leaf 0) plus
   one leaf per page, page id = leaf id. [Bft.create] rounds up to the
   next 4-ary tree capacity. Deriving this from the floorplan (instead
   of a hard-coded 32) keeps [Runner.noc_replay] and the card's
   overlay-loaded NoC structurally identical by construction. *)
let noc_leaves (fp : Fp.t) =
  1 + List.fold_left (fun acc (p : Fp.page) -> max acc p.page_id) 0 fp.pages

let overlay_xclbin (fp : Fp.t) =
  Xclbin.overlay ~pages:(List.map (fun (p : Fp.page) -> p.page_id) fp.pages) ~noc_leaves:(noc_leaves fp)

(* The operator packer of Fig. 6: wrap the operator netlist with the
   pre-defined leaf interface so it can talk to the linking network. *)
let pack_with_leaf (impl : Hls.impl) =
  let nl = impl.Hls.netlist in
  let b = N.Builder.create (nl.N.nl_name ^ "_leaf") in
  Array.iter (fun (c : N.cell) -> ignore (N.Builder.add_cell b ~name:c.cname ~kind:c.kind ~res:c.res ~delay_ns:c.delay_ns)) nl.N.cells;
  Array.iter (fun (n : N.net) -> ignore (N.Builder.add_net b ~name:n.nname ~driver:n.driver ~sinks:n.sinks)) nl.N.nets;
  let leaf =
    N.Builder.add_cell b ~name:"leaf_interface" ~kind:N.Control ~res:Assign.leaf_interface_res
      ~delay_ns:0.9
  in
  (* The leaf interface fronts every stream port. *)
  Array.iter
    (fun (c : N.cell) ->
      match c.kind with
      | N.Stream_in _ -> ignore (N.Builder.add_net b ~name:("leaf_rx_" ^ c.cname) ~driver:leaf ~sinks:[ c.cid ])
      | N.Stream_out _ -> ignore (N.Builder.add_net b ~name:("leaf_tx_" ^ c.cname) ~driver:c.cid ~sinks:[ leaf ])
      | _ -> ())
    nl.N.cells;
  Pld_hls.Synth.split_oversized (N.Builder.finish b)

let compile_o1_operator ?(seed = 7) ?impl (fp : Fp.t) ~page ~inst op =
  let impl = match impl with Some i -> i | None -> Hls.compile op in
  let t0 = Unix.gettimeofday () in
  let packed = pack_with_leaf impl in
  let pack_seconds = Unix.gettimeofday () -. t0 in
  let pg = Fp.find_page fp page in
  let pins =
    List.map (fun (p : Op.port) -> (p.port_name, pg.Fp.noc_leaf)) (op.Op.inputs @ op.Op.outputs)
  in
  (* Page compiles run at the 200 MHz overlay clock. *)
  let pnr =
    Pnr.implement ~seed ~clock_target_mhz:200.0 ~pins ~device:fp.Fp.device ~region:pg.Fp.rect packed
  in
  let xclbin =
    Xclbin.page_bits ~page ~operator:inst ~fmax_mhz:pnr.Pnr.timing.Pld_pnr.Sta.fmax_mhz
      pnr.Pnr.bitstream
  in
  {
    inst;
    op;
    page;
    impl;
    pnr;
    xclbin;
    times =
      {
        hls = impl.Hls.hls_seconds;
        syn = impl.Hls.syn_seconds +. pack_seconds;
        pnr = pnr.Pnr.place_seconds +. pnr.Pnr.route_seconds +. pnr.Pnr.sta_seconds;
        bitgen = pnr.Pnr.bitgen_seconds;
        overhead = o1_overhead;
      };
  }

let compile_o0_operator ~page ~inst op =
  let t0 = Unix.gettimeofday () in
  let program = Pld_riscv.Codegen.compile op in
  let elf = Pld_riscv.Elf.pack ~page program in
  let riscv_seconds = Unix.gettimeofday () -. t0 +. o0_overhead in
  { inst0 = inst; op0 = op; page0 = page; program; elf; xclbin0 = Xclbin.softcore ~page elf; riscv_seconds }

let compile_o3 ?(seed = 7) ?(vitis_baseline = false) ?previous ?(pnr_seeds = []) (fp : Fp.t)
    (g : Graph.t) =
  Validate.check_graph_exn g;
  let impls =
    List.map (fun (i : Graph.instance) -> (i.inst_name, Hls.compile i.op)) g.instances
  in
  let t0 = Unix.gettimeofday () in
  let merged =
    N.merge
      ~name:(g.graph_name ^ if vitis_baseline then "_vitis" else "_o3")
      (List.map (fun (inst, impl) -> (inst, impl.Hls.netlist)) impls)
  in
  (* The kernel generator stitches operators with hardware FIFOs per
     the dataflow graph; the undecomposed Vitis baseline uses direct
     wiring (depth-0 "FIFOs" cost nothing and are elided). *)
  let links =
    Graph.edges g
    |> List.filter_map (fun (p, q, chan) ->
           let context = "Flow.compile_o3" in
           let c = find_channel_exn ~context g chan in
           let src = p ^ "." ^ fst (List.find (fun ((_ : string), ch) -> ch = chan)
                                      (find_instance_exn ~context g p).Graph.bindings) in
           let dst = q ^ "." ^ fst (List.find (fun ((_ : string), ch) -> ch = chan)
                                      (find_instance_exn ~context g q).Graph.bindings) in
           if vitis_baseline then None else Some (src, dst, "fifo_" ^ chan, c.Graph.depth))
  in
  let merged = if links = [] then merged else N.add_fifo_links merged links in
  let syn_extra = Unix.gettimeofday () -. t0 in
  (* Three P&R paths: delta from a previous result (incremental edit),
     a multi-seed race (cold compile with idle cores), or the plain
     single-seed anneal. *)
  let pnr3 =
    match (previous, pnr_seeds) with
    | Some _, _ ->
        Pnr.implement_delta ~seed ~clock_target_mhz:300.0 ?previous ~device:fp.Fp.device
          ~region:fp.Fp.l1_region merged
    | None, (_ :: _ :: _ as seeds) ->
        Pnr.implement_multi ~clock_target_mhz:300.0 ~seeds ~device:fp.Fp.device
          ~region:fp.Fp.l1_region merged
    | None, _ ->
        Pnr.implement ~seed ~clock_target_mhz:300.0 ~device:fp.Fp.device ~region:fp.Fp.l1_region
          merged
  in
  let xclbin3 =
    Xclbin.kernel ~fmax_mhz:pnr3.Pnr.timing.Pld_pnr.Sta.fmax_mhz
      ~operators:(List.map fst impls) pnr3.Pnr.bitstream
  in
  {
    graph = g;
    impls;
    merged;
    pnr3;
    xclbin3;
    times3 =
      {
        hls = List.fold_left (fun acc (_, i) -> acc +. i.Hls.hls_seconds) 0.0 impls;
        syn = List.fold_left (fun acc (_, i) -> acc +. i.Hls.syn_seconds) 0.0 impls +. syn_extra;
        pnr = pnr3.Pnr.place_seconds +. pnr3.Pnr.route_seconds +. pnr3.Pnr.sta_seconds;
        bitgen = pnr3.Pnr.bitgen_seconds;
        overhead = o3_overhead;
      };
  }
