open Pld_ir
module Fp = Pld_fabric.Floorplan
module Hls = Pld_hls.Hls_compile
module Digest = Pld_util.Digest_lite
module Event = Pld_engine.Event
module Jobgraph = Pld_engine.Jobgraph
module Executor = Pld_engine.Executor
module Store = Pld_engine.Store

type level = O0 | O1 | O3 | Vitis

let level_name = function O0 -> "-O0" | O1 -> "-O1" | O3 -> "-O3" | Vitis -> "vitis"

exception Build_error = Flow.Build_error

type compiled_operator = Hw_page of Flow.o1_operator | Soft_page of Flow.o0_operator

type report = {
  level : level;
  per_op_seconds : (string * float) list;
  phases : Flow.phase_times;
  serial_seconds : float;
  parallel_seconds : float;
  wall_seconds : float;
  workers : int;
  jobs : int;
  cache_hits : int;
  recompiled : int;
  by_kind : (string * int * int) list;
  quarantined : (string * string) list;
  fallbacks : string list;
  events : Event.t list;
}

type app = {
  graph : Graph.t;
  fp : Fp.t;
  level : level;
  assignment : (string * int) list;
  operators : (string * compiled_operator) list;
  monolithic : Flow.o3_app option;
  report : report;
}

let monolithic_exn (app : app) =
  match app.monolithic with
  | Some m -> m
  | None ->
      raise
        (Build_error
           (Printf.sprintf "app %s (%s): no monolithic artifact — only -O3/vitis builds have one"
              app.graph.Graph.graph_name (level_name app.level)))

(* ---------- cache ---------- *)

let kind_page = "page"
let kind_softcore = "softcore"
let kind_mono = "mono"
let kind_profile = "profile"

type counter = { mutable hits : int; mutable misses : int }

(* One typed table per artifact kind: a page bitstream can never come
   back under a softcore key (or vice versa) because the lookup goes
   through the kind's own table and store namespace. *)
type cache = {
  hw : (Digest.t, Flow.o1_operator) Hashtbl.t;
  soft : (Digest.t, Flow.o0_operator) Hashtbl.t;
  mono : (Digest.t, Flow.o3_app) Hashtbl.t;
  (* Fabric profiles are persisted as JSON documents (closure-free, so
     Marshal-safe in the store) keyed by the build's job key — a cached
     build still carries the profile of the run that produced it. *)
  profiles : (Digest.t, Pld_telemetry.Json.t) Hashtbl.t;
  store : Store.t option;
  persist : bool;
      (* a read-only view shares every table and the store for lookups
         but never writes artifacts back to disk — how the service
         serves tenants whose cache-write budget is spent *)
  lock : Mutex.t;
  counters : (string * counter) list;
}

let create_cache ?dir ?max_bytes ?quarantine ?telemetry () =
  {
    hw = Hashtbl.create 64;
    soft = Hashtbl.create 64;
    mono = Hashtbl.create 16;
    profiles = Hashtbl.create 16;
    store = Option.map (fun dir -> Store.open_ ?max_bytes ?quarantine ?telemetry ~dir ()) dir;
    persist = true;
    lock = Mutex.create ();
    counters =
      List.map
        (fun k -> (k, { hits = 0; misses = 0 }))
        [ kind_page; kind_softcore; kind_mono; kind_profile ];
  }

let readonly_view c = { c with persist = false }

let cache_store c = c.store

let locked c f =
  Mutex.lock c.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.lock) f

let cache_size c =
  locked c (fun () ->
      Hashtbl.length c.hw + Hashtbl.length c.soft + Hashtbl.length c.mono
      + Hashtbl.length c.profiles)

let cache_stats c =
  locked c (fun () -> List.map (fun (k, ctr) -> (k, ctr.hits, ctr.misses)) c.counters)

let cache_dir c = Option.map Store.dir c.store

let counter c kind = List.assoc kind c.counters

(* Typed lookup in one kind partition: memory first, then the
   persistent store (promoting disk hits into memory). *)
let cache_find (type v) c (tbl : (Digest.t, v) Hashtbl.t) ~kind ~key ~job ~emit : v option =
  match locked c (fun () -> Hashtbl.find_opt tbl key) with
  | Some v ->
      locked c (fun () -> (counter c kind).hits <- (counter c kind).hits + 1);
      emit (Event.Cache_hit { job; kind; source = Event.Memory });
      Some v
  | None -> (
      match Option.bind c.store (fun s -> (Store.find s ~kind ~key : v option)) with
      | Some v ->
          locked c (fun () ->
              Hashtbl.replace tbl key v;
              (counter c kind).hits <- (counter c kind).hits + 1);
          emit (Event.Cache_hit { job; kind; source = Event.Disk });
          Some v
      | None ->
          locked c (fun () -> (counter c kind).misses <- (counter c kind).misses + 1);
          None)

let cache_put (type v) c (tbl : (Digest.t, v) Hashtbl.t) ~kind ~key ~emit (v : v) =
  locked c (fun () -> Hashtbl.replace tbl key v);
  match c.store with
  | Some s when c.persist ->
      Store.put s ~kind ~key v;
      emit (Event.Cache_store { kind; key })
  | Some _ | None -> ()

(* Profile lookups go through the same typed-partition discipline as
   the artifacts; they just have no job-graph node, so no events. *)
let find_profile c ~key =
  cache_find c c.profiles ~kind:kind_profile ~key ~job:"profile" ~emit:(fun _ -> ())

let put_profile c ~key doc = cache_put c c.profiles ~kind:kind_profile ~key ~emit:(fun _ -> ()) doc

(* ---------- models ---------- *)

let makespan = Pld_engine.Makespan.lpt

let phase_list (t : Flow.phase_times) =
  [
    ("hls", t.Flow.hls);
    ("syn", t.Flow.syn);
    ("pnr", t.Flow.pnr);
    ("bitgen", t.Flow.bitgen);
    ("overhead", t.Flow.overhead);
  ]

(* Aggregate report phases from the trace instead of hand-threading
   tuples through every compile layer: cache hits executed nothing, so
   only recompiled jobs contribute. *)
let phases_of_events events =
  let totals = Event.phase_totals events in
  let get n = Option.value ~default:0.0 (List.assoc_opt n totals) in
  {
    Flow.hls = get "hls";
    syn = get "syn";
    pnr = get "pnr";
    bitgen = get "bitgen";
    overhead = get "overhead";
  }

(* ---------- keys ---------- *)

let op_key ~level ~seed ~page (i : Graph.instance) =
  Digest.of_parts
    [
      Op.source i.op;
      level_name level;
      string_of_int seed;
      string_of_int page;
      (match i.target with
      | Graph.Riscv -> "riscv"
      | Graph.Hw { page_hint } -> "hw" ^ Option.fold ~none:"" ~some:string_of_int page_hint);
    ]

(* The previous-P&R input and the seed race are part of the artifact's
   identity: a delta compile from a different starting point (or a
   different seed set) legitimately produces different bits, so they
   must not collide under one key. *)
let mono_key ~level ~seed ?(pnr_seeds = []) ?previous (g : Graph.t) =
  Digest.of_parts
    (Graph.source g :: level_name level :: string_of_int seed
    :: (match previous with
       | None -> "prev:none"
       | Some (p : Pld_pnr.Pnr.result) -> "prev:" ^ p.Pld_pnr.Pnr.bitstream.Pld_pnr.Bitgen.crc)
    :: (match pnr_seeds with
       | [] -> "seeds:-"
       | l -> "seeds:" ^ String.concat "," (List.map string_of_int l))
    :: List.map (fun (i : Graph.instance) -> Op.source i.op) g.instances)

(* ---------- job artifacts ---------- *)

type op_result = { o_name : string; o_compiled : compiled_operator; o_model : float; o_hit : bool }
type mono_result = { m_app : Flow.o3_app; m_model : float; m_hit : bool }

type art =
  | A_impl of Hls.impl
  | A_assign of (string * int) list
  | A_op of op_result
  | A_mono of mono_result

let art_model = function
  | A_op r -> r.o_model
  | A_mono r -> r.m_model
  | A_impl _ | A_assign _ -> 0.0

let art_phases = function
  | A_op { o_hit = true; _ } | A_mono { m_hit = true; _ } -> []
  | A_op { o_compiled = Hw_page h; _ } -> phase_list h.Flow.times
  (* softcore codegen is charged to the compile (hls) column, as the
     -O0 flow of Fig. 5 does *)
  | A_op { o_compiled = Soft_page s; _ } -> [ ("hls", s.Flow.riscv_seconds) ]
  | A_mono { m_app; _ } -> phase_list m_app.Flow.times3
  | A_impl _ | A_assign _ -> []

(* PicoRV32 + memory: a fixed overlay footprint (before the shared
   leaf interface is added). *)
let softcore_demand = { Pld_netlist.Netlist.luts = 900; ffs = 1300; brams = 6; dsps = 1 }

(* ---------- paged flows (-O0 / -O1) ---------- *)

let compile_paged ~cache ~workers ~jobs ~pace ~seed ~on_event ~telemetry ~attrs ~faults
    ~max_retries ~defective (fp : Fp.t) (g : Graph.t) ~level =
  (* A fault injector can make named jobs fail (transient tool crash);
     the check counts one attempt per call, so executor retries see the
     job eventually succeed. *)
  let inject job = match faults with Some f -> Pld_faults.Fault.job_check f ~job | None -> () in
  let target_of (i : Graph.instance) = match level with O0 -> Graph.Riscv | _ -> i.target in
  let is_hw i = match target_of i with Graph.Hw _ -> true | Graph.Riscv -> false in
  let source_digest (i : Graph.instance) = Digest.of_string (Op.source i.op) in
  let hls_id d = "hls:" ^ d in
  (* One HLS job per distinct operator source among HW instances; its
     netlist feeds both page assignment and the page compile. *)
  let hls_ops =
    List.rev
      (List.fold_left
         (fun acc (i : Graph.instance) ->
           if is_hw i && not (List.mem_assoc (source_digest i) acc) then
             (source_digest i, i.op) :: acc
           else acc)
         [] g.instances)
  in
  let hls_nodes =
    List.map
      (fun (d, op) ->
        Jobgraph.node ~id:(hls_id d) ~kind:"hls" (fun _ ->
            inject (hls_id d);
            A_impl (Hls.compile op)))
      hls_ops
  in
  let assign_id = "assign" in
  let fetch_impl ctx d =
    match ctx.Jobgraph.fetch (hls_id d) with A_impl m -> m | _ -> assert false
  in
  let assign_node =
    Jobgraph.node ~id:assign_id ~kind:"assign"
      ~deps:(List.map (fun (d, _) -> hls_id d) hls_ops)
      (fun ctx ->
        inject assign_id;
        let demands =
          List.map
            (fun (i : Graph.instance) ->
              let res =
                if is_hw i then
                  Pld_netlist.Netlist.total_res (fetch_impl ctx (source_digest i)).Hls.netlist
                else softcore_demand
              in
              (i.inst_name, target_of i, res))
            g.instances
        in
        A_assign (Assign.assign ~defective fp demands))
  in
  let op_nodes =
    List.map
      (fun (i : Graph.instance) ->
        let hw = is_hw i in
        let kind = if hw then kind_page else kind_softcore in
        let job_id = "op:" ^ i.inst_name in
        Jobgraph.node ~id:job_id ~kind
          ~deps:(assign_id :: (if hw then [ hls_id (source_digest i) ] else []))
          ~model:art_model ~phases:art_phases
          (fun ctx ->
            inject job_id;
            let assignment =
              match ctx.Jobgraph.fetch assign_id with A_assign a -> a | _ -> assert false
            in
            let page = List.assoc i.inst_name assignment in
            let key = op_key ~level ~seed ~page i in
            let emit = ctx.Jobgraph.emit in
            if hw then
              match cache_find cache cache.hw ~kind ~key ~job:job_id ~emit with
              | Some h -> A_op { o_name = i.inst_name; o_compiled = Hw_page h; o_model = 0.0; o_hit = true }
              | None ->
                  let impl = fetch_impl ctx (source_digest i) in
                  let h = Flow.compile_o1_operator ~seed ~impl fp ~page ~inst:i.inst_name i.op in
                  cache_put cache cache.hw ~kind ~key ~emit h;
                  A_op
                    {
                      o_name = i.inst_name;
                      o_compiled = Hw_page h;
                      o_model = Flow.total_seconds h.Flow.times;
                      o_hit = false;
                    }
            else
              match cache_find cache cache.soft ~kind ~key ~job:job_id ~emit with
              | Some s -> A_op { o_name = i.inst_name; o_compiled = Soft_page s; o_model = 0.0; o_hit = true }
              | None ->
                  let s = Flow.compile_o0_operator ~page ~inst:i.inst_name i.op in
                  cache_put cache cache.soft ~kind ~key ~emit s;
                  A_op
                    {
                      o_name = i.inst_name;
                      o_compiled = Soft_page s;
                      o_model = s.Flow.riscv_seconds;
                      o_hit = false;
                    }))
      g.instances
  in
  let jobgraph = Jobgraph.make (hls_nodes @ (assign_node :: op_nodes)) in
  let result =
    Executor.run ~workers:jobs ~pace ~max_retries ~keep_going:(faults <> None) ~on_event ~telemetry
      ~attrs jobgraph
  in
  let quarantined = result.Executor.quarantined in
  let quarantine_error job =
    match List.assoc_opt job quarantined with Some e -> e | None -> "artifact missing"
  in
  let assignment =
    match List.assoc_opt assign_id result.Executor.artifacts with
    | Some (A_assign a) -> a
    | Some _ -> assert false
    | None ->
        raise
          (Build_error
             (Printf.sprintf "graph %s (%s): page assignment failed and has no fallback: %s"
                g.Graph.graph_name (level_name level) (quarantine_error assign_id)))
  in
  let fallbacks = ref [] in
  let ops =
    List.map
      (fun (i : Graph.instance) ->
        let job_id = "op:" ^ i.inst_name in
        match List.assoc_opt job_id result.Executor.artifacts with
        | Some (A_op r) -> r
        | Some _ -> assert false
        | None when is_hw i ->
            (* The page compile was quarantined after exhausting its
               retries. A softcore build fits every page and needs no
               backend tool, so drop this one operator a rung down the
               refinement ladder instead of failing the whole build. *)
            let page = List.assoc i.inst_name assignment in
            let s = Flow.compile_o0_operator ~page ~inst:i.inst_name i.op in
            fallbacks := i.inst_name :: !fallbacks;
            { o_name = i.inst_name; o_compiled = Soft_page s; o_model = s.Flow.riscv_seconds; o_hit = false }
        | None ->
            raise
              (Build_error
                 (Printf.sprintf "graph %s (%s): softcore build for %s failed (no lower rung): %s"
                    g.Graph.graph_name (level_name level) i.inst_name (quarantine_error job_id))))
      g.instances
  in
  let fallbacks = List.rev !fallbacks in
  let durations = List.map (fun r -> r.o_model) ops in
  let events = result.Executor.events in
  {
    graph = g;
    fp;
    level;
    assignment;
    operators = List.map (fun r -> (r.o_name, r.o_compiled)) ops;
    monolithic = None;
    report =
      {
        level;
        per_op_seconds = List.map (fun r -> (r.o_name, r.o_model)) ops;
        phases = phases_of_events events;
        serial_seconds = List.fold_left ( +. ) 0.0 durations;
        parallel_seconds = makespan ~workers durations;
        wall_seconds = result.Executor.wall_seconds;
        workers;
        jobs;
        cache_hits = List.length (List.filter (fun r -> r.o_hit) ops);
        recompiled = List.length (List.filter (fun r -> not r.o_hit) ops);
        by_kind = Event.by_kind events;
        quarantined;
        fallbacks;
        events;
      };
  }

(* ---------- monolithic flows (-O3 / Vitis) ---------- *)

let compile_mono ~cache ~workers ~jobs ~pace ~seed ~on_event ~telemetry ~attrs ~faults
    ~max_retries ~previous ~pnr_seeds (fp : Fp.t) (g : Graph.t) ~level =
  let inject job = match faults with Some f -> Pld_faults.Fault.job_check f ~job | None -> () in
  let key = mono_key ~level ~seed ~pnr_seeds ?previous g in
  let job_id = "mono:" ^ g.graph_name in
  let node =
    Jobgraph.node ~id:job_id ~kind:kind_mono ~model:art_model ~phases:art_phases (fun ctx ->
        inject job_id;
        match
          cache_find cache cache.mono ~kind:kind_mono ~key ~job:job_id ~emit:ctx.Jobgraph.emit
        with
        | Some m -> A_mono { m_app = m; m_model = 0.0; m_hit = true }
        | None ->
            let m = Flow.compile_o3 ~seed ~vitis_baseline:(level = Vitis) ?previous ~pnr_seeds fp g in
            cache_put cache cache.mono ~kind:kind_mono ~key ~emit:ctx.Jobgraph.emit m;
            A_mono { m_app = m; m_model = Flow.total_seconds m.Flow.times3; m_hit = false })
  in
  let result =
    Executor.run ~workers:jobs ~pace ~max_retries ~keep_going:(faults <> None) ~on_event ~telemetry
      ~attrs
      (Jobgraph.make [ node ])
  in
  let r =
    match List.assoc_opt job_id result.Executor.artifacts with
    | Some (A_mono r) -> r
    | Some _ -> assert false
    | None ->
        raise
          (Build_error
             (Printf.sprintf "graph %s (%s): monolithic compile failed and has no fallback: %s"
                g.Graph.graph_name (level_name level)
                (match List.assoc_opt job_id result.Executor.quarantined with
                | Some e -> e
                | None -> "artifact missing")))
  in
  (* Incremental-P&R observability: what the delta path did (or why it
     bailed). Cache hits ran no P&R, so they count nothing. *)
  let module T = Pld_telemetry.Telemetry in
  (if not r.m_hit then
     match r.m_app.Flow.pnr3.Pld_pnr.Pnr.delta with
     | Some d ->
         T.incr ~by:d.Pld_pnr.Pnr.cells_moved (T.counter telemetry "pnr.cells_moved");
         T.incr ~by:d.Pld_pnr.Pnr.nets_rerouted (T.counter telemetry "pnr.nets_rerouted");
         if d.Pld_pnr.Pnr.fallback = None then T.incr (T.counter telemetry "pnr.delta_hits")
         else T.incr (T.counter telemetry "pnr.delta_fallbacks")
     | None -> ());
  let events = result.Executor.events in
  {
    graph = g;
    fp;
    level;
    assignment = [];
    operators = [];
    monolithic = Some r.m_app;
    report =
      {
        level;
        per_op_seconds = [ (g.graph_name, r.m_model) ];
        phases = phases_of_events events;
        serial_seconds = r.m_model;
        parallel_seconds = r.m_model;
        wall_seconds = result.Executor.wall_seconds;
        workers;
        jobs;
        cache_hits = (if r.m_hit then 1 else 0);
        recompiled = (if r.m_hit then 0 else 1);
        by_kind = Event.by_kind events;
        quarantined = result.Executor.quarantined;
        fallbacks = [];
        events;
      };
  }

(* ---------- entry point ---------- *)

let compile ?cache ?(workers = 22) ?(jobs = 1) ?(pace = 0.0) ?(seed = 7) ?(on_event = ignore)
    ?(telemetry = Pld_telemetry.Telemetry.default) ?(attrs = []) ?faults ?(max_retries = 0)
    ?(defective = []) ?previous ?(pnr_seeds = []) (fp : Fp.t) (g : Graph.t) ~level =
  Validate.check_graph_exn g;
  ignore (makespan ~workers []);
  (* validate [workers] eagerly *)
  let cache = match cache with Some c -> c | None -> create_cache () in
  let module Telemetry = Pld_telemetry.Telemetry in
  Telemetry.with_span telemetry ~cat:"build"
    ~attrs:([ ("graph", g.Graph.graph_name); ("level", level_name level) ] @ attrs)
    ("compile:" ^ g.Graph.graph_name)
  @@ fun () ->
  match level with
  | O3 | Vitis ->
      (* The previous app seeds delta P&R only when it is a monolithic
         build of the same level — a paged (or other-level) app has no
         comparable prior placement. *)
      let previous =
        match previous with
        | Some (p : app) when p.level = level -> Option.map (fun m -> m.Flow.pnr3) p.monolithic
        | Some _ | None -> None
      in
      compile_mono ~cache ~workers ~jobs ~pace ~seed ~on_event ~telemetry ~attrs ~faults
        ~max_retries ~previous ~pnr_seeds fp g ~level
  | O0 | O1 ->
      compile_paged ~cache ~workers ~jobs ~pace ~seed ~on_event ~telemetry ~attrs ~faults
        ~max_retries ~defective fp g ~level
