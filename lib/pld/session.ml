open Pld_ir
module Fp = Pld_fabric.Floorplan
module T = Pld_telemetry.Telemetry

exception Closed of string

type t = {
  s_name : string;
  fp : Fp.t;
  s_cache : Build.cache;
  telemetry : T.t;
  workers : int;
  jobs : int;
  pace : float;
  seed : int;
  mutable card : Pld_platform.Card.t option;
  mutable s_apps : (string * Build.app) list;  (* newest first internally *)
  mutable n_compiles : int;
  mutable closed : bool;
}

let session_seq = Atomic.make 0

let open_session ?name ?fp ?cache ?cache_dir ?(workers = 22) ?(jobs = 1) ?(pace = 0.0) ?(seed = 7)
    ?(telemetry = T.default) () =
  let s_cache =
    match (cache, cache_dir) with
    | Some _, Some _ -> invalid_arg "Session.open_session: pass ~cache or ~cache_dir, not both"
    | Some c, None -> c
    | None, Some dir -> Build.create_cache ~dir ~telemetry ()
    | None, None -> Build.create_cache ~telemetry ()
  in
  let s_name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "session-%d" (Atomic.fetch_and_add session_seq 1)
  in
  let fp = match fp with Some fp -> fp | None -> Fp.u50 () in
  {
    s_name;
    fp;
    s_cache;
    telemetry;
    workers;
    jobs;
    pace;
    seed;
    card = None;
    s_apps = [];
    n_compiles = 0;
    closed = false;
  }

let check_open t ctx = if t.closed then raise (Closed (Printf.sprintf "%s: %s" t.s_name ctx))

let name t = t.s_name
let cache t = t.s_cache

let compile t ?(level = Build.O1) ?faults ?max_retries ?defective ?previous ?(pnr_seeds = []) g =
  check_open t "compile";
  let max_retries = Option.value ~default:0 max_retries in
  let defective = Option.value ~default:[] defective in
  (* Session reuse: recompiling a graph this session already built
     seeds delta P&R from the remembered app — but only when the source
     actually changed (top-level composition or any operator body; the
     top-level rendering alone misses body edits). An identical
     recompile must keep its original cache key and stay a pure cache
     hit. *)
  let fingerprint g =
    String.concat "\x00"
      (Graph.source g
      :: List.map (fun (i : Graph.instance) -> Op.source i.op) g.Graph.instances)
  in
  let previous =
    match previous with
    | Some _ -> previous
    | None -> (
        match List.assoc_opt g.Graph.graph_name t.s_apps with
        | Some prev when fingerprint prev.Build.graph <> fingerprint g -> Some prev
        | Some _ | None -> None)
  in
  T.with_span t.telemetry ~cat:"session"
    ~attrs:[ ("session", t.s_name); ("graph", g.Graph.graph_name) ]
    (t.s_name ^ ":compile")
  @@ fun () ->
  let app =
    Build.compile ~cache:t.s_cache ~workers:t.workers ~jobs:t.jobs ~pace:t.pace ~seed:t.seed
      ~telemetry:t.telemetry ?faults ~max_retries ~defective ?previous ~pnr_seeds t.fp g ~level
  in
  t.n_compiles <- t.n_compiles + 1;
  t.s_apps <- (g.Graph.graph_name, app) :: List.remove_assoc g.Graph.graph_name t.s_apps;
  app

let link t ?faults ?max_retries (app : Build.app) =
  check_open t "link";
  let card =
    match t.card with
    | Some c -> c
    | None ->
        let c = Pld_platform.Card.create ?faults () in
        t.card <- Some c;
        c
  in
  T.with_span t.telemetry ~cat:"session" ~attrs:[ ("session", t.s_name) ] (t.s_name ^ ":link")
  @@ fun () -> Loader.deploy ?faults ?max_retries card app

let run t ?fuel ?faults ?pmu (dr : Loader.deploy_result) ~inputs =
  check_open t "run";
  T.with_span t.telemetry ~cat:"session" ~attrs:[ ("session", t.s_name) ] (t.s_name ^ ":run")
  @@ fun () -> Runner.run ?fuel ?faults ?pmu dr.Loader.app ~inputs

let apps t =
  check_open t "apps";
  List.rev t.s_apps

let compiles t = t.n_compiles

let close t =
  if not t.closed then begin
    t.closed <- true;
    t.card <- None;
    t.s_apps <- []
  end
