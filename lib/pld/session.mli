(** Compile sessions: the reusable open/compile/link/run/close API.

    A session is one client's handle onto the toolflow — its floorplan,
    its card, its defaults — while the artifact cache (and the
    persistent store behind it) is {e shared}: many sessions in one
    process compile independent graphs against one store, so the second
    session asking for an operator the first already built gets a
    link-time hit instead of a recompile. This is the shape the [pldd]
    daemon serves over a socket and [Pld_service.Service] schedules;
    the one-shot {!Build.compile} is a degenerate open/compile/close.

    Sessions are cheap (no domain is spawned until a compile runs) and
    single-client: one session should be driven from one fiber/domain
    at a time, while {e different} sessions sharing a cache may run
    fully concurrently — the cache and store are domain-safe. *)

open Pld_ir

exception Closed of string
(** An operation was attempted on a closed session (the message names
    the session). *)

type t

val open_session :
  ?name:string ->
  ?fp:Pld_fabric.Floorplan.t ->
  ?cache:Build.cache ->
  ?cache_dir:string ->
  ?workers:int ->
  ?jobs:int ->
  ?pace:float ->
  ?seed:int ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  unit ->
  t
(** [cache] shares an existing (typically process-wide) cache across
    sessions; [cache_dir] instead opens a private persistent cache —
    passing both is rejected with [Invalid_argument]. With neither, the
    session gets a private in-memory cache. [fp] defaults to the U50
    floorplan; [workers]/[jobs]/[pace]/[seed] become the session's
    compile defaults. [name] labels spans and errors (default
    ["session-<n>"], unique within the process). *)

val name : t -> string

val cache : t -> Build.cache
(** The cache this session compiles against (shared or private). *)

val compile :
  t ->
  ?level:Build.level ->
  ?faults:Pld_faults.Fault.t ->
  ?max_retries:int ->
  ?defective:int list ->
  ?previous:Build.app ->
  ?pnr_seeds:int list ->
  Graph.t ->
  Build.app
(** Compile a graph at [level] (default [O1]) with the session's
    defaults, against the shared cache. The app is remembered as the
    session's latest build of that graph ({!apps}).

    Incremental recompiles: when this session already built a graph of
    the same name and the new source differs, the remembered app is
    passed to {!Build.compile} as [previous] so a monolithic recompile
    takes the delta-P&R path; an identical recompile keeps its original
    cache key and stays a pure cache hit. [previous] overrides that
    lookup (e.g. state reloaded from disk by [pldc --incremental-from]);
    [pnr_seeds] is forwarded for multi-seed cold compiles. *)

val link : t -> ?faults:Pld_faults.Fault.t -> ?max_retries:int -> Build.app -> Loader.deploy_result
(** Deploy the app onto the session's card (created on first use,
    reused after), walking the usual recovery ladder on faults. *)

val run :
  t ->
  ?fuel:int ->
  ?faults:Pld_faults.Fault.t ->
  ?pmu:Pld_telemetry.Pmu.t ->
  Loader.deploy_result ->
  inputs:(string * Value.t list) list ->
  Runner.result
(** Execute a deployed app on the given inputs. [pmu] attaches a
    fabric PMU to the run: every simulator layer samples its windowed
    series into it (see {!Runner.run}), ready for
    {!Fabric_profile.of_run}. *)

val apps : t -> (string * Build.app) list
(** Latest compiled app per graph name, oldest first. *)

val compiles : t -> int
(** Number of compiles this session has run. *)

val close : t -> unit
(** Release the session's card and app references and mark it closed;
    idempotent. The shared cache is left untouched (other sessions may
    be using it). Any later operation raises {!Closed}. *)
