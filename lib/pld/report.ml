module N = Pld_netlist.Netlist
module Hls = Pld_hls.Hls_compile

let fsec v = Printf.sprintf "%.2f" v

let compile_row (app : Build.app) =
  let r = app.Build.report in
  let p = r.Build.phases in
  let total =
    match app.Build.level with
    | Build.O0 | Build.O1 -> r.Build.parallel_seconds
    | Build.O3 | Build.Vitis -> r.Build.serial_seconds
  in
  [
    Build.level_name app.Build.level;
    fsec p.Flow.hls;
    fsec p.Flow.syn;
    fsec p.Flow.pnr;
    fsec p.Flow.bitgen;
    fsec total;
  ]

let compile_summary (app : Build.app) =
  let r = app.Build.report in
  Printf.sprintf
    "%s %s: %d compiled, %d cache hits; serial %.2fs, cluster wall %.2fs (model, %d workers), \
     measured %.4fs (%d jobs) (phases: hls %.2f syn %.2f p&r %.2f bit %.2f overhead %.2f)"
    app.Build.graph.Pld_ir.Graph.graph_name (Build.level_name r.Build.level) r.Build.recompiled
    r.Build.cache_hits r.Build.serial_seconds r.Build.parallel_seconds r.Build.workers
    r.Build.wall_seconds r.Build.jobs r.Build.phases.Flow.hls r.Build.phases.Flow.syn
    r.Build.phases.Flow.pnr r.Build.phases.Flow.bitgen r.Build.phases.Flow.overhead

let cache_summary (r : Build.report) =
  String.concat ", "
    (List.map
       (fun (kind, hits, misses) -> Printf.sprintf "%s %d hit/%d miss" kind hits misses)
       r.Build.by_kind)

(* The human --trace view is rendered from the telemetry spans, not
   from [Build.report.events]: the sink is process-wide, so engine
   jobs, NoC replays, cosim firings and the loader's recovery ladder
   interleave on one wall-clock timeline in timestamp order. Modeled
   spans live on a different clock and get their own trailing
   section. *)
let trace_lines tele =
  let module T = Pld_telemetry.Telemetry in
  let attrs_of (s : T.span) =
    match s.T.attrs with
    | [] -> ""
    | kvs -> "  " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) kvs)
  in
  let wall, modeled = List.partition (fun (s : T.span) -> s.T.clock = T.Wall) (T.spans tele) in
  let by_start a b = compare (a.T.start_us, a.T.track) (b.T.start_us, b.T.track) in
  let wall_line (s : T.span) =
    match s.T.dur_us with
    | Some d ->
        Printf.sprintf "[%12.3f ms] %-8s %s (%.3f ms)%s" (s.T.start_us /. 1000.0) s.T.cat s.T.name
          (d /. 1000.0) (attrs_of s)
    | None ->
        Printf.sprintf "[%12.3f ms] %-8s * %s%s" (s.T.start_us /. 1000.0) s.T.cat s.T.name
          (attrs_of s)
  in
  let modeled_line (s : T.span) =
    let d = Option.value ~default:0.0 s.T.dur_us in
    Printf.sprintf "[%12.3f s ] %-8s %s (%.3f s)%s" (s.T.start_us /. 1.0e6) s.T.cat s.T.name
      (d /. 1.0e6) (attrs_of s)
  in
  List.map wall_line (List.stable_sort by_start wall)
  @
  match List.stable_sort by_start modeled with
  | [] -> []
  | ms -> "-- modeled clock --" :: List.map modeled_line ms

(* Softcore page area: the one-size-fits-all PicoRV32 + unified memory
   configuration (Sec 7.5 notes -O0 pages reserve worst-case memory). *)
let softcore_res = { N.luts = 900; ffs = 1300; brams = 6; dsps = 1 }

let area_of (app : Build.app) =
  match app.Build.level with
  | Build.O3 | Build.Vitis ->
      let mono = Build.monolithic_exn app in
      (N.total_res mono.Flow.merged, 0)
  | Build.O0 | Build.O1 ->
      let res =
        List.fold_left
          (fun acc (_, c) ->
            match c with
            | Build.Hw_page h -> N.res_add acc (N.total_res h.Flow.pnr.Pld_pnr.Pnr.netlist)
            | Build.Soft_page _ -> N.res_add acc softcore_res)
          N.res_zero app.Build.operators
      in
      (res, List.length app.Build.operators)

let area_row app =
  let res, pages = area_of app in
  [
    Build.level_name app.Build.level;
    string_of_int res.N.luts;
    string_of_int res.N.brams;
    string_of_int res.N.dsps;
    (if pages = 0 then "-" else string_of_int pages);
  ]

let perf_row (r : Runner.result) =
  let ms = r.Runner.perf.Runner.ms_per_input in
  [
    Printf.sprintf "%.0fMHz" r.Runner.perf.Runner.fmax_mhz;
    (if ms >= 1000.0 then Printf.sprintf "%.0f s" (ms /. 1000.0)
     else if ms >= 1.0 then Printf.sprintf "%.1f ms" ms
     else Printf.sprintf "%.0f us" (ms *. 1000.0));
  ]

(* ---------- fault recovery ---------- *)

let build_recovery_lines (r : Build.report) =
  List.map
    (fun (job, err) -> Printf.sprintf "quarantined %s: %s" job err)
    r.Build.quarantined
  @ List.map
      (fun inst -> Printf.sprintf "fallback    %s: page compile quarantined -> -O0 softcore build" inst)
      r.Build.fallbacks

let recovery_lines (dr : Loader.deploy_result) =
  match dr.Loader.recovery with
  | [] -> [ "recovery: none (fault-free deploy)" ]
  | evs ->
      Printf.sprintf "recovery: %d event(s)%s" (List.length evs)
        (if dr.Loader.degraded then " — DEGRADED (softcore fallback active)" else "")
      :: List.map (fun e -> "  " ^ Loader.describe_recovery e) evs

let degraded_perf_lines ~nominal ~(actual : Runner.result) =
  let n = nominal.Runner.perf.Runner.ms_per_input in
  let a = actual.Runner.perf.Runner.ms_per_input in
  let ratio = if n > 0.0 then a /. n else 1.0 in
  [
    Printf.sprintf "perf: %.3f ms/input vs %.3f ms/input nominal (%.2fx)" a n ratio;
    Printf.sprintf "noc:  %d dropped, %d corrupted, %d retransmitted"
      actual.Runner.perf.Runner.noc_dropped actual.Runner.perf.Runner.noc_corrupted
      actual.Runner.perf.Runner.noc_retransmitted;
  ]
