(** Human-readable compile/run reporting in the shape of the paper's
    tables. *)

val compile_row : Build.app -> string list
(** [benchmark; hls; syn; p&r; bitgen; total] seconds — one Tab. 2
    cell group. For -O1 the total is the parallel (cluster) wall time
    of the slowest operator; phases are summed over recompiled
    operators. *)

val compile_summary : Build.app -> string
(** One line with recompile/hit counts, the modeled serial and cluster
    (LPT) times, and the measured executor wall-clock. *)

val cache_summary : Build.report -> string
(** Per-kind [hits/misses] counts of one build, from its trace. *)

val trace_lines : Pld_telemetry.Telemetry.t -> string list
(** The sink's spans and instants as human-readable lines — what
    [pldc --trace] prints. Wall-clock entries (engine jobs, loader
    recovery steps, cosim firings) interleave in timestamp order;
    modeled-clock entries (backend-tool phases, overlay replays)
    follow in a separate section on their own clock. *)

val area_row : Build.app -> string list
(** [LUT; BRAM18; DSP; pages] — one Tab. 4 cell group. *)

val perf_row : Runner.result -> string list
(** [Fmax; ms/input] — one Tab. 3 cell group. *)

val build_recovery_lines : Build.report -> string list
(** Quarantined jobs and softcore fallbacks of one build — empty when
    the build was healthy. *)

val recovery_lines : Loader.deploy_result -> string list
(** The deploy's recovery section: one header line plus one line per
    retry / spare relink / softcore fallback, flagged DEGRADED when a
    hardware operator runs on a softcore. *)

val degraded_perf_lines : nominal:Runner.result -> actual:Runner.result -> string list
(** Honest degraded-mode reporting: actual vs. fault-free ms/input and
    the replayed NoC's drop/corrupt/retransmit counters. *)
