(** Application-level builds on the content-addressed engine.
    See DESIGN.md §8 for the layer diagram and the cache-key scheme.

    Each compile decomposes into a typed job graph (HLS feeds page
    assignment feeds per-page P&R; see [Pld_engine.Jobgraph]) executed
    by a real worker pool of OCaml domains, with artifacts cached
    in-process and, when a cache directory is given, in a persistent
    on-disk store — the Makefile discipline of §6 made durable across
    processes. *)

open Pld_ir

type level = O0 | O1 | O3 | Vitis

val level_name : level -> string

exception Build_error of string
(** Re-export of {!Flow.Build_error}: a build artifact or graph piece
    that should exist does not. Replaces the bare [Option.get] /
    [Not_found] failures these lookups used to die with. *)

type compiled_operator =
  | Hw_page of Flow.o1_operator
  | Soft_page of Flow.o0_operator

type report = {
  level : level;
  per_op_seconds : (string * float) list;  (** modeled; 0 for cache hits *)
  phases : Flow.phase_times;  (** aggregate across recompiled operators *)
  serial_seconds : float;  (** modeled sum over recompiled operators *)
  parallel_seconds : float;
      (** the analytic cluster model: LPT makespan over [workers]
          machines (§7.1) — a prediction, reported next to the
          measured [wall_seconds] *)
  wall_seconds : float;  (** measured wall-clock of the executor run *)
  workers : int;  (** modeled cluster width used for [parallel_seconds] *)
  jobs : int;  (** executor domains that actually ran the build *)
  cache_hits : int;
  recompiled : int;
  by_kind : (string * int * int) list;
      (** per job kind: (kind, cache hits, misses) this build *)
  quarantined : (string * string) list;
      (** jobs that exhausted their retries under fault injection,
          with the final error (empty on healthy builds) *)
  fallbacks : string list;
      (** instances whose page compile was quarantined and which were
          re-linked onto the -O0 softcore build instead *)
  events : Pld_engine.Event.t list;  (** full trace of this build *)
}

type app = {
  graph : Graph.t;
  fp : Pld_fabric.Floorplan.t;
  level : level;
  assignment : (string * int) list;  (** instance → page (O0/O1 only) *)
  operators : (string * compiled_operator) list;
  monolithic : Flow.o3_app option;  (** O3 / Vitis only *)
  report : report;
}

val monolithic_exn : app -> Flow.o3_app
(** The monolithic artifact, or {!Build_error} naming the app and its
    level when the build was paged. *)

val softcore_demand : Pld_netlist.Netlist.res
(** Fixed page-area footprint of the PicoRV32 softcore overlay (before
    the leaf interface) — used for page assignment and for sizing
    spare pages during fault recovery. *)

(** {2 Cache}

    The cache is partitioned by artifact kind — a page bitstream
    ([Flow.o1_operator]), a softcore image ([Flow.o0_operator]) and a
    monolithic build ([Flow.o3_app]) live in separate typed tables and
    separate store namespaces, so an entry of one kind can never be
    returned (or silently overwritten) under a key of another. *)

type cache

val kind_page : string
val kind_softcore : string
val kind_mono : string
val kind_profile : string

val create_cache :
  ?dir:string ->
  ?max_bytes:int ->
  ?quarantine:bool ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  unit ->
  cache
(** In-memory cache; with [dir], artifacts are additionally persisted
    to (and warm-started from) a content-addressed store on disk, so a
    fresh process recompiles only what changed. [max_bytes],
    [quarantine] and [telemetry] configure that store's LRU budget,
    corrupt-entry quarantine mode and stats sink (see
    {!Pld_engine.Store.open_}). *)

val readonly_view : cache -> cache
(** A view sharing this cache's tables and store for {e lookups} while
    never persisting new artifacts to disk — in-memory inserts still
    happen, so a build against the view stays internally consistent.
    The service hands this view to tenants whose cache-write budget is
    exhausted. *)

val cache_store : cache -> Pld_engine.Store.t option
(** The persistent store behind this cache, when it has one — the
    handle the daemon's stats endpoint reads. *)

val cache_size : cache -> int
(** In-memory entries across all kinds. *)

val cache_stats : cache -> (string * int * int) list
(** Cumulative [(kind, hits, misses)] over the cache's lifetime. *)

val cache_dir : cache -> string option

val find_profile : cache -> key:Pld_util.Digest_lite.t -> Pld_telemetry.Json.t option
(** Fabric-profile document stored under a build key (memory first,
    then the persistent store) — the mechanism by which a cache hit
    still carries the profile of the run that produced the artifact. *)

val put_profile : cache -> key:Pld_util.Digest_lite.t -> Pld_telemetry.Json.t -> unit
(** Store a fabric-profile JSON document under a build key. Respects
    the read-only view: in-memory always, on disk only when this cache
    persists. *)

val compile :
  ?cache:cache ->
  ?workers:int ->
  ?jobs:int ->
  ?pace:float ->
  ?seed:int ->
  ?on_event:(Pld_engine.Event.t -> unit) ->
  ?telemetry:Pld_telemetry.Telemetry.t ->
  ?attrs:(string * string) list ->
  ?faults:Pld_faults.Fault.t ->
  ?max_retries:int ->
  ?defective:int list ->
  ?previous:app ->
  ?pnr_seeds:int list ->
  Pld_fabric.Floorplan.t ->
  Graph.t ->
  level:level ->
  app
(** [level = O1] follows each instance's pragma (HW → page P&R,
    RISCV → softcore); [O0] forces every instance onto a softcore;
    [O3]/[Vitis] compile monolithically.

    [workers] (default 22) sizes the *modeled* compile cluster for
    [parallel_seconds]. [jobs] (default 1) sizes the *real* executor
    pool: with [jobs = 1] jobs run sequentially on the calling domain,
    with [jobs > 1] on that many OCaml domains. [pace] throttles each
    job to [pace] wall-seconds per modeled second (see
    [Pld_engine.Executor]); 0 (default) runs the simulator's own
    algorithms flat out. [on_event] streams trace events as they
    happen; the full trace is also in [report.events]. [telemetry]
    (default [Pld_telemetry.Telemetry.default]) is the sink the build
    span and the executor's spans/metrics are recorded into — hand a
    private sink for hermetic trace analysis.

    [faults] injects failures into named jobs (see
    [Pld_faults.Fault.job_check]); it also switches the executor to
    [keep_going] so a page compile that exhausts [max_retries]
    (default 0) is quarantined and re-linked onto the softcore build
    ([report.fallbacks]) instead of aborting. [defective] is the page
    defect map: those pages are never assigned.

    [previous] — a prior app for the same graph — routes a monolithic
    ([O3]/[Vitis], same level) recompile through delta P&R: unchanged
    cells keep their placement, only nets touching moved cells are
    rerouted, and the [pnr.delta_hits] / [pnr.cells_moved] /
    [pnr.nets_rerouted] counters on [telemetry] record what the fast
    path did. The previous P&R is part of the cache key
    ([previous_pnr] input), so delta and scratch artifacts never
    collide. Paged levels ignore it (their incrementality is the
    per-operator cache). [pnr_seeds] with two or more seeds races that
    many anneals on domains for cold monolithic compiles and keeps the
    best post-STA timing; also part of the cache key. *)

val makespan : workers:int -> float list -> float
(** Longest-processing-time list scheduling — the cluster model.
    Alias of [Pld_engine.Makespan.lpt]. *)
