open Pld_ir
module Dsl = Pld_rosetta.Dsl

type scase = {
  s_graph : Graph.t;
  s_inputs : (string * Value.t list) list;
  s_mutation : Mutate.t option;
}

type outcome = {
  shrunk : scase;
  failure : Oracle.failure;
  steps : int;  (** accepted shrink steps *)
  tested : int;  (** oracle evaluations spent *)
}

(* ---------- graph surgery ---------- *)

let port_chans ~dir (g : Graph.t) (i : Graph.instance) =
  let ports = match dir with `In -> i.op.Op.inputs | `Out -> i.op.Op.outputs in
  List.filter_map (fun (p : Op.port) -> Graph.binding g ~inst:i.inst_name ~port:p.port_name) ports

(* Keep only [keep] (a topo-prefix): dropped consumers turn their
   channels into graph outputs; graph inputs nobody consumes any more
   are dropped together with their workload. *)
let restrict (g : Graph.t) inputs keep =
  let kept = List.filter (fun (i : Graph.instance) -> List.mem i.inst_name keep) g.instances in
  let consumed = List.concat_map (port_chans ~dir:`In g) kept in
  let produced = List.concat_map (port_chans ~dir:`Out g) kept in
  let g_inputs = List.filter (fun cn -> List.mem cn consumed) g.inputs in
  let alive cn = List.mem cn consumed || List.mem cn produced in
  let channels = List.filter (fun (c : Graph.channel) -> alive c.chan_name) g.channels in
  let outputs =
    List.filter_map
      (fun (c : Graph.channel) ->
        if List.mem c.chan_name produced && not (List.mem c.chan_name consumed) then Some c.chan_name
        else None)
      channels
  in
  let g' =
    Graph.make ~name:g.graph_name ~channels ~instances:kept ~inputs:g_inputs ~outputs
  in
  (g', List.filter (fun (cn, _) -> List.mem cn g_inputs) inputs)

(* Splice a single-input/single-output instance out of the graph. *)
let bypass (g : Graph.t) (i : Graph.instance) =
  match (i.op.Op.inputs, i.op.Op.outputs) with
  | [ pin ], [ pout ] -> begin
      match
        ( Graph.binding g ~inst:i.inst_name ~port:pin.Op.port_name,
          Graph.binding g ~inst:i.inst_name ~port:pout.Op.port_name )
      with
      | Some cin, Some cout when cin <> cout ->
          if List.mem cin g.inputs && Graph.consumer g cout = None then
            (* Would leave a graph input flowing straight to an output
               (a DMA self-link); not a well-formed deployment. *)
            None
          else
            let instances = List.filter (fun (j : Graph.instance) -> j.inst_name <> i.inst_name) g.instances in
            let channels = List.filter (fun (c : Graph.channel) -> c.chan_name <> cout) g.channels in
            let g' = Graph.make ~name:g.graph_name ~channels ~instances ~inputs:g.inputs ~outputs:g.outputs in
            let g' =
              match Graph.consumer g cout with
              | Some c ->
                  let ci = Option.get (Graph.find_instance g c) in
                  let port =
                    List.find_map
                      (fun (p, ch) -> if ch = cout then Some p else None)
                      ci.bindings
                  in
                  Graph.rebind g' ~inst:c ~port:(Option.get port) cin
              | None ->
                  (* cout was a graph output: cin takes its place. *)
                  {
                    g' with
                    Graph.outputs =
                      List.map (fun o -> if o = cout then cin else o) g'.Graph.outputs;
                  }
            in
            Some g'
      | _ -> None
    end
  | _ -> None

(* Replace an operator body by the simplest same-arity same-rate body
   the generator's shapes admit (identity maps). *)
let identity_op (i : Graph.instance) =
  let rec first_for = function
    | [] -> None
    | Op.For { hi; _ } :: _ -> Some hi
    | _ :: rest -> first_for rest
  in
  match first_for i.op.Op.body with
  | None -> None
  | Some n -> (
      let names ports = List.map (fun (p : Op.port) -> p.Op.port_name) ports in
      match (names i.op.Op.inputs, names i.op.Op.outputs) with
      | [ "in" ], [ "out" ] -> Some (Dsl.map_op ~name:i.op.Op.name ~n (fun x -> x))
      | [ "in" ], [ "out0"; "out1" ] ->
          Some (Dsl.dup_op ~name:i.op.Op.name ~n (fun x -> x) (fun x -> x))
      | [ "in0"; "in1" ], [ "out" ] -> Some (Dsl.zip_op ~name:i.op.Op.name ~n (fun a _ -> a))
      | _ -> None)

let replace_op (g : Graph.t) inst op =
  {
    g with
    Graph.instances =
      List.map
        (fun (i : Graph.instance) -> if i.inst_name = inst then { i with Graph.op } else i)
        g.Graph.instances;
  }

(* ---------- candidate enumeration ---------- *)

let mutation_keeps c keep =
  match c.s_mutation with
  | None -> true
  | Some m -> List.for_all (fun i -> List.mem i keep) (Mutate.instances m)

let candidates c =
  let g = c.s_graph in
  let names = List.map (fun (i : Graph.instance) -> i.Graph.inst_name) (Graph.topo_order g) in
  let n = List.length names in
  let prefixes =
    List.concat_map
      (fun m ->
        let keep = List.filteri (fun i _ -> i < m) names in
        if mutation_keeps c keep then
          let g', inputs' = restrict g c.s_inputs keep in
          if g'.Graph.outputs <> [] && g'.Graph.inputs <> [] then [ { c with s_graph = g'; s_inputs = inputs' } ]
          else []
        else [])
      (List.init (max 0 (n - 1)) (fun m -> m + 1))
  in
  let bypasses =
    List.filter_map
      (fun (i : Graph.instance) ->
        if mutation_keeps c (List.filter (fun x -> x <> i.inst_name) names) then
          Option.map (fun g' -> { c with s_graph = g' }) (bypass g i)
        else None)
      g.Graph.instances
  in
  let identities =
    List.filter_map
      (fun (i : Graph.instance) ->
        match identity_op i with
        | Some op when Op.source op <> Op.source i.op ->
            Some { c with s_graph = replace_op g i.inst_name op }
        | _ -> None)
      g.Graph.instances
  in
  let zero = Value.of_int Dtype.word 0 in
  let simpler_inputs =
    List.filter_map
      (fun (cn, vs) ->
        if List.for_all (fun v -> Value.equal v zero) vs then None
        else
          Some
            {
              c with
              s_inputs =
                List.map
                  (fun (cn', vs') -> if cn' = cn then (cn', List.map (fun _ -> zero) vs') else (cn', vs'))
                  c.s_inputs;
            })
      c.s_inputs
  in
  prefixes @ bypasses @ identities @ simpler_inputs

(* ---------- the loop ---------- *)

let still_fails ~config ~f_class c =
  match c.s_mutation with
  | Some m -> (
      (* A mutant reproducer just has to stay caught. *)
      match Oracle.check_mutated ~config m c.s_graph ~inputs:c.s_inputs with
      | [] -> None
      | f :: _ -> Some f)
  | None ->
      List.find_opt
        (fun (f : Oracle.failure) -> f.Oracle.f_class = f_class)
        (Oracle.check ~config c.s_graph ~inputs:c.s_inputs)

let shrink ?(config = Oracle.default_config) ?(budget = 150) c0 (f0 : Oracle.failure) =
  let tested = ref 0 and steps = ref 0 in
  let cur = ref c0 and curf = ref f0 in
  let progress = ref true in
  while !progress && !tested < budget do
    progress := false;
    let cands = candidates !cur in
    (try
       List.iter
         (fun c ->
           if !tested >= budget then raise Exit;
           incr tested;
           match still_fails ~config ~f_class:f0.Oracle.f_class c with
           | Some f ->
               cur := c;
               curf := f;
               incr steps;
               progress := true;
               raise Exit
           | None -> ())
         cands
     with Exit -> ())
  done;
  { shrunk = !cur; failure = !curf; steps = !steps; tested = !tested }
