(** The cross-level differential oracle.

    One generated application is executed at every requested
    optimization level (-O0 softcore co-simulation, -O1 separately
    compiled pages linked over the NoC, -O3 monolithic) and each
    output stream must be bit-identical to the KPN reference
    interpreter. On top of the differential check the oracle asserts
    structural invariants:

    - scheduler permutation: reference outputs are invariant under a
      permuted process-registration order (the Kahn property);
    - cache-key soundness: recompiling identical source on a warm
      cache recompiles nothing and changes nothing;
    - NoC delivery: the linking network delivers every flit of the
      frame exactly once (no loss, no duplication) absent injected
      faults. *)

open Pld_ir
module B = Pld_core.Build

type failure = { f_class : string; f_where : string; f_detail : string }
(** A structured verdict: [f_class] is a stable class name
    ("mismatch", "stall", "deadlock", "cache-key", ...) the shrinker
    preserves while minimizing; [f_where] locates the level or
    invariant; [f_detail] is human-readable. *)

val failure_to_string : failure -> string
val fmt_failure : Format.formatter -> failure -> unit

type config = {
  levels : B.level list;  (** levels to compile and compare *)
  fuel : int option;  (** co-simulation fuel override *)
  check_permutation : bool;
  check_cache : bool;
  check_noc : bool;
}

val default_config : config
(** [-O0] and [-O3] with every invariant on. *)

val reference :
  ?fuel:int -> Graph.t -> inputs:(string * Value.t list) list -> Pld_kpn.Run_graph.result
(** The behavioural reference (KPN interpreter). *)

val compare_streams :
  where:string ->
  (string * Value.t list) list ->
  (string * Value.t list) list ->
  failure list
(** Bit-exact comparison of expected vs got output streams (raw 32-bit
    patterns, so dtype bookkeeping can neither mask nor fake a
    difference). *)

val classify : where:string -> exn -> failure
(** Map the toolchain's exceptions (build errors, stalls, traps,
    validation, codegen limits) to stable failure classes. *)

val catching : where:string -> (unit -> 'a) -> ('a, failure) result
(** Run a thunk, turning any exception into a {!classify}d failure. *)

val check : ?config:config -> Graph.t -> inputs:(string * Value.t list) list -> failure list
(** Full differential + invariant check of one case. Empty list =
    pass. Never raises: compile/run errors come back as structured
    failures. *)

val check_mutated :
  ?config:config -> Mutate.t -> Graph.t -> inputs:(string * Value.t list) list -> failure list
(** Compile the clean source, apply [mutation] to the linked artifact,
    and compare against the clean reference. Empty = the mutant
    {e escaped}; non-empty = the oracle caught it. *)

val caught : ?config:config -> Mutate.t -> Graph.t -> inputs:(string * Value.t list) list -> bool
