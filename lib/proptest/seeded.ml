module Rng = Pld_util.Rng
module Digest = Pld_util.Digest_lite

(* Hash a digest string into a non-negative int. Pure function of its
   inputs, so derived seeds are stable across runs, machines, and OCaml
   versions — the whole point of the discipline. *)
let derive ~seed tag =
  let d = Digest.of_parts [ string_of_int seed; tag ] in
  let h = ref 0 in
  String.iter (fun c -> h := ((!h * 31) + Char.code c) land max_int) d;
  !h

let case_seed ~seed index = derive ~seed (Printf.sprintf "case:%d" index)

let case_rng ~seed index = Rng.create (case_seed ~seed index)

let cases ~seed ~count f =
  for i = 0 to count - 1 do
    f i (case_rng ~seed i)
  done

let sub_seeds ~seed ~count tag = List.init count (fun i -> derive ~seed (Printf.sprintf "%s:%d" tag i))
