open Pld_ir
module B = Pld_core.Build
module Runner = Pld_core.Runner
module Run_graph = Pld_kpn.Run_graph
module Network = Pld_kpn.Network
module Traffic = Pld_noc.Traffic
module Floorplan = Pld_fabric.Floorplan
module Telemetry = Pld_telemetry.Telemetry
module Bits = Pld_apfixed.Bits

type failure = { f_class : string; f_where : string; f_detail : string }

let failure_to_string f = Printf.sprintf "[%s @ %s] %s" f.f_class f.f_where f.f_detail
let fmt_failure ppf f = Format.pp_print_string ppf (failure_to_string f)

type config = {
  levels : B.level list;
  fuel : int option;
  check_permutation : bool;
  check_cache : bool;
  check_noc : bool;
}

let default_config =
  { levels = [ B.O0; B.O3 ]; fuel = None; check_permutation = true; check_cache = true; check_noc = true }

(* ---------- stream comparison ---------- *)

(* Streams carry 32-bit words at every level; compare raw patterns so
   dtype bookkeeping differences can never mask (or fake) a bug. *)
let word_hex v = Bits.to_hex (Value.to_bits (Value.bitcast Dtype.word v))

let compare_streams ~where expected got =
  List.concat_map
    (fun (chan, exp_vs) ->
      match List.assoc_opt chan got with
      | None ->
          [ { f_class = "missing-output"; f_where = where; f_detail = Printf.sprintf "channel %s absent" chan } ]
      | Some got_vs ->
          if List.length exp_vs <> List.length got_vs then
            [
              {
                f_class = "length-mismatch";
                f_where = where;
                f_detail =
                  Printf.sprintf "channel %s: expected %d tokens, got %d" chan (List.length exp_vs)
                    (List.length got_vs);
              };
            ]
          else
            List.concat
              (List.mapi
                 (fun i (e, g) ->
                   if word_hex e = word_hex g then []
                   else
                     [
                       {
                         f_class = "mismatch";
                         f_where = where;
                         f_detail =
                           Printf.sprintf "channel %s token %d: expected 0x%s, got 0x%s" chan i (word_hex e)
                             (word_hex g);
                       };
                     ])
                 (List.combine exp_vs got_vs)))
    expected

(* ---------- structured failure capture ---------- *)

let classify ~where = function
  | Validate.Invalid errs ->
      {
        f_class = "invalid-graph";
        f_where = where;
        f_detail = String.concat "; " (List.map Validate.error_to_string errs);
      }
  | Network.Deadlock blocked ->
      { f_class = "deadlock"; f_where = where; f_detail = String.concat "," blocked }
  | Network.Out_of_fuel { steps; live } ->
      {
        f_class = "out-of-fuel";
        f_where = where;
        f_detail = Printf.sprintf "%d steps, live: %s" steps (String.concat "," live);
      }
  | Runner.Stalled d -> { f_class = "stall"; f_where = where; f_detail = Runner.describe_stall d }
  | Runner.Softcore_trap (inst, _) ->
      { f_class = "trap"; f_where = where; f_detail = Printf.sprintf "softcore %s trapped" inst }
  | B.Build_error m | Pld_core.Flow.Build_error m ->
      { f_class = "build-error"; f_where = where; f_detail = m }
  | Pld_riscv.Codegen.Unsupported m -> { f_class = "unsupported"; f_where = where; f_detail = m }
  | e -> { f_class = "exception"; f_where = where; f_detail = Printexc.to_string e }

let catching ~where f = match f () with v -> Ok v | exception e -> Error (classify ~where e)

(* ---------- reference semantics ---------- *)

let reference ?fuel g ~inputs = Run_graph.run ?fuel g ~inputs

(* ---------- the differential check ---------- *)

let compile_app ?cache ?faults ?defective ~level g =
  let cache = match cache with Some c -> c | None -> B.create_cache () in
  (* A private telemetry sink: fuzzing must not flood the process-wide
     one, and hermetic runs keep summaries reproducible. *)
  B.compile ~cache ~telemetry:(Telemetry.create ()) ?faults ?defective (Floorplan.u50 ()) g ~level

let run_level ?fuel ?faults ~level g ~inputs =
  catching ~where:(B.level_name level) (fun () ->
      let app = compile_app ?faults ~level g in
      (app, Runner.run ?fuel ?faults app ~inputs))

let noc_exactly_once ~where app (stats : Network.channel_stats list) =
  let links = Runner.noc_links app stats in
  if links = [] then []
  else
    let expected = Traffic.total_tokens links in
    let _, res = Runner.noc_replay app stats in
    List.concat
      [
        (if res.Traffic.delivered = expected then []
         else
           [
             {
               f_class = "noc-delivery";
               f_where = where;
               f_detail = Printf.sprintf "delivered %d flits of %d" res.Traffic.delivered expected;
             };
           ]);
        (if res.Traffic.dropped = 0 && res.Traffic.corrupted = 0 then []
         else
           [
             {
               f_class = "noc-loss";
               f_where = where;
               f_detail =
                 Printf.sprintf "dropped %d / corrupted %d flits without fault injection" res.Traffic.dropped
                   res.Traffic.corrupted;
             };
           ]);
      ]

let check ?(config = default_config) g ~inputs =
  match catching ~where:"reference" (fun () -> reference ?fuel:config.fuel g ~inputs) with
  | Error f -> [ f ]
  | Ok ref_res ->
      let expected = ref_res.Run_graph.outputs in
      let permutation =
        if not config.check_permutation then []
        else
          let order = List.rev_map (fun (i : Graph.instance) -> i.inst_name) g.Graph.instances in
          match
            catching ~where:"reference-permuted" (fun () ->
                Run_graph.run ?fuel:config.fuel ~order g ~inputs)
          with
          | Error f -> [ f ]
          | Ok permuted ->
              compare_streams ~where:"scheduler-permutation" expected permuted.Run_graph.outputs
      in
      let cache_level = match config.levels with [] -> B.O1 | l :: _ -> l in
      let per_level =
        List.concat_map
          (fun level ->
            let where = B.level_name level in
            match run_level ?fuel:config.fuel ~level g ~inputs with
            | Error f -> [ f ]
            | Ok (app, res) ->
                List.concat
                  [
                    compare_streams ~where expected res.Runner.outputs;
                    (if config.check_noc && level <> B.O3 && level <> B.Vitis then
                       noc_exactly_once ~where:("noc@" ^ where) app ref_res.Run_graph.channel_stats
                     else []);
                    (if config.check_cache && level = cache_level then
                       match
                         catching ~where:("cache@" ^ where) (fun () ->
                             let cache = B.create_cache () in
                             let _first = compile_app ~cache ~level g in
                             let second = compile_app ~cache ~level g in
                             let res2 = Runner.run ?fuel:config.fuel second ~inputs in
                             (second, res2))
                       with
                       | Error f -> [ f ]
                       | Ok (second, res2) ->
                           (if second.B.report.B.recompiled = 0 then []
                            else
                              [
                                {
                                  f_class = "cache-key";
                                  f_where = "cache@" ^ where;
                                  f_detail =
                                    Printf.sprintf
                                      "identical source recompiled %d artifacts on a warm cache"
                                      second.B.report.B.recompiled;
                                };
                              ])
                           @ compare_streams ~where:("cache@" ^ where) expected res2.Runner.outputs
                     else []);
                  ])
          config.levels
      in
      permutation @ per_level

(* ---------- mutant checking ---------- *)

(* The mutation is applied *after* linking: the reference sees the
   clean source, the deployed artifact has two stream endpoints
   swapped. An empty result means the mutant escaped the oracle. *)
let check_mutated ?(config = default_config) mutation g ~inputs =
  match catching ~where:"reference" (fun () -> reference ?fuel:config.fuel g ~inputs) with
  | Error f ->
      (* The clean case must work for a mutant verdict to mean anything;
         report it as caught-by-construction. *)
      [ f ]
  | Ok ref_res ->
      let expected = ref_res.Run_graph.outputs in
      List.concat_map
        (fun level ->
          let where = "mutant@" ^ B.level_name level in
          match
            catching ~where (fun () ->
                let app = compile_app ~level g in
                let mutated = { app with B.graph = Mutate.apply mutation app.B.graph } in
                Runner.run ?fuel:config.fuel mutated ~inputs)
          with
          | Error f -> [ f ]
          | Ok res -> compare_streams ~where expected res.Runner.outputs)
        config.levels

let caught ?config mutation g ~inputs = check_mutated ?config mutation g ~inputs <> []
