(** Deliberate miscompilation for oracle self-tests.

    A mutation models a linker bug: the source the reference
    interpreter sees is untouched, but the built artifact's stream
    wiring is changed after linking (via {!Pld_ir.Graph.rebind}).
    Swapping two input-port bindings always preserves the
    one-producer/one-consumer channel discipline, so a mutant fails
    {e behaviourally} — wrong output streams or a stall — exactly the
    class of bug the differential oracle exists to catch. *)

open Pld_ir

type t = Swap_inputs of { a : string * string; b : string * string }
    (** Two [(instance, input port)] sites whose channel bindings are
        exchanged. *)

val describe : t -> string

val instances : t -> string list
(** The instance names a mutation references — the shrinker must not
    delete them. *)

val candidates : Graph.t -> t list
(** All well-formed swaps, same-instance pairs (which cannot introduce
    cycles) first. *)

val apply : t -> Graph.t -> Graph.t
(** Exchange the two bindings. Raises [Invalid_argument] if either
    site does not exist. Cross-instance swaps may create a cyclic
    graph; callers treat any resulting stall/cycle error as the
    mutant being caught. *)
