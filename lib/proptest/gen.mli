(** Seeded random dataflow-graph generator over the Rosetta IR.

    Draws operator bodies from a closed expression grammar over
    ap_int/ap_fixed (every construct in it is supported by the
    interpreter, the HLS flow, and the -O0 ap-runtime alike) and
    composes them into random topologies: linear chains, fan-out
    through explicit [dup] operators, joins, reconvergent diamonds,
    and multi-rate producers/consumers. Graphs are feedback-free,
    validate cleanly, fit the 22-page floorplan, and are deadlock-free
    by construction (every channel is as deep as the frame that flows
    through it). *)

open Pld_ir

type params = {
  max_ops : int;  (** operator-instance budget, clamped to 21 (pages minus DMA) *)
  max_tokens : int;  (** largest input frame length *)
  riscv_share : int;  (** percentage of instances pinned to RISCV pages *)
  max_channel_tokens : int;  (** expansion cap for multi-rate producers *)
}

val default_params : params

type case = {
  index : int;
  case_seed : int;
  graph : Graph.t;
  inputs : (string * Value.t list) list;  (** word tokens per graph input *)
}

val graph :
  ?params:params -> Pld_util.Rng.t -> name:string -> Graph.t * (string * Value.t list) list
(** One random graph plus a matching workload, drawn entirely from the
    given generator. *)

val case : ?params:params -> seed:int -> index:int -> unit -> case
(** Case [index] of the stream rooted at [seed], via {!Seeded}. *)

val digest : Graph.t -> (string * Value.t list) list -> string
(** Content digest of a (graph, workload) pair — what fuzz summaries
    report so two runs can be compared bit-for-bit. *)
