(** JSON (de)serialization of graphs, workloads and mutations.

    Exists so that shrunk failing cases can be persisted to the
    [corpus/] regression directory and replayed forever. Values are
    stored as dtype + raw hex pattern, so round-trips are exact to the
    bit (fixed-point included). *)

open Pld_ir
module Json = Pld_telemetry.Json

exception Malformed of string
(** Raised by every [*_of_json] on a document that does not decode. *)

val value_to_json : Value.t -> Json.t
val value_of_json : Json.t -> Value.t
val expr_to_json : Expr.t -> Json.t
val expr_of_json : Json.t -> Expr.t
val op_to_json : Op.t -> Json.t
val op_of_json : Json.t -> Op.t
val graph_to_json : Graph.t -> Json.t
val graph_of_json : Json.t -> Graph.t

val workload_to_json : (string * Value.t list) list -> Json.t
val workload_of_json : Json.t -> (string * Value.t list) list

val mutation_to_json : Mutate.t -> Json.t
val mutation_of_json : Json.t -> Mutate.t
