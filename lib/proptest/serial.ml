open Pld_ir
module Json = Pld_telemetry.Json
module Bits = Pld_apfixed.Bits

exception Malformed of string

let fail fmt = Printf.ksprintf (fun m -> raise (Malformed m)) fmt

(* ---------- helpers ---------- *)

let str = function Json.String s -> s | j -> fail "expected string, got %s" (Json.to_string j)
let int_ = function Json.Int i -> i | j -> fail "expected int, got %s" (Json.to_string j)
let list_ = function Json.List l -> l | j -> fail "expected list, got %s" (Json.to_string j)

let field name j =
  match Json.member name j with Some v -> v | None -> fail "missing field %S" name

let opt_field name j = match Json.member name j with Some Json.Null | None -> None | v -> v

(* ---------- dtypes ---------- *)

let dtype_to_json dt = Json.String (Dtype.to_string dt)

let dtype_of_json j =
  let s = str j in
  let num_args prefix =
    let inner = String.sub s (String.length prefix) (String.length s - String.length prefix - 1) in
    List.map int_of_string (String.split_on_char ',' inner)
  in
  let has prefix = String.length s > String.length prefix && String.sub s 0 (String.length prefix) = prefix in
  try
    if s = "bool" then Dtype.Bool
    else if has "ap_uint<" then Dtype.UInt (List.hd (num_args "ap_uint<"))
    else if has "ap_int<" then Dtype.SInt (List.hd (num_args "ap_int<"))
    else if has "ap_ufixed<" then
      match num_args "ap_ufixed<" with
      | [ w; i ] -> Dtype.UFixed { width = w; int_bits = i }
      | _ -> fail "bad fixed dtype %S" s
    else if has "ap_fixed<" then
      match num_args "ap_fixed<" with
      | [ w; i ] -> Dtype.SFixed { width = w; int_bits = i }
      | _ -> fail "bad fixed dtype %S" s
    else fail "unknown dtype %S" s
  with Failure _ -> fail "unparseable dtype %S" s

(* ---------- values: dtype + raw hex pattern, exact round-trip ---------- *)

let value_to_json v =
  Json.Obj [ ("t", dtype_to_json (Value.dtype v)); ("x", Json.String (Bits.to_hex (Value.to_bits v))) ]

let value_of_json j =
  let dt = dtype_of_json (field "t" j) in
  Value.of_bits dt (Bits.of_hex ~width:(Dtype.width dt) (str (field "x" j)))

(* ---------- expressions ---------- *)

let binop_of_name s =
  let all =
    [
      Expr.Add; Expr.Sub; Expr.Mul; Expr.Div; Expr.Rem; Expr.And; Expr.Or; Expr.Xor; Expr.Shl;
      Expr.Shr; Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.LAnd; Expr.LOr;
    ]
  in
  match List.find_opt (fun b -> Expr.binop_name b = s) all with
  | Some b -> b
  | None -> fail "unknown binop %S" s

let unop_name = function Expr.Neg -> "neg" | Expr.BNot -> "bnot" | Expr.LNot -> "lnot"

let unop_of_name = function
  | "neg" -> Expr.Neg
  | "bnot" -> Expr.BNot
  | "lnot" -> Expr.LNot
  | s -> fail "unknown unop %S" s

let rec expr_to_json (e : Expr.t) : Json.t =
  match e with
  | Expr.Const v -> Json.Obj [ ("k", Json.String "const"); ("v", value_to_json v) ]
  | Expr.Var x -> Json.Obj [ ("k", Json.String "var"); ("name", Json.String x) ]
  | Expr.Idx (a, i) ->
      Json.Obj [ ("k", Json.String "idx"); ("name", Json.String a); ("i", expr_to_json i) ]
  | Expr.Bin (b, x, y) ->
      Json.Obj
        [
          ("k", Json.String "bin");
          ("op", Json.String (Expr.binop_name b));
          ("l", expr_to_json x);
          ("r", expr_to_json y);
        ]
  | Expr.Un (u, x) ->
      Json.Obj [ ("k", Json.String "un"); ("op", Json.String (unop_name u)); ("x", expr_to_json x) ]
  | Expr.Cast (dt, x) ->
      Json.Obj [ ("k", Json.String "cast"); ("t", dtype_to_json dt); ("x", expr_to_json x) ]
  | Expr.Bitcast (dt, x) ->
      Json.Obj [ ("k", Json.String "bitcast"); ("t", dtype_to_json dt); ("x", expr_to_json x) ]
  | Expr.Select (c, x, y) ->
      Json.Obj
        [
          ("k", Json.String "select");
          ("c", expr_to_json c);
          ("l", expr_to_json x);
          ("r", expr_to_json y);
        ]

let rec expr_of_json j : Expr.t =
  match str (field "k" j) with
  | "const" -> Expr.Const (value_of_json (field "v" j))
  | "var" -> Expr.Var (str (field "name" j))
  | "idx" -> Expr.Idx (str (field "name" j), expr_of_json (field "i" j))
  | "bin" ->
      Expr.Bin (binop_of_name (str (field "op" j)), expr_of_json (field "l" j), expr_of_json (field "r" j))
  | "un" -> Expr.Un (unop_of_name (str (field "op" j)), expr_of_json (field "x" j))
  | "cast" -> Expr.Cast (dtype_of_json (field "t" j), expr_of_json (field "x" j))
  | "bitcast" -> Expr.Bitcast (dtype_of_json (field "t" j), expr_of_json (field "x" j))
  | "select" ->
      Expr.Select (expr_of_json (field "c" j), expr_of_json (field "l" j), expr_of_json (field "r" j))
  | k -> fail "unknown expr kind %S" k

(* ---------- statements ---------- *)

let lvalue_to_json = function
  | Op.LVar x -> Json.Obj [ ("k", Json.String "var"); ("name", Json.String x) ]
  | Op.LIdx (a, i) -> Json.Obj [ ("k", Json.String "idx"); ("name", Json.String a); ("i", expr_to_json i) ]

let lvalue_of_json j =
  match str (field "k" j) with
  | "var" -> Op.LVar (str (field "name" j))
  | "idx" -> Op.LIdx (str (field "name" j), expr_of_json (field "i" j))
  | k -> fail "unknown lvalue kind %S" k

let rec stmt_to_json (s : Op.stmt) : Json.t =
  match s with
  | Op.Assign (lv, e) ->
      Json.Obj [ ("k", Json.String "assign"); ("lv", lvalue_to_json lv); ("e", expr_to_json e) ]
  | Op.Read (lv, port) ->
      Json.Obj [ ("k", Json.String "read"); ("lv", lvalue_to_json lv); ("port", Json.String port) ]
  | Op.Write (port, e) ->
      Json.Obj [ ("k", Json.String "write"); ("port", Json.String port); ("e", expr_to_json e) ]
  | Op.For { var; lo; hi; body; pipeline } ->
      Json.Obj
        [
          ("k", Json.String "for");
          ("var", Json.String var);
          ("lo", Json.Int lo);
          ("hi", Json.Int hi);
          ("pipeline", Json.Bool pipeline);
          ("body", Json.List (List.map stmt_to_json body));
        ]
  | Op.If (c, t, e) ->
      Json.Obj
        [
          ("k", Json.String "if");
          ("c", expr_to_json c);
          ("then", Json.List (List.map stmt_to_json t));
          ("else", Json.List (List.map stmt_to_json e));
        ]
  | Op.Printf (fmt, args) ->
      Json.Obj
        [
          ("k", Json.String "printf");
          ("fmt", Json.String fmt);
          ("args", Json.List (List.map expr_to_json args));
        ]

let rec stmt_of_json j : Op.stmt =
  match str (field "k" j) with
  | "assign" -> Op.Assign (lvalue_of_json (field "lv" j), expr_of_json (field "e" j))
  | "read" -> Op.Read (lvalue_of_json (field "lv" j), str (field "port" j))
  | "write" -> Op.Write (str (field "port" j), expr_of_json (field "e" j))
  | "for" ->
      Op.For
        {
          var = str (field "var" j);
          lo = int_ (field "lo" j);
          hi = int_ (field "hi" j);
          pipeline = (match field "pipeline" j with Json.Bool b -> b | _ -> false);
          body = List.map stmt_of_json (list_ (field "body" j));
        }
  | "if" ->
      Op.If
        ( expr_of_json (field "c" j),
          List.map stmt_of_json (list_ (field "then" j)),
          List.map stmt_of_json (list_ (field "else" j)) )
  | "printf" ->
      Op.Printf (str (field "fmt" j), List.map expr_of_json (list_ (field "args" j)))
  | k -> fail "unknown stmt kind %S" k

(* ---------- operators ---------- *)

let port_to_json (p : Op.port) =
  Json.Obj [ ("name", Json.String p.port_name); ("t", dtype_to_json p.elem) ]

let port_of_json j = Op.port (str (field "name" j)) (dtype_of_json (field "t" j))

let decl_to_json = function
  | Op.Scalar { name; dtype; init } ->
      Json.Obj
        [
          ("k", Json.String "scalar");
          ("name", Json.String name);
          ("t", dtype_to_json dtype);
          ("init", match init with None -> Json.Null | Some v -> value_to_json v);
        ]
  | Op.Array { name; dtype; length; init } ->
      Json.Obj
        [
          ("k", Json.String "array");
          ("name", Json.String name);
          ("t", dtype_to_json dtype);
          ("len", Json.Int length);
          ( "init",
            match init with
            | None -> Json.Null
            | Some vs -> Json.List (Array.to_list (Array.map value_to_json vs)) );
        ]

let decl_of_json j =
  let name = str (field "name" j) in
  let dt = dtype_of_json (field "t" j) in
  match str (field "k" j) with
  | "scalar" ->
      let init = Option.map value_of_json (opt_field "init" j) in
      Op.scalar ?init name dt
  | "array" ->
      let init =
        Option.map (fun v -> Array.of_list (List.map value_of_json (list_ v))) (opt_field "init" j)
      in
      Op.array ?init name dt (int_ (field "len" j))
  | k -> fail "unknown decl kind %S" k

let op_to_json (op : Op.t) =
  Json.Obj
    [
      ("name", Json.String op.name);
      ("inputs", Json.List (List.map port_to_json op.inputs));
      ("outputs", Json.List (List.map port_to_json op.outputs));
      ("locals", Json.List (List.map decl_to_json op.locals));
      ("body", Json.List (List.map stmt_to_json op.body));
    ]

let op_of_json j =
  Op.make ~name:(str (field "name" j))
    ~inputs:(List.map port_of_json (list_ (field "inputs" j)))
    ~outputs:(List.map port_of_json (list_ (field "outputs" j)))
    ~locals:(List.map decl_of_json (list_ (field "locals" j)))
    (List.map stmt_of_json (list_ (field "body" j)))

(* ---------- graphs ---------- *)

let target_to_json = function
  | Graph.Riscv -> Json.Obj [ ("k", Json.String "riscv") ]
  | Graph.Hw { page_hint } ->
      Json.Obj
        [ ("k", Json.String "hw"); ("page", match page_hint with None -> Json.Null | Some p -> Json.Int p) ]

let target_of_json j =
  match str (field "k" j) with
  | "riscv" -> Graph.Riscv
  | "hw" -> Graph.Hw { page_hint = Option.map int_ (opt_field "page" j) }
  | k -> fail "unknown target kind %S" k

let channel_to_json (c : Graph.channel) =
  Json.Obj
    [ ("name", Json.String c.chan_name); ("t", dtype_to_json c.elem); ("depth", Json.Int c.depth) ]

let channel_of_json j =
  Graph.channel ~depth:(int_ (field "depth" j)) ~elem:(dtype_of_json (field "t" j)) (str (field "name" j))

let instance_to_json (i : Graph.instance) =
  Json.Obj
    [
      ("name", Json.String i.inst_name);
      ("op", op_to_json i.op);
      ("target", target_to_json i.target);
      ( "bindings",
        Json.List (List.map (fun (p, c) -> Json.List [ Json.String p; Json.String c ]) i.bindings) );
    ]

let instance_of_json j =
  Graph.instance
    ~target:(target_of_json (field "target" j))
    ~name:(str (field "name" j))
    (op_of_json (field "op" j))
    (List.map
       (function
         | Json.List [ Json.String p; Json.String c ] -> (p, c)
         | b -> fail "bad binding %s" (Json.to_string b))
       (list_ (field "bindings" j)))

let graph_to_json (g : Graph.t) =
  Json.Obj
    [
      ("name", Json.String g.graph_name);
      ("channels", Json.List (List.map channel_to_json g.channels));
      ("instances", Json.List (List.map instance_to_json g.instances));
      ("inputs", Json.List (List.map (fun s -> Json.String s) g.inputs));
      ("outputs", Json.List (List.map (fun s -> Json.String s) g.outputs));
    ]

let graph_of_json j =
  Graph.make
    ~name:(str (field "name" j))
    ~channels:(List.map channel_of_json (list_ (field "channels" j)))
    ~instances:(List.map instance_of_json (list_ (field "instances" j)))
    ~inputs:(List.map str (list_ (field "inputs" j)))
    ~outputs:(List.map str (list_ (field "outputs" j)))

(* ---------- workloads and mutations ---------- *)

let workload_to_json w =
  Json.Obj
    (List.map (fun (chan, vs) -> (chan, Json.List (List.map value_to_json vs))) w)

let workload_of_json = function
  | Json.Obj fields -> List.map (fun (chan, vs) -> (chan, List.map value_of_json (list_ vs))) fields
  | j -> fail "expected workload object, got %s" (Json.to_string j)

let mutation_to_json (Mutate.Swap_inputs { a = ia, pa; b = ib, pb }) =
  Json.Obj
    [
      ("k", Json.String "swap_inputs");
      ("a", Json.List [ Json.String ia; Json.String pa ]);
      ("b", Json.List [ Json.String ib; Json.String pb ]);
    ]

let mutation_of_json j =
  match (str (field "k" j), field "a" j, field "b" j) with
  | "swap_inputs", Json.List [ Json.String ia; Json.String pa ], Json.List [ Json.String ib; Json.String pb ]
    ->
      Mutate.Swap_inputs { a = (ia, pa); b = (ib, pb) }
  | k, _, _ -> fail "unknown mutation kind %S" k
