(** One deterministic PRNG discipline for every randomized suite.

    A root seed (CLI flag or [PLD_FAULT_SEED]) plus a textual tag or a
    case index derives an independent sub-seed through
    {!Pld_util.Digest_lite}, so fuzz cases, fault sweeps and
    regression replays all draw from streams that are (a) independent
    of each other and (b) bit-reproducible from the root seed alone —
    no global RNG, no ad-hoc [seed + i] arithmetic scattered through
    test files. *)

val derive : seed:int -> string -> int
(** [derive ~seed tag] is a stable non-negative sub-seed. Different
    tags give independent streams; equal inputs give equal outputs on
    every platform. *)

val case_seed : seed:int -> int -> int
(** The sub-seed of numbered case [index] under [seed]. *)

val case_rng : seed:int -> int -> Pld_util.Rng.t
(** A fresh generator for numbered case [index] under [seed]. *)

val cases : seed:int -> count:int -> (int -> Pld_util.Rng.t -> unit) -> unit
(** [cases ~seed ~count f] runs [f index rng] for each case with its
    derived generator — the seeded-case combinator the fault sweeps
    and the fuzzer share. *)

val sub_seeds : seed:int -> count:int -> string -> int list
(** [count] derived sub-seeds under [tag] — for suites that need plain
    seeds (e.g. fault injectors) rather than generators. *)
