module B = Pld_core.Build
module Runner = Pld_core.Runner
module Json = Pld_telemetry.Json
module Fault = Pld_faults.Fault

type options = {
  seed : int;
  count : int;
  params : Gen.params;
  levels : B.level list;  (** union of every level named by [pairs] *)
  pairs : (B.level * B.level) list;
  corpus_dir : string option;  (** persist shrunk reproducers here *)
  fault_sweep : bool;
  shrink_budget : int;
  fuel : int option;
}

let dedup l = List.fold_left (fun acc x -> if List.mem x acc then acc else acc @ [ x ]) [] l

let level_of_name s =
  match s with
  | "-O0" | "O0" | "o0" -> Ok B.O0
  | "-O1" | "O1" | "o1" -> Ok B.O1
  | "-O3" | "O3" | "o3" -> Ok B.O3
  | _ -> Error (Printf.sprintf "unknown level %S (expected O0, O1 or O3)" s)

(* "O0:O3,O1:O3" -> [(O0, O3); (O1, O3)] *)
let parse_level_pairs s =
  let parse_pair p =
    match String.split_on_char ':' (String.trim p) with
    | [ a; b ] -> (
        match (level_of_name (String.trim a), level_of_name (String.trim b)) with
        | Ok la, Ok lb -> Ok (la, lb)
        | Error e, _ | _, Error e -> Error e)
    | _ -> Error (Printf.sprintf "bad level pair %S (expected LEVEL:LEVEL)" p)
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | p :: rest -> ( match parse_pair p with Ok pr -> go (pr :: acc) rest | Error e -> Error e)
  in
  go [] (String.split_on_char ',' s)

let levels_of_pairs pairs = dedup (List.concat_map (fun (a, b) -> [ a; b ]) pairs)

let default_options =
  let pairs = [ (B.O0, B.O3) ] in
  {
    seed = 42;
    count = 100;
    params = Gen.default_params;
    levels = levels_of_pairs pairs;
    pairs;
    corpus_dir = None;
    fault_sweep = false;
    shrink_budget = 150;
    fuel = None;
  }

type case_report = {
  r_index : int;
  r_digest : string;  (** content digest of (graph, workload) *)
  r_instances : int;
  r_failures : Oracle.failure list;
  r_shrunk_instances : int option;  (** after minimization, failing cases only *)
  r_saved : string option;  (** corpus path of the reproducer *)
}

type summary = {
  s_seed : int;
  s_count : int;
  s_pairs : (B.level * B.level) list;
  s_fault_sweep : bool;
  s_cases : case_report list;
  s_passed : int;
  s_failed : int;
}

(* The fault-injection sweep rides on the generator: the same graph is
   rebuilt at -O1 under a flaky page-compile job, a defective page and
   lossy NoC links — recovery (retry, page remap, softcore fallback,
   flit retransmission) must not change a single output token. *)
let fault_check ?fuel ~case_seed g ~inputs expected =
  let victim =
    match (g : Pld_ir.Graph.t).Pld_ir.Graph.instances with
    | i :: _ -> i.Pld_ir.Graph.inst_name
    | [] -> "none"
  in
  let spec =
    {
      Fault.empty with
      Fault.defective_pages = [ 1 ];
      flaky_jobs = [ ("op:" ^ victim, 1) ];
      drop_rate = 0.02;
    }
  in
  let faults = Fault.create ~seed:(Seeded.derive ~seed:case_seed "faults") spec in
  match
    Oracle.catching ~where:"fault-sweep" (fun () ->
        let cache = B.create_cache () in
        let app =
          B.compile ~cache
            ~telemetry:(Pld_telemetry.Telemetry.create ())
            ~faults ~max_retries:2 ~defective:spec.Fault.defective_pages
            (Pld_fabric.Floorplan.u50 ())
            g ~level:B.O1
        in
        Runner.run ?fuel ~faults app ~inputs)
  with
  | Error f -> [ f ]
  | Ok res -> Oracle.compare_streams ~where:"fault-sweep" expected res.Runner.outputs

let run ?(log = fun _ -> ()) (o : options) =
  let config =
    {
      Oracle.default_config with
      Oracle.levels = o.levels;
      fuel = o.fuel;
    }
  in
  let reports = ref [] in
  Seeded.cases ~seed:o.seed ~count:o.count (fun index _rng ->
      let c = Gen.case ~params:o.params ~seed:o.seed ~index () in
      let g = c.Gen.graph and inputs = c.Gen.inputs in
      let failures = Oracle.check ~config g ~inputs in
      let failures =
        if o.fault_sweep && failures = [] then
          match Oracle.catching ~where:"reference" (fun () -> Oracle.reference ?fuel:o.fuel g ~inputs) with
          | Error f -> [ f ]
          | Ok r ->
              fault_check ?fuel:o.fuel ~case_seed:c.Gen.case_seed g ~inputs r.Pld_kpn.Run_graph.outputs
        else failures
      in
      let shrunk_instances, saved =
        match failures with
        | [] -> (None, None)
        | f0 :: _ ->
            log (Printf.sprintf "case %d FAILED: %s — shrinking" index (Oracle.failure_to_string f0));
            let sc = { Shrink.s_graph = g; s_inputs = inputs; s_mutation = None } in
            let out = Shrink.shrink ~config ~budget:o.shrink_budget sc f0 in
            let small = out.Shrink.shrunk in
            let insts = List.length small.Shrink.s_graph.Pld_ir.Graph.instances in
            let saved =
              Option.map
                (fun dir ->
                  Corpus.save ~dir
                    ~name:(Printf.sprintf "fuzz-seed%d-case%d" o.seed index)
                    {
                      Corpus.note =
                        Printf.sprintf "seed %d case %d: %s" o.seed index
                          (Oracle.failure_to_string out.Shrink.failure);
                      expect = Some out.Shrink.failure.Oracle.f_class;
                      levels = o.levels;
                      graph = small.Shrink.s_graph;
                      workload = small.Shrink.s_inputs;
                      mutation = None;
                    })
                o.corpus_dir
            in
            (Some insts, saved)
      in
      reports :=
        {
          r_index = index;
          r_digest = Gen.digest g inputs;
          r_instances = List.length g.Pld_ir.Graph.instances;
          r_failures = failures;
          r_shrunk_instances = shrunk_instances;
          r_saved = saved;
        }
        :: !reports);
  let cases = List.rev !reports in
  let failed = List.length (List.filter (fun r -> r.r_failures <> []) cases) in
  {
    s_seed = o.seed;
    s_count = o.count;
    s_pairs = o.pairs;
    s_fault_sweep = o.fault_sweep;
    s_cases = cases;
    s_passed = List.length cases - failed;
    s_failed = failed;
  }

(* The summary contains no wall-clock, no paths, no host state: two
   runs with equal options must serialize to equal bytes. *)
let summary_json s =
  let pair_str (a, b) = Printf.sprintf "%s:%s" (B.level_name a) (B.level_name b) in
  Json.Obj
    [
      ("seed", Json.Int s.s_seed);
      ("count", Json.Int s.s_count);
      ("level_pairs", Json.List (List.map (fun p -> Json.String (pair_str p)) s.s_pairs));
      ("fault_sweep", Json.Bool s.s_fault_sweep);
      ("passed", Json.Int s.s_passed);
      ("failed", Json.Int s.s_failed);
      ( "cases",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 ([
                    ("index", Json.Int r.r_index);
                    ("digest", Json.String r.r_digest);
                    ("instances", Json.Int r.r_instances);
                    ( "failures",
                      Json.List
                        (List.map
                           (fun (f : Oracle.failure) ->
                             Json.Obj
                               [
                                 ("class", Json.String f.Oracle.f_class);
                                 ("where", Json.String f.Oracle.f_where);
                                 ("detail", Json.String f.Oracle.f_detail);
                               ])
                           r.r_failures) );
                  ]
                 @ (match r.r_shrunk_instances with
                   | None -> []
                   | Some n -> [ ("shrunk_instances", Json.Int n) ])))
             s.s_cases) );
    ]

let render s =
  let b = Buffer.create 256 in
  Printf.bprintf b "fuzz: seed %d, %d cases, pairs %s%s\n" s.s_seed s.s_count
    (String.concat ","
       (List.map (fun (a, bb) -> Printf.sprintf "%s:%s" (B.level_name a) (B.level_name bb)) s.s_pairs))
    (if s.s_fault_sweep then ", fault sweep on" else "");
  Printf.bprintf b "  passed %d / failed %d\n" s.s_passed s.s_failed;
  List.iter
    (fun r ->
      if r.r_failures <> [] then begin
        Printf.bprintf b "  case %d (%d instances%s):\n" r.r_index r.r_instances
          (match r.r_shrunk_instances with
          | Some n -> Printf.sprintf ", shrunk to %d" n
          | None -> "");
        List.iter (fun f -> Printf.bprintf b "    %s\n" (Oracle.failure_to_string f)) r.r_failures;
        Option.iter (fun p -> Printf.bprintf b "    reproducer: %s\n" p) r.r_saved
      end)
    s.s_cases;
  Buffer.contents b
