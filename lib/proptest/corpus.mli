(** The shrunk-reproducer regression corpus.

    Every failing case the fuzzer finds is minimized and persisted
    here as a JSON document (graph + workload + optional mutation +
    the levels it was checked at). [test/corpus/] is committed, and
    the test suite replays it deterministically on every run — a bug
    found once is checked forever. *)

module B = Pld_core.Build

type entry = {
  note : string;  (** provenance: seed, case index, original failure *)
  expect : string option;
      (** a failing reproducer's oracle failure class; [None] for
          entries that must pass clean (e.g. mutant self-tests) *)
  levels : B.level list;
  graph : Pld_ir.Graph.t;
  workload : (string * Pld_ir.Value.t list) list;
  mutation : Mutate.t option;
}

val entry_to_json : entry -> Pld_telemetry.Json.t
val entry_of_json : Pld_telemetry.Json.t -> entry
(** Raises {!Serial.Malformed} on undecodable documents. *)

val save : dir:string -> name:string -> entry -> string
(** Write [<dir>/<name>.json] (creating [dir]), return the path. *)

val load : string -> entry
val load_dir : string -> (string * entry) list
(** All [*.json] entries of a directory in filename order; empty if
    the directory does not exist. *)

val replay : entry -> Oracle.failure list
(** Check the entry's pinned property. Empty = still holds. A mutant
    entry must pass clean {e and} stay caught when mutated; an
    [expect]ed failure must still reproduce with the same class; a
    plain entry must pass. *)
