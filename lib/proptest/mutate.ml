open Pld_ir

type t = Swap_inputs of { a : string * string; b : string * string }

let describe (Swap_inputs { a = ia, pa; b = ib, pb }) =
  Printf.sprintf "swap %s.%s <-> %s.%s" ia pa ib pb

let instances (Swap_inputs { a = ia, _; b = ib, _ }) = [ ia; ib ]

let input_bindings (g : Graph.t) =
  List.concat_map
    (fun (i : Graph.instance) ->
      List.filter_map
        (fun (p : Op.port) ->
          Option.map (fun c -> (i.inst_name, p.Op.port_name, c)) (Graph.binding g ~inst:i.inst_name ~port:p.port_name))
        i.op.Op.inputs)
    g.Graph.instances

let candidates (g : Graph.t) =
  let binds = input_bindings g in
  let pairs same =
    List.concat_map
      (fun (ia, pa, ca) ->
        List.filter_map
          (fun (ib, pb, cb) ->
            if (ia, pa) < (ib, pb) && ca <> cb && same = (ia = ib) then
              Some (Swap_inputs { a = (ia, pa); b = (ib, pb) })
            else None)
          binds)
      binds
  in
  (* Same-instance swaps first: they always preserve acyclicity and
     shrink to the smallest reproducers. *)
  pairs true @ pairs false

let apply (Swap_inputs { a = ia, pa; b = ib, pb } as m) g =
  match (Graph.binding g ~inst:ia ~port:pa, Graph.binding g ~inst:ib ~port:pb) with
  | Some ca, Some cb ->
      Graph.rebind (Graph.rebind g ~inst:ia ~port:pa cb) ~inst:ib ~port:pb ca
  | _ -> invalid_arg (Printf.sprintf "Mutate.apply: %s names a missing binding" (describe m))
