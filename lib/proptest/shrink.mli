(** Failing-case minimization.

    Greedy first-improvement descent over four candidate moves, each
    of which strictly simplifies the case, so the loop terminates
    without an explicit metric:

    - topo-prefix restriction (drop the graph's tail; severed channels
      become outputs, orphaned inputs disappear with their workload);
    - bypass (splice a 1-in/1-out operator out of the graph);
    - identity-ization (replace an operator body with the same-arity
      identity, keeping ports and rates);
    - input zeroing (one channel's workload at a time).

    A candidate is accepted only if the oracle still reports the
    original failure class (for mutants: the mutation is still
    caught), so the reproducer that comes out fails for the same
    reason the original did. *)

type scase = {
  s_graph : Pld_ir.Graph.t;
  s_inputs : (string * Pld_ir.Value.t list) list;
  s_mutation : Mutate.t option;
      (** when set, the case reproduces "mutant caught", and shrinking
          preserves the mutation's instances *)
}

type outcome = {
  shrunk : scase;
  failure : Oracle.failure;  (** the failure the shrunk case exhibits *)
  steps : int;  (** accepted shrink steps *)
  tested : int;  (** oracle evaluations spent *)
}

val candidates : scase -> scase list
(** One round of strictly-simpler neighbours, most aggressive first. *)

val shrink : ?config:Oracle.config -> ?budget:int -> scase -> Oracle.failure -> outcome
(** [budget] (default 150) bounds oracle evaluations — shrinking is
    always safe to run, it just stops improving when the budget runs
    out. *)
