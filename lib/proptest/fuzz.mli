(** The fuzzing driver behind [pldc fuzz] and the CI smoke job.

    Generates [count] seeded cases, runs the differential oracle on
    each at every level named by the requested level pairs, optionally
    rides a fault-injection sweep on passing cases, shrinks failures,
    and persists the minimized reproducers to the corpus directory.
    The summary deliberately contains no wall-clock or host state, so
    two runs with equal options serialize to identical JSON — which is
    itself one of the properties CI pins. *)

module B = Pld_core.Build

type options = {
  seed : int;
  count : int;
  params : Gen.params;
  levels : B.level list;  (** union of every level named by [pairs] *)
  pairs : (B.level * B.level) list;
  corpus_dir : string option;  (** persist shrunk reproducers here *)
  fault_sweep : bool;  (** also rebuild each passing case under injected faults *)
  shrink_budget : int;
  fuel : int option;
}

val default_options : options
(** seed 42, 100 cases, the [-O0:-O3] pair, no corpus, no faults. *)

val parse_level_pairs : string -> ((B.level * B.level) list, string) result
(** ["O0:O3,O1:O3"] → [[(O0, O3); (O1, O3)]]. *)

val levels_of_pairs : (B.level * B.level) list -> B.level list
(** Deduplicated union, first-mention order. *)

type case_report = {
  r_index : int;
  r_digest : string;  (** content digest of (graph, workload) *)
  r_instances : int;
  r_failures : Oracle.failure list;
  r_shrunk_instances : int option;  (** after minimization, failing cases only *)
  r_saved : string option;  (** corpus path of the reproducer *)
}

type summary = {
  s_seed : int;
  s_count : int;
  s_pairs : (B.level * B.level) list;
  s_fault_sweep : bool;
  s_cases : case_report list;
  s_passed : int;
  s_failed : int;
}

val run : ?log:(string -> unit) -> options -> summary
(** Never raises: every toolchain error is a structured failure in the
    corresponding case report. [log] receives progress lines as
    failures are found. *)

val fault_check :
  ?fuel:int ->
  case_seed:int ->
  Pld_ir.Graph.t ->
  inputs:(string * Pld_ir.Value.t list) list ->
  (string * Pld_ir.Value.t list) list ->
  Oracle.failure list
(** One fault-sweep step: rebuild at -O1 under a flaky page-compile
    job, a defective page and lossy NoC links; recovery must leave
    every output token identical to the fault-free expectation. *)

val summary_json : summary -> Pld_telemetry.Json.t
(** Bit-reproducible across runs with equal options. *)

val render : summary -> string
