open Pld_ir
module B = Pld_core.Build
module Flow = Pld_core.Flow
module Pnr = Pld_pnr.Pnr
module Runner = Pld_core.Runner
module Floorplan = Pld_fabric.Floorplan
module Telemetry = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json

type edit =
  | Touch of string
  | Swap of { a : string * string; b : string * string }
  | Grow_fifo of { chan : string; add : int }

let describe_edit = function
  | Touch inst -> Printf.sprintf "touch %s" inst
  | Swap { a = ia, pa; b = ib, pb } -> Printf.sprintf "swap %s.%s <-> %s.%s" ia pa ib pb
  | Grow_fifo { chan; add } -> Printf.sprintf "grow fifo %s by %d" chan add

let apply_edit e g =
  match e with
  | Touch inst -> ( match Graph.touch_op g inst with Some g' -> g' | None -> g)
  | Swap { a; b } -> ( try Mutate.apply (Mutate.Swap_inputs { a; b }) g with Invalid_argument _ -> g)
  | Grow_fifo { chan; add } ->
      {
        g with
        Graph.channels =
          List.map
            (fun (c : Graph.channel) ->
              if c.Graph.chan_name = chan then { c with Graph.depth = c.Graph.depth + add } else c)
            g.Graph.channels;
      }

type options = {
  q_seed : int;
  q_count : int;
  q_steps : int;
  q_params : Gen.params;
  q_corpus_dir : string option;
  q_fuel : int option;
}

let default_options =
  {
    q_seed = 42;
    q_count = 25;
    q_steps = 4;
    q_params = Gen.default_params;
    q_corpus_dir = None;
    q_fuel = None;
  }

type step_report = {
  p_step : int;
  p_edit : string;
  p_fallback : string option;
  p_cells_moved : int;
  p_nets_rerouted : int;
  p_failures : Oracle.failure list;
}

type seq_report = {
  q_index : int;
  q_digest : string;
  q_instances : int;
  q_step_reports : step_report list;
  q_saved : string option;
}

type summary = {
  z_seed : int;
  z_count : int;
  z_steps : int;
  z_seqs : seq_report list;
  z_passed : int;
  z_failed : int;
  z_delta_hits : int;
  z_fallbacks : int;
}

(* ---------- seeded edit drawing ---------- *)

let pick rng l = List.nth l (Pld_util.Rng.int rng (List.length l))

(* A swap is only admitted when the KPN reference still completes on
   the edited graph: same-instance input swaps cannot introduce a
   cycle, but a multi-rate instance can still deadlock when its port
   rates differ — such an edit is no use to an oracle that needs a
   runnable program, so it degrades to a touch. *)
let gen_edit ?fuel rng g ~inputs =
  let touch () = Touch (pick rng (List.map (fun (i : Graph.instance) -> i.Graph.inst_name) g.Graph.instances)) in
  match Pld_util.Rng.int rng 3 with
  | 0 -> touch ()
  | 1 -> (
      let same_inst =
        List.filter
          (fun (Mutate.Swap_inputs { a = ia, _; b = ib, _ }) -> ia = ib)
          (Mutate.candidates g)
      in
      match same_inst with
      | [] -> touch ()
      | cands -> (
          let (Mutate.Swap_inputs { a; b }) = pick rng cands in
          let g' = apply_edit (Swap { a; b }) g in
          match Oracle.catching ~where:"edit-probe" (fun () -> Oracle.reference ?fuel g' ~inputs) with
          | Ok _ -> Swap { a; b }
          | Error _ -> touch ()))
  | _ -> (
      let internal =
        List.filter
          (fun (c : Graph.channel) ->
            not (List.mem c.Graph.chan_name g.Graph.inputs || List.mem c.Graph.chan_name g.Graph.outputs))
          g.Graph.channels
      in
      match internal with
      | [] -> touch ()
      | cs -> Grow_fifo { chan = (pick rng cs).Graph.chan_name; add = 1 + Pld_util.Rng.int rng 8 })

(* ---------- the per-step equivalence check ---------- *)

let pnr_of app = (B.monolithic_exn app).Flow.pnr3

(* Compile the edited source twice — delta-chained and from scratch —
   and hold the delta build to the scratch build's standard: identical
   output streams (both must equal the reference) and no quality loss
   the scratch build does not also suffer. *)
let check_step ?fuel ~(compile : ?previous:B.app -> Graph.t -> B.app) ~previous ~inputs ~step g' =
  let where suffix = Printf.sprintf "%s@step%d" suffix step in
  match Oracle.catching ~where:(where "delta") (fun () -> compile ~previous g') with
  | Error f -> (None, 0, 0, [ f ], previous)
  | Ok dapp -> (
      let dpnr = pnr_of dapp in
      let fallback, moved, rerouted =
        match dpnr.Pnr.delta with
        | Some d -> (d.Pnr.fallback, d.Pnr.cells_moved, d.Pnr.nets_rerouted)
        | None -> (Some "no-delta-stats", 0, 0)
      in
      match Oracle.catching ~where:(where "scratch") (fun () -> compile g') with
      | Error f -> (fallback, moved, rerouted, [ f ], dapp)
      | Ok sapp ->
          let spnr = pnr_of sapp in
          let quality =
            List.concat
              [
                (if Pnr.routed_ok spnr && not (Pnr.routed_ok dpnr) then
                   [
                     {
                       Oracle.f_class = "delta-quality";
                       f_where = where "delta";
                       f_detail =
                         Printf.sprintf
                           "delta build lost legality (overfill %.1f, overused %d) where scratch is clean"
                           dpnr.Pnr.place.Pld_pnr.Place.overfill
                           dpnr.Pnr.route.Pld_pnr.Route.overused_edges;
                     };
                   ]
                 else []);
                (if
                   dpnr.Pnr.route.Pld_pnr.Route.overused_edges > 0
                   && spnr.Pnr.route.Pld_pnr.Route.overused_edges = 0
                 then
                   [
                     {
                       Oracle.f_class = "delta-congested";
                       f_where = where "delta";
                       f_detail =
                         Printf.sprintf "delta routing left %d overused edges"
                           dpnr.Pnr.route.Pld_pnr.Route.overused_edges;
                     };
                   ]
                 else []);
              ]
          in
          let behavior =
            match Oracle.catching ~where:(where "reference") (fun () -> Oracle.reference ?fuel g' ~inputs) with
            | Error f -> [ f ]
            | Ok r ->
                let expected = r.Pld_kpn.Run_graph.outputs in
                let run_and_compare tag app =
                  match Oracle.catching ~where:(where tag) (fun () -> Runner.run ?fuel app ~inputs) with
                  | Error f -> [ f ]
                  | Ok res -> Oracle.compare_streams ~where:(where tag) expected res.Runner.outputs
                in
                run_and_compare "delta" dapp @ run_and_compare "scratch" sapp
          in
          (fallback, moved, rerouted, quality @ behavior, dapp))

(* ---------- the driver ---------- *)

let run ?(log = fun _ -> ()) (o : options) =
  let fp = Floorplan.u50 () in
  let edit_rng_seed = Seeded.derive ~seed:o.q_seed "edit-seq" in
  let reports = ref [] in
  for index = 0 to o.q_count - 1 do
    let c = Gen.case ~params:o.q_params ~seed:o.q_seed ~index () in
    let rng = Seeded.case_rng ~seed:edit_rng_seed index in
    (* One private cache per sequence: the delta chain and the scratch
       rebuilds share operator-level artifacts (as one developer's
       working directory would) while distinct previous-P&R cache keys
       keep the two monolithic artifact streams apart. *)
    let cache = B.create_cache () in
    let telemetry = Telemetry.create () in
    let compile ?previous g = B.compile ~cache ~telemetry ?previous fp g ~level:B.O3 in
    let steps = ref [] and saved = ref None in
    (match Oracle.catching ~where:"base" (fun () -> compile c.Gen.graph) with
    | Error f ->
        steps :=
          [
            {
              p_step = 0;
              p_edit = "base compile";
              p_fallback = None;
              p_cells_moved = 0;
              p_nets_rerouted = 0;
              p_failures = [ f ];
            };
          ]
    | Ok app0 ->
        let g = ref c.Gen.graph and prev = ref app0 and step = ref 1 and stop = ref false in
        while (not !stop) && !step <= o.q_steps do
          let edit = gen_edit ?fuel:o.q_fuel rng !g ~inputs:c.Gen.inputs in
          let g' = apply_edit edit !g in
          let fallback, moved, rerouted, failures, next_prev =
            check_step ?fuel:o.q_fuel ~compile ~previous:!prev ~inputs:c.Gen.inputs ~step:!step g'
          in
          steps :=
            {
              p_step = !step;
              p_edit = describe_edit edit;
              p_fallback = fallback;
              p_cells_moved = moved;
              p_nets_rerouted = rerouted;
              p_failures = failures;
            }
            :: !steps;
          if failures <> [] then begin
            log
              (Printf.sprintf "sequence %d step %d (%s) FAILED: %s" index !step (describe_edit edit)
                 (Oracle.failure_to_string (List.hd failures)));
            saved :=
              Option.map
                (fun dir ->
                  Corpus.save ~dir
                    ~name:(Printf.sprintf "editseq-seed%d-case%d-step%d" o.q_seed index !step)
                    {
                      Corpus.note =
                        Printf.sprintf "edit-seq seed %d case %d step %d (%s): %s" o.q_seed index
                          !step (describe_edit edit)
                          (Oracle.failure_to_string (List.hd failures));
                      expect = None;
                      levels = [ B.O3 ];
                      graph = g';
                      workload = c.Gen.inputs;
                      mutation = None;
                    })
                o.q_corpus_dir;
            stop := true
          end
          else begin
            g := g';
            prev := next_prev;
            incr step
          end
        done);
    reports :=
      {
        q_index = index;
        q_digest = Gen.digest c.Gen.graph c.Gen.inputs;
        q_instances = List.length c.Gen.graph.Graph.instances;
        q_step_reports = List.rev !steps;
        q_saved = !saved;
      }
      :: !reports
  done;
  let seqs = List.rev !reports in
  let all_steps = List.concat_map (fun s -> s.q_step_reports) seqs in
  let failed = List.length (List.filter (fun s -> List.exists (fun p -> p.p_failures <> []) s.q_step_reports) seqs) in
  {
    z_seed = o.q_seed;
    z_count = o.q_count;
    z_steps = o.q_steps;
    z_seqs = seqs;
    z_passed = List.length seqs - failed;
    z_failed = failed;
    z_delta_hits = List.length (List.filter (fun p -> p.p_failures = [] && p.p_fallback = None) all_steps);
    z_fallbacks = List.length (List.filter (fun p -> p.p_fallback <> None) all_steps);
  }

(* No wall-clock, no paths, no host state: equal options must
   serialize to equal bytes (the same pin the level fuzzer carries). *)
let summary_json s =
  Json.Obj
    [
      ("seed", Json.Int s.z_seed);
      ("count", Json.Int s.z_count);
      ("steps", Json.Int s.z_steps);
      ("passed", Json.Int s.z_passed);
      ("failed", Json.Int s.z_failed);
      ("delta_hits", Json.Int s.z_delta_hits);
      ("fallbacks", Json.Int s.z_fallbacks);
      ( "sequences",
        Json.List
          (List.map
             (fun q ->
               Json.Obj
                 [
                   ("index", Json.Int q.q_index);
                   ("digest", Json.String q.q_digest);
                   ("instances", Json.Int q.q_instances);
                   ( "steps",
                     Json.List
                       (List.map
                          (fun p ->
                            Json.Obj
                              ([
                                 ("step", Json.Int p.p_step);
                                 ("edit", Json.String p.p_edit);
                                 ("cells_moved", Json.Int p.p_cells_moved);
                                 ("nets_rerouted", Json.Int p.p_nets_rerouted);
                               ]
                              @ (match p.p_fallback with
                                | None -> []
                                | Some r -> [ ("fallback", Json.String r) ])
                              @
                              match p.p_failures with
                              | [] -> []
                              | fs ->
                                  [
                                    ( "failures",
                                      Json.List
                                        (List.map
                                           (fun (f : Oracle.failure) ->
                                             Json.Obj
                                               [
                                                 ("class", Json.String f.Oracle.f_class);
                                                 ("where", Json.String f.Oracle.f_where);
                                                 ("detail", Json.String f.Oracle.f_detail);
                                               ])
                                           fs) );
                                  ]))
                          q.q_step_reports) );
                 ])
             s.z_seqs) );
    ]

let render s =
  let b = Buffer.create 256 in
  Printf.bprintf b "edit-seq fuzz: seed %d, %d sequences x %d edits\n" s.z_seed s.z_count s.z_steps;
  Printf.bprintf b "  passed %d / failed %d; delta path served %d steps, %d fallbacks\n" s.z_passed
    s.z_failed s.z_delta_hits s.z_fallbacks;
  List.iter
    (fun q ->
      List.iter
        (fun p ->
          if p.p_failures <> [] then begin
            Printf.bprintf b "  sequence %d (%d instances) step %d: %s\n" q.q_index q.q_instances
              p.p_step p.p_edit;
            List.iter (fun f -> Printf.bprintf b "    %s\n" (Oracle.failure_to_string f)) p.p_failures;
            Option.iter (fun path -> Printf.bprintf b "    reproducer: %s\n" path) q.q_saved
          end)
        q.q_step_reports)
    s.z_seqs;
  Buffer.contents b
