open Pld_ir
module Rng = Pld_util.Rng
module Dsl = Pld_rosetta.Dsl
module Digest = Pld_util.Digest_lite

type params = {
  max_ops : int;
  max_tokens : int;
  riscv_share : int;
  max_channel_tokens : int;
}

(* Default sizes keep a case inside the floorplan at every level: the
   u50 fabric has 22 pages but only the 7 big-BRAM ones can host the
   PicoRV32 softcore, and -O0 puts *every* instance on a softcore — so
   the default instance budget is 7. They also keep the -O0 cycle-level
   cosim of a whole fuzz batch fast. *)
let default_params = { max_ops = 7; max_tokens = 6; riscv_share = 20; max_channel_tokens = 32 }

type case = {
  index : int;
  case_seed : int;
  graph : Graph.t;
  inputs : (string * Value.t list) list;
}

(* ---------- the closed expression grammar ---------- *)

(* Compute types drawn per operator: ap_uint/ap_int plus one fixed-point
   type whose products stay under the 64-bit -O0 ap-runtime limit. *)
let fx = Dtype.SFixed { width = 24; int_bits = 12 }

let integer_dtypes = [| Dtype.word; Dtype.SInt 32; Dtype.UInt 16; Dtype.SInt 8 |]
let compute_dtypes = Array.append integer_dtypes [| fx |]

let int_binops = [| Expr.Add; Expr.Sub; Expr.Mul; Expr.Add; Expr.Sub; Expr.Xor; Expr.And; Expr.Or; Expr.Div; Expr.Rem |]
let fx_binops = [| Expr.Add; Expr.Sub; Expr.Mul; Expr.Add |]
let cmps = [| Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge; Expr.Eq; Expr.Ne |]

let const_of rng dt =
  if Dtype.equal dt fx then Expr.float_ fx (float_of_int (Rng.int_in rng (-16) 16) /. 4.0)
  else
    let magnitude = if Rng.int rng 4 = 0 then 0xFFFF else 16 in
    let v = Rng.int rng (magnitude + 1) in
    let v = if Dtype.is_signed dt && Rng.bool rng then -v else v in
    Expr.int dt v

(* [vars] are scalar locals of type [dt]; [loop] is the name of the
   enclosing loop variable (an ap_int<32>), usable through a cast. *)
let rec gen_expr rng ~dt ~vars ~loop ~depth =
  let leaf () =
    match Rng.int rng 4 with
    | 0 -> const_of rng dt
    | 1 when loop <> None -> Expr.Cast (dt, Expr.var (Option.get loop))
    | _ -> Expr.var (Rng.choose rng vars)
  in
  if depth <= 0 || Rng.int rng 4 = 0 then leaf ()
  else
    let sub () = gen_expr rng ~dt ~vars ~loop ~depth:(depth - 1) in
    let integer = Dtype.is_integer dt in
    match Rng.int rng (if integer then 8 else 6) with
    | 0 | 1 ->
        let ops = if integer then int_binops else fx_binops in
        Expr.Bin (Rng.choose rng ops, sub (), sub ())
    | 2 ->
        (* Both arms cast back to [dt]: the ap-runtime requires select
           arms to agree on their inferred type. *)
        Expr.Select
          (Expr.Bin (Rng.choose rng cmps, sub (), sub ()), Expr.Cast (dt, sub ()), Expr.Cast (dt, sub ()))
    | 3 -> if Dtype.is_signed dt then Expr.Un (Expr.Neg, sub ()) else Expr.Bin (Expr.Add, sub (), sub ())
    | 4 ->
        (* Narrow-and-return: exercises the cast/width rules. *)
        let narrow = if integer then Rng.choose rng integer_dtypes else fx in
        Expr.Cast (dt, Expr.Cast (narrow, sub ()))
    | 5 when integer ->
        (* Fixed-point excursion from an integer context. *)
        Expr.Cast (dt, Expr.Bin (Rng.choose rng fx_binops, Expr.Cast (fx, sub ()), const_of rng fx))
    | 5 -> Expr.Bin (Rng.choose rng fx_binops, sub (), sub ())
    | 6 -> Expr.Bin ((if Rng.bool rng then Expr.Shl else Expr.Shr), sub (), Expr.int (Dtype.SInt 32) (Rng.int rng 8))
    | _ -> Expr.Un (Expr.BNot, sub ())

(* ---------- operator shapes ---------- *)

(* Every shape consumes and produces a statically known token count per
   frame; the graph builder threads those counts so multi-rate chains
   stay consistent and channel depths can be sized to make the
   (feedback-free) topology deadlock-free. *)

let expr1 rng dt var = gen_expr rng ~dt ~vars:[| var |] ~loop:(Some "i") ~depth:3
let expr2 rng dt a b = gen_expr rng ~dt ~vars:[| a; b |] ~loop:(Some "i") ~depth:3

let shape_map rng ~name ~n =
  let dt = Rng.choose rng compute_dtypes in
  Dsl.map_op ~name ~n ~dt (fun _ -> expr1 rng dt "x")

let shape_stateful_map rng ~name ~n =
  let dt = Rng.choose rng compute_dtypes in
  Op.make ~name ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" dt; Op.scalar ~init:(Value.of_int dt 1) "acc" dt ]
    [
      Dsl.for_ "i" 0 n
        [
          Dsl.read "x" "in";
          Dsl.assign "acc" (expr2 rng dt "acc" "x");
          Dsl.write "out" (expr2 rng dt "acc" "x");
        ];
    ]

let shape_branch rng ~name ~n =
  let dt = Rng.choose rng compute_dtypes in
  Op.make ~name ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" dt ]
    [
      Dsl.for_ "i" 0 n
        [
          Dsl.read "x" "in";
          Dsl.if_
            (Expr.Bin (Rng.choose rng cmps, Expr.var "x", const_of rng dt))
            [ Dsl.write "out" (expr1 rng dt "x") ]
            [ Dsl.write "out" (expr1 rng dt "x") ];
        ];
    ]

let shape_buffer rng ~name ~n =
  let dt = Rng.choose rng compute_dtypes in
  Op.make ~name ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.array "buf" dt n ]
    [
      Dsl.for_ "i" 0 n [ Dsl.read_at "buf" (Expr.var "i") "in" ];
      Dsl.for_ "j" 0 n
        [
          Dsl.write "out"
            (Expr.Idx ("buf", Expr.Bin (Expr.Sub, Expr.int (Dtype.SInt 32) (n - 1), Expr.var "j")));
        ];
    ]

let shape_dup rng ~name ~n =
  let dt = Rng.choose rng compute_dtypes in
  Dsl.dup_op ~name ~n ~dt (fun _ -> expr1 rng dt "x") (fun _ -> expr1 rng dt "x")

let shape_zip rng ~name ~n =
  let dt = Rng.choose rng compute_dtypes in
  Dsl.zip_op ~name ~n ~dt (fun _ _ -> expr2 rng dt "a" "b")

let shape_decimate rng ~name ~n =
  (* Consumes 2n, produces n: the multi-rate consumer. *)
  let dt = Rng.choose rng compute_dtypes in
  Op.make ~name ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "a" dt; Op.scalar "b" dt ]
    [
      Dsl.for_ "i" 0 n
        [ Dsl.read "a" "in"; Dsl.read "b" "in"; Dsl.write "out" (expr2 rng dt "a" "b") ];
    ]

let shape_expand rng ~name ~n =
  (* Consumes n, produces 2n: the multi-rate producer. *)
  let dt = Rng.choose rng compute_dtypes in
  Op.make ~name ~inputs:[ Op.word_port "in" ] ~outputs:[ Op.word_port "out" ]
    ~locals:[ Op.scalar "x" dt ]
    [
      Dsl.for_ "i" 0 n
        [ Dsl.read "x" "in"; Dsl.write "out" (expr1 rng dt "x"); Dsl.write "out" (expr1 rng dt "x") ];
    ]

(* ---------- graph assembly ---------- *)

type open_chan = { oc_name : string; oc_tokens : int }

let graph ?(params = default_params) rng ~name =
  (* 7 floorplan pages can host a softcore; -O0 needs one per instance. *)
  let max_ops = min params.max_ops 7 in
  let base_tokens = max 2 (Rng.int_in rng 2 (max 2 params.max_tokens)) in
  let n_inputs = Rng.int_in rng 1 2 in
  let channels = ref [] in
  let instances = ref [] in
  let chan_counter = ref 0 in
  let mk_chan tokens =
    let cn = Printf.sprintf "c%d" !chan_counter in
    incr chan_counter;
    channels := Graph.channel ~depth:(tokens + 2) cn :: !channels;
    cn
  in
  let inputs =
    List.init n_inputs (fun i ->
        let cn = Printf.sprintf "in%d" i in
        channels := Graph.channel ~depth:(base_tokens + 2) cn :: !channels;
        cn)
  in
  let open_chans = ref (List.map (fun cn -> { oc_name = cn; oc_tokens = base_tokens }) inputs) in
  let take oc = open_chans := List.filter (fun o -> o.oc_name <> oc.oc_name) !open_chans in
  let target () = if Rng.int rng 100 < params.riscv_share then Graph.Riscv else Graph.Hw { page_hint = None } in
  let add_instance op bindings =
    instances := Graph.instance ~target:(target ()) ~name:op.Op.name op bindings :: !instances
  in
  let is_input cn = List.mem cn inputs in
  (* Reserve headroom so a final pass can always consume leftover graph
     inputs: an input that stayed open would be both a graph input and
     a graph output — a DMA self-link the NoC never carries. *)
  let n_ops = Rng.int_in rng 1 (max 1 (max_ops - n_inputs)) in
  for k = 0 to n_ops - 1 do
    let pick_open () =
      (* Prefer unconsumed graph inputs so real topologies start there. *)
      match List.filter (fun o -> is_input o.oc_name) !open_chans with
      | [] -> Rng.choose rng (Array.of_list !open_chans)
      | ins -> Rng.choose rng (Array.of_list ins)
    in
    let zip_pair () =
      (* Two distinct open channels carrying the same frame length. *)
      let eligible =
        List.concat_map
          (fun a ->
            List.filter_map
              (fun b -> if a.oc_name < b.oc_name && a.oc_tokens = b.oc_tokens then Some (a, b) else None)
              !open_chans)
          !open_chans
      in
      match eligible with [] -> None | l -> Some (Rng.choose rng (Array.of_list l))
    in
    let shapes =
      List.concat
        [
          [ `Map; `Map; `Smap; `Branch; `Dup ];
          (if List.exists (fun o -> o.oc_tokens <= 16) !open_chans then [ `Buffer ] else []);
          (match zip_pair () with Some _ -> [ `Zip; `Zip ] | None -> []);
          (if List.exists (fun o -> o.oc_tokens mod 2 = 0 && o.oc_tokens >= 2) !open_chans then [ `Decim ] else []);
          (if List.exists (fun o -> 2 * o.oc_tokens <= params.max_channel_tokens) !open_chans then [ `Expand ] else []);
        ]
    in
    match Rng.choose rng (Array.of_list shapes) with
    | (`Map | `Smap | `Branch | `Buffer) as shape ->
        let oc =
          match shape with
          | `Buffer ->
              Rng.choose rng (Array.of_list (List.filter (fun o -> o.oc_tokens <= 16) !open_chans))
          | _ -> pick_open ()
        in
        let n = oc.oc_tokens in
        let nm pfx = Printf.sprintf "%s%d" pfx k in
        let op =
          match shape with
          | `Map -> shape_map rng ~name:(nm "map") ~n
          | `Smap -> shape_stateful_map rng ~name:(nm "smap") ~n
          | `Branch -> shape_branch rng ~name:(nm "sel") ~n
          | `Buffer -> shape_buffer rng ~name:(nm "buf") ~n
        in
        take oc;
        let out = mk_chan n in
        add_instance op [ ("in", oc.oc_name); ("out", out) ];
        open_chans := { oc_name = out; oc_tokens = n } :: !open_chans
    | `Dup ->
        let oc = pick_open () in
        let n = oc.oc_tokens in
        let op = shape_dup rng ~name:(Printf.sprintf "dup%d" k) ~n in
        take oc;
        let o0 = mk_chan n and o1 = mk_chan n in
        add_instance op [ ("in", oc.oc_name); ("out0", o0); ("out1", o1) ];
        open_chans :=
          { oc_name = o0; oc_tokens = n } :: { oc_name = o1; oc_tokens = n } :: !open_chans
    | `Zip -> begin
        match zip_pair () with
        | None -> ()
        | Some (a, b) ->
            let n = a.oc_tokens in
            let op = shape_zip rng ~name:(Printf.sprintf "zip%d" k) ~n in
            take a;
            take b;
            let out = mk_chan n in
            add_instance op [ ("in0", a.oc_name); ("in1", b.oc_name); ("out", out) ];
            open_chans := { oc_name = out; oc_tokens = n } :: !open_chans
      end
    | `Decim ->
        let oc =
          Rng.choose rng
            (Array.of_list (List.filter (fun o -> o.oc_tokens mod 2 = 0 && o.oc_tokens >= 2) !open_chans))
        in
        let n = oc.oc_tokens / 2 in
        let op = shape_decimate rng ~name:(Printf.sprintf "dec%d" k) ~n in
        take oc;
        let out = mk_chan n in
        add_instance op [ ("in", oc.oc_name); ("out", out) ];
        open_chans := { oc_name = out; oc_tokens = n } :: !open_chans
    | `Expand ->
        let oc =
          Rng.choose rng
            (Array.of_list
               (List.filter (fun o -> 2 * o.oc_tokens <= params.max_channel_tokens) !open_chans))
        in
        let n = oc.oc_tokens in
        let op = shape_expand rng ~name:(Printf.sprintf "exp%d" k) ~n in
        take oc;
        let out = mk_chan (2 * n) in
        add_instance op [ ("in", oc.oc_name); ("out", out) ];
        open_chans := { oc_name = out; oc_tokens = 2 * n } :: !open_chans
  done;
  (* Final pass: any graph input still open gets a map stage. *)
  List.iteri
    (fun i oc ->
      if is_input oc.oc_name then begin
        let n = oc.oc_tokens in
        let op = shape_map rng ~name:(Printf.sprintf "map%d" (n_ops + i)) ~n in
        take oc;
        let out = mk_chan n in
        add_instance op [ ("in", oc.oc_name); ("out", out) ];
        open_chans := { oc_name = out; oc_tokens = n } :: !open_chans
      end)
    !open_chans;
  let outputs = List.rev_map (fun o -> o.oc_name) !open_chans in
  let g =
    Graph.make ~name ~channels:(List.rev !channels) ~instances:(List.rev !instances) ~inputs
      ~outputs
  in
  let workload =
    List.map
      (fun cn ->
        ( cn,
          List.init base_tokens (fun _ ->
              let v =
                if Rng.int rng 3 = 0 then Int64.to_int (Int64.logand (Rng.bits64 rng) 0xFFFFFFFFL)
                else Rng.int rng 256
              in
              Value.of_int Dtype.word v) ))
      inputs
  in
  (g, workload)

let case ?params ~seed ~index () =
  let case_seed = Seeded.case_seed ~seed index in
  let rng = Rng.create case_seed in
  let g, inputs = graph ?params rng ~name:(Printf.sprintf "fuzz%d" index) in
  { index; case_seed; graph = g; inputs }

(* A content digest of one case: everything the differential oracle's
   behaviour depends on. Two runs agreeing on every case digest (and
   every verdict) is the bit-reproducibility check. *)
let digest g inputs =
  Digest.of_parts
    (Graph.source g
    :: List.map (fun (i : Graph.instance) -> Op.source i.op) g.Graph.instances
    @ List.concat_map
        (fun (cn, vs) -> cn :: List.map (fun v -> string_of_int (Value.to_int (Value.bitcast Dtype.word v))) vs)
        inputs)
