module B = Pld_core.Build
module Json = Pld_telemetry.Json

type entry = {
  note : string;
  expect : string option;  (** failure class a clean replay must still show *)
  levels : B.level list;
  graph : Pld_ir.Graph.t;
  workload : (string * Pld_ir.Value.t list) list;
  mutation : Mutate.t option;
}

let version = 1

let level_of_name s =
  match s with
  | "-O0" | "O0" -> B.O0
  | "-O1" | "O1" -> B.O1
  | "-O3" | "O3" -> B.O3
  | "vitis" | "Vitis" -> B.Vitis
  | _ -> raise (Serial.Malformed (Printf.sprintf "unknown level %S" s))

let entry_to_json e =
  Json.Obj
    [
      ("version", Json.Int version);
      ("note", Json.String e.note);
      ("expect", match e.expect with None -> Json.Null | Some c -> Json.String c);
      ("levels", Json.List (List.map (fun l -> Json.String (B.level_name l)) e.levels));
      ("graph", Serial.graph_to_json e.graph);
      ("workload", Serial.workload_to_json e.workload);
      ("mutation", match e.mutation with None -> Json.Null | Some m -> Serial.mutation_to_json m);
    ]

let entry_of_json j =
  let field name =
    match Json.member name j with
    | Some v -> v
    | None -> raise (Serial.Malformed (Printf.sprintf "corpus entry: missing %S" name))
  in
  let opt name = match Json.member name j with Some Json.Null | None -> None | v -> v in
  (match field "version" with
  | Json.Int v when v = version -> ()
  | v -> raise (Serial.Malformed (Printf.sprintf "corpus entry: bad version %s" (Json.to_string v))));
  {
    note = (match field "note" with Json.String s -> s | _ -> "");
    expect =
      (match opt "expect" with
      | Some (Json.String s) -> Some s
      | None -> None
      | Some v -> raise (Serial.Malformed (Printf.sprintf "corpus entry: bad expect %s" (Json.to_string v))));
    levels =
      (match field "levels" with
      | Json.List l -> List.map (function Json.String s -> level_of_name s | _ -> raise (Serial.Malformed "bad level")) l
      | _ -> raise (Serial.Malformed "corpus entry: levels must be a list"));
    graph = Serial.graph_of_json (field "graph");
    workload = Serial.workload_of_json (field "workload");
    mutation = Option.map Serial.mutation_of_json (opt "mutation");
  }

let save ~dir ~name e =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (name ^ ".json") in
  Json.write_file ~pretty:true ~file:path (entry_to_json e);
  path

let load path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  entry_of_json (Json.of_string s)

let load_dir dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".json")
    |> List.sort compare
    |> List.map (fun f -> (f, load (Filename.concat dir f)))

(* Replay one reproducer and report everything that no longer holds. *)
let replay e =
  let config = { Oracle.default_config with Oracle.levels = e.levels } in
  match e.mutation with
  | Some m ->
      (* A mutant entry pins both directions: the clean build passes
         and the miswired build is caught. *)
      let clean = Oracle.check ~config e.graph ~inputs:e.workload in
      let caught = Oracle.check_mutated ~config m e.graph ~inputs:e.workload <> [] in
      clean
      @
      if caught then []
      else
        [
          {
            Oracle.f_class = "mutant-escaped";
            f_where = "corpus";
            f_detail = Printf.sprintf "%s no longer caught by the oracle" (Mutate.describe m);
          };
        ]
  | None -> (
      let fs = Oracle.check ~config e.graph ~inputs:e.workload in
      match e.expect with
      | None -> fs
      | Some cls ->
          if List.exists (fun (f : Oracle.failure) -> f.Oracle.f_class = cls) fs then []
          else
            [
              {
                Oracle.f_class = "reproducer-vanished";
                f_where = "corpus";
                f_detail =
                  Printf.sprintf "expected failure class %S, oracle reported: %s" cls
                    (match fs with
                    | [] -> "clean pass"
                    | _ -> String.concat "; " (List.map Oracle.failure_to_string fs));
              };
            ])
