(** The edit-sequence equivalence fuzzer behind [pldc fuzz --incremental].

    Each case is a random base graph plus a seeded sequence of small
    source edits — perturb one operator body, swap two same-instance
    input ports, grow a FIFO — replayed the way a developer iterates:
    every edit is compiled {e twice} at -O3, once through the delta
    P&R path chained on the previous build and once from scratch, and
    the two apps must agree bit-for-bit with the KPN reference on every
    output stream. The delta chain is never reset: step [k] reuses the
    delta build of step [k-1], so placement-reuse errors compound
    instead of being washed out.

    On top of output equivalence the oracle asserts delta quality: a
    delta build may never be congested (overused routing edges) or
    lose legality when the scratch build of the same source is legal. *)

open Pld_ir
module B = Pld_core.Build

type edit =
  | Touch of string  (** append a behavior-neutral printf to an operator body *)
  | Swap of { a : string * string; b : string * string }
      (** exchange two [(instance, input port)] bindings of one instance *)
  | Grow_fifo of { chan : string; add : int }  (** deepen one internal FIFO *)

val describe_edit : edit -> string

val apply_edit : edit -> Graph.t -> Graph.t
(** Pure source edit; unknown names leave the graph unchanged. *)

type options = {
  q_seed : int;
  q_count : int;  (** edit sequences (base graphs) *)
  q_steps : int;  (** edits per sequence *)
  q_params : Gen.params;
  q_corpus_dir : string option;  (** persist failing-step reproducers *)
  q_fuel : int option;
}

val default_options : options
(** seed 42, 25 sequences of 4 edits, default generator params. *)

type step_report = {
  p_step : int;  (** 1-based position in the sequence *)
  p_edit : string;  (** {!describe_edit} *)
  p_fallback : string option;
      (** [None] when the delta path ran; [Some reason] when it fell
          back to scratch *)
  p_cells_moved : int;
  p_nets_rerouted : int;
  p_failures : Oracle.failure list;
}

type seq_report = {
  q_index : int;
  q_digest : string;  (** content digest of the base (graph, workload) *)
  q_instances : int;
  q_step_reports : step_report list;  (** in sequence order *)
  q_saved : string option;  (** corpus path of the failing step's graph *)
}

type summary = {
  z_seed : int;
  z_count : int;
  z_steps : int;
  z_seqs : seq_report list;
  z_passed : int;  (** sequences with no failing step *)
  z_failed : int;
  z_delta_hits : int;  (** steps the delta path actually served *)
  z_fallbacks : int;  (** steps that fell back to scratch, with reasons *)
}

val run : ?log:(string -> unit) -> options -> summary
(** Never raises: every toolchain error is a structured failure on the
    step that triggered it. [log] receives a line per failing step. *)

val summary_json : summary -> Pld_telemetry.Json.t
(** Bit-reproducible across runs with equal options. *)

val render : summary -> string
