(** The regression sentinel: measure the suite, snapshot a baseline,
    judge a later run against it.

    [measure] rebuilds each selected benchmark at each selected level
    [repeats] times, each repeat against a {e fresh} cache (so modeled
    tool seconds are comparable run to run), and snapshots the result
    as a {!Baseline.snapshot}: deterministic flow outputs in the exact
    class, modeled phase seconds as repeat statistics in the tool
    class, the executor's wall clock in the wall class. A functional
    run supplies the performance-model metrics (Fmax, frame cycles,
    ms/input), which are seeded and exact.

    [perturb] multiplies selected metrics of a snapshot — the
    self-test hook: a perturbed current run must fail its own
    baseline, proving the gate can actually fire. *)

type options = {
  benches : string list;  (** suite short names ({!Pld_rosetta.Suite}) *)
  levels : Pld_core.Build.level list;
  repeats : int;
  pace : float;  (** forwarded to [Build.compile] *)
  jobs : int;  (** executor domains per compile *)
  run_perf : bool;  (** also run each app once for Fmax/cycles/ms-per-input *)
  run_service : bool;
      (** also replay a fixed Zipf trace through a single-worker
          {!Pld_service.Service} and snapshot a ["service"] entry:
          conservation counts (sessions completed, distinct graphs,
          operator recompiles, store writes) in the exact class,
          dedup/hit counts and latency percentiles in the tool class,
          wall time in the wall class *)
  run_chaos : bool;
      (** also run the deterministic {!Pld_service.Chaos} scenarios
          (corrupt-store, conn-storm, overload — no forking) at a
          fixed seed and snapshot a ["chaos"] entry: every failure-path
          counter (shed, deadline_exceeded, watchdog_kills, lost,
          quarantined, conn_errors, client retries) plus the number of
          failed invariant checks in the exact class, wall time in the
          wall class. This is what keeps the rejection taxonomy and
          recovery machinery from silently rotting. *)
  run_incremental : bool;
      (** also, per selected bench, compile cold at -O3, touch one
          operator ({!Pld_ir.Graph.touch_op}) and recompile seeded with
          the previous build, snapshotting an ["incremental"]-level
          entry: whether the delta path served the recompile
          ([inc_delta_hits]), cells kept and nets rerouted in the exact
          class; scratch/delta P&R seconds and their ratio
          ([inc_speedup]) in the tool class. A change that silently
          knocks a benchmark back to scratch compiles trips the
          sentinel here. *)
}

val default_options : options
(** spam + optical at -O1 and -O3, 3 repeats, no pacing, 1 job,
    perf, service, chaos and incremental tiers on — small enough for
    CI, varied enough to cover the paged flow, the monolithic flow,
    the delta-P&R edit loop, the daemon path and the failure paths. *)

val level_of_string : string -> Pld_core.Build.level option
(** Accepts ["O1"], ["-O1"], ["o1"], ... and ["vitis"]. *)

val measure : ?suite:string -> options -> Baseline.snapshot
(** [suite] names the snapshot (default ["rosetta"]). Raises
    [Not_found] on an unknown bench name. *)

val perturb : (string * float) list -> Baseline.snapshot -> Baseline.snapshot
(** [(metric, factor)] pairs; every metric with a matching name (in
    any entry, any class) is scaled by its factor. *)

val check :
  base_file:string ->
  ?thresholds:Baseline.thresholds ->
  ?exact_only:bool ->
  ?out:string ->
  Baseline.snapshot ->
  Baseline.verdict
(** Load the baseline at [base_file], compare the given current
    snapshot against it and, with [out], write the machine-readable
    verdict (REGRESSION.json) there. The caller owns exit codes. *)
