module Telemetry = Pld_telemetry.Telemetry
module Table = Pld_util.Table

type node = { span : Telemetry.span; children : node list }

let dur (s : Telemetry.span) = Option.value ~default:0.0 s.dur_us
let end_us (s : Telemetry.span) = s.start_us +. dur s

(* Containment with a slack of one clock tick: a child closed by the
   same gettimeofday call as its parent has an equal endpoint. *)
let eps = 1e-3

let contains parent child =
  child.Telemetry.start_us >= parent.Telemetry.start_us -. eps
  && end_us child <= end_us parent +. eps

type mut = { sp : Telemetry.span; mutable kids : mut list }

(* [kids] accumulates by prepending, so a single rev_map restores
   start order. *)
let rec freeze m = { span = m.sp; children = List.rev_map freeze m.kids }

(* One timeline: sort by (start asc, dur desc) so a parent precedes
   the children it contains, then sweep with a stack of open spans. *)
let forest_of_timeline spans =
  let sorted =
    List.sort
      (fun a b ->
        match compare a.Telemetry.start_us b.Telemetry.start_us with
        | 0 -> compare (dur b) (dur a)
        | c -> c)
      spans
  in
  let roots = ref [] and stack = ref [] in
  List.iter
    (fun s ->
      let rec unwind () =
        match !stack with
        | top :: rest when not (contains top.sp s) ->
            stack := rest;
            unwind ()
        | _ -> ()
      in
      unwind ();
      let m = { sp = s; kids = [] } in
      (match !stack with top :: _ -> top.kids <- m :: top.kids | [] -> roots := m :: !roots);
      stack := m :: !stack)
    sorted;
  List.rev_map freeze !roots

let forest spans =
  let keyed = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (s : Telemetry.span) ->
      if s.dur_us <> None then begin
        let k = (s.cat, s.clock, s.track) in
        if not (Hashtbl.mem keyed k) then order := k :: !order;
        Hashtbl.replace keyed k (s :: Option.value ~default:[] (Hashtbl.find_opt keyed k))
      end)
    spans;
  List.concat_map (fun k -> forest_of_timeline (List.rev (Hashtbl.find keyed k))) (List.rev !order)

type row = {
  name : string;
  cat : string;
  clock : Telemetry.clock;
  count : int;
  total_s : float;
  self_s : float;
  max_s : float;
}

let flat spans =
  let acc = Hashtbl.create 32 in
  let order = ref [] in
  let rec walk n =
    let d = dur n.span /. 1e6 in
    let child_d = List.fold_left (fun a c -> a +. (dur c.span /. 1e6)) 0.0 n.children in
    let self = Float.max 0.0 (d -. child_d) in
    let k = (n.span.Telemetry.name, n.span.Telemetry.cat, n.span.Telemetry.clock) in
    (match Hashtbl.find_opt acc k with
    | None ->
        order := k :: !order;
        Hashtbl.replace acc k
          {
            name = n.span.Telemetry.name;
            cat = n.span.Telemetry.cat;
            clock = n.span.Telemetry.clock;
            count = 1;
            total_s = d;
            self_s = self;
            max_s = d;
          }
    | Some r ->
        Hashtbl.replace acc k
          {
            r with
            count = r.count + 1;
            total_s = r.total_s +. d;
            self_s = r.self_s +. self;
            max_s = Float.max r.max_s d;
          });
    List.iter walk n.children
  in
  List.iter walk (forest spans);
  List.rev !order
  |> List.map (fun k -> Hashtbl.find acc k)
  |> List.sort (fun a b -> compare b.self_s a.self_s)

let clock_name = function Telemetry.Wall -> "wall" | Telemetry.Modeled -> "modeled"

let render_hot ?(top = 15) rows =
  (* percentages are of the row's own clock: wall self-seconds and
     modeled self-seconds are different quantities *)
  let self_total clock =
    List.fold_left (fun a r -> if r.clock = clock then a +. r.self_s else a) 0.0 rows
  in
  let shown = List.filteri (fun i _ -> i < top) rows in
  let body =
    List.map
      (fun r ->
        let tot = self_total r.clock in
        [
          r.name;
          r.cat;
          clock_name r.clock;
          string_of_int r.count;
          Printf.sprintf "%.4f" r.total_s;
          Printf.sprintf "%.4f" r.self_s;
          Printf.sprintf "%.4f" r.max_s;
          (if tot > 0.0 then Printf.sprintf "%.1f%%" (100.0 *. r.self_s /. tot) else "-");
        ])
      shown
  in
  Table.render
    ~aligns:
      [
        Table.Left;
        Table.Left;
        Table.Left;
        Table.Right;
        Table.Right;
        Table.Right;
        Table.Right;
        Table.Right;
      ]
    ~header:[ "span"; "cat"; "clock"; "n"; "total(s)"; "self(s)"; "max(s)"; "self%" ]
    body

(* Merge same-named siblings so a page compiled 20 times is one line
   with count 20, not 20 lines. *)
type agg = { a_name : string; a_count : int; a_total : float; a_self : float; a_kids : agg list }

let rec aggregate nodes =
  let tbl = Hashtbl.create 8 and order = ref [] in
  List.iter
    (fun n ->
      let d = dur n.span /. 1e6 in
      let child_d = List.fold_left (fun a c -> a +. (dur c.span /. 1e6)) 0.0 n.children in
      let self = Float.max 0.0 (d -. child_d) in
      let key = n.span.Telemetry.name in
      match Hashtbl.find_opt tbl key with
      | None ->
          order := key :: !order;
          Hashtbl.replace tbl key (1, d, self, n.children)
      | Some (c, t, s, kids) -> Hashtbl.replace tbl key (c + 1, t +. d, s +. self, kids @ n.children))
    nodes;
  List.rev !order
  |> List.map (fun key ->
         let c, t, s, kids = Hashtbl.find tbl key in
         { a_name = key; a_count = c; a_total = t; a_self = s; a_kids = aggregate kids })
  |> List.sort (fun a b -> compare b.a_total a.a_total)

let render_tree ?(min_s = 0.0005) spans =
  let buf = Buffer.create 256 in
  let rec emit depth a =
    if a.a_total >= min_s then begin
      Buffer.add_string buf
        (Printf.sprintf "%8.4f %8.4f %5d  %s%s\n" a.a_total a.a_self a.a_count
           (String.make (2 * depth) ' ')
           a.a_name);
      List.iter (emit (depth + 1)) a.a_kids
    end
  in
  Buffer.add_string buf "total(s)  self(s)     n  span\n";
  List.iter (emit 0) (aggregate (forest spans));
  Buffer.contents buf
