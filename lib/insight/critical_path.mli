(** Critical-path extraction: recover the executor's job DAG from its
    spans and report the measured longest path against the analytic
    cluster model ({!Pld_engine.Makespan.lpt}).

    The executor stamps every span of one run with a ["run"] attribute
    and every job span with its ["deps"] — that is the whole contract;
    no build state is needed. Two predictions are reported next to the
    measurement: the longest {e dependency chain} in modeled tool
    seconds (the lower bound no cluster can beat) and the LPT makespan
    over [workers] machines (what [Build.report.parallel_seconds]
    promises). Divergence between modeled and measured time is broken
    out per job kind and per modeled flow phase (hls/syn/pnr/bitgen),
    because the two clocks disagree for different reasons in different
    phases. *)

module Telemetry = Pld_telemetry.Telemetry

type job = {
  id : string;
  kind : string;
  deps : string list;
  wall_s : float;  (** measured span duration *)
  model_s : float;  (** summed modeled phase spans of this job (0 for cache hits) *)
  phases : (string * float) list;  (** modeled seconds per phase *)
}

type report = {
  run : string;  (** the executor run id the spans were selected by *)
  workers : int;  (** cluster width used for the LPT prediction *)
  jobs : job list;  (** in span-recording order *)
  graph_wall_s : float;  (** the run's whole-graph span *)
  measured_s : float;
  measured_path : string list;  (** job ids, source to sink *)
  modeled_chain_s : float;
  modeled_chain : string list;  (** longest dependency chain by modeled seconds *)
  lpt_s : float;  (** LPT makespan of the modeled durations *)
  lpt_machine : string list;  (** jobs on the makespan-setting machine *)
  by_kind : (string * int * float * float) list;
      (** (kind, jobs, wall seconds, modeled seconds) *)
  phase_totals : (string * float) list;  (** modeled seconds per phase, whole run *)
}

val runs : Telemetry.span list -> string list
(** Run ids with a graph span in the list, oldest first. *)

val analyze : ?workers:int -> ?run:string -> Telemetry.span list -> report option
(** Analyze one executor run out of a (possibly shared) span list:
    [run] defaults to the latest graph span's run id; [None] when the
    list holds no graph span (or none matching [run]). [workers]
    (default 22) sizes the LPT cluster — [Build.compile]'s default, so
    [lpt_s] reproduces [report.parallel_seconds] exactly when given
    the spans of that compile. *)

val render : report -> string
(** Human rendering: headline measured-vs-modeled lines, the measured
    critical path, then per-kind and per-phase divergence tables. *)
