module Telemetry = Pld_telemetry.Telemetry
module Table = Pld_util.Table
module Makespan = Pld_engine.Makespan

type job = {
  id : string;
  kind : string;
  deps : string list;
  wall_s : float;
  model_s : float;
  phases : (string * float) list;
}

type report = {
  run : string;
  workers : int;
  jobs : job list;
  graph_wall_s : float;
  measured_s : float;
  measured_path : string list;
  modeled_chain_s : float;
  modeled_chain : string list;
  lpt_s : float;
  lpt_machine : string list;
  by_kind : (string * int * float * float) list;
  phase_totals : (string * float) list;
}

let attr name (s : Telemetry.span) = List.assoc_opt name s.attrs
let dur_s (s : Telemetry.span) = Option.value ~default:0.0 s.dur_us /. 1e6

let is_graph (s : Telemetry.span) =
  s.cat = "engine" && s.name = "graph" && s.dur_us <> None && attr "run" s <> None

let runs spans =
  let seen = Hashtbl.create 4 in
  List.filter_map
    (fun s ->
      if is_graph s then
        match attr "run" s with
        | Some r when not (Hashtbl.mem seen r) ->
            Hashtbl.replace seen r ();
            Some r
        | _ -> None
      else None)
    spans

let split_deps = function
  | None | Some "" -> []
  | Some s -> String.split_on_char ',' s

(* Longest path through the dependency DAG under a per-job weight.
   Memoized DFS; a dep missing from the table (outside this run)
   contributes nothing. *)
let longest_path weight jobs =
  let by_id = Hashtbl.create 16 in
  List.iter (fun j -> Hashtbl.replace by_id j.id j) jobs;
  let memo = Hashtbl.create 16 in
  let rec go id =
    match Hashtbl.find_opt memo id with
    | Some r -> r
    | None -> (
        match Hashtbl.find_opt by_id id with
        | None -> (0.0, [])
        | Some j ->
            (* [>=] so a zero-cost prefix (cache hits, hls jobs under
               the modeled weight) still appears in the path. *)
            let pre =
              List.fold_left
                (fun (bl, bp) d ->
                  let l, p = go d in
                  if l >= bl then (l, p) else (bl, bp))
                (0.0, []) j.deps
            in
            let r = (fst pre +. weight j, j.id :: snd pre) in
            Hashtbl.replace memo id r;
            r)
  in
  let best =
    List.fold_left
      (fun (bl, bp) j ->
        let l, p = go j.id in
        if l > bl then (l, p) else (bl, bp))
      (0.0, []) jobs
  in
  (fst best, List.rev (snd best))

let analyze ?(workers = 22) ?run spans =
  let graphs = List.filter is_graph spans in
  let pick =
    match run with
    | Some r -> List.find_opt (fun s -> attr "run" s = Some r) graphs
    | None -> ( match List.rev graphs with g :: _ -> Some g | [] -> None)
  in
  match pick with
  | None -> None
  | Some graph ->
      let run = Option.get (attr "run" graph) in
      (* Job spans of this run: stamped with its id and carrying a
         dependency list. Retried jobs span once per attempt — attempts
         merge into one job, summing wall. *)
      let order = ref [] in
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (s : Telemetry.span) ->
          if
            s.cat = "engine" && s.clock = Telemetry.Wall && s.dur_us <> None
            && attr "run" s = Some run
            && attr "deps" s <> None
          then
            match Hashtbl.find_opt tbl s.name with
            | None ->
                order := s.name :: !order;
                Hashtbl.replace tbl s.name
                  {
                    id = s.name;
                    kind = Option.value ~default:"" (attr "kind" s);
                    deps = split_deps (attr "deps" s);
                    wall_s = dur_s s;
                    model_s = 0.0;
                    phases = [];
                  }
            | Some j -> Hashtbl.replace tbl s.name { j with wall_s = j.wall_s +. dur_s s })
        spans;
      (* Modeled flow phases, attached to their job. *)
      List.iter
        (fun (s : Telemetry.span) ->
          if s.cat = "flow" && s.clock = Telemetry.Modeled && s.dur_us <> None
             && attr "run" s = Some run
          then
            match Option.bind (attr "job" s) (Hashtbl.find_opt tbl) with
            | None -> ()
            | Some j ->
                let sec = dur_s s in
                let phases =
                  match List.assoc_opt s.name j.phases with
                  | Some prev -> (s.name, prev +. sec) :: List.remove_assoc s.name j.phases
                  | None -> j.phases @ [ (s.name, sec) ]
                in
                Hashtbl.replace tbl j.id { j with model_s = j.model_s +. sec; phases })
        spans;
      let jobs = List.rev_map (Hashtbl.find tbl) !order in
      let measured_s, measured_path = longest_path (fun j -> j.wall_s) jobs in
      let modeled_chain_s, modeled_chain = longest_path (fun j -> j.model_s) jobs in
      let lpt_s, lpt_machine =
        Makespan.lpt_critical ~workers (List.map (fun j -> (j.id, j.model_s)) jobs)
      in
      let by_kind =
        List.fold_left
          (fun acc j ->
            match List.assoc_opt j.kind acc with
            | Some (n, w, m) ->
                (j.kind, (n + 1, w +. j.wall_s, m +. j.model_s)) :: List.remove_assoc j.kind acc
            | None -> acc @ [ (j.kind, (1, j.wall_s, j.model_s)) ])
          [] jobs
        |> List.map (fun (k, (n, w, m)) -> (k, n, w, m))
      in
      let phase_totals =
        List.fold_left
          (fun acc j ->
            List.fold_left
              (fun acc (p, sec) ->
                match List.assoc_opt p acc with
                | Some prev -> (p, prev +. sec) :: List.remove_assoc p acc
                | None -> acc @ [ (p, sec) ])
              acc j.phases)
          [] jobs
      in
      Some
        {
          run;
          workers;
          jobs;
          graph_wall_s = dur_s graph;
          measured_s;
          measured_path;
          modeled_chain_s;
          modeled_chain;
          lpt_s;
          lpt_machine;
          by_kind;
          phase_totals;
        }

let render r =
  let buf = Buffer.create 512 in
  let path = function [] -> "(empty)" | p -> String.concat " -> " p in
  Buffer.add_string buf
    (Printf.sprintf "run %s: %d jobs, graph wall %.4fs\n" r.run (List.length r.jobs)
       r.graph_wall_s);
  Buffer.add_string buf
    (Printf.sprintf "measured critical path  %10.4fs  %s\n" r.measured_s (path r.measured_path));
  Buffer.add_string buf
    (Printf.sprintf "modeled longest chain   %10.4fs  %s\n" r.modeled_chain_s
       (path r.modeled_chain));
  Buffer.add_string buf
    (Printf.sprintf "modeled LPT makespan    %10.4fs  on %d workers (critical machine: %s)\n"
       r.lpt_s r.workers
       (match r.lpt_machine with [] -> "(idle)" | m -> String.concat ", " m));
  if r.by_kind <> [] then begin
    Buffer.add_string buf "\nmodeled vs measured by job kind:\n";
    Buffer.add_string buf
      (Table.render
         ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
         ~header:[ "kind"; "jobs"; "wall(s)"; "model(s)"; "model/wall" ]
         (List.map
            (fun (k, n, w, m) ->
              [
                k;
                string_of_int n;
                Printf.sprintf "%.4f" w;
                Printf.sprintf "%.2f" m;
                (if w > 0.0 then Printf.sprintf "%.0fx" (m /. w) else "-");
              ])
            r.by_kind));
    Buffer.add_char buf '\n'
  end;
  if r.phase_totals <> [] then begin
    let total = List.fold_left (fun a (_, s) -> a +. s) 0.0 r.phase_totals in
    Buffer.add_string buf "\nmodeled seconds by phase:\n";
    Buffer.add_string buf
      (Table.render
         ~aligns:[ Table.Left; Table.Right; Table.Right ]
         ~header:[ "phase"; "model(s)"; "share" ]
         (List.map
            (fun (p, s) ->
              [
                p;
                Printf.sprintf "%.2f" s;
                (if total > 0.0 then Printf.sprintf "%.1f%%" (100.0 *. s /. total) else "-");
              ])
            r.phase_totals));
    Buffer.add_char buf '\n'
  end;
  Buffer.contents buf
