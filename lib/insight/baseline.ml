module Json = Pld_telemetry.Json
module Stats = Pld_util.Stats
module Table = Pld_util.Table

type stats = { n : int; median : float; mad : float; lo : float; hi : float }

let stats_of xs =
  if xs = [] then invalid_arg "Baseline.stats_of: empty sample list";
  let med = Stats.median xs in
  let mad = Stats.median (List.map (fun x -> Float.abs (x -. med)) xs) in
  let lo, hi = Stats.min_max xs in
  { n = List.length xs; median = med; mad; lo; hi }

type entry = {
  bench : string;
  level : string;
  exact : (string * float) list;
  tool : (string * stats) list;
  wall : (string * stats) list;
}

type snapshot = {
  version : int;
  suite : string;
  created : string;
  repeats : int;
  pace : float;
  entries : entry list;
}

let current_version = 1

type thresholds = {
  exact_rel : float;
  tool_rel : float;
  tool_abs : float;
  tool_mad_k : float;
  wall_rel : float;
  wall_abs : float;
}

let default_thresholds =
  { exact_rel = 1e-6; tool_rel = 0.02; tool_abs = 0.05; tool_mad_k = 4.0; wall_rel = 0.25; wall_abs = 0.02 }

type metric_class = Exact | Tool | Wall

let class_name = function Exact -> "exact" | Tool -> "tool" | Wall -> "wall"

type status = Ok | Regression | Improvement | Missing | New

let status_name = function
  | Ok -> "ok"
  | Regression -> "REGRESSION"
  | Improvement -> "improvement"
  | Missing -> "missing"
  | New -> "new"

type finding = {
  f_bench : string;
  f_level : string;
  f_metric : string;
  f_class : metric_class;
  f_base : float;
  f_cur : float;
  f_band : float;
  f_status : status;
}

type verdict = {
  findings : finding list;
  regressions : finding list;
  improvements : finding list;
  ok : bool;
}

let higher_is_better = function
  | "fmax_mhz" | "cache_hits" -> true
  (* Service tier: more sharing is better, more failures is worse. *)
  | "svc_completed" | "svc_deduped" | "svc_cross_tenant_hits" | "svc_cache_hits" -> true
  (* Incremental tier: losing the delta path or its speedup is the regression. *)
  | "inc_delta_hits" | "inc_speedup" | "inc_cells_kept" -> true
  | _ -> false

(* ---------- comparison ---------- *)

(* 1.4826 scales a MAD to the sigma of a normal distribution with the
   same spread, so [tool_mad_k] reads as "k sigmas of observed noise". *)
let mad_sigma = 1.4826

let judge ~metric ~base ~cur ~band =
  if Float.abs (cur -. base) <= band then Ok
  else if higher_is_better metric = (cur > base) then Improvement
  else Regression

let compare_entry th ~exact_only (base : entry) (cur : entry) =
  let mk cls metric b c band =
    {
      f_bench = base.bench;
      f_level = base.level;
      f_metric = metric;
      f_class = cls;
      f_base = b;
      f_cur = c;
      f_band = band;
      f_status = judge ~metric ~base:b ~cur:c ~band;
    }
  in
  let missing cls metric b =
    { f_bench = base.bench; f_level = base.level; f_metric = metric; f_class = cls;
      f_base = b; f_cur = Float.nan; f_band = 0.0; f_status = Missing }
  in
  let fresh cls metric c =
    { f_bench = base.bench; f_level = base.level; f_metric = metric; f_class = cls;
      f_base = Float.nan; f_cur = c; f_band = 0.0; f_status = New }
  in
  let pair cls b_list c_list band_of value_of =
    List.map
      (fun (m, b) ->
        match List.assoc_opt m c_list with
        | Some c -> mk cls m (value_of b) (value_of c) (band_of b)
        | None -> missing cls m (value_of b))
      b_list
    @ List.filter_map
        (fun (m, c) ->
          if List.mem_assoc m b_list then None else Some (fresh cls m (value_of c)))
        c_list
  in
  let exact =
    pair Exact base.exact cur.exact
      (fun b -> Float.max 1e-9 (th.exact_rel *. Float.abs b))
      Fun.id
  in
  if exact_only then exact
  else
    exact
    @ pair Tool base.tool cur.tool
        (fun b ->
          Float.max th.tool_abs
            (Float.max (th.tool_rel *. Float.abs b.median) (th.tool_mad_k *. mad_sigma *. b.mad)))
        (fun s -> s.median)
    @ pair Wall base.wall cur.wall
        (fun b -> Float.max th.wall_abs (th.wall_rel *. Float.abs b.median))
        (fun s -> s.median)

let compare_snapshots ?(thresholds = default_thresholds) ?(exact_only = false) ~base cur =
  let key e = (e.bench, e.level) in
  let findings =
    List.concat_map
      (fun b ->
        match List.find_opt (fun c -> key c = key b) cur.entries with
        | Some c -> compare_entry thresholds ~exact_only b c
        | None ->
            [
              {
                f_bench = b.bench;
                f_level = b.level;
                f_metric = "(entry)";
                f_class = Exact;
                f_base = Float.nan;
                f_cur = Float.nan;
                f_band = 0.0;
                f_status = Missing;
              };
            ])
      base.entries
    @ List.filter_map
        (fun c ->
          if List.exists (fun b -> key b = key c) base.entries then None
          else
            Some
              {
                f_bench = c.bench;
                f_level = c.level;
                f_metric = "(entry)";
                f_class = Exact;
                f_base = Float.nan;
                f_cur = Float.nan;
                f_band = 0.0;
                f_status = New;
              })
        cur.entries
  in
  let regressions = List.filter (fun f -> f.f_status = Regression) findings in
  let improvements = List.filter (fun f -> f.f_status = Improvement) findings in
  { findings; regressions; improvements; ok = regressions = [] }

(* ---------- JSON ---------- *)

let fail fmt = Printf.ksprintf failwith fmt

let get name j = match Json.member name j with Some v -> v | None -> fail "baseline: missing %S" name

let get_str name j = match get name j with Json.String s -> s | _ -> fail "baseline: %S not a string" name
let get_int name j = match get name j with Json.Int i -> i | _ -> fail "baseline: %S not an int" name

let get_float name j =
  match get name j with
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> fail "baseline: %S not a number" name

let fields name j =
  match get name j with Json.Obj l -> l | _ -> fail "baseline: %S not an object" name

let stats_json s =
  Json.Obj
    [
      ("n", Json.Int s.n);
      ("median", Json.Float s.median);
      ("mad", Json.Float s.mad);
      ("lo", Json.Float s.lo);
      ("hi", Json.Float s.hi);
    ]

let stats_of_json j =
  {
    n = get_int "n" j;
    median = get_float "median" j;
    mad = get_float "mad" j;
    lo = get_float "lo" j;
    hi = get_float "hi" j;
  }

let entry_json e =
  Json.Obj
    [
      ("bench", Json.String e.bench);
      ("level", Json.String e.level);
      ("exact", Json.Obj (List.map (fun (m, v) -> (m, Json.Float v)) e.exact));
      ("tool", Json.Obj (List.map (fun (m, s) -> (m, stats_json s)) e.tool));
      ("wall", Json.Obj (List.map (fun (m, s) -> (m, stats_json s)) e.wall));
    ]

let entry_of_json j =
  let number = function
    | Json.Float f -> f
    | Json.Int i -> float_of_int i
    | _ -> fail "baseline: exact metric not a number"
  in
  {
    bench = get_str "bench" j;
    level = get_str "level" j;
    exact = List.map (fun (m, v) -> (m, number v)) (fields "exact" j);
    tool = List.map (fun (m, v) -> (m, stats_of_json v)) (fields "tool" j);
    wall = List.map (fun (m, v) -> (m, stats_of_json v)) (fields "wall" j);
  }

let to_json s =
  Json.Obj
    [
      ("version", Json.Int s.version);
      ("suite", Json.String s.suite);
      ("created", Json.String s.created);
      ("repeats", Json.Int s.repeats);
      ("pace", Json.Float s.pace);
      ("entries", Json.List (List.map entry_json s.entries));
    ]

let of_json j =
  let version = get_int "version" j in
  if version <> current_version then
    fail "baseline: version %d, this build reads version %d — re-save the baseline" version
      current_version;
  let entries =
    match get "entries" j with
    | Json.List l -> List.map entry_of_json l
    | _ -> fail "baseline: \"entries\" not a list"
  in
  {
    version;
    suite = get_str "suite" j;
    created = get_str "created" j;
    repeats = get_int "repeats" j;
    pace = get_float "pace" j;
    entries;
  }

let save ~file s = Json.write_file ~pretty:true ~file (to_json s)

let load ~file =
  let ic = open_in_bin file in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  of_json (Json.of_string src)

(* ---------- rendering ---------- *)

let fnum v = if Float.is_nan v then "-" else Printf.sprintf "%.6g" v

let delta f =
  if Float.is_nan f.f_base || Float.is_nan f.f_cur then "-"
  else if Float.abs f.f_base > 1e-12 then
    Printf.sprintf "%+.2f%%" (100.0 *. (f.f_cur -. f.f_base) /. Float.abs f.f_base)
  else Printf.sprintf "%+.3g" (f.f_cur -. f.f_base)

let render_verdict v =
  let rows =
    List.map
      (fun f ->
        [
          f.f_bench;
          f.f_level;
          class_name f.f_class;
          f.f_metric;
          fnum f.f_base;
          fnum f.f_cur;
          delta f;
          (if f.f_band > 0.0 then Printf.sprintf "±%.3g" f.f_band else "-");
          status_name f.f_status;
        ])
      v.findings
  in
  let table =
    Table.render
      ~aligns:
        [
          Table.Left; Table.Left; Table.Left; Table.Left; Table.Right; Table.Right; Table.Right;
          Table.Right; Table.Left;
        ]
      ~header:[ "bench"; "level"; "class"; "metric"; "baseline"; "current"; "delta"; "band"; "status" ]
      rows
  in
  let summary =
    if v.ok then
      Printf.sprintf "OK: %d metrics within bounds (%d improvements)" (List.length v.findings)
        (List.length v.improvements)
    else
      Printf.sprintf "REGRESSION: %d of %d metrics out of bounds: %s"
        (List.length v.regressions) (List.length v.findings)
        (String.concat ", "
           (List.map
              (fun f -> Printf.sprintf "%s/%s %s" f.f_bench f.f_level f.f_metric)
              v.regressions))
  in
  table ^ "\n" ^ summary ^ "\n"

let finding_json f =
  Json.Obj
    [
      ("bench", Json.String f.f_bench);
      ("level", Json.String f.f_level);
      ("class", Json.String (class_name f.f_class));
      ("metric", Json.String f.f_metric);
      ("baseline", Json.Float f.f_base);
      ("current", Json.Float f.f_cur);
      ("band", Json.Float f.f_band);
      ("status", Json.String (status_name f.f_status));
    ]

let verdict_json v =
  Json.Obj
    [
      ("ok", Json.Bool v.ok);
      ("regressions", Json.Int (List.length v.regressions));
      ("improvements", Json.Int (List.length v.improvements));
      ("findings", Json.List (List.map finding_json v.findings));
    ]
