(** Versioned performance baselines with noise-aware comparison.

    A baseline snapshots the key metrics of a benchmark run so a later
    run can be judged against it. Metrics fall into three classes with
    very different noise characteristics, and the comparison thresholds
    differ accordingly:

    - {b exact} — deterministic outputs of the seeded flows
      (cache hits, recompile counts, modeled overhead, Fmax, frame
      cycles, ms/input). Any drift beyond float formatting is a real
      behavior change and is flagged at a near-zero tolerance.
    - {b tool} — modeled phase seconds (hls/syn/pnr/bitgen,
      serial/parallel totals). The model embeds the {e measured}
      runtime of the in-tree placement/routing/bitgen algorithms, so
      these numbers carry machine noise on top of a stable signal;
      they are stored as repeat statistics (median + MAD) and compared
      with a band of relative, absolute and MAD-scaled slack.
    - {b wall} — raw wall-clock of the executor run; the noisiest,
      widest band.

    A regression is a metric {e worse} than its baseline beyond the
    band (slower, fewer cache hits, lower Fmax); an improvement is the
    same distance in the good direction and is reported but never
    fails a check. *)

module Json = Pld_telemetry.Json

type stats = { n : int; median : float; mad : float; lo : float; hi : float }
(** Repeat statistics: median, median absolute deviation, extremes. *)

val stats_of : float list -> stats
(** Raises [Invalid_argument] on an empty list. *)

type entry = {
  bench : string;
  level : string;
  exact : (string * float) list;
  tool : (string * stats) list;
  wall : (string * stats) list;
}

type snapshot = {
  version : int;  (** format version, {!current_version} *)
  suite : string;
  created : string;  (** ISO-8601 UTC, informational only *)
  repeats : int;
  pace : float;
  entries : entry list;
}

val current_version : int

type thresholds = {
  exact_rel : float;
  tool_rel : float;
  tool_abs : float;  (** seconds *)
  tool_mad_k : float;  (** multiples of the baseline MAD-derived sigma *)
  wall_rel : float;
  wall_abs : float;  (** seconds *)
}

val default_thresholds : thresholds

type metric_class = Exact | Tool | Wall

type status = Ok | Regression | Improvement | Missing | New
(** [Missing]: in the baseline but not the current run; [New]: the
    reverse. Both are reported, neither fails a check. *)

val status_name : status -> string
(** The label the renderers print (["ok"], ["REGRESSION"], ...). *)

type finding = {
  f_bench : string;
  f_level : string;
  f_metric : string;
  f_class : metric_class;
  f_base : float;  (** baseline median (or exact value) *)
  f_cur : float;  (** current median (or exact value) *)
  f_band : float;  (** allowed absolute deviation *)
  f_status : status;
}

type verdict = {
  findings : finding list;  (** every compared metric, snapshot order *)
  regressions : finding list;
  improvements : finding list;
  ok : bool;  (** no regressions *)
}

val higher_is_better : string -> bool
(** Direction of goodness for a metric name ([fmax_mhz], [cache_hits]);
    everything else is lower-is-better. *)

val compare_snapshots :
  ?thresholds:thresholds -> ?exact_only:bool -> base:snapshot -> snapshot -> verdict
(** Compare a current snapshot against its baseline. [exact_only]
    (default false) restricts the comparison to the exact class — the
    mode for checking against a baseline recorded on different
    hardware, where tool/wall numbers are incomparable. *)

val to_json : snapshot -> Json.t
val of_json : Json.t -> snapshot
(** Raises [Failure] on a malformed or version-incompatible document. *)

val save : file:string -> snapshot -> unit
(** Pretty-printed JSON (the file is committed and diffed). *)

val load : file:string -> snapshot

val render_verdict : verdict -> string
(** The human diff table: every finding with baseline, current, delta
    and band columns, then a one-line summary. *)

val verdict_json : verdict -> Json.t
(** Machine-readable verdict (REGRESSION.json): per-finding records
    plus the regression/improvement counts and overall [ok]. *)
