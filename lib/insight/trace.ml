module Telemetry = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json

exception Malformed of string

let fail fmt = Printf.ksprintf (fun s -> raise (Malformed s)) fmt

let number = function
  | Json.Int i -> float_of_int i
  | Json.Float f -> f
  | _ -> fail "expected a number"

let str = function Json.String s -> s | _ -> fail "expected a string"

let field name j =
  match Json.member name j with Some v -> v | None -> fail "event missing %S field" name

let modeled_suffix = " (modeled)"

(* "flow (modeled)" -> ("flow", Modeled); anything else -> Wall. *)
let split_process_label label =
  let n = String.length label and m = String.length modeled_suffix in
  if n >= m && String.sub label (n - m) m = modeled_suffix then
    (String.sub label 0 (n - m), Telemetry.Modeled)
  else (label, Telemetry.Wall)

let attrs_of j =
  match Json.member "args" j with
  | Some (Json.Obj fields) ->
      List.filter_map (fun (k, v) -> match v with Json.String s -> Some (k, s) | _ -> None) fields
  | _ -> []

let spans_of_json doc =
  let events =
    match Json.member "traceEvents" doc with
    | Some (Json.List l) -> l
    | _ -> fail "no traceEvents list — not a Chrome trace"
  in
  (* First pass: process_name metadata tells us each pid's (cat, clock). *)
  let procs = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match (Json.member "ph" e, Json.member "name" e) with
      | Some (Json.String "M"), Some (Json.String "process_name") ->
          let pid = int_of_float (number (field "pid" e)) in
          let label =
            match Json.member "args" e with
            | Some args -> ( match Json.member "name" args with Some l -> str l | None -> fail "process_name metadata without a label")
            | None -> fail "process_name metadata without args"
          in
          Hashtbl.replace procs pid (split_process_label label)
      | _ -> ())
    events;
  let decode e =
    match str (field "ph" e) with
    | "M" -> None
    | ("X" | "i") as ph ->
        let pid = int_of_float (number (field "pid" e)) in
        (* the event's own "cat" is authoritative; the pid label only
           supplies the clock domain *)
        let label_cat, clock =
          match Hashtbl.find_opt procs pid with
          | Some p -> p
          | None -> ("?", Telemetry.Wall)
        in
        let cat =
          match Json.member "cat" e with Some (Json.String c) -> c | _ -> label_cat
        in
        Some
          {
            Telemetry.name = str (field "name" e);
            cat;
            track = int_of_float (number (field "tid" e));
            clock;
            start_us = number (field "ts" e);
            dur_us = (if ph = "X" then Some (number (field "dur" e)) else None);
            attrs = attrs_of e;
          }
    | ph -> fail "unsupported trace event phase %S" ph
  in
  List.filter_map decode events

let load file =
  let ic = open_in_bin file in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  spans_of_json (Json.of_string src)
