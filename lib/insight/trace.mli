(** Reload an exported Chrome trace back into spans.

    [Telemetry.write_chrome] maps each (category, clock) pair to a
    Perfetto process (the modeled clock's process label carries a
    [" (modeled)"] suffix) and each track to a thread; this module
    inverts that mapping so the analysis passes ({!Profile},
    {!Critical_path}) run identically on a live sink and on a trace
    file from an earlier run. *)

module Telemetry = Pld_telemetry.Telemetry
module Json = Pld_telemetry.Json

exception Malformed of string
(** The document is valid JSON but not a trace this module wrote:
    missing [traceEvents], an event without a name, a span referencing
    an unnamed process. *)

val spans_of_json : Json.t -> Telemetry.span list
(** Decode a [Telemetry.to_chrome_json] document: ["X"] events become
    spans, ["i"] events instants ([dur_us = None]), ["M"] metadata
    reconstructs each pid's (category, clock). Events in an unknown
    pid decode with category ["?"] and a wall clock rather than being
    dropped. Raises {!Malformed}. *)

val load : string -> Telemetry.span list
(** Read and decode a trace file. Raises [Sys_error] on I/O failure,
    [Json.Parse_error] on bad JSON, {!Malformed} on a non-trace. *)
