(** Span profiles: turn a flat span list back into the call structure
    it came from and aggregate where the time went.

    Spans nest by time containment on a track ([Telemetry.with_span]
    nesting, modeled phase tiling), so the forest is recovered per
    (category, clock, track) timeline by interval containment — no
    parent pointers are recorded and none are needed. Self time is a
    span's duration minus its direct children's; totals and selves are
    reported in seconds on the span's own clock (measured seconds for
    [Wall], simulated tool seconds for [Modeled] — never summed
    together). *)

module Telemetry = Pld_telemetry.Telemetry

type node = { span : Telemetry.span; children : node list }
(** One recovered call-tree node; [children] in start order. *)

val forest : Telemetry.span list -> node list
(** Containment forests of every (cat, clock, track) timeline,
    concatenated in first-appearance order; instants are ignored.
    Roots come back in start order within a timeline. *)

type row = {
  name : string;
  cat : string;
  clock : Telemetry.clock;
  count : int;  (** spans aggregated into this row *)
  total_s : float;  (** inclusive: sum of aggregated span durations *)
  self_s : float;  (** exclusive: total minus direct children *)
  max_s : float;  (** largest single span *)
}

val flat : Telemetry.span list -> row list
(** Flat profile: one row per distinct (name, cat, clock), in
    decreasing [self_s] order. A span nested under another occurrence
    of itself still counts its full duration once per occurrence, so
    [total_s] of a recursive name can exceed wall time — selves always
    sum to the timeline's span. *)

val render_hot : ?top:int -> row list -> string
(** The hot list: the [top] (default 15) rows of a flat profile as an
    aligned table with a self-time percentage column (of the summed
    self time on each row's clock). *)

val render_tree : ?min_s:float -> Telemetry.span list -> string
(** Top-down profile: the containment forest with siblings of the same
    name merged level by level, indented two spaces per depth, one
    "total self count name" line each, children in decreasing total
    order. Subtrees whose total is below [min_s] seconds (default
    0.0005) are pruned to keep the output readable. *)
