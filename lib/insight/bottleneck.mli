(** Back-pressure attribution over a fabric profile: walk the channel
    graph from every stalled operator to the operator actually setting
    the pace, and rank the culprits.

    The KPN runtime records two kinds of stalls per channel: a consumer
    blocked on an empty channel (starved — the slowness is {e upstream})
    and a producer blocked on a full channel (back-pressured — the
    slowness is {e downstream}). Neither stall names the culprit: a
    starved operator three hops behind a slow filter stalls on its
    immediate input, not on the filter. The attribution pass follows
    each stalled operator's dominant stall direction hop by hop —
    upstream through the most-starved input, downstream through the
    most-back-pressured output — until it reaches an operator that is
    not itself predominantly stalled in the same direction. That
    terminal operator is the rate limiter, and it is charged with every
    stall event observed along the walk. Host boundaries terminate
    walks too: a pipeline starved by its input DMA is the host's fault,
    not any operator's. *)

module P = Pld_core.Fabric_profile

type finding = {
  bk_op : string;  (** the rate-limiting operator (or host boundary) *)
  bk_kind : string;  (** ["hw"], ["softcore"], ["mono"], or ["host"] *)
  bk_attributed : int;  (** stall events charged to it *)
  bk_fraction : float;  (** share of all observed stall events *)
  bk_victims : (string * int) list;
      (** stalled operators whose events were charged here, with their
          event counts, largest first *)
}

type report = {
  bk_graph : string;
  bk_level : string;
  bk_total_stalls : int;  (** all stall events in the profile *)
  bk_findings : finding list;  (** ranked, most-attributed first *)
  bk_perf_bottleneck : string;  (** the perf model's verdict, for cross-checking *)
  bk_agrees : bool;
      (** the top finding names the perf model's bottleneck operator
          (vacuously true when there are no stalls to attribute) *)
}

val attribute : P.t -> report
(** Pure function of the profile; safe on deserialized profiles. *)

val rate_limiter : report -> (string * float) option
(** The top-ranked operator and its attributed stall fraction; [None]
    when the run had no stalls. *)

val render : report -> string list
(** Ranked human-readable bottleneck report, one finding per line
    group: culprit, attributed share, and the walk's victims. *)

val to_json : report -> Pld_telemetry.Json.t
